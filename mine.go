package ossm

import (
	"fmt"
	"strings"

	"github.com/ossm-mining/ossm/internal/mining"
	"github.com/ossm-mining/ossm/internal/telemetry"
)

// Engine-layer re-exports: every miner registers itself with the shared
// engine under a stable name, and Mine dispatches through that registry —
// the CLIs, the facade wrappers and the benchmarks all go through this
// one path.
type (
	// PassStats is the per-level accounting every miner reports
	// (generated/pruned/counted candidates and frequent itemsets).
	PassStats = mining.PassStats
	// Stats is the per-run envelope on every Result: algorithm name,
	// wall time, resolved worker pool, plus algorithm-specific counters
	// in Extra.
	Stats = mining.Stats
	// Instrumentation is the engine-wide telemetry collector: hand one to
	// Mine via MineOptions.Instrument and the run's per-pass candidate
	// accounting, transactions scanned and pool utilization are frozen
	// into the result's Stats.Telemetry.
	Instrumentation = mining.Instrumentation
	// Telemetry is the frozen, JSON-serializable report an instrumented
	// run attaches to Stats.Telemetry.
	Telemetry = telemetry.Report
	// TelemetryPass is one per-pass row of a Telemetry report.
	TelemetryPass = telemetry.PassReport
	// TelemetryEvent is one record of the structured event stream
	// (Instrumentation.SetSink): run start, per-pass end, run end.
	TelemetryEvent = telemetry.Event
)

// NewInstrumentation returns an empty telemetry collector whose run clock
// starts now.
func NewInstrumentation() *Instrumentation { return mining.NewInstrumentation() }

// CandidateBound is the Geerts–Goethals–Van den Bussche tight upper bound
// on the number of candidate (k+1)-itemsets derivable from m frequent
// k-itemsets — the reference curve telemetry consumers plot per-pass
// candidate counts against.
func CandidateBound(m int64, k int) int64 { return telemetry.CandidateBound(m, k) }

// Miners returns the registered miner names, sorted. Every name is a
// valid first argument to Mine.
func Miners() []string { return mining.Names() }

// MineOptions configures Mine. The zero value runs a plain serial miner
// with no pruning.
type MineOptions struct {
	// Filter prunes candidates before they are counted (derive one from
	// an Index or ExtendedIndex); nil disables pruning. Miners that
	// generate no candidates (fpgrowth) ignore it.
	Filter Filter
	// MaxLen stops at itemsets of this size (0 = unlimited).
	MaxLen int
	// Workers fans each miner's counting passes over a goroutine pool
	// (0 or 1 = serial, capped at the CPU count); results are identical
	// to the serial run.
	Workers int
	// Progress, if non-nil, receives each level's PassStats as mining
	// proceeds (level-wise miners call it per pass; depth-first miners
	// replay the levels once at the end).
	Progress func(PassStats)
	// Params carries algorithm-specific integer tunables by name, e.g.
	// "partitions" for the partition miner or "buckets" for dhp. Unknown
	// names are ignored; zero or missing values mean the default.
	Params map[string]int
	// Instrument, if non-nil, collects engine-wide telemetry for the run;
	// read the frozen report from the result's Stats.Telemetry. nil (the
	// default) disables collection with no overhead beyond one branch per
	// pass.
	Instrument *Instrumentation
	// RequestID tags the instrumented run's telemetry report with the
	// originating serving-layer request (ossm-serve's X-Request-Id), so
	// reports can be correlated with access logs and traces. Ignored
	// without an Instrument collector.
	RequestID string
}

func (o MineOptions) engine() mining.Options {
	return mining.Options{
		Pruner:     o.Filter,
		MaxLen:     o.MaxLen,
		Workers:    o.Workers,
		Progress:   o.Progress,
		Params:     o.Params,
		Instrument: o.Instrument,
		RequestID:  o.RequestID,
	}
}

// Mine runs the named miner over d at the given relative support
// threshold. Valid names are those returned by Miners.
func Mine(name string, d *Dataset, minSupport float64, opts MineOptions) (*Result, error) {
	return MineAt(name, d, MinCountFor(d, minSupport), opts)
}

// MineAt is Mine with an absolute support count instead of a relative
// threshold.
func MineAt(name string, d *Dataset, minCount int64, opts MineOptions) (*Result, error) {
	if _, ok := mining.Lookup(name); !ok {
		return nil, fmt.Errorf("ossm: unknown miner %q (have: %s)", name, strings.Join(Miners(), ", "))
	}
	return mining.MineBy(name, d, minCount, opts.engine())
}
