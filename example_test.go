package ossm_test

import (
	"fmt"

	ossm "github.com/ossm-mining/ossm"
)

// ExampleNewMap reproduces Example 1 of the paper: a 4-segment OSSM over
// items a=0, b=1, c=2 bounds sup({a,b}) by 80 and sup({a,b,c}) by 60,
// where the naive single-segment bounds are 110 and 100.
func ExampleNewMap() {
	m, err := ossm.NewMap([][]uint32{
		{20, 40, 40}, // segment T1: sup(a), sup(b), sup(c)
		{10, 40, 20}, // T2
		{40, 40, 20}, // T3
		{40, 10, 20}, // T4
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("ubsup({a,b})   =", m.UpperBound(ossm.NewItemset(0, 1)))
	fmt.Println("ubsup({a,b,c}) =", m.UpperBound(ossm.NewItemset(0, 1, 2)))
	fmt.Println("naive({a,b})   =", m.NaiveUpperBound(ossm.NewItemset(0, 1)))
	// Output:
	// ubsup({a,b})   = 80
	// ubsup({a,b,c}) = 60
	// naive({a,b})   = 110
}

// ExampleBuild indexes a small dataset and mines it, showing that the
// OSSM never changes the result — it only removes counting work.
func ExampleBuild() {
	d, err := ossm.FromTransactions(4, [][]ossm.Item{
		{0, 1}, {0, 1}, {0, 1, 2}, {2, 3}, {2, 3}, {0, 1},
	})
	if err != nil {
		panic(err)
	}
	ix, err := ossm.Build(d, ossm.BuildOptions{Pages: 3, Segments: 2, Algorithm: ossm.Greedy})
	if err != nil {
		panic(err)
	}
	plain, _ := ossm.MineApriori(d, 0.3, nil)
	pruned, _ := ossm.MineApriori(d, 0.3, ix)
	fmt.Println("segments:", ix.NumSegments())
	fmt.Println("identical results:", plain.Equal(pruned))
	fmt.Println("frequent itemsets:", plain.NumFrequent())
	// Output:
	// segments: 2
	// identical results: true
	// frequent itemsets: 6
}

// ExampleRecommend walks the recipe of the paper's Figure 7.
func ExampleRecommend() {
	rec := ossm.Recommend(ossm.Scenario{LargeSegmentBudget: true, SkewedData: true})
	fmt.Println(rec.Algorithm, rec.UseBubble)
	rec = ossm.Recommend(ossm.Scenario{SegmentationCostCritical: true, VeryManyPages: true})
	fmt.Println(rec.Algorithm, rec.UseBubble)
	// Output:
	// Random false
	// Random-RC true
}

// ExampleGenerateRules derives association rules from mined itemsets.
func ExampleGenerateRules() {
	d, err := ossm.FromTransactions(3, [][]ossm.Item{
		{0, 1}, {0, 1}, {0, 1, 2}, {0}, {2},
	})
	if err != nil {
		panic(err)
	}
	res, _ := ossm.MineApriori(d, 0.4, nil)
	rules, _ := ossm.GenerateRules(res, d.NumTx(), 0.9)
	for _, r := range rules {
		fmt.Println(r)
	}
	// Output:
	// {1} => {0} (sup=3 conf=1.000 lift=1.25)
}

// ExampleMinSegments computes n_min for a tiny two-item collection: two
// distinct configurations ⇒ two segments suffice for exact bounds
// (Theorem 1).
func ExampleMinSegments() {
	d, err := ossm.FromTransactions(2, [][]ossm.Item{
		{0}, {0}, {1}, {1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(ossm.MinSegments(d, 4))
	// Output:
	// 2
}

// ExampleAppender streams transactions into an online OSSM and snapshots
// it mid-stream — the structure never needs a rebuild scan.
func ExampleAppender() {
	app, err := ossm.NewAppender(3, ossm.AppenderOptions{PageSize: 2, MaxSegments: 2})
	if err != nil {
		panic(err)
	}
	for _, tx := range []ossm.Itemset{
		{0, 1}, {0, 1}, {2}, {2}, {0, 2},
	} {
		if err := app.Add(tx); err != nil {
			panic(err)
		}
	}
	m, err := app.Snapshot()
	if err != nil {
		panic(err)
	}
	fmt.Println("transactions seen:", app.NumTx())
	fmt.Println("sup(0) =", m.ItemSupport(0))
	fmt.Println("ubsup({0,1}) =", m.UpperBound(ossm.NewItemset(0, 1)))
	// Output:
	// transactions seen: 5
	// sup(0) = 3
	// ubsup({0,1}) = 2
}

// ExampleMineMinimalEpisodes runs MINEPI on a tiny alternating log and
// derives a prediction rule.
func ExampleMineMinimalEpisodes() {
	seq, err := ossm.SequenceFromTypes(2, []ossm.Item{0, 1, 0, 1, 0, 1})
	if err != nil {
		panic(err)
	}
	res, err := ossm.MineMinimalEpisodes(seq, ossm.MinimalOptions{MaxWidth: 2, MinCount: 2})
	if err != nil {
		panic(err)
	}
	rules, err := res.Rules(0.9)
	if err != nil {
		panic(err)
	}
	for _, r := range rules {
		fmt.Println(r)
	}
	// Output:
	// 0 ⇒ 0 → 1 (sup=3 conf=1.000)
}
