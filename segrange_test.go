package ossm

import "testing"

// TestIndexSegmentRange pins the facade slicing primitive behind sharded
// serving: partitioning an index's segment axis and summing per-range
// bounds reproduces the whole-index bound exactly, for every segmenter.
func TestIndexSegmentRange(t *testing.T) {
	d, err := GenerateSkewed(DefaultSkewed(1500, 9))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Random, RC, Greedy, RandomRC, RandomGreedy} {
		ix, err := Build(d, BuildOptions{Segments: 24, Algorithm: alg, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		segs := ix.NumSegments()
		for _, parts := range []int{1, 2, 3, 8} {
			if parts > segs {
				continue
			}
			base, rem := segs/parts, segs%parts
			lo := 0
			views := make([]*Index, 0, parts)
			for i := 0; i < parts; i++ {
				size := base
				if i < rem {
					size++
				}
				v, err := ix.SegmentRange(lo, lo+size)
				if err != nil {
					t.Fatal(err)
				}
				if v.NumTx() != ix.NumTx() {
					t.Fatalf("view NumTx %d != parent %d", v.NumTx(), ix.NumTx())
				}
				views = append(views, v)
				lo += size
			}
			sets := []Itemset{
				NewItemset(0), NewItemset(1, 2), NewItemset(0, 3, 5), NewItemset(2, 4, 6, 8),
			}
			full := ix.UpperBoundBatch(sets, nil)
			merged := make([]int64, len(sets))
			for _, v := range views {
				for i, b := range v.UpperBoundBatch(sets, nil) {
					merged[i] += b
				}
			}
			for i := range sets {
				if merged[i] != full[i] {
					t.Fatalf("alg %v, %d shards: merged %d != full %d for %v",
						alg, parts, merged[i], full[i], sets[i])
				}
			}
		}
	}
	if _, err := mustBuild(t, d).SegmentRange(0, 10_000); err == nil {
		t.Fatal("out-of-range view should fail")
	}
}

func mustBuild(t *testing.T, d *Dataset) *Index {
	t.Helper()
	ix, err := Build(d, BuildOptions{Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}
