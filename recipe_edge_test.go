package ossm

import (
	"strings"
	"testing"
)

// emptyDataset returns a dataset with a domain but no transactions.
func emptyDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := FromTransactions(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// singleItemDataset returns transactions drawn from a one-item domain.
func singleItemDataset(t *testing.T, numTx int) *Dataset {
	t.Helper()
	txs := make([][]Item, numTx)
	for i := range txs {
		txs[i] = []Item{0}
	}
	d, err := FromTransactions(1, txs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAutoScenarioEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		data    func(t *testing.T) *Dataset
		opts    AutoScenarioOptions
		wantErr string
	}{
		{"empty dataset", emptyDataset, AutoScenarioOptions{}, "empty dataset"},
		{"single transaction", func(t *testing.T) *Dataset { return singleItemDataset(t, 1) }, AutoScenarioOptions{}, ""},
		{"single-item domain", func(t *testing.T) *Dataset { return singleItemDataset(t, 50) }, AutoScenarioOptions{}, ""},
		{"probe larger than data", func(t *testing.T) *Dataset { return singleItemDataset(t, 3) },
			AutoScenarioOptions{ProbeSegments: 64}, ""},
		{"policy bits pass through", func(t *testing.T) *Dataset { return singleItemDataset(t, 10) },
			AutoScenarioOptions{LargeSegmentBudget: true, SegmentationCostCritical: true}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := AutoScenario(tc.data(t), tc.opts)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if s.LargeSegmentBudget != tc.opts.LargeSegmentBudget ||
				s.SegmentationCostCritical != tc.opts.SegmentationCostCritical {
				t.Fatalf("policy inputs not passed through: %+v", s)
			}
			// A tiny or single-item dataset can't register as skewed or
			// paginated at scale; the measured bits must come back false.
			if s.SkewedData || s.VeryManyPages {
				t.Fatalf("degenerate data measured as large/skewed: %+v", s)
			}
			// The scenario must feed Recommend without surprises.
			rec := Recommend(s)
			if rec.Algorithm < Random || rec.Algorithm > RandomGreedy {
				t.Fatalf("Recommend returned unknown algorithm %v", rec.Algorithm)
			}
		})
	}
}

// TestBuildBudgetEdgeCases drives the facade Build through the n_user
// budget boundaries: default, minimum, equal to the page count, and an
// over-ask that the segmenter clamps.
func TestBuildBudgetEdgeCases(t *testing.T) {
	d, err := GenerateSkewed(DefaultSkewed(500, 9)) // 500 tx → 5 default pages
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name         string
		opts         BuildOptions
		wantSegments int
	}{
		{"default budget capped at pages", BuildOptions{}, 5},
		{"single segment", BuildOptions{Segments: 1}, 1},
		{"equal to pages", BuildOptions{Segments: 5}, 5},
		{"more than pages", BuildOptions{Segments: 64}, 5},
		{"explicit pages override", BuildOptions{Segments: 3, Pages: 10}, 3},
		{"pages above numTx capped", BuildOptions{Segments: 2, Pages: 10_000}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix, err := Build(d, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if ix.NumSegments() != tc.wantSegments {
				t.Fatalf("segments = %d, want %d", ix.NumSegments(), tc.wantSegments)
			}
			// Whatever the budget, the bound for a singleton is its exact
			// support: the segment rows partition the counts.
			set := NewItemset(0)
			if got, want := ix.UpperBound(set), ix.Map().ItemSupport(0); got != want {
				t.Fatalf("singleton bound %d != support %d", got, want)
			}
		})
	}

	if _, err := Build(emptyDataset(t), BuildOptions{}); err == nil {
		t.Fatal("Build accepted an empty dataset")
	}
}

// TestBuildSingleItemDataset: a one-item domain is degenerate but legal;
// bounds must equal exact supports at every budget.
func TestBuildSingleItemDataset(t *testing.T) {
	d := singleItemDataset(t, 120)
	for _, segs := range []int{1, 2} {
		ix, err := Build(d, BuildOptions{Segments: segs})
		if err != nil {
			t.Fatalf("segments %d: %v", segs, err)
		}
		if got := ix.UpperBound(NewItemset(0)); got != 120 {
			t.Fatalf("segments %d: bound %d, want 120", segs, got)
		}
	}
}
