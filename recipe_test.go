package ossm

import "testing"

func TestAutoScenarioDetectsSkew(t *testing.T) {
	seasonal, err := GenerateSkewed(DefaultSkewed(4000, 17))
	if err != nil {
		t.Fatal(err)
	}
	s, err := AutoScenario(seasonal, AutoScenarioOptions{LargeSegmentBudget: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s.SkewedData {
		t.Error("seasonal data not detected as skewed")
	}
	if s.VeryManyPages {
		t.Error("4000 tx flagged as very many pages")
	}
	// Recipe: big budget + skew ⇒ Random.
	if rec := Recommend(s); rec.Algorithm != Random {
		t.Errorf("recipe = %v, want Random", rec.Algorithm)
	}

	// A drift-free uniform dataset must not register as skewed.
	uniform, err := GenerateQuest(DefaultQuest(4000, 18))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := AutoScenario(uniform, AutoScenarioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.SkewedData {
		t.Error("stationary Quest data detected as skewed")
	}
}

func TestAutoScenarioPageVolume(t *testing.T) {
	d, err := GenerateQuest(DefaultQuest(3000, 2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := AutoScenario(d, AutoScenarioOptions{
		SegmentationCostCritical: true,
		ManyPages:                10, // 3000 tx → 30 pages ≥ 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.VeryManyPages {
		t.Error("page volume threshold not applied")
	}
	if rec := Recommend(s); rec.Algorithm != RandomRC {
		t.Errorf("recipe = %v, want Random-RC", rec.Algorithm)
	}
}

func TestIndexSkewAccessors(t *testing.T) {
	seasonal, err := GenerateSkewed(DefaultSkewed(3000, 9))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(seasonal, BuildOptions{Pages: 30, Segments: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Heterogeneity() <= 0 {
		t.Error("seasonal index reports no heterogeneity")
	}
	if ix.SkewSignal() <= 1 {
		t.Errorf("seasonal SkewSignal = %g, want > 1", ix.SkewSignal())
	}
}
