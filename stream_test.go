package ossm

import (
	"strings"
	"testing"
)

func TestAppenderFacade(t *testing.T) {
	a, err := NewAppender(100, AppenderOptions{PageSize: 10, MaxSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, err := GenerateQuest(QuestConfig{
		NumTx: 300, NumItems: 100, AvgTxLen: 6, AvgPatLen: 3,
		NumPatterns: 20, Correlation: 0.5, CorruptMean: 0.4, CorruptSD: 0.1, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumTx(); i++ {
		if err := a.Add(d.Tx(i)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSegments() > 5 {
		t.Errorf("snapshot has %d segments, want ≤ 5", m.NumSegments())
	}
	// The streaming map is sound against the batch data.
	for it := Item(0); it < 100; it += 9 {
		x := NewItemset(it, (it+7)%100)
		if m.UpperBound(x) < int64(d.Support(x)) {
			t.Fatalf("unsound streaming bound for %v", x)
		}
	}
}

func TestSerialEpisodesFacade(t *testing.T) {
	s, err := SequenceFromTypes(2, []Item{0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineSerialEpisodes(s, EpisodeOptions{Width: 2, MinFrequency: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Support(SerialEpisode{0, 1}); !ok {
		t.Error("0 → 1 missing from an alternating log")
	}
}

func TestClosedMaximalFacade(t *testing.T) {
	d, err := FromTransactions(3, [][]Item{
		{0, 1}, {0, 1}, {0, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineApriori(d, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	closed := ClosedItemsets(res)
	maximal := MaximalItemsets(res)
	if len(closed) != 2 { // {0,1} and {0,1,2}
		t.Errorf("closed = %v", closed)
	}
	if len(maximal) != 1 || !maximal[0].Items.Equal(NewItemset(0, 1, 2)) {
		t.Errorf("maximal = %v", maximal)
	}
}

func TestConstraintsFacade(t *testing.T) {
	d, err := GenerateQuest(DefaultQuest(1000, 13))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, BuildOptions{Pages: 20, Segments: 6})
	if err != nil {
		t.Fatal(err)
	}
	f := And(ix.Pruner(0.02), ExcludeItems(0, 1, 2), MaxItems(2))
	res, err := MineAprioriFiltered(d, 0.02, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.All() {
		if len(c.Items) < 2 {
			continue
		}
		if len(c.Items) > 2 {
			t.Errorf("constraint violated: %v too long", c.Items)
		}
		for _, banned := range []Item{0, 1, 2} {
			if c.Items.Contains(banned) {
				t.Errorf("constraint violated: %v contains %d", c.Items, banned)
			}
		}
	}
}

func TestStatsFacade(t *testing.T) {
	d, err := FromTransactions(3, [][]Item{{0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	s := StatsOf(d)
	if s.NumTx != 2 || s.TotalItems != 3 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "transactions=2") {
		t.Errorf("String = %q", s.String())
	}
}

func TestMinimalEpisodesFacade(t *testing.T) {
	s, err := SequenceFromTypes(2, []Item{0, 1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineMinimalEpisodes(s, MinimalOptions{MaxWidth: 2, MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sup, ok := res.Support(SerialEpisode{0, 1}); !ok || sup != 3 {
		t.Errorf("mo-count(0→1) = %d,%v; want 3", sup, ok)
	}
	rules, err := res.Rules(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Error("no episode rules from a perfectly alternating log")
	}
}
