// Package ossm is the public face of this repository: a Go implementation
// of the Optimized Segment Support Map of Leung, Ng and Mannila (ICDE
// 2002) together with the frequent-pattern mining substrate it
// accelerates.
//
// The OSSM is a light-weight, query-independent index: the transaction
// collection is partitioned into n segments and, for every item, the
// per-segment singleton support is recorded. For any itemset X the map
// yields an upper bound on sup(X) (the sum over segments of the minimum
// member support), which candidate-generating miners use to discard
// candidates before paying for a counting pass.
//
// Typical use:
//
//	d, _ := ossm.LoadDataset("retail.txt")
//	ix, _ := ossm.Build(d, ossm.BuildOptions{Segments: 40})
//	res, _ := ossm.MineApriori(d, 0.01, ix)
//
// The same index serves every later query, at any support threshold —
// segmentation is a one-time "compile-time" cost.
package ossm

import (
	"fmt"
	"time"

	"github.com/ossm-mining/ossm/internal/apriori"
	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/dhp"
	"github.com/ossm-mining/ossm/internal/mining"
)

// Re-exported substrate types. Aliases keep the implementation in
// internal packages while giving callers nameable types.
type (
	// Item identifies a domain item (dense ids 0 … k−1).
	Item = dataset.Item
	// Itemset is a strictly ascending set of items.
	Itemset = dataset.Itemset
	// Dataset is an immutable transaction collection.
	Dataset = dataset.Dataset
	// DatasetBuilder accumulates transactions.
	DatasetBuilder = dataset.Builder
	// Page identifies a contiguous run of transactions.
	Page = dataset.Page
	// Map is the optimized segment support map itself.
	Map = core.Map
	// Pruner applies a Map to candidate filtering at one threshold.
	Pruner = core.Pruner
	// Algorithm selects a segmentation heuristic.
	Algorithm = core.Algorithm
	// Scenario feeds the recommended recipe (paper Figure 7).
	Scenario = core.Scenario
	// Recommendation is the recipe's output.
	Recommendation = core.Recommendation
	// Result is the common output of every miner.
	Result = mining.Result
	// Counted is a frequent itemset with its support.
	Counted = mining.Counted
)

// Segmentation algorithms (paper Section 5).
const (
	Random       = core.AlgRandom
	RC           = core.AlgRC
	Greedy       = core.AlgGreedy
	RandomRC     = core.AlgRandomRC
	RandomGreedy = core.AlgRandomGreedy
)

// NewItemset builds an Itemset from arbitrary items, sorting and
// de-duplicating them.
func NewItemset(items ...Item) Itemset { return dataset.NewItemset(items...) }

// NewDatasetBuilder returns a builder for a domain of numItems items.
func NewDatasetBuilder(numItems int) *DatasetBuilder { return dataset.NewBuilder(numItems) }

// FromTransactions builds a Dataset from literal transactions.
func FromTransactions(numItems int, txs [][]Item) (*Dataset, error) {
	return dataset.FromTransactions(numItems, txs)
}

// LoadDataset reads a dataset from disk (text for .txt/.dat, binary
// otherwise).
func LoadDataset(path string) (*Dataset, error) { return dataset.LoadFile(path) }

// SaveDataset writes a dataset to disk (format chosen by extension, as in
// LoadDataset).
func SaveDataset(path string, d *Dataset) error { return dataset.SaveFile(path, d) }

// Recommend picks a segmentation algorithm for a scenario, per the
// paper's recommended recipe (Figure 7).
func Recommend(s Scenario) Recommendation { return core.Recommend(s) }

// NewMap builds a Map directly from per-segment singleton supports
// (rows[s][item]). Most callers should Build an Index from a dataset
// instead; NewMap serves tests, tooling and hand-authored examples.
func NewMap(segCounts [][]uint32) (*Map, error) { return core.NewMap(segCounts) }

// BuildOptions configures Build. The zero value is usable: it paginates
// at roughly 100 transactions per page and runs the Random algorithm
// down to 40 segments; pick RandomGreedy or RandomRC (per Recommend) for
// higher-quality segmentations.
type BuildOptions struct {
	// Pages is the number of initial pages m (0 ⇒ ~100 tx per page).
	Pages int
	// Segments is n_user, the segment budget (0 ⇒ 40).
	Segments int
	// Algorithm is the segmentation heuristic (zero value: Random).
	Algorithm Algorithm
	// MidSegments is n_mid for the hybrid strategies (0 ⇒
	// min(Pages, max(Segments, 200))).
	MidSegments int
	// BubbleSize, when positive, restricts the sumdiff computation to
	// that many items "on the bubble" around BubbleMinSupport.
	BubbleSize int
	// BubbleMinSupport is the relative support threshold the bubble list
	// is formed at (default 0.01; the resulting index still serves any
	// query threshold).
	BubbleMinSupport float64
	// Seed drives the randomized phases.
	Seed int64
	// Workers fans the segmentation's sumdiff evaluations over a
	// goroutine pool (0 or 1 = serial); the result is identical to the
	// serial run.
	Workers int
}

// Index is a built OSSM over a specific dataset: the Map plus the
// bookkeeping needed to reuse and report it.
type Index struct {
	m          *core.Map
	pages      []dataset.Page
	assignment [][]int
	elapsed    time.Duration
	numTx      int
}

// Build paginates d, runs the configured segmentation, and returns the
// resulting index.
func Build(d *Dataset, opts BuildOptions) (*Index, error) {
	if d.NumTx() == 0 {
		return nil, fmt.Errorf("ossm: cannot build an index over an empty dataset")
	}
	mPages := opts.Pages
	if mPages == 0 {
		mPages = (d.NumTx() + 99) / 100
	}
	if mPages > d.NumTx() {
		mPages = d.NumTx()
	}
	segments := opts.Segments
	if segments == 0 {
		segments = 40
	}
	alg := opts.Algorithm
	mid := opts.MidSegments
	if mid == 0 {
		mid = 200
		if mid < segments {
			mid = segments
		}
		if mid > mPages {
			mid = mPages
		}
	}
	pages := dataset.PaginateN(d, mPages)
	rows := dataset.PageCounts(d, pages)
	var bubble []Item
	if opts.BubbleSize > 0 {
		frac := opts.BubbleMinSupport
		if frac == 0 {
			frac = 0.01
		}
		bubble = core.BubbleListFromCounts(rows, mining.MinCountFor(d, frac), opts.BubbleSize)
	}
	res, err := core.Segment(rows, core.Options{
		Algorithm:      alg,
		TargetSegments: segments,
		MidSegments:    mid,
		Bubble:         bubble,
		Seed:           opts.Seed,
		Workers:        opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Index{
		m:          res.Map,
		pages:      pages,
		assignment: res.Assignment,
		elapsed:    res.Elapsed,
		numTx:      d.NumTx(),
	}, nil
}

// Map exposes the underlying segment support map.
func (ix *Index) Map() *Map { return ix.m }

// NumTx returns the number of transactions the index was built over (the
// denominator of relative support thresholds).
func (ix *Index) NumTx() int { return ix.numTx }

// NumItems returns the size of the item domain the index covers; itemsets
// with items at or beyond this bound are outside the index's domain.
func (ix *Index) NumItems() int { return ix.m.NumItems() }

// UpperBound returns the OSSM upper bound on sup(x).
func (ix *Index) UpperBound(x Itemset) int64 { return ix.m.UpperBound(x) }

// UpperBoundBatch evaluates the OSSM upper bound for every itemset in
// sets, walking each segment-support row once for the whole batch. The
// bounds land in out (grown as needed) and equal per-set UpperBound
// calls exactly.
func (ix *Index) UpperBoundBatch(sets []Itemset, out []int64) []int64 {
	return ix.m.UpperBoundBatch(sets, out)
}

// NumSegments returns the built segment count.
func (ix *Index) NumSegments() int { return ix.m.NumSegments() }

// SegmentRange returns an Index view over the contiguous segment range
// [lo, hi): the slicing primitive behind sharded serving. The view
// shares the parent's segment-major cells (no copy) and answers every
// bound query over its range only, so for any partition of
// [0, NumSegments()) the per-range bounds sum to the parent's bound
// exactly (eq. 1 is a sum over segments). Views report the parent's
// NumTx — a shard still scales relative thresholds against the whole
// collection — and are serving-only: they carry no page assignment and
// are not meant to be persisted.
func (ix *Index) SegmentRange(lo, hi int) (*Index, error) {
	m, err := ix.m.SegmentRange(lo, hi)
	if err != nil {
		return nil, err
	}
	return &Index{m: m, elapsed: ix.elapsed, numTx: ix.numTx}, nil
}

// SizeBytes reports the index footprint.
func (ix *Index) SizeBytes() int { return ix.m.SizeBytes() }

// SegmentationTime reports the one-time build cost.
func (ix *Index) SegmentationTime() time.Duration { return ix.elapsed }

// Pruner derives a candidate filter at a relative support threshold.
func (ix *Index) Pruner(minSupport float64) *Pruner {
	return &core.Pruner{Map: ix.m, MinCount: ix.minCount(minSupport)}
}

// PrunerAt derives a candidate filter at an absolute support count.
func (ix *Index) PrunerAt(minCount int64) *Pruner {
	return &core.Pruner{Map: ix.m, MinCount: minCount}
}

func (ix *Index) minCount(frac float64) int64 {
	c := int64(frac * float64(ix.numTx))
	if float64(c) < frac*float64(ix.numTx) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// indexFilter derives the candidate filter an Index contributes at an
// absolute threshold; a nil index means no pruning.
func indexFilter(ix *Index, minCount int64) Filter {
	if ix == nil {
		return nil
	}
	return ix.PrunerAt(minCount)
}

// MineApriori mines frequent itemsets with Apriori at the given relative
// support threshold. ix may be nil (plain Apriori, the paper's baseline).
func MineApriori(d *Dataset, minSupport float64, ix *Index) (*Result, error) {
	minCount := mining.MinCountFor(d, minSupport)
	return MineAt(apriori.Name, d, minCount, MineOptions{Filter: indexFilter(ix, minCount)})
}

// MineDHP mines frequent itemsets with DHP (hash filtering + transaction
// trimming) at the given relative support threshold. ix may be nil.
func MineDHP(d *Dataset, minSupport float64, ix *Index) (*Result, error) {
	minCount := mining.MinCountFor(d, minSupport)
	return MineAt(dhp.Name, d, minCount, MineOptions{Filter: indexFilter(ix, minCount)})
}

// MinCountFor converts a relative support threshold into an absolute
// count for d (rounded up, at least 1).
func MinCountFor(d *Dataset, minSupport float64) int64 {
	return mining.MinCountFor(d, minSupport)
}
