package ossm

import (
	"fmt"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/episodes"
	"github.com/ossm-mining/ossm/internal/mining"
)

// Streaming maintenance, condensed representations, serial episodes and
// constraint composition — the extension surface of the library.

// Appender maintains an OSSM incrementally as transactions stream in
// (the online setting of the SSM precursor work). Use NewAppender, Add
// transactions, and Snapshot a queryable Map at any moment.
type Appender = core.Appender

// AppenderOptions configures NewAppender.
type AppenderOptions = core.AppenderOptions

// NewAppender creates an empty streaming OSSM maintainer.
func NewAppender(numItems int, opts AppenderOptions) (*Appender, error) {
	return core.NewAppender(numItems, opts)
}

// AppenderState is the complete replayable state of an Appender — the
// unit of durability for write-ahead-logged ingestion (internal/wal):
// persist a state, replay the WAL tail through Add, and the restored
// appender is bit-identical to one that never stopped.
type AppenderState = core.AppenderState

// RestoreAppender reconstructs an Appender from a captured state,
// validating the configuration and the state invariants a corrupted
// snapshot could break.
func RestoreAppender(st AppenderState) (*Appender, error) {
	return core.RestoreAppender(st)
}

// IndexFromMap wraps an already-built segment support map into a servable
// Index over numTx transactions — the constructor recovery and promotion
// paths use when the Map comes from somewhere other than Build (a
// snapshot file, a re-segmentation of appender rows).
func IndexFromMap(m *Map, numTx int) (*Index, error) {
	if m == nil {
		return nil, fmt.Errorf("ossm: IndexFromMap requires a map")
	}
	if numTx < 0 {
		return nil, fmt.Errorf("ossm: IndexFromMap: negative transaction count %d", numTx)
	}
	return &Index{m: m, numTx: numTx}, nil
}

// SnapshotIndex freezes the appender's current state into a servable
// Index — the bridge between streaming ingestion and the query side:
// snapshot periodically and swap the result into a serving registry
// (ossm-serve) to refresh bounds without interrupting readers. It returns
// an error when nothing has been appended yet (an Index must cover at
// least one segment).
func SnapshotIndex(a *Appender) (*Index, error) {
	m, err := a.Snapshot()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("ossm: cannot snapshot an empty appender into an index")
	}
	return &Index{m: m, numTx: int(a.NumTx())}, nil
}

// SerialEpisode is an ordered tuple of event types (A → B → A …).
type SerialEpisode = episodes.SerialEpisode

// SerialResult carries the frequent serial episodes of a sequence.
type SerialResult = episodes.SerialResult

// MineSerialEpisodes discovers all frequent serial episodes of s — the
// order-sensitive counterpart of MineEpisodes, with the same optional
// OSSM pruning over the window dataset.
func MineSerialEpisodes(s *Sequence, opts EpisodeOptions) (*SerialResult, error) {
	return episodes.MineSerial(s, opts)
}

// MinimalOptions configures MineMinimalEpisodes.
type MinimalOptions = episodes.MinimalOptions

// MinimalResult carries frequent serial episodes with their minimal
// occurrences (MINEPI semantics).
type MinimalResult = episodes.MinimalResult

// Interval is a closed time interval of a minimal occurrence.
type Interval = episodes.Interval

// EpisodeRule is a serial-episode prefix rule with its confidence.
type EpisodeRule = episodes.EpisodeRule

// MineMinimalEpisodes discovers all serial episodes with at least
// MinCount minimal occurrences of width ≤ MaxWidth (MINEPI), with the
// same optional OSSM pruning as the window-based miners. Episode rules
// follow from the result's Rules method.
func MineMinimalEpisodes(s *Sequence, opts MinimalOptions) (*MinimalResult, error) {
	return episodes.MineMinimal(s, opts)
}

// ClosedItemsets filters a mining result down to its closed frequent
// itemsets (no frequent proper superset of equal support) — a lossless
// condensation.
func ClosedItemsets(r *Result) []Counted { return mining.Closed(r) }

// MaximalItemsets filters a mining result down to its maximal frequent
// itemsets (no frequent proper superset at all).
func MaximalItemsets(r *Result) []Counted { return mining.Maximal(r) }

// DatasetStats summarizes a dataset's shape.
type DatasetStats = dataset.Stats

// StatsOf computes the dataset summary in one scan.
func StatsOf(d *Dataset) DatasetStats { return d.Stats() }

// And combines candidate filters conjunctively (OSSM pruners,
// anti-monotone constraints, …); nil members are dropped.
func And(fs ...Filter) Filter { return core.And(fs...) }

// ExcludeItems builds the anti-monotone constraint "contains none of the
// banned items".
func ExcludeItems(banned ...Item) Filter { return core.ExcludeItems(banned...) }

// MaxItems builds the anti-monotone constraint |X| ≤ n.
func MaxItems(n int) Filter { return core.MaxItems(n) }
