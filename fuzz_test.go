package ossm

import (
	"os"
	"path/filepath"
	"testing"
)

// validIndexBytes builds a small real index and returns its serialized
// form — the seed corpus anchor every mutation starts from.
func validIndexBytes(f *testing.F) []byte {
	f.Helper()
	d, err := GenerateQuest(DefaultQuest(120, 3))
	if err != nil {
		f.Fatal(err)
	}
	ix, err := Build(d, BuildOptions{Pages: 8, Segments: 3, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	p := filepath.Join(f.TempDir(), "seed.ossm")
	if err := ix.Save(p); err != nil {
		f.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		f.Fatal(err)
	}
	return b
}

// FuzzIndexRoundTrip: arbitrary bytes fed to LoadIndex must error
// cleanly — never panic, never over-allocate from a corrupted header —
// and any input that loads must survive a Save/LoadIndex round trip
// answering the same queries.
func FuzzIndexRoundTrip(f *testing.F) {
	valid := validIndexBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("OSSMIDX1"))
	f.Add(valid[:len(valid)/2])
	truncCount := append([]byte{}, valid[:10]...)
	f.Add(truncCount)
	huge := append([]byte{}, valid...)
	for i := 8; i < 16; i++ {
		huge[i] = 0xFF
	}
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		p := filepath.Join(dir, "in.ossm")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ix, err := LoadIndex(p)
		if err != nil {
			return // rejected cleanly — the property under test
		}
		// Anything accepted must round-trip exactly.
		p2 := filepath.Join(dir, "out.ossm")
		if err := ix.Save(p2); err != nil {
			t.Fatalf("Save of loaded index failed: %v", err)
		}
		ix2, err := LoadIndex(p2)
		if err != nil {
			t.Fatalf("reload of saved index failed: %v", err)
		}
		if ix.NumSegments() != ix2.NumSegments() || ix.SizeBytes() != ix2.SizeBytes() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				ix.NumSegments(), ix.SizeBytes(), ix2.NumSegments(), ix2.SizeBytes())
		}
		m, m2 := ix.Map(), ix2.Map()
		for it := 0; it < m.NumItems(); it++ {
			if m.ItemSupport(Item(it)) != m2.ItemSupport(Item(it)) {
				t.Fatalf("item %d support changed across round trip", it)
			}
		}
		for a := 0; a < m.NumItems(); a++ {
			for b := a + 1; b < m.NumItems() && b < a+4; b++ {
				x := Itemset{Item(a), Item(b)}
				if m.UpperBound(x) != m2.UpperBound(x) {
					t.Fatalf("UpperBound(%v) changed across round trip", x)
				}
			}
		}
	})
}

// FuzzAppenderSnapshot: transactions decoded from arbitrary bytes,
// streamed through an Appender, must yield a snapshot whose singleton
// totals are lossless, whose segment count respects the budget, and
// whose itemset bounds stay sound — matching a from-scratch count.
func FuzzAppenderSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0xFF, 3, 4, 0xFF})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 0xFF, 1, 2, 0xFF, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const numItems = 8
		// Decode: each byte < 0xFF adds item b%numItems to the current
		// transaction; 0xFF terminates it. The trailing partial transaction
		// is flushed too.
		var txs []Itemset
		cur := map[Item]bool{}
		flush := func() {
			var tx Itemset
			for it := Item(0); it < numItems; it++ {
				if cur[it] {
					tx = append(tx, it)
				}
			}
			txs = append(txs, tx)
			cur = map[Item]bool{}
		}
		for _, b := range data {
			if b == 0xFF {
				flush()
				continue
			}
			cur[Item(int(b)%numItems)] = true
		}
		if len(cur) > 0 {
			flush()
		}

		const maxSegments = 3
		app, err := NewAppender(numItems, AppenderOptions{MaxSegments: maxSegments, CompactAt: 5})
		if err != nil {
			t.Fatal(err)
		}
		exact := make([]int64, numItems)
		for _, tx := range txs {
			if err := app.Add(tx); err != nil {
				t.Fatalf("Add(%v): %v", tx, err)
			}
			for _, it := range tx {
				exact[it]++
			}
		}
		if app.NumTx() != int64(len(txs)) {
			t.Fatalf("NumTx = %d, want %d", app.NumTx(), len(txs))
		}
		m, err := app.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		if m == nil {
			// Documented for the empty appender — nothing may have been
			// appended, then.
			if app.NumTx() != 0 {
				t.Fatalf("nil snapshot after %d transactions", app.NumTx())
			}
			return
		}
		if m.NumSegments() > maxSegments+1 {
			t.Fatalf("snapshot has %d segments, budget %d+1", m.NumSegments(), maxSegments)
		}
		// Compaction is lossless on singleton totals.
		for it := 0; it < numItems; it++ {
			if m.ItemSupport(Item(it)) != exact[it] {
				t.Fatalf("item %d: snapshot support %d ≠ exact %d", it, m.ItemSupport(Item(it)), exact[it])
			}
		}
		// And the segment-wise bound stays sound on pairs: ubsup ≥ sup.
		support := func(x Itemset) int64 {
			var n int64
			for _, tx := range txs {
				j := 0
				for _, it := range tx {
					if j < len(x) && it == x[j] {
						j++
					}
				}
				if j == len(x) {
					n++
				}
			}
			return n
		}
		for a := Item(0); a < numItems; a++ {
			for b := a + 1; b < numItems; b++ {
				x := Itemset{a, b}
				if ub, sup := m.UpperBound(x), support(x); ub < sup {
					t.Fatalf("ubsup(%v) = %d < sup = %d", x, ub, sup)
				}
			}
		}
	})
}
