// Command explore demonstrates the property the paper contrasts against
// DHP and FP-growth (Sections 2 and 3): the OSSM is query-independent.
// Knowledge discovery is iterative — an analyst mines, inspects, adjusts
// the threshold and mines again. The OSSM is built once and serves every
// threshold; structures like the FP-tree are rebuilt per query.
package main

import (
	"fmt"
	"log"
	"time"

	ossm "github.com/ossm-mining/ossm"
)

func main() {
	log.SetFlags(0)

	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(25000, 11))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}

	// One compile-time segmentation…
	t0 := time.Now()
	ix, err := ossm.Build(d, ossm.BuildOptions{
		Segments: 60, Algorithm: ossm.RandomGreedy,
		BubbleSize: 100, BubbleMinSupport: 0.0025, Seed: 5,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("built %d-segment OSSM (%.1f KB) once in %v\n",
		ix.NumSegments(), float64(ix.SizeBytes())/1024, time.Since(t0).Round(time.Millisecond))

	// …then an exploration session sweeping the threshold. Note the
	// bubble list was formed at 0.25% support; the index still serves
	// every other threshold (Figure 6's setting).
	fmt.Printf("\n%-10s %-10s %-12s %-12s %-10s\n", "support", "frequent", "plain", "with OSSM", "speedup")
	for _, support := range []float64{0.05, 0.02, 0.01, 0.005} {
		t0 = time.Now()
		plain, err := ossm.MineApriori(d, support, nil)
		if err != nil {
			log.Fatalf("mine: %v", err)
		}
		tPlain := time.Since(t0)

		t0 = time.Now()
		pruned, err := ossm.MineApriori(d, support, ix)
		if err != nil {
			log.Fatalf("mine: %v", err)
		}
		tOSSM := time.Since(t0)

		if !plain.Equal(pruned) {
			log.Fatalf("BUG: results differ at support %g", support)
		}
		fmt.Printf("%-10.3f %-10d %-12v %-12v %.1fx\n",
			support, plain.NumFrequent(),
			tPlain.Round(time.Millisecond), tOSSM.Round(time.Millisecond),
			float64(tPlain)/float64(tOSSM))
	}

	fmt.Println("\nsame index, four thresholds — zero rebuild cost between queries.")
}
