// Command alarms reproduces the paper's first experimental setting in
// spirit: frequent-pattern discovery over a telecommunication-alarm log
// (the proprietary Nokia data set is simulated by a cascade-correlated
// generator — see DESIGN.md). It exercises both views the paper
// mentions: alarm windows as transactions, and WINEPI-style episode
// discovery over the raw event stream, in both cases with OSSM pruning.
package main

import (
	"fmt"
	"log"

	ossm "github.com/ossm-mining/ossm"
)

func main() {
	log.SetFlags(0)

	// ~5000 alarm windows over 200 alarm types, as in the paper.
	d, err := ossm.GenerateAlarm(ossm.DefaultAlarm(2026))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	fmt.Printf("alarm log: %d windows, %d alarm types, avg %.1f alarms per window\n",
		d.NumTx(), d.NumItems(), d.AvgTxLen())

	// Transaction view: which alarm combinations co-occur?
	ix, err := ossm.Build(d, ossm.BuildOptions{
		Pages: 50, Segments: 16, Algorithm: ossm.Greedy, Seed: 3,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	const support = 0.02
	res, err := ossm.MineApriori(d, support, ix)
	if err != nil {
		log.Fatalf("mine: %v", err)
	}
	fmt.Printf("\nco-occurring alarm sets at %.0f%% support: %d\n", support*100, res.NumFrequent())
	if l2 := res.Level(2); l2 != nil {
		fmt.Printf("candidate pairs: %d generated, %d pruned by the OSSM, %d counted\n",
			l2.Stats.Generated, l2.Stats.Pruned, l2.Stats.Counted)
	}
	// The largest frequent alarm combination is the interesting cascade.
	var biggest ossm.Counted
	for _, c := range res.All() {
		if len(c.Items) > len(biggest.Items) {
			biggest = c
		}
	}
	fmt.Printf("largest frequent cascade: %v (fires together %d times)\n", biggest.Items, biggest.Count)

	// Episode view: flatten the windows into an event stream and mine
	// parallel episodes over sliding windows — the OSSM applies to any
	// monotone frequency, so the same machinery prunes episode
	// candidates.
	var stream []ossm.Item
	for i := 0; i < d.NumTx(); i++ {
		stream = append(stream, d.Tx(i)...)
	}
	seq, err := ossm.SequenceFromTypes(d.NumItems(), stream)
	if err != nil {
		log.Fatalf("sequence: %v", err)
	}
	eres, err := ossm.MineEpisodes(seq, ossm.EpisodeOptions{
		Width:        8,
		MinFrequency: 0.02,
		Segmentation: &ossm.SegmentOptions{
			Algorithm:      ossm.RandomGreedy,
			TargetSegments: 16,
			MidSegments:    64,
			Seed:           4,
		},
		Pages: 256,
	})
	if err != nil {
		log.Fatalf("episodes: %v", err)
	}
	fmt.Printf("\nepisodes: %d frequent parallel episodes over %d windows (width 8)\n",
		eres.NumFrequent(), eres.Windows)
	fmt.Printf("episode candidates checked against the OSSM: %d, pruned: %d (%.1f%%)\n",
		eres.Checked, eres.Pruned, 100*float64(eres.Pruned)/float64(max64(eres.Checked, 1)))

	// MINEPI view: minimal occurrences yield predictive rules — "after
	// this alarm prefix, the cascade completes within the width bound".
	mres, err := ossm.MineMinimalEpisodes(seq, ossm.MinimalOptions{
		MaxWidth: 8,
		MinCount: 200,
		MaxLen:   3,
		Segmentation: &ossm.SegmentOptions{
			Algorithm:      ossm.RandomGreedy,
			TargetSegments: 16,
			MidSegments:    64,
			Seed:           5,
		},
		Pages: 256,
	})
	if err != nil {
		log.Fatalf("minimal episodes: %v", err)
	}
	rules, err := mres.Rules(0.7)
	if err != nil {
		log.Fatalf("episode rules: %v", err)
	}
	fmt.Printf("\nMINEPI: %d episodes with ≥200 minimal occurrences; strongest prediction rules:\n", mres.NumFrequent())
	for i, r := range rules {
		if i == 3 {
			break
		}
		fmt.Printf("  %v\n", r)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
