// Command retail models the paper's motivating skewed scenario: a
// supermarket whose transactions run from summer to winter, so half the
// items peak in the first half of the year and half in the second
// (Section 6.1's skewed-synthetic data). It measures how much of the
// candidate space each segmentation algorithm removes and demonstrates
// the paper's claim that "the more skewed the data, the more effective
// the OSSM".
package main

import (
	"fmt"
	"log"
	"time"

	ossm "github.com/ossm-mining/ossm"
)

func main() {
	log.SetFlags(0)

	seasonal, err := ossm.GenerateSkewed(ossm.DefaultSkewed(30000, 7))
	if err != nil {
		log.Fatalf("generate seasonal: %v", err)
	}
	regularCfg := ossm.DefaultQuest(30000, 7)
	regular, err := ossm.GenerateQuest(regularCfg)
	if err != nil {
		log.Fatalf("generate regular: %v", err)
	}
	fmt.Printf("seasonal store: %d transactions, %d items\n", seasonal.NumTx(), seasonal.NumItems())

	const support = 0.01
	fmt.Println("\nfraction of candidate pairs NOT pruned by a 40-segment OSSM (lower is better):")
	fmt.Printf("%-14s %-12s %-12s\n", "algorithm", "seasonal", "regular")
	for _, alg := range []ossm.Algorithm{ossm.Random, ossm.RandomRC, ossm.RandomGreedy} {
		fmt.Printf("%-14s %-12s %-12s\n", alg,
			surviving(seasonal, alg, support),
			surviving(regular, alg, support))
	}

	// The recipe (paper Figure 7), with the skew question answered by
	// measurement: a cheap probe OSSM compares item variability across
	// segments against sampling noise.
	scenario, err := ossm.AutoScenario(seasonal, ossm.AutoScenarioOptions{LargeSegmentBudget: true})
	if err != nil {
		log.Fatalf("scenario: %v", err)
	}
	rec := ossm.Recommend(scenario)
	fmt.Printf("\nmeasured skew: %v; recipe for a big-budget seasonal store: %v (bubble list: %v)\n",
		scenario.SkewedData, rec.Algorithm, rec.UseBubble)

	// End-to-end timing on the seasonal data.
	ix, err := ossm.Build(seasonal, ossm.BuildOptions{
		Segments: 40, Algorithm: ossm.RandomGreedy,
		BubbleSize: 100, BubbleMinSupport: 0.0025, Seed: 1,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	t0 := time.Now()
	plain, err := ossm.MineApriori(seasonal, support, nil)
	if err != nil {
		log.Fatalf("mine: %v", err)
	}
	tPlain := time.Since(t0)
	t0 = time.Now()
	pruned, err := ossm.MineApriori(seasonal, support, ix)
	if err != nil {
		log.Fatalf("mine: %v", err)
	}
	tOSSM := time.Since(t0)
	if !plain.Equal(pruned) {
		log.Fatal("BUG: results differ")
	}
	fmt.Printf("\nApriori at %.0f%% support: %v without OSSM, %v with (%.1fx speedup), %d itemsets either way\n",
		support*100, tPlain.Round(time.Millisecond), tOSSM.Round(time.Millisecond),
		float64(tPlain)/float64(tOSSM), plain.NumFrequent())
}

// surviving formats the fraction of candidate 2-itemsets that survive an
// OSSM built by the given algorithm.
func surviving(d *ossm.Dataset, alg ossm.Algorithm, support float64) string {
	ix, err := ossm.Build(d, ossm.BuildOptions{
		Segments: 40, Algorithm: alg,
		BubbleSize: 100, BubbleMinSupport: 0.0025, Seed: 99,
	})
	if err != nil {
		log.Fatalf("build %v: %v", alg, err)
	}
	res, err := ossm.MineApriori(d, support, ix)
	if err != nil {
		log.Fatalf("mine %v: %v", alg, err)
	}
	l2 := res.Level(2)
	if l2 == nil || l2.Stats.Generated == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(l2.Stats.Counted)/float64(l2.Stats.Generated))
}
