// Command quickstart is the smallest end-to-end tour of the library:
// generate a synthetic basket dataset, build an OSSM index, and mine
// frequent itemsets with and without it, showing that the results agree
// while the OSSM removes most of the candidate 2-itemsets.
package main

import (
	"fmt"
	"log"

	ossm "github.com/ossm-mining/ossm"
)

func main() {
	log.SetFlags(0)

	// A regular-synthetic dataset in the paper's family: 20 000 baskets
	// over 1000 items.
	d, err := ossm.GenerateQuest(ossm.DefaultQuest(20000, 42))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	fmt.Printf("dataset: %d transactions, %d items, avg length %.1f\n",
		d.NumTx(), d.NumItems(), d.AvgTxLen())

	// Build the OSSM once ("compile time"). Random-Greedy with a bubble
	// list is the paper's recommended configuration for medium inputs.
	ix, err := ossm.Build(d, ossm.BuildOptions{
		Segments:         40,
		Algorithm:        ossm.RandomGreedy,
		BubbleSize:       100,
		BubbleMinSupport: 0.0025,
		Seed:             1,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("index:   %d segments, %.1f KB, built in %v\n",
		ix.NumSegments(), float64(ix.SizeBytes())/1024, ix.SegmentationTime())

	// Mine at 1% support, with and without the index.
	const support = 0.01
	plain, err := ossm.MineApriori(d, support, nil)
	if err != nil {
		log.Fatalf("mine: %v", err)
	}
	pruned, err := ossm.MineApriori(d, support, ix)
	if err != nil {
		log.Fatalf("mine with OSSM: %v", err)
	}
	if !plain.Equal(pruned) {
		log.Fatal("BUG: the OSSM changed the result")
	}
	fmt.Printf("mining:  %d frequent itemsets at %.0f%% support (identical with and without the OSSM)\n",
		plain.NumFrequent(), support*100)
	if l2p, l2o := plain.Level(2), pruned.Level(2); l2p != nil && l2o != nil {
		fmt.Printf("pass 2:  %d candidate pairs without the OSSM, %d with (%.1f%% pruned)\n",
			l2p.Stats.Counted, l2o.Stats.Counted,
			100*float64(l2o.Stats.Pruned)/float64(l2o.Stats.Generated))
	}

	// The same frequent sets feed association rules.
	rules, err := ossm.GenerateRules(pruned, d.NumTx(), 0.6)
	if err != nil {
		log.Fatalf("rules: %v", err)
	}
	fmt.Printf("rules:   %d rules at confidence ≥ 0.6; strongest:\n", len(rules))
	for i, r := range rules {
		if i == 3 {
			break
		}
		fmt.Printf("         %v\n", r)
	}
}
