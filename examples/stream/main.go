// Command stream demonstrates the online use of the OSSM (the setting
// of the SSM precursor work the paper builds on): alarms arrive as a
// live feed, an Appender maintains the segment support map
// incrementally, and an analyst takes periodic snapshots to mine the
// data seen so far — without ever re-scanning history to rebuild the
// index.
package main

import (
	"fmt"
	"log"

	ossm "github.com/ossm-mining/ossm"
)

func main() {
	log.SetFlags(0)

	// The "live feed": an alarm log replayed transaction by transaction.
	feed, err := ossm.GenerateAlarm(ossm.DefaultAlarm(99))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}

	app, err := ossm.NewAppender(feed.NumItems(), ossm.AppenderOptions{
		PageSize:    50,
		MaxSegments: 24,
		Algorithm:   ossm.Greedy, // compaction quality over latency
		Seed:        1,
	})
	if err != nil {
		log.Fatalf("appender: %v", err)
	}

	const support = 0.03
	fmt.Printf("streaming %d alarm windows; snapshotting every 1000\n\n", feed.NumTx())
	fmt.Printf("%-10s %-10s %-12s %-14s %-12s\n", "seen", "segments", "index KB", "freq itemsets", "C2 pruned")
	for i := 0; i < feed.NumTx(); i++ {
		if err := app.Add(feed.Tx(i)); err != nil {
			log.Fatalf("add: %v", err)
		}
		if (i+1)%1000 != 0 {
			continue
		}
		m, err := app.Snapshot()
		if err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		// Mine the history seen so far with the streaming index.
		seen := feed.Slice(0, i+1)
		minCount := ossm.MinCountFor(seen, support)
		pruner := &ossm.Pruner{Map: m, MinCount: minCount}
		res, err := ossm.MineAprioriFiltered(seen, support, pruner)
		if err != nil {
			log.Fatalf("mine: %v", err)
		}
		l2 := res.Level(2)
		pruned := "n/a"
		if l2 != nil && l2.Stats.Generated > 0 {
			pruned = fmt.Sprintf("%.1f%%", 100*float64(l2.Stats.Pruned)/float64(l2.Stats.Generated))
		}
		fmt.Printf("%-10d %-10d %-12.1f %-14d %-12s\n",
			i+1, m.NumSegments(), float64(m.SizeBytes())/1024, res.NumFrequent(), pruned)
	}

	fmt.Println("\nthe index never saw a rebuild scan: pages fold into segments as they fill.")
}
