module github.com/ossm-mining/ossm

go 1.22
