package ossm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/ossm-mining/ossm/internal/core"
)

// Index persistence. The OSSM is a compile-time structure (paper
// Section 3): build it once, save it next to the data, and reload it for
// every later mining session at any support threshold.
//
// Format: "OSSMIDX1", little-endian uint64 transaction count, then the
// serialized segment support map.

var indexMagic = [8]byte{'O', 'S', 'S', 'M', 'I', 'D', 'X', '1'}

// ErrNotIndex reports that a stream does not start with the OSSM index
// magic. LoadIndex and ReadIndex wrap it; match with errors.Is.
var ErrNotIndex = errors.New("ossm: not an OSSM index file")

// ErrTruncated reports that an index stream is a valid prefix cut short —
// every byte read parsed, but the stream ended before the header's
// promise was fulfilled. Recovery code distinguishes it from structural
// corruption (ErrNotIndex, a bad header): a torn snapshot means "fall
// back to the previous one", a corrupt file means the path never held an
// index. LoadIndex and ReadIndex wrap it; match with errors.Is.
var ErrTruncated = errors.New("ossm: truncated index")

// countingWriter tracks bytes written for WriteTo's contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the index to w in the Save file format, implementing
// io.WriterTo. Save is WriteTo plus file handling; serving systems use
// WriteTo directly to ship indexes over sockets or into object stores.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return cw.n, err
	}
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(ix.numTx))
	if _, err := bw.Write(n[:]); err != nil {
		return cw.n, err
	}
	if err := core.WriteMap(bw, ix.m); err != nil {
		return cw.n, err
	}
	err := bw.Flush()
	return cw.n, err
}

// Save writes the index to path.
func (ix *Index) Save(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = ix.WriteTo(f)
	return err
}

// ReadIndex reads an index in the Save file format from r — the stream
// counterpart of LoadIndex. The loaded index answers UpperBound and
// Pruner exactly as the original; the page assignment and build timing
// are not persisted.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: reading index magic: %v", ErrTruncated, err)
		}
		return nil, fmt.Errorf("ossm: reading index magic: %w", err)
	}
	if magic != indexMagic {
		return nil, ErrNotIndex
	}
	var n [8]byte
	if _, err := io.ReadFull(br, n[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: reading index header: %v", ErrTruncated, err)
		}
		return nil, fmt.Errorf("ossm: reading index header: %w", err)
	}
	// Validate the declared transaction count before it becomes an int:
	// a corrupted header must not wrap negative on 32-bit hosts or smuggle
	// an absurd count into threshold arithmetic.
	numTx := binary.LittleEndian.Uint64(n[:])
	const maxTx = 1 << 40
	if numTx > maxTx {
		return nil, fmt.Errorf("ossm: index header claims %d transactions (limit %d): corrupt file?", numTx, uint64(maxTx))
	}
	m, err := core.ReadMap(br)
	if err != nil {
		if errors.Is(err, core.ErrTruncated) {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return nil, err
	}
	return &Index{m: m, numTx: int(numTx)}, nil
}

// LoadIndex reads an index previously written by Save.
func LoadIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix, err := ReadIndex(f)
	if err != nil {
		if errors.Is(err, ErrNotIndex) {
			return nil, fmt.Errorf("%w: %s", ErrNotIndex, path)
		}
		return nil, err
	}
	return ix, nil
}
