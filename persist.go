package ossm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"github.com/ossm-mining/ossm/internal/core"
)

// Index persistence. The OSSM is a compile-time structure (paper
// Section 3): build it once, save it next to the data, and reload it for
// every later mining session at any support threshold.
//
// Format: "OSSMIDX1", little-endian uint64 transaction count, then the
// serialized segment support map.

var indexMagic = [8]byte{'O', 'S', 'S', 'M', 'I', 'D', 'X', '1'}

// Save writes the index to path.
func (ix *Index) Save(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriter(f)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return err
	}
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(ix.numTx))
	if _, err := bw.Write(n[:]); err != nil {
		return err
	}
	if err := core.WriteMap(bw, ix.m); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadIndex reads an index previously written by Save. The loaded index
// answers UpperBound and Pruner exactly as the original; the page
// assignment and build timing are not persisted.
func LoadIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("ossm: reading index magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("ossm: %s is not an OSSM index file", path)
	}
	var n [8]byte
	if _, err := io.ReadFull(br, n[:]); err != nil {
		return nil, fmt.Errorf("ossm: reading index header: %w", err)
	}
	// Validate the declared transaction count before it becomes an int:
	// a corrupted header must not wrap negative on 32-bit hosts or smuggle
	// an absurd count into threshold arithmetic.
	numTx := binary.LittleEndian.Uint64(n[:])
	const maxTx = 1 << 40
	if numTx > maxTx {
		return nil, fmt.Errorf("ossm: index header claims %d transactions (limit %d): corrupt file?", numTx, uint64(maxTx))
	}
	m, err := core.ReadMap(br)
	if err != nil {
		return nil, err
	}
	return &Index{m: m, numTx: int(numTx)}, nil
}
