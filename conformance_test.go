package ossm

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/ossm-mining/ossm/internal/oracle"
)

// conformanceDataset builds a seeded random dataset dense enough that
// every miner has multi-item frequent sets to agree (or disagree) on.
func conformanceDataset(seed int64, numItems, numTx int, p float64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	b := NewDatasetBuilder(numItems)
	for i := 0; i < numTx; i++ {
		var tx []Item
		for it := 0; it < numItems; it++ {
			if r.Float64() < p {
				tx = append(tx, Item(it))
			}
		}
		if err := b.Append(tx); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// TestMinerRegistryComplete pins the set of algorithms reachable through
// the registry; a miner whose init() registration is dropped disappears
// from every dispatch path at once, so catch it here.
func TestMinerRegistryComplete(t *testing.T) {
	want := []string{"apriori", "depthproject", "dhp", "eclat", "fpgrowth", "partition"}
	got := Miners()
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("Miners() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Miners() = %v, want %v", got, want)
		}
	}
}

// TestMinerConformance drives every registered miner through the registry
// on small seeded random datasets and asserts they all produce the same
// frequent itemsets with the same counts — with and without an OSSM
// pruner, serial and with a worker pool.
func TestMinerConformance(t *testing.T) {
	cases := []struct {
		seed       int64
		numItems   int
		numTx      int
		p          float64
		minSupport float64
	}{
		{seed: 1, numItems: 12, numTx: 200, p: 0.3, minSupport: 0.08},
		{seed: 2, numItems: 8, numTx: 120, p: 0.5, minSupport: 0.2},
		{seed: 3, numItems: 20, numTx: 300, p: 0.15, minSupport: 0.03},
	}
	for _, tc := range cases {
		d := conformanceDataset(tc.seed, tc.numItems, tc.numTx, tc.p)
		ix, err := Build(d, BuildOptions{Segments: 10, Seed: tc.seed})
		if err != nil {
			t.Fatalf("seed %d: Build: %v", tc.seed, err)
		}
		baseline, err := Mine("apriori", d, tc.minSupport, MineOptions{})
		if err != nil {
			t.Fatalf("seed %d: baseline apriori: %v", tc.seed, err)
		}
		if baseline.NumFrequent() == 0 {
			t.Fatalf("seed %d: baseline found nothing; pick a denser configuration", tc.seed)
		}
		for _, name := range Miners() {
			for _, workers := range []int{1, 4} {
				for _, withOSSM := range []bool{false, true} {
					var f Filter
					if withOSSM {
						f = ix.Pruner(tc.minSupport)
					}
					res, err := Mine(name, d, tc.minSupport, MineOptions{
						Filter:  f,
						Workers: workers,
						Params:  map[string]int{"partitions": 3},
					})
					if err != nil {
						t.Fatalf("seed %d: %s (workers=%d ossm=%v): %v", tc.seed, name, workers, withOSSM, err)
					}
					if !baseline.Equal(res) {
						t.Errorf("seed %d: %s (workers=%d ossm=%v) disagrees with apriori: %d vs %d frequent",
							tc.seed, name, workers, withOSSM, res.NumFrequent(), baseline.NumFrequent())
					}
				}
			}
		}
	}
}

// TestMinerDifferentialOracle drives every registered miner against the
// brute-force oracle on ~50 random small datasets of varying density and
// threshold, serial and pooled, with and without an OSSM, all
// instrumented — any divergence from exhaustive enumeration fails, and
// the attached telemetry must satisfy its own accounting invariants.
func TestMinerDifferentialOracle(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		numItems := 4 + r.Intn(7)
		numTx := 10 + r.Intn(50)
		density := 0.15 + 0.55*r.Float64()
		d := conformanceDataset(int64(trial), numItems, numTx, density)
		minCount := int64(2 + r.Intn(1+numTx/5))
		want, err := oracle.Mine(d, minCount, 0)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		var f Filter
		withOSSM := trial%2 == 0
		if withOSSM {
			ix, err := Build(d, BuildOptions{Segments: 1 + r.Intn(4), Seed: int64(trial)})
			if err != nil {
				t.Fatalf("trial %d: Build: %v", trial, err)
			}
			f = ix.PrunerAt(minCount)
		}
		workers := 1
		if trial%3 == 0 {
			workers = 4
		}
		for _, name := range Miners() {
			instr := NewInstrumentation()
			res, err := MineAt(name, d, minCount, MineOptions{
				Filter:     f,
				Workers:    workers,
				Params:     map[string]int{"partitions": 2},
				Instrument: instr,
			})
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, name, err)
			}
			if !want.Equal(res) {
				t.Errorf("trial %d: %s (workers=%d ossm=%v minCount=%d) disagrees with oracle: %d vs %d frequent",
					trial, name, workers, withOSSM, minCount, res.NumFrequent(), want.NumFrequent())
			}
			rep := res.Stats.Telemetry
			if rep == nil {
				t.Fatalf("trial %d: %s: instrumented run has no telemetry report", trial, name)
			}
			if rep.Counted > rep.Generated {
				t.Errorf("trial %d: %s: counted %d exceeds generated %d", trial, name, rep.Counted, rep.Generated)
			}
			if rep.PrunedOSSM+rep.PrunedHash+rep.Counted > rep.Generated {
				t.Errorf("trial %d: %s: pruned %d+%d + counted %d exceeds generated %d",
					trial, name, rep.PrunedOSSM, rep.PrunedHash, rep.Counted, rep.Generated)
			}
			if !withOSSM && rep.PrunedOSSM != 0 {
				t.Errorf("trial %d: %s: %d OSSM-pruned without a pruner", trial, name, rep.PrunedOSSM)
			}
		}
	}
}

// TestMineUnknownMiner pins the error path of registry dispatch.
func TestMineUnknownMiner(t *testing.T) {
	d := conformanceDataset(7, 4, 10, 0.5)
	if _, err := Mine("nosuch", d, 0.1, MineOptions{}); err == nil {
		t.Fatal("Mine(\"nosuch\") succeeded, want unknown-miner error")
	}
}
