package ossm

import (
	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/depthproject"
	"github.com/ossm-mining/ossm/internal/eclat"
	"github.com/ossm-mining/ossm/internal/episodes"
	"github.com/ossm-mining/ossm/internal/fpgrowth"
	"github.com/ossm-mining/ossm/internal/gen"
	"github.com/ossm-mining/ossm/internal/mining"
	"github.com/ossm-mining/ossm/internal/partition"
	"github.com/ossm-mining/ossm/internal/rules"
)

// Synthetic workload generators (paper Section 6.1).
type (
	// QuestConfig parameterizes the IBM Quest-style generator
	// ("regular-synthetic").
	QuestConfig = gen.QuestConfig
	// SkewedConfig parameterizes the seasonal generator
	// ("skewed-synthetic").
	SkewedConfig = gen.SkewedConfig
	// AlarmConfig parameterizes the telecom-alarm surrogate (for the
	// proprietary Nokia data set).
	AlarmConfig = gen.AlarmConfig
)

// DefaultQuest returns the canonical regular-synthetic configuration
// (1000 items, T10.I4).
func DefaultQuest(numTx int, seed int64) QuestConfig { return gen.DefaultQuest(numTx, seed) }

// GenerateQuest produces a regular-synthetic dataset.
func GenerateQuest(c QuestConfig) (*Dataset, error) { return gen.Quest(c) }

// DefaultSkewed returns the canonical skewed-synthetic configuration.
func DefaultSkewed(numTx int, seed int64) SkewedConfig { return gen.DefaultSkewed(numTx, seed) }

// GenerateSkewed produces a seasonal skewed-synthetic dataset.
func GenerateSkewed(c SkewedConfig) (*Dataset, error) { return gen.Skewed(c) }

// DefaultAlarm returns the canonical alarm-surrogate configuration
// (~5000 transactions, 200 alarm types).
func DefaultAlarm(seed int64) AlarmConfig { return gen.DefaultAlarm(seed) }

// GenerateAlarm produces a telecom-alarm surrogate dataset.
func GenerateAlarm(c AlarmConfig) (*Dataset, error) { return gen.Alarm(c) }

// Episode mining (WINEPI over sliding windows).
type (
	// Event is one timestamped event of a sequence.
	Event = episodes.Event
	// Sequence is an ordered event log.
	Sequence = episodes.Sequence
	// EpisodeOptions configures MineEpisodes.
	EpisodeOptions = episodes.Options
	// EpisodeResult carries frequent parallel episodes plus OSSM
	// counters.
	EpisodeResult = episodes.Result
)

// NewSequence validates and wraps an event log.
func NewSequence(numTypes int, events []Event) (*Sequence, error) {
	return episodes.NewSequence(numTypes, events)
}

// SequenceFromTypes builds a unit-spaced Sequence from plain event types.
func SequenceFromTypes(numTypes int, types []Item) (*Sequence, error) {
	return episodes.FromTypes(numTypes, types)
}

// MineEpisodes discovers frequent parallel episodes of s.
func MineEpisodes(s *Sequence, opts EpisodeOptions) (*EpisodeResult, error) {
	return episodes.Mine(s, opts)
}

// SegmentOptions re-exports the low-level segmentation options for
// callers (like MineEpisodes) that want full control.
type SegmentOptions = core.Options

// Association rules.
type Rule = rules.Rule

// GenerateRules derives association rules with confidence ≥ minConf from
// a mining result over a dataset of numTx transactions.
func GenerateRules(res *Result, numTx int, minConf float64) ([]Rule, error) {
	return rules.Generate(res, numTx, minConf)
}

// MineFPGrowth mines frequent itemsets with FP-growth (no candidate
// generation — the OSSM does not apply; included as the related-work
// baseline and cross-check oracle).
func MineFPGrowth(d *Dataset, minSupport float64) (*Result, error) {
	return Mine(fpgrowth.Name, d, minSupport, MineOptions{})
}

// MinePartition mines frequent itemsets with the Partition algorithm.
// ix may be nil; when present it prunes the global candidate set
// (Section 7 of the paper).
func MinePartition(d *Dataset, minSupport float64, numPartitions int, ix *Index) (*Result, error) {
	minCount := mining.MinCountFor(d, minSupport)
	return MineAt(partition.Name, d, minCount, MineOptions{
		Filter: indexFilter(ix, minCount),
		Params: map[string]int{"partitions": numPartitions},
	})
}

// MineDepthProject mines frequent itemsets depth-first (DepthProject
// style). ix may be nil; when present it prunes lexicographic extensions
// before their projections are counted (Section 7 of the paper).
func MineDepthProject(d *Dataset, minSupport float64, ix *Index) (*Result, error) {
	minCount := mining.MinCountFor(d, minSupport)
	return MineAt(depthproject.Name, d, minCount, MineOptions{Filter: indexFilter(ix, minCount)})
}

// MineEclat mines frequent itemsets with dEclat (diffset-based vertical
// mining). ix may be nil; when present it prunes candidate extensions
// before their diffsets are materialized.
func MineEclat(d *Dataset, minSupport float64, ix *Index) (*Result, error) {
	minCount := mining.MinCountFor(d, minSupport)
	return MineAt(eclat.Name, d, minCount, MineOptions{Filter: indexFilter(ix, minCount)})
}

// Paginate splits d into pages of txPerPage transactions.
func Paginate(d *Dataset, txPerPage int) []Page { return dataset.Paginate(d, txPerPage) }

// PaginateN splits d into exactly m near-equal pages.
func PaginateN(d *Dataset, m int) []Page { return dataset.PaginateN(d, m) }

// MinSegments returns n_min for the given dataset paginated into m pages:
// the number of distinct segment configurations (Theorem 1 / Corollary 1
// of the paper).
func MinSegments(d *Dataset, m int) int {
	return core.MinSegments(dataset.PageCounts(d, dataset.PaginateN(d, m)))
}
