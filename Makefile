GO ?= go

.PHONY: all build vet test race fuzz bench examples experiments clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing pass over every parser (text/binary datasets, OSSM maps).
fuzz:
	$(GO) test -run Fuzz -fuzz FuzzReadText   -fuzztime 15s ./internal/dataset
	$(GO) test -run Fuzz -fuzz FuzzReadBinary -fuzztime 15s ./internal/dataset
	$(GO) test -run Fuzz -fuzz FuzzReadMap    -fuzztime 15s ./internal/core

# Scaled-down deterministic versions of every paper table/figure plus
# micro-benchmarks (see EXPERIMENTS.md for recorded full runs).
bench:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/retail
	$(GO) run ./examples/alarms
	$(GO) run ./examples/explore
	$(GO) run ./examples/stream

# Regenerate every table and figure of the paper at the default scale.
experiments:
	$(GO) run ./cmd/ossm-bench all

clean:
	$(GO) clean ./...
