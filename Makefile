GO ?= go

.PHONY: all build vet test race fuzz fuzz-smoke obs-smoke loadgen-smoke remote-smoke ingest-smoke fleet-obs-smoke kernel-smoke cover bench bench-kernels bench-loadgen examples experiments clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet race fuzz-smoke obs-smoke loadgen-smoke remote-smoke ingest-smoke fleet-obs-smoke kernel-smoke cover
	$(GO) test ./...

# End-to-end sweep of the observability surface through the real CLI:
# access log, span tree, Prometheus exposition, pprof mount.
obs-smoke:
	$(GO) test -run 'TestObsSmoke|TestObservabilityEndToEnd|TestPrometheusGolden' ./cmd/ossm-serve ./internal/server

# Short load-generator run against an in-process 2-shard fleet: nonzero
# throughput, zero errors, parseable report. Part of the default gate.
loadgen-smoke:
	$(GO) test -run 'TestLoadgen' -count=1 ./cmd/ossm-loadgen

# End-to-end remote fleet: two real worker processes, a coordinator
# routing over them from a -topology file (including a SIGHUP reload),
# ossm-loadgen driving it over HTTP with zero errors, and the answers
# diffed bit-identically against the library. Part of the default gate.
remote-smoke:
	$(GO) test -run 'TestRemoteSmoke' -count=1 ./cmd/ossm-serve

# Durability gate: a real ossm-serve ingesting a live stream is
# SIGKILLed mid-stream, restarted on the same WAL directory, and must
# recover every acknowledged record with exact counts. Part of the
# default gate.
ingest-smoke:
	$(GO) test -run 'TestIngestSmoke' -count=1 ./cmd/ossm-serve

# Cross-process observability gate: two real worker processes plus a
# coordinator, a batch through the fleet, then the assembled trace at
# /v1/traces must stitch worker serve spans under the coordinator's RPC
# spans with non-empty shard attribution, /v1/fleetz must report a
# healthy fleet, and ossm-loadgen -fleetz must poll it. Part of the
# default gate.
fleet-obs-smoke:
	$(GO) test -run 'TestFleetObsSmoke' -count=1 ./cmd/ossm-serve

# Coverage floor for the packages the serving path leans on: the facade
# (bound queries, persistence, recipes), the HTTP server and the
# observability layer. Fails if any drops below $(COVER_FLOOR)%. The
# durability layer carries its own higher floor ($(WAL_COVER_FLOOR)%) —
# the crash-point harness is expected to exercise nearly every path.
COVER_FLOOR ?= 75
WAL_COVER_FLOOR ?= 85
cover:
	@check() { \
		line=$$($(GO) test -cover $$1 | grep -o 'coverage: [0-9.]*%' | head -1); \
		pct=$$(echo $$line | sed 's/coverage: //; s/%//'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$1"; exit 1; fi; \
		echo "cover: $$1 $$pct% (floor $$2%)"; \
		ok=$$(echo "$$pct $$2" | awk '{print ($$1 >= $$2) ? 1 : 0}'); \
		if [ "$$ok" != "1" ]; then echo "cover: $$1 below the $$2% floor"; exit 1; fi; \
	}; \
	for pkg in . ./internal/server ./internal/obs ./internal/shard ./internal/shard/remote; do \
		check $$pkg $(COVER_FLOOR) || exit 1; \
	done; \
	check ./internal/wal $(WAL_COVER_FLOOR)

race:
	$(GO) test -race ./...

# Short fuzzing pass over every parser (text/binary datasets, OSSM maps).
fuzz:
	$(GO) test -run Fuzz -fuzz FuzzReadText   -fuzztime 15s ./internal/dataset
	$(GO) test -run Fuzz -fuzz FuzzReadBinary -fuzztime 15s ./internal/dataset
	$(GO) test -run Fuzz -fuzz FuzzReadMap    -fuzztime 15s ./internal/core

# 10-second smoke of every fuzz target — part of the default test gate,
# so a regression any of them can find fails `make test`, not just a
# dedicated fuzzing run.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz FuzzReadText                -fuzztime 10s ./internal/dataset
	$(GO) test -run=NONE -fuzz FuzzReadBinary              -fuzztime 10s ./internal/dataset
	$(GO) test -run=NONE -fuzz FuzzReadMap                 -fuzztime 10s ./internal/core
	$(GO) test -run=NONE -fuzz 'FuzzBoundKernels$$'        -fuzztime 10s ./internal/core
	$(GO) test -run=NONE -fuzz FuzzBoundKernelsQuantized   -fuzztime 10s ./internal/core
	$(GO) test -run=NONE -fuzz FuzzIndexRoundTrip          -fuzztime 10s .
	$(GO) test -run=NONE -fuzz FuzzAppenderSnapshot        -fuzztime 10s .
	$(GO) test -run=NONE -fuzz FuzzWALReplay               -fuzztime 10s ./internal/wal

# Kernel-speedup regression gate: a reduced two-depth sweep of the
# bound-kernel microbenchmark must clear its per-regime speedup floors
# (at half margin, so a loaded machine doesn't flake it). The full-floor
# gate is `ossm-bench -check kernels`. Part of the default gate.
kernel-smoke:
	$(GO) run ./cmd/ossm-bench -sweep 16,2048 -check -check-margin 0.5 kernels > /dev/null

# Scaled-down deterministic versions of every paper table/figure plus
# micro-benchmarks (see EXPERIMENTS.md for recorded full runs).
bench:
	$(GO) test -bench=. -benchmem ./...

# Bound-kernel microbenchmark (DESIGN.md §7): ns per generation for the
# scalar bound, the per-candidate decision kernel and the batch kernel,
# with early-exit/abandon rates, across segment counts. Emits BENCH_5.json.
bench-kernels:
	$(GO) run ./cmd/ossm-bench -json kernels > BENCH_5.json
	@cat BENCH_5.json

# Sharded scatter-gather serving sweep (DESIGN.md §8): p50/p95/p99 and
# throughput for 1/2/4/8 shards with an emulated remote-shard scan time,
# so the overlap is measurable regardless of local core count. Emits
# BENCH_6.json.
bench-loadgen:
	$(GO) run ./cmd/ossm-loadgen -shards 1,2,4,8 -duration 3s -concurrency 4 \
		-batch 16 -tx 20000 -segments 256 -shard-delay 4ms -out BENCH_6.json
	@cat BENCH_6.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/retail
	$(GO) run ./examples/alarms
	$(GO) run ./examples/explore
	$(GO) run ./examples/stream

# Regenerate every table and figure of the paper at the default scale.
experiments:
	$(GO) run ./cmd/ossm-bench all

clean:
	$(GO) clean ./...
