// Benchmarks regenerating every table and figure of the paper's
// evaluation at a scaled-down, deterministic size (see EXPERIMENTS.md for
// the recorded full runs and cmd/ossm-bench for paper-scale executions).
// Each experiment bench reports the headline quantities of its artifact
// as custom metrics, so `go test -bench=.` prints the reproduced series.
package ossm

import (
	"fmt"
	"strings"
	"testing"

	"github.com/ossm-mining/ossm/internal/apriori"
	"github.com/ossm-mining/ossm/internal/bench"
	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// benchConfig is the scaled-down workload every experiment bench uses:
// small enough for a laptop test run, large enough that pass-2 candidate
// counting still dominates Apriori.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.NumTx = 6000
	cfg.Pages = 150
	cfg.BubbleSize = 150
	cfg.Reps = 1
	return cfg
}

// BenchmarkFig4aSpeedup reproduces Figure 4(a): Apriori speedup versus
// the number of segments for the Random, RC and Greedy algorithms.
func BenchmarkFig4aSpeedup(b *testing.B) {
	cfg := benchConfig()
	segs := []int{20, 40, 80}
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig4(cfg, segs)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			b.ReportMetric(p.Speedup, fmt.Sprintf("speedup-%s-n%d", p.Algorithm, p.Segments))
		}
	}
}

// BenchmarkFig4bCandidates reproduces Figure 4(b): the fraction of
// candidate 2-itemsets not pruned by the OSSM.
func BenchmarkFig4bCandidates(b *testing.B) {
	cfg := benchConfig()
	segs := []int{20, 40, 80}
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig4(cfg, segs)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			b.ReportMetric(p.C2Fraction, fmt.Sprintf("c2frac-%s-n%d", p.Algorithm, p.Segments))
		}
	}
}

// BenchmarkFig5aPure reproduces Figure 5(a): segmentation cost and
// speedup of the pure strategies at n_user = 40.
func BenchmarkFig5aPure(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig5a(cfg, 40)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.SegTime.Seconds(), fmt.Sprintf("segsec-%s", row.Strategy))
			b.ReportMetric(row.Speedup, fmt.Sprintf("speedup-%s", row.Strategy))
		}
	}
}

// BenchmarkFig5bHybrid reproduces Figure 5(b): the hybrid strategies
// with the Random phase stopping at n_mid.
func BenchmarkFig5bHybrid(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig5b(cfg, 40, 100)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.SegTime.Seconds(), fmt.Sprintf("segsec-%s", row.Strategy))
			b.ReportMetric(row.Speedup, fmt.Sprintf("speedup-%s", row.Strategy))
		}
	}
}

// BenchmarkFig6aBubbleCost reproduces Figure 6(a): segmentation cost
// versus bubble-list size (built at 0.25% support, queried at 1%).
func BenchmarkFig6aBubbleCost(b *testing.B) {
	cfg := benchConfig()
	pcts := []int{5, 20, 60}
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig6(cfg, 40, 100, pcts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			b.ReportMetric(p.SegTime.Seconds(), fmt.Sprintf("segsec-%s-b%d", p.Strategy, p.BubblePct))
		}
	}
}

// BenchmarkFig6bBubbleSpeedup reproduces Figure 6(b): speedup versus
// bubble-list size.
func BenchmarkFig6bBubbleSpeedup(b *testing.B) {
	cfg := benchConfig()
	pcts := []int{5, 20, 60}
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig6(cfg, 40, 100, pcts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			b.ReportMetric(p.Speedup, fmt.Sprintf("speedup-%s-b%d", p.Strategy, p.BubblePct))
		}
	}
}

// BenchmarkSec7DHP reproduces the Section 7 table: DHP runtime and |C2|
// with and without the OSSM.
func BenchmarkSec7DHP(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.RunSec7(cfg, 4096, 40)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.C2Plain), "c2-plain")
		b.ReportMetric(float64(r.C2OSSM), "c2-ossm")
		b.ReportMetric(r.TimePlain.Seconds(), "sec-plain")
		b.ReportMetric(r.TimeOSSM.Seconds(), "sec-ossm")
	}
}

// BenchmarkAblationSkew reproduces ablation A1: the OSSM's effect across
// data skew levels.
func BenchmarkAblationSkew(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.RunSkew(cfg, 40)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			name := row.Dataset
			if i := strings.IndexByte(name, ' '); i >= 0 {
				name = name[:i]
			}
			b.ReportMetric(row.C2Fraction, "c2frac-"+name)
		}
	}
}

// BenchmarkAblationHosts reproduces ablations A2/A3: the OSSM inside
// Apriori, Partition and DepthProject.
func BenchmarkAblationHosts(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.RunHosts(cfg, 40)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(float64(row.WorkPlain), "work-plain-"+row.Host)
			b.ReportMetric(float64(row.WorkOSSM), "work-ossm-"+row.Host)
		}
	}
}

// BenchmarkAblationEpisodes reproduces ablation A4: OSSM pruning during
// episode discovery over the alarm stream.
func BenchmarkAblationEpisodes(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.RunEpisodes(cfg, 6, 0.02)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Pruned), "pruned")
		b.ReportMetric(float64(r.Checked), "checked")
	}
}

// BenchmarkAblationMemory reproduces ablation A5: OSSM footprint versus
// segment budget.
func BenchmarkAblationMemory(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.RunMemory(cfg, []int{40, 150})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(float64(row.SizeBytes), fmt.Sprintf("bytes-n%d", row.Segments))
		}
	}
}

// BenchmarkAblationC2Method reproduces the counting-structure ablation:
// hash tree (candidate-bound) versus triangular array
// (candidate-insensitive) under OSSM pruning.
func BenchmarkAblationC2Method(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.RunC2Method(cfg, 40)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.HashPlain)/float64(r.HashOSSM), "speedup-hashtree")
		b.ReportMetric(float64(r.TriPlain)/float64(r.TriOSSM), "speedup-triangular")
	}
}

// --- Micro-benchmarks of the core operations -----------------------------

func microMap(b *testing.B, nSeg int) (*core.Map, *dataset.Dataset) {
	b.Helper()
	cfg := benchConfig()
	d, err := cfg.Regular()
	if err != nil {
		b.Fatal(err)
	}
	pages := dataset.PaginateN(d, cfg.Pages)
	rows := dataset.PageCounts(d, pages)
	seg, err := core.Segment(rows, core.Options{Algorithm: core.AlgRandom, TargetSegments: nSeg, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return seg.Map, d
}

// BenchmarkUpperBoundPair measures the pruning hot path: the pair bound
// of equation (1).
func BenchmarkUpperBoundPair(b *testing.B) {
	for _, nSeg := range []int{40, 150} {
		b.Run(fmt.Sprintf("segments=%d", nSeg), func(b *testing.B) {
			m, _ := microMap(b, nSeg)
			k := dataset.Item(m.NumItems())
			b.ResetTimer()
			var sink int64
			for i := 0; i < b.N; i++ {
				a := dataset.Item(i) % k
				c := dataset.Item(i+7) % k
				sink += m.UpperBoundPair(a, c)
			}
			_ = sink
		})
	}
}

// BenchmarkUpperBoundTriple measures the general bound on 3-itemsets.
func BenchmarkUpperBoundTriple(b *testing.B) {
	m, _ := microMap(b, 40)
	k := dataset.Item(m.NumItems())
	x := make(dataset.Itemset, 3)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		x[0] = dataset.Item(i) % (k - 2)
		x[1] = x[0] + 1
		x[2] = x[0] + 2
		sink += m.UpperBound(x)
	}
	_ = sink
}

// BenchmarkSumDiffPair measures the segmentation inner loop (full-domain
// and bubble-restricted).
func BenchmarkSumDiffPair(b *testing.B) {
	cfg := benchConfig()
	d, err := cfg.Regular()
	if err != nil {
		b.Fatal(err)
	}
	rows := dataset.PageCounts(d, dataset.PaginateN(d, cfg.Pages))
	for _, size := range []int{50, 250, 1000} {
		b.Run(fmt.Sprintf("items=%d", size), func(b *testing.B) {
			items := core.AllItems(cfg.NumItems)[:size]
			b.ResetTimer()
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += core.SumDiffPair(rows[i%len(rows)], rows[(i+1)%len(rows)], items)
			}
			_ = sink
		})
	}
}

// BenchmarkSegment measures end-to-end segmentation per algorithm.
func BenchmarkSegment(b *testing.B) {
	cfg := benchConfig()
	d, err := cfg.Regular()
	if err != nil {
		b.Fatal(err)
	}
	rows := dataset.PageCounts(d, dataset.PaginateN(d, cfg.Pages))
	bubble := core.BubbleListFromCounts(rows, mining.MinCountFor(d, cfg.BubbleSupport), cfg.BubbleSize)
	for _, alg := range []core.Algorithm{core.AlgRandom, core.AlgRC, core.AlgGreedy, core.AlgRandomRC, core.AlgRandomGreedy} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Segment(rows, core.Options{
					Algorithm:      alg,
					TargetSegments: 40,
					MidSegments:    100,
					Bubble:         bubble,
					Seed:           int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMineApriori measures the host algorithm with and without the
// OSSM (the primitive behind every speedup figure).
func BenchmarkMineApriori(b *testing.B) {
	cfg := benchConfig()
	d, err := cfg.Regular()
	if err != nil {
		b.Fatal(err)
	}
	m, _ := microMap(b, 80)
	minCount := mining.MinCountFor(d, cfg.Support)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MineApriori(d, cfg.Support, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("with-ossm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pruner := &core.Pruner{Map: m, MinCount: minCount}
			if _, err := apriori.Mine(d, minCount, apriori.Options{Options: mining.Options{Pruner: pruner}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDatasetScan measures the raw substrate scan rate.
func BenchmarkDatasetScan(b *testing.B) {
	cfg := benchConfig()
	d, err := cfg.Regular()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.ItemCounts(0, d.NumTx())
	}
}

// BenchmarkAblationExtended reproduces the footnote-3 ablation: the
// generalized OSSM (tracked pair supports) versus the plain map.
func BenchmarkAblationExtended(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := bench.RunExtended(cfg, 40)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BaseC2Frac, "c2frac-base")
		b.ReportMetric(r.ExtC2Frac, "c2frac-extended")
		b.ReportMetric(float64(r.ExactAnswers), "exact-pairs")
	}
}

// BenchmarkParallelSegmentation measures worker scaling of the Greedy
// initialization (deterministic output at any worker count).
func BenchmarkParallelSegmentation(b *testing.B) {
	cfg := benchConfig()
	d, err := cfg.Regular()
	if err != nil {
		b.Fatal(err)
	}
	rows := dataset.PageCounts(d, dataset.PaginateN(d, cfg.Pages))
	bubble := core.BubbleListFromCounts(rows, mining.MinCountFor(d, cfg.BubbleSupport), cfg.BubbleSize)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Segment(rows, core.Options{
					Algorithm:      core.AlgGreedy,
					TargetSegments: 40,
					Bubble:         bubble,
					Seed:           1,
					Workers:        workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelCounting measures worker scaling of hash-tree
// candidate counting.
func BenchmarkParallelCounting(b *testing.B) {
	cfg := benchConfig()
	d, err := cfg.Regular()
	if err != nil {
		b.Fatal(err)
	}
	minCount := mining.MinCountFor(d, cfg.Support)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apriori.Mine(d, minCount, apriori.Options{Options: mining.Options{Workers: workers}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
