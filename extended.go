package ossm

import (
	"fmt"

	"github.com/ossm-mining/ossm/internal/apriori"
	"github.com/ossm-mining/ossm/internal/core"
)

// Filter is the candidate-filtering contract every miner accepts; both
// the plain OSSM pruner and the extended pruner implement it.
type Filter = core.Filter

// ExtendedIndex is the generalized OSSM of the paper's footnote 3: on
// top of per-segment singleton supports it stores exact per-segment
// supports of 2-itemsets over a tracked subset of items. Tracked pairs
// are answered exactly (no counting pass at all); bounds on larger
// itemsets tighten accordingly.
type ExtendedIndex struct {
	e     *core.ExtendedMap
	numTx int
}

// Extend upgrades a freshly built index to an ExtendedIndex tracking the
// given items (pass the bubble list, the frequent items, or any subset
// whose candidates dominate counting cost). It requires the dataset the
// index was built from and one extra scan of it. Indexes restored by
// LoadIndex carry no page assignment and cannot be extended.
func (ix *Index) Extend(d *Dataset, tracked []Item) (*ExtendedIndex, error) {
	if ix.pages == nil || ix.assignment == nil {
		return nil, fmt.Errorf("ossm: Extend requires an index built in this process (LoadIndex drops the page assignment)")
	}
	if d.NumTx() != ix.numTx {
		return nil, fmt.Errorf("ossm: dataset has %d transactions, index was built over %d", d.NumTx(), ix.numTx)
	}
	e, err := core.BuildExtended(d, ix.pages, ix.assignment, tracked)
	if err != nil {
		return nil, err
	}
	return &ExtendedIndex{e: e, numTx: ix.numTx}, nil
}

// Tracked returns the tracked items.
func (xi *ExtendedIndex) Tracked() []Item { return xi.e.Tracked() }

// UpperBound returns the tightened bound on sup(x).
func (xi *ExtendedIndex) UpperBound(x Itemset) int64 { return xi.e.UpperBound(x) }

// PairSupport returns the exact support of a tracked pair (ok=false if
// either item is untracked).
func (xi *ExtendedIndex) PairSupport(a, b Item) (int64, bool) { return xi.e.PairSupport(a, b) }

// SizeBytes reports the footprint including the pair matrix.
func (xi *ExtendedIndex) SizeBytes() int { return xi.e.SizeBytes() }

// Pruner derives a candidate filter at a relative support threshold.
func (xi *ExtendedIndex) Pruner(minSupport float64) Filter {
	c := int64(minSupport * float64(xi.numTx))
	if float64(c) < minSupport*float64(xi.numTx) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return xi.e.Pruner(c)
}

// MineAprioriFiltered mines with an arbitrary candidate filter (e.g. an
// ExtendedIndex pruner). f may be nil.
func MineAprioriFiltered(d *Dataset, minSupport float64, f Filter) (*Result, error) {
	return Mine(apriori.Name, d, minSupport, MineOptions{Filter: f})
}

// MineAprioriParallel is MineAprioriFiltered with hash-tree counting
// sharded over a goroutine pool. The result is identical to the serial
// run.
//
// Deprecated: every miner now takes the pool size through
// MineOptions.Workers; use Mine("apriori", d, minSupport,
// MineOptions{Filter: f, Workers: workers}) instead.
func MineAprioriParallel(d *Dataset, minSupport float64, f Filter, workers int) (*Result, error) {
	return Mine(apriori.Name, d, minSupport, MineOptions{Filter: f, Workers: workers})
}
