package ossm

import "testing"

func TestExtendedIndexEndToEnd(t *testing.T) {
	d, err := GenerateSkewed(DefaultSkewed(3000, 21))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, BuildOptions{Pages: 60, Segments: 12, Algorithm: Greedy, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Track the 80 items nearest a 0.5% threshold.
	plain, err := MineApriori(d, 0.01, ix)
	if err != nil {
		t.Fatal(err)
	}
	var tracked []Item
	for it := Item(0); int(it) < d.NumItems() && len(tracked) < 80; it += 3 {
		tracked = append(tracked, it)
	}
	xi, err := ix.Extend(d, tracked)
	if err != nil {
		t.Fatal(err)
	}
	if len(xi.Tracked()) != len(tracked) {
		t.Fatalf("Tracked = %d items, want %d", len(xi.Tracked()), len(tracked))
	}
	ext, err := MineAprioriFiltered(d, 0.01, xi.Pruner(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(ext) {
		t.Error("extended index changed the mining result")
	}
	// Tracked pair supports are exact.
	a, b := tracked[0], tracked[1]
	sup, ok := xi.PairSupport(a, b)
	if !ok {
		t.Fatal("tracked pair reported untracked")
	}
	if sup != int64(d.Support(NewItemset(a, b))) {
		t.Errorf("PairSupport = %d, want %d", sup, d.Support(NewItemset(a, b)))
	}
	// The extended bound never loosens the base bound.
	for i := 0; i+1 < len(tracked); i += 7 {
		x := NewItemset(tracked[i], tracked[i+1])
		if xi.UpperBound(x) > ix.UpperBound(x) {
			t.Errorf("extended bound looser than base for %v", x)
		}
	}
	if xi.SizeBytes() <= ix.SizeBytes() {
		t.Error("extended index claims no extra space")
	}
}

func TestExtendErrors(t *testing.T) {
	d, err := GenerateQuest(DefaultQuest(500, 5))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, BuildOptions{Pages: 10, Segments: 4})
	if err != nil {
		t.Fatal(err)
	}
	other, err := GenerateQuest(DefaultQuest(400, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Extend(other, []Item{1, 2}); err == nil {
		t.Error("mismatched dataset accepted")
	}
	// A loaded index cannot be extended.
	loaded := &Index{m: ix.Map(), numTx: ix.numTx}
	if _, err := loaded.Extend(d, []Item{1, 2}); err == nil {
		t.Error("assignment-less index accepted")
	}
}
