package ossm

import (
	"path/filepath"
	"testing"
)

func TestBuildAndMineEndToEnd(t *testing.T) {
	d, err := GenerateSkewed(DefaultSkewed(2000, 1))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, BuildOptions{Pages: 40, Segments: 10, Algorithm: RandomGreedy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumSegments() != 10 {
		t.Errorf("NumSegments = %d, want 10", ix.NumSegments())
	}
	// Flat store: both cell matrices + totals + suffix remainders,
	// 16·k·(n+1) bytes for k items, n segments.
	if ix.SizeBytes() != 16*1000*(10+1) {
		t.Errorf("SizeBytes = %d, want 176000", ix.SizeBytes())
	}
	if ix.SegmentationTime() <= 0 {
		t.Error("SegmentationTime not recorded")
	}

	plain, err := MineApriori(d, 0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	withIx, err := MineApriori(d, 0.01, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(withIx) {
		t.Error("index changed Apriori's result")
	}

	fp, err := MineFPGrowth(d, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(fp) {
		t.Error("FP-growth disagrees with Apriori")
	}
	dh, err := MineDHP(d, 0.01, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(dh) {
		t.Error("DHP disagrees with Apriori")
	}
	pt, err := MinePartition(d, 0.01, 4, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(pt) {
		t.Error("Partition disagrees with Apriori")
	}
	dp, err := MineDepthProject(d, 0.01, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(dp) {
		t.Error("DepthProject disagrees with Apriori")
	}
	ec, err := MineEclat(d, 0.01, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(ec) {
		t.Error("dEclat disagrees with Apriori")
	}
}

func TestBuildDefaults(t *testing.T) {
	d, err := GenerateQuest(DefaultQuest(500, 2))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 500 tx at ~100 tx/page = 5 pages; segments clamp to 5.
	if got := ix.NumSegments(); got != 5 {
		t.Errorf("NumSegments = %d, want 5 (clamped)", got)
	}
}

func TestBuildEmptyDataset(t *testing.T) {
	d, err := FromTransactions(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(d, BuildOptions{}); err == nil {
		t.Error("Build over empty dataset accepted")
	}
}

func TestIndexUpperBoundDominatesSupport(t *testing.T) {
	d, err := GenerateQuest(QuestConfig{
		NumTx: 400, NumItems: 30, AvgTxLen: 6, AvgPatLen: 3,
		NumPatterns: 10, Correlation: 0.5, CorruptMean: 0.4, CorruptSD: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, BuildOptions{Pages: 20, Segments: 6, Algorithm: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	for a := Item(0); a < 30; a += 3 {
		for b := a + 1; b < 30; b += 4 {
			x := NewItemset(a, b)
			if ub := ix.UpperBound(x); ub < int64(d.Support(x)) {
				t.Fatalf("bound %d < support %d for %v", ub, d.Support(x), x)
			}
		}
	}
}

func TestBuildWithBubble(t *testing.T) {
	d, err := GenerateQuest(DefaultQuest(1000, 4))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, BuildOptions{
		Pages: 20, Segments: 5, Algorithm: RandomGreedy,
		BubbleSize: 50, BubbleMinSupport: 0.0025,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MineApriori(d, 0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	withIx, err := MineApriori(d, 0.01, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(withIx) {
		t.Error("bubble-built index changed the result")
	}
}

func TestRecipeFacade(t *testing.T) {
	rec := Recommend(Scenario{LargeSegmentBudget: true, SkewedData: true})
	if rec.Algorithm != Random {
		t.Errorf("recipe = %+v, want Random", rec)
	}
}

func TestRulesFacade(t *testing.T) {
	d, err := FromTransactions(3, [][]Item{
		{0, 1}, {0, 1}, {0, 1, 2}, {0}, {2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineApriori(d, 0.4, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := GenerateRules(res, d.NumTx(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Error("no rules generated")
	}
}

func TestEpisodesFacade(t *testing.T) {
	s, err := SequenceFromTypes(3, []Item{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineEpisodes(s, EpisodeOptions{Width: 2, MinFrequency: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() == 0 {
		t.Error("no episodes found")
	}
}

func TestDatasetFileFacade(t *testing.T) {
	d, err := FromTransactions(4, [][]Item{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.bin")
	if err := SaveDataset(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTx() != 2 || got.NumItems() != 4 {
		t.Errorf("round trip: NumTx=%d NumItems=%d", got.NumTx(), got.NumItems())
	}
}

func TestMinSegmentsFacade(t *testing.T) {
	d, err := FromTransactions(2, [][]Item{
		{0}, {0}, {1}, {1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 pages of 1 tx: configurations (a≥b) ×2 and (b≥a) ×2 → n_min = 2.
	if got := MinSegments(d, 4); got != 2 {
		t.Errorf("MinSegments = %d, want 2", got)
	}
}

func TestPaginateFacade(t *testing.T) {
	d, err := FromTransactions(2, [][]Item{{0}, {1}, {0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Paginate(d, 2)); got != 2 {
		t.Errorf("Paginate pages = %d, want 2", got)
	}
	if got := len(PaginateN(d, 3)); got != 3 {
		t.Errorf("PaginateN pages = %d, want 3", got)
	}
}
