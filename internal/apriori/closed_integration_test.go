package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/mining"
)

// TestClosedMaximalAgainstBruteForce validates the condensed
// representations on full mining results over random datasets.
func TestClosedMaximalAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		res, err := Mine(d, minCount, Options{})
		if err != nil {
			return false
		}

		// Brute-force closed: no frequent proper superset of equal count.
		wantClosed := map[string]bool{}
		wantMaximal := map[string]bool{}
		for _, c := range res.All() {
			closed, maximal := true, true
			for _, s := range res.All() {
				if len(s.Items) <= len(c.Items) || !c.Items.SubsetOf(s.Items) {
					continue
				}
				maximal = false
				if s.Count == c.Count {
					closed = false
				}
			}
			if closed {
				wantClosed[c.Items.Key()] = true
			}
			if maximal {
				wantMaximal[c.Items.Key()] = true
			}
		}
		gotClosed := mining.Closed(res)
		if len(gotClosed) != len(wantClosed) {
			return false
		}
		for _, c := range gotClosed {
			if !wantClosed[c.Items.Key()] {
				return false
			}
		}
		gotMaximal := mining.Maximal(res)
		if len(gotMaximal) != len(wantMaximal) {
			return false
		}
		for _, m := range gotMaximal {
			if !wantMaximal[m.Items.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestClosedRecoversAllSupports: the closed representation determines
// the support of every frequent itemset (as the max count over closed
// supersets) — the property that makes it a lossless condensation.
func TestClosedRecoversAllSupports(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		res, err := Mine(d, minCount, Options{})
		if err != nil {
			return false
		}
		closed := mining.Closed(res)
		for _, c := range res.All() {
			best := int64(-1)
			for _, cl := range closed {
				if c.Items.SubsetOf(cl.Items) && cl.Count > best {
					best = cl.Count
				}
			}
			if best != c.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
