package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// tinyDataset has hand-computable frequent itemsets at minCount 2:
// items: 0,1,2,3
// tx: {0,1,2}, {0,1}, {0,2}, {1,2}, {0,1,2,3}
// supports: 0:4 1:4 2:4 3:1
// pairs: {0,1}:3 {0,2}:3 {1,2}:3 {0,3}:1 {1,3}:1 {2,3}:1
// triple {0,1,2}: 2
func tinyDataset() *dataset.Dataset {
	return dataset.MustFromTransactions(4, [][]dataset.Item{
		{0, 1, 2},
		{0, 1},
		{0, 2},
		{1, 2},
		{0, 1, 2, 3},
	})
}

func TestMineTiny(t *testing.T) {
	res, err := Mine(tinyDataset(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.NumFrequent(); got != 7 {
		t.Fatalf("NumFrequent = %d, want 7 (3 singletons + 3 pairs + 1 triple); levels %+v", got, res.Levels)
	}
	wantCounts := map[string]int64{
		"0": 4, "1": 4, "2": 4,
		"0,1": 3, "0,2": 3, "1,2": 3,
		"0,1,2": 2,
	}
	for _, c := range res.All() {
		want, ok := wantCounts[c.Items.Key()]
		if !ok {
			t.Errorf("unexpected frequent itemset %v", c.Items)
			continue
		}
		if c.Count != want {
			t.Errorf("support(%v) = %d, want %d", c.Items, c.Count, want)
		}
		delete(wantCounts, c.Items.Key())
	}
	for k := range wantCounts {
		t.Errorf("missing frequent itemset {%s}", k)
	}
	if got, ok := res.Support(dataset.NewItemset(0, 1)); !ok || got != 3 {
		t.Errorf("Support({0,1}) = %d,%v; want 3,true", got, ok)
	}
	if _, ok := res.Support(dataset.NewItemset(3)); ok {
		t.Error("item 3 (support 1) reported frequent")
	}
}

func TestMineMinCountValidation(t *testing.T) {
	if _, err := Mine(tinyDataset(), 0, Options{}); err == nil {
		t.Error("minCount 0 accepted")
	}
}

func TestMineMaxLen(t *testing.T) {
	res, err := Mine(tinyDataset(), 2, Options{Options: mining.Options{MaxLen: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Levels {
		if l.K > 2 {
			t.Errorf("level %d produced despite MaxLen 2", l.K)
		}
	}
	res1, err := Mine(tinyDataset(), 2, Options{Options: mining.Options{MaxLen: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Levels) != 1 {
		t.Errorf("MaxLen 1 produced %d levels", len(res1.Levels))
	}
}

func TestMinCountFor(t *testing.T) {
	d := tinyDataset() // 5 transactions
	cases := []struct {
		frac float64
		want int64
	}{
		{0.01, 1}, {0.2, 1}, {0.21, 2}, {0.4, 2}, {1.0, 5},
	}
	for _, c := range cases {
		if got := mining.MinCountFor(d, c.frac); got != c.want {
			t.Errorf("MinCountFor(%g) = %d, want %d", c.frac, got, c.want)
		}
	}
}

func TestAprioriGen(t *testing.T) {
	f2 := []mining.Counted{
		{Items: dataset.NewItemset(1, 2)},
		{Items: dataset.NewItemset(1, 3)},
		{Items: dataset.NewItemset(2, 3)},
		{Items: dataset.NewItemset(2, 4)},
	}
	got := aprioriGen(f2)
	if len(got) != 1 || !got[0].Equal(dataset.NewItemset(1, 2, 3)) {
		t.Errorf("aprioriGen = %v, want [{1,2,3}]", got)
	}
}

func TestAprioriGenPrunesMissingSubsets(t *testing.T) {
	// {1,2,3} join {1,2,4} → {1,2,3,4}; subset {1,3,4} missing → pruned.
	f3 := []mining.Counted{
		{Items: dataset.NewItemset(1, 2, 3)},
		{Items: dataset.NewItemset(1, 2, 4)},
	}
	if got := aprioriGen(f3); len(got) != 0 {
		t.Errorf("aprioriGen = %v, want empty (subset prune)", got)
	}
}

// bruteForce enumerates frequent itemsets by exhaustive subset counting
// (small domains only).
func bruteForce(d *dataset.Dataset, minCount int64) map[string]int64 {
	out := make(map[string]int64)
	k := d.NumItems()
	for mask := 1; mask < 1<<k; mask++ {
		var x dataset.Itemset
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				x = append(x, dataset.Item(i))
			}
		}
		if c := int64(d.Support(x)); c >= minCount {
			out[x.Key()] = c
		}
	}
	return out
}

func mapsEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func randomDataset(r *rand.Rand) *dataset.Dataset {
	k := 2 + r.Intn(6)
	n := 2 + r.Intn(40)
	b := dataset.NewBuilder(k)
	for i := 0; i < n; i++ {
		sz := r.Intn(k + 1)
		tx := make([]dataset.Item, sz)
		for j := range tx {
			tx[j] = dataset.Item(r.Intn(k))
		}
		if err := b.Append(tx); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func TestMineMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		res, err := Mine(d, minCount, Options{})
		if err != nil {
			return false
		}
		return mapsEqual(res.AsMap(), bruteForce(d, minCount))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTriangularMatchesHashTree(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		a, err := Mine(d, minCount, Options{C2Method: CountHashTree})
		if err != nil {
			return false
		}
		b, err := Mine(d, minCount, Options{C2Method: CountTriangular})
		if err != nil {
			return false
		}
		return mapsEqual(a.AsMap(), b.AsMap())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// buildOSSM builds an OSSM over d with one of the segmentation
// algorithms, for pruning tests.
func buildOSSM(r *rand.Rand, d *dataset.Dataset) *core.Map {
	mPages := 1 + r.Intn(d.NumTx())
	pages := dataset.PaginateN(d, mPages)
	rows := dataset.PageCounts(d, pages)
	target := 1 + r.Intn(mPages)
	res, err := core.Segment(rows, core.Options{
		Algorithm:      core.AlgGreedy,
		TargetSegments: target,
		Seed:           r.Int63(),
	})
	if err != nil {
		panic(err)
	}
	return res.Map
}

// TestOSSMPruningIsLossless is the paper's core soundness claim applied
// to Apriori: mining with the OSSM filter produces exactly the same
// frequent itemsets and supports as mining without it.
func TestOSSMPruningIsLossless(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		plain, err := Mine(d, minCount, Options{})
		if err != nil {
			return false
		}
		pruner := &core.Pruner{Map: buildOSSM(r, d), MinCount: minCount}
		pruned, err := Mine(d, minCount, Options{Options: mining.Options{Pruner: pruner}})
		if err != nil {
			return false
		}
		return mapsEqual(plain.AsMap(), pruned.AsMap())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	d := randomDataset(r)
	minCount := int64(2)
	pruner := &core.Pruner{Map: buildOSSM(r, d), MinCount: minCount}
	res, err := Mine(d, minCount, Options{Options: mining.Options{Pruner: pruner}})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Levels {
		if l.K == 1 {
			continue
		}
		if l.Stats.Generated != l.Stats.Pruned+l.Stats.Counted {
			t.Errorf("level %d: generated %d ≠ pruned %d + counted %d",
				l.K, l.Stats.Generated, l.Stats.Pruned, l.Stats.Counted)
		}
		if l.Stats.Frequent != len(l.Frequent) {
			t.Errorf("level %d: stats.Frequent %d ≠ len(Frequent) %d",
				l.K, l.Stats.Frequent, len(l.Frequent))
		}
		if l.Stats.Frequent > l.Stats.Counted {
			t.Errorf("level %d: more frequent (%d) than counted (%d)",
				l.K, l.Stats.Frequent, l.Stats.Counted)
		}
	}
}

func TestOSSMPruningReducesCandidates(t *testing.T) {
	// On skew-structured data a fine OSSM must prune a meaningful share
	// of candidate pairs (this is Figure 4(b)'s phenomenon).
	b := dataset.NewBuilder(10)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		var tx []dataset.Item
		if i < 200 { // first half: items 0-4 co-occur
			for j := 0; j < 5; j++ {
				if r.Float64() < 0.8 {
					tx = append(tx, dataset.Item(j))
				}
			}
		} else { // second half: items 5-9 co-occur
			for j := 5; j < 10; j++ {
				if r.Float64() < 0.8 {
					tx = append(tx, dataset.Item(j))
				}
			}
		}
		if err := b.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	minCount := int64(40)
	pages := dataset.PaginateN(d, 8)
	rows := dataset.PageCounts(d, pages)
	seg, err := core.Segment(rows, core.Options{Algorithm: core.AlgGreedy, TargetSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	pruner := &core.Pruner{Map: seg.Map, MinCount: minCount}
	res, err := Mine(d, minCount, Options{Options: mining.Options{Pruner: pruner}})
	if err != nil {
		t.Fatal(err)
	}
	l2 := res.Levels[1]
	if l2.Stats.Pruned == 0 {
		t.Error("OSSM pruned no candidate pairs on strongly skewed data")
	}
	// Every cross-half pair (e.g. {0,7}) is infrequent and should be
	// pruned by a half-respecting segmentation.
	if float64(l2.Stats.Pruned) < 0.3*float64(l2.Stats.Generated) {
		t.Errorf("OSSM pruned only %d of %d candidate pairs", l2.Stats.Pruned, l2.Stats.Generated)
	}
}

func TestHashTreeDuplicatePathsDoNotDoubleCount(t *testing.T) {
	// Items 0 and 32 collide under the default fanout-32 hash. Build
	// candidates around the collision and verify exact counts.
	d := dataset.MustFromTransactions(64, [][]dataset.Item{
		{0, 32, 33},
		{0, 32, 33},
		{0, 33},
		{32, 33},
	})
	res, err := Mine(d, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"0": 3, "32": 3, "33": 4,
		"0,32": 2, "0,33": 3, "32,33": 3,
		"0,32,33": 2,
	}
	if !mapsEqual(res.AsMap(), want) {
		t.Errorf("got %v, want %v", res.AsMap(), want)
	}
}
