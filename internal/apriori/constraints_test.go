package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// TestConstraintPushdownMatchesPostFilter: pushing an anti-monotone
// constraint into candidate generation yields exactly the satisfying
// frequent itemsets (for levels ≥ 2, where the filter applies), and
// composes soundly with the OSSM bound.
func TestConstraintPushdownMatchesPostFilter(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		banned := dataset.Item(r.Intn(d.NumItems()))
		maxLen := 2 + r.Intn(3)

		plain, err := Mine(d, minCount, Options{})
		if err != nil {
			return false
		}
		constraint := core.And(
			core.ExcludeItems(banned),
			core.MaxItems(maxLen),
			&core.Pruner{Map: buildOSSM(r, d), MinCount: minCount},
		)
		constrained, err := Mine(d, minCount, Options{Options: mining.Options{Pruner: constraint}})
		if err != nil {
			return false
		}
		want := map[string]int64{}
		for _, c := range plain.All() {
			if len(c.Items) < 2 {
				continue // the filter applies from pass 2 on
			}
			if len(c.Items) > maxLen || c.Items.Contains(banned) {
				continue
			}
			want[c.Items.Key()] = c.Count
		}
		got := map[string]int64{}
		for _, c := range constrained.All() {
			if len(c.Items) < 2 {
				continue
			}
			got[c.Items.Key()] = c.Count
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
