package apriori

import (
	"runtime"
	"sync"

	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// countCandidates counts the candidates of one pass against the
// transactions, optionally sharded over a worker pool. One shared,
// read-only hash tree serves every worker; each accumulates into private
// CountState, merged afterwards. The result is identical to the serial
// count.
func countCandidates(txs []dataset.Itemset, cands []*mining.Candidate, size, workers int) {
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	tree := mining.NewHashTree(cands, size)
	if workers <= 1 || len(txs) < 4*workers {
		for tid, tx := range txs {
			tree.CountTransaction(tx, tid, nil)
		}
		return
	}
	states := make([]*mining.CountState, 0, workers)
	var wg sync.WaitGroup
	chunk := (len(txs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(txs) {
			hi = len(txs)
		}
		if lo >= hi {
			break
		}
		st := tree.NewState()
		states = append(states, st)
		wg.Add(1)
		go func(st *mining.CountState, txs []dataset.Itemset) {
			defer wg.Done()
			for tid, tx := range txs {
				tree.CountTransactionInto(st, tx, tid)
			}
		}(st, txs[lo:hi])
	}
	wg.Wait()
	for _, st := range states {
		tree.Merge(cands, st)
	}
}
