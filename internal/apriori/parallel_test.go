package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/mining"
)

// TestParallelCountingMatchesSerial: sharded counting returns exactly
// the serial result at every worker count.
func TestParallelCountingMatchesSerial(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		serial, err := Mine(d, minCount, Options{})
		if err != nil {
			return false
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := Mine(d, minCount, Options{Options: mining.Options{Workers: workers}})
			if err != nil {
				return false
			}
			if !mapsEqual(serial.AsMap(), par.AsMap()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestParallelWithPrunerMatchesSerial combines sharded counting with
// OSSM pruning.
func TestParallelWithPrunerMatchesSerial(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		m := buildOSSM(r, d)
		serial, err := Mine(d, minCount, Options{})
		if err != nil {
			return false
		}
		par, err := Mine(d, minCount, Options{Options: mining.Options{
			Workers: 4,
			Pruner:  &core.Pruner{Map: m, MinCount: minCount},
		}})
		if err != nil {
			return false
		}
		return mapsEqual(serial.AsMap(), par.AsMap())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
