package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// TestParallelCountingMatchesSerial: sharded counting returns exactly
// the serial result at every worker count.
func TestParallelCountingMatchesSerial(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		serial, err := Mine(d, minCount, Options{})
		if err != nil {
			return false
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := Mine(d, minCount, Options{Workers: workers})
			if err != nil {
				return false
			}
			if !mapsEqual(serial.AsMap(), par.AsMap()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestParallelWithPrunerMatchesSerial combines sharded counting with
// OSSM pruning.
func TestParallelWithPrunerMatchesSerial(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		m := buildOSSM(r, d)
		serial, err := Mine(d, minCount, Options{})
		if err != nil {
			return false
		}
		par, err := Mine(d, minCount, Options{
			Workers: 4,
			Pruner:  &core.Pruner{Map: m, MinCount: minCount},
		})
		if err != nil {
			return false
		}
		return mapsEqual(serial.AsMap(), par.AsMap())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestCountCandidatesLargeInput exercises the parallel path directly
// (enough transactions to pass the sharding threshold at any CPU count).
func TestCountCandidatesLargeInput(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	var txs []dataset.Itemset
	for i := 0; i < 4000; i++ {
		var tx []dataset.Item
		for j := 0; j < 6; j++ {
			tx = append(tx, dataset.Item(r.Intn(30)))
		}
		txs = append(txs, dataset.NewItemset(tx...))
	}
	mkCands := func() []*mining.Candidate {
		var cs []*mining.Candidate
		for a := 0; a < 30; a++ {
			for b := a + 1; b < 30; b++ {
				cs = append(cs, &mining.Candidate{Items: dataset.NewItemset(dataset.Item(a), dataset.Item(b))})
			}
		}
		return cs
	}
	serial := mkCands()
	countCandidates(txs, serial, 2, 1)
	for _, workers := range []int{2, 4, 16} {
		par := mkCands()
		countCandidates(txs, par, 2, workers)
		for i := range serial {
			if serial[i].Count != par[i].Count {
				t.Fatalf("workers=%d: candidate %v count %d ≠ serial %d",
					workers, par[i].Items, par[i].Count, serial[i].Count)
			}
		}
	}
}
