package apriori

import (
	"time"

	"github.com/ossm-mining/ossm/internal/conc"
	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// Name is the registry name of this miner.
const Name = "apriori"

func init() {
	mining.Register(Name, func(d *dataset.Dataset, minCount int64, opts mining.Options) (*mining.Result, error) {
		return Mine(d, minCount, Options{Options: opts})
	})
}

// CountMethod selects how candidate 2-itemsets are counted.
type CountMethod int

const (
	// CountHashTree counts every pass with the hash tree. Counting work
	// scales with the number of surviving candidates, which is what makes
	// OSSM pruning pay off — the setting of the paper's experiments.
	CountHashTree CountMethod = iota
	// CountTriangular counts the second pass with a dense triangular
	// array over frequent items (an ablation: per-transaction cost is
	// then insensitive to the candidate count).
	CountTriangular
)

// Options configures Mine. The embedded mining.Options carries the
// engine-wide knobs (Pruner, MaxLen, Workers, Progress).
type Options struct {
	mining.Options
	// C2Method selects the pass-2 counting structure.
	C2Method CountMethod
}

// Mine runs Apriori over d at the absolute support threshold minCount.
func Mine(d *dataset.Dataset, minCount int64, opts Options) (*mining.Result, error) {
	if err := mining.ValidateMinCount(minCount); err != nil {
		return nil, err
	}
	start := time.Now()
	pool := conc.Resolve(opts.Workers)
	res := &mining.Result{MinCount: minCount, Stats: mining.Stats{Algorithm: Name, Workers: pool}}
	defer func() { res.Stats.Elapsed = time.Since(start) }()

	// Pass 1: singleton supports in one scan.
	passStart := time.Now()
	counts := d.ItemCounts(0, d.NumTx())
	var f1 []mining.Counted
	for it, c := range counts {
		if int64(c) >= minCount {
			f1 = append(f1, mining.Counted{Items: dataset.NewItemset(dataset.Item(it)), Count: int64(c)})
		}
	}
	l1 := mining.LevelResult{
		K:        1,
		Frequent: f1,
		Stats: mining.PassStats{K: 1, Generated: d.NumItems(), Counted: d.NumItems(),
			Frequent: len(f1), TxScanned: d.NumTx(), Elapsed: time.Since(passStart)},
	}
	res.Levels = append(res.Levels, l1)
	opts.Emit(l1.Stats)
	if len(f1) == 0 || opts.MaxLen == 1 {
		return res, nil
	}

	// Project transactions onto the frequent items once; every later pass
	// counts against the projection (a standard optimization that applies
	// identically with and without the OSSM).
	frequentItem := make([]bool, d.NumItems())
	for _, c := range f1 {
		frequentItem[c.Items[0]] = true
	}
	txs := make([]dataset.Itemset, 0, d.NumTx())
	for i := 0; i < d.NumTx(); i++ {
		tx := d.Tx(i)
		var kept dataset.Itemset
		for _, it := range tx {
			if frequentItem[it] {
				kept = append(kept, it)
			}
		}
		if len(kept) >= 2 {
			txs = append(txs, kept)
		}
	}

	// Pass 2.
	passStart = time.Now()
	var l2 mining.LevelResult
	if opts.C2Method == CountTriangular {
		l2 = passTwoTriangular(txs, f1, minCount, opts.Pruner)
	} else {
		l2 = passTwoHashTree(txs, f1, minCount, opts.Pruner, pool, opts.Instrument)
	}
	l2.Stats.Elapsed = time.Since(passStart)
	res.Levels = append(res.Levels, l2)
	opts.Emit(l2.Stats)

	// Passes k ≥ 3. The whole generation is pushed through the batch bound
	// kernel at once (core.AdmitBatch), reusing one decision buffer across
	// passes.
	prev := l2.Frequent
	var decBuf []bool
	for k := 3; len(prev) >= 2 && (opts.MaxLen == 0 || k <= opts.MaxLen); k++ {
		passStart = time.Now()
		gen := aprioriGen(prev)
		stats := mining.PassStats{K: k, Generated: len(gen)}
		kd := mining.KernelDeltaFor(opts.Pruner)
		decBuf = core.AdmitBatch(opts.Pruner, gen, decBuf)
		var cands []*mining.Candidate
		for gi, items := range gen {
			if decBuf[gi] {
				cands = append(cands, &mining.Candidate{Items: items})
			} else {
				stats.Pruned++
			}
		}
		kd.Note(&stats)
		stats.Counted = len(cands)
		if len(cands) == 0 {
			break
		}
		stats.TxScanned = len(txs)
		mining.CountParallel(txs, cands, k, pool, opts.Instrument)
		var freq []mining.Counted
		for _, c := range cands {
			if c.Count >= minCount {
				freq = append(freq, mining.Counted{Items: c.Items, Count: c.Count})
			}
		}
		mining.SortCounted(freq)
		stats.Frequent = len(freq)
		stats.Elapsed = time.Since(passStart)
		res.Levels = append(res.Levels, mining.LevelResult{K: k, Frequent: freq, Stats: stats})
		opts.Emit(stats)
		prev = freq
		if len(freq) == 0 {
			break
		}
	}
	return res, nil
}

// passTwoHashTree generates all pairs of frequent items, filters them
// through the pair-specialized batch bound kernel, and counts the
// survivors with a hash tree.
func passTwoHashTree(txs []dataset.Itemset, f1 []mining.Counted, minCount int64, pruner core.Filter, workers int, instr *mining.Instrumentation) mining.LevelResult {
	stats := mining.PassStats{K: 2, Generated: len(f1) * (len(f1) - 1) / 2}
	items := frequentItems(f1)
	kd := mining.KernelDeltaFor(pruner)
	dec := core.AdmitPairsAmong(pruner, items, nil)
	var cands []*mining.Candidate
	idx := 0
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if dec[idx] {
				cands = append(cands, &mining.Candidate{Items: dataset.Itemset{items[i], items[j]}})
			} else {
				stats.Pruned++
			}
			idx++
		}
	}
	kd.Note(&stats)
	stats.Counted = len(cands)
	if len(cands) == 0 {
		return mining.LevelResult{K: 2, Stats: stats}
	}
	stats.TxScanned = len(txs)
	mining.CountParallel(txs, cands, 2, workers, instr)
	var freq []mining.Counted
	for _, c := range cands {
		if c.Count >= minCount {
			freq = append(freq, mining.Counted{Items: c.Items, Count: c.Count})
		}
	}
	mining.SortCounted(freq)
	stats.Frequent = len(freq)
	return mining.LevelResult{K: 2, Frequent: freq, Stats: stats}
}

// passTwoTriangular counts surviving pairs in a dense triangular array
// indexed by frequent-item rank.
func passTwoTriangular(txs []dataset.Itemset, f1 []mining.Counted, minCount int64, pruner core.Filter) mining.LevelResult {
	stats := mining.PassStats{K: 2, Generated: len(f1) * (len(f1) - 1) / 2}
	n := len(f1)
	rank := make(map[dataset.Item]int, n)
	for i, c := range f1 {
		rank[c.Items[0]] = i
	}
	// allowed[i*n+j] (i<j) marks pairs that survived the OSSM.
	items := frequentItems(f1)
	kd := mining.KernelDeltaFor(pruner)
	dec := core.AdmitPairsAmong(pruner, items, nil)
	allowed := make([]bool, n*n)
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dec[idx] {
				allowed[i*n+j] = true
			} else {
				stats.Pruned++
			}
			idx++
		}
	}
	kd.Note(&stats)
	stats.Counted = stats.Generated - stats.Pruned
	stats.TxScanned = len(txs)
	counts := make([]int64, n*n)
	for _, tx := range txs {
		for a := 0; a < len(tx); a++ {
			ra := rank[tx[a]]
			for b := a + 1; b < len(tx); b++ {
				rb := rank[tx[b]]
				i, j := ra, rb
				if i > j {
					i, j = j, i
				}
				if allowed[i*n+j] {
					counts[i*n+j]++
				}
			}
		}
	}
	var freq []mining.Counted
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if allowed[i*n+j] && counts[i*n+j] >= minCount {
				freq = append(freq, mining.Counted{
					Items: dataset.NewItemset(f1[i].Items[0], f1[j].Items[0]),
					Count: counts[i*n+j],
				})
			}
		}
	}
	mining.SortCounted(freq)
	stats.Frequent = len(freq)
	return mining.LevelResult{K: 2, Frequent: freq, Stats: stats}
}

// frequentItems extracts the singleton items of a frequent-1 level.
func frequentItems(f1 []mining.Counted) []dataset.Item {
	items := make([]dataset.Item, len(f1))
	for i, c := range f1 {
		items[i] = c.Items[0]
	}
	return items
}

// aprioriGen implements candidate generation: join F_{k-1} with itself on
// the first k-2 items, then prune candidates with an infrequent
// (k-1)-subset.
func aprioriGen(prev []mining.Counted) []dataset.Itemset {
	known := make(map[string]bool, len(prev))
	for _, c := range prev {
		known[c.Items.Key()] = true
	}
	var out []dataset.Itemset
	for i := 0; i < len(prev); i++ {
		a := prev[i].Items
		for j := i + 1; j < len(prev); j++ {
			b := prev[j].Items
			if !samePrefix(a, b) {
				// prev is sorted lexicographically, so no later b shares
				// the prefix either.
				break
			}
			var cand dataset.Itemset
			if a[len(a)-1] < b[len(b)-1] {
				cand = append(append(dataset.Itemset{}, a...), b[len(b)-1])
			} else {
				cand = append(append(dataset.Itemset{}, b...), a[len(a)-1])
			}
			if hasAllSubsets(cand, known) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b dataset.Itemset) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hasAllSubsets(cand dataset.Itemset, known map[string]bool) bool {
	for i := range cand {
		if !known[cand.Without(i).Key()] {
			return false
		}
	}
	return true
}
