package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// buildExtendedOSSM builds an ExtendedMap over a random contiguous
// segmentation, tracking a random subset of items.
func buildExtendedOSSM(r *rand.Rand, d *dataset.Dataset) *core.ExtendedMap {
	mPages := 1 + r.Intn(d.NumTx())
	pages := dataset.PaginateN(d, mPages)
	rows := dataset.PageCounts(d, pages)
	res, err := core.Segment(rows, core.Options{
		Algorithm:      core.AlgGreedy,
		TargetSegments: 1 + r.Intn(mPages),
		Seed:           r.Int63(),
	})
	if err != nil {
		panic(err)
	}
	// Reconstruct the page assignment for BuildExtended.
	var tracked []dataset.Item
	for it := 0; it < d.NumItems(); it++ {
		if r.Intn(2) == 0 {
			tracked = append(tracked, dataset.Item(it))
		}
	}
	e, err := core.BuildExtended(d, pages, res.Assignment, tracked)
	if err != nil {
		panic(err)
	}
	return e
}

// TestExtendedPruningIsLossless: mining through the generalized
// (footnote 3) map returns exactly the baseline result.
func TestExtendedPruningIsLossless(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		plain, err := Mine(d, minCount, Options{})
		if err != nil {
			return false
		}
		e := buildExtendedOSSM(r, d)
		pruned, err := Mine(d, minCount, Options{Options: mining.Options{Pruner: e.Pruner(minCount)}})
		if err != nil {
			return false
		}
		return mapsEqual(plain.AsMap(), pruned.AsMap())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestExtendedPrunesAtLeastAsMuch: with the same segmentation, the
// extended bound never admits a candidate the base bound rejects.
func TestExtendedPrunesAtLeastAsMuch(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))

		mPages := 1 + r.Intn(d.NumTx())
		pages := dataset.PaginateN(d, mPages)
		rows := dataset.PageCounts(d, pages)
		seg, err := core.Segment(rows, core.Options{
			Algorithm: core.AlgRandom, TargetSegments: 1 + r.Intn(mPages), Seed: seed,
		})
		if err != nil {
			return false
		}
		e, err := core.BuildExtended(d, pages, seg.Assignment, core.AllItems(d.NumItems()))
		if err != nil {
			return false
		}
		base := &core.Pruner{Map: seg.Map, MinCount: minCount}
		ext := e.Pruner(minCount)
		resBase, err := Mine(d, minCount, Options{Options: mining.Options{Pruner: base}})
		if err != nil {
			return false
		}
		resExt, err := Mine(d, minCount, Options{Options: mining.Options{Pruner: ext}})
		if err != nil {
			return false
		}
		if !mapsEqual(resBase.AsMap(), resExt.AsMap()) {
			return false
		}
		// Per-level: extended pruning count ≥ base pruning count.
		for _, lb := range resBase.Levels {
			le := resExt.Level(lb.K)
			if le == nil {
				continue
			}
			if le.Stats.Pruned < lb.Stats.Pruned {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestExtendedAllTrackedNeedsNoPairCounting: when every item is tracked,
// every pass-2 candidate is answered exactly, so the frequent pairs
// reported equal those counted from the exact map alone.
func TestExtendedAllTrackedNeedsNoPairCounting(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	d := randomDataset(r)
	minCount := int64(2)
	pages := dataset.PaginateN(d, d.NumTx())
	assign := make([][]int, len(pages))
	for i := range assign {
		assign[i] = []int{i}
	}
	e, err := core.BuildExtended(d, pages, assign, core.AllItems(d.NumItems()))
	if err != nil {
		t.Fatal(err)
	}
	p := e.Pruner(minCount)
	res, err := Mine(d, minCount, Options{Options: mining.Options{Pruner: p}})
	if err != nil {
		t.Fatal(err)
	}
	l2 := res.Level(2)
	if l2 == nil {
		return
	}
	if p.Exact != int64(l2.Stats.Generated) {
		t.Errorf("Exact = %d, want every generated pair (%d)", p.Exact, l2.Stats.Generated)
	}
	// Exactness: the pruner admitted exactly the frequent pairs.
	if l2.Stats.Counted != l2.Stats.Frequent {
		t.Errorf("counted %d ≠ frequent %d despite exact pair supports", l2.Stats.Counted, l2.Stats.Frequent)
	}
}
