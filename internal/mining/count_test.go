package mining

import (
	"math/rand"
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// TestCountParallelLargeInput checks the sharded scan (driven below
// conc.Resolve, so real goroutines run on any host) against the serial
// count, then CountParallel end to end.
func TestCountParallelLargeInput(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	var txs []dataset.Itemset
	for i := 0; i < 4000; i++ {
		var tx []dataset.Item
		for j := 0; j < 6; j++ {
			tx = append(tx, dataset.Item(r.Intn(30)))
		}
		txs = append(txs, dataset.NewItemset(tx...))
	}
	mkCands := func() []*Candidate {
		var cs []*Candidate
		for a := 0; a < 30; a++ {
			for b := a + 1; b < 30; b++ {
				cs = append(cs, &Candidate{Items: dataset.NewItemset(dataset.Item(a), dataset.Item(b))})
			}
		}
		return cs
	}
	serial := mkCands()
	CountParallel(txs, serial, 2, 1, nil)
	for _, workers := range []int{2, 4, 16} {
		par := mkCands()
		countSharded(txs, par, 2, workers, nil)
		for i := range serial {
			if serial[i].Count != par[i].Count {
				t.Fatalf("workers=%d: candidate %v count %d ≠ serial %d",
					workers, par[i].Items, par[i].Count, serial[i].Count)
			}
		}
	}
	viaKnob := mkCands()
	CountParallel(txs, viaKnob, 2, 4, nil)
	for i := range serial {
		if serial[i].Count != viaKnob[i].Count {
			t.Fatalf("CountParallel(workers=4): candidate %v count %d ≠ serial %d",
				viaKnob[i].Items, viaKnob[i].Count, serial[i].Count)
		}
	}
}

// TestCountTransactionIntoFuncMatchesCallback: the state-based counting
// path with a per-match callback sees exactly the matches the direct
// path reports.
func TestCountTransactionIntoFuncMatchesCallback(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var txs []dataset.Itemset
	for i := 0; i < 300; i++ {
		var tx []dataset.Item
		for j := 0; j < 5; j++ {
			tx = append(tx, dataset.Item(r.Intn(12)))
		}
		txs = append(txs, dataset.NewItemset(tx...))
	}
	mkCands := func() []*Candidate {
		var cs []*Candidate
		for a := 0; a < 12; a++ {
			for b := a + 1; b < 12; b++ {
				cs = append(cs, &Candidate{Items: dataset.NewItemset(dataset.Item(a), dataset.Item(b))})
			}
		}
		return cs
	}
	direct := mkCands()
	directMatches := map[string]int{}
	treeA := NewHashTree(direct, 2)
	for tid, tx := range txs {
		treeA.CountTransaction(tx, tid, func(c *Candidate) { directMatches[c.Items.Key()]++ })
	}
	viaState := mkCands()
	stateMatches := map[string]int{}
	treeB := NewHashTree(viaState, 2)
	st := treeB.NewState()
	for tid, tx := range txs {
		treeB.CountTransactionIntoFunc(st, tx, tid, func(c *Candidate) { stateMatches[c.Items.Key()]++ })
	}
	treeB.Merge(viaState, st)
	for i := range direct {
		if direct[i].Count != viaState[i].Count {
			t.Fatalf("candidate %v: direct count %d ≠ state count %d",
				direct[i].Items, direct[i].Count, viaState[i].Count)
		}
	}
	if len(directMatches) != len(stateMatches) {
		t.Fatalf("callback match sets differ: %d vs %d keys", len(directMatches), len(stateMatches))
	}
	for k, v := range directMatches {
		if stateMatches[k] != v {
			t.Fatalf("callback matches for %s: direct %d ≠ state %d", k, v, stateMatches[k])
		}
	}
}
