package mining

// The engine-side instrumentation bridge: mining.Options carries an
// optional *Instrumentation (a telemetry.Collector), every miner's
// per-pass Emit folds its PassStats into it, and MineBy frames the run
// with start/end events and attaches the frozen telemetry.Report to the
// result's Stats envelope. A nil Instrumentation is the default and costs
// a single branch per pass — the uninstrumented hot path is unchanged.

import (
	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/telemetry"
)

// Instrumentation is the engine-wide telemetry hook: an atomic
// counter/timer collector every registered miner reports into (candidates
// generated / OSSM-pruned / hash-pruned / counted, per-pass wall time,
// transactions scanned, worker-pool utilization) plus a structured event
// stream (SetSink) superseding the ad-hoc per-level Progress callback.
type Instrumentation = telemetry.Collector

// NewInstrumentation returns an empty collector whose run clock starts
// now. Hand it to a miner via Options.Instrument and read the report from
// the result's Stats.Telemetry.
func NewInstrumentation() *Instrumentation { return telemetry.New() }

// sample converts the engine's per-pass accounting into the telemetry
// layer's frozen form.
func (ps PassStats) sample() telemetry.PassReport {
	var lanes map[string]int64
	for lane, n := range ps.LaneDecided {
		if n == 0 {
			continue
		}
		if lanes == nil {
			lanes = make(map[string]int64, len(ps.LaneDecided))
		}
		lanes[core.KernelLane(lane).String()] = int64(n)
	}
	return telemetry.PassReport{
		K:           ps.K,
		Generated:   int64(ps.Generated),
		PrunedOSSM:  int64(ps.Pruned),
		PrunedHash:  int64(ps.PrunedHash),
		Counted:     int64(ps.Counted),
		Frequent:    int64(ps.Frequent),
		TxScanned:   int64(ps.TxScanned),
		EarlyExit:   int64(ps.EarlyExit),
		Abandoned:   int64(ps.Abandoned),
		KernelLanes: lanes,
		Wall:        ps.Elapsed,
	}
}

// KernelDelta snapshots the pruner's kernel counters so a miner can
// attribute the difference across a pass to that pass's PassStats; a
// filter without counters yields zero deltas.
type KernelDelta struct {
	base core.KernelCounters
	f    core.Filter
}

// KernelDeltaFor starts a delta at the filter's current counters.
func KernelDeltaFor(f core.Filter) KernelDelta {
	kc, _ := core.KernelCountersOf(f)
	return KernelDelta{base: kc, f: f}
}

// Note writes the counters accumulated since the snapshot into ps and
// re-bases the delta, so one KernelDelta can span consecutive passes.
func (d *KernelDelta) Note(ps *PassStats) {
	if d.f == nil {
		return
	}
	kc, ok := core.KernelCountersOf(d.f)
	if !ok {
		return
	}
	ps.EarlyExit += int(kc.EarlyExit - d.base.EarlyExit)
	ps.Abandoned += int(kc.Abandoned - d.base.Abandoned)
	for lane := range kc.Lanes {
		ps.LaneDecided[lane] += int(kc.Lanes[lane].Decided - d.base.Lanes[lane].Decided)
	}
	d.base = kc
}

// FinishRun attaches the collector's frozen report to the result and
// closes the event stream; MineBy calls it after every registry dispatch,
// and direct hosts (episodes, bench wrappers) may call it themselves.
// No-op without an Instrument or a result.
func (o Options) FinishRun(res *Result) {
	if o.Instrument == nil || res == nil {
		return
	}
	o.Instrument.SetRequestID(o.RequestID)
	o.Instrument.SetPool(res.Stats.Workers)
	if kc, ok := core.KernelCountersOf(o.Pruner); ok {
		o.Instrument.SetKernelTotals(kc.EarlyExit, kc.Abandoned)
		lanes := make([]telemetry.LaneReport, 0, len(kc.Lanes))
		for lane, ls := range kc.Lanes {
			lanes = append(lanes, telemetry.LaneReport{
				Lane:      core.KernelLane(lane).String(),
				Decided:   ls.Decided,
				EarlyExit: ls.EarlyExit,
				Abandoned: ls.Abandoned,
			})
		}
		o.Instrument.SetKernelLanes(lanes)
	}
	o.Instrument.Emit(telemetry.Event{
		Kind:      telemetry.EventRunEnd,
		Algorithm: res.Stats.Algorithm,
		Elapsed:   res.Stats.Elapsed,
	})
	res.Stats.Telemetry = o.Instrument.Snapshot()
}

// LevelTally accumulates per-level candidate accounting for depth-first
// miners, whose search order does not visit levels one at a time: each
// worker notes candidates against the level their cardinality belongs to
// in a private tally, tallies merge in deterministic order, and Apply
// writes the totals into the assembled result's per-level PassStats. The
// zero value is ready to use.
type LevelTally struct {
	byK []PassStats // byK[i] holds level i+1 (K = i+1)
}

func (t *LevelTally) pass(k int) *PassStats {
	for len(t.byK) < k {
		t.byK = append(t.byK, PassStats{K: len(t.byK) + 1})
	}
	return &t.byK[k-1]
}

// Note records candidate accounting against level k.
func (t *LevelTally) Note(k, generated, prunedOSSM, counted int) {
	p := t.pass(k)
	p.Generated += generated
	p.Pruned += prunedOSSM
	p.Counted += counted
}

// NoteTx records n transactions scanned while counting level k.
func (t *LevelTally) NoteTx(k, n int) { t.pass(k).TxScanned += n }

// Merge folds another tally (one worker's private accounting) into t.
func (t *LevelTally) Merge(o *LevelTally) {
	for i := range o.byK {
		p := t.pass(i + 1)
		p.Generated += o.byK[i].Generated
		p.Pruned += o.byK[i].Pruned
		p.Counted += o.byK[i].Counted
		p.TxScanned += o.byK[i].TxScanned
	}
}

// Apply writes the tallied candidate accounting into the result's levels
// (preserving each level's K and Frequent, which FromMap established) so
// depth-first miners report the same per-pass shape as level-wise ones.
// Tallied levels with no surviving frequent itemsets are appended as
// frequent-empty levels, so pruned work at the search frontier stays
// visible.
func (t *LevelTally) Apply(res *Result) {
	seen := make(map[int]bool, len(res.Levels))
	for i := range res.Levels {
		k := res.Levels[i].K
		seen[k] = true
		if k > len(t.byK) {
			continue
		}
		src := t.byK[k-1]
		st := &res.Levels[i].Stats
		st.Generated = src.Generated
		st.Pruned = src.Pruned
		st.Counted = src.Counted
		st.TxScanned = src.TxScanned
	}
	for i := range t.byK {
		if src := t.byK[i]; !seen[src.K] && (src.Generated > 0 || src.Counted > 0) {
			res.Levels = append(res.Levels, LevelResult{K: src.K, Stats: src})
		}
	}
	sortLevels(res.Levels)
}

func sortLevels(ls []LevelResult) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].K < ls[j-1].K; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}
