package mining

import (
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestHashTreeLeafSplit(t *testing.T) {
	// More than maxLeaf candidates with a shared first item force leaf
	// splits several levels deep.
	var cands []*Candidate
	for j := 1; j <= 20; j++ {
		cands = append(cands, &Candidate{Items: dataset.NewItemset(0, dataset.Item(j))})
	}
	tree := NewHashTree(cands, 2)
	tx := dataset.NewItemset(0, 3, 7, 11)
	tree.CountTransaction(tx, 0, nil)
	for _, c := range cands {
		want := int64(0)
		if c.Items.SubsetOf(tx) {
			want = 1
		}
		if c.Count != want {
			t.Errorf("candidate %v count = %d, want %d", c.Items, c.Count, want)
		}
	}
}

func TestHashTreeShortTransactionSkipped(t *testing.T) {
	cands := []*Candidate{{Items: dataset.NewItemset(1, 2, 3)}}
	tree := NewHashTree(cands, 3)
	tree.CountTransaction(dataset.NewItemset(1, 2), 0, nil)
	if cands[0].Count != 0 {
		t.Error("transaction shorter than candidate size was counted")
	}
}

func TestHashTreeOnMatchOncePerTransaction(t *testing.T) {
	// Items 0 and 32 collide under fanout 32, creating duplicate hash
	// paths; onMatch must still fire exactly once per contained candidate
	// per transaction.
	cands := []*Candidate{
		{Items: dataset.NewItemset(0, 33)},
		{Items: dataset.NewItemset(32, 33)},
	}
	tree := NewHashTree(cands, 2)
	calls := map[string]int{}
	tx := dataset.NewItemset(0, 32, 33)
	tree.CountTransaction(tx, 7, func(c *Candidate) { calls[c.Items.Key()]++ })
	for _, c := range cands {
		if calls[c.Items.Key()] != 1 {
			t.Errorf("onMatch for %v fired %d times, want 1", c.Items, calls[c.Items.Key()])
		}
		if c.Count != 1 {
			t.Errorf("count for %v = %d, want 1", c.Items, c.Count)
		}
	}
}
