package mining

import (
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func sampleResult() *Result {
	return FromMap(2, []Counted{
		{Items: dataset.NewItemset(0), Count: 5},
		{Items: dataset.NewItemset(1), Count: 4},
		{Items: dataset.NewItemset(0, 1), Count: 3},
		{Items: dataset.NewItemset(2), Count: 2},
	})
}

func TestResultAccessors(t *testing.T) {
	r := sampleResult()
	if got := r.NumFrequent(); got != 4 {
		t.Errorf("NumFrequent = %d, want 4", got)
	}
	if got := len(r.All()); got != 4 {
		t.Errorf("All = %d entries, want 4", got)
	}
	if sup, ok := r.Support(dataset.NewItemset(0, 1)); !ok || sup != 3 {
		t.Errorf("Support({0,1}) = %d,%v", sup, ok)
	}
	if _, ok := r.Support(dataset.NewItemset(5)); ok {
		t.Error("missing itemset reported supported")
	}
	if _, ok := r.Support(dataset.NewItemset(0, 2)); ok {
		t.Error("absent pair reported supported")
	}
	m := r.AsMap()
	if len(m) != 4 || m["0,1"] != 3 {
		t.Errorf("AsMap = %v", m)
	}
	if l := r.Level(1); l == nil || len(l.Frequent) != 3 {
		t.Errorf("Level(1) = %+v", l)
	}
	if r.Level(7) != nil {
		t.Error("Level(7) should be nil")
	}
}

func TestResultEqual(t *testing.T) {
	a, b := sampleResult(), sampleResult()
	if !a.Equal(b) {
		t.Error("identical results not equal")
	}
	c := FromMap(2, []Counted{{Items: dataset.NewItemset(0), Count: 5}})
	if a.Equal(c) {
		t.Error("different results equal")
	}
	d := FromMap(2, []Counted{
		{Items: dataset.NewItemset(0), Count: 5},
		{Items: dataset.NewItemset(1), Count: 9}, // different count
		{Items: dataset.NewItemset(0, 1), Count: 3},
		{Items: dataset.NewItemset(2), Count: 2},
	})
	if a.Equal(d) {
		t.Error("different supports equal")
	}
}

func TestFromMapGroupsAndSorts(t *testing.T) {
	r := FromMap(1, []Counted{
		{Items: dataset.NewItemset(2, 3), Count: 1},
		{Items: dataset.NewItemset(0, 1), Count: 1},
		{Items: dataset.NewItemset(4), Count: 1},
	})
	if len(r.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(r.Levels))
	}
	if r.Levels[0].K != 1 || r.Levels[1].K != 2 {
		t.Errorf("level order wrong: %d, %d", r.Levels[0].K, r.Levels[1].K)
	}
	l2 := r.Levels[1].Frequent
	if !l2[0].Items.Equal(dataset.NewItemset(0, 1)) {
		t.Errorf("level 2 not sorted: %v", l2)
	}
	if r.Levels[1].Stats.Frequent != 2 {
		t.Errorf("stats.Frequent = %d", r.Levels[1].Stats.Frequent)
	}
}

func TestFromMapSkipsEmptyLevels(t *testing.T) {
	// Sizes 1 and 3 present, 2 absent — no empty level entry in between.
	r := FromMap(1, []Counted{
		{Items: dataset.NewItemset(0), Count: 2},
		{Items: dataset.NewItemset(0, 1, 2), Count: 1},
	})
	if len(r.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(r.Levels))
	}
	if r.Levels[1].K != 3 {
		t.Errorf("second level K = %d, want 3", r.Levels[1].K)
	}
}

func TestMinCountForAndValidate(t *testing.T) {
	d := dataset.MustFromTransactions(2, [][]dataset.Item{{0}, {1}, {0}, {1}, {0}})
	cases := []struct {
		frac float64
		want int64
	}{
		{0, 1}, {0.2, 1}, {0.21, 2}, {1, 5},
	}
	for _, c := range cases {
		if got := MinCountFor(d, c.frac); got != c.want {
			t.Errorf("MinCountFor(%g) = %d, want %d", c.frac, got, c.want)
		}
	}
	if err := ValidateMinCount(0); err == nil {
		t.Error("minCount 0 accepted")
	}
	if err := ValidateMinCount(1); err != nil {
		t.Errorf("minCount 1 rejected: %v", err)
	}
}

func TestCountStateSharedTree(t *testing.T) {
	// Two workers over disjoint transaction shards must reproduce the
	// serial counts exactly.
	cands := []*Candidate{
		{Items: dataset.NewItemset(0, 1)},
		{Items: dataset.NewItemset(1, 2)},
		{Items: dataset.NewItemset(0, 2)},
	}
	tree := NewHashTree(cands, 2)
	txs := []dataset.Itemset{
		dataset.NewItemset(0, 1, 2),
		dataset.NewItemset(0, 1),
		dataset.NewItemset(1, 2),
		dataset.NewItemset(0, 2),
		dataset.NewItemset(0, 1, 2),
	}
	st1, st2 := tree.NewState(), tree.NewState()
	for tid, tx := range txs[:3] {
		tree.CountTransactionInto(st1, tx, tid)
	}
	for tid, tx := range txs[3:] {
		tree.CountTransactionInto(st2, tx, tid)
	}
	tree.Merge(cands, st1)
	tree.Merge(cands, st2)
	want := []int64{3, 3, 3}
	for i, c := range cands {
		if c.Count != want[i] {
			t.Errorf("candidate %v count = %d, want %d", c.Items, c.Count, want[i])
		}
	}
}

func TestCountStateShortTransaction(t *testing.T) {
	cands := []*Candidate{{Items: dataset.NewItemset(0, 1, 2)}}
	tree := NewHashTree(cands, 3)
	st := tree.NewState()
	tree.CountTransactionInto(st, dataset.NewItemset(0, 1), 0)
	tree.Merge(cands, st)
	if cands[0].Count != 0 {
		t.Error("short transaction counted")
	}
}
