// Package mining defines the result and statistics types shared by every
// frequent-pattern miner in this repository (Apriori, DHP, Partition,
// FP-growth, DepthProject), so that results are directly comparable and
// the experiment harness can account for candidates uniformly.
package mining

import (
	"fmt"
	"sort"
	"time"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
)

// Counted is a frequent itemset with its exact support count.
type Counted struct {
	Items dataset.Itemset
	Count int64
}

// PassStats records the candidate accounting of one level/pass — the
// quantities behind the paper's figures (candidates generated, pruned by
// the OSSM, actually counted, found frequent).
type PassStats struct {
	K         int
	Generated int
	Pruned    int // discarded by the OSSM bound before counting
	// PrunedHash counts candidates discarded by hash filtering after
	// surviving the OSSM (DHP's bucket test); zero for other miners.
	PrunedHash int
	Counted    int
	Frequent   int
	// EarlyExit / Abandoned break down how the decision-mode bound kernels
	// settled this pass's OSSM checks: EarlyExit candidates were admitted
	// before the kernel scanned every segment (the partial sum reached the
	// threshold) and Abandoned candidates were rejected early (the suffix
	// remainders proved the threshold unreachable). Zero when no kernel ran.
	EarlyExit int
	Abandoned int
	// LaneDecided breaks this pass's kernel decisions down by the core
	// dispatch lane that produced them (index with core.KernelLane);
	// all zero when no kernel ran.
	LaneDecided [core.NumKernelLanes]int
	// TxScanned is the number of transactions scanned while counting this
	// pass (after projection/trimming); zero when the pass counts nothing
	// or the miner cannot attribute scans to a level.
	TxScanned int
	// Elapsed is the wall time of this level. Level-wise miners (Apriori,
	// DHP) time each pass individually; depth-first miners cannot
	// attribute time to a level and leave it zero (the run total lives in
	// Result.Stats.Elapsed).
	Elapsed time.Duration
}

// LevelResult carries the frequent k-itemsets of one level.
type LevelResult struct {
	K        int
	Frequent []Counted
	Stats    PassStats
}

// Result is the common output of a mining run.
type Result struct {
	MinCount int64
	Levels   []LevelResult
	// Stats is the unified run-level accounting envelope (algorithm name,
	// wall time, counting pool size, algorithm-specific extras).
	Stats Stats
}

// All returns every frequent itemset across levels.
func (r *Result) All() []Counted {
	var out []Counted
	for _, l := range r.Levels {
		out = append(out, l.Frequent...)
	}
	return out
}

// NumFrequent returns the total number of frequent itemsets.
func (r *Result) NumFrequent() int {
	n := 0
	for _, l := range r.Levels {
		n += len(l.Frequent)
	}
	return n
}

// Support looks up the support of x among the mined frequent itemsets.
func (r *Result) Support(x dataset.Itemset) (int64, bool) {
	for _, l := range r.Levels {
		if l.K != len(x) {
			continue
		}
		for _, c := range l.Frequent {
			if c.Items.Equal(x) {
				return c.Count, true
			}
		}
	}
	return 0, false
}

// AsMap flattens the result into itemset-key → support, the canonical
// form for cross-miner equality checks.
func (r *Result) AsMap() map[string]int64 {
	out := make(map[string]int64, r.NumFrequent())
	for _, c := range r.All() {
		out[c.Items.Key()] = c.Count
	}
	return out
}

// Level returns the level holding k-itemsets, or nil.
func (r *Result) Level(k int) *LevelResult {
	for i := range r.Levels {
		if r.Levels[i].K == k {
			return &r.Levels[i]
		}
	}
	return nil
}

// Equal reports whether two results contain exactly the same frequent
// itemsets with the same supports.
func (r *Result) Equal(o *Result) bool {
	a, b := r.AsMap(), o.AsMap()
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// FromMap assembles a Result from an itemset-key-free listing of counted
// itemsets, grouping them into levels and sorting each level
// lexicographically. Used by miners (FP-growth, DepthProject) that do not
// naturally work level by level.
func FromMap(minCount int64, found []Counted) *Result {
	byLevel := make(map[int][]Counted)
	maxK := 0
	for _, c := range found {
		k := len(c.Items)
		byLevel[k] = append(byLevel[k], c)
		if k > maxK {
			maxK = k
		}
	}
	res := &Result{MinCount: minCount}
	for k := 1; k <= maxK; k++ {
		freq := byLevel[k]
		if freq == nil {
			continue
		}
		SortCounted(freq)
		res.Levels = append(res.Levels, LevelResult{
			K:        k,
			Frequent: freq,
			Stats:    PassStats{K: k, Frequent: len(freq)},
		})
	}
	return res
}

// SortCounted orders itemsets lexicographically in place.
func SortCounted(cs []Counted) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Items.Compare(cs[j].Items) < 0 })
}

// MinCountFor converts a relative support threshold (fraction of
// transactions) into an absolute count, rounding up — "support 1%" in the
// paper's sense. The result is at least 1.
func MinCountFor(d *dataset.Dataset, frac float64) int64 {
	c := int64(frac * float64(d.NumTx()))
	if float64(c) < frac*float64(d.NumTx()) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// ValidateMinCount rejects non-positive thresholds with a uniform error.
func ValidateMinCount(minCount int64) error {
	if minCount < 1 {
		return fmt.Errorf("mining: minCount must be ≥ 1, got %d", minCount)
	}
	return nil
}
