package mining

// Closed and maximal itemset post-processing. The paper's introduction
// lists closed sets (Pasquier et al., ICDT 1999) among the pattern
// classes whose counting the OSSM accelerates; these filters derive the
// condensed representations from a full mining result.

// Closed returns the frequent itemsets with no frequent proper superset
// of equal support (the closed frequent itemsets). The input result must
// be downward-closed (as every miner here produces); the output is in
// level order, lexicographic within a level.
func Closed(r *Result) []Counted {
	var out []Counted
	for li, l := range r.Levels {
		next := map[string]int64{}
		if li+1 < len(r.Levels) && r.Levels[li+1].K == l.K+1 {
			for _, c := range r.Levels[li+1].Frequent {
				next[c.Items.Key()] = c.Count
			}
		}
		for _, c := range l.Frequent {
			closed := true
			// A superset of equal support exists iff some (k+1)-extension
			// within the next level matches the count. Only frequent
			// supersets can match: sup(superset) ≤ sup(c), and if an
			// *infrequent* superset had equal support, c itself would be
			// infrequent.
			for key, cnt := range next {
				if cnt == c.Count && supersetKey(c, key, r) {
					closed = false
					break
				}
			}
			if closed {
				out = append(out, c)
			}
		}
	}
	return out
}

// supersetKey reports whether the itemset behind key (a member of the
// next level) is a superset of c. Keys are canonical, so we look the
// itemset up in the result rather than parsing.
func supersetKey(c Counted, key string, r *Result) bool {
	for _, l := range r.Levels {
		if l.K != len(c.Items)+1 {
			continue
		}
		for _, s := range l.Frequent {
			if s.Items.Key() == key {
				return c.Items.SubsetOf(s.Items)
			}
		}
	}
	return false
}

// Maximal returns the frequent itemsets with no frequent proper superset
// at all (the maximal frequent itemsets, the long-pattern representation
// of Bayardo's Max-Miner and DepthProject).
func Maximal(r *Result) []Counted {
	var out []Counted
	for li, l := range r.Levels {
		var next []Counted
		if li+1 < len(r.Levels) && r.Levels[li+1].K == l.K+1 {
			next = r.Levels[li+1].Frequent
		}
		for _, c := range l.Frequent {
			maximal := true
			for _, s := range next {
				if c.Items.SubsetOf(s.Items) {
					maximal = false
					break
				}
			}
			if maximal {
				out = append(out, c)
			}
		}
	}
	return out
}
