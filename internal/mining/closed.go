package mining

import "strconv"

// Closed and maximal itemset post-processing. The paper's introduction
// lists closed sets (Pasquier et al., ICDT 1999) among the pattern
// classes whose counting the OSSM accelerates; these filters derive the
// condensed representations from a full mining result.
//
// Both filters work level by level: one pass over level k+1 marks, for
// each of its itemsets, the k-subsets it subsumes; level k then keeps
// whatever was never marked. Total work is linear in the result size
// (times k for the subset keys), not quadratic in the level widths.

// Closed returns the frequent itemsets with no frequent proper superset
// of equal support (the closed frequent itemsets). The input result must
// be downward-closed (as every miner here produces); the output is in
// level order, lexicographic within a level.
func Closed(r *Result) []Counted {
	var out []Counted
	for li, l := range r.Levels {
		// A superset of equal support exists iff some (k+1)-extension
		// within the next level matches the count: sup(superset) ≤ sup(c)
		// forces intermediate supersets to the same support, and only
		// frequent supersets can match (if an *infrequent* superset had
		// equal support, c itself would be infrequent).
		subsumed := map[string]bool{}
		if li+1 < len(r.Levels) && r.Levels[li+1].K == l.K+1 {
			for _, s := range r.Levels[li+1].Frequent {
				for i := range s.Items {
					subsumed[s.Items.Without(i).Key()+supKey(s.Count)] = true
				}
			}
		}
		for _, c := range l.Frequent {
			if !subsumed[c.Items.Key()+supKey(c.Count)] {
				out = append(out, c)
			}
		}
	}
	return out
}

// supKey renders a support count for appending to an itemset key (keys
// are digits and commas, so '#' keeps the pair unambiguous).
func supKey(count int64) string {
	return "#" + strconv.FormatInt(count, 10)
}

// Maximal returns the frequent itemsets with no frequent proper superset
// at all (the maximal frequent itemsets, the long-pattern representation
// of Bayardo's Max-Miner and DepthProject).
func Maximal(r *Result) []Counted {
	var out []Counted
	for li, l := range r.Levels {
		subsumed := map[string]bool{}
		if li+1 < len(r.Levels) && r.Levels[li+1].K == l.K+1 {
			for _, s := range r.Levels[li+1].Frequent {
				for i := range s.Items {
					subsumed[s.Items.Without(i).Key()] = true
				}
			}
		}
		for _, c := range l.Frequent {
			if !subsumed[c.Items.Key()] {
				out = append(out, c)
			}
		}
	}
	return out
}
