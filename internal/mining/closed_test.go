package mining

import (
	"math/rand"
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// resultFrom builds a Result from literal counted itemsets.
func resultFrom(minCount int64, cs ...Counted) *Result {
	return FromMap(minCount, cs)
}

func TestClosedAndMaximal(t *testing.T) {
	// Classic example: tx = {a,b}, {a,b}, {a,b,c}. minCount 1.
	// Frequent: a:3 b:3 c:1 ab:3 ac:1 bc:1 abc:1.
	// Closed: {a,b} (3), {a,b,c} (1). ({a} and {b} are absorbed by ab;
	// {c}, {a,c}, {b,c} absorbed by abc.)
	// Maximal: {a,b,c} only.
	res := resultFrom(1,
		Counted{Items: dataset.NewItemset(0), Count: 3},
		Counted{Items: dataset.NewItemset(1), Count: 3},
		Counted{Items: dataset.NewItemset(2), Count: 1},
		Counted{Items: dataset.NewItemset(0, 1), Count: 3},
		Counted{Items: dataset.NewItemset(0, 2), Count: 1},
		Counted{Items: dataset.NewItemset(1, 2), Count: 1},
		Counted{Items: dataset.NewItemset(0, 1, 2), Count: 1},
	)
	closed := Closed(res)
	wantClosed := map[string]bool{"0,1": true, "0,1,2": true}
	if len(closed) != len(wantClosed) {
		t.Fatalf("closed = %v, want keys %v", closed, wantClosed)
	}
	for _, c := range closed {
		if !wantClosed[c.Items.Key()] {
			t.Errorf("unexpected closed itemset %v", c.Items)
		}
	}
	maximal := Maximal(res)
	if len(maximal) != 1 || maximal[0].Items.Key() != "0,1,2" {
		t.Errorf("maximal = %v, want [{0,1,2}]", maximal)
	}
}

func TestClosedOfFlatResult(t *testing.T) {
	// Singletons only: everything is closed and maximal.
	res := resultFrom(1,
		Counted{Items: dataset.NewItemset(0), Count: 2},
		Counted{Items: dataset.NewItemset(1), Count: 5},
	)
	if got := Closed(res); len(got) != 2 {
		t.Errorf("closed = %v, want both singletons", got)
	}
	if got := Maximal(res); len(got) != 2 {
		t.Errorf("maximal = %v, want both singletons", got)
	}
}

func TestMaximalSubsetOfClosed(t *testing.T) {
	// Structural fact: every maximal itemset is closed.
	res := resultFrom(1,
		Counted{Items: dataset.NewItemset(0), Count: 4},
		Counted{Items: dataset.NewItemset(1), Count: 4},
		Counted{Items: dataset.NewItemset(2), Count: 3},
		Counted{Items: dataset.NewItemset(0, 1), Count: 3},
		Counted{Items: dataset.NewItemset(0, 2), Count: 3},
	)
	closedKeys := map[string]bool{}
	for _, c := range Closed(res) {
		closedKeys[c.Items.Key()] = true
	}
	for _, m := range Maximal(res) {
		if !closedKeys[m.Items.Key()] {
			t.Errorf("maximal %v not closed", m.Items)
		}
	}
}

// closedBrute is the definition applied literally: a set is closed iff
// no frequent proper superset anywhere in the result has equal support.
func closedBrute(r *Result) []Counted {
	var out []Counted
	all := r.All()
	for _, c := range all {
		absorbed := false
		for _, s := range all {
			if len(s.Items) > len(c.Items) && s.Count == c.Count && c.Items.SubsetOf(s.Items) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, c)
		}
	}
	return out
}

// maximalBrute: maximal iff no frequent proper superset at all.
func maximalBrute(r *Result) []Counted {
	var out []Counted
	all := r.All()
	for _, c := range all {
		absorbed := false
		for _, s := range all {
			if len(s.Items) > len(c.Items) && c.Items.SubsetOf(s.Items) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, c)
		}
	}
	return out
}

// denseResult mines all itemsets up to size 3 of a random dataset by
// brute-force counting and returns the frequent ones as a Result. With
// the parameters below the result holds a few thousand itemsets — the
// scale at which the old per-candidate level rescans in Closed turned
// quadratic.
func denseResult(tb testing.TB) *Result {
	tb.Helper()
	const (
		numItems = 22
		numTx    = 500
		minCount = 20
	)
	rng := rand.New(rand.NewSource(41))
	txs := make([]dataset.Itemset, numTx)
	for i := range txs {
		var t dataset.Itemset
		for it := dataset.Item(0); it < numItems; it++ {
			if rng.Float64() < 0.45 {
				t = append(t, it)
			}
		}
		txs[i] = t
	}
	count := func(x dataset.Itemset) int64 {
		var n int64
		for _, t := range txs {
			if x.SubsetOf(t) {
				n++
			}
		}
		return n
	}
	var found []Counted
	add := func(x dataset.Itemset) {
		if n := count(x); n >= minCount {
			found = append(found, Counted{Items: x, Count: n})
		}
	}
	for a := dataset.Item(0); a < numItems; a++ {
		add(dataset.NewItemset(a))
		for b := a + 1; b < numItems; b++ {
			add(dataset.NewItemset(a, b))
			for c := b + 1; c < numItems; c++ {
				add(dataset.NewItemset(a, b, c))
			}
		}
	}
	return FromMap(minCount, found)
}

func TestClosedAndMaximalLargeResult(t *testing.T) {
	res := denseResult(t)
	if n := res.NumFrequent(); n < 1000 {
		t.Fatalf("dense result has only %d itemsets; want a few thousand", n)
	}

	sameAs := func(name string, got, want []Counted) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d itemsets, brute force says %d", name, len(got), len(want))
		}
		wantKeys := map[string]int64{}
		for _, c := range want {
			wantKeys[c.Items.Key()] = c.Count
		}
		for _, c := range got {
			if n, ok := wantKeys[c.Items.Key()]; !ok || n != c.Count {
				t.Fatalf("%s: unexpected %v (count %d)", name, c.Items, c.Count)
			}
		}
	}
	sameAs("Closed", Closed(res), closedBrute(res))
	sameAs("Maximal", Maximal(res), maximalBrute(res))
}

func BenchmarkClosed(b *testing.B) {
	res := denseResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Closed(res)
	}
}

func BenchmarkMaximal(b *testing.B) {
	res := denseResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Maximal(res)
	}
}
