package mining

import (
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// resultFrom builds a Result from literal counted itemsets.
func resultFrom(minCount int64, cs ...Counted) *Result {
	return FromMap(minCount, cs)
}

func TestClosedAndMaximal(t *testing.T) {
	// Classic example: tx = {a,b}, {a,b}, {a,b,c}. minCount 1.
	// Frequent: a:3 b:3 c:1 ab:3 ac:1 bc:1 abc:1.
	// Closed: {a,b} (3), {a,b,c} (1). ({a} and {b} are absorbed by ab;
	// {c}, {a,c}, {b,c} absorbed by abc.)
	// Maximal: {a,b,c} only.
	res := resultFrom(1,
		Counted{Items: dataset.NewItemset(0), Count: 3},
		Counted{Items: dataset.NewItemset(1), Count: 3},
		Counted{Items: dataset.NewItemset(2), Count: 1},
		Counted{Items: dataset.NewItemset(0, 1), Count: 3},
		Counted{Items: dataset.NewItemset(0, 2), Count: 1},
		Counted{Items: dataset.NewItemset(1, 2), Count: 1},
		Counted{Items: dataset.NewItemset(0, 1, 2), Count: 1},
	)
	closed := Closed(res)
	wantClosed := map[string]bool{"0,1": true, "0,1,2": true}
	if len(closed) != len(wantClosed) {
		t.Fatalf("closed = %v, want keys %v", closed, wantClosed)
	}
	for _, c := range closed {
		if !wantClosed[c.Items.Key()] {
			t.Errorf("unexpected closed itemset %v", c.Items)
		}
	}
	maximal := Maximal(res)
	if len(maximal) != 1 || maximal[0].Items.Key() != "0,1,2" {
		t.Errorf("maximal = %v, want [{0,1,2}]", maximal)
	}
}

func TestClosedOfFlatResult(t *testing.T) {
	// Singletons only: everything is closed and maximal.
	res := resultFrom(1,
		Counted{Items: dataset.NewItemset(0), Count: 2},
		Counted{Items: dataset.NewItemset(1), Count: 5},
	)
	if got := Closed(res); len(got) != 2 {
		t.Errorf("closed = %v, want both singletons", got)
	}
	if got := Maximal(res); len(got) != 2 {
		t.Errorf("maximal = %v, want both singletons", got)
	}
}

func TestMaximalSubsetOfClosed(t *testing.T) {
	// Structural fact: every maximal itemset is closed.
	res := resultFrom(1,
		Counted{Items: dataset.NewItemset(0), Count: 4},
		Counted{Items: dataset.NewItemset(1), Count: 4},
		Counted{Items: dataset.NewItemset(2), Count: 3},
		Counted{Items: dataset.NewItemset(0, 1), Count: 3},
		Counted{Items: dataset.NewItemset(0, 2), Count: 3},
	)
	closedKeys := map[string]bool{}
	for _, c := range Closed(res) {
		closedKeys[c.Items.Key()] = true
	}
	for _, m := range Maximal(res) {
		if !closedKeys[m.Items.Key()] {
			t.Errorf("maximal %v not closed", m.Items)
		}
	}
}
