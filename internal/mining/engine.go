package mining

// The unified mining engine: one Options struct every miner understands,
// one Stats envelope every result carries, and a registry that exposes
// each miner behind a uniform driver signature. The six miner packages
// (apriori, dhp, eclat, fpgrowth, partition, depthproject) embed Options
// in their algorithm-specific options, attach their extra counters to
// Stats.Extra, and register themselves from init(), so the CLIs, the
// public facade and the bench harness dispatch by name through Lookup
// instead of per-binary switches.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/telemetry"
)

// Options is the shared engine configuration embedded by every miner's
// algorithm-specific options. The zero value mines serially, unpruned
// and unbounded.
type Options struct {
	// Pruner applies an OSSM bound (or any core.Filter, e.g. the
	// generalized ExtendedPruner) to candidates before counting; nil runs
	// the plain algorithm.
	Pruner core.Filter
	// MaxLen stops after frequent itemsets of this size (0 = unlimited).
	MaxLen int
	// Workers fans the miner's hot counting passes over a goroutine pool
	// (conc.Resolve semantics: 0, 1 or negative = serial, larger values
	// capped at NumCPU). The result is identical to the serial run.
	Workers int
	// Progress, when non-nil, is invoked once per completed level with
	// that level's statistics. Level-wise miners (Apriori, DHP) call it
	// as each pass finishes; depth-first and partition-based miners call
	// it per assembled level once the search completes. New consumers
	// should prefer Instrument's structured event stream, which carries
	// the same per-pass records plus run framing.
	Progress func(PassStats)
	// Instrument, when non-nil, collects engine-wide telemetry: per-pass
	// candidate accounting and wall time, transactions scanned, and
	// worker-pool utilization, frozen into Stats.Telemetry when the run
	// finishes. nil (the default) disables collection at the cost of one
	// branch per pass — the counting hot paths are untouched.
	Instrument *Instrumentation
	// RequestID tags the run's telemetry report with the serving-layer
	// request that triggered it, so one slow /v1/mine call can be
	// followed from access log to per-pass counters. Empty (the
	// default) leaves the report untagged; without an Instrument
	// collector the tag has nowhere to land and is ignored.
	RequestID string
	// Params carries algorithm-specific integer tunables by name, so the
	// uniform driver signature can still reach per-miner knobs (e.g.
	// "partitions" for Partition, "buckets" for DHP). Miners read the
	// keys they understand and ignore the rest; missing or zero keys fall
	// back to package defaults.
	Params map[string]int
}

// Param returns the named tunable, or def when absent or zero.
func (o Options) Param(name string, def int) int {
	if v := o.Params[name]; v != 0 {
		return v
	}
	return def
}

// Emit reports one finished pass: it folds the pass into the Instrument
// collector (which also emits an EventPassEnd on the structured stream)
// and invokes the legacy Progress hook, if any.
func (o Options) Emit(ps PassStats) {
	if o.Instrument != nil {
		o.Instrument.RecordPass("", ps.sample())
	}
	if o.Progress != nil {
		o.Progress(ps)
	}
}

// Stats is the unified run-level accounting envelope attached to every
// Result (per-pass counters live in LevelResult.Stats).
type Stats struct {
	// Algorithm is the registry name of the miner that produced the
	// result.
	Algorithm string
	// Elapsed is the total mining wall time.
	Elapsed time.Duration
	// Workers is the resolved goroutine-pool size the counting passes ran
	// with (1 for miners with no parallel counting path).
	Workers int
	// Extra holds algorithm-specific counters as a typed extension (e.g.
	// *dhp.Stats, *eclat.Stats); nil for miners without extra accounting.
	Extra any
	// Telemetry is the uniform engine-wide observability section: the
	// frozen report of the run's Instrumentation collector (per-pass
	// candidate accounting, transactions scanned, pool utilization). nil
	// when the run was not instrumented.
	Telemetry *telemetry.Report
}

// Driver is the uniform mining entry point the registry exposes: mine d
// at the absolute support threshold minCount under the shared options.
type Driver func(d *dataset.Dataset, minCount int64, opts Options) (*Result, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Driver)
)

// Register adds a named miner to the registry; miner packages call it
// from init(). It panics on an empty name, nil driver, or duplicate
// registration — all programmer errors.
func Register(name string, drv Driver) {
	if name == "" || drv == nil {
		panic("mining: Register requires a name and a driver")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("mining: miner %q registered twice", name))
	}
	registry[name] = drv
}

// Lookup returns the named miner's driver.
func Lookup(name string) (Driver, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	drv, ok := registry[name]
	return drv, ok
}

// Names lists the registered miners in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MineBy looks the named miner up and runs it, with a listing of known
// names in the error for an unknown one. When the options carry an
// Instrument collector, MineBy frames the run with start/end events and
// attaches the frozen telemetry report to the result's Stats.
func MineBy(name string, d *dataset.Dataset, minCount int64, opts Options) (*Result, error) {
	drv, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("mining: unknown miner %q (registered: %v)", name, Names())
	}
	opts.Instrument.Emit(telemetry.Event{Kind: telemetry.EventRunStart, Algorithm: name})
	res, err := drv(d, minCount, opts)
	if err != nil {
		return nil, err
	}
	opts.FinishRun(res)
	return res, nil
}

// EmitLevels replays an assembled result's levels through Emit — the
// per-level notification path for miners that do not work level by level
// (FP-growth, dEclat, DepthProject, Partition).
func EmitLevels(o Options, r *Result) {
	if o.Progress == nil && o.Instrument == nil {
		return
	}
	for _, l := range r.Levels {
		o.Emit(l.Stats)
	}
}
