package mining

import (
	"sync"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// Candidate is a candidate itemset with its running support count,
// indexable by a HashTree. lastTID guards against counting the same
// transaction twice when several hash paths reach the same leaf; id is
// the candidate's position in the tree's build order (used by the
// shared-tree parallel counting path).
type Candidate struct {
	Items   dataset.Itemset
	Count   int64
	lastTID int
	id      int
}

// HashTree indexes candidates of one cardinality for subset counting, as
// in the original Apriori paper: interior nodes hash an item to a child;
// leaves hold a bounded list of candidates and split when they overflow.
// Counting work scales with the number of candidates — the property that
// turns OSSM pruning into runtime savings.
type HashTree struct {
	root     *htNode
	size     int // cardinality of the candidates
	fanout   int
	maxLeaf  int
	numCands int
}

type htNode struct {
	children []*htNode    // non-nil ⇒ interior node
	leaf     []*Candidate // interior nodes keep leaf == nil
}

func (n *htNode) isLeaf() bool { return n.children == nil }

const (
	defaultFanout  = 32
	defaultMaxLeaf = 8
)

// NewHashTree builds a tree over the given candidates (all of
// cardinality size).
func NewHashTree(cands []*Candidate, size int) *HashTree {
	t := &HashTree{
		root:    &htNode{},
		size:    size,
		fanout:  defaultFanout,
		maxLeaf: defaultMaxLeaf,
	}
	for i, c := range cands {
		c.lastTID = -1
		c.id = i
		t.insert(t.root, c, 0)
	}
	t.numCands = len(cands)
	return t
}

func (t *HashTree) hash(it dataset.Item) int { return int(it) % t.fanout }

func (t *HashTree) insert(n *htNode, c *Candidate, depth int) {
	if n.isLeaf() {
		n.leaf = append(n.leaf, c)
		// Split overflowing leaves while there are still items left to
		// hash on.
		if len(n.leaf) > t.maxLeaf && depth < t.size {
			old := n.leaf
			n.leaf = nil
			n.children = make([]*htNode, t.fanout)
			for _, oc := range old {
				t.insertChild(n, oc, depth)
			}
		}
		return
	}
	t.insertChild(n, c, depth)
}

func (t *HashTree) insertChild(n *htNode, c *Candidate, depth int) {
	h := t.hash(c.Items[depth])
	if n.children[h] == nil {
		n.children[h] = &htNode{}
	}
	t.insert(n.children[h], c, depth+1)
}

// CountTransaction adds tx (with id tid) to the counts of every candidate
// it contains. onMatch, if non-nil, is invoked once per contained
// candidate (DHP uses it to track item participation for transaction
// trimming). The traversal mirrors the classical algorithm: at depth d,
// branch on each remaining transaction item, descending into the child it
// hashes to; at a leaf, verify containment exactly.
func (t *HashTree) CountTransaction(tx dataset.Itemset, tid int, onMatch func(*Candidate)) {
	if len(tx) < t.size {
		return
	}
	t.count(t.root, tx, 0, 0, tid, onMatch)
}

func (t *HashTree) count(n *htNode, tx dataset.Itemset, depth, start, tid int, onMatch func(*Candidate)) {
	if n.isLeaf() {
		for _, c := range n.leaf {
			if c.lastTID != tid && c.Items.SubsetOf(tx) {
				c.lastTID = tid
				c.Count++
				if onMatch != nil {
					onMatch(c)
				}
			}
		}
		return
	}
	// Enough items must remain to complete a candidate of t.size items.
	for i := start; i <= len(tx)-(t.size-depth); i++ {
		if child := n.children[t.hash(tx[i])]; child != nil {
			t.count(child, tx, depth+1, i+1, tid, onMatch)
		}
	}
}

// CountState is per-worker counting state for a shared, read-only
// HashTree: several goroutines can traverse one tree concurrently, each
// accumulating into its own state, and the states merge afterwards.
type CountState struct {
	counts  []int64
	lastTID []int
}

// NewState allocates counting state sized to the tree.
func (t *HashTree) NewState() *CountState {
	st := &CountState{
		counts:  make([]int64, t.numCands),
		lastTID: make([]int, t.numCands),
	}
	for i := range st.lastTID {
		st.lastTID[i] = -1
	}
	return st
}

// statePool recycles CountState scratch across passes (and across runs):
// a multi-pass miner would otherwise allocate workers × numCands counting
// slots on every pass.
var statePool = sync.Pool{New: func() any { return new(CountState) }}

// AcquireState returns counting state sized to the tree, reusing pooled
// scratch when available. Pair with ReleaseState once the state has been
// merged.
func (t *HashTree) AcquireState() *CountState {
	st := statePool.Get().(*CountState)
	if cap(st.counts) < t.numCands {
		st.counts = make([]int64, t.numCands)
		st.lastTID = make([]int, t.numCands)
	}
	st.counts = st.counts[:t.numCands]
	st.lastTID = st.lastTID[:t.numCands]
	for i := range st.counts {
		st.counts[i] = 0
	}
	for i := range st.lastTID {
		st.lastTID[i] = -1
	}
	return st
}

// ReleaseState returns st to the scratch pool. The caller must not use it
// afterwards.
func ReleaseState(st *CountState) {
	if st != nil {
		statePool.Put(st)
	}
}

// CountTransactionInto is CountTransaction accumulating into st instead
// of the candidates themselves; the tree is not mutated, so concurrent
// calls with distinct states are safe.
func (t *HashTree) CountTransactionInto(st *CountState, tx dataset.Itemset, tid int) {
	t.CountTransactionIntoFunc(st, tx, tid, nil)
}

// CountTransactionIntoFunc is CountTransactionInto with a per-match
// callback, the state-based counterpart of CountTransaction's onMatch
// (DHP's parallel trim pass uses it to track item participation per
// worker).
func (t *HashTree) CountTransactionIntoFunc(st *CountState, tx dataset.Itemset, tid int, onMatch func(*Candidate)) {
	if len(tx) < t.size {
		return
	}
	t.countInto(st, t.root, tx, 0, 0, tid, onMatch)
}

func (t *HashTree) countInto(st *CountState, n *htNode, tx dataset.Itemset, depth, start, tid int, onMatch func(*Candidate)) {
	if n.isLeaf() {
		for _, c := range n.leaf {
			if st.lastTID[c.id] != tid && c.Items.SubsetOf(tx) {
				st.lastTID[c.id] = tid
				st.counts[c.id]++
				if onMatch != nil {
					onMatch(c)
				}
			}
		}
		return
	}
	for i := start; i <= len(tx)-(t.size-depth); i++ {
		if child := n.children[t.hash(tx[i])]; child != nil {
			t.countInto(st, child, tx, depth+1, i+1, tid, onMatch)
		}
	}
}

// Merge adds the state's counts into the candidates (in tree build
// order). Call once per state after all counting goroutines finish.
func (t *HashTree) Merge(cands []*Candidate, st *CountState) {
	for i, c := range cands {
		c.Count += st.counts[i]
	}
}
