package mining

import (
	"time"

	"github.com/ossm-mining/ossm/internal/conc"
	"github.com/ossm-mining/ossm/internal/dataset"
)

// CountParallel counts the candidates of one pass (all of cardinality
// size) against txs, sharding the transactions over a worker pool. One
// shared, read-only hash tree serves every worker; each accumulates into
// private CountState, merged afterwards in worker order. The result is
// identical to the serial count. workers follows conc.Resolve semantics
// (already-resolved values pass through unchanged).
//
// When instr is non-nil, each worker's busy interval is reported to it,
// feeding the run report's pool-utilization figure; a nil instr leaves
// the counting loop untouched.
func CountParallel(txs []dataset.Itemset, cands []*Candidate, size, workers int, instr *Instrumentation) {
	workers = conc.Resolve(workers)
	if workers <= 1 || len(txs) < 4*workers {
		start := time.Time{}
		if instr != nil {
			start = time.Now()
		}
		tree := NewHashTree(cands, size)
		for tid, tx := range txs {
			tree.CountTransaction(tx, tid, nil)
		}
		if instr != nil {
			instr.ObserveWorker(time.Since(start))
		}
		return
	}
	countSharded(txs, cands, size, workers, instr)
}

// countSharded is the fan-out behind CountParallel; it takes the pool
// size as given, so tests can drive shards wider than conc.Resolve
// would allow on the host.
func countSharded(txs []dataset.Itemset, cands []*Candidate, size, workers int, instr *Instrumentation) {
	tree := NewHashTree(cands, size)
	states := make([]*CountState, workers)
	conc.ForChunks(workers, len(txs), func(w, lo, hi int) {
		start := time.Time{}
		if instr != nil {
			start = time.Now()
		}
		st := tree.AcquireState()
		states[w] = st
		for i := lo; i < hi; i++ {
			tree.CountTransactionInto(st, txs[i], i)
		}
		if instr != nil {
			instr.ObserveWorker(time.Since(start))
		}
	})
	for _, st := range states {
		if st != nil {
			tree.Merge(cands, st)
			ReleaseState(st)
		}
	}
}
