package episodes

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestEpisodeRulesHandComputed(t *testing.T) {
	// A B A B: mo(A)=2, mo(B)=2, mo(A→B)=2, mo(B→A)=1 at W=2.
	// Rule A ⇒ A→B: conf 2/2 = 1. Rule B ⇒ B→A: conf 1/2 = 0.5.
	s, err := FromTypes(2, []dataset.Item{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineMinimal(s, MinimalOptions{MaxWidth: 2, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := res.Rules(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %v, want 2", rules)
	}
	if rules[0].Confidence != 1.0 || rules[0].Consequent.Key() != (SerialEpisode{0, 1}).Key() {
		t.Errorf("best rule = %v", rules[0])
	}
	if math.Abs(rules[1].Confidence-0.5) > 1e-9 {
		t.Errorf("second rule = %v", rules[1])
	}
	if !strings.Contains(rules[0].String(), "⇒") {
		t.Errorf("String = %q", rules[0].String())
	}
	// High threshold filters the weaker rule.
	strict, err := res.Rules(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) != 1 {
		t.Errorf("strict rules = %v, want 1", strict)
	}
}

func TestEpisodeRulesValidation(t *testing.T) {
	res := &MinimalResult{}
	if _, err := res.Rules(-0.1); err == nil {
		t.Error("negative minConf accepted")
	}
	if _, err := res.Rules(1.1); err == nil {
		t.Error("minConf > 1 accepted")
	}
}

func TestEpisodeRulesConfidenceConsistent(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numTypes := 2 + r.Intn(3)
		n := 10 + r.Intn(40)
		types := make([]dataset.Item, n)
		for i := range types {
			types[i] = dataset.Item(r.Intn(numTypes))
		}
		s, err := FromTypes(numTypes, types)
		if err != nil {
			return false
		}
		res, err := MineMinimal(s, MinimalOptions{MaxWidth: 3, MinCount: 1, MaxLen: 3})
		if err != nil {
			return false
		}
		minConf := r.Float64()
		rules, err := res.Rules(minConf)
		if err != nil {
			return false
		}
		for _, rule := range rules {
			supA, okA := res.Support(rule.Antecedent)
			supB, okB := res.Support(rule.Consequent)
			if !okA || !okB || supB != rule.Support {
				return false
			}
			conf := float64(supB) / float64(supA)
			if math.Abs(conf-rule.Confidence) > 1e-9 || conf < minConf {
				return false
			}
			// Antecedent is a proper prefix.
			if len(rule.Antecedent) >= len(rule.Consequent) {
				return false
			}
			for i, tp := range rule.Antecedent {
				if rule.Consequent[i] != tp {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
