package episodes

import (
	"fmt"
	"sort"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
)

// MINEPI-style mining (Mannila, Toivonen & Verkamo, DMKD 1997): instead
// of counting sliding windows, count the *minimal occurrences* of each
// serial episode — intervals [s, e] in which the episode occurs but no
// proper sub-interval does — subject to a maximum width. Minimal
// occurrences compose by interval joins, so each level is computed from
// the previous one without rescanning the sequence.
//
// The OSSM still applies: every minimal occurrence of width ≤ W starts
// at a distinct time s and is contained in the window [s, s+W), so the
// number of qualifying minimal occurrences is bounded by the episode's
// type-set support in the width-W window dataset — exactly the bound
// equation (1) provides.

// Interval is a closed time interval [Start, End].
type Interval struct {
	Start, End int
}

// Width returns the interval's width in ticks (inclusive).
func (iv Interval) Width() int { return iv.End - iv.Start + 1 }

// MinimalOptions configures MineMinimal.
type MinimalOptions struct {
	// MaxWidth is the maximum minimal-occurrence width W (required).
	MaxWidth int
	// MinCount is the minimum number of qualifying minimal occurrences
	// (required, ≥ 1).
	MinCount int64
	// MaxLen bounds episode length (0 = unlimited).
	MaxLen int
	// Segmentation, if non-nil, builds an OSSM over the width-W window
	// dataset and prunes candidate episodes with it.
	Segmentation *core.Options
	// Pages is the page count for the OSSM (default 32).
	Pages int
}

// CountedMinimal is a frequent serial episode with its minimal
// occurrences.
type CountedMinimal struct {
	Episode     SerialEpisode
	Occurrences []Interval // minimal occurrences of width ≤ MaxWidth, by start time
}

// Count returns the number of qualifying minimal occurrences.
func (c CountedMinimal) Count() int64 { return int64(len(c.Occurrences)) }

// MinimalResult is the output of MineMinimal.
type MinimalResult struct {
	MinCount int64
	Levels   [][]CountedMinimal
	Checked  int64 // candidates tested against the OSSM bound
	Pruned   int64 // candidates rejected by it
}

// NumFrequent returns the total number of frequent episodes.
func (r *MinimalResult) NumFrequent() int {
	n := 0
	for _, l := range r.Levels {
		n += len(l)
	}
	return n
}

// Support looks up an episode's minimal-occurrence count.
func (r *MinimalResult) Support(e SerialEpisode) (int64, bool) {
	if len(e) == 0 || len(e) > len(r.Levels) {
		return 0, false
	}
	for _, c := range r.Levels[len(e)-1] {
		if c.Episode.Key() == e.Key() {
			return c.Count(), true
		}
	}
	return 0, false
}

// MineMinimal discovers all serial episodes with at least MinCount
// minimal occurrences of width at most MaxWidth.
func MineMinimal(s *Sequence, opts MinimalOptions) (*MinimalResult, error) {
	if opts.MaxWidth <= 0 {
		return nil, fmt.Errorf("episodes: MaxWidth must be positive, got %d", opts.MaxWidth)
	}
	if opts.MinCount < 1 {
		return nil, fmt.Errorf("episodes: MinCount must be ≥ 1, got %d", opts.MinCount)
	}
	res := &MinimalResult{MinCount: opts.MinCount}

	var pruner core.Filter
	if opts.Segmentation != nil {
		wins, err := s.Windows(opts.MaxWidth)
		if err != nil {
			return nil, err
		}
		if wins.NumTx() > 0 {
			pages := opts.Pages
			if pages == 0 {
				pages = 32
			}
			if pages > wins.NumTx() {
				pages = wins.NumTx()
			}
			segRes, err := core.Segment(dataset.PageCounts(wins, dataset.PaginateN(wins, pages)), *opts.Segmentation)
			if err != nil {
				return nil, err
			}
			pruner = &core.Pruner{Map: segRes.Map, MinCount: opts.MinCount}
		}
	}

	// Level 1: each occurrence of a type is a (trivially minimal)
	// occurrence of width 1.
	occTimes := make(map[dataset.Item][]int)
	for _, ev := range s.Events {
		occTimes[ev.Type] = append(occTimes[ev.Type], ev.Time)
	}
	var level []CountedMinimal
	var freqTypes []dataset.Item
	for tp, times := range occTimes {
		if int64(len(times)) < opts.MinCount {
			continue
		}
		ivs := make([]Interval, len(times))
		for i, t := range times {
			ivs[i] = Interval{Start: t, End: t}
		}
		level = append(level, CountedMinimal{Episode: SerialEpisode{tp}, Occurrences: ivs})
		freqTypes = append(freqTypes, tp)
	}
	sort.Slice(level, func(i, j int) bool { return level[i].Episode[0] < level[j].Episode[0] })
	sort.Slice(freqTypes, func(i, j int) bool { return freqTypes[i] < freqTypes[j] })
	res.Levels = append(res.Levels, level)

	for k := 2; len(level) > 0 && (opts.MaxLen == 0 || k <= opts.MaxLen); k++ {
		prevKeys := make(map[string]bool, len(level))
		for _, c := range level {
			prevKeys[c.Episode.Key()] = true
		}
		var next []CountedMinimal
		for _, c := range level {
			for _, e := range freqTypes {
				cand := append(append(SerialEpisode{}, c.Episode...), e)
				if !prevKeys[SerialEpisode(cand[1:]).Key()] {
					continue
				}
				if pruner != nil {
					res.Checked++
					if !pruner.Allow(cand.TypeSet()) {
						res.Pruned++
						continue
					}
				}
				mo := joinMinimal(c.Occurrences, occTimes[e], opts.MaxWidth)
				if int64(len(mo)) >= opts.MinCount {
					next = append(next, CountedMinimal{Episode: cand, Occurrences: mo})
				}
			}
		}
		if len(next) == 0 {
			break
		}
		res.Levels = append(res.Levels, next)
		level = next
	}
	return res, nil
}

// joinMinimal extends each minimal occurrence of the prefix with the
// earliest later occurrence of the appended type, then keeps the
// minimal, width-bounded intervals. Prefix occurrences arrive sorted by
// start (and, being minimal, by end); times is sorted ascending.
func joinMinimal(prefix []Interval, times []int, maxWidth int) []Interval {
	var cands []Interval
	for _, iv := range prefix {
		// Earliest occurrence of the new type strictly after the prefix
		// ends.
		idx := sort.SearchInts(times, iv.End+1)
		if idx == len(times) {
			continue
		}
		end := times[idx]
		if end-iv.Start+1 > maxWidth {
			continue
		}
		cands = append(cands, Interval{Start: iv.Start, End: end})
	}
	// Minimality: starts strictly increase along cands; an interval is
	// non-minimal iff a later candidate ends no later (it nests inside).
	var out []Interval
	for i, iv := range cands {
		if i+1 < len(cands) && cands[i+1].End <= iv.End {
			continue
		}
		out = append(out, iv)
	}
	return out
}
