// Package episodes implements WINEPI-style frequent-episode discovery
// over event sequences (Mannila, Toivonen & Verkamo, DMKD 1997), one of
// the pattern classes the paper's introduction lists as benefiting from
// the OSSM. A transaction here is the set of event types visible in a
// sliding time window; the frequency of a parallel episode (a set of
// event types) is the number of windows containing all of them — an
// instance of the abstract monotone-frequency problem, so the OSSM
// machinery applies unchanged.
package episodes

import (
	"fmt"

	"github.com/ossm-mining/ossm/internal/apriori"
	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// Event is one timestamped occurrence of an event type. Timestamps are
// integral ticks and must be non-decreasing within a sequence.
type Event struct {
	Time int
	Type dataset.Item
}

// Sequence is an ordered event log over a domain of event types.
type Sequence struct {
	Events   []Event
	NumTypes int
}

// NewSequence validates and wraps an event log.
func NewSequence(numTypes int, events []Event) (*Sequence, error) {
	if numTypes <= 0 {
		return nil, fmt.Errorf("episodes: NumTypes must be positive, got %d", numTypes)
	}
	for i, e := range events {
		if int(e.Type) >= numTypes {
			return nil, fmt.Errorf("episodes: event %d type %d out of range (%d types)", i, e.Type, numTypes)
		}
		if i > 0 && e.Time < events[i-1].Time {
			return nil, fmt.Errorf("episodes: event %d time %d before predecessor %d", i, e.Time, events[i-1].Time)
		}
	}
	return &Sequence{Events: events, NumTypes: numTypes}, nil
}

// FromTypes builds a Sequence with unit-spaced timestamps from a plain
// list of event types.
func FromTypes(numTypes int, types []dataset.Item) (*Sequence, error) {
	events := make([]Event, len(types))
	for i, tp := range types {
		events[i] = Event{Time: i, Type: tp}
	}
	return NewSequence(numTypes, events)
}

// Windows converts the sequence into the window dataset: one transaction
// per window position, holding the distinct event types in [t, t+width).
// Following WINEPI, a window is generated for every start time from
// first.Time − width + 1 through last.Time, so every event appears in
// exactly width windows.
func (s *Sequence) Windows(width int) (*dataset.Dataset, error) {
	if width <= 0 {
		return nil, fmt.Errorf("episodes: window width must be positive, got %d", width)
	}
	b := dataset.NewBuilder(s.NumTypes)
	if len(s.Events) == 0 {
		return b.Build(), nil
	}
	first := s.Events[0].Time - width + 1
	last := s.Events[len(s.Events)-1].Time
	lo := 0
	var inWin []dataset.Item
	for start := first; start <= last; start++ {
		end := start + width // window is [start, end)
		for lo < len(s.Events) && s.Events[lo].Time < start {
			lo++
		}
		inWin = inWin[:0]
		for i := lo; i < len(s.Events) && s.Events[i].Time < end; i++ {
			inWin = append(inWin, s.Events[i].Type)
		}
		if err := b.Append(inWin); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Options configures Mine.
type Options struct {
	// Width is the sliding-window width in ticks (required).
	Width int
	// MinFrequency is the minimum fraction of windows an episode must
	// occur in, the paper's min_fr (required, in (0, 1]).
	MinFrequency float64
	// Segmentation, if non-nil, builds an OSSM over the window dataset
	// and prunes candidate episodes with it.
	Segmentation *core.Options
	// Pages is the page count used when building the OSSM (default 32,
	// clamped to the window count).
	Pages int
	// MaxLen bounds episode size (0 = unlimited).
	MaxLen int
	// Instrument, when non-nil, collects engine-wide telemetry for the
	// inner Apriori run over the window dataset (per-pass candidate
	// accounting, windows scanned); the frozen report lands on the result's
	// Stats.Telemetry as for any registered miner.
	Instrument *mining.Instrumentation
}

// Result carries the frequent parallel episodes (as itemsets of event
// types over the window dataset) plus the OSSM pruning counters.
type Result struct {
	*mining.Result
	Windows int   // number of windows examined
	Checked int64 // candidates tested against the OSSM bound
	Pruned  int64 // candidates rejected by it
}

// Mine discovers all frequent parallel episodes of s.
func Mine(s *Sequence, opts Options) (*Result, error) {
	if opts.MinFrequency <= 0 || opts.MinFrequency > 1 {
		return nil, fmt.Errorf("episodes: MinFrequency must be in (0,1], got %g", opts.MinFrequency)
	}
	wins, err := s.Windows(opts.Width)
	if err != nil {
		return nil, err
	}
	if wins.NumTx() == 0 {
		return &Result{Result: &mining.Result{MinCount: 1}}, nil
	}
	minCount := mining.MinCountFor(wins, opts.MinFrequency)

	var pruner *core.Pruner
	if opts.Segmentation != nil {
		pages := opts.Pages
		if pages == 0 {
			pages = 32
		}
		if pages > wins.NumTx() {
			pages = wins.NumTx()
		}
		segRows := dataset.PageCounts(wins, dataset.PaginateN(wins, pages))
		segRes, err := core.Segment(segRows, *opts.Segmentation)
		if err != nil {
			return nil, err
		}
		pruner = &core.Pruner{Map: segRes.Map, MinCount: minCount}
	}
	engineOpts := mining.Options{Pruner: pruner, MaxLen: opts.MaxLen, Instrument: opts.Instrument}
	res, err := apriori.Mine(wins, minCount, apriori.Options{Options: engineOpts})
	if err != nil {
		return nil, err
	}
	engineOpts.FinishRun(res)
	out := &Result{Result: res, Windows: wins.NumTx()}
	if pruner != nil {
		out.Checked, out.Pruned = pruner.Checked, pruner.Pruned
	}
	return out, nil
}
