package episodes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestNewSequenceValidation(t *testing.T) {
	if _, err := NewSequence(0, nil); err == nil {
		t.Error("NumTypes 0 accepted")
	}
	if _, err := NewSequence(2, []Event{{Time: 0, Type: 5}}); err == nil {
		t.Error("out-of-range type accepted")
	}
	if _, err := NewSequence(2, []Event{{Time: 5, Type: 0}, {Time: 3, Type: 1}}); err == nil {
		t.Error("decreasing timestamps accepted")
	}
}

func TestWindowsBasic(t *testing.T) {
	// Types a=0 b=1 at times 0 and 1, width 2.
	s, err := FromTypes(2, []dataset.Item{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Windows(2)
	if err != nil {
		t.Fatal(err)
	}
	// Starts −1, 0, 1: windows {a}, {a,b}, {b}.
	if w.NumTx() != 3 {
		t.Fatalf("NumTx = %d, want 3", w.NumTx())
	}
	if !w.Tx(0).Equal(dataset.NewItemset(0)) ||
		!w.Tx(1).Equal(dataset.NewItemset(0, 1)) ||
		!w.Tx(2).Equal(dataset.NewItemset(1)) {
		t.Errorf("windows = %v %v %v", w.Tx(0), w.Tx(1), w.Tx(2))
	}
}

func TestEveryEventAppearsInWidthWindows(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numTypes := 2 + r.Intn(5)
		n := 1 + r.Intn(30)
		types := make([]dataset.Item, n)
		for i := range types {
			types[i] = dataset.Item(r.Intn(numTypes))
		}
		s, err := FromTypes(numTypes, types)
		if err != nil {
			return false
		}
		width := 1 + r.Intn(6)
		w, err := s.Windows(width)
		if err != nil {
			return false
		}
		// With unit-spaced distinct timestamps, each singleton's window
		// support is width × (occurrences)… only when occurrences are
		// spaced ≥ width apart; in general it is the number of distinct
		// window starts covering any occurrence. Check the exact
		// definition instead: support of {type} equals the number of
		// start positions s.t. some event of that type lies in the
		// window.
		counts := w.ItemCounts(0, w.NumTx())
		for tp := 0; tp < numTypes; tp++ {
			want := 0
			first := s.Events[0].Time - width + 1
			last := s.Events[len(s.Events)-1].Time
			for start := first; start <= last; start++ {
				for _, e := range s.Events {
					if e.Type == dataset.Item(tp) && e.Time >= start && e.Time < start+width {
						want++
						break
					}
				}
			}
			if int(counts[tp]) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWindowsValidation(t *testing.T) {
	s, _ := FromTypes(2, []dataset.Item{0})
	if _, err := s.Windows(0); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestMineFindsCoOccurringEpisode(t *testing.T) {
	// Types 0 and 1 always fire together; type 2 fires alone, far away.
	var types []dataset.Item
	for i := 0; i < 50; i++ {
		types = append(types, 0, 1, 2)
	}
	s, err := FromTypes(3, types)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(s, Options{Width: 2, MinFrequency: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Support(dataset.NewItemset(0, 1)); !ok {
		t.Error("episode {0,1} not found despite perfect co-occurrence")
	}
}

func TestMineWithOSSMIsLossless(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numTypes := 2 + r.Intn(4)
		n := 10 + r.Intn(60)
		types := make([]dataset.Item, n)
		for i := range types {
			types[i] = dataset.Item(r.Intn(numTypes))
		}
		s, err := FromTypes(numTypes, types)
		if err != nil {
			return false
		}
		width := 1 + r.Intn(4)
		plain, err := Mine(s, Options{Width: width, MinFrequency: 0.1})
		if err != nil {
			return false
		}
		withOSSM, err := Mine(s, Options{
			Width: width, MinFrequency: 0.1,
			Segmentation: &core.Options{
				Algorithm:      core.AlgGreedy,
				TargetSegments: 4,
				Seed:           seed,
			},
			Pages: 8,
		})
		if err != nil {
			return false
		}
		return plain.Result.Equal(withOSSM.Result)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMineOSSMPrunesDriftingEpisodes(t *testing.T) {
	// First half of the log only types {0,1}, second half only {2,3}:
	// cross-phase episodes are prunable from the segment supports.
	var types []dataset.Item
	for i := 0; i < 200; i++ {
		types = append(types, dataset.Item(i%2))
	}
	for i := 0; i < 200; i++ {
		types = append(types, dataset.Item(2+i%2))
	}
	s, err := FromTypes(4, types)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(s, Options{
		Width: 4, MinFrequency: 0.3,
		Segmentation: &core.Options{Algorithm: core.AlgGreedy, TargetSegments: 4},
		Pages:        16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned == 0 {
		t.Error("OSSM pruned no episode candidates on a phase-split log")
	}
}

func TestMineValidation(t *testing.T) {
	s, _ := FromTypes(2, []dataset.Item{0, 1})
	if _, err := Mine(s, Options{Width: 2, MinFrequency: 0}); err == nil {
		t.Error("MinFrequency 0 accepted")
	}
	if _, err := Mine(s, Options{Width: 2, MinFrequency: 1.5}); err == nil {
		t.Error("MinFrequency > 1 accepted")
	}
	if _, err := Mine(s, Options{Width: 0, MinFrequency: 0.5}); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestMineEmptySequence(t *testing.T) {
	s, err := NewSequence(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(s, Options{Width: 3, MinFrequency: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 0 || res.Windows != 0 {
		t.Errorf("empty sequence mined %d episodes over %d windows", res.NumFrequent(), res.Windows)
	}
}

func TestTimestampGaps(t *testing.T) {
	// Events at times 0 and 10 with width 3 never share a window.
	s, err := NewSequence(2, []Event{{Time: 0, Type: 0}, {Time: 10, Type: 1}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Windows(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.NumTx(); i++ {
		if len(w.Tx(i)) == 2 {
			t.Fatal("distant events share a window")
		}
	}
	// Starts −2 … 10 → 13 windows.
	if w.NumTx() != 13 {
		t.Errorf("NumTx = %d, want 13", w.NumTx())
	}
}
