package episodes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestMineMinimalValidation(t *testing.T) {
	s, _ := FromTypes(2, []dataset.Item{0, 1})
	if _, err := MineMinimal(s, MinimalOptions{MaxWidth: 0, MinCount: 1}); err == nil {
		t.Error("MaxWidth 0 accepted")
	}
	if _, err := MineMinimal(s, MinimalOptions{MaxWidth: 2, MinCount: 0}); err == nil {
		t.Error("MinCount 0 accepted")
	}
}

func TestMineMinimalHandComputed(t *testing.T) {
	// Log: A B A B at times 0..3, W=2.
	// mo(A) = [0,0],[2,2]; mo(B) = [1,1],[3,3].
	// mo(A→B) = [0,1],[2,3] (both width 2).
	// mo(B→A) = [1,2].
	// mo(A→A), mo(B→B): width 3 > W → none.
	s, err := FromTypes(2, []dataset.Item{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineMinimal(s, MinimalOptions{MaxWidth: 2, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.Support(SerialEpisode{0, 1}); !ok || got != 2 {
		t.Errorf("mo-count(A→B) = %d,%v; want 2", got, ok)
	}
	if got, ok := res.Support(SerialEpisode{1, 0}); !ok || got != 1 {
		t.Errorf("mo-count(B→A) = %d,%v; want 1", got, ok)
	}
	if _, ok := res.Support(SerialEpisode{0, 0}); ok {
		t.Error("A→A should exceed the width bound")
	}
	// Check the intervals themselves.
	for _, c := range res.Levels[1] {
		if c.Episode.Key() == (SerialEpisode{0, 1}).Key() {
			want := []Interval{{0, 1}, {2, 3}}
			if len(c.Occurrences) != 2 || c.Occurrences[0] != want[0] || c.Occurrences[1] != want[1] {
				t.Errorf("mo(A→B) = %v, want %v", c.Occurrences, want)
			}
		}
	}
}

func TestMinimalityFilter(t *testing.T) {
	// Log: A A B. Candidate occurrences of A→B: [0,2] and [1,2]; [0,2]
	// contains [1,2] → only [1,2] is minimal.
	s, err := FromTypes(2, []dataset.Item{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineMinimal(s, MinimalOptions{MaxWidth: 3, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Levels[1] {
		if c.Episode.Key() == (SerialEpisode{0, 1}).Key() {
			if len(c.Occurrences) != 1 || c.Occurrences[0] != (Interval{1, 2}) {
				t.Errorf("mo(A→B) = %v, want [{1 2}]", c.Occurrences)
			}
		}
	}
}

// bruteMinimal enumerates minimal occurrences by checking every interval.
func bruteMinimal(s *Sequence, ep SerialEpisode, maxWidth int) []Interval {
	if len(s.Events) == 0 {
		return nil
	}
	lo := s.Events[0].Time
	hi := s.Events[len(s.Events)-1].Time
	occursIn := func(a, b int) bool {
		j := 0
		for _, ev := range s.Events {
			if ev.Time < a || ev.Time > b {
				continue
			}
			if ev.Type == ep[j] {
				j++
				if j == len(ep) {
					return true
				}
			}
		}
		return false
	}
	var out []Interval
	for a := lo; a <= hi; a++ {
		for b := a; b <= hi && b-a+1 <= maxWidth; b++ {
			if !occursIn(a, b) {
				continue
			}
			// Minimal iff neither [a+1,b] nor [a,b-1] contains it.
			if occursIn(a+1, b) || (b > a && occursIn(a, b-1)) {
				continue
			}
			out = append(out, Interval{a, b})
		}
	}
	return out
}

func TestMineMinimalMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numTypes := 2 + r.Intn(3)
		n := 8 + r.Intn(30)
		types := make([]dataset.Item, n)
		for i := range types {
			types[i] = dataset.Item(r.Intn(numTypes))
		}
		s, err := FromTypes(numTypes, types)
		if err != nil {
			return false
		}
		maxWidth := 2 + r.Intn(4)
		res, err := MineMinimal(s, MinimalOptions{MaxWidth: maxWidth, MinCount: 1, MaxLen: 3})
		if err != nil {
			return false
		}
		for _, level := range res.Levels {
			for _, c := range level {
				want := bruteMinimal(s, c.Episode, maxWidth)
				if len(want) != len(c.Occurrences) {
					return false
				}
				for i := range want {
					if want[i] != c.Occurrences[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMineMinimalAntiMonotone(t *testing.T) {
	// Prefix and drop-first subepisodes have at least as many qualifying
	// minimal occurrences.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numTypes := 2 + r.Intn(3)
		n := 10 + r.Intn(40)
		types := make([]dataset.Item, n)
		for i := range types {
			types[i] = dataset.Item(r.Intn(numTypes))
		}
		s, err := FromTypes(numTypes, types)
		if err != nil {
			return false
		}
		res, err := MineMinimal(s, MinimalOptions{MaxWidth: 2 + r.Intn(3), MinCount: 1, MaxLen: 4})
		if err != nil {
			return false
		}
		for k := 1; k < len(res.Levels); k++ {
			for _, c := range res.Levels[k] {
				for _, sub := range []SerialEpisode{c.Episode[1:], c.Episode[:len(c.Episode)-1]} {
					supSub, ok := res.Support(sub)
					if !ok || supSub < c.Count() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMineMinimalWithOSSMIsLossless(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numTypes := 2 + r.Intn(3)
		n := 20 + r.Intn(60)
		types := make([]dataset.Item, n)
		for i := range types {
			types[i] = dataset.Item(r.Intn(numTypes))
		}
		s, err := FromTypes(numTypes, types)
		if err != nil {
			return false
		}
		opts := MinimalOptions{MaxWidth: 3, MinCount: 2, MaxLen: 3}
		plain, err := MineMinimal(s, opts)
		if err != nil {
			return false
		}
		opts.Segmentation = &core.Options{Algorithm: core.AlgGreedy, TargetSegments: 4, Seed: seed}
		opts.Pages = 8
		pruned, err := MineMinimal(s, opts)
		if err != nil {
			return false
		}
		if plain.NumFrequent() != pruned.NumFrequent() {
			return false
		}
		for _, level := range plain.Levels {
			for _, c := range level {
				got, ok := pruned.Support(c.Episode)
				if !ok || got != c.Count() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMineMinimalEmpty(t *testing.T) {
	s, err := NewSequence(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineMinimal(s, MinimalOptions{MaxWidth: 3, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 0 {
		t.Errorf("NumFrequent = %d on empty log", res.NumFrequent())
	}
}

func TestIntervalWidth(t *testing.T) {
	if (Interval{3, 5}).Width() != 3 {
		t.Error("Width wrong")
	}
	if (Interval{4, 4}).Width() != 1 {
		t.Error("point interval width wrong")
	}
}
