package episodes

import (
	"fmt"
	"sort"
)

// Episode rules, the downstream product of MINEPI: "if the prefix α
// occurs, the full episode β follows within the width bound", with
// confidence mo-count(β) / mo-count(α). Only prefix antecedents are
// generated (the classical serial-episode rule form).

// EpisodeRule is a serial-episode rule α ⇒ β (α a proper prefix of β).
type EpisodeRule struct {
	Antecedent SerialEpisode
	Consequent SerialEpisode // the full episode
	Support    int64         // mo-count of the full episode
	Confidence float64
}

// String renders the rule as "a → b ⇒ a → b → c (...)".
func (r EpisodeRule) String() string {
	return fmt.Sprintf("%s ⇒ %s (sup=%d conf=%.3f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence)
}

// Rules derives every prefix rule with confidence ≥ minConf from a
// MINEPI result, sorted by descending confidence then support.
func (r *MinimalResult) Rules(minConf float64) ([]EpisodeRule, error) {
	if minConf < 0 || minConf > 1 {
		return nil, fmt.Errorf("episodes: minConf must be in [0,1], got %g", minConf)
	}
	var out []EpisodeRule
	for k := 1; k < len(r.Levels); k++ {
		for _, c := range r.Levels[k] {
			for plen := 1; plen < len(c.Episode); plen++ {
				ante := c.Episode[:plen]
				supA, ok := r.Support(ante)
				if !ok || supA == 0 {
					// The antecedent must be frequent (anti-monotonicity),
					// but guard anyway.
					continue
				}
				conf := float64(c.Count()) / float64(supA)
				if conf < minConf {
					continue
				}
				out = append(out, EpisodeRule{
					Antecedent: ante,
					Consequent: c.Episode,
					Support:    c.Count(),
					Confidence: conf,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Consequent.Key() < out[j].Consequent.Key()
	})
	return out, nil
}
