package episodes

import (
	"fmt"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// SerialEpisode is an ordered tuple of event types; it occurs in a
// window when events of those types appear in that order (as a
// subsequence of the window's events). Repeated types are legal
// (A → A is the classic "alarm repeats within w ticks" pattern).
type SerialEpisode []dataset.Item

// Key returns a canonical map key (order-sensitive, unlike Itemset.Key).
func (e SerialEpisode) Key() string {
	b := make([]byte, 0, 4*len(e))
	for _, it := range e {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

// String renders the episode as "a → b → c".
func (e SerialEpisode) String() string {
	s := ""
	for i, it := range e {
		if i > 0 {
			s += " → "
		}
		s += fmt.Sprintf("%d", it)
	}
	return s
}

// TypeSet returns the distinct event types of the episode — the itemset
// the OSSM bound applies to (every window containing the episode
// contains each of its types, so the bound stays sound).
func (e SerialEpisode) TypeSet() dataset.Itemset {
	return dataset.NewItemset(e...)
}

// CountedSerial is a frequent serial episode with its window count.
type CountedSerial struct {
	Episode SerialEpisode
	Count   int64
}

// SerialResult is the output of MineSerial.
type SerialResult struct {
	Windows  int
	MinCount int64
	Levels   [][]CountedSerial // Levels[k-1] holds the frequent k-episodes
	Checked  int64             // candidates tested against the OSSM bound
	Pruned   int64             // candidates rejected by it
}

// NumFrequent returns the total number of frequent serial episodes.
func (r *SerialResult) NumFrequent() int {
	n := 0
	for _, l := range r.Levels {
		n += len(l)
	}
	return n
}

// Support looks up the window count of an episode.
func (r *SerialResult) Support(e SerialEpisode) (int64, bool) {
	if len(e) == 0 || len(e) > len(r.Levels) {
		return 0, false
	}
	for _, c := range r.Levels[len(e)-1] {
		if c.Episode.Key() == e.Key() {
			return c.Count, true
		}
	}
	return 0, false
}

// MineSerial discovers all frequent serial episodes of s with the
// level-wise WINEPI strategy: frequent k-episodes are extended by
// frequent types, pruned by their (k-1)-subepisodes, optionally pruned
// by an OSSM over the window dataset, and counted against the sliding
// windows.
func MineSerial(s *Sequence, opts Options) (*SerialResult, error) {
	if opts.MinFrequency <= 0 || opts.MinFrequency > 1 {
		return nil, fmt.Errorf("episodes: MinFrequency must be in (0,1], got %g", opts.MinFrequency)
	}
	if opts.Width <= 0 {
		return nil, fmt.Errorf("episodes: window width must be positive, got %d", opts.Width)
	}
	wins, err := s.Windows(opts.Width)
	if err != nil {
		return nil, err
	}
	res := &SerialResult{Windows: wins.NumTx()}
	if wins.NumTx() == 0 {
		res.MinCount = 1
		return res, nil
	}
	minCount := mining.MinCountFor(wins, opts.MinFrequency)
	res.MinCount = minCount

	var pruner core.Filter
	if opts.Segmentation != nil {
		pages := opts.Pages
		if pages == 0 {
			pages = 32
		}
		if pages > wins.NumTx() {
			pages = wins.NumTx()
		}
		segRes, err := core.Segment(dataset.PageCounts(wins, dataset.PaginateN(wins, pages)), *opts.Segmentation)
		if err != nil {
			return nil, err
		}
		pruner = &core.Pruner{Map: segRes.Map, MinCount: minCount}
	}

	// Level 1: window frequency of each type is its singleton support in
	// the window dataset.
	counts := wins.ItemCounts(0, wins.NumTx())
	var level []CountedSerial
	var freqTypes []dataset.Item
	for it, c := range counts {
		if int64(c) >= minCount {
			level = append(level, CountedSerial{Episode: SerialEpisode{dataset.Item(it)}, Count: int64(c)})
			freqTypes = append(freqTypes, dataset.Item(it))
		}
	}
	res.Levels = append(res.Levels, level)

	for k := 2; len(level) > 0 && (opts.MaxLen == 0 || k <= opts.MaxLen); k++ {
		prevKeys := make(map[string]bool, len(level))
		for _, c := range level {
			prevKeys[c.Episode.Key()] = true
		}
		// Generate candidates: extend each frequent (k-1)-episode by each
		// frequent type; prune unless the drop-first subepisode is also
		// frequent.
		var cands []SerialEpisode
		for _, c := range level {
			for _, e := range freqTypes {
				cand := append(append(SerialEpisode{}, c.Episode...), e)
				if !prevKeys[SerialEpisode(cand[1:]).Key()] {
					continue
				}
				if pruner != nil {
					res.Checked++
					if !pruner.Allow(cand.TypeSet()) {
						res.Pruned++
						continue
					}
				}
				cands = append(cands, cand)
			}
		}
		if len(cands) == 0 {
			break
		}
		counts := countSerial(s, opts.Width, cands)
		var next []CountedSerial
		for i, cand := range cands {
			if counts[i] >= minCount {
				next = append(next, CountedSerial{Episode: cand, Count: counts[i]})
			}
		}
		if len(next) == 0 {
			break
		}
		res.Levels = append(res.Levels, next)
		level = next
	}
	return res, nil
}

// countSerial counts, for each candidate, the number of windows in which
// it occurs as a time-ordered subsequence.
func countSerial(s *Sequence, width int, cands []SerialEpisode) []int64 {
	counts := make([]int64, len(cands))
	if len(s.Events) == 0 {
		return counts
	}
	first := s.Events[0].Time - width + 1
	last := s.Events[len(s.Events)-1].Time
	lo := 0
	for start := first; start <= last; start++ {
		end := start + width
		for lo < len(s.Events) && s.Events[lo].Time < start {
			lo++
		}
		hi := lo
		for hi < len(s.Events) && s.Events[hi].Time < end {
			hi++
		}
		if hi == lo {
			continue
		}
		window := s.Events[lo:hi]
		for i, cand := range cands {
			if occursSerial(cand, window) {
				counts[i]++
			}
		}
	}
	return counts
}

// occursSerial reports whether ep is a subsequence of the window's
// events in time order. Events sharing a timestamp are matched in log
// order, the usual WINEPI convention for totally-ordered logs.
func occursSerial(ep SerialEpisode, window []Event) bool {
	j := 0
	for _, ev := range window {
		if ev.Type == ep[j] {
			j++
			if j == len(ep) {
				return true
			}
		}
	}
	return false
}
