package episodes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestSerialEpisodeBasics(t *testing.T) {
	e := SerialEpisode{3, 1, 3}
	if e.String() != "3 → 1 → 3" {
		t.Errorf("String = %q", e.String())
	}
	if !e.TypeSet().Equal(dataset.NewItemset(1, 3)) {
		t.Errorf("TypeSet = %v, want {1,3}", e.TypeSet())
	}
	// Key is order-sensitive.
	if (SerialEpisode{1, 2}).Key() == (SerialEpisode{2, 1}).Key() {
		t.Error("Key not order-sensitive")
	}
}

func TestOccursSerial(t *testing.T) {
	win := []Event{{0, 1}, {1, 2}, {2, 1}, {3, 3}}
	cases := []struct {
		ep   SerialEpisode
		want bool
	}{
		{SerialEpisode{1}, true},
		{SerialEpisode{1, 2}, true},
		{SerialEpisode{2, 1}, true}, // 2 at t1, 1 at t2
		{SerialEpisode{1, 1}, true}, // t0 and t2
		{SerialEpisode{3, 1}, false},
		{SerialEpisode{1, 2, 1, 3}, true},
		{SerialEpisode{2, 2}, false},
	}
	for _, c := range cases {
		if got := occursSerial(c.ep, win); got != c.want {
			t.Errorf("occursSerial(%v) = %v, want %v", c.ep, got, c.want)
		}
	}
}

func TestMineSerialOrderSensitivity(t *testing.T) {
	// The log is strictly "0 then 1" in every burst: 0,1 pairs with a gap
	// before the next burst. 0→1 must be frequent; 1→0 must not (bursts
	// are separated by more than the window).
	var events []Event
	tick := 0
	for i := 0; i < 60; i++ {
		events = append(events, Event{Time: tick, Type: 0}, Event{Time: tick + 1, Type: 1})
		tick += 10
	}
	s, err := NewSequence(2, events)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineSerial(s, Options{Width: 3, MinFrequency: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Support(SerialEpisode{0, 1}); !ok {
		t.Error("0 → 1 not frequent despite occurring in every burst")
	}
	if _, ok := res.Support(SerialEpisode{1, 0}); ok {
		t.Error("1 → 0 reported frequent despite never occurring")
	}
}

func TestMineSerialRepeatedType(t *testing.T) {
	// A repeats every tick → A→A frequent at width 2.
	var types []dataset.Item
	for i := 0; i < 50; i++ {
		types = append(types, 0)
	}
	s, err := FromTypes(1, types)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineSerial(s, Options{Width: 2, MinFrequency: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Support(SerialEpisode{0, 0}); !ok {
		t.Error("A → A not found in a constant stream")
	}
}

// bruteForceSerial counts an episode's windows directly.
func bruteForceSerial(s *Sequence, width int, ep SerialEpisode) int64 {
	if len(s.Events) == 0 {
		return 0
	}
	first := s.Events[0].Time - width + 1
	last := s.Events[len(s.Events)-1].Time
	var n int64
	for start := first; start <= last; start++ {
		var win []Event
		for _, ev := range s.Events {
			if ev.Time >= start && ev.Time < start+width {
				win = append(win, ev)
			}
		}
		if len(win) > 0 && occursSerial(ep, win) {
			n++
		}
	}
	return n
}

func TestMineSerialCountsMatchBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numTypes := 2 + r.Intn(3)
		n := 10 + r.Intn(40)
		types := make([]dataset.Item, n)
		for i := range types {
			types[i] = dataset.Item(r.Intn(numTypes))
		}
		s, err := FromTypes(numTypes, types)
		if err != nil {
			return false
		}
		width := 1 + r.Intn(4)
		res, err := MineSerial(s, Options{Width: width, MinFrequency: 0.05, MaxLen: 3})
		if err != nil {
			return false
		}
		for _, level := range res.Levels {
			for _, c := range level {
				if c.Count != bruteForceSerial(s, width, c.Episode) {
					return false
				}
				if c.Count < res.MinCount {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMineSerialDownwardClosure(t *testing.T) {
	// Every prefix and suffix of a frequent serial episode is frequent.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numTypes := 2 + r.Intn(3)
		n := 10 + r.Intn(40)
		types := make([]dataset.Item, n)
		for i := range types {
			types[i] = dataset.Item(r.Intn(numTypes))
		}
		s, err := FromTypes(numTypes, types)
		if err != nil {
			return false
		}
		res, err := MineSerial(s, Options{Width: 1 + r.Intn(4), MinFrequency: 0.05, MaxLen: 4})
		if err != nil {
			return false
		}
		for k := 1; k < len(res.Levels); k++ {
			for _, c := range res.Levels[k] {
				if _, ok := res.Support(c.Episode[1:]); !ok {
					return false
				}
				if _, ok := res.Support(c.Episode[:len(c.Episode)-1]); !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMineSerialWithOSSMIsLossless(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numTypes := 2 + r.Intn(3)
		n := 20 + r.Intn(60)
		types := make([]dataset.Item, n)
		for i := range types {
			types[i] = dataset.Item(r.Intn(numTypes))
		}
		s, err := FromTypes(numTypes, types)
		if err != nil {
			return false
		}
		width := 1 + r.Intn(4)
		plain, err := MineSerial(s, Options{Width: width, MinFrequency: 0.1, MaxLen: 3})
		if err != nil {
			return false
		}
		pruned, err := MineSerial(s, Options{
			Width: width, MinFrequency: 0.1, MaxLen: 3,
			Segmentation: &core.Options{Algorithm: core.AlgGreedy, TargetSegments: 4, Seed: seed},
			Pages:        8,
		})
		if err != nil {
			return false
		}
		if plain.NumFrequent() != pruned.NumFrequent() {
			return false
		}
		for k, level := range plain.Levels {
			for _, c := range level {
				got, ok := pruned.Support(c.Episode)
				if !ok || got != c.Count {
					return false
				}
			}
			_ = k
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMineSerialValidation(t *testing.T) {
	s, _ := FromTypes(2, []dataset.Item{0, 1})
	if _, err := MineSerial(s, Options{Width: 0, MinFrequency: 0.5}); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := MineSerial(s, Options{Width: 2, MinFrequency: 0}); err == nil {
		t.Error("MinFrequency 0 accepted")
	}
}

func TestMineSerialEmpty(t *testing.T) {
	s, err := NewSequence(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineSerial(s, Options{Width: 2, MinFrequency: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 0 {
		t.Errorf("NumFrequent = %d on an empty log", res.NumFrequent())
	}
	if _, ok := res.Support(SerialEpisode{0}); ok {
		t.Error("Support found an episode in an empty result")
	}
	if _, ok := res.Support(SerialEpisode{}); ok {
		t.Error("empty episode reported supported")
	}
}
