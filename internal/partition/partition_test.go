package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/apriori"
	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

func randomDataset(r *rand.Rand) *dataset.Dataset {
	k := 2 + r.Intn(6)
	n := 2 + r.Intn(40)
	b := dataset.NewBuilder(k)
	for i := 0; i < n; i++ {
		sz := r.Intn(k + 1)
		tx := make([]dataset.Item, sz)
		for j := range tx {
			tx[j] = dataset.Item(r.Intn(k))
		}
		if err := b.Append(tx); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func TestPartitionMatchesApriori(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		np := 1 + r.Intn(minInt(d.NumTx(), 6))
		ap, err := apriori.Mine(d, minCount, apriori.Options{})
		if err != nil {
			return false
		}
		pt, err := Mine(d, minCount, Options{NumPartitions: np})
		if err != nil {
			return false
		}
		return ap.Equal(pt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPartitionWithGlobalOSSMIsLossless(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		np := 1 + r.Intn(minInt(d.NumTx(), 5))
		plain, err := Mine(d, minCount, Options{NumPartitions: np})
		if err != nil {
			return false
		}
		mPages := 1 + r.Intn(d.NumTx())
		pages := dataset.PaginateN(d, mPages)
		seg, err := core.Segment(dataset.PageCounts(d, pages), core.Options{
			Algorithm:      core.AlgGreedy,
			TargetSegments: 1 + r.Intn(mPages),
			Seed:           seed,
		})
		if err != nil {
			return false
		}
		pruner := &core.Pruner{Map: seg.Map, MinCount: minCount}
		withOSSM, err := Mine(d, minCount, Options{Options: mining.Options{Pruner: pruner}, NumPartitions: np})
		if err != nil {
			return false
		}
		return plain.Equal(withOSSM)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPartitionWithLocalOSSMIsLossless(t *testing.T) {
	// A per-partition OSSM prunes local candidates at the *local*
	// threshold; results must be unchanged.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		np := 1 + r.Intn(minInt(d.NumTx(), 4))
		plain, err := Mine(d, minCount, Options{NumPartitions: np})
		if err != nil {
			return false
		}
		localPruner := func(part, lo, hi int) core.Filter {
			n := hi - lo
			mPages := 1 + r.Intn(n)
			slice := d.Slice(lo, hi)
			pages := dataset.PaginateN(slice, mPages)
			seg, err := core.Segment(dataset.PageCounts(slice, pages), core.Options{
				Algorithm:      core.AlgRandom,
				TargetSegments: 1 + r.Intn(mPages),
				Seed:           int64(part),
			})
			if err != nil {
				panic(err)
			}
			return &core.Pruner{Map: seg.Map, MinCount: localMinCount(minCount, n, d.NumTx())}
		}
		withLocal, err := Mine(d, minCount, Options{NumPartitions: np, LocalPruner: localPruner})
		if err != nil {
			return false
		}
		return plain.Equal(withLocal)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGlobalOSSMPrunesLocallyFrequentGlobalCandidates(t *testing.T) {
	// Two disjoint halves: pairs within a half are locally frequent in
	// one partition but globally infrequent cross-half pairs never arise;
	// however half-pairs frequent in their partition may be globally
	// infrequent — the global OSSM should prune some before phase 2.
	b := dataset.NewBuilder(8)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 400; i++ {
		var tx []dataset.Item
		lo, hi := 0, 4
		if i >= 200 {
			lo, hi = 4, 8
		}
		for j := lo; j < hi; j++ {
			if r.Float64() < 0.6 {
				tx = append(tx, dataset.Item(j))
			}
		}
		if err := b.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	minCount := int64(150) // frequent within a half (≈120 of 200) is infrequent globally

	pages := dataset.PaginateN(d, 8)
	seg, err := core.Segment(dataset.PageCounts(d, pages), core.Options{
		Algorithm: core.AlgGreedy, TargetSegments: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pruner := &core.Pruner{Map: seg.Map, MinCount: minCount}
	res, err := Mine(d, minCount, Options{Options: mining.Options{Pruner: pruner}, NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if StatsOf(res).GlobalPruned == 0 {
		t.Errorf("global OSSM pruned nothing; candidates=%d", StatsOf(res).GlobalCandidates)
	}
	// And the result still matches Apriori.
	ap, err := apriori.Mine(d, minCount, apriori.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ap.Equal(res) {
		t.Error("pruned Partition result differs from Apriori")
	}
}

func TestLocalMinCount(t *testing.T) {
	cases := []struct {
		minCount int64
		partLen  int
		total    int
		want     int64
	}{
		{100, 50, 100, 50},
		{100, 33, 100, 33},
		{101, 33, 100, 34}, // ceil(33.33)
		{1, 10, 1000, 1},   // floor would be 0 → clamp to 1
		{5, 5, 5, 5},
	}
	for _, c := range cases {
		if got := localMinCount(c.minCount, c.partLen, c.total); got != c.want {
			t.Errorf("localMinCount(%d, %d, %d) = %d, want %d", c.minCount, c.partLen, c.total, got, c.want)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	d := dataset.MustFromTransactions(2, [][]dataset.Item{{0}, {1}})
	if _, err := Mine(d, 0, Options{}); err == nil {
		t.Error("minCount 0 accepted")
	}
	if _, err := Mine(d, 1, Options{NumPartitions: 3}); err == nil {
		t.Error("more partitions than transactions accepted")
	}
	if _, err := Mine(d, 1, Options{NumPartitions: -1}); err == nil {
		t.Error("negative partitions accepted")
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct{ a, b, want tidlist }{
		{tidlist{1, 3, 5}, tidlist{3, 5, 7}, tidlist{3, 5}},
		{tidlist{1, 2}, tidlist{3, 4}, nil},
		{nil, tidlist{1}, nil},
		{tidlist{2, 4, 6}, tidlist{2, 4, 6}, tidlist{2, 4, 6}},
	}
	for _, c := range cases {
		got := intersect(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestStatsSanity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := randomDataset(r)
	res, err := Mine(d, 2, Options{NumPartitions: minInt(3, d.NumTx())})
	if err != nil {
		t.Fatal(err)
	}
	if StatsOf(res).GlobalCandidates > StatsOf(res).LocalFrequent {
		t.Errorf("distinct global candidates (%d) exceed total local frequents (%d)",
			StatsOf(res).GlobalCandidates, StatsOf(res).LocalFrequent)
	}
	if res.NumFrequent() > StatsOf(res).GlobalCandidates {
		t.Errorf("more frequent itemsets (%d) than candidates (%d)",
			res.NumFrequent(), StatsOf(res).GlobalCandidates)
	}
}

func TestPartitionWithAutoLocalOSSM(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		np := 1 + r.Intn(minInt(d.NumTx(), 4))
		plain, err := Mine(d, minCount, Options{NumPartitions: np})
		if err != nil {
			return false
		}
		auto, err := Mine(d, minCount, Options{
			NumPartitions: np,
			LocalOSSM: &core.Options{
				Algorithm:      core.AlgGreedy,
				TargetSegments: 1 + r.Intn(4),
				Seed:           seed,
			},
		})
		if err != nil {
			return false
		}
		return plain.Equal(auto)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCrossPartitionOSSMPrunes(t *testing.T) {
	// Two disjoint halves again: half-local pairs are locally frequent
	// but globally infrequent; the stacked per-partition OSSMs prove it
	// without any second structure.
	b := dataset.NewBuilder(8)
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 400; i++ {
		var tx []dataset.Item
		lo, hi := 0, 4
		if i >= 200 {
			lo, hi = 4, 8
		}
		for j := lo; j < hi; j++ {
			if r.Float64() < 0.6 {
				tx = append(tx, dataset.Item(j))
			}
		}
		if err := b.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	minCount := int64(150)
	plain, err := Mine(d, minCount, Options{NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Mine(d, minCount, Options{
		NumPartitions: 2,
		LocalOSSM:     &core.Options{Algorithm: core.AlgGreedy, TargetSegments: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(auto) {
		t.Fatal("cross-partition pruning changed the result")
	}
	if StatsOf(auto).CrossPruned == 0 {
		t.Errorf("combined per-partition OSSMs pruned nothing (candidates=%d)",
			StatsOf(auto).GlobalCandidates)
	}
}

// TestPartitionParallelMatchesSerial checks Mine end to end with the
// Workers knob, then drives countGlobal with real goroutine pools
// (bypassing the NumCPU cap so the fan-out runs on any host): identical
// counts slot for slot. Under -race this also proves the candidates
// share no mutable state.
func TestPartitionParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	b := dataset.NewBuilder(20)
	for i := 0; i < 1000; i++ {
		var tx []dataset.Item
		for j := 0; j < 20; j++ {
			if r.Float64() < 0.3 {
				tx = append(tx, dataset.Item(j))
			}
		}
		if err := b.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	minCount := int64(60)
	serial, err := Mine(d, minCount, Options{NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(d, minCount, Options{Options: mining.Options{Workers: 4}, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Equal(par) {
		t.Fatal("Workers=4 result differs from serial")
	}

	// Below Mine: the phase-2 scan itself, with forced pools.
	tids := buildTidlists(d, 0, d.NumTx(), nil)
	var toCount []dataset.Itemset
	for a := 0; a < 20; a++ {
		for b2 := a + 1; b2 < 20; b2++ {
			toCount = append(toCount, dataset.NewItemset(dataset.Item(a), dataset.Item(b2)))
			for c := b2 + 1; c < 20; c++ {
				toCount = append(toCount, dataset.NewItemset(dataset.Item(a), dataset.Item(b2), dataset.Item(c)))
			}
		}
	}
	want := countGlobal(tids, toCount, minCount, 1, nil)
	for _, pool := range []int{2, 4} {
		got := countGlobal(tids, toCount, minCount, pool, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pool=%d: count of %v is %d, serial %d", pool, toCount[i], got[i], want[i])
			}
		}
	}
}
