// Package partition implements the Partition algorithm of Savasere,
// Omiecinski and Navathe (VLDB 1995): the database is split into
// partitions small enough to mine in memory with vertical tidlists; the
// union of locally frequent itemsets forms the global candidate set,
// which a second pass counts exactly.
//
// Section 7 of the OSSM paper describes two integration points, both
// supported here: a per-partition OSSM pruning local candidates, and a
// global OSSM pruning global candidates before the counting pass.
package partition

import (
	"fmt"
	"sort"
	"time"

	"github.com/ossm-mining/ossm/internal/conc"
	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// Name is the registry name of this miner.
const Name = "partition"

func init() {
	mining.Register(Name, func(d *dataset.Dataset, minCount int64, opts mining.Options) (*mining.Result, error) {
		return Mine(d, minCount, Options{Options: opts, NumPartitions: opts.Param("partitions", 0)})
	})
}

// Options configures Mine. The embedded mining.Options carries the
// engine-wide knobs: Pruner acts as the *global* OSSM filtering the
// candidate set before the phase-2 counting scan, and Workers fans that
// scan — one tidlist-intersection count per candidate — over a pool.
type Options struct {
	mining.Options
	// NumPartitions splits the database; defaults to 1 when zero (which
	// degenerates into plain vertical mining).
	NumPartitions int
	// LocalPruner, if non-nil, supplies a filter for each partition's
	// local mining (built, e.g., from a per-partition OSSM).
	LocalPruner func(part int, lo, hi int) core.Filter
	// LocalOSSM, if non-nil, builds a per-partition OSSM automatically
	// (Section 7: "if an OSSM is built for each partition, the execution
	// time for each partition will be significantly reduced") with the
	// given segmentation options, pruning each partition's local mining
	// at its local threshold. Ignored when LocalPruner is set.
	LocalOSSM *core.Options
	// LocalPages is the page count per partition for LocalOSSM (0 ⇒ 4 ×
	// TargetSegments, clamped to the partition size).
	LocalPages int
}

// Stats carries Partition-specific accounting; it rides on the result as
// mining.Stats.Extra (see StatsOf).
type Stats struct {
	NumPartitions    int
	LocalFrequent    int // locally frequent itemsets summed over partitions (before union)
	GlobalCandidates int // distinct candidates entering phase 2
	GlobalPruned     int // removed from phase 2 by the global OSSM
	// CrossPruned counts global candidates removed by the *combined*
	// per-partition OSSMs (Section 7: itemsets locally frequent in one
	// partition but "known to be globally infrequent with respect to the
	// OSSMs"). Only populated when LocalOSSM is set.
	CrossPruned int
}

// StatsOf returns the Partition-specific counters attached to a result
// mined by this package, or nil for results of other miners.
func StatsOf(r *mining.Result) *Stats {
	if s, ok := r.Stats.Extra.(*Stats); ok {
		return s
	}
	return nil
}

// Mine runs Partition over d at the absolute support threshold minCount.
func Mine(d *dataset.Dataset, minCount int64, opts Options) (*mining.Result, error) {
	if err := mining.ValidateMinCount(minCount); err != nil {
		return nil, err
	}
	np := opts.NumPartitions
	if np == 0 {
		np = 1
	}
	if np < 1 || np > d.NumTx() {
		return nil, fmt.Errorf("partition: NumPartitions %d out of range [1, %d]", np, d.NumTx())
	}
	parts := dataset.PaginateN(d, np)
	start := time.Now()
	pool := conc.Resolve(opts.Workers)
	extra := &Stats{NumPartitions: np}
	res := &mining.Result{MinCount: minCount, Stats: mining.Stats{Algorithm: Name, Workers: pool, Extra: extra}}
	defer func() { res.Stats.Elapsed = time.Since(start) }()

	// Phase 1: mine each partition locally. When LocalOSSM is set, the
	// per-partition maps are kept: stacked together they form a combined
	// OSSM over the whole collection (each partition's segments are
	// segments of the union), which Section 7 uses to prune global
	// candidates before phase 2.
	candidates := make(map[string]dataset.Itemset)
	var stackedRows [][]uint32
	for pi, p := range parts {
		localMin := localMinCount(minCount, p.Len(), d.NumTx())
		var pruner core.Filter
		switch {
		case opts.LocalPruner != nil:
			pruner = opts.LocalPruner(pi, p.Lo, p.Hi)
		case opts.LocalOSSM != nil:
			lp, err := localOSSMPruner(d, p, localMin, *opts.LocalOSSM, opts.LocalPages)
			if err != nil {
				return nil, fmt.Errorf("partition %d: %w", pi, err)
			}
			pruner = lp
			m := lp.(*core.Pruner).Map
			for s := 0; s < m.NumSegments(); s++ {
				row := make([]uint32, d.NumItems())
				copy(row, m.SegmentRow(s))
				stackedRows = append(stackedRows, row)
			}
		}
		local := mineVertical(d, p, localMin, opts.MaxLen, pruner)
		extra.LocalFrequent += len(local)
		for _, x := range local {
			candidates[x.Key()] = x
		}
	}
	extra.GlobalCandidates = len(candidates)

	// The combined per-partition OSSM prunes at the *global* threshold.
	var crossPruner *core.Pruner
	if len(stackedRows) > 0 {
		combined, err := core.NewMap(stackedRows)
		if err != nil {
			return nil, err
		}
		crossPruner = &core.Pruner{Map: combined, MinCount: minCount}
	}

	// Phase 2: prune with the combined per-partition OSSM and the global
	// OSSM, then count exactly against global tidlists. Each filter sees
	// its whole candidate set in one batch kernel call — the global OSSM
	// only the cross-pruner's survivors, preserving the per-filter Checked
	// accounting of the sequential loop.
	var tally mining.LevelTally
	candList := make([]dataset.Itemset, 0, len(candidates))
	for _, x := range candidates {
		candList = append(candList, x)
	}
	var crossFilter core.Filter
	if crossPruner != nil {
		crossFilter = crossPruner
	}
	crossDec := core.AdmitBatch(crossFilter, candList, nil)
	afterCross := make([]dataset.Itemset, 0, len(candList))
	for ci, x := range candList {
		if !crossDec[ci] {
			extra.CrossPruned++
			tally.Note(len(x), 1, 1, 0)
			continue
		}
		afterCross = append(afterCross, x)
	}
	globalDec := core.AdmitBatch(opts.Pruner, afterCross, nil)
	var toCount []dataset.Itemset
	for ci, x := range afterCross {
		if globalDec[ci] {
			toCount = append(toCount, x)
			tally.Note(len(x), 1, 0, 1)
		} else {
			extra.GlobalPruned++
			tally.Note(len(x), 1, 1, 0)
		}
	}
	tally.NoteTx(1, d.NumTx())
	neededItem := make(map[dataset.Item]bool)
	for _, x := range toCount {
		for _, it := range x {
			neededItem[it] = true
		}
	}
	tids := buildTidlists(d, 0, d.NumTx(), neededItem)
	counts := countGlobal(tids, toCount, minCount, pool, opts.Instrument)
	var found []mining.Counted
	for i, x := range toCount {
		if counts[i] >= minCount {
			found = append(found, mining.Counted{Items: x, Count: counts[i]})
		}
	}
	levels := mining.FromMap(minCount, found)
	res.Levels = levels.Levels
	tally.Apply(res)
	mining.EmitLevels(opts.Options, res)
	return res, nil
}

// countGlobal runs the phase-2 exact counting scan: one
// tidlist-intersection count per candidate, fanned over pool goroutines.
// Candidates are independent of one another and the tidlists are shared
// read-only, so each worker writes only its candidates' slots of the
// counts slice. pool is taken as given so tests can force shards past
// the host's CPU count.
func countGlobal(tids map[dataset.Item]tidlist, toCount []dataset.Itemset, minCount int64, pool int, instr *mining.Instrumentation) []int64 {
	counts := make([]int64, len(toCount))
	conc.For(pool, len(toCount), func(i int) {
		start := time.Time{}
		if instr != nil {
			start = time.Now()
		}
		counts[i] = supportByIntersection(tids, toCount[i], minCount)
		if instr != nil {
			instr.ObserveWorker(time.Since(start))
		}
	})
	return counts
}

// localOSSMPruner builds the Section 7 per-partition OSSM: the
// partition's own pages, segmented with the given options, pruning at
// the partition-local threshold.
func localOSSMPruner(d *dataset.Dataset, p dataset.Page, localMin int64, segOpts core.Options, localPages int) (core.Filter, error) {
	if localPages == 0 {
		localPages = 4 * segOpts.TargetSegments
	}
	if localPages > p.Len() {
		localPages = p.Len()
	}
	if localPages < 1 {
		localPages = 1
	}
	pages := make([]dataset.Page, 0, localPages)
	base, rem := p.Len()/localPages, p.Len()%localPages
	lo := p.Lo
	for i := 0; i < localPages; i++ {
		size := base
		if i < rem {
			size++
		}
		pages = append(pages, dataset.Page{Lo: lo, Hi: lo + size})
		lo += size
	}
	seg, err := core.Segment(dataset.PageCounts(d, pages), segOpts)
	if err != nil {
		return nil, err
	}
	return &core.Pruner{Map: seg.Map, MinCount: localMin}, nil
}

// localMinCount scales the global threshold to a partition:
// ceil(minCount · partLen / total). Pigeonhole guarantees every globally
// frequent itemset meets this bound in at least one partition.
func localMinCount(minCount int64, partLen, total int) int64 {
	num := minCount * int64(partLen)
	lm := num / int64(total)
	if num%int64(total) != 0 {
		lm++
	}
	if lm < 1 {
		lm = 1
	}
	return lm
}

// tidlist is a sorted list of local transaction indices.
type tidlist []int32

// buildTidlists scans [lo,hi) once and returns a tidlist per requested
// item (nil filter ⇒ every item).
func buildTidlists(d *dataset.Dataset, lo, hi int, filter map[dataset.Item]bool) map[dataset.Item]tidlist {
	out := make(map[dataset.Item]tidlist)
	for i := lo; i < hi; i++ {
		for _, it := range d.Tx(i) {
			if filter == nil || filter[it] {
				out[it] = append(out[it], int32(i-lo))
			}
		}
	}
	return out
}

// intersect returns a ∩ b (both sorted).
func intersect(a, b tidlist) tidlist {
	var out tidlist
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// supportByIntersection counts sup(x) by progressive tidlist
// intersection, aborting (returning a value < minCount) as soon as the
// running intersection proves the candidate infrequent.
func supportByIntersection(tids map[dataset.Item]tidlist, x dataset.Itemset, minCount int64) int64 {
	cur := tids[x[0]]
	if int64(len(cur)) < minCount {
		return int64(len(cur))
	}
	for _, it := range x[1:] {
		cur = intersect(cur, tids[it])
		if int64(len(cur)) < minCount {
			return int64(len(cur))
		}
	}
	return int64(len(cur))
}

// mineVertical mines all locally frequent itemsets of a partition with
// level-wise candidate generation and tidlist intersection counting — the
// in-memory engine of the original Partition algorithm.
func mineVertical(d *dataset.Dataset, p dataset.Page, localMin int64, maxLen int, pruner core.Filter) []dataset.Itemset {
	tids := buildTidlists(d, p.Lo, p.Hi, nil)
	var level []node
	for it, tl := range tids {
		if int64(len(tl)) >= localMin {
			level = append(level, node{items: dataset.NewItemset(it), tids: tl})
		}
	}
	sortNodes(level)
	var out []dataset.Itemset
	for _, n := range level {
		out = append(out, n.items)
	}
	var decBuf []bool
	for k := 2; len(level) >= 2 && (maxLen == 0 || k <= maxLen); k++ {
		known := make(map[string]bool, len(level))
		for _, n := range level {
			known[n.items.Key()] = true
		}
		// Generate the level's candidates first, decide them all with one
		// batch kernel call, then intersect only the survivors.
		var gen []dataset.Itemset
		var genA, genB []int
		for i := 0; i < len(level); i++ {
			a := level[i]
			for j := i + 1; j < len(level); j++ {
				b := level[j]
				if !samePrefix(a.items, b.items) {
					break
				}
				cand := append(append(dataset.Itemset{}, a.items...), b.items[len(b.items)-1])
				if !hasAllSubsets(cand, known) {
					continue
				}
				gen = append(gen, cand)
				genA = append(genA, i)
				genB = append(genB, j)
			}
		}
		decBuf = core.AdmitBatch(pruner, gen, decBuf)
		var next []node
		for gi, cand := range gen {
			if !decBuf[gi] {
				continue
			}
			tl := intersect(level[genA[gi]].tids, level[genB[gi]].tids)
			if int64(len(tl)) >= localMin {
				next = append(next, node{items: cand, tids: tl})
			}
		}
		sortNodes(next)
		for _, n := range next {
			out = append(out, n.items)
		}
		level = next
	}
	return out
}

// node is a locally frequent itemset with its partition-local tidlist.
type node struct {
	items dataset.Itemset
	tids  tidlist
}

func sortNodes(ns []node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].items.Compare(ns[j].items) < 0 })
}

func samePrefix(a, b dataset.Itemset) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hasAllSubsets(cand dataset.Itemset, known map[string]bool) bool {
	for i := range cand {
		if !known[cand.Without(i).Key()] {
			return false
		}
	}
	return true
}
