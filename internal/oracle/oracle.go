// Package oracle provides the trusted references the engine's
// correctness tests are anchored to: a brute-force frequent-itemset miner
// whose only optimization is the anti-monotone recursion (no OSSM, no
// hash filtering, no projection — every support is an exact scan), and
// randomized dataset/itemset generators for property and differential
// testing. Nothing here is fast; everything here is obviously correct.
package oracle

import (
	"math/rand"
	"sort"

	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// Mine enumerates every frequent itemset of d at the absolute threshold
// minCount by depth-first extension, counting each candidate with an
// exact full scan (dataset.Support). maxLen bounds itemset size (0 =
// unlimited). The result carries the same level structure as the engine
// miners, so mining.Result.Equal compares directly.
func Mine(d *dataset.Dataset, minCount int64, maxLen int) (*mining.Result, error) {
	if err := mining.ValidateMinCount(minCount); err != nil {
		return nil, err
	}
	var items []dataset.Item
	for it := 0; it < d.NumItems(); it++ {
		items = append(items, dataset.Item(it))
	}
	var found []mining.Counted
	var grow func(prefix dataset.Itemset, sup int64, exts []dataset.Item)
	grow = func(prefix dataset.Itemset, sup int64, exts []dataset.Item) {
		if len(prefix) > 0 {
			found = append(found, mining.Counted{Items: append(dataset.Itemset{}, prefix...), Count: sup})
		}
		if maxLen != 0 && len(prefix) >= maxLen {
			return
		}
		for i, x := range exts {
			cand := append(append(dataset.Itemset{}, prefix...), x)
			// Anti-monotonicity is the one shortcut: an infrequent prefix
			// cannot have a frequent extension.
			c := int64(d.Support(cand))
			if c >= minCount {
				grow(cand, c, exts[i+1:])
			}
		}
	}
	grow(nil, 0, items)
	res := mining.FromMap(minCount, found)
	res.Stats = mining.Stats{Algorithm: "oracle", Workers: 1}
	return res, nil
}

// RandomDataset draws a dataset with numItems items and numTx
// transactions; each transaction includes each item independently with
// probability density. Transactions may be empty — the engine must cope.
func RandomDataset(r *rand.Rand, numItems, numTx int, density float64) *dataset.Dataset {
	b := dataset.NewBuilder(numItems)
	for i := 0; i < numTx; i++ {
		var tx []dataset.Item
		for it := 0; it < numItems; it++ {
			if r.Float64() < density {
				tx = append(tx, dataset.Item(it))
			}
		}
		if err := b.Append(tx); err != nil {
			panic(err) // items are in-range and ascending by construction
		}
	}
	return b.Build()
}

// RandomItemset draws a random itemset of size 1..maxSize over numItems
// items (sorted, duplicate-free).
func RandomItemset(r *rand.Rand, numItems, maxSize int) dataset.Itemset {
	if maxSize > numItems {
		maxSize = numItems
	}
	size := 1 + r.Intn(maxSize)
	picked := make(map[int]bool, size)
	for len(picked) < size {
		picked[r.Intn(numItems)] = true
	}
	out := make(dataset.Itemset, 0, size)
	for it := range picked {
		out = append(out, dataset.Item(it))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
