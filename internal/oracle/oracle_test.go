package oracle

import (
	"math/rand"
	"testing"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
)

// TestMineTiny hand-checks the oracle on a dataset small enough to
// enumerate by eye.
func TestMineTiny(t *testing.T) {
	d := dataset.MustFromTransactions(3, [][]dataset.Item{
		{0, 1}, {0, 1, 2}, {0, 2}, {1},
	})
	res, err := Mine(d, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"0": 3, "1": 3, "2": 2, "0,1": 2, "0,2": 2}
	all := res.All()
	if len(all) != len(want) {
		t.Fatalf("mined %d itemsets, want %d: %v", len(all), len(want), all)
	}
	for _, c := range all {
		if want[c.Items.Key()] != c.Count {
			t.Errorf("%v: count %d, want %d", c.Items, c.Count, want[c.Items.Key()])
		}
	}
}

func TestMineRespectsMaxLen(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := RandomDataset(r, 8, 40, 0.4)
	res, err := Mine(d, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.All() {
		if len(c.Items) > 2 {
			t.Fatalf("itemset %v exceeds MaxLen 2", c.Items)
		}
	}
}

// TestUpperBoundSoundnessProperty is the paper's core invariant (eq. 1):
// for every itemset X and every segmentation, ubsup(X) ≥ sup(X) — the
// segment-wise sum of minima can never under-estimate true support. It
// also checks the two companion properties: the bound is exact on
// singletons, and never looser than the segment-free naive bound.
func TestUpperBoundSoundnessProperty(t *testing.T) {
	algs := []core.Algorithm{core.AlgRandom, core.AlgRC, core.AlgGreedy, core.AlgRandomRC, core.AlgRandomGreedy}
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		numItems := 4 + r.Intn(10)
		numTx := 10 + r.Intn(80)
		density := 0.1 + 0.6*r.Float64()
		d := RandomDataset(r, numItems, numTx, density)
		pages := 1 + r.Intn(numTx)
		rows := dataset.PageCounts(d, dataset.PaginateN(d, pages))
		for _, alg := range algs {
			target := 1 + r.Intn(pages)
			seg, err := core.Segment(rows, core.Options{
				Algorithm:      alg,
				TargetSegments: target,
				MidSegments:    (pages + target) / 2,
				Seed:           int64(trial),
			})
			if err != nil {
				t.Fatalf("trial %d alg %v: %v", trial, alg, err)
			}
			m := seg.Map
			for probe := 0; probe < 40; probe++ {
				x := RandomItemset(r, numItems, 4)
				sup := int64(d.Support(x))
				ub := m.UpperBound(x)
				if ub < sup {
					t.Fatalf("trial %d alg %v: ubsup(%v) = %d < sup = %d (segments=%d)",
						trial, alg, x, ub, sup, m.NumSegments())
				}
				if naive := m.NaiveUpperBound(x); ub > naive {
					t.Fatalf("trial %d alg %v: ubsup(%v) = %d looser than naive bound %d",
						trial, alg, x, ub, naive)
				}
				if len(x) == 1 && ub != sup {
					t.Fatalf("trial %d alg %v: singleton bound %d ≠ exact support %d for %v",
						trial, alg, ub, sup, x)
				}
			}
		}
	}
}

func TestRandomItemsetWellFormed(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		x := RandomItemset(r, 12, 5)
		if len(x) < 1 || len(x) > 5 {
			t.Fatalf("size %d out of range", len(x))
		}
		for j := 1; j < len(x); j++ {
			if x[j] <= x[j-1] {
				t.Fatalf("itemset %v not strictly ascending", x)
			}
		}
	}
}
