package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/mining"
)

// Fig4Point is one (algorithm, segment count) grid point of Figure 4.
type Fig4Point struct {
	Algorithm core.Algorithm
	Segments  int
	// Speedup is t(Apriori without OSSM) / t(Apriori with this OSSM) —
	// the y-axis of Figure 4(a).
	Speedup float64
	// C2Fraction is the fraction of candidate 2-itemsets not pruned —
	// the y-axis of Figure 4(b).
	C2Fraction float64
	// SegTime is the cumulative segmentation time to reach this point.
	SegTime time.Duration
}

// Fig4Result reproduces Figure 4 (both panels).
type Fig4Result struct {
	PlainTime time.Duration
	PlainC2   int
	Frequent  int
	Points    []Fig4Point
}

// Fig4Algorithms are the three curves of Figure 4.
var Fig4Algorithms = []core.Algorithm{core.AlgRandom, core.AlgRC, core.AlgGreedy}

// DefaultFig4Segments is the x-axis of Figure 4 (20–160 segments).
var DefaultFig4Segments = []int{20, 40, 60, 80, 100, 120, 140, 160}

// RunFig4 reproduces Figure 4: speedup and surviving-candidate fraction
// versus the number of segments, for the Random, RC and Greedy
// algorithms on the regular-synthetic data at the configured support
// threshold.
func RunFig4(cfg Config, segments []int) (*Fig4Result, error) {
	if len(segments) == 0 {
		segments = DefaultFig4Segments
	}
	d, err := cfg.Regular()
	if err != nil {
		return nil, err
	}
	_, rows := cfg.pageRows(d)
	bubble := cfg.bubble(d, rows)
	minCount := mining.MinCountFor(d, cfg.Support)

	plain, err := cfg.runApriori(d, minCount, nil)
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{
		PlainTime: plain.elapsed,
		Frequent:  plain.res.NumFrequent(),
	}
	if l2 := plain.res.Level(2); l2 != nil {
		out.PlainC2 = l2.Stats.Counted
	}

	for _, alg := range Fig4Algorithms {
		points, err := core.SegmentSweep(rows, core.Options{
			Algorithm: alg,
			Bubble:    bubble,
			Seed:      cfg.Seed,
		}, segments)
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			run, err := cfg.runApriori(d, minCount, pt.Map)
			if err != nil {
				return nil, err
			}
			if err := verifyEqual(plain.res, run.res, fmt.Sprintf("fig4 %v n=%d", alg, pt.Segments)); err != nil {
				return nil, err
			}
			out.Points = append(out.Points, Fig4Point{
				Algorithm:  alg,
				Segments:   pt.Segments,
				Speedup:    float64(plain.elapsed) / float64(run.elapsed),
				C2Fraction: c2Fraction(run.res),
				SegTime:    pt.Elapsed,
			})
		}
	}
	return out, nil
}

// Print renders the two panels as text tables.
func (r *Fig4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 4 — regular-synthetic data (baseline Apriori: %v, %d candidate pairs, %d frequent itemsets)\n",
		r.PlainTime.Round(time.Millisecond), r.PlainC2, r.Frequent)
	fmt.Fprintln(w, "\n(a) Speedup relative to Apriori without the OSSM")
	r.panel(w, func(p Fig4Point) string { return fmt.Sprintf("%.2f", p.Speedup) })
	fmt.Fprintln(w, "\n(b) Fraction of candidate 2-itemsets not pruned")
	r.panel(w, func(p Fig4Point) string { return fmt.Sprintf("%.3f", p.C2Fraction) })
}

func (r *Fig4Result) panel(w io.Writer, cell func(Fig4Point) string) {
	var segs []int
	seen := map[int]bool{}
	for _, p := range r.Points {
		if !seen[p.Segments] {
			seen[p.Segments] = true
			segs = append(segs, p.Segments)
		}
	}
	for i := 0; i < len(segs); i++ { // points arrive descending; print ascending
		for j := i + 1; j < len(segs); j++ {
			if segs[j] < segs[i] {
				segs[i], segs[j] = segs[j], segs[i]
			}
		}
	}
	fmt.Fprintf(w, "%-10s", "segments")
	for _, n := range segs {
		fmt.Fprintf(w, "%10d", n)
	}
	fmt.Fprintln(w)
	for _, alg := range Fig4Algorithms {
		fmt.Fprintf(w, "%-10s", alg)
		for _, n := range segs {
			printed := false
			for _, p := range r.Points {
				if p.Algorithm == alg && p.Segments == n {
					fmt.Fprintf(w, "%10s", cell(p))
					printed = true
					break
				}
			}
			if !printed {
				fmt.Fprintf(w, "%10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}
