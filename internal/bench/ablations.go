package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/ossm-mining/ossm/internal/apriori"
	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/depthproject"
	"github.com/ossm-mining/ossm/internal/eclat"
	"github.com/ossm-mining/ossm/internal/episodes"
	"github.com/ossm-mining/ossm/internal/mining"
	"github.com/ossm-mining/ossm/internal/partition"
)

// SkewRow compares the OSSM's effect on one dataset (ablation A1).
type SkewRow struct {
	Dataset    string
	Support    float64
	Speedup    float64
	C2Fraction float64
}

// SkewResult is ablation A1: "the more skewed the data, the more
// effective the OSSM" (paper Sections 3 and 8).
type SkewResult struct {
	Segments int
	Rows     []SkewRow
}

// RunSkew measures identical OSSM configurations on the regular, skewed
// and alarm datasets.
func RunSkew(cfg Config, nUser int) (*SkewResult, error) {
	out := &SkewResult{Segments: nUser}
	sets := []struct {
		name    string
		mk      func() (*dataset.Dataset, error)
		support float64
	}{
		{"regular-synthetic", cfg.Regular, cfg.Support},
		{"skewed-synthetic", cfg.Skewed, cfg.Support},
		// The dense alarm log is mined at twice the synthetic threshold
		// (the paper likewise picks per-dataset thresholds).
		{"alarm (Nokia surrogate)", cfg.Alarm, 2 * cfg.Support},
	}
	for _, s := range sets {
		d, err := s.mk()
		if err != nil {
			return nil, err
		}
		_, rows := cfg.pageRows(d)
		minCount := mining.MinCountFor(d, s.support)
		bubble := cfg.bubble(d, rows)
		if d.NumItems() <= 400 {
			bubble = nil // small domains afford the full sumdiff
		}
		seg, err := core.Segment(rows, core.Options{
			Algorithm:      core.AlgRandomGreedy,
			TargetSegments: nUser,
			MidSegments:    min(200, len(rows)),
			Bubble:         bubble,
			Seed:           cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		plain, err := cfg.runApriori(d, minCount, nil)
		if err != nil {
			return nil, err
		}
		pruned, err := cfg.runApriori(d, minCount, seg.Map)
		if err != nil {
			return nil, err
		}
		if err := verifyEqual(plain.res, pruned.res, "skew "+s.name); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, SkewRow{
			Dataset:    s.name,
			Support:    s.support,
			Speedup:    float64(plain.elapsed) / float64(pruned.elapsed),
			C2Fraction: c2Fraction(pruned.res),
		})
	}
	return out, nil
}

// Print renders the table.
func (r *SkewResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation A1 — effect of skew (Random-Greedy, %d segments)\n", r.Segments)
	fmt.Fprintf(w, "%-26s %-9s %-10s %-10s\n", "dataset", "support", "speedup", "C2 frac")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-26s %-9.3g %-10.2f %-10.3f\n", row.Dataset, row.Support, row.Speedup, row.C2Fraction)
	}
}

// HostRow is one line of the host-algorithm ablations (A2, A3): an
// algorithm run with and without the OSSM.
type HostRow struct {
	Host       string
	TimePlain  time.Duration
	TimeOSSM   time.Duration
	WorkPlain  int // algorithm-specific work counter without the OSSM
	WorkOSSM   int // the same counter with it
	WorkMetric string
}

// HostsResult aggregates ablations A2 and A3 (and Apriori for
// reference).
type HostsResult struct {
	Segments int
	Rows     []HostRow
}

// RunHosts measures the OSSM's benefit inside Apriori, Partition and
// DepthProject under one shared segmentation (Section 7's discussion,
// quantified).
func RunHosts(cfg Config, nUser int) (*HostsResult, error) {
	d, err := cfg.Regular()
	if err != nil {
		return nil, err
	}
	_, rows := cfg.pageRows(d)
	minCount := mining.MinCountFor(d, cfg.Support)
	seg, err := core.Segment(rows, core.Options{
		Algorithm:      core.AlgRandomGreedy,
		TargetSegments: nUser,
		MidSegments:    min(200, len(rows)),
		Bubble:         cfg.bubble(d, rows),
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &HostsResult{Segments: nUser}
	pruner := &core.Pruner{Map: seg.Map, MinCount: minCount}
	c2 := func(r *mining.Result) int {
		if l2 := r.Level(2); l2 != nil {
			return l2.Stats.Counted
		}
		return 0
	}
	np := min(9, d.NumTx())

	// Every host goes through the shared miner registry; only the display
	// name, the algorithm-specific parameters and the work counter pulled
	// out of the result differ per row.
	hosts := []struct {
		host   string
		miner  string
		params map[string]int
		metric string
		work   func(plain, ossm *mining.Result) (int, int)
	}{
		{"Apriori", apriori.Name, nil, "C2 counted",
			func(plain, ossm *mining.Result) (int, int) { return c2(plain), c2(ossm) }},
		{"Partition", partition.Name, map[string]int{"partitions": np}, "phase-2 candidates",
			func(plain, ossm *mining.Result) (int, int) {
				ps, os := partition.StatsOf(plain), partition.StatsOf(ossm)
				return ps.GlobalCandidates, ps.GlobalCandidates - os.GlobalPruned
			}},
		{"DepthProject", depthproject.Name, nil, "projections",
			func(plain, ossm *mining.Result) (int, int) {
				return depthproject.StatsOf(plain).Projections, depthproject.StatsOf(ossm).Projections
			}},
		{"dEclat", eclat.Name, nil, "diffsets",
			func(plain, ossm *mining.Result) (int, int) {
				return eclat.StatsOf(plain).Diffsets, eclat.StatsOf(ossm).Diffsets
			}},
	}
	for _, h := range hosts {
		plain, tPlain, err := cfg.runMiner(h.miner, d, minCount, mining.Options{Params: h.params})
		if err != nil {
			return nil, err
		}
		withOSSM, tOSSM, err := cfg.runMiner(h.miner, d, minCount, mining.Options{Pruner: pruner, Params: h.params})
		if err != nil {
			return nil, err
		}
		if err := verifyEqual(plain, withOSSM, "hosts "+h.miner); err != nil {
			return nil, err
		}
		wp, wo := h.work(plain, withOSSM)
		out.Rows = append(out.Rows, HostRow{
			Host: h.host, TimePlain: tPlain, TimeOSSM: tOSSM,
			WorkPlain: wp, WorkOSSM: wo, WorkMetric: h.metric,
		})
	}
	return out, nil
}

// Print renders the table.
func (r *HostsResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablations A2/A3 — OSSM inside host algorithms (Random-Greedy, %d segments)\n", r.Segments)
	fmt.Fprintf(w, "%-14s %-12s %-12s %-10s %-22s\n", "host", "plain", "with OSSM", "speedup", "work (plain → OSSM)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-12v %-12v %-10.2f %d → %d %s\n",
			row.Host, row.TimePlain.Round(time.Millisecond), row.TimeOSSM.Round(time.Millisecond),
			float64(row.TimePlain)/float64(row.TimeOSSM), row.WorkPlain, row.WorkOSSM, row.WorkMetric)
	}
}

// EpisodeResult is ablation A4: OSSM pruning during episode discovery.
type EpisodeResult struct {
	Windows  int
	Episodes int
	Checked  int64
	Pruned   int64
}

// RunEpisodes mines parallel episodes over an alarm event stream with an
// OSSM over the window dataset.
func RunEpisodes(cfg Config, width int, minFreq float64) (*EpisodeResult, error) {
	d, err := cfg.Alarm()
	if err != nil {
		return nil, err
	}
	var stream []dataset.Item
	for i := 0; i < d.NumTx(); i++ {
		stream = append(stream, d.Tx(i)...)
	}
	seq, err := episodes.FromTypes(d.NumItems(), stream)
	if err != nil {
		return nil, err
	}
	plain, err := episodes.Mine(seq, episodes.Options{Width: width, MinFrequency: minFreq})
	if err != nil {
		return nil, err
	}
	res, err := episodes.Mine(seq, episodes.Options{
		Width:        width,
		MinFrequency: minFreq,
		Segmentation: &core.Options{
			Algorithm:      core.AlgRandomGreedy,
			TargetSegments: 32,
			MidSegments:    128,
			Seed:           cfg.Seed,
		},
		Pages: 256,
	})
	if err != nil {
		return nil, err
	}
	if err := verifyEqual(plain.Result, res.Result, "episodes"); err != nil {
		return nil, err
	}
	return &EpisodeResult{
		Windows:  res.Windows,
		Episodes: res.NumFrequent(),
		Checked:  res.Checked,
		Pruned:   res.Pruned,
	}, nil
}

// Print renders the summary.
func (r *EpisodeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation A4 — episode discovery over the alarm stream\n")
	fmt.Fprintf(w, "windows=%d frequent episodes=%d candidates checked=%d pruned by OSSM=%d (%.1f%%)\n",
		r.Windows, r.Episodes, r.Checked, r.Pruned,
		100*float64(r.Pruned)/float64(maxI64(r.Checked, 1)))
}

// MemoryRow is one line of ablation A5. CellBytes is the paper's
// accounting unit (the 4-byte support cells alone); SizeBytes is the true
// resident footprint of the flat store, including the transposed view,
// the totals and the kernel suffix remainders.
type MemoryRow struct {
	Segments  int
	SizeBytes int
	CellBytes int
}

// MemoryResult is ablation A5: OSSM footprint versus segment budget
// (the paper's "0.2–0.3 MB" claims).
type MemoryResult struct {
	NumItems int
	Rows     []MemoryRow
}

// RunMemory tabulates the index footprint for each segment budget.
func RunMemory(cfg Config, segments []int) (*MemoryResult, error) {
	if len(segments) == 0 {
		segments = DefaultFig4Segments
	}
	d, err := cfg.Regular()
	if err != nil {
		return nil, err
	}
	_, rows := cfg.pageRows(d)
	out := &MemoryResult{NumItems: cfg.NumItems}
	for _, n := range segments {
		seg, err := core.Segment(rows, core.Options{
			Algorithm:      core.AlgRandom,
			TargetSegments: n,
			Seed:           cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, MemoryRow{
			Segments:  seg.Map.NumSegments(),
			SizeBytes: seg.Map.SizeBytes(),
			CellBytes: seg.Map.CellBytes(),
		})
	}
	return out, nil
}

// Print renders the table.
func (r *MemoryResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation A5 — OSSM footprint (%d items)\n", r.NumItems)
	fmt.Fprintf(w, "%-10s %-12s %-12s\n", "segments", "cells", "resident")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10d %.2f MB      %.2f MB\n", row.Segments,
			float64(row.CellBytes)/1e6, float64(row.SizeBytes)/1e6)
	}
}

// C2MethodResult is the counting-structure ablation from DESIGN.md §7:
// hash-tree counting (candidate-bound) versus the dense triangular array
// (candidate-insensitive) at pass 2, with and without the OSSM.
type C2MethodResult struct {
	HashPlain time.Duration
	HashOSSM  time.Duration
	TriPlain  time.Duration
	TriOSSM   time.Duration
}

// RunC2Method measures how the pass-2 counting structure interacts with
// OSSM pruning.
func RunC2Method(cfg Config, nUser int) (*C2MethodResult, error) {
	d, err := cfg.Regular()
	if err != nil {
		return nil, err
	}
	_, rows := cfg.pageRows(d)
	minCount := mining.MinCountFor(d, cfg.Support)
	seg, err := core.Segment(rows, core.Options{
		Algorithm:      core.AlgRandomGreedy,
		TargetSegments: nUser,
		MidSegments:    min(200, len(rows)),
		Bubble:         cfg.bubble(d, rows),
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	var out C2MethodResult
	var ref *mining.Result
	for _, method := range []apriori.CountMethod{apriori.CountHashTree, apriori.CountTriangular} {
		for _, withOSSM := range []bool{false, true} {
			var pruner *core.Pruner
			if withOSSM {
				pruner = &core.Pruner{Map: seg.Map, MinCount: minCount}
			}
			start := time.Now()
			res, err := apriori.Mine(d, minCount, apriori.Options{Options: mining.Options{Pruner: pruner}, C2Method: method})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if ref == nil {
				ref = res
			} else if err := verifyEqual(ref, res, "c2method"); err != nil {
				return nil, err
			}
			switch {
			case method == apriori.CountHashTree && !withOSSM:
				out.HashPlain = elapsed
			case method == apriori.CountHashTree && withOSSM:
				out.HashOSSM = elapsed
			case method == apriori.CountTriangular && !withOSSM:
				out.TriPlain = elapsed
			default:
				out.TriOSSM = elapsed
			}
		}
	}
	return &out, nil
}

// Print renders the table.
func (r *C2MethodResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation — pass-2 counting structure vs. OSSM pruning")
	fmt.Fprintf(w, "%-22s %-12s %-12s %-8s\n", "method", "plain", "with OSSM", "speedup")
	fmt.Fprintf(w, "%-22s %-12v %-12v %-8.2f\n", "hash tree", r.HashPlain.Round(time.Millisecond), r.HashOSSM.Round(time.Millisecond), float64(r.HashPlain)/float64(r.HashOSSM))
	fmt.Fprintf(w, "%-22s %-12v %-12v %-8.2f\n", "triangular array", r.TriPlain.Round(time.Millisecond), r.TriOSSM.Round(time.Millisecond), float64(r.TriPlain)/float64(r.TriOSSM))
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
