package bench

import (
	"fmt"
	"io"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
)

// MinSegRow records the segment-minimization outcome for one page count.
type MinSegRow struct {
	Pages       int
	MinSegments int // distinct configurations (lossless merge limit)
	Theoretical int // the paper's min(m, 2^k − k)
}

// MinSegResult demonstrates the negative result of Theorem 1 /
// Corollary 1 (Section 4.3): on realistic data, pages essentially never
// share a configuration, so the lossless OSSM needs (almost) one segment
// per page — which is why the constrained segmentation problem exists.
type MinSegResult struct {
	NumItems int
	Rows     []MinSegRow
}

// RunMinSeg measures n_min for growing page counts on the
// regular-synthetic data.
func RunMinSeg(cfg Config, pageCounts []int) (*MinSegResult, error) {
	if len(pageCounts) == 0 {
		pageCounts = []int{8, 16, 32, 64, 128, 256}
	}
	d, err := cfg.Regular()
	if err != nil {
		return nil, err
	}
	out := &MinSegResult{NumItems: cfg.NumItems}
	for _, m := range pageCounts {
		if m > d.NumTx() {
			m = d.NumTx()
		}
		rows := dataset.PageCounts(d, dataset.PaginateN(d, m))
		out.Rows = append(out.Rows, MinSegRow{
			Pages:       m,
			MinSegments: core.MinSegments(rows),
			Theoretical: core.TheoreticalMinSegments(cfg.NumItems, m),
		})
	}
	return out, nil
}

// Print renders the table.
func (r *MinSegResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Segment minimization (Theorem 1 / Corollary 1) — regular-synthetic, %d items\n", r.NumItems)
	fmt.Fprintf(w, "%-10s %-22s %-22s\n", "pages m", "n_min (distinct cfgs)", "paper min(m, 2^k−k)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10d %-22d %-22d\n", row.Pages, row.MinSegments, row.Theoretical)
	}
	fmt.Fprintln(w, "(n_min ≈ m: lossless merging is essentially impossible on real pages —")
	fmt.Fprintln(w, " the hardness result that motivates the constrained segmentation problem)")
}
