package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/ossm-mining/ossm/internal/apriori"
	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/mining"
)

// ExtendedResult is the footnote-3 ablation: the plain OSSM versus the
// generalized map tracking pair supports for the bubble items, at the
// same segmentation.
type ExtendedResult struct {
	Segments     int
	Tracked      int
	BaseBytes    int
	ExtBytes     int
	BaseTime     time.Duration
	ExtTime      time.Duration
	PlainTime    time.Duration
	BaseC2Frac   float64
	ExtC2Frac    float64
	ExactAnswers int64 // pass-2 candidates answered without counting
}

// RunExtended compares pruning power and footprint of the plain and
// generalized OSSM under one segmentation.
func RunExtended(cfg Config, nUser int) (*ExtendedResult, error) {
	d, err := cfg.Regular()
	if err != nil {
		return nil, err
	}
	pages, rows := cfg.pageRows(d)
	minCount := mining.MinCountFor(d, cfg.Support)
	bubble := cfg.bubble(d, rows)
	seg, err := core.Segment(rows, core.Options{
		Algorithm:      core.AlgRandomGreedy,
		TargetSegments: nUser,
		MidSegments:    min(200, len(rows)),
		Bubble:         bubble,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Track the items around the *query* threshold — they are the ones
	// whose pairs populate C2, so exact pair supports pay off there.
	tracked := core.BubbleListFromCounts(rows, minCount, cfg.BubbleSize)
	ext, err := core.BuildExtended(d, pages, seg.Assignment, tracked)
	if err != nil {
		return nil, err
	}

	plain, err := cfg.runApriori(d, minCount, nil)
	if err != nil {
		return nil, err
	}
	base, err := cfg.runApriori(d, minCount, seg.Map)
	if err != nil {
		return nil, err
	}
	if err := verifyEqual(plain.res, base.res, "extended base"); err != nil {
		return nil, err
	}

	var extRun *mining.Result
	var extTime time.Duration
	var exact int64
	for rep := 0; rep < cfg.reps(); rep++ {
		pruner := ext.Pruner(minCount)
		start := time.Now()
		r, err := apriori.Mine(d, minCount, apriori.Options{Options: mining.Options{Pruner: pruner}})
		if err != nil {
			return nil, err
		}
		if e := time.Since(start); rep == 0 || e < extTime {
			extRun, extTime, exact = r, e, pruner.Exact
		}
	}
	if err := verifyEqual(plain.res, extRun, "extended ext"); err != nil {
		return nil, err
	}
	return &ExtendedResult{
		Segments:     seg.Map.NumSegments(),
		Tracked:      len(ext.Tracked()),
		BaseBytes:    seg.Map.SizeBytes(),
		ExtBytes:     ext.SizeBytes(),
		PlainTime:    plain.elapsed,
		BaseTime:     base.elapsed,
		ExtTime:      extTime,
		BaseC2Frac:   c2Fraction(base.res),
		ExtC2Frac:    c2Fraction(extRun),
		ExactAnswers: exact,
	}, nil
}

// Print renders the comparison.
func (r *ExtendedResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation — generalized OSSM (footnote 3), %d segments, %d tracked items (baseline Apriori: %v)\n",
		r.Segments, r.Tracked, r.PlainTime.Round(time.Millisecond))
	fmt.Fprintf(w, "%-16s %-12s %-12s %-10s %-10s\n", "map", "size", "mine time", "speedup", "C2 frac")
	fmt.Fprintf(w, "%-16s %-12s %-12v %-10.2f %-10.3f\n", "singletons",
		fmt.Sprintf("%.2f MB", float64(r.BaseBytes)/1e6), r.BaseTime.Round(time.Millisecond),
		float64(r.PlainTime)/float64(r.BaseTime), r.BaseC2Frac)
	fmt.Fprintf(w, "%-16s %-12s %-12v %-10.2f %-10.3f\n", "+tracked pairs",
		fmt.Sprintf("%.2f MB", float64(r.ExtBytes)/1e6), r.ExtTime.Round(time.Millisecond),
		float64(r.PlainTime)/float64(r.ExtTime), r.ExtC2Frac)
	fmt.Fprintf(w, "(%d pass-2 candidates answered exactly, with no counting pass)\n", r.ExactAnswers)
}
