package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dhp"
	"github.com/ossm-mining/ossm/internal/mining"
)

// Sec7Result reproduces the Section 7 table: DHP with and without an
// OSSM (built by Random-RC at 40 segments in the paper), comparing
// runtime and the number of candidate 2-itemsets.
type Sec7Result struct {
	Buckets     int
	Segments    int
	TimePlain   time.Duration
	TimeOSSM    time.Duration
	C2Plain     int
	C2OSSM      int
	OSSMPruned  int // pairs removed by the OSSM before the bucket test
	BucketPlain int // pairs removed by buckets alone (baseline run)
}

// RunSec7 reproduces the DHP table of Section 7 on the regular-synthetic
// workload.
func RunSec7(cfg Config, buckets, nUser int) (*Sec7Result, error) {
	if buckets == 0 {
		buckets = dhp.DefaultNumBuckets
	}
	d, err := cfg.Regular()
	if err != nil {
		return nil, err
	}
	_, rows := cfg.pageRows(d)
	minCount := mining.MinCountFor(d, cfg.Support)

	var plain *mining.Result
	var tPlain time.Duration
	for rep := 0; rep < cfg.reps(); rep++ {
		start := time.Now()
		p, err := dhp.Mine(d, minCount, dhp.Options{NumBuckets: buckets})
		if err != nil {
			return nil, err
		}
		if e := time.Since(start); rep == 0 || e < tPlain {
			plain, tPlain = p, e
		}
	}

	seg, err := core.Segment(rows, core.Options{
		Algorithm:      core.AlgRandomRC,
		TargetSegments: nUser,
		MidSegments:    min(200, len(rows)),
		Bubble:         cfg.bubble(d, rows),
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	var withOSSM *mining.Result
	var tOSSM time.Duration
	for rep := 0; rep < cfg.reps(); rep++ {
		pruner := &core.Pruner{Map: seg.Map, MinCount: minCount}
		start := time.Now()
		o, err := dhp.Mine(d, minCount, dhp.Options{Options: mining.Options{Pruner: pruner}, NumBuckets: buckets})
		if err != nil {
			return nil, err
		}
		if e := time.Since(start); rep == 0 || e < tOSSM {
			withOSSM, tOSSM = o, e
		}
	}
	if err := verifyEqual(plain, withOSSM, "sec7 DHP"); err != nil {
		return nil, err
	}
	out := &Sec7Result{
		Buckets:     buckets,
		Segments:    nUser,
		TimePlain:   tPlain,
		TimeOSSM:    tOSSM,
		BucketPlain: dhp.StatsOf(plain).BucketPruned,
	}
	if l2 := plain.Level(2); l2 != nil {
		out.C2Plain = l2.Stats.Counted
	}
	if l2 := withOSSM.Level(2); l2 != nil {
		out.C2OSSM = l2.Stats.Counted
		out.OSSMPruned = l2.Stats.Pruned
	}
	return out, nil
}

// Print renders the table in the paper's shape.
func (r *Sec7Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Section 7 — DHP (%d buckets) with an OSSM built by Random-RC (%d segments)\n", r.Buckets, r.Segments)
	fmt.Fprintf(w, "%-24s %-14s %-10s\n", "algorithm", "runtime", "|C2|")
	fmt.Fprintf(w, "%-24s %-14v %-10d\n", "DHP without the OSSM", r.TimePlain.Round(time.Millisecond), r.C2Plain)
	fmt.Fprintf(w, "%-24s %-14v %-10d\n", "DHP with the OSSM", r.TimeOSSM.Round(time.Millisecond), r.C2OSSM)
	fmt.Fprintf(w, "(OSSM pruned %d pairs before the bucket test; buckets alone pruned %d in the baseline)\n",
		r.OSSMPruned, r.BucketPlain)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
