package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dhp"
	"github.com/ossm-mining/ossm/internal/mining"
	"github.com/ossm-mining/ossm/internal/telemetry"
)

// PassRow is one pass of a run's pruning-effectiveness trajectory: the
// frozen telemetry of the pass plus the Geerts–Goethals–Van den Bussche
// tight candidate bound derived from the previous pass's frequent count —
// the reference curve Generated can never exceed, so the gap between
// Bound and Counted is the combined pruning effectiveness.
type PassRow struct {
	K          int           `json:"k"`
	Generated  int64         `json:"generated"`
	PrunedOSSM int64         `json:"pruned_ossm"`
	PrunedHash int64         `json:"pruned_hash,omitempty"`
	Counted    int64         `json:"counted"`
	Frequent   int64         `json:"frequent"`
	TxScanned  int64         `json:"tx_scanned,omitempty"`
	Wall       time.Duration `json:"wall_ns"`
	Bound      int64         `json:"candidate_bound,omitempty"`
}

// trajectory converts a run's telemetry into trajectory rows, filling the
// candidate-bound reference from each previous level's frequent count.
func trajectory(r *telemetry.Report) []PassRow {
	if r == nil {
		return nil
	}
	rows := make([]PassRow, 0, len(r.Passes))
	prevFrequent := map[int]int64{}
	for _, p := range r.Passes {
		prevFrequent[p.K] = p.Frequent
	}
	for _, p := range r.Passes {
		row := PassRow{
			K: p.K, Generated: p.Generated, PrunedOSSM: p.PrunedOSSM,
			PrunedHash: p.PrunedHash, Counted: p.Counted, Frequent: p.Frequent,
			TxScanned: p.TxScanned, Wall: p.Wall,
		}
		if m, ok := prevFrequent[p.K-1]; ok && p.K >= 2 {
			row.Bound = telemetry.CandidateBound(m, p.K-1)
		}
		rows = append(rows, row)
	}
	return rows
}

// Sec7Result reproduces the Section 7 table: DHP with and without an
// OSSM (built by Random-RC at 40 segments in the paper), comparing
// runtime and the number of candidate 2-itemsets, plus both runs' full
// per-pass pruning-effectiveness trajectories.
type Sec7Result struct {
	Buckets     int
	Segments    int
	TimePlain   time.Duration
	TimeOSSM    time.Duration
	C2Plain     int
	C2OSSM      int
	OSSMPruned  int // pairs removed by the OSSM before the bucket test
	BucketPlain int // pairs removed by buckets alone (baseline run)
	// TrajectoryPlain and TrajectoryOSSM are the per-pass telemetry of the
	// fastest baseline and OSSM runs.
	TrajectoryPlain []PassRow `json:",omitempty"`
	TrajectoryOSSM  []PassRow `json:",omitempty"`
}

// RunSec7 reproduces the DHP table of Section 7 on the regular-synthetic
// workload.
func RunSec7(cfg Config, buckets, nUser int) (*Sec7Result, error) {
	if buckets == 0 {
		buckets = dhp.DefaultNumBuckets
	}
	d, err := cfg.Regular()
	if err != nil {
		return nil, err
	}
	_, rows := cfg.pageRows(d)
	minCount := mining.MinCountFor(d, cfg.Support)

	var plain *mining.Result
	var tPlain time.Duration
	for rep := 0; rep < cfg.reps(); rep++ {
		engineOpts := mining.Options{Instrument: mining.NewInstrumentation()}
		start := time.Now()
		p, err := dhp.Mine(d, minCount, dhp.Options{Options: engineOpts, NumBuckets: buckets})
		if err != nil {
			return nil, err
		}
		engineOpts.FinishRun(p)
		if e := time.Since(start); rep == 0 || e < tPlain {
			plain, tPlain = p, e
		}
	}

	seg, err := core.Segment(rows, core.Options{
		Algorithm:      core.AlgRandomRC,
		TargetSegments: nUser,
		MidSegments:    min(200, len(rows)),
		Bubble:         cfg.bubble(d, rows),
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	var withOSSM *mining.Result
	var tOSSM time.Duration
	for rep := 0; rep < cfg.reps(); rep++ {
		pruner := &core.Pruner{Map: seg.Map, MinCount: minCount}
		engineOpts := mining.Options{Pruner: pruner, Instrument: mining.NewInstrumentation()}
		start := time.Now()
		o, err := dhp.Mine(d, minCount, dhp.Options{Options: engineOpts, NumBuckets: buckets})
		if err != nil {
			return nil, err
		}
		engineOpts.FinishRun(o)
		if e := time.Since(start); rep == 0 || e < tOSSM {
			withOSSM, tOSSM = o, e
		}
	}
	if err := verifyEqual(plain, withOSSM, "sec7 DHP"); err != nil {
		return nil, err
	}
	out := &Sec7Result{
		Buckets:         buckets,
		Segments:        nUser,
		TimePlain:       tPlain,
		TimeOSSM:        tOSSM,
		BucketPlain:     dhp.StatsOf(plain).BucketPruned,
		TrajectoryPlain: trajectory(plain.Stats.Telemetry),
		TrajectoryOSSM:  trajectory(withOSSM.Stats.Telemetry),
	}
	if l2 := plain.Level(2); l2 != nil {
		out.C2Plain = l2.Stats.Counted
	}
	if l2 := withOSSM.Level(2); l2 != nil {
		out.C2OSSM = l2.Stats.Counted
		out.OSSMPruned = l2.Stats.Pruned
	}
	return out, nil
}

// Print renders the table in the paper's shape.
func (r *Sec7Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Section 7 — DHP (%d buckets) with an OSSM built by Random-RC (%d segments)\n", r.Buckets, r.Segments)
	fmt.Fprintf(w, "%-24s %-14s %-10s\n", "algorithm", "runtime", "|C2|")
	fmt.Fprintf(w, "%-24s %-14v %-10d\n", "DHP without the OSSM", r.TimePlain.Round(time.Millisecond), r.C2Plain)
	fmt.Fprintf(w, "%-24s %-14v %-10d\n", "DHP with the OSSM", r.TimeOSSM.Round(time.Millisecond), r.C2OSSM)
	fmt.Fprintf(w, "(OSSM pruned %d pairs before the bucket test; buckets alone pruned %d in the baseline)\n",
		r.OSSMPruned, r.BucketPlain)
	printTrajectory(w, "baseline per-pass trajectory", r.TrajectoryPlain)
	printTrajectory(w, "OSSM per-pass trajectory", r.TrajectoryOSSM)
}

// printTrajectory renders one run's pruning-effectiveness trajectory.
func printTrajectory(w io.Writer, title string, rows []PassRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%s:\n", title)
	fmt.Fprintf(w, "  %-4s %12s %12s %12s %12s %12s %12s %12s\n",
		"pass", "bound", "generated", "ossm-pruned", "hash-pruned", "counted", "frequent", "wall")
	for _, p := range rows {
		bound := "-"
		if p.Bound > 0 {
			bound = fmt.Sprintf("%d", p.Bound)
		}
		fmt.Fprintf(w, "  %-4d %12s %12d %12d %12d %12d %12d %12v\n",
			p.K, bound, p.Generated, p.PrunedOSSM, p.PrunedHash, p.Counted, p.Frequent,
			p.Wall.Round(time.Microsecond))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
