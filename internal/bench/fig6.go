package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/mining"
)

// Fig6Point is one (strategy, bubble size) grid point of Figure 6.
type Fig6Point struct {
	Strategy    core.Algorithm
	BubblePct   int // bubble size as a percentage of the domain
	BubbleItems int
	SegTime     time.Duration
	Speedup     float64
	C2Fraction  float64
}

// Fig6Result reproduces Figure 6: the bubble list was formed at
// BubbleSupport (0.25% in the paper), while queries run at Support (1%)
// — demonstrating that a bubble-built OSSM still serves any threshold.
type Fig6Result struct {
	Pages     int
	Segments  int
	Mid       int
	PlainTime time.Duration
	Points    []Fig6Point
}

// DefaultFig6Percents is the x-axis of Figure 6 (bubble size as a
// percentage of the number of domain items).
var DefaultFig6Percents = []int{5, 10, 20, 40, 60}

// Fig6Strategies are the two curves of Figure 6.
var Fig6Strategies = []core.Algorithm{core.AlgRandomGreedy, core.AlgRandomRC}

// RunFig6 reproduces both panels of Figure 6: segmentation cost (a) and
// speedup (b) as a function of the bubble-list size.
func RunFig6(cfg Config, nUser, nMid int, percents []int) (*Fig6Result, error) {
	if len(percents) == 0 {
		percents = DefaultFig6Percents
	}
	d, err := cfg.Regular()
	if err != nil {
		return nil, err
	}
	pages, rows := cfg.pageRows(d)
	minCount := mining.MinCountFor(d, cfg.Support)
	bubbleMin := mining.MinCountFor(d, cfg.BubbleSupport)

	plain, err := cfg.runApriori(d, minCount, nil)
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{
		Pages:     len(pages),
		Segments:  nUser,
		Mid:       nMid,
		PlainTime: plain.elapsed,
	}
	for _, alg := range Fig6Strategies {
		for _, pct := range percents {
			size := cfg.NumItems * pct / 100
			if size < 2 {
				size = 2
			}
			bubble := core.BubbleListFromCounts(rows, bubbleMin, size)
			seg, err := core.Segment(rows, core.Options{
				Algorithm:      alg,
				TargetSegments: nUser,
				MidSegments:    nMid,
				Bubble:         bubble,
				Seed:           cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			run, err := cfg.runApriori(d, minCount, seg.Map)
			if err != nil {
				return nil, err
			}
			if err := verifyEqual(plain.res, run.res, fmt.Sprintf("fig6 %v %d%%", alg, pct)); err != nil {
				return nil, err
			}
			out.Points = append(out.Points, Fig6Point{
				Strategy:    alg,
				BubblePct:   pct,
				BubbleItems: len(bubble),
				SegTime:     seg.Elapsed,
				Speedup:     float64(plain.elapsed) / float64(run.elapsed),
				C2Fraction:  c2Fraction(run.res),
			})
		}
	}
	return out, nil
}

// Print renders both panels as text tables.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 6 — bubble list (built at segmentation threshold, queried at a different one); m=%d, n_mid=%d, n_user=%d (baseline Apriori: %v)\n",
		r.Pages, r.Mid, r.Segments, r.PlainTime.Round(time.Millisecond))
	fmt.Fprintln(w, "\n(a) Segmentation cost")
	r.panel(w, func(p Fig6Point) string { return p.SegTime.Round(time.Microsecond).String() })
	fmt.Fprintln(w, "\n(b) Speedup")
	r.panel(w, func(p Fig6Point) string { return fmt.Sprintf("%.2f", p.Speedup) })
	fmt.Fprintln(w, "\n(c) Fraction of candidate 2-itemsets not pruned (deterministic quality signal)")
	r.panel(w, func(p Fig6Point) string { return fmt.Sprintf("%.3f", p.C2Fraction) })
}

func (r *Fig6Result) panel(w io.Writer, cell func(Fig6Point) string) {
	var pcts []int
	seen := map[int]bool{}
	for _, p := range r.Points {
		if !seen[p.BubblePct] {
			seen[p.BubblePct] = true
			pcts = append(pcts, p.BubblePct)
		}
	}
	fmt.Fprintf(w, "%-16s", "bubble size")
	for _, pct := range pcts {
		fmt.Fprintf(w, "%12s", fmt.Sprintf("%d%%", pct))
	}
	fmt.Fprintln(w)
	for _, alg := range Fig6Strategies {
		fmt.Fprintf(w, "%-16s", alg)
		for _, pct := range pcts {
			printed := false
			for _, p := range r.Points {
				if p.Strategy == alg && p.BubblePct == pct {
					fmt.Fprintf(w, "%12s", cell(p))
					printed = true
					break
				}
			}
			if !printed {
				fmt.Fprintf(w, "%12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}
