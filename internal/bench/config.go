// Package bench implements the experiment harness: one runner per table
// and figure of the paper's evaluation (Figures 4–6, the Section 7 DHP
// table) plus the supplementary ablations listed in DESIGN.md. The same
// runners back the cmd/ossm-bench CLI (paper-scale, flag-controlled) and
// the root bench_test.go (scaled-down, deterministic).
package bench

import (
	"fmt"
	"time"

	"github.com/ossm-mining/ossm/internal/apriori"
	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/gen"
	"github.com/ossm-mining/ossm/internal/mining"
)

// Config parameterizes a workload in the paper's vocabulary. The zero
// value is not usable; start from DefaultConfig.
type Config struct {
	NumTx    int     // transactions |D|
	NumItems int     // domain size k (paper: 1000)
	Pages    int     // initial pages m
	Support  float64 // query support threshold (paper: 1%)

	// BubbleSupport is the relative threshold the bubble list is formed
	// at (paper Figure 6: 0.25%, deliberately different from the query
	// threshold).
	BubbleSupport float64
	// BubbleSize is the bubble-list length in items (0 = full sumdiff).
	BubbleSize int

	// Drift and ShuffleBlock shape the regular-synthetic workload: Quest
	// pattern-popularity drift plus block-shuffling (multi-source load
	// order). See DESIGN.md §5 on why temporal locality is required to
	// reproduce the paper's magnitudes. DriftEvery = 0 scales the epoch
	// length with the data (NumTx/100, at least 100): seasons span a
	// fixed *fraction* of the file, so per-segment heterogeneity survives
	// at any scale — without this, large runs average the drift away and
	// the OSSM has nothing to exploit.
	Drift        float64
	DriftEvery   int
	ShuffleBlock int

	// Reps is the number of repetitions of every timed mining run; the
	// minimum is reported (0 ⇒ 3).
	Reps int

	Seed int64
}

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 3
	}
	return c.Reps
}

// DefaultConfig is the scaled-down default: the paper's item count and
// thresholds at a laptop-friendly transaction count.
func DefaultConfig() Config {
	return Config{
		NumTx:         20000,
		NumItems:      1000,
		Pages:         400,
		Support:       0.01,
		BubbleSupport: 0.0025,
		BubbleSize:    250,
		Drift:         0.6,
		ShuffleBlock:  50,
		Seed:          42,
	}
}

// Regular builds the regular-synthetic dataset for the configuration.
func (c Config) Regular() (*dataset.Dataset, error) {
	qc := gen.DefaultQuest(c.NumTx, c.Seed)
	qc.NumItems = c.NumItems
	qc.WeightDrift = c.Drift
	qc.DriftEvery = c.DriftEvery
	if qc.DriftEvery == 0 {
		qc.DriftEvery = c.NumTx / 100
		if qc.DriftEvery < 100 {
			qc.DriftEvery = 100
		}
	}
	d, err := gen.Quest(qc)
	if err != nil {
		return nil, err
	}
	if c.ShuffleBlock > 0 {
		block := c.ShuffleBlock
		// Like DriftEvery, the shuffle granularity scales with the data
		// when left at the 50-tx default: load batches are a fixed
		// fraction of the file, not a fixed row count, so the structure
		// the segmentation algorithms must find survives at every scale.
		if block == 50 && c.NumTx/400 > block {
			block = c.NumTx / 400
		}
		return gen.ShuffleBlocks(d, block, c.Seed+1)
	}
	return d, nil
}

// Skewed builds the skewed-synthetic (seasonal) dataset.
func (c Config) Skewed() (*dataset.Dataset, error) {
	sc := gen.DefaultSkewed(c.NumTx, c.Seed)
	sc.Quest.NumItems = c.NumItems
	return gen.Skewed(sc)
}

// Alarm builds the telecom-alarm surrogate dataset (fixed scale, as in
// the paper: ~5000 transactions of ~200 types).
func (c Config) Alarm() (*dataset.Dataset, error) {
	return gen.Alarm(gen.DefaultAlarm(c.Seed))
}

// pageRows paginates d into c.Pages pages and returns the per-page
// supports.
func (c Config) pageRows(d *dataset.Dataset) ([]dataset.Page, [][]uint32) {
	m := c.Pages
	if m > d.NumTx() {
		m = d.NumTx()
	}
	pages := dataset.PaginateN(d, m)
	return pages, dataset.PageCounts(d, pages)
}

// bubble builds the configured bubble list over the page rows (nil if
// BubbleSize is 0).
func (c Config) bubble(d *dataset.Dataset, rows [][]uint32) []dataset.Item {
	if c.BubbleSize <= 0 {
		return nil
	}
	return core.BubbleListFromCounts(rows, mining.MinCountFor(d, c.BubbleSupport), c.BubbleSize)
}

// minedRun is one timed Apriori execution.
type minedRun struct {
	res     *mining.Result
	elapsed time.Duration
	pruner  *core.Pruner
}

// runApriori times an Apriori execution, optionally OSSM-pruned,
// repeating it reps times and reporting the minimum (single runs are too
// noisy for speedup ratios).
func (c Config) runApriori(d *dataset.Dataset, minCount int64, m *core.Map) (minedRun, error) {
	var out minedRun
	for rep := 0; rep < c.reps(); rep++ {
		var pruner *core.Pruner
		if m != nil {
			pruner = &core.Pruner{Map: m, MinCount: minCount}
		}
		start := time.Now()
		res, err := apriori.Mine(d, minCount, apriori.Options{Options: mining.Options{Pruner: pruner}})
		if err != nil {
			return minedRun{}, err
		}
		elapsed := time.Since(start)
		if rep == 0 || elapsed < out.elapsed {
			out = minedRun{res: res, elapsed: elapsed, pruner: pruner}
		}
	}
	return out, nil
}

// runMiner times one registry miner, repeating it reps times and keeping
// the fastest run (single runs are too noisy for speedup ratios).
func (c Config) runMiner(name string, d *dataset.Dataset, minCount int64, opts mining.Options) (*mining.Result, time.Duration, error) {
	var best *mining.Result
	var bestT time.Duration
	for rep := 0; rep < c.reps(); rep++ {
		start := time.Now()
		res, err := mining.MineBy(name, d, minCount, opts)
		if err != nil {
			return nil, 0, err
		}
		if elapsed := time.Since(start); rep == 0 || elapsed < bestT {
			best, bestT = res, elapsed
		}
	}
	return best, bestT, nil
}

// c2Fraction returns counted/generated at pass 2 (1.0 when no pass 2).
func c2Fraction(res *mining.Result) float64 {
	l2 := res.Level(2)
	if l2 == nil || l2.Stats.Generated == 0 {
		return 1
	}
	return float64(l2.Stats.Counted) / float64(l2.Stats.Generated)
}

// verifyEqual guards every experiment: OSSM runs must reproduce the
// baseline exactly.
func verifyEqual(plain, pruned *mining.Result, what string) error {
	if !plain.Equal(pruned) {
		return fmt.Errorf("bench: %s: OSSM run diverged from baseline (soundness violation)", what)
	}
	return nil
}
