package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps harness tests fast while still exercising every code
// path (real generator, real segmentation, real mining).
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.NumTx = 1500
	cfg.NumItems = 120
	cfg.Pages = 50
	cfg.BubbleSize = 40
	cfg.Support = 0.02
	cfg.BubbleSupport = 0.005
	cfg.Reps = 1
	return cfg
}

func TestRunFig4(t *testing.T) {
	cfg := tinyConfig()
	r, err := RunFig4(cfg, []int{5, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 9 { // 3 algorithms × 3 segment counts
		t.Fatalf("got %d points, want 9", len(r.Points))
	}
	frac := map[string]float64{}
	for _, p := range r.Points {
		if p.Speedup <= 0 {
			t.Errorf("%v n=%d: non-positive speedup", p.Algorithm, p.Segments)
		}
		if p.C2Fraction < 0 || p.C2Fraction > 1 {
			t.Errorf("%v n=%d: C2 fraction %f out of range", p.Algorithm, p.Segments, p.C2Fraction)
		}
		frac[p.Algorithm.String()+string(rune(p.Segments))] = p.C2Fraction
	}
	// More segments never hurt the candidate fraction for a fixed
	// algorithm along a sweep (the Figure 4(b) monotonicity).
	for _, alg := range Fig4Algorithms {
		var prev float64 = -1
		for _, n := range []int{20, 10, 5} { // descending sweep order
			for _, p := range r.Points {
				if p.Algorithm == alg && p.Segments == n {
					if prev >= 0 && p.C2Fraction < prev-1e-9 {
						t.Errorf("%v: fraction improved when segments decreased (%f -> %f)", alg, prev, p.C2Fraction)
					}
					prev = p.C2Fraction
				}
			}
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 4") || !strings.Contains(buf.String(), "Greedy") {
		t.Error("Print output missing expected content")
	}
}

func TestRunFig5(t *testing.T) {
	cfg := tinyConfig()
	a, err := RunFig5a(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("fig5a rows = %d, want 3", len(a.Rows))
	}
	// Segmentation-cost ordering: Random ≪ RC ≤ (comparable to) Greedy.
	if a.Rows[0].Strategy.String() != "Random" {
		t.Fatalf("row 0 = %v, want Random", a.Rows[0].Strategy)
	}
	if a.Rows[0].SegTime >= a.Rows[1].SegTime || a.Rows[0].SegTime >= a.Rows[2].SegTime {
		t.Errorf("Random segmentation (%v) not cheapest (RC %v, Greedy %v)",
			a.Rows[0].SegTime, a.Rows[1].SegTime, a.Rows[2].SegTime)
	}
	b, err := RunFig5b(cfg, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 2 {
		t.Fatalf("fig5b rows = %d, want 2", len(b.Rows))
	}
	var buf bytes.Buffer
	a.Print(&buf)
	b.Print(&buf)
	if !strings.Contains(buf.String(), "hybrid") {
		t.Error("fig5b Print output missing title")
	}
}

func TestRunFig6(t *testing.T) {
	cfg := tinyConfig()
	r, err := RunFig6(cfg, 8, 25, []int{10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 { // 2 strategies × 2 sizes
		t.Fatalf("points = %d, want 4", len(r.Points))
	}
	for _, p := range r.Points {
		if p.BubbleItems <= 0 {
			t.Errorf("%v %d%%: empty bubble", p.Strategy, p.BubblePct)
		}
		if p.SegTime <= 0 {
			t.Errorf("%v %d%%: no segmentation time", p.Strategy, p.BubblePct)
		}
	}
	// Larger bubbles cost more to segment with (the Figure 6(a) slope).
	for _, alg := range Fig6Strategies {
		var small, large Fig6Point
		for _, p := range r.Points {
			if p.Strategy != alg {
				continue
			}
			if p.BubblePct == 10 {
				small = p
			} else {
				large = p
			}
		}
		if small.SegTime >= large.SegTime {
			t.Errorf("%v: 10%% bubble (%v) not cheaper than 50%% (%v)", alg, small.SegTime, large.SegTime)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "(c) Fraction") {
		t.Error("Print output missing panel (c)")
	}
}

func TestRunSec7(t *testing.T) {
	cfg := tinyConfig()
	r, err := RunSec7(cfg, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.C2OSSM > r.C2Plain {
		t.Errorf("|C2| with OSSM (%d) exceeds without (%d)", r.C2OSSM, r.C2Plain)
	}
	for name, rows := range map[string][]PassRow{"plain": r.TrajectoryPlain, "ossm": r.TrajectoryOSSM} {
		if len(rows) == 0 {
			t.Fatalf("%s trajectory is empty", name)
		}
		for _, p := range rows {
			if p.K >= 2 && p.Bound > 0 && p.Generated > p.Bound {
				t.Errorf("%s pass %d: generated %d exceeds candidate bound %d", name, p.K, p.Generated, p.Bound)
			}
			if p.Counted > p.Generated {
				t.Errorf("%s pass %d: counted %d exceeds generated %d", name, p.K, p.Counted, p.Generated)
			}
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	for _, want := range []string{"DHP", "per-pass trajectory", "bound"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Print output missing %q", want)
		}
	}
}

func TestRunSkew(t *testing.T) {
	cfg := tinyConfig()
	r, err := RunSkew(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.C2Fraction < 0 || row.C2Fraction > 1 {
			t.Errorf("%s: fraction %f out of range", row.Dataset, row.C2Fraction)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "skewed-synthetic") {
		t.Error("Print output missing dataset name")
	}
}

func TestRunHosts(t *testing.T) {
	cfg := tinyConfig()
	r, err := RunHosts(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (Apriori, Partition, DepthProject, dEclat)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.WorkOSSM > row.WorkPlain {
			t.Errorf("%s: OSSM increased work (%d > %d)", row.Host, row.WorkOSSM, row.WorkPlain)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "DepthProject") {
		t.Error("Print output missing host")
	}
}

func TestRunEpisodes(t *testing.T) {
	cfg := tinyConfig()
	r, err := RunEpisodes(cfg, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Windows <= 0 {
		t.Error("no windows examined")
	}
	if r.Pruned > r.Checked {
		t.Errorf("pruned %d > checked %d", r.Pruned, r.Checked)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "episode") {
		t.Error("Print output missing summary")
	}
}

func TestRunMemory(t *testing.T) {
	cfg := tinyConfig()
	r, err := RunMemory(cfg, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	if r.Rows[0].CellBytes != 4*cfg.NumItems*r.Rows[0].Segments {
		t.Errorf("cell accounting wrong: %d", r.Rows[0].CellBytes)
	}
	if r.Rows[0].SizeBytes != 16*cfg.NumItems*(r.Rows[0].Segments+1) {
		t.Errorf("size accounting wrong: %d", r.Rows[0].SizeBytes)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "MB") {
		t.Error("Print output missing size unit")
	}
}

func TestRunKernels(t *testing.T) {
	cfg := tinyConfig()
	r, err := RunKernels(cfg, []int{4, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 8 { // 2 segment counts × {pair, triple, quad, quint}
		t.Fatalf("points = %d, want 8", len(r.Points))
	}
	for _, p := range r.Points {
		if p.ScalarNsOp <= 0 || p.AtLeastNsOp <= 0 || p.BatchNsOp <= 0 || p.BatchU32NsOp <= 0 {
			t.Errorf("%s n=%d: missing timings %+v", p.Kind, p.Segments, p)
		}
		if p.BatchSpeedup <= 0 || p.QuantSpeedup <= 0 {
			t.Errorf("%s n=%d: non-positive speedup", p.Kind, p.Segments)
		}
		if p.Lane == "" {
			t.Errorf("%s n=%d: missing dominant lane", p.Kind, p.Segments)
		}
		if p.EarlyExitRate < 0 || p.EarlyExitRate > 1 || p.AbandonRate < 0 || p.AbandonRate > 1 {
			t.Errorf("%s n=%d: shortcut rates out of range", p.Kind, p.Segments)
		}
		// Multi-block maps must show the shortcut machinery firing; the
		// skewed fixture decides most candidates before the final block.
		if p.Segments > 16 && p.EarlyExitRate+p.AbandonRate == 0 {
			t.Errorf("%s n=%d: no early decisions on a multi-block map", p.Kind, p.Segments)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("Print output missing header")
	}
	// The floor gate: a token margin always passes a real run, a deep
	// pair point at 1x is always under its 2.2x floor.
	if err := r.Check(0.01); err != nil {
		t.Errorf("Check with a token margin failed: %v", err)
	}
	bad := &KernelsResult{Points: []KernelPoint{{Kind: "pair", Segments: 4096, BatchSpeedup: 1.0}}}
	if err := bad.Check(1); err == nil {
		t.Error("Check accepted a deep pair point below its floor")
	}
}

func TestRunC2Method(t *testing.T) {
	cfg := tinyConfig()
	r, err := RunC2Method(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.HashPlain <= 0 || r.HashOSSM <= 0 || r.TriPlain <= 0 || r.TriOSSM <= 0 {
		t.Error("missing timings")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "triangular") {
		t.Error("Print output missing method")
	}
}

func TestConfigDatasets(t *testing.T) {
	cfg := tinyConfig()
	reg, err := cfg.Regular()
	if err != nil {
		t.Fatal(err)
	}
	if reg.NumTx() != cfg.NumTx || reg.NumItems() != cfg.NumItems {
		t.Errorf("regular shape %d/%d", reg.NumTx(), reg.NumItems())
	}
	sk, err := cfg.Skewed()
	if err != nil {
		t.Fatal(err)
	}
	if sk.NumTx() != cfg.NumTx {
		t.Errorf("skewed NumTx %d", sk.NumTx())
	}
	al, err := cfg.Alarm()
	if err != nil {
		t.Fatal(err)
	}
	if al.NumItems() != 200 {
		t.Errorf("alarm NumItems %d, want 200", al.NumItems())
	}
}

func TestRunExtended(t *testing.T) {
	cfg := tinyConfig()
	r, err := RunExtended(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExtBytes <= r.BaseBytes {
		t.Error("extended map claims no extra space")
	}
	if r.ExtC2Frac > r.BaseC2Frac+1e-9 {
		t.Errorf("extended bound pruned less (%f) than the base (%f)", r.ExtC2Frac, r.BaseC2Frac)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "footnote 3") {
		t.Error("Print output missing title")
	}
}

func TestRunMinSeg(t *testing.T) {
	cfg := tinyConfig()
	r, err := RunMinSeg(cfg, []int{4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MinSegments < 1 || row.MinSegments > row.Pages {
			t.Errorf("m=%d: n_min = %d out of range", row.Pages, row.MinSegments)
		}
		if row.Theoretical != row.Pages { // k=120 ⇒ 2^k−k ≫ m
			t.Errorf("m=%d: theoretical = %d, want m", row.Pages, row.Theoretical)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Theorem 1") {
		t.Error("Print output missing title")
	}
}
