package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
)

// KernelPoint measures one (candidate shape, segment count) cell of the
// bound-kernel microbenchmark. Every ns/op figure times one whole
// generation of KernelCands candidates, so the three kernels are
// directly comparable: the scalar baseline is a full UpperBound walk
// per candidate, AtLeast the per-candidate decision kernel, Batch the
// row-amortized batch kernel.
type KernelPoint struct {
	Kind          string  `json:"kind"` // "pair" or "triple"
	Segments      int     `json:"segments"`
	Candidates    int     `json:"candidates"`
	MinSup        int64   `json:"minsup"`
	ScalarNsOp    float64 `json:"scalar_ns_per_op"`
	AtLeastNsOp   float64 `json:"atleast_ns_per_op"`
	BatchNsOp     float64 `json:"batch_ns_per_op"`
	BatchSpeedup  float64 `json:"batch_speedup_vs_scalar"`
	EarlyExitRate float64 `json:"early_exit_rate"`
	AbandonRate   float64 `json:"abandon_rate"`
}

// KernelsResult is the bound-kernel microbenchmark (DESIGN.md §7): the
// decision and batch kernels against the scalar bound across segment
// counts, on the candidate-2 wall (pairs) and the first post-wall
// generation (triples). Every run re-verifies the equivalence guarantee
// before timing: each kernel's decisions must be bit-identical to the
// scalar bound's.
type KernelsResult struct {
	Points []KernelPoint `json:"points"`
}

// KernelCands is the generation size each measurement decides per op.
const KernelCands = 1024

// kernelSegDefaults spans one block (16), the small-lane dispatch
// boundary (64, the last size served per-candidate) and its first
// blocked size (128), a typical serving index (256) and a deep
// segmentation (4096) — the 64/128 pair pins the batch front-end's
// size-dispatch crossover on both sides.
var kernelSegDefaults = []int{16, 64, 128, 256, 4096}

// kernelMap builds a skewed synthetic support matrix: item i is drawn
// from [0, 200≫(i mod 8)), a power-ish popularity law that disperses
// candidate bounds the way real frequency counting does.
func kernelMap(r *rand.Rand, segs, items int) (*core.Map, error) {
	rows := make([][]uint32, segs)
	for s := range rows {
		rows[s] = make([]uint32, items)
		for i := range rows[s] {
			rows[s][i] = uint32(r.Intn(1 + 200>>(i%8)))
		}
	}
	return core.NewMap(rows)
}

// kernelCands draws a generation of distinct-item candidates of the
// requested width.
func kernelCands(r *rand.Rand, width, items, n int) []dataset.Itemset {
	cands := make([]dataset.Itemset, n)
	for i := range cands {
		for {
			picks := make([]dataset.Item, width)
			for j := range picks {
				picks[j] = dataset.Item(r.Intn(items))
			}
			cands[i] = dataset.NewItemset(picks...)
			if len(cands[i]) == width {
				break
			}
		}
	}
	return cands
}

// timeKernel reports ns per call of f, adaptively repeating until the
// measurement is long enough to be stable.
func timeKernel(f func()) float64 {
	f() // warm caches and scratch pools
	iters := 0
	start := time.Now()
	for time.Since(start) < 25*time.Millisecond || iters < 3 {
		f()
		iters++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// RunKernels measures the bound kernels across segCounts (nil ⇒ 16,
// 256, 4096), verifying kernel/scalar decision equivalence on every
// cell before timing it.
func RunKernels(cfg Config, segCounts []int) (*KernelsResult, error) {
	if len(segCounts) == 0 {
		segCounts = kernelSegDefaults
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	out := &KernelsResult{}
	for _, segs := range segCounts {
		m, err := kernelMap(r, segs, cfg.NumItems)
		if err != nil {
			return nil, err
		}
		for _, kind := range []struct {
			name  string
			width int
		}{{"pair", 2}, {"triple", 3}} {
			cands := kernelCands(r, kind.width, cfg.NumItems, KernelCands)
			bounds := m.UpperBoundBatch(cands, nil)
			sorted := append([]int64{}, bounds...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			minsup := sorted[len(sorted)/2] // discriminative: ~half admit
			if minsup < 1 {
				minsup = 1
			}

			// Equivalence check first: the timings below are only
			// meaningful if every kernel answers exactly like the scalar
			// bound.
			dec := make([]bool, len(cands))
			st := m.BoundBatch(cands, minsup, dec)
			for i, x := range cands {
				want := m.UpperBound(x) >= minsup
				if dec[i] != want {
					return nil, fmt.Errorf("bench: BoundBatch disagrees with UpperBound on %v at %d segments", x, segs)
				}
				if m.BoundAtLeast(x, minsup) != want {
					return nil, fmt.Errorf("bench: BoundAtLeast disagrees with UpperBound on %v at %d segments", x, segs)
				}
			}

			scalarNs := timeKernel(func() {
				for _, x := range cands {
					if m.UpperBound(x) >= minsup {
						_ = x
					}
				}
			})
			atLeastNs := timeKernel(func() {
				for _, x := range cands {
					_ = m.BoundAtLeast(x, minsup)
				}
			})
			batchNs := timeKernel(func() {
				m.BoundBatch(cands, minsup, dec)
			})
			out.Points = append(out.Points, KernelPoint{
				Kind:          kind.name,
				Segments:      segs,
				Candidates:    len(cands),
				MinSup:        minsup,
				ScalarNsOp:    scalarNs,
				AtLeastNsOp:   atLeastNs,
				BatchNsOp:     batchNs,
				BatchSpeedup:  scalarNs / batchNs,
				EarlyExitRate: float64(st.EarlyExit) / float64(len(cands)),
				AbandonRate:   float64(st.Abandoned) / float64(len(cands)),
			})
		}
	}
	return out, nil
}

// Print renders the microbenchmark as a table.
func (r *KernelsResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Bound kernels: ns per generation (scalar UpperBound vs decision kernels)")
	fmt.Fprintf(w, "%-7s %9s %10s %12s %12s %12s %8s %7s %7s\n",
		"kind", "segments", "cands", "scalar", "atleast", "batch", "speedup", "exit%", "abdn%")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-7s %9d %10d %12.0f %12.0f %12.0f %7.2fx %6.1f%% %6.1f%%\n",
			p.Kind, p.Segments, p.Candidates, p.ScalarNsOp, p.AtLeastNsOp, p.BatchNsOp,
			p.BatchSpeedup, 100*p.EarlyExitRate, 100*p.AbandonRate)
	}
}
