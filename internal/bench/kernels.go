package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/dataset"
)

// KernelPoint measures one (candidate shape, segment count) cell of the
// bound-kernel microbenchmark. Every ns/op figure times one whole
// generation of KernelCands candidates, so the kernels are directly
// comparable: the scalar baseline is a full uint32 UpperBound walk per
// candidate, AtLeast the per-candidate decision kernel, Batch the
// size-dispatched batch kernel on its default (quantized when possible)
// lanes, BatchU32 the same batch call with the uint16 mirror disabled —
// the quantized-vs-uint32 lane delta is their ratio.
type KernelPoint struct {
	Kind          string  `json:"kind"` // "pair", "triple", "quad" or "quint"
	Segments      int     `json:"segments"`
	Candidates    int     `json:"candidates"`
	MinSup        int64   `json:"minsup"`
	Lane          string  `json:"batch_lane"` // dominant dispatch lane of the batch call
	ScalarNsOp    float64 `json:"scalar_ns_per_op"`
	AtLeastNsOp   float64 `json:"atleast_ns_per_op"`
	BatchNsOp     float64 `json:"batch_ns_per_op"`
	BatchU32NsOp  float64 `json:"batch_u32_ns_per_op"`
	BatchSpeedup  float64 `json:"batch_speedup_vs_scalar"`
	QuantSpeedup  float64 `json:"quant_speedup_vs_u32"`
	EarlyExitRate float64 `json:"early_exit_rate"`
	AbandonRate   float64 `json:"abandon_rate"`
}

// KernelsResult is the bound-kernel microbenchmark (DESIGN.md §7): the
// decision and batch kernels against the scalar bound across segment
// counts, on the candidate-2 wall (pairs) and the post-wall generations
// (triples, quads, quints — the widths the k-item lanes serve). Every
// run re-verifies the equivalence guarantee before timing: each
// kernel's decisions, on both the quantized and the uint32 lanes, must
// be bit-identical to the scalar bound's.
type KernelsResult struct {
	Points []KernelPoint `json:"points"`
}

// KernelCands is the generation size each measurement decides per op.
const KernelCands = 1024

// kernelSegDefaults spans one block (16), the pair/triple small-lane
// crossover neighborhood (64), the first blocked/deep sizes (128, 256),
// the wide-block schedule boundary (1024) and a deep segmentation
// (4096, past the flat crossover for quads and quints).
var kernelSegDefaults = []int{16, 64, 128, 256, 1024, 4096}

// kernelKinds are the candidate shapes: one per uniform width the
// level-wise pass path produces.
var kernelKinds = []struct {
	Name  string
	Width int
}{{"pair", 2}, {"triple", 3}, {"quad", 4}, {"quint", 5}}

// kernelMap builds a skewed synthetic support matrix: item i is drawn
// from [0, 200≫(i mod 8)), a power-ish popularity law that disperses
// candidate bounds the way real frequency counting does.
func kernelMap(r *rand.Rand, segs, items int) (*core.Map, error) {
	rows := make([][]uint32, segs)
	for s := range rows {
		rows[s] = make([]uint32, items)
		for i := range rows[s] {
			rows[s][i] = uint32(r.Intn(1 + 200>>(i%8)))
		}
	}
	return core.NewMap(rows)
}

// kernelCands draws a generation of distinct-item candidates of the
// requested width.
func kernelCands(r *rand.Rand, width, items, n int) []dataset.Itemset {
	cands := make([]dataset.Itemset, n)
	for i := range cands {
		for {
			picks := make([]dataset.Item, width)
			for j := range picks {
				picks[j] = dataset.Item(r.Intn(items))
			}
			cands[i] = dataset.NewItemset(picks...)
			if len(cands[i]) == width {
				break
			}
		}
	}
	return cands
}

// timeKernel reports ns per call of f: the minimum over five adaptive
// ~20ms measurement windows. Small-map generations run in tens of
// microseconds, where a single averaged window swings ±50% with
// scheduler noise; the min-of-windows is the standard stable estimator
// for a deterministic kernel.
func timeKernel(f func()) float64 {
	f() // warm caches and scratch pools
	best := 0.0
	for w := 0; w < 5; w++ {
		iters := 0
		start := time.Now()
		for time.Since(start) < 20*time.Millisecond || iters < 3 {
			f()
			iters++
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// RunKernels measures the bound kernels across segCounts (nil ⇒ the
// default 16→4096 sweep) at widths 2–5, verifying kernel/scalar
// decision equivalence on every cell — on both the quantized and the
// uint32 lanes — before timing it.
func RunKernels(cfg Config, segCounts []int) (*KernelsResult, error) {
	if len(segCounts) == 0 {
		segCounts = kernelSegDefaults
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	out := &KernelsResult{}
	for _, segs := range segCounts {
		m, err := kernelMap(r, segs, cfg.NumItems)
		if err != nil {
			return nil, err
		}
		for _, kind := range kernelKinds {
			cands := kernelCands(r, kind.Width, cfg.NumItems, KernelCands)
			bounds := m.UpperBoundBatch(cands, nil)
			sorted := append([]int64{}, bounds...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			minsup := sorted[len(sorted)/2] // discriminative: ~half admit
			if minsup < 1 {
				minsup = 1
			}

			// Equivalence check first: the timings below are only
			// meaningful if every kernel answers exactly like the scalar
			// bound, with and without the uint16 mirror.
			dec := make([]bool, len(cands))
			decU32 := make([]bool, len(cands))
			st := m.BoundBatch(cands, minsup, dec)
			m.SetQuantized(false)
			m.BoundBatch(cands, minsup, decU32)
			m.SetQuantized(true)
			for i, x := range cands {
				want := m.UpperBound(x) >= minsup
				if dec[i] != want {
					return nil, fmt.Errorf("bench: BoundBatch disagrees with UpperBound on %v at %d segments", x, segs)
				}
				if decU32[i] != want {
					return nil, fmt.Errorf("bench: uint32-lane BoundBatch disagrees with UpperBound on %v at %d segments", x, segs)
				}
				if m.BoundAtLeast(x, minsup) != want {
					return nil, fmt.Errorf("bench: BoundAtLeast disagrees with UpperBound on %v at %d segments", x, segs)
				}
			}

			scalarNs := timeKernel(func() {
				for _, x := range cands {
					if m.UpperBound(x) >= minsup {
						_ = x
					}
				}
			})
			atLeastNs := timeKernel(func() {
				for _, x := range cands {
					_ = m.BoundAtLeast(x, minsup)
				}
			})
			batchNs := timeKernel(func() {
				m.BoundBatch(cands, minsup, dec)
			})
			m.SetQuantized(false)
			batchU32Ns := timeKernel(func() {
				m.BoundBatch(cands, minsup, decU32)
			})
			m.SetQuantized(true)
			out.Points = append(out.Points, KernelPoint{
				Kind:          kind.Name,
				Segments:      segs,
				Candidates:    len(cands),
				MinSup:        minsup,
				Lane:          dominantLane(st),
				ScalarNsOp:    scalarNs,
				AtLeastNsOp:   atLeastNs,
				BatchNsOp:     batchNs,
				BatchU32NsOp:  batchU32Ns,
				BatchSpeedup:  scalarNs / batchNs,
				QuantSpeedup:  batchU32Ns / batchNs,
				EarlyExitRate: float64(st.EarlyExit) / float64(len(cands)),
				AbandonRate:   float64(st.Abandoned) / float64(len(cands)),
			})
		}
	}
	return out, nil
}

// dominantLane names the dispatch lane that decided the most candidates
// of a batch call.
func dominantLane(st core.BatchStats) string {
	best, bestN := core.LaneScalar, int64(-1)
	for l := 0; l < core.NumKernelLanes; l++ {
		if n := st.Lanes[l].Decided; n > bestN {
			best, bestN = core.KernelLane(l), n
		}
	}
	return best.String()
}

// KernelFloor is the regression floor for batch_speedup_vs_scalar at
// one sweep point: the regime-specific speedup the batch lanes must
// keep over the scalar bound, set ~30% under the values recorded in
// BENCH_5.json on the reference machine. Narrow candidates (pairs,
// triples) ride the specialized unrolled lanes and clear high bars at
// every depth — their deep floor of 2.2 is the kernel-round-3
// acceptance bar itself. Wide candidates (quads, quints) pay k column
// loads per segment just like the scalar walk, so their shallow-map
// headroom is structurally thin and the floor only asks that the
// dispatch never does worse than ~scalar.
func KernelFloor(kind string, segs int) float64 {
	narrow := kind == "pair" || kind == "triple"
	switch {
	case segs >= 1024: // deep: quantized per-candidate or flat-blocked lanes
		if narrow {
			return 2.2
		}
		if kind == "quad" {
			return 1.4
		}
		return 1.2
	case segs >= 128: // mid: deep column lanes past the small crossover
		if narrow {
			return 2.0
		}
		return 1.2
	default: // small maps: per-candidate column kernels
		if narrow {
			return 1.5
		}
		return 0.7
	}
}

// Check verifies every sweep point clears margin × KernelFloor — the
// `ossm-bench kernels -check` regression gate. margin 1 is the full
// gate; the smoke gate in `make test` passes a reduced margin so a
// loaded machine doesn't flake it.
func (r *KernelsResult) Check(margin float64) error {
	if margin <= 0 {
		margin = 1
	}
	var failed []string
	for _, p := range r.Points {
		floor := margin * KernelFloor(p.Kind, p.Segments)
		if p.BatchSpeedup < floor {
			failed = append(failed,
				fmt.Sprintf("%s@%d: batch speedup %.2fx below the %.2fx floor", p.Kind, p.Segments, p.BatchSpeedup, floor))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("bench: %d of %d kernel sweep points under their speedup floor:\n  %s",
			len(failed), len(r.Points), joinLines(failed))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// Print renders the microbenchmark as a table.
func (r *KernelsResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Bound kernels: ns per generation (scalar UpperBound vs decision kernels)")
	fmt.Fprintf(w, "%-7s %8s %7s %-7s %11s %11s %11s %11s %8s %6s %6s %6s\n",
		"kind", "segments", "cands", "lane", "scalar", "atleast", "batch", "batch-u32", "speedup", "qx", "exit%", "abdn%")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-7s %8d %7d %-7s %11.0f %11.0f %11.0f %11.0f %7.2fx %5.2fx %5.1f%% %5.1f%%\n",
			p.Kind, p.Segments, p.Candidates, p.Lane, p.ScalarNsOp, p.AtLeastNsOp, p.BatchNsOp, p.BatchU32NsOp,
			p.BatchSpeedup, p.QuantSpeedup, 100*p.EarlyExitRate, 100*p.AbandonRate)
	}
}
