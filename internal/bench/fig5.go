package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/ossm-mining/ossm/internal/core"
	"github.com/ossm-mining/ossm/internal/mining"
)

// StrategyRow is one line of the Figure 5 tables: a segmentation
// strategy with its compile-time cost and the query-time speedup its
// OSSM delivers.
type StrategyRow struct {
	Strategy   core.Algorithm
	SegTime    time.Duration
	Speedup    float64
	C2Fraction float64
}

// Fig5Result reproduces one panel of Figure 5.
type Fig5Result struct {
	Title     string
	Pages     int
	Segments  int
	Mid       int // hybrid n_mid (0 for the pure panel)
	PlainTime time.Duration
	Rows      []StrategyRow
}

// RunFig5a reproduces Figure 5(a): the pure strategies (Random, RC,
// Greedy) at m pages and n_user segments — segmentation cost versus the
// speedup purchased.
func RunFig5a(cfg Config, nUser int) (*Fig5Result, error) {
	return runFig5(cfg, nUser, 0, []core.Algorithm{core.AlgRandom, core.AlgRC, core.AlgGreedy},
		"Figure 5(a) — pure strategies")
}

// RunFig5b reproduces Figure 5(b): the hybrid strategies (Random-RC,
// Random-Greedy) with the Random phase stopping at nMid segments.
func RunFig5b(cfg Config, nUser, nMid int) (*Fig5Result, error) {
	return runFig5(cfg, nUser, nMid, []core.Algorithm{core.AlgRandomRC, core.AlgRandomGreedy},
		"Figure 5(b) — hybrid strategies")
}

func runFig5(cfg Config, nUser, nMid int, algs []core.Algorithm, title string) (*Fig5Result, error) {
	d, err := cfg.Regular()
	if err != nil {
		return nil, err
	}
	pages, rows := cfg.pageRows(d)
	bubble := cfg.bubble(d, rows)
	minCount := mining.MinCountFor(d, cfg.Support)

	plain, err := cfg.runApriori(d, minCount, nil)
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{
		Title:     title,
		Pages:     len(pages),
		Segments:  nUser,
		Mid:       nMid,
		PlainTime: plain.elapsed,
	}
	for _, alg := range algs {
		seg, err := core.Segment(rows, core.Options{
			Algorithm:      alg,
			TargetSegments: nUser,
			MidSegments:    nMid,
			Bubble:         bubble,
			Seed:           cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		run, err := cfg.runApriori(d, minCount, seg.Map)
		if err != nil {
			return nil, err
		}
		if err := verifyEqual(plain.res, run.res, fmt.Sprintf("fig5 %v", alg)); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, StrategyRow{
			Strategy:   alg,
			SegTime:    seg.Elapsed,
			Speedup:    float64(plain.elapsed) / float64(run.elapsed),
			C2Fraction: c2Fraction(run.res),
		})
	}
	return out, nil
}

// Print renders the panel as a text table.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintf(w, "%s — m=%d pages, n_user=%d", r.Title, r.Pages, r.Segments)
	if r.Mid > 0 {
		fmt.Fprintf(w, ", n_mid=%d", r.Mid)
	}
	fmt.Fprintf(w, " (baseline Apriori: %v)\n", r.PlainTime.Round(time.Millisecond))
	fmt.Fprintf(w, "%-16s %-18s %-10s %-10s\n", "strategy", "segmentation time", "speedup", "C2 frac")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %-18v %-10.2f %-10.3f\n",
			row.Strategy, row.SegTime.Round(time.Microsecond), row.Speedup, row.C2Fraction)
	}
}
