package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestItemVariability(t *testing.T) {
	m := mustMap(t, [][]uint32{
		{10, 0, 5},
		{10, 20, 0},
	})
	// Item 0: perfectly even → 0.
	if got := m.ItemVariability(0); got != 0 {
		t.Errorf("even item variability = %g, want 0", got)
	}
	// Item 1: [0,20], mean 10, sd 10 → CV 1.
	if got := m.ItemVariability(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("concentrated item variability = %g, want 1", got)
	}
	// Item 2: [5,0], mean 2.5, sd 2.5 → CV 1.
	if got := m.ItemVariability(2); math.Abs(got-1) > 1e-12 {
		t.Errorf("variability = %g, want 1", got)
	}
	// Single segment → 0 by definition.
	one := mustMap(t, [][]uint32{{7, 3}})
	if one.ItemVariability(0) != 0 {
		t.Error("single-segment variability should be 0")
	}
	// Absent item → 0.
	zero := mustMap(t, [][]uint32{{0, 1}, {0, 1}})
	if zero.ItemVariability(0) != 0 {
		t.Error("absent item variability should be 0")
	}
}

func TestHeterogeneityOrdersSkew(t *testing.T) {
	// Disjoint halves are maximally heterogeneous; identical segments are
	// not heterogeneous at all.
	flat := mustMap(t, [][]uint32{{10, 10}, {10, 10}})
	skewed := mustMap(t, [][]uint32{{20, 0}, {0, 20}})
	if flat.Heterogeneity() != 0 {
		t.Errorf("flat heterogeneity = %g, want 0", flat.Heterogeneity())
	}
	if skewed.Heterogeneity() <= flat.Heterogeneity() {
		t.Error("skewed map not more heterogeneous than flat")
	}
	if got := skewed.Heterogeneity(); math.Abs(got-1) > 1e-12 {
		t.Errorf("disjoint-halves heterogeneity = %g, want 1", got)
	}
	empty := mustMap(t, [][]uint32{{0, 0}, {0, 0}})
	if empty.Heterogeneity() != 0 {
		t.Error("empty map heterogeneity should be 0")
	}
}

func TestHeterogeneityTracksGeneratorSkew(t *testing.T) {
	// The seasonal generator must register as more heterogeneous than the
	// vanilla one under the same contiguous segmentation.
	mk := func(seasonal bool) *Map {
		d := seasonalOrRegular(t, seasonal)
		rows := dataset.PageCounts(d, dataset.PaginateN(d, 20))
		res, err := Segment(rows, Options{Algorithm: AlgRandom, TargetSegments: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.Map
	}
	if mk(true).Heterogeneity() <= mk(false).Heterogeneity() {
		t.Error("seasonal data not more heterogeneous than regular")
	}
}

// seasonalOrRegular builds a small two-phase or uniform dataset without
// importing gen (which would cycle).
func seasonalOrRegular(t *testing.T, seasonal bool) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(4))
	b := dataset.NewBuilder(20)
	for i := 0; i < 1000; i++ {
		lo, hi := 0, 20
		if seasonal {
			if i < 500 {
				lo, hi = 0, 10
			} else {
				lo, hi = 10, 20
			}
		}
		var tx []dataset.Item
		for j := 0; j < 4; j++ {
			tx = append(tx, dataset.Item(lo+r.Intn(hi-lo)))
		}
		if err := b.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestHottestSegment(t *testing.T) {
	m := mustMap(t, [][]uint32{
		{1, 9},
		{5, 9},
		{3, 2},
	})
	if s, sup := m.HottestSegment(0); s != 1 || sup != 5 {
		t.Errorf("HottestSegment(0) = %d,%d; want 1,5", s, sup)
	}
	// Tie between segments 0 and 1 for item 1 → lowest index wins.
	if s, sup := m.HottestSegment(1); s != 0 || sup != 9 {
		t.Errorf("HottestSegment(1) = %d,%d; want 0,9", s, sup)
	}
}

func TestVariabilityNonNegativeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		k := 1 + r.Intn(6)
		rows := make([][]uint32, n)
		for i := range rows {
			rows[i] = randomRow(r, k, 30)
		}
		m, err := NewMap(rows)
		if err != nil {
			return false
		}
		for it := 0; it < k; it++ {
			if m.ItemVariability(dataset.Item(it)) < 0 {
				return false
			}
		}
		return m.Heterogeneity() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSkewSignal(t *testing.T) {
	// Disjoint halves: heterogeneity 1 vs noise √(1/20) ≈ 0.224 → ≈ 4.5.
	skewed := mustMap(t, [][]uint32{{20, 0}, {0, 20}})
	if got := skewed.SkewSignal(); got < 3 {
		t.Errorf("disjoint halves SkewSignal = %g, want ≫ 1", got)
	}
	// Perfectly even: measured 0 → signal 0 (below noise).
	flat := mustMap(t, [][]uint32{{10, 10}, {10, 10}})
	if got := flat.SkewSignal(); got >= 1 {
		t.Errorf("flat SkewSignal = %g, want < 1", got)
	}
	// Single segment: defined as 1.
	one := mustMap(t, [][]uint32{{5, 5}})
	if one.SkewSignal() != 1 {
		t.Error("single-segment SkewSignal should be 1")
	}
	// Multinomially sampled uniform data should sit near 1.
	r := rand.New(rand.NewSource(2))
	rows := make([][]uint32, 10)
	for i := range rows {
		rows[i] = make([]uint32, 30)
	}
	for it := 0; it < 30; it++ {
		for c := 0; c < 2000; c++ {
			rows[r.Intn(10)][it]++
		}
	}
	m := mustMap(t, rows)
	if got := m.SkewSignal(); got < 0.7 || got > 1.4 {
		t.Errorf("uniform multinomial SkewSignal = %g, want ≈ 1", got)
	}
}
