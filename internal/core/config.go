package core

import (
	"math"
	"sort"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// Configuration describes the rank order of singleton supports within a
// segment (Section 4.1): the descriptor (x_{i1} ≥ x_{i2} ≥ … ≥ x_{ik})
// as a permutation of the items, most-supported first. Ties are broken by
// the canonical item enumeration (smaller item id first), exactly as
// footnote 4 of the paper prescribes.
type Configuration []dataset.Item

// ConfigurationOf computes the configuration of a segment from its
// singleton support row.
func ConfigurationOf(counts []uint32) Configuration {
	cfg := make(Configuration, len(counts))
	for i := range cfg {
		cfg[i] = dataset.Item(i)
	}
	sort.SliceStable(cfg, func(a, b int) bool {
		ca, cb := counts[cfg[a]], counts[cfg[b]]
		if ca != cb {
			return ca > cb
		}
		return cfg[a] < cfg[b]
	})
	return cfg
}

// Equal reports whether two configurations are the same permutation.
func (c Configuration) Equal(d Configuration) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical byte-string key for map lookups. It is
// injective on configurations over domains of up to 2^32 items.
func (c Configuration) Key() string {
	b := make([]byte, 0, 4*len(c))
	for _, it := range c {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

// SameConfiguration reports whether two support rows have the same
// configuration. It avoids materializing permutations on the hot path.
func SameConfiguration(a, b []uint32) bool {
	return ConfigurationOf(a).Equal(ConfigurationOf(b))
}

// MergeRows adds row b into row a element-wise (the support row of the
// merged segment T_i ∪ T_j).
func MergeRows(a, b []uint32) []uint32 {
	out := make([]uint32, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// MergeSameConfigurations merges every group of input segments that share
// a configuration into one combined segment (the repeated application of
// Lemma 1). It returns the merged support rows together with, for each
// output segment, the indices of the input segments composing it. Bounds
// are provably unchanged by this reduction.
func MergeSameConfigurations(rows [][]uint32) (merged [][]uint32, groups [][]int) {
	index := make(map[string]int, len(rows))
	for i, row := range rows {
		key := ConfigurationOf(row).Key()
		if gi, ok := index[key]; ok {
			merged[gi] = MergeRows(merged[gi], row)
			groups[gi] = append(groups[gi], i)
			continue
		}
		index[key] = len(merged)
		cp := make([]uint32, len(row))
		copy(cp, row)
		merged = append(merged, cp)
		groups = append(groups, []int{i})
	}
	return merged, groups
}

// MinSegments returns n_min for the given initial segments (pages): the
// number of distinct configurations among them. By Theorem 1 (and
// Corollary 1 for the page version), an OSSM with one segment per
// distinct configuration — obtained by rearranging and merging
// same-configuration units — has ubsup(X) equal to the bound of the
// un-merged map for every itemset X, and no smaller segment count does.
func MinSegments(rows [][]uint32) int {
	seen := make(map[string]struct{}, len(rows))
	for _, row := range rows {
		seen[ConfigurationOf(row).Key()] = struct{}{}
	}
	return len(seen)
}

// TheoreticalMinSegments returns the general-case bound as stated by
// Theorem 1 of the paper: min(m, 2^k − k), the worst-case number of
// segments required for a lossless OSSM over k items and m initial units.
//
// Caveat (documented in DESIGN.md): distinct strict configurations are
// permutations and can number up to k!, which exceeds 2^k − k for k ≥ 3;
// MinSegments therefore reports values above this formula on adversarial
// inputs. We expose the formula exactly as published.
//
// For k > 62 the second term overflows int64 and the result is simply m
// (the first term always wins at that scale).
func TheoreticalMinSegments(k, m int) int {
	if k > 62 {
		return m
	}
	configs := int64(1)<<uint(k) - int64(k)
	if int64(m) < configs {
		return m
	}
	return int(configs)
}

// NumDistinctConfigurations returns 2^k − k for small k (the count the
// paper derives in Section 4.2: k! permutations collapse to 2^k − k
// distinguishable configurations), and math.MaxInt for k > 62.
func NumDistinctConfigurations(k int) int {
	if k > 62 {
		return math.MaxInt
	}
	return int(int64(1)<<uint(k) - int64(k))
}
