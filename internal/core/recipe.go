package core

// Scenario describes an application for the recommended recipe of
// Figure 7. Each field corresponds to a branch of the decision tree.
type Scenario struct {
	// LargeSegmentBudget: the application can afford a lot of space for
	// the OSSM, i.e. n_user is large.
	LargeSegmentBudget bool
	// SkewedData: the data departs strongly from a uniform distribution.
	SkewedData bool
	// SegmentationCostCritical: the one-time "compile-time" segmentation
	// cost matters for this application.
	SegmentationCostCritical bool
	// VeryManyPages: the initial page count m is very large (the paper's
	// running example: 50 000 pages ≈ 5 million transactions).
	VeryManyPages bool
}

// Recommendation is the recipe's output: which algorithm to run and
// whether to restrict sumdiff to a bubble list.
type Recommendation struct {
	Algorithm Algorithm
	UseBubble bool
}

// Recommend implements the recipe of Figure 7 and Section 6.4:
//
//   - large n_user and skewed data        → Random (bubble irrelevant);
//   - otherwise, cost not an issue        → Greedy with the bubble list;
//   - otherwise, very large m             → Random-RC with the bubble list;
//   - otherwise                           → Random-Greedy with the bubble list.
func Recommend(s Scenario) Recommendation {
	if s.LargeSegmentBudget && s.SkewedData {
		return Recommendation{Algorithm: AlgRandom}
	}
	if !s.SegmentationCostCritical {
		return Recommendation{Algorithm: AlgGreedy, UseBubble: true}
	}
	if s.VeryManyPages {
		return Recommendation{Algorithm: AlgRandomRC, UseBubble: true}
	}
	return Recommendation{Algorithm: AlgRandomGreedy, UseBubble: true}
}
