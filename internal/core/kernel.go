package core

import (
	"sync"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// Bound kernels (DESIGN.md §7). The scalar UpperBound walk answers "what
// is ubsup(X)?", but every caller on the mining hot path only asks the
// cheaper decision question "is ubsup(X) ≥ minsup?". These kernels answer
// it while scanning as few segments as possible, with two symmetric
// shortcuts that both preserve bit-identical decisions with the exact
// bound:
//
//   - early exit: the bound is a sum of non-negative per-segment terms,
//     so once the accumulated partial sum reaches minsup the full bound
//     cannot be smaller — admit without scanning further.
//   - early abandon: the remaining contribution of segments t ≥ s is at
//     most min_{x∈X} suffix[x][s] (the precomputed per-item suffix
//     remainders, see Map), so when acc + remainder < minsup the full
//     bound cannot reach minsup — reject without scanning further.
//
// The batch kernels are size-dispatched across four lanes (KernelLane):
// small maps take per-candidate column kernels; mid-depth maps stream
// the segment-major rows block by block, amortizing each cache-warm row
// across every candidate still undecided (uniform-length generations
// ride flat per-k lanes with no slice-header indirection); deep maps —
// where the matrix outgrows cache and memory traffic dominates — take
// per-candidate flat column lanes over the quantized uint16 mirror
// (quant.go), halving the bytes streamed per decision. Every lane is
// generic over the cell type (uint16 mirror or uint32 store) and widens
// into the same int64 accumulation, so every decision is bit-identical
// to the reference bound regardless of lane. Per-call scratch lives in
// a sync.Pool so the batch loops are allocation-free at steady state.

// boundOutcome records how a decision-mode bound call terminated.
type boundOutcome uint8

const (
	boundFull      boundOutcome = iota // scanned every segment (or decided from totals)
	boundEarlyExit                     // admitted before the final segment
	boundAbandoned                     // rejected before the final segment
)

// cells constrains the kernel element type: the uint32 backing store or
// its quantized uint16 mirror. Generic kernels widen every cell into
// int64 accumulation, so both instantiations produce bit-identical
// bounds and decisions.
type cells interface{ uint16 | uint32 }

// KernelLane identifies the data path that settled a bound decision.
// The batch front-end dispatches every generation across these lanes by
// segment count, candidate width and mirror availability; the counts
// surface through Pruner.Lanes → mining → telemetry → /v1/metrics as
// the lane hit rates (ossm_mine_kernel_total{outcome,lane}).
type KernelLane uint8

const (
	// LaneScalar is the generic fallback: the blocked row loop over
	// mixed-width generations, whose inner loop pays per-candidate
	// slice-header indirection. Uniform generations never land here.
	LaneScalar KernelLane = iota
	// LaneSmall is the per-candidate width-specialized uint32 column
	// kernels: the ≤crossover small-map dispatch, single decision
	// calls, and deep maps whose cells overflow the uint16 mirror.
	LaneSmall
	// LaneFlat32 is the blocked uniform-k flat lane over uint32
	// segment-major rows — mid-depth maps without a uint16 mirror.
	LaneFlat32
	// LaneFlat16 is any lane over the quantized uint16 mirror: the
	// blocked flat lane at mid depth and the per-candidate deep lane.
	LaneFlat16

	numKernelLanes
)

// NumKernelLanes is the number of dispatch lanes (len of BatchStats.Lanes).
const NumKernelLanes = int(numKernelLanes)

// String returns the lane's metric label.
func (l KernelLane) String() string {
	switch l {
	case LaneScalar:
		return "scalar"
	case LaneSmall:
		return "small"
	case LaneFlat32:
		return "flat32"
	case LaneFlat16:
		return "flat16"
	}
	return "unknown"
}

// LaneStats counts the decisions one lane produced: Decided is every
// candidate the lane settled, EarlyExit/Abandoned the subset settled
// before the final segment (the remainder paid for a full scan).
type LaneStats struct {
	Decided   int64
	EarlyExit int64
	Abandoned int64
}

// BatchStats reports how a batch kernel call decided its candidates:
// EarlyExit candidates were admitted and Abandoned rejected before the
// final segment block; Lanes breaks every decision down by the dispatch
// lane that produced it.
type BatchStats struct {
	EarlyExit int64
	Abandoned int64
	Lanes     [NumKernelLanes]LaneStats
}

func (s *BatchStats) add(o BatchStats) {
	s.EarlyExit += o.EarlyExit
	s.Abandoned += o.Abandoned
	for i := range s.Lanes {
		s.Lanes[i].Decided += o.Lanes[i].Decided
		s.Lanes[i].EarlyExit += o.Lanes[i].EarlyExit
		s.Lanes[i].Abandoned += o.Lanes[i].Abandoned
	}
}

// note folds one decision outcome into the batch accounting.
func (s *BatchStats) note(o boundOutcome, lane KernelLane) {
	ls := &s.Lanes[lane]
	ls.Decided++
	switch o {
	case boundEarlyExit:
		s.EarlyExit++
		ls.EarlyExit++
	case boundAbandoned:
		s.Abandoned++
		ls.Abandoned++
	}
}

// Dispatch schedule. All three functions encode crossovers measured on
// the BENCH_5.json fixture shape (512 items, 1024-candidate
// generations, power-law cells, median-bound threshold) swept over
// 16→4096 segments × k∈{2..5}; EXPERIMENTS.md records the sweeps.

// blockSegsFor is the number of segments the blocked lanes stream
// between alive-list compactions. One block must be small enough that
// early decisions are caught promptly, but when the segment loop is
// long the compaction bookkeeping itself becomes the overhead: deep
// segmentations therefore run wider blocks (alive candidates thin out
// more slowly relative to the loop length, so fewer compaction points
// lose little early-abandon value while halving/quartering the
// bookkeeping passes). Measured: 16 wins through 256 segments, 32 at
// 512, 64 from 1024 up (128 is ~5% better for quads at 4096 but ~18%
// worse for quints — 64 is the safe deep plateau).
func blockSegsFor(ns int) int {
	switch {
	case ns >= 1024:
		return 64
	case ns >= 512:
		return 32
	}
	return 16
}

// smallCrossoverSegs is the segment count at or below which a
// generation of width-k candidates routes to the per-candidate small
// lane (per-segment abandon checks, no striding). Past it the strided
// deep column lanes win: the per-segment suffix load the small lane
// pays stops being cache-resident. The crossover shifts later as k
// grows — wider candidates amortize each abandon check over more
// column loads, so the small lane's eager checking stays profitable
// longer. Measured: pairs and triples flip at 32 segments, quads at
// ~36, quints at ~40.
func smallCrossoverSegs(k int) int {
	switch {
	case k <= 3:
		return 32
	case k == 4:
		return 36
	}
	return 40
}

// flatCrossoverSegs is the segment count at or above which a uniform
// generation of width ≥ flatCrossoverMinK routes to the blocked flat
// row lane instead of the per-candidate deep column lanes. Narrow
// candidates never benefit — a pair or triple touches 2–3 contiguous
// columns and the deep lane's register accumulator beats the row
// loop's acc-array traffic at every depth measured — but from k=4 up
// each cache-warm row feeds k column touches and the row loop pulls
// ahead once the matrix is far out of cache (measured: flat wins from
// 2048 segments for quads and quints, deep wins at 1024 and below).
const (
	flatCrossoverSegs = 2048
	flatCrossoverMinK = 4
)

// batchMixedCrossoverSegs is the small-map crossover of the mixed-width
// fallback loop, kept at the pre-dispatch constant.
const batchMixedCrossoverSegs = 64

// abandonStride is how many segments the deep per-candidate lanes
// accumulate between suffix-remainder checks. The early-exit compare is
// a register test and stays per-segment, but each abandon check streams
// one extra int64 suffix cell per member — on a 4096-segment map that
// is 8 bytes per member against 2 bytes of quantized column — so the
// deep lanes pay it every stride segments instead. Decisions are
// unchanged (the check is pure early termination); only the stop point
// moves by at most a stride.
const abandonStride = 16

// itemBases resolves each member's column base offset (item × stride)
// into buf, growing it only when too small.
func itemBases(x dataset.Itemset, stride int, buf []int) []int {
	if cap(buf) < len(x) {
		buf = make([]int, len(x))
	}
	buf = buf[:len(x)]
	for j, it := range x {
		buf[j] = int(it) * stride
	}
	return buf
}

// BoundAtLeast reports whether ubsup(x) ≥ minsup, returning exactly
// UpperBound(x) >= minsup while scanning only as many segments as the
// decision requires. Like UpperBound it panics on the empty itemset.
func (m *Map) BoundAtLeast(x dataset.Itemset, minsup int64) bool {
	ok, _, _ := m.boundAtLeast(x, minsup)
	return ok
}

// boundAtLeast is the single-candidate dispatch: width-specialized
// uint32 column kernels for small maps, the quantized deep lanes once
// the map is past the crossover and mirrors cleanly.
func (m *Map) boundAtLeast(x dataset.Itemset, minsup int64) (bool, boundOutcome, KernelLane) {
	switch len(x) {
	case 0:
		panic("core: BoundAtLeast of the empty itemset is not defined by the OSSM")
	case 1:
		return m.totals[x[0]] >= minsup, boundFull, LaneSmall
	case 2:
		return m.boundPairAtLeast(x[0], x[1], minsup)
	}
	if m.numSegs > smallCrossoverSegs(len(x)) {
		if q := m.quantized(); q != nil {
			if len(x) == 3 {
				ok, o := boundTripleDeep(m, q.itemMajor, x[0], x[1], x[2], minsup)
				return ok, o, LaneFlat16
			}
			var bb [16]int
			ok, o := boundKDeep(m, q.itemMajor, x, minsup, itemBases(x, m.numSegs, bb[:0]))
			return ok, o, LaneFlat16
		}
		if len(x) == 3 {
			ok, o := boundTripleDeep(m, m.itemMajor, x[0], x[1], x[2], minsup)
			return ok, o, LaneSmall
		}
		var bb [16]int
		ok, o := boundKDeep(m, m.itemMajor, x, minsup, itemBases(x, m.numSegs, bb[:0]))
		return ok, o, LaneSmall
	}
	if len(x) == 3 {
		ok, o := m.boundTripleSmall(x[0], x[1], x[2], minsup)
		return ok, o, LaneSmall
	}
	ok, o := m.boundKSmall(x, minsup)
	return ok, o, LaneSmall
}

// BoundPairAtLeast is BoundAtLeast for the 2-itemset {a, b}.
func (m *Map) BoundPairAtLeast(a, b dataset.Item, minsup int64) bool {
	ok, _, _ := m.boundPairAtLeast(a, b, minsup)
	return ok
}

func (m *Map) boundPairAtLeast(a, b dataset.Item, minsup int64) (bool, boundOutcome, KernelLane) {
	if m.numSegs > smallCrossoverSegs(2) {
		if q := m.quantized(); q != nil {
			ok, o := boundPairDeep(m, q.itemMajor, a, b, minsup)
			return ok, o, LaneFlat16
		}
		ok, o := boundPairDeep(m, m.itemMajor, a, b, minsup)
		return ok, o, LaneSmall
	}
	ok, o := m.boundPairSmall(a, b, minsup)
	return ok, o, LaneSmall
}

// boundPairSmall is the small-map pair kernel: direct uint32 column
// slices, both shortcuts checked every segment (on a short segment loop
// the suffix column is cache-resident, so the per-segment abandon check
// is nearly free and catches rejections at the earliest possible
// point).
func (m *Map) boundPairSmall(a, b dataset.Item, minsup int64) (bool, boundOutcome) {
	ns := m.numSegs
	colA := m.itemMajor[int(a)*ns : int(a)*ns+ns]
	colB := m.itemMajor[int(b)*ns : int(b)*ns+ns]
	sufA := m.suffix[int(a)*(ns+1) : int(a)*(ns+1)+ns+1]
	sufB := m.suffix[int(b)*(ns+1) : int(b)*(ns+1)+ns+1]
	last := ns - 1
	var acc int64
	for s := 0; s < ns; s++ {
		ca := colA[s]
		if cb := colB[s]; cb < ca {
			ca = cb
		}
		acc += int64(ca)
		if acc >= minsup {
			if s < last {
				return true, boundEarlyExit
			}
			return true, boundFull
		}
		rem := sufA[s+1]
		if r := sufB[s+1]; r < rem {
			rem = r
		}
		if acc+rem < minsup {
			if s < last {
				return false, boundAbandoned
			}
			return false, boundFull
		}
	}
	return acc >= minsup, boundFull
}

// boundTripleSmall is boundPairSmall for the 3-itemset {a, b, c}.
func (m *Map) boundTripleSmall(a, b, c dataset.Item, minsup int64) (bool, boundOutcome) {
	ns := m.numSegs
	colA := m.itemMajor[int(a)*ns : int(a)*ns+ns]
	colB := m.itemMajor[int(b)*ns : int(b)*ns+ns]
	colC := m.itemMajor[int(c)*ns : int(c)*ns+ns]
	sufA := m.suffix[int(a)*(ns+1) : int(a)*(ns+1)+ns+1]
	sufB := m.suffix[int(b)*(ns+1) : int(b)*(ns+1)+ns+1]
	sufC := m.suffix[int(c)*(ns+1) : int(c)*(ns+1)+ns+1]
	last := ns - 1
	var acc int64
	for s := 0; s < ns; s++ {
		ca := colA[s]
		if cb := colB[s]; cb < ca {
			ca = cb
		}
		if cc := colC[s]; cc < ca {
			ca = cc
		}
		acc += int64(ca)
		if acc >= minsup {
			if s < last {
				return true, boundEarlyExit
			}
			return true, boundFull
		}
		rem := sufA[s+1]
		if r := sufB[s+1]; r < rem {
			rem = r
		}
		if r := sufC[s+1]; r < rem {
			rem = r
		}
		if acc+rem < minsup {
			if s < last {
				return false, boundAbandoned
			}
			return false, boundFull
		}
	}
	return acc >= minsup, boundFull
}

// boundKSmall generalizes the small per-candidate lane to arbitrary
// width: member column bases are resolved once, so the inner loop is
// flat array indexing with no per-member slice headers or offset
// multiplies — the lane that keeps k≥4 pass pruning off the generic
// row path on small maps.
func (m *Map) boundKSmall(x dataset.Itemset, minsup int64) (bool, boundOutcome) {
	ns := m.numSegs
	var bb [16]int
	bases := itemBases(x, ns, bb[:0])
	im, suf := m.itemMajor, m.suffix
	last := ns - 1
	var acc int64
	for s := 0; s < ns; s++ {
		minC := im[bases[0]+s]
		for _, b := range bases[1:] {
			if c := im[b+s]; c < minC {
				minC = c
			}
		}
		acc += int64(minC)
		if acc >= minsup {
			if s < last {
				return true, boundEarlyExit
			}
			return true, boundFull
		}
		// suffix rows are (ns+1)-strided: member j's base is its column
		// base plus j's item index.
		rem := suf[bases[0]+int(x[0])+s+1]
		for j := 1; j < len(x); j++ {
			if r := suf[bases[j]+int(x[j])+s+1]; r < rem {
				rem = r
			}
		}
		if acc+rem < minsup {
			if s < last {
				return false, boundAbandoned
			}
			return false, boundFull
		}
	}
	return acc >= minsup, boundFull
}

// boundPairDeep is the deep per-candidate pair lane: contiguous column
// streams of cell type C (the uint16 mirror in the common case), the
// early-exit compare per segment, the abandon check per stride.
func boundPairDeep[C cells](m *Map, im []C, a, b dataset.Item, minsup int64) (bool, boundOutcome) {
	ns := m.numSegs
	colA := im[int(a)*ns : int(a)*ns+ns]
	colB := im[int(b)*ns : int(b)*ns+ns]
	sufA := m.suffix[int(a)*(ns+1) : int(a)*(ns+1)+ns+1]
	sufB := m.suffix[int(b)*(ns+1) : int(b)*(ns+1)+ns+1]
	last := ns - 1
	var acc int64
	for start := 0; start < ns; start += abandonStride {
		end := min(start+abandonStride, ns)
		for s := start; s < end; s++ {
			ca := colA[s]
			if cb := colB[s]; cb < ca {
				ca = cb
			}
			acc += int64(ca)
			if acc >= minsup {
				if s < last {
					return true, boundEarlyExit
				}
				return true, boundFull
			}
		}
		if end < ns {
			rem := sufA[end]
			if r := sufB[end]; r < rem {
				rem = r
			}
			if acc+rem < minsup {
				return false, boundAbandoned
			}
		}
	}
	return false, boundFull
}

// boundTripleDeep is boundPairDeep for 3-itemsets.
func boundTripleDeep[C cells](m *Map, im []C, a, b, c dataset.Item, minsup int64) (bool, boundOutcome) {
	ns := m.numSegs
	colA := im[int(a)*ns : int(a)*ns+ns]
	colB := im[int(b)*ns : int(b)*ns+ns]
	colC := im[int(c)*ns : int(c)*ns+ns]
	sufA := m.suffix[int(a)*(ns+1) : int(a)*(ns+1)+ns+1]
	sufB := m.suffix[int(b)*(ns+1) : int(b)*(ns+1)+ns+1]
	sufC := m.suffix[int(c)*(ns+1) : int(c)*(ns+1)+ns+1]
	last := ns - 1
	var acc int64
	for start := 0; start < ns; start += abandonStride {
		end := min(start+abandonStride, ns)
		for s := start; s < end; s++ {
			ca := colA[s]
			if cb := colB[s]; cb < ca {
				ca = cb
			}
			if cc := colC[s]; cc < ca {
				ca = cc
			}
			acc += int64(ca)
			if acc >= minsup {
				if s < last {
					return true, boundEarlyExit
				}
				return true, boundFull
			}
		}
		if end < ns {
			rem := sufA[end]
			if r := sufB[end]; r < rem {
				rem = r
			}
			if r := sufC[end]; r < rem {
				rem = r
			}
			if acc+rem < minsup {
				return false, boundAbandoned
			}
		}
	}
	return false, boundFull
}

// boundKDeep is the deep per-candidate lane for arbitrary width; bases
// must hold the members' column base offsets (itemBases with stride
// ns).
func boundKDeep[C cells](m *Map, im []C, x dataset.Itemset, minsup int64, bases []int) (bool, boundOutcome) {
	ns := m.numSegs
	suf := m.suffix
	last := ns - 1
	var acc int64
	for start := 0; start < ns; start += abandonStride {
		end := min(start+abandonStride, ns)
		for s := start; s < end; s++ {
			minC := im[bases[0]+s]
			for _, b := range bases[1:] {
				if c := im[b+s]; c < minC {
					minC = c
				}
			}
			acc += int64(minC)
			if acc >= minsup {
				if s < last {
					return true, boundEarlyExit
				}
				return true, boundFull
			}
		}
		if end < ns {
			rem := suf[bases[0]+int(x[0])+end]
			for j := 1; j < len(x); j++ {
				if r := suf[bases[j]+int(x[j])+end]; r < rem {
					rem = r
				}
			}
			if acc+rem < minsup {
				return false, boundAbandoned
			}
		}
	}
	return false, boundFull
}

// boundBatchSmall is the small-map lane of the batch front-end: one
// width-specialized decision-kernel call per candidate, no scratch, no
// blocking.
func (m *Map) boundBatchSmall(cands []dataset.Itemset, minsup int64, decisions []bool) BatchStats {
	var st BatchStats
	for ci, x := range cands {
		var ok bool
		var o boundOutcome
		switch len(x) {
		case 1:
			ok, o = m.totals[x[0]] >= minsup, boundFull
		case 2:
			ok, o = m.boundPairSmall(x[0], x[1], minsup)
		case 3:
			ok, o = m.boundTripleSmall(x[0], x[1], x[2], minsup)
		default:
			ok, o = m.boundKSmall(x, minsup)
		}
		decisions[ci] = ok
		st.note(o, LaneSmall)
	}
	return st
}

// boundBatchDeep drives the per-candidate deep lanes over one uniform-k
// generation.
func boundBatchDeep[C cells](m *Map, im []C, cands []dataset.Itemset, k int, minsup int64, decisions []bool, lane KernelLane) BatchStats {
	var st BatchStats
	var bb [16]int
	for ci, x := range cands {
		var ok bool
		var o boundOutcome
		switch k {
		case 2:
			ok, o = boundPairDeep(m, im, x[0], x[1], minsup)
		case 3:
			ok, o = boundTripleDeep(m, im, x[0], x[1], x[2], minsup)
		default:
			ok, o = boundKDeep(m, im, x, minsup, itemBases(x, m.numSegs, bb[:0]))
		}
		decisions[ci] = ok
		st.note(o, lane)
	}
	return st
}

// batchScratch is the pooled per-call working set of the batch kernels.
type batchScratch struct {
	acc     []int64
	alive   []int32
	flat    []dataset.Item
	prefMin []uint32
	prefSuf []int64
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (sc *batchScratch) accFor(n int) []int64 {
	if cap(sc.acc) < n {
		sc.acc = make([]int64, n)
	}
	acc := sc.acc[:n]
	for i := range acc {
		acc[i] = 0
	}
	return acc
}

func (sc *batchScratch) aliveFor(n int) []int32 {
	if cap(sc.alive) < n {
		sc.alive = make([]int32, 0, n)
	}
	return sc.alive[:0]
}

// flatFor returns the candidate-major member lane: slot ci·k+j holds
// candidate ci's j-th member.
func (sc *batchScratch) flatFor(n int) []dataset.Item {
	if cap(sc.flat) < n {
		sc.flat = make([]dataset.Item, n)
	}
	return sc.flat[:n]
}

// BoundBatch decides a whole generation of candidates at once, writing
// decisions[i] = (ubsup(cands[i]) ≥ minsup). Uniform-length generations
// — the shape every level-wise pass produces, at any k — dispatch
// across the size-scheduled lanes (per-candidate column kernels under
// the per-kind crossover, blocked flat row lanes at mid depth, deep
// quantized column lanes past the deep crossover); mixed-width
// generations take the generic blocked fallback. decisions must have
// len(cands) entries; every decision is bit-identical to
// UpperBound(cands[i]) >= minsup.
func (m *Map) BoundBatch(cands []dataset.Itemset, minsup int64, decisions []bool) BatchStats {
	var st BatchStats
	if len(cands) == 0 {
		return st
	}
	if len(decisions) < len(cands) {
		panic("core: BoundBatch needs one decision slot per candidate")
	}
	uni := len(cands[0])
	for _, x := range cands {
		if len(x) == 0 {
			panic("core: BoundBatch of the empty itemset is not defined by the OSSM")
		}
		if len(x) != uni {
			uni = -1
		}
	}
	ns := m.numSegs
	if uni == 1 {
		for ci, x := range cands {
			decisions[ci] = m.totals[x[0]] >= minsup
		}
		st.Lanes[LaneSmall].Decided = int64(len(cands))
		return st
	}
	if uni < 0 {
		if ns <= batchMixedCrossoverSegs {
			return m.boundBatchSmall(cands, minsup, decisions)
		}
		return m.boundBatchMixed(cands, minsup, decisions)
	}
	if ns <= smallCrossoverSegs(uni) {
		return m.boundBatchSmall(cands, minsup, decisions)
	}
	q := m.quantized()
	if uni >= flatCrossoverMinK && ns >= flatCrossoverSegs {
		sc := batchPool.Get().(*batchScratch)
		defer batchPool.Put(sc)
		flat := sc.flatFor(len(cands) * uni)
		for ci, x := range cands {
			copy(flat[ci*uni:ci*uni+uni], x)
		}
		if q != nil {
			return boundFlatBlocked(m, q.segMajor, sc, flat, uni, minsup, decisions, LaneFlat16)
		}
		return boundFlatBlocked(m, m.segMajor, sc, flat, uni, minsup, decisions, LaneFlat32)
	}
	if q != nil {
		return boundBatchDeep(m, q.itemMajor, cands, uni, minsup, decisions, LaneFlat16)
	}
	// Cells overflow the mirror: the strided per-candidate uint32
	// column lane (the per-index fallback) still beats the blocked row
	// loop at these depths.
	return boundBatchDeep(m, m.itemMajor, cands, uni, minsup, decisions, LaneSmall)
}

// boundFlatBlocked is the blocked uniform-k flat lane shared by
// BoundBatch and BoundPairsAmong: candidate ci's members are
// flat[ci·k : ci·k+k], every inner-loop load is a direct array index,
// and the block length follows the depth schedule. Pair and triple
// generations get fully unrolled member loops.
func boundFlatBlocked[C cells](m *Map, rows []C, sc *batchScratch, flat []dataset.Item, k int, minsup int64, decisions []bool, lane KernelLane) BatchStats {
	var st BatchStats
	n := len(flat) / k
	acc := sc.accFor(n)
	alive := sc.aliveFor(n)
	for ci := 0; ci < n; ci++ {
		alive = append(alive, int32(ci))
	}
	ns, items := m.numSegs, m.numItems
	block := blockSegsFor(ns)
	for blockStart := 0; blockStart < ns && len(alive) > 0; blockStart += block {
		blockEnd := min(blockStart+block, ns)
		switch k {
		case 2:
			for s := blockStart; s < blockEnd; s++ {
				row := rows[s*items : (s+1)*items]
				for _, ci := range alive {
					ca := row[flat[2*ci]]
					if cb := row[flat[2*ci+1]]; cb < ca {
						ca = cb
					}
					acc[ci] += int64(ca)
				}
			}
		case 3:
			for s := blockStart; s < blockEnd; s++ {
				row := rows[s*items : (s+1)*items]
				for _, ci := range alive {
					ca := row[flat[3*ci]]
					if cb := row[flat[3*ci+1]]; cb < ca {
						ca = cb
					}
					if cc := row[flat[3*ci+2]]; cc < ca {
						ca = cc
					}
					acc[ci] += int64(ca)
				}
			}
		default:
			for s := blockStart; s < blockEnd; s++ {
				row := rows[s*items : (s+1)*items]
				for _, ci := range alive {
					members := flat[int(ci)*k : int(ci)*k+k]
					minC := row[members[0]]
					for _, it := range members[1:] {
						if c := row[it]; c < minC {
							minC = c
						}
					}
					acc[ci] += int64(minC)
				}
			}
		}
		final := blockEnd == ns
		keep := alive[:0]
		for _, ci := range alive {
			a := acc[ci]
			if a >= minsup {
				decisions[ci] = true
				if final {
					st.note(boundFull, lane)
				} else {
					st.note(boundEarlyExit, lane)
				}
				continue
			}
			if final {
				decisions[ci] = false
				st.note(boundFull, lane)
				continue
			}
			members := flat[int(ci)*k : int(ci)*k+k]
			rem := m.suffix[int(members[0])*(ns+1)+blockEnd]
			for _, it := range members[1:] {
				if r := m.suffix[int(it)*(ns+1)+blockEnd]; r < rem {
					rem = r
				}
			}
			if a+rem < minsup {
				decisions[ci] = false
				st.note(boundAbandoned, lane)
				continue
			}
			keep = append(keep, ci)
		}
		alive = keep
	}
	sc.alive = alive
	return st
}

// boundBatchMixed is the generic fallback for mixed-width generations:
// the blocked row loop with per-candidate slice indirection (the scalar
// lane). Miners never produce this shape on the pass path; ad-hoc query
// batches can.
func (m *Map) boundBatchMixed(cands []dataset.Itemset, minsup int64, decisions []bool) BatchStats {
	var st BatchStats
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)
	acc := sc.accFor(len(cands))
	alive := sc.aliveFor(len(cands))
	for ci, x := range cands {
		if len(x) == 1 {
			decisions[ci] = m.totals[x[0]] >= minsup
			st.Lanes[LaneSmall].Decided++
		} else {
			alive = append(alive, int32(ci))
		}
	}
	ns, k := m.numSegs, m.numItems
	block := blockSegsFor(ns)
	for blockStart := 0; blockStart < ns && len(alive) > 0; blockStart += block {
		blockEnd := min(blockStart+block, ns)
		for s := blockStart; s < blockEnd; s++ {
			row := m.segMajor[s*k : (s+1)*k]
			for _, ci := range alive {
				x := cands[ci]
				minC := row[x[0]]
				for _, it := range x[1:] {
					if c := row[it]; c < minC {
						minC = c
					}
				}
				acc[ci] += int64(minC)
			}
		}
		final := blockEnd == ns
		keep := alive[:0]
		for _, ci := range alive {
			a := acc[ci]
			if a >= minsup {
				decisions[ci] = true
				if final {
					st.note(boundFull, LaneScalar)
				} else {
					st.note(boundEarlyExit, LaneScalar)
				}
				continue
			}
			if final {
				decisions[ci] = false
				st.note(boundFull, LaneScalar)
				continue
			}
			x := cands[ci]
			rem := m.suffix[int(x[0])*(ns+1)+blockEnd]
			for _, it := range x[1:] {
				if r := m.suffix[int(it)*(ns+1)+blockEnd]; r < rem {
					rem = r
				}
			}
			if a+rem < minsup {
				decisions[ci] = false
				st.note(boundAbandoned, LaneScalar)
				continue
			}
			keep = append(keep, ci)
		}
		alive = keep
	}
	sc.alive = alive
	return st
}

// upperBoundStream is the exact-value row loop shared by both cell
// types: no early termination, every alive candidate accumulates until
// the final segment.
func upperBoundStream[C cells](m *Map, rows []C, cands []dataset.Itemset, alive []int32, out []int64) {
	ns, k := m.numSegs, m.numItems
	for s := 0; s < ns && len(alive) > 0; s++ {
		row := rows[s*k : (s+1)*k]
		for _, ci := range alive {
			x := cands[ci]
			minC := row[x[0]]
			for _, it := range x[1:] {
				if c := row[it]; c < minC {
					minC = c
				}
			}
			out[ci] += int64(minC)
		}
	}
}

// UpperBoundBatch computes the exact bound ubsup(cands[i]) for every
// candidate with the same row-amortized loop as the blocked lanes but
// no early termination (callers want the values, not a decision),
// streaming the quantized rows when the mirror is available. If out is
// too small a fresh slice is allocated; the filled slice is returned.
// Each value is bit-identical to UpperBound(cands[i]).
func (m *Map) UpperBoundBatch(cands []dataset.Itemset, out []int64) []int64 {
	if cap(out) < len(cands) {
		out = make([]int64, len(cands))
	}
	out = out[:len(cands)]
	// Size dispatch, as in BoundBatch: under the crossover the
	// column-major scalar scan beats the row loop, and shard sub-maps
	// (internal/shard) land here routinely.
	if m.numSegs <= batchMixedCrossoverSegs {
		for ci, x := range cands {
			out[ci] = m.UpperBound(x)
		}
		return out
	}
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)
	alive := sc.aliveFor(len(cands))
	for ci, x := range cands {
		switch len(x) {
		case 0:
			panic("core: UpperBoundBatch of the empty itemset is not defined by the OSSM")
		case 1:
			out[ci] = m.totals[x[0]]
		default:
			out[ci] = 0
			alive = append(alive, int32(ci))
		}
	}
	if q := m.quantized(); q != nil {
		upperBoundStream(m, q.segMajor, cands, alive, out)
	} else {
		upperBoundStream(m, m.segMajor, cands, alive, out)
	}
	sc.alive = alive
	return out
}

// BoundPairsAmong decides every 2-subset {items[i], items[j]}, i < j, of
// a frequent-1 generation — the candidate-2 wall. Decisions are written
// in the same order a nested i-outer/j-inner loop visits the pairs
// (PairIndex gives the mapping); decisions must have
// len(items)·(len(items)−1)/2 entries. The pair-specialized lanes avoid
// itemset materialization entirely.
func (m *Map) BoundPairsAmong(items []dataset.Item, minsup int64, decisions []bool) BatchStats {
	var st BatchStats
	n := len(items)
	numPairs := n * (n - 1) / 2
	if numPairs == 0 {
		return st
	}
	if len(decisions) < numPairs {
		panic("core: BoundPairsAmong needs one decision slot per pair")
	}
	ns := m.numSegs
	if ns <= smallCrossoverSegs(2) {
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ok, o := m.boundPairSmall(items[i], items[j], minsup)
				decisions[idx] = ok
				st.note(o, LaneSmall)
				idx++
			}
		}
		return st
	}
	// Pairs past the crossover always take the deep column lanes: with
	// only two contiguous column streams per decision the register
	// accumulator beats the blocked row loop at every measured depth.
	if q := m.quantized(); q != nil {
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ok, o := boundPairDeep(m, q.itemMajor, items[i], items[j], minsup)
				decisions[idx] = ok
				st.note(o, LaneFlat16)
				idx++
			}
		}
		return st
	}
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ok, o := boundPairDeep(m, m.itemMajor, items[i], items[j], minsup)
			decisions[idx] = ok
			st.note(o, LaneSmall)
			idx++
		}
	}
	return st
}

// PairIndex maps the pair (items[i], items[j]), i < j, of an n-item
// generation to its position in BoundPairsAmong's decisions slice — the
// standard upper-triangular row-major index.
func PairIndex(i, j, n int) int {
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// boundExtensionsStream is the blocked extension loop over either cell
// type: prefMin carries the prefix's per-segment minima (uint32 —
// widened comparison against the rows is free).
func boundExtensionsStream[C cells](m *Map, rows []C, sc *batchScratch, prefMin []uint32, prefSuf []int64, exts []dataset.Item, minsup int64, decisions []bool, lane KernelLane) BatchStats {
	var st BatchStats
	acc := sc.accFor(len(exts))
	alive := sc.aliveFor(len(exts))
	for e := range exts {
		alive = append(alive, int32(e))
	}
	ns, k := m.numSegs, m.numItems
	block := blockSegsFor(ns)
	for blockStart := 0; blockStart < ns && len(alive) > 0; blockStart += block {
		blockEnd := min(blockStart+block, ns)
		for s := blockStart; s < blockEnd; s++ {
			row := rows[s*k : (s+1)*k]
			pm := prefMin[s]
			for _, ei := range alive {
				c := uint32(row[exts[ei]])
				if pm < c {
					c = pm
				}
				acc[ei] += int64(c)
			}
		}
		final := blockEnd == ns
		keep := alive[:0]
		for _, ei := range alive {
			a := acc[ei]
			if a >= minsup {
				decisions[ei] = true
				if final {
					st.note(boundFull, lane)
				} else {
					st.note(boundEarlyExit, lane)
				}
				continue
			}
			if final {
				decisions[ei] = false
				st.note(boundFull, lane)
				continue
			}
			rem := prefSuf[blockEnd]
			if r := m.suffix[int(exts[ei])*(ns+1)+blockEnd]; r < rem {
				rem = r
			}
			if a+rem < minsup {
				decisions[ei] = false
				st.note(boundAbandoned, lane)
				continue
			}
			keep = append(keep, ei)
		}
		alive = keep
	}
	sc.alive = alive
	return st
}

// BoundExtensions decides every one-item extension prefix ∪ {exts[e]} of
// a shared prefix — the shape depth-first miners (Eclat, DepthProject)
// generate candidates in. The prefix's per-segment minima are computed
// once and shared across all extensions, so each extension costs one
// column touch per segment instead of a full itemset scan; decisions must
// have len(exts) entries. If the prefix is empty each extension is the
// singleton {exts[e]}, decided from the exact totals.
func (m *Map) BoundExtensions(prefix dataset.Itemset, exts []dataset.Item, minsup int64, decisions []bool) BatchStats {
	var st BatchStats
	if len(exts) == 0 {
		return st
	}
	if len(decisions) < len(exts) {
		panic("core: BoundExtensions needs one decision slot per extension")
	}
	if len(prefix) == 0 {
		for e, it := range exts {
			decisions[e] = m.totals[it] >= minsup
		}
		st.Lanes[LaneSmall].Decided = int64(len(exts))
		return st
	}
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)
	ns := m.numSegs
	// Per-segment minimum over the prefix items, and its suffix sums:
	// prefSuf[s] = Σ_{t≥s} prefMin[t] caps the prefix side of any
	// extension's remaining contribution.
	if cap(sc.prefMin) < ns {
		sc.prefMin = make([]uint32, ns)
	}
	if cap(sc.prefSuf) < ns+1 {
		sc.prefSuf = make([]int64, ns+1)
	}
	prefMin, prefSuf := sc.prefMin[:ns], sc.prefSuf[:ns+1]
	copy(prefMin, m.Column(prefix[0]))
	for _, it := range prefix[1:] {
		col := m.itemMajor[int(it)*ns : int(it)*ns+ns]
		for s, c := range col {
			if c < prefMin[s] {
				prefMin[s] = c
			}
		}
	}
	prefSuf[ns] = 0
	for s := ns - 1; s >= 0; s-- {
		prefSuf[s] = prefSuf[s+1] + int64(prefMin[s])
	}
	if q := m.quantized(); q != nil {
		return boundExtensionsStream(m, q.segMajor, sc, prefMin, prefSuf, exts, minsup, decisions, LaneFlat16)
	}
	return boundExtensionsStream(m, m.segMajor, sc, prefMin, prefSuf, exts, minsup, decisions, LaneFlat32)
}
