package core

import (
	"sync"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// Bound kernels (DESIGN.md §7). The scalar UpperBound walk answers "what
// is ubsup(X)?", but every caller on the mining hot path only asks the
// cheaper decision question "is ubsup(X) ≥ minsup?". These kernels answer
// it while scanning as few segments as possible, with two symmetric
// shortcuts that both preserve bit-identical decisions with the exact
// bound:
//
//   - early exit: the bound is a sum of non-negative per-segment terms,
//     so once the accumulated partial sum reaches minsup the full bound
//     cannot be smaller — admit without scanning further.
//   - early abandon: the remaining contribution of segments t ≥ s is at
//     most min_{x∈X} suffix[x][s] (the precomputed per-item suffix
//     remainders, see Map), so when acc + remainder < minsup the full
//     bound cannot reach minsup — reject without scanning further.
//
// The batch kernels additionally restructure the loop nest: instead of
// one full matrix walk per candidate, they stream the segment-major rows
// block by block and amortize each cache-warm row across every candidate
// still undecided, keeping per-call scratch in a sync.Pool so the loop is
// allocation-free at steady state.

// boundOutcome records how a decision-mode bound call terminated.
type boundOutcome uint8

const (
	boundFull      boundOutcome = iota // scanned every segment (or decided from totals)
	boundEarlyExit                     // admitted before the final segment
	boundAbandoned                     // rejected before the final segment
)

// BatchStats reports how a batch kernel call decided its candidates:
// EarlyExit candidates were admitted and Abandoned rejected before the
// final segment block; the remainder paid for a full scan.
type BatchStats struct {
	EarlyExit int64
	Abandoned int64
}

func (s *BatchStats) add(o BatchStats) {
	s.EarlyExit += o.EarlyExit
	s.Abandoned += o.Abandoned
}

// blockSegs is the number of segments a batch kernel streams between
// alive-list compactions. Small enough that early decisions are caught
// promptly, large enough that compaction overhead stays negligible.
const blockSegs = 16

// batchCrossoverSegs is the segment count below which the batch kernels
// dispatch to the per-candidate decision kernels instead of the blocked
// row-major loop. Under one block the row loop pays its scratch setup
// and alive-list bookkeeping without ever compacting, which BENCH_5.json
// measured as a ~0.97x regression against the scalar bound at 16
// segments, while the column-major decision kernels win there (pairs
// 2.4x). The value was measured with `make bench-kernels` (see the
// 16/64/128-segment rows of BENCH_5.json): the blocked loop pulls
// ahead once a generation spans several blocks and candidates start
// dying at block boundaries.
const batchCrossoverSegs = 4 * blockSegs

// BoundAtLeast reports whether ubsup(x) ≥ minsup, returning exactly
// UpperBound(x) >= minsup while scanning only as many segments as the
// decision requires. Like UpperBound it panics on the empty itemset.
func (m *Map) BoundAtLeast(x dataset.Itemset, minsup int64) bool {
	ok, _ := m.boundAtLeast(x, minsup)
	return ok
}

func (m *Map) boundAtLeast(x dataset.Itemset, minsup int64) (bool, boundOutcome) {
	switch len(x) {
	case 0:
		panic("core: BoundAtLeast of the empty itemset is not defined by the OSSM")
	case 1:
		return m.totals[x[0]] >= minsup, boundFull
	case 2:
		return m.boundPairAtLeast(x[0], x[1], minsup)
	}
	ns := m.numSegs
	last := ns - 1
	var acc int64
	for s := 0; s < ns; s++ {
		minC := m.itemMajor[int(x[0])*ns+s]
		for _, it := range x[1:] {
			if c := m.itemMajor[int(it)*ns+s]; c < minC {
				minC = c
			}
		}
		acc += int64(minC)
		if acc >= minsup {
			if s < last {
				return true, boundEarlyExit
			}
			return true, boundFull
		}
		rem := m.suffix[int(x[0])*(ns+1)+s+1]
		for _, it := range x[1:] {
			if r := m.suffix[int(it)*(ns+1)+s+1]; r < rem {
				rem = r
			}
		}
		if acc+rem < minsup {
			if s < last {
				return false, boundAbandoned
			}
			return false, boundFull
		}
	}
	return acc >= minsup, boundFull
}

// BoundPairAtLeast is BoundAtLeast for the 2-itemset {a, b}.
func (m *Map) BoundPairAtLeast(a, b dataset.Item, minsup int64) bool {
	ok, _ := m.boundPairAtLeast(a, b, minsup)
	return ok
}

func (m *Map) boundPairAtLeast(a, b dataset.Item, minsup int64) (bool, boundOutcome) {
	ns := m.numSegs
	colA := m.itemMajor[int(a)*ns : int(a)*ns+ns]
	colB := m.itemMajor[int(b)*ns : int(b)*ns+ns]
	sufA := m.suffix[int(a)*(ns+1) : int(a)*(ns+1)+ns+1]
	sufB := m.suffix[int(b)*(ns+1) : int(b)*(ns+1)+ns+1]
	last := ns - 1
	var acc int64
	for s := 0; s < ns; s++ {
		ca := colA[s]
		if cb := colB[s]; cb < ca {
			ca = cb
		}
		acc += int64(ca)
		if acc >= minsup {
			if s < last {
				return true, boundEarlyExit
			}
			return true, boundFull
		}
		rem := sufA[s+1]
		if r := sufB[s+1]; r < rem {
			rem = r
		}
		if acc+rem < minsup {
			if s < last {
				return false, boundAbandoned
			}
			return false, boundFull
		}
	}
	return acc >= minsup, boundFull
}

// boundTripleAtLeast is boundPairAtLeast for the 3-itemset {a, b, c}:
// direct column and suffix slices, both shortcuts, no generic inner
// loops. It exists for the small-segment dispatch path, where the
// blocked batch loop cannot amortize its setup and the generic
// boundAtLeast pays slice-header indirection per member.
func (m *Map) boundTripleAtLeast(a, b, c dataset.Item, minsup int64) (bool, boundOutcome) {
	ns := m.numSegs
	colA := m.itemMajor[int(a)*ns : int(a)*ns+ns]
	colB := m.itemMajor[int(b)*ns : int(b)*ns+ns]
	colC := m.itemMajor[int(c)*ns : int(c)*ns+ns]
	sufA := m.suffix[int(a)*(ns+1) : int(a)*(ns+1)+ns+1]
	sufB := m.suffix[int(b)*(ns+1) : int(b)*(ns+1)+ns+1]
	sufC := m.suffix[int(c)*(ns+1) : int(c)*(ns+1)+ns+1]
	last := ns - 1
	var acc int64
	for s := 0; s < ns; s++ {
		ca := colA[s]
		if cb := colB[s]; cb < ca {
			ca = cb
		}
		if cc := colC[s]; cc < ca {
			ca = cc
		}
		acc += int64(ca)
		if acc >= minsup {
			if s < last {
				return true, boundEarlyExit
			}
			return true, boundFull
		}
		rem := sufA[s+1]
		if r := sufB[s+1]; r < rem {
			rem = r
		}
		if r := sufC[s+1]; r < rem {
			rem = r
		}
		if acc+rem < minsup {
			if s < last {
				return false, boundAbandoned
			}
			return false, boundFull
		}
	}
	return acc >= minsup, boundFull
}

// note folds one decision-kernel outcome into the batch accounting.
func (s *BatchStats) note(o boundOutcome) {
	switch o {
	case boundEarlyExit:
		s.EarlyExit++
	case boundAbandoned:
		s.Abandoned++
	}
}

// boundBatchSmall is the small-segment lane of the batch front-end: one
// width-specialized decision-kernel call per candidate, no scratch, no
// blocking. Decisions and shortcut accounting match the blocked loop's
// semantics exactly.
func (m *Map) boundBatchSmall(cands []dataset.Itemset, minsup int64, decisions []bool) BatchStats {
	var st BatchStats
	for ci, x := range cands {
		var ok bool
		var o boundOutcome
		switch len(x) {
		case 1:
			ok, o = m.totals[x[0]] >= minsup, boundFull
		case 2:
			ok, o = m.boundPairAtLeast(x[0], x[1], minsup)
		case 3:
			ok, o = m.boundTripleAtLeast(x[0], x[1], x[2], minsup)
		default:
			ok, o = m.boundAtLeast(x, minsup)
		}
		decisions[ci] = ok
		st.note(o)
	}
	return st
}

// batchScratch is the pooled per-call working set of the batch kernels.
type batchScratch struct {
	acc     []int64
	alive   []int32
	pairA   []dataset.Item
	pairB   []dataset.Item
	pairC   []dataset.Item
	prefMin []uint32
	prefSuf []int64
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (sc *batchScratch) accFor(n int) []int64 {
	if cap(sc.acc) < n {
		sc.acc = make([]int64, n)
	}
	acc := sc.acc[:n]
	for i := range acc {
		acc[i] = 0
	}
	return acc
}

func (sc *batchScratch) aliveFor(n int) []int32 {
	if cap(sc.alive) < n {
		sc.alive = make([]int32, 0, n)
	}
	return sc.alive[:0]
}

func (sc *batchScratch) pairsFor(n int) (pa, pb []dataset.Item) {
	if cap(sc.pairA) < n {
		sc.pairA = make([]dataset.Item, n)
		sc.pairB = make([]dataset.Item, n)
	}
	return sc.pairA[:n], sc.pairB[:n]
}

func (sc *batchScratch) triplesFor(n int) (pa, pb, pc []dataset.Item) {
	pa, pb = sc.pairsFor(n)
	if cap(sc.pairC) < n {
		sc.pairC = make([]dataset.Item, n)
	}
	return pa, pb, sc.pairC[:n]
}

// BoundBatch decides a whole generation of candidates at once, writing
// decisions[i] = (ubsup(cands[i]) ≥ minsup). It streams the support
// matrix segment-block by segment-block so each row is loaded into cache
// once and shared by every candidate still alive, compacting the alive
// list at block boundaries as candidates early-exit or early-abandon.
// Uniform generations of 2- or 3-itemsets — the shape every level-wise
// pass produces — take flat-array lanes whose inner loops carry no
// slice-header indirection at all. decisions must have len(cands)
// entries; every decision is bit-identical to
// UpperBound(cands[i]) >= minsup.
func (m *Map) BoundBatch(cands []dataset.Itemset, minsup int64, decisions []bool) BatchStats {
	var st BatchStats
	if len(cands) == 0 {
		return st
	}
	if len(decisions) < len(cands) {
		panic("core: BoundBatch needs one decision slot per candidate")
	}
	uni := len(cands[0])
	for _, x := range cands {
		if len(x) == 0 {
			panic("core: BoundBatch of the empty itemset is not defined by the OSSM")
		}
		if len(x) != uni {
			uni = -1
		}
	}
	// Size dispatch: under the crossover the blocked row loop cannot
	// amortize its setup (a 16-segment map is a single block), so the
	// whole generation routes to the per-candidate decision kernels.
	if m.numSegs <= batchCrossoverSegs {
		return m.boundBatchSmall(cands, minsup, decisions)
	}
	switch uni {
	case 1:
		for ci, x := range cands {
			decisions[ci] = m.totals[x[0]] >= minsup
		}
		return st
	case 2:
		sc := batchPool.Get().(*batchScratch)
		defer batchPool.Put(sc)
		pa, pb := sc.pairsFor(len(cands))
		for ci, x := range cands {
			pa[ci], pb[ci] = x[0], x[1]
		}
		return m.boundPairsFlat(sc, pa, pb, minsup, decisions)
	case 3:
		sc := batchPool.Get().(*batchScratch)
		defer batchPool.Put(sc)
		pa, pb, pc := sc.triplesFor(len(cands))
		for ci, x := range cands {
			pa[ci], pb[ci], pc[ci] = x[0], x[1], x[2]
		}
		return m.boundTriplesFlat(sc, pa, pb, pc, minsup, decisions)
	}
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)
	acc := sc.accFor(len(cands))
	alive := sc.aliveFor(len(cands))
	for ci, x := range cands {
		if len(x) == 1 {
			decisions[ci] = m.totals[x[0]] >= minsup
		} else {
			alive = append(alive, int32(ci))
		}
	}
	ns, k := m.numSegs, m.numItems
	for blockStart := 0; blockStart < ns && len(alive) > 0; blockStart += blockSegs {
		blockEnd := min(blockStart+blockSegs, ns)
		for s := blockStart; s < blockEnd; s++ {
			row := m.segMajor[s*k : (s+1)*k]
			for _, ci := range alive {
				x := cands[ci]
				minC := row[x[0]]
				for _, it := range x[1:] {
					if c := row[it]; c < minC {
						minC = c
					}
				}
				acc[ci] += int64(minC)
			}
		}
		final := blockEnd == ns
		keep := alive[:0]
		for _, ci := range alive {
			a := acc[ci]
			if a >= minsup {
				decisions[ci] = true
				if !final {
					st.EarlyExit++
				}
				continue
			}
			if final {
				decisions[ci] = false
				continue
			}
			x := cands[ci]
			rem := m.suffix[int(x[0])*(ns+1)+blockEnd]
			for _, it := range x[1:] {
				if r := m.suffix[int(it)*(ns+1)+blockEnd]; r < rem {
					rem = r
				}
			}
			if a+rem < minsup {
				decisions[ci] = false
				st.Abandoned++
				continue
			}
			keep = append(keep, ci)
		}
		alive = keep
	}
	sc.alive = alive
	return st
}

// boundPairsFlat is the shared block loop of BoundPairsAmong and
// BoundBatch's uniform-pair lane: pair ci is {pa[ci], pb[ci]} and every
// load in the inner loop is a direct array index.
func (m *Map) boundPairsFlat(sc *batchScratch, pa, pb []dataset.Item, minsup int64, decisions []bool) BatchStats {
	var st BatchStats
	n := len(pa)
	acc := sc.accFor(n)
	alive := sc.aliveFor(n)
	for ci := 0; ci < n; ci++ {
		alive = append(alive, int32(ci))
	}
	ns, k := m.numSegs, m.numItems
	for blockStart := 0; blockStart < ns && len(alive) > 0; blockStart += blockSegs {
		blockEnd := min(blockStart+blockSegs, ns)
		for s := blockStart; s < blockEnd; s++ {
			row := m.segMajor[s*k : (s+1)*k]
			for _, ci := range alive {
				ca := row[pa[ci]]
				if cb := row[pb[ci]]; cb < ca {
					ca = cb
				}
				acc[ci] += int64(ca)
			}
		}
		final := blockEnd == ns
		keep := alive[:0]
		for _, ci := range alive {
			a := acc[ci]
			if a >= minsup {
				decisions[ci] = true
				if !final {
					st.EarlyExit++
				}
				continue
			}
			if final {
				decisions[ci] = false
				continue
			}
			rem := m.suffix[int(pa[ci])*(ns+1)+blockEnd]
			if r := m.suffix[int(pb[ci])*(ns+1)+blockEnd]; r < rem {
				rem = r
			}
			if a+rem < minsup {
				decisions[ci] = false
				st.Abandoned++
				continue
			}
			keep = append(keep, ci)
		}
		alive = keep
	}
	sc.alive = alive
	return st
}

// boundTriplesFlat is boundPairsFlat for uniform 3-itemset generations.
func (m *Map) boundTriplesFlat(sc *batchScratch, pa, pb, pc []dataset.Item, minsup int64, decisions []bool) BatchStats {
	var st BatchStats
	n := len(pa)
	acc := sc.accFor(n)
	alive := sc.aliveFor(n)
	for ci := 0; ci < n; ci++ {
		alive = append(alive, int32(ci))
	}
	ns, k := m.numSegs, m.numItems
	for blockStart := 0; blockStart < ns && len(alive) > 0; blockStart += blockSegs {
		blockEnd := min(blockStart+blockSegs, ns)
		for s := blockStart; s < blockEnd; s++ {
			row := m.segMajor[s*k : (s+1)*k]
			for _, ci := range alive {
				ca := row[pa[ci]]
				if cb := row[pb[ci]]; cb < ca {
					ca = cb
				}
				if cc := row[pc[ci]]; cc < ca {
					ca = cc
				}
				acc[ci] += int64(ca)
			}
		}
		final := blockEnd == ns
		keep := alive[:0]
		for _, ci := range alive {
			a := acc[ci]
			if a >= minsup {
				decisions[ci] = true
				if !final {
					st.EarlyExit++
				}
				continue
			}
			if final {
				decisions[ci] = false
				continue
			}
			rem := m.suffix[int(pa[ci])*(ns+1)+blockEnd]
			if r := m.suffix[int(pb[ci])*(ns+1)+blockEnd]; r < rem {
				rem = r
			}
			if r := m.suffix[int(pc[ci])*(ns+1)+blockEnd]; r < rem {
				rem = r
			}
			if a+rem < minsup {
				decisions[ci] = false
				st.Abandoned++
				continue
			}
			keep = append(keep, ci)
		}
		alive = keep
	}
	sc.alive = alive
	return st
}

// UpperBoundBatch computes the exact bound ubsup(cands[i]) for every
// candidate with the same row-amortized block loop as BoundBatch but no
// early termination (callers want the values, not a decision). If out is
// too small a fresh slice is allocated; the filled slice is returned.
// Each value is bit-identical to UpperBound(cands[i]).
func (m *Map) UpperBoundBatch(cands []dataset.Itemset, out []int64) []int64 {
	if cap(out) < len(cands) {
		out = make([]int64, len(cands))
	}
	out = out[:len(cands)]
	// Size dispatch, as in BoundBatch: under the crossover the
	// column-major scalar scan beats the blocked row loop, and shard
	// sub-maps (internal/shard) land here routinely.
	if m.numSegs <= batchCrossoverSegs {
		for ci, x := range cands {
			out[ci] = m.UpperBound(x)
		}
		return out
	}
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)
	alive := sc.aliveFor(len(cands))
	for ci, x := range cands {
		switch len(x) {
		case 0:
			panic("core: UpperBoundBatch of the empty itemset is not defined by the OSSM")
		case 1:
			out[ci] = m.totals[x[0]]
		default:
			out[ci] = 0
			alive = append(alive, int32(ci))
		}
	}
	ns, k := m.numSegs, m.numItems
	for s := 0; s < ns && len(alive) > 0; s++ {
		row := m.segMajor[s*k : (s+1)*k]
		for _, ci := range alive {
			x := cands[ci]
			minC := row[x[0]]
			for _, it := range x[1:] {
				if c := row[it]; c < minC {
					minC = c
				}
			}
			out[ci] += int64(minC)
		}
	}
	sc.alive = alive
	return out
}

// BoundPairsAmong decides every 2-subset {items[i], items[j]}, i < j, of
// a frequent-1 generation — the candidate-2 wall. Decisions are written
// in the same order a nested i-outer/j-inner loop visits the pairs
// (PairIndex gives the mapping); decisions must have
// len(items)·(len(items)−1)/2 entries. The pair-specialized inner loop
// avoids itemset materialization entirely.
func (m *Map) BoundPairsAmong(items []dataset.Item, minsup int64, decisions []bool) BatchStats {
	var st BatchStats
	n := len(items)
	numPairs := n * (n - 1) / 2
	if numPairs == 0 {
		return st
	}
	if len(decisions) < numPairs {
		panic("core: BoundPairsAmong needs one decision slot per pair")
	}
	if m.numSegs <= batchCrossoverSegs {
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ok, o := m.boundPairAtLeast(items[i], items[j], minsup)
				decisions[idx] = ok
				st.note(o)
				idx++
			}
		}
		return st
	}
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)
	pa, pb := sc.pairsFor(numPairs)
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pa[idx], pb[idx] = items[i], items[j]
			idx++
		}
	}
	return m.boundPairsFlat(sc, pa, pb, minsup, decisions)
}

// PairIndex maps the pair (items[i], items[j]), i < j, of an n-item
// generation to its position in BoundPairsAmong's decisions slice — the
// standard upper-triangular row-major index.
func PairIndex(i, j, n int) int {
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// BoundExtensions decides every one-item extension prefix ∪ {exts[e]} of
// a shared prefix — the shape depth-first miners (Eclat, DepthProject)
// generate candidates in. The prefix's per-segment minima are computed
// once and shared across all extensions, so each extension costs one
// column touch per segment instead of a full itemset scan; decisions must
// have len(exts) entries. If the prefix is empty each extension is the
// singleton {exts[e]}, decided from the exact totals.
func (m *Map) BoundExtensions(prefix dataset.Itemset, exts []dataset.Item, minsup int64, decisions []bool) BatchStats {
	var st BatchStats
	if len(exts) == 0 {
		return st
	}
	if len(decisions) < len(exts) {
		panic("core: BoundExtensions needs one decision slot per extension")
	}
	if len(prefix) == 0 {
		for e, it := range exts {
			decisions[e] = m.totals[it] >= minsup
		}
		return st
	}
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)
	ns, k := m.numSegs, m.numItems
	// Per-segment minimum over the prefix items, and its suffix sums:
	// prefSuf[s] = Σ_{t≥s} prefMin[t] caps the prefix side of any
	// extension's remaining contribution.
	if cap(sc.prefMin) < ns {
		sc.prefMin = make([]uint32, ns)
	}
	if cap(sc.prefSuf) < ns+1 {
		sc.prefSuf = make([]int64, ns+1)
	}
	prefMin, prefSuf := sc.prefMin[:ns], sc.prefSuf[:ns+1]
	copy(prefMin, m.Column(prefix[0]))
	for _, it := range prefix[1:] {
		col := m.itemMajor[int(it)*ns : int(it)*ns+ns]
		for s, c := range col {
			if c < prefMin[s] {
				prefMin[s] = c
			}
		}
	}
	prefSuf[ns] = 0
	for s := ns - 1; s >= 0; s-- {
		prefSuf[s] = prefSuf[s+1] + int64(prefMin[s])
	}
	acc := sc.accFor(len(exts))
	alive := sc.aliveFor(len(exts))
	for e := range exts {
		alive = append(alive, int32(e))
	}
	for blockStart := 0; blockStart < ns && len(alive) > 0; blockStart += blockSegs {
		blockEnd := min(blockStart+blockSegs, ns)
		for s := blockStart; s < blockEnd; s++ {
			row := m.segMajor[s*k : (s+1)*k]
			pm := prefMin[s]
			for _, ei := range alive {
				c := row[exts[ei]]
				if pm < c {
					c = pm
				}
				acc[ei] += int64(c)
			}
		}
		final := blockEnd == ns
		keep := alive[:0]
		for _, ei := range alive {
			a := acc[ei]
			if a >= minsup {
				decisions[ei] = true
				if !final {
					st.EarlyExit++
				}
				continue
			}
			if final {
				decisions[ei] = false
				continue
			}
			rem := prefSuf[blockEnd]
			if r := m.suffix[int(exts[ei])*(ns+1)+blockEnd]; r < rem {
				rem = r
			}
			if a+rem < minsup {
				decisions[ei] = false
				st.Abandoned++
				continue
			}
			keep = append(keep, ei)
		}
		alive = keep
	}
	sc.alive = alive
	return st
}
