package core

import (
	"math/rand"
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// randMapFor builds a random support matrix with a skewed popularity law,
// the shape the kernel benchmarks use.
func randMapFor(t *testing.T, r *rand.Rand, segs, items int) *Map {
	t.Helper()
	rows := make([][]uint32, segs)
	for s := range rows {
		rows[s] = make([]uint32, items)
		for i := range rows[s] {
			rows[s][i] = uint32(r.Intn(1 + 120>>(i%6)))
		}
	}
	m, err := NewMap(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// splitRanges partitions [0, n) into parts contiguous ranges the way
// internal/shard does: even sizes with the remainder spread over the
// leading ranges, so uneven segment counts produce uneven shards.
func splitRanges(n, parts int) [][2]int {
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	base, rem := n/parts, n%parts
	lo := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}

// TestSegmentRangeLossless is the partition identity behind sharded
// serving: for any contiguous partition of the segment axis, the sum of
// the views' bounds equals the full map's bound exactly — for scalar
// UpperBound, the batch kernel, and singleton totals.
func TestSegmentRangeLossless(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, segs := range []int{1, 2, 3, 7, 16, 33, 40, 257} {
		m := randMapFor(t, r, segs, 24)
		for _, parts := range []int{1, 2, 3, 8} {
			ranges := splitRanges(segs, parts)
			views := make([]*Map, len(ranges))
			for i, rg := range ranges {
				v, err := m.SegmentRange(rg[0], rg[1])
				if err != nil {
					t.Fatalf("SegmentRange(%d, %d) over %d segments: %v", rg[0], rg[1], segs, err)
				}
				if v.NumSegments() != rg[1]-rg[0] {
					t.Fatalf("view [%d,%d) has %d segments", rg[0], rg[1], v.NumSegments())
				}
				views[i] = v
			}
			cands := make([]dataset.Itemset, 64)
			for i := range cands {
				cands[i] = randomNonEmptyItemset(r, m.NumItems())
			}
			full := m.UpperBoundBatch(cands, nil)
			merged := make([]int64, len(cands))
			for _, v := range views {
				part := v.UpperBoundBatch(cands, nil)
				for i, b := range part {
					merged[i] += b
				}
			}
			for i, x := range cands {
				if merged[i] != full[i] {
					t.Fatalf("%d segments / %d shards: merged bound %d != full bound %d for %v",
						segs, parts, merged[i], full[i], x)
				}
				var scalar int64
				for _, v := range views {
					scalar += v.UpperBound(x)
				}
				if scalar != full[i] {
					t.Fatalf("%d segments / %d shards: scalar-merged bound %d != %d for %v",
						segs, parts, scalar, full[i], x)
				}
			}
			for it := 0; it < m.NumItems(); it++ {
				var tot int64
				for _, v := range views {
					tot += v.ItemSupport(dataset.Item(it))
				}
				if tot != m.ItemSupport(dataset.Item(it)) {
					t.Fatalf("item %d: merged total %d != %d", it, tot, m.ItemSupport(dataset.Item(it)))
				}
			}
		}
	}
}

// TestSegmentRangeViewsSatisfyKernelContract runs the full kernel
// differential harness on segment-range views: a view is a first-class
// Map, so every kernel must agree with the reference walk on it.
func TestSegmentRangeViewsSatisfyKernelContract(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	m := randMapFor(t, r, 48, 12)
	for _, rg := range [][2]int{{0, 48}, {0, 17}, {17, 48}, {5, 6}, {40, 48}} {
		v, err := m.SegmentRange(rg[0], rg[1])
		if err != nil {
			t.Fatal(err)
		}
		checkKernelsAgainstReference(t, r, v, 8)
	}
}

// TestSegmentRangeSharing pins the zero-copy contract: a view's rows are
// the parent's rows, and the full range returns the parent itself.
func TestSegmentRangeSharing(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	m := randMapFor(t, r, 10, 8)
	v, err := m.SegmentRange(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < v.NumSegments(); s++ {
		parent := m.SegmentRow(3 + s)
		view := v.SegmentRow(s)
		if &parent[0] != &view[0] {
			t.Fatalf("view row %d does not alias parent row %d", s, 3+s)
		}
	}
	if full, _ := m.SegmentRange(0, 10); full != m {
		t.Fatal("full-range view should be the parent map itself")
	}
}

// TestSegmentRangeErrors pins the bounds validation.
func TestSegmentRangeErrors(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	m := randMapFor(t, r, 5, 4)
	for _, rg := range [][2]int{{-1, 3}, {0, 6}, {3, 3}, {4, 2}} {
		if _, err := m.SegmentRange(rg[0], rg[1]); err == nil {
			t.Fatalf("SegmentRange(%d, %d) over 5 segments should fail", rg[0], rg[1])
		}
	}
}

// TestBatchCrossoverDispatch pins the size-dispatched front-end on both
// sides of the crossover: decisions and exact bounds stay bit-identical
// to the reference, and the small lane still reports shortcut outcomes.
func TestBatchCrossoverDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	crossover := smallCrossoverSegs(2)
	for _, segs := range []int{crossover - 1, crossover, crossover + 1, 16} {
		m := randMapFor(t, r, segs, 16)
		checkKernelsAgainstReference(t, r, m, 10)

		// A discriminative threshold so the small lane actually takes
		// shortcuts on a multi-segment map.
		cands := make([]dataset.Itemset, 256)
		for i := range cands {
			for {
				cands[i] = randomNonEmptyItemset(r, 16)
				if len(cands[i]) >= 2 {
					break
				}
			}
		}
		bounds := m.UpperBoundBatch(cands, nil)
		var maxB int64
		for _, b := range bounds {
			if b > maxB {
				maxB = b
			}
		}
		dec := make([]bool, len(cands))
		st := m.BoundBatch(cands, maxB/2+1, dec)
		if segs > 2 && st.EarlyExit+st.Abandoned == 0 {
			t.Fatalf("%d segments: no shortcut outcomes recorded across %d candidates", segs, len(cands))
		}
	}
}
