package core

import (
	"fmt"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// Appender maintains an OSSM incrementally as transactions stream in —
// the online setting of the precursor SSM case study (Lakshmanan, Leung
// & Ng, SIGKDD Explorations 2000), where the structure feeds an online
// miner such as Carma. Transactions accumulate into fixed-size pages;
// completed pages become candidate segments; whenever the working set
// exceeds CompactAt, the configured segmentation algorithm folds it back
// to MaxSegments. Snapshot yields a queryable Map over everything
// appended so far at any moment.
type Appender struct {
	numItems    int
	pageSize    int
	maxSegments int
	compactAt   int
	alg         Algorithm
	bubble      []dataset.Item
	seed        int64

	rows  [][]uint32 // completed-page / compacted segment rows
	cur   []uint32   // current partial page
	curN  int        // transactions in the partial page
	total int64      // transactions appended overall
}

// AppenderOptions configures NewAppender.
type AppenderOptions struct {
	// PageSize is the number of transactions per page (default 100, the
	// paper's 4 KB-page estimate).
	PageSize int
	// MaxSegments is the segment budget n_user (default 40).
	MaxSegments int
	// CompactAt triggers compaction when the working set reaches this
	// many rows (default 4 × MaxSegments).
	CompactAt int
	// Algorithm folds the working set during compaction (default
	// AlgGreedy; use AlgRandom for minimum latency).
	Algorithm Algorithm
	// Bubble restricts sumdiff during compaction (nil = all items).
	Bubble []dataset.Item
	// Seed drives randomized compaction.
	Seed int64
}

// NewAppender creates an empty online OSSM maintainer over a domain of
// numItems items.
func NewAppender(numItems int, opts AppenderOptions) (*Appender, error) {
	if numItems <= 0 {
		return nil, fmt.Errorf("core: numItems must be positive, got %d", numItems)
	}
	if opts.PageSize == 0 {
		opts.PageSize = 100
	}
	if opts.PageSize < 1 {
		return nil, fmt.Errorf("core: PageSize must be positive, got %d", opts.PageSize)
	}
	if opts.MaxSegments == 0 {
		opts.MaxSegments = 40
	}
	if opts.MaxSegments < 1 {
		return nil, fmt.Errorf("core: MaxSegments must be positive, got %d", opts.MaxSegments)
	}
	if opts.CompactAt == 0 {
		opts.CompactAt = 4 * opts.MaxSegments
	}
	if opts.CompactAt <= opts.MaxSegments {
		return nil, fmt.Errorf("core: CompactAt (%d) must exceed MaxSegments (%d)", opts.CompactAt, opts.MaxSegments)
	}
	if opts.Algorithm == AlgRandomRC || opts.Algorithm == AlgRandomGreedy {
		return nil, fmt.Errorf("core: hybrid algorithms are redundant for incremental compaction; use %v or %v",
			AlgRC, AlgGreedy)
	}
	return &Appender{
		numItems:    numItems,
		pageSize:    opts.PageSize,
		maxSegments: opts.MaxSegments,
		compactAt:   opts.CompactAt,
		alg:         opts.Algorithm,
		bubble:      opts.Bubble,
		seed:        opts.Seed,
		cur:         make([]uint32, numItems),
	}, nil
}

// Add appends one transaction. The input must be a valid Itemset over
// the appender's domain; Add returns an error otherwise and leaves the
// state unchanged.
func (a *Appender) Add(tx dataset.Itemset) error {
	if !tx.Valid() {
		return fmt.Errorf("core: Add requires a strictly ascending itemset, got %v", tx)
	}
	if len(tx) > 0 && int(tx[len(tx)-1]) >= a.numItems {
		return fmt.Errorf("core: item %d outside domain of %d items", tx[len(tx)-1], a.numItems)
	}
	for _, it := range tx {
		a.cur[it]++
	}
	a.curN++
	a.total++
	if a.curN == a.pageSize {
		a.rows = append(a.rows, a.cur)
		a.cur = make([]uint32, a.numItems)
		a.curN = 0
		if len(a.rows) >= a.compactAt {
			if err := a.compact(); err != nil {
				return err
			}
		}
	}
	return nil
}

// compact folds the working set down to MaxSegments rows.
func (a *Appender) compact() error {
	res, err := Segment(a.rows, Options{
		Algorithm:      a.alg,
		TargetSegments: a.maxSegments,
		Bubble:         a.bubble,
		Seed:           a.seed,
	})
	if err != nil {
		return err
	}
	rows := make([][]uint32, res.Map.NumSegments())
	for s := range rows {
		row := make([]uint32, a.numItems)
		copy(row, res.Map.SegmentRow(s))
		rows[s] = row
	}
	a.rows = rows
	a.seed++
	return nil
}

// NumTx returns the number of transactions appended so far.
func (a *Appender) NumTx() int64 { return a.total }

// AppenderState is the complete replayable state of an Appender: the
// configuration it was created with plus everything Add has accumulated.
// It is the unit of durability for write-ahead-logged ingestion
// (internal/wal): persist a State, replay the WAL tail through Add, and
// the appender is bit-identical to one that never stopped — Add and
// compact are deterministic given (state, transaction sequence).
type AppenderState struct {
	NumItems    int
	PageSize    int
	MaxSegments int
	CompactAt   int
	Algorithm   Algorithm
	Bubble      []dataset.Item
	Seed        int64 // the *current* seed (advanced by past compactions)

	Rows  [][]uint32 // completed-page / compacted segment rows
	Cur   []uint32   // partial-page singleton counts
	CurN  int        // transactions in the partial page
	Total int64      // transactions appended overall
}

// State returns a deep copy of the appender's complete state; the
// appender and the copy evolve independently afterwards.
func (a *Appender) State() AppenderState {
	st := AppenderState{
		NumItems:    a.numItems,
		PageSize:    a.pageSize,
		MaxSegments: a.maxSegments,
		CompactAt:   a.compactAt,
		Algorithm:   a.alg,
		Seed:        a.seed,
		CurN:        a.curN,
		Total:       a.total,
	}
	if a.bubble != nil {
		st.Bubble = append([]dataset.Item(nil), a.bubble...)
	}
	st.Rows = make([][]uint32, len(a.rows))
	for i, row := range a.rows {
		st.Rows[i] = append([]uint32(nil), row...)
	}
	st.Cur = append([]uint32(nil), a.cur...)
	return st
}

// RestoreAppender reconstructs an Appender from a State (deep-copying, so
// the state stays reusable). It validates the configuration exactly like
// NewAppender plus the state invariants a corrupted snapshot could break.
func RestoreAppender(st AppenderState) (*Appender, error) {
	a, err := NewAppender(st.NumItems, AppenderOptions{
		PageSize:    st.PageSize,
		MaxSegments: st.MaxSegments,
		CompactAt:   st.CompactAt,
		Algorithm:   st.Algorithm,
		Bubble:      st.Bubble,
		Seed:        st.Seed,
	})
	if err != nil {
		return nil, err
	}
	if len(st.Cur) != st.NumItems {
		return nil, fmt.Errorf("core: restore: partial page has %d cells, domain %d", len(st.Cur), st.NumItems)
	}
	if st.CurN < 0 || st.CurN >= a.pageSize {
		return nil, fmt.Errorf("core: restore: partial page holds %d transactions, page size %d", st.CurN, a.pageSize)
	}
	if st.Total < 0 {
		return nil, fmt.Errorf("core: restore: negative transaction total %d", st.Total)
	}
	if len(st.Rows) >= a.compactAt {
		return nil, fmt.Errorf("core: restore: %d rows exceed the compaction threshold %d", len(st.Rows), a.compactAt)
	}
	a.rows = make([][]uint32, len(st.Rows))
	for i, row := range st.Rows {
		if len(row) != st.NumItems {
			return nil, fmt.Errorf("core: restore: row %d has %d cells, domain %d", i, len(row), st.NumItems)
		}
		a.rows[i] = append([]uint32(nil), row...)
	}
	copy(a.cur, st.Cur)
	a.curN = st.CurN
	a.total = st.Total
	return a, nil
}

// Segments returns the current working-set size (completed rows, not
// counting the partial page).
func (a *Appender) Segments() int { return len(a.rows) }

// Snapshot returns a queryable OSSM over everything appended so far,
// with at most MaxSegments+1 segments (the partial page rides along as
// its own segment). The snapshot is independent of future appends.
// Snapshot on an empty appender returns nil.
func (a *Appender) Snapshot() (*Map, error) {
	rows := a.rows
	if len(rows) >= a.compactAt {
		// Can only happen if a compaction errored previously; retry.
		if err := a.compact(); err != nil {
			return nil, err
		}
		rows = a.rows
	}
	if len(rows) > a.maxSegments {
		res, err := Segment(rows, Options{
			Algorithm:      a.alg,
			TargetSegments: a.maxSegments,
			Bubble:         a.bubble,
			Seed:           a.seed,
		})
		if err != nil {
			return nil, err
		}
		snap := make([][]uint32, res.Map.NumSegments())
		for s := range snap {
			row := make([]uint32, a.numItems)
			copy(row, res.Map.SegmentRow(s))
			snap[s] = row
		}
		rows = snap
	} else {
		cp := make([][]uint32, len(rows))
		for i, row := range rows {
			c := make([]uint32, len(row))
			copy(c, row)
			cp[i] = c
		}
		rows = cp
	}
	if a.curN > 0 {
		partial := make([]uint32, a.numItems)
		copy(partial, a.cur)
		rows = append(rows, partial)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return NewMap(rows)
}
