package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// example1Map is the 4-segment OSSM of Example 1 of the paper, items
// a=0, b=1, c=2.
func example1Map(t *testing.T) *Map {
	t.Helper()
	m, err := NewMap([][]uint32{
		// segment rows: [a, b, c] per segment
		{20, 40, 40},
		{10, 40, 20},
		{40, 40, 20},
		{40, 10, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExample1Bounds(t *testing.T) {
	m := example1Map(t)
	a, b, c := dataset.Item(0), dataset.Item(1), dataset.Item(2)

	if got := m.ItemSupport(a); got != 110 {
		t.Errorf("sup(a) = %d, want 110", got)
	}
	if got := m.ItemSupport(b); got != 130 {
		t.Errorf("sup(b) = %d, want 130", got)
	}
	if got := m.ItemSupport(c); got != 100 {
		t.Errorf("sup(c) = %d, want 100", got)
	}

	// Equation (1): ubsup({a,b}) = 20+10+40+10 = 80.
	if got := m.UpperBound(dataset.NewItemset(a, b)); got != 80 {
		t.Errorf("ubsup({a,b}) = %d, want 80", got)
	}
	if got := m.UpperBoundPair(a, b); got != 80 {
		t.Errorf("UpperBoundPair(a,b) = %d, want 80", got)
	}
	// ubsup({a,b,c}) = 60.
	if got := m.UpperBound(dataset.NewItemset(a, b, c)); got != 60 {
		t.Errorf("ubsup({a,b,c}) = %d, want 60", got)
	}
	// Without the OSSM (last column only): min(110,130) = 110 and
	// min(110,130,100) = 100.
	if got := m.NaiveUpperBound(dataset.NewItemset(a, b)); got != 110 {
		t.Errorf("naive ubsup({a,b}) = %d, want 110", got)
	}
	if got := m.NaiveUpperBound(dataset.NewItemset(a, b, c)); got != 100 {
		t.Errorf("naive ubsup({a,b,c}) = %d, want 100", got)
	}
}

func TestNewMapErrors(t *testing.T) {
	if _, err := NewMap(nil); !errors.Is(err, ErrNoSegments) {
		t.Errorf("NewMap(nil) err = %v, want ErrNoSegments", err)
	}
	if _, err := NewMap([][]uint32{{1, 2}, {1}}); !errors.Is(err, ErrRaggedSegments) {
		t.Errorf("ragged err = %v, want ErrRaggedSegments", err)
	}
}

func TestUpperBoundPanicsOnEmpty(t *testing.T) {
	m := example1Map(t)
	for _, f := range []func(){
		func() { m.UpperBound(nil) },
		func() { m.NaiveUpperBound(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on empty itemset")
				}
			}()
			f()
		}()
	}
}

func TestSizeBytes(t *testing.T) {
	// The flat store holds both 4-byte cell matrices (segment-major and
	// item-major), the 8-byte totals, and the 8-byte suffix remainders:
	// 4·2·k·n + 8·k + 8·k·(n+1) = 16·k·(n+1) bytes for k items, n segments.
	m := example1Map(t) // 3 items × 4 segments
	if got := m.SizeBytes(); got != 16*3*(4+1) {
		t.Errorf("SizeBytes = %d, want 240", got)
	}
	// Paper claim check: 1000 items × 150 segments ≈ 0.6 MB of cells.
	rows := make([][]uint32, 150)
	for i := range rows {
		rows[i] = make([]uint32, 1000)
	}
	big, err := NewMap(rows)
	if err != nil {
		t.Fatal(err)
	}
	if got := big.CellBytes(); got != 600000 {
		t.Errorf("CellBytes = %d, want 600000", got)
	}
	if got := big.SizeBytes(); got != 16*1000*151 {
		t.Errorf("SizeBytes = %d, want 2416000", got)
	}
}

func TestMergedEqualsNaive(t *testing.T) {
	m := example1Map(t)
	one := m.Merged()
	if one.NumSegments() != 1 {
		t.Fatalf("Merged has %d segments, want 1", one.NumSegments())
	}
	sets := []dataset.Itemset{
		dataset.NewItemset(0, 1),
		dataset.NewItemset(0, 2),
		dataset.NewItemset(1, 2),
		dataset.NewItemset(0, 1, 2),
	}
	for _, x := range sets {
		if one.UpperBound(x) != m.NaiveUpperBound(x) {
			t.Errorf("Merged bound %d ≠ naive bound %d for %v", one.UpperBound(x), m.NaiveUpperBound(x), x)
		}
	}
}

// buildRandomSegmentation splits a random dataset into pages and a random
// page→segment assignment, returning the dataset and the resulting Map.
func buildRandomSegmentation(r *rand.Rand) (*dataset.Dataset, *Map) {
	d := randomDataset(r)
	m := 1 + r.Intn(d.NumTx())
	pages := dataset.PaginateN(d, m)
	nseg := 1 + r.Intn(m)
	assign := make([][]int, nseg)
	for pi := range pages {
		s := r.Intn(nseg)
		assign[s] = append(assign[s], pi)
	}
	// Drop empty segments (BuildFromPages would produce all-zero rows,
	// which are legal but pointless).
	var nonEmpty [][]int
	for _, a := range assign {
		if len(a) > 0 {
			nonEmpty = append(nonEmpty, a)
		}
	}
	mp, err := BuildFromPages(d, pages, nonEmpty)
	if err != nil {
		panic(err)
	}
	return d, mp
}

func randomDataset(r *rand.Rand) *dataset.Dataset {
	k := 2 + r.Intn(6)
	n := 2 + r.Intn(40)
	b := dataset.NewBuilder(k)
	for i := 0; i < n; i++ {
		sz := r.Intn(k + 1)
		tx := make([]dataset.Item, sz)
		for j := range tx {
			tx[j] = dataset.Item(r.Intn(k))
		}
		if err := b.Append(tx); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func randomNonEmptyItemset(r *rand.Rand, k int) dataset.Itemset {
	n := 1 + r.Intn(minInt(3, k))
	items := make([]dataset.Item, n)
	for i := range items {
		items[i] = dataset.Item(r.Intn(k))
	}
	return dataset.NewItemset(items...)
}

func TestUpperBoundSoundnessProperty(t *testing.T) {
	// The central invariant: for every itemset, ubsup(X, M) ≥ sup(X), and
	// for singletons the bound is exact. Also ubsup ≤ naive bound.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, m := buildRandomSegmentation(r)
		for trial := 0; trial < 20; trial++ {
			x := randomNonEmptyItemset(r, d.NumItems())
			ub := m.UpperBound(x)
			actual := int64(d.Support(x))
			if ub < actual {
				return false
			}
			if ub > m.NaiveUpperBound(x) {
				return false
			}
			if len(x) == 1 && ub != actual {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFinerSegmentationTightens(t *testing.T) {
	// Section 3: the bound can only get tighter as segments are split. We
	// compare one-page-per-segment against any coarser random grouping of
	// the same pages.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		mPages := 1 + r.Intn(d.NumTx())
		pages := dataset.PaginateN(d, mPages)
		finestAssign := make([][]int, len(pages))
		for i := range pages {
			finestAssign[i] = []int{i}
		}
		finest, err := BuildFromPages(d, pages, finestAssign)
		if err != nil {
			return false
		}
		nseg := 1 + r.Intn(mPages)
		coarseAssign := make([][]int, 0, nseg)
		buckets := make([][]int, nseg)
		for pi := range pages {
			s := r.Intn(nseg)
			buckets[s] = append(buckets[s], pi)
		}
		for _, b := range buckets {
			if len(b) > 0 {
				coarseAssign = append(coarseAssign, b)
			}
		}
		coarse, err := BuildFromPages(d, pages, coarseAssign)
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			x := randomNonEmptyItemset(r, d.NumItems())
			if finest.UpperBound(x) > coarse.UpperBound(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOnePagePerTransactionIsExact(t *testing.T) {
	// The "hypothetical extreme case" of Section 3: n = number of
	// transactions makes the bound exact for every itemset.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		d := randomDataset(r)
		pages := dataset.PaginateN(d, d.NumTx())
		assign := make([][]int, len(pages))
		for i := range pages {
			assign[i] = []int{i}
		}
		m, err := BuildFromPages(d, pages, assign)
		if err != nil {
			t.Fatal(err)
		}
		for inner := 0; inner < 20; inner++ {
			x := randomNonEmptyItemset(r, d.NumItems())
			if got, want := m.UpperBound(x), int64(d.Support(x)); got != want {
				t.Fatalf("per-transaction OSSM bound %d ≠ support %d for %v", got, want, x)
			}
		}
	}
}

func TestBuildFromPagesErrors(t *testing.T) {
	d := dataset.MustFromTransactions(2, [][]dataset.Item{{0}, {1}})
	pages := dataset.Paginate(d, 1)
	if _, err := BuildFromPages(d, pages, nil); !errors.Is(err, ErrNoSegments) {
		t.Errorf("err = %v, want ErrNoSegments", err)
	}
	if _, err := BuildFromPages(d, pages, [][]int{{0, 7}}); err == nil {
		t.Error("out-of-range page accepted")
	}
}

func TestPruner(t *testing.T) {
	m := example1Map(t)
	p := &Pruner{Map: m, MinCount: 100}
	ab := dataset.NewItemset(0, 1)
	if p.Allow(ab) {
		t.Error("ubsup({a,b}) = 80 < 100 should be pruned")
	}
	if !p.Allow(dataset.NewItemset(1)) { // sup(b) = 130
		t.Error("singleton b with support 130 should pass")
	}
	if p.Checked != 2 || p.Pruned != 1 {
		t.Errorf("counters = (%d checked, %d pruned), want (2, 1)", p.Checked, p.Pruned)
	}
	if p.AllowPair(0, 1) {
		t.Error("AllowPair should prune {a,b} at threshold 100")
	}
	p.Reset()
	if p.Checked != 0 || p.Pruned != 0 {
		t.Error("Reset did not zero counters")
	}

	var nilP *Pruner
	if !nilP.Allow(ab) || !nilP.AllowPair(0, 1) {
		t.Error("nil pruner must admit everything")
	}
	nilP.Reset() // must not panic
	noMap := &Pruner{MinCount: 1 << 60}
	if !noMap.Allow(ab) {
		t.Error("pruner without a Map must admit everything")
	}
}

func TestPrunerSoundnessProperty(t *testing.T) {
	// A pruned candidate is never actually frequent: if Allow returns
	// false at threshold σ then sup(X) < σ.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, m := buildRandomSegmentation(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		p := &Pruner{Map: m, MinCount: minCount}
		for trial := 0; trial < 20; trial++ {
			x := randomNonEmptyItemset(r, d.NumItems())
			if !p.Allow(x) && int64(d.Support(x)) >= minCount {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTotalsShared(t *testing.T) {
	m := example1Map(t)
	totals := m.Totals()
	if len(totals) != 3 || totals[0] != 110 || totals[1] != 130 || totals[2] != 100 {
		t.Errorf("Totals = %v, want [110 130 100]", totals)
	}
}

func TestSegmentRowAccess(t *testing.T) {
	m := example1Map(t)
	row := m.SegmentRow(2)
	if row[0] != 40 || row[1] != 40 || row[2] != 20 {
		t.Errorf("SegmentRow(2) = %v", row)
	}
}
