package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// budgetRows builds n synthetic page rows over k items.
func budgetRows(n, k int, seed int64) [][]uint32 {
	r := rand.New(rand.NewSource(seed))
	rows := make([][]uint32, n)
	for i := range rows {
		rows[i] = make([]uint32, k)
		for j := range rows[i] {
			rows[i][j] = uint32(r.Intn(50))
		}
	}
	return rows
}

// TestSegmentBudgetPaths drives every algorithm through the interesting
// n_user budgets: the minimum (1), the identity (== pages), and an
// over-ask (> pages, clamped). In every case the produced map must keep
// the exact per-item totals — merging only ever adds rows together.
func TestSegmentBudgetPaths(t *testing.T) {
	const pages, items = 12, 9
	rows := budgetRows(pages, items, 3)
	wantTotals := make([]int64, items)
	for _, row := range rows {
		for j, c := range row {
			wantTotals[j] += int64(c)
		}
	}
	budgets := []struct {
		name         string
		target       int
		wantSegments int
	}{
		{"one segment", 1, 1},
		{"half the pages", pages / 2, pages / 2},
		{"equal to pages", pages, pages},
		{"more than pages", pages + 25, pages},
	}
	for _, alg := range allAlgorithms() {
		for _, b := range budgets {
			t.Run(fmt.Sprintf("%s/%s", alg, b.name), func(t *testing.T) {
				// mid = pages keeps MidSegments ≥ target valid for every
				// budget, including the over-ask (target is clamped first).
				res, err := Segment(rows, optsFor(alg, b.target, pages, 7))
				if err != nil {
					t.Fatal(err)
				}
				m := res.Map
				if m.NumSegments() != b.wantSegments {
					t.Fatalf("segments = %d, want %d", m.NumSegments(), b.wantSegments)
				}
				for j, want := range wantTotals {
					if got := m.ItemSupport(dataset.Item(j)); got != want {
						t.Fatalf("item %d total = %d, want %d", j, got, want)
					}
				}
				// The segment rows must partition the totals exactly.
				for j := range wantTotals {
					var sum int64
					for i := 0; i < m.NumSegments(); i++ {
						sum += int64(m.SegmentSupport(i, dataset.Item(j)))
					}
					if sum != wantTotals[j] {
						t.Fatalf("item %d: segment rows sum to %d, want %d", j, sum, wantTotals[j])
					}
				}
			})
		}
	}
}

// TestSegmentBudgetRejections pins the invalid-budget error paths for
// every algorithm.
func TestSegmentBudgetRejections(t *testing.T) {
	rows := budgetRows(6, 4, 1)
	for _, alg := range allAlgorithms() {
		for _, target := range []int{0, -3} {
			if _, err := Segment(rows, optsFor(alg, target, 6, 0)); err == nil {
				t.Errorf("%s: TargetSegments %d accepted", alg, target)
			}
		}
	}
	for _, alg := range []Algorithm{AlgRandomRC, AlgRandomGreedy} {
		if _, err := Segment(rows, optsFor(alg, 4, 3, 0)); err == nil {
			t.Errorf("%s: MidSegments < TargetSegments accepted", alg)
		}
		// mid == target is the boundary: legal, the Random phase is a
		// no-op and the refinement phase does all the work.
		res, err := Segment(rows, optsFor(alg, 3, 3, 0))
		if err != nil {
			t.Errorf("%s: MidSegments == TargetSegments rejected: %v", alg, err)
		} else if res.Map.NumSegments() != 3 {
			t.Errorf("%s: got %d segments, want 3", alg, res.Map.NumSegments())
		}
	}
}

// TestSegmentSingleRow covers the degenerate one-page input: every
// algorithm must return it unchanged for any budget.
func TestSegmentSingleRow(t *testing.T) {
	rows := [][]uint32{{4, 0, 7}}
	for _, alg := range allAlgorithms() {
		for _, target := range []int{1, 2, 100} {
			res, err := Segment(rows, optsFor(alg, target, 100, 0))
			if err != nil {
				t.Fatalf("%s target %d: %v", alg, target, err)
			}
			if res.Map.NumSegments() != 1 {
				t.Fatalf("%s target %d: %d segments", alg, target, res.Map.NumSegments())
			}
			if got := res.Map.SegmentRow(0); got[0] != 4 || got[1] != 0 || got[2] != 7 {
				t.Fatalf("%s: row mangled: %v", alg, got)
			}
		}
	}
}
