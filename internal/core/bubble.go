package core

import (
	"sort"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// BubbleList selects the items "on the bubble" (Section 5.3): the items
// whose global supports barely satisfy, and are closest to, the support
// threshold minCount. Restricting the sumdiff summation to these items
// removes the k² factor from Greedy's and RC's complexity while keeping
// the segmentation focused where OSSM filtering matters most.
//
// Selection order: items with support ≥ minCount, closest-above first;
// if fewer than size such items exist, the list is padded with the items
// just below the threshold, closest-below first. The result is sorted by
// item id. size is clamped to the domain size; size ≤ 0 yields nil
// (callers treat nil as "use all items").
func BubbleList(totals []int64, minCount int64, size int) []dataset.Item {
	if size <= 0 {
		return nil
	}
	k := len(totals)
	if size > k {
		size = k
	}
	above := make([]dataset.Item, 0, k)
	below := make([]dataset.Item, 0, k)
	for i, t := range totals {
		if t >= minCount {
			above = append(above, dataset.Item(i))
		} else {
			below = append(below, dataset.Item(i))
		}
	}
	sort.Slice(above, func(i, j int) bool {
		ti, tj := totals[above[i]], totals[above[j]]
		if ti != tj {
			return ti < tj // barely satisfying first
		}
		return above[i] < above[j]
	})
	sort.Slice(below, func(i, j int) bool {
		ti, tj := totals[below[i]], totals[below[j]]
		if ti != tj {
			return ti > tj // closest below first
		}
		return below[i] < below[j]
	})
	out := make([]dataset.Item, 0, size)
	out = append(out, above[:minInt(size, len(above))]...)
	if len(out) < size {
		out = append(out, below[:size-len(out)]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BubbleListFromCounts is BubbleList over per-page rows: it sums the rows
// into global supports first. Convenient when no Map has been built yet.
func BubbleListFromCounts(rows [][]uint32, minCount int64, size int) []dataset.Item {
	if len(rows) == 0 {
		return nil
	}
	totals := make([]int64, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			totals[i] += int64(c)
		}
	}
	return BubbleList(totals, minCount, size)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
