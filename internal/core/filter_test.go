package core

import (
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestAdmitHelpers(t *testing.T) {
	if !Admit(nil, dataset.NewItemset(1)) {
		t.Error("Admit(nil) should allow")
	}
	if !AdmitPair(nil, 1, 2) {
		t.Error("AdmitPair(nil) should allow")
	}
	deny := FilterFunc(func(dataset.Itemset) bool { return false })
	if Admit(deny, dataset.NewItemset(1)) {
		t.Error("Admit should consult the filter")
	}
	if AdmitPair(deny, 1, 2) {
		t.Error("AdmitPair should consult the filter")
	}
}

func TestExtendedPrunerAllowPair(t *testing.T) {
	d := dataset.MustFromTransactions(3, [][]dataset.Item{
		{0, 1}, {0, 1}, {0, 2}, {1, 2},
	})
	pages := dataset.PaginateN(d, 4)
	assign := [][]int{{0, 1}, {2, 3}}
	e, err := BuildExtended(d, pages, assign, []dataset.Item{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	p := e.Pruner(2)
	// Tracked pair {0,1}: exact support 2 ≥ 2 → allowed, counted exact.
	if !p.AllowPair(0, 1) {
		t.Error("tracked frequent pair rejected")
	}
	if p.Exact != 1 {
		t.Errorf("Exact = %d, want 1", p.Exact)
	}
	// Untracked pair {0,2}: falls back to the pair bound.
	p.AllowPair(0, 2)
	if p.Exact != 1 {
		t.Error("untracked pair counted exact")
	}
	var nilP *ExtendedPruner
	if !nilP.AllowPair(0, 1) {
		t.Error("nil extended pruner must allow")
	}
}
