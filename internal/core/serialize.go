package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The OSSM is a compile-time structure meant to outlive the session that
// built it (Section 3: "computed once at compile-time … used regardless
// of how the support threshold is changed"). The binary format is
// little-endian: magic "OSSMMAP1", uint32 numItems, uint32 numSegments,
// then the segment rows as uint32 cells.

var mapMagic = [8]byte{'O', 'S', 'S', 'M', 'M', 'A', 'P', '1'}

// ErrBadMapFormat is returned when parsing a serialized Map fails.
var ErrBadMapFormat = errors.New("core: bad OSSM map format")

// ErrTruncated is returned when a serialized Map ends before its header
// promises — the stream is a valid prefix cut short (a torn write, a
// partial copy), not structural corruption. Recovery paths use the
// distinction: a truncated snapshot means "fall back to an earlier one",
// a corrupt header means "the file was never a map". Truncation is
// still a failed parse, so these errors match ErrBadMapFormat too.
var ErrTruncated = fmt.Errorf("%w: truncated", ErrBadMapFormat)

// shortRead classifies a ReadFull failure: end-of-stream errors mean the
// input was cut off, anything else is an I/O failure to pass through.
func shortRead(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// WriteMap serializes m.
func WriteMap(w io.Writer, m *Map) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(mapMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(m.numItems))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(m.NumSegments()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var cell [4]byte
	for _, c := range m.segMajor {
		binary.LittleEndian.PutUint32(cell[:], c)
		if _, err := bw.Write(cell[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMap parses a serialized Map.
func ReadMap(r io.Reader) (*Map, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if shortRead(err) {
			return nil, fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
		}
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadMapFormat, err)
	}
	if magic != mapMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadMapFormat, magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if shortRead(err) {
			return nil, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
		}
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadMapFormat, err)
	}
	numItems := int(binary.LittleEndian.Uint32(hdr[0:4]))
	numSegs := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if numSegs < 1 {
		return nil, fmt.Errorf("%w: %d segments", ErrBadMapFormat, numSegs)
	}
	// Guard against hostile headers demanding absurd allocations (a 2³²
	// cell matrix) before any payload byte has been validated.
	const maxCells = 1 << 28 // 1 GiB of uint32 cells
	if numItems > maxCells || numSegs > maxCells || int64(numItems)*int64(numSegs) > maxCells {
		return nil, fmt.Errorf("%w: header claims %d×%d cells", ErrBadMapFormat, numSegs, numItems)
	}
	flat := make([]uint32, numSegs*numItems)
	buf := make([]byte, 4*numItems)
	for s := 0; s < numSegs; s++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			if shortRead(err) {
				return nil, fmt.Errorf("%w: segment %d: %v", ErrTruncated, s, err)
			}
			return nil, fmt.Errorf("%w: segment %d: %v", ErrBadMapFormat, s, err)
		}
		row := flat[s*numItems : (s+1)*numItems]
		for i := range row {
			row[i] = binary.LittleEndian.Uint32(buf[4*i:])
		}
	}
	return newMapFromFlat(numSegs, numItems, flat), nil
}
