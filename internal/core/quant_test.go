package core

import (
	"math/rand"
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// Tests for the quantized uint16 mirror (quant.go): the overflow rule at
// the exact uint16 boundary, the SetQuantized knob, freshness across the
// online append path, and the differential guarantee on maps that
// straddle the boundary under every segmenter.

// deepBoundaryMap builds an 80-segment, 8-item map of small random cells
// with one cell pinned at boundary — deep enough that pair, triple and
// k-item decisions all dispatch past the small crossover.
func deepBoundaryMap(t *testing.T, r *rand.Rand, boundary uint32) *Map {
	t.Helper()
	const segs, k = 80, 8
	rows := make([][]uint32, segs)
	for s := range rows {
		rows[s] = make([]uint32, k)
		for i := range rows[s] {
			rows[s][i] = uint32(r.Intn(120))
		}
	}
	rows[segs/2][k/2] = boundary
	m, err := NewMap(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestKernelQuantizedOverflowBoundary pins the mirror's overflow rule at
// the exact uint16 boundary: a 65535 cell still quantizes, 65536 keeps
// the whole map on the uint32 lanes — and either way every kernel
// decision stays bit-identical to the reference bound.
func TestKernelQuantizedOverflowBoundary(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cell  uint32
		quant bool
	}{
		{"fits-65535", 65535, true},
		{"overflows-65536", 65536, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(41))
			m := deepBoundaryMap(t, r, tc.cell)
			if got := m.Quantized(); got != tc.quant {
				t.Fatalf("Quantized() = %v with boundary cell %d, want %v", got, tc.cell, tc.quant)
			}
			checkKernelsAgainstReference(t, r, m, 10)
		})
	}
}

// TestKernelOverflowAcrossSegmenters reruns the five-segmenter
// differential on maps whose merged segments straddle the uint16
// boundary: one fixture with page cells ≥ 32768 (any two-page merge
// overflows the mirror) next to a small-cell control that always
// quantizes. No segmenter can produce a row layout where the overflow
// fallback or the mirror disagrees with the reference bound.
func TestKernelOverflowAcrossSegmenters(t *testing.T) {
	algs := []Algorithm{AlgRandom, AlgRC, AlgGreedy, AlgRandomRC, AlgRandomGreedy}
	for _, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(alg) + 101))
			const pages, k = 24, 6
			for rep, lo := range []uint32{0, 40000} {
				span := 100
				if lo > 0 {
					span = 20000
				}
				rows := make([][]uint32, pages)
				for p := range rows {
					rows[p] = make([]uint32, k)
					for i := range rows[p] {
						rows[p][i] = lo + uint32(r.Intn(span))
					}
				}
				res, err := Segment(rows, Options{
					Algorithm:      alg,
					TargetSegments: 4 + r.Intn(4),
					MidSegments:    pages,
					Seed:           r.Int63(),
				})
				if err != nil {
					t.Fatal(err)
				}
				m := res.Map
				overflow := false
				for s := 0; s < m.NumSegments(); s++ {
					for _, c := range m.SegmentRow(s) {
						if c > 0xFFFF {
							overflow = true
						}
					}
				}
				if wantOverflow := rep == 1; overflow != wantOverflow {
					t.Fatalf("rep %d: cell overflow = %v, fixture expects %v", rep, overflow, wantOverflow)
				}
				if m.Quantized() != !overflow {
					t.Fatalf("rep %d: Quantized() = %v on a map with overflow=%v", rep, m.Quantized(), overflow)
				}
				checkKernelsAgainstReference(t, r, m, 6)
			}
		})
	}
}

// TestSetQuantizedToggle pins the knob: disabling the mirror reroutes
// deep decisions to the uint32 lanes without changing them, re-enabling
// rebuilds the mirror lazily.
func TestSetQuantizedToggle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := deepBoundaryMap(t, r, 65535)
	x := dataset.NewItemset(1, 3, 5)
	ref := m.referenceUpperBound(x)
	if ok, _, lane := m.boundAtLeast(x, ref); !ok || lane != LaneFlat16 {
		t.Fatalf("quantized decision: ok=%v lane=%v, want true on flat16", ok, lane)
	}
	m.SetQuantized(false)
	if m.Quantized() {
		t.Fatal("Quantized() = true after SetQuantized(false)")
	}
	if ok, _, lane := m.boundAtLeast(x, ref); !ok || lane != LaneSmall {
		t.Fatalf("unquantized decision: ok=%v lane=%v, want true on small", ok, lane)
	}
	if ok, _, _ := m.boundAtLeast(x, ref+1); ok {
		t.Fatal("uint32 path admitted above the reference bound")
	}
	m.SetQuantized(true)
	if !m.Quantized() {
		t.Fatal("mirror did not rebuild after re-enabling")
	}
	if ok, _, lane := m.boundAtLeast(x, ref); !ok || lane != LaneFlat16 {
		t.Fatalf("re-enabled decision: ok=%v lane=%v, want true on flat16", ok, lane)
	}
}

// TestAppenderQuantizedOverflowCrossing drives the online path across
// the uint16 boundary: with a one-segment budget every compaction merges
// all history into a single row, so once more than 65535 transactions
// carry an item the snapshot can no longer mirror. Quantized must flip,
// answers must stay exact on both sides, and the earlier snapshot — an
// independent immutable map — must keep its own mirror.
func TestAppenderQuantizedOverflowCrossing(t *testing.T) {
	a, err := NewAppender(3, AppenderOptions{PageSize: 1000, MaxSegments: 1, Algorithm: AlgGreedy})
	if err != nil {
		t.Fatal(err)
	}
	tx := dataset.NewItemset(0, 1)
	addN := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := a.Add(tx); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := func() *Map {
		t.Helper()
		m, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	check := func(m *Map, total int64, ctx string) {
		t.Helper()
		if got := m.UpperBound(tx); got != total {
			t.Fatalf("%s: UpperBound(%v) = %d, want %d", ctx, tx, got, total)
		}
		if !m.BoundAtLeast(tx, total) || m.BoundAtLeast(tx, total+1) {
			t.Fatalf("%s: BoundAtLeast disagrees with the exact pair support %d", ctx, total)
		}
	}

	addN(60000)
	before := snap()
	if !before.Quantized() {
		t.Fatal("60000-transaction snapshot should fit the uint16 mirror")
	}
	check(before, 60000, "before crossing")

	addN(10000)
	after := snap()
	if after.Quantized() {
		t.Fatal("70000-transaction snapshot crossed 65535 but still claims a mirror")
	}
	check(after, 70000, "after crossing")

	// Snapshots are independent immutable maps: the pre-crossing one
	// keeps serving its mirror with its own counts.
	if !before.Quantized() {
		t.Fatal("earlier snapshot lost its mirror after later appends")
	}
	check(before, 60000, "earlier snapshot after later appends")
}
