package core

import (
	"math"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// Variability metrics. The paper's conclusion notes that beyond pruning,
// the OSSM "provides direct information about the variability of
// frequencies in different segments of the transactions" — these methods
// surface that information.

// ItemVariability returns the coefficient of variation of item x's
// per-segment supports (population standard deviation divided by mean).
// It is 0 when the item is spread evenly across segments — or never
// occurs — and grows as the item concentrates in a few segments.
func (m *Map) ItemVariability(x dataset.Item) float64 {
	n := m.NumSegments()
	if n < 2 || m.totals[x] == 0 {
		return 0
	}
	mean := float64(m.totals[x]) / float64(n)
	var ss float64
	for _, c := range m.Column(x) {
		d := float64(c) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(n)) / mean
}

// Heterogeneity returns the occurrence-weighted mean of ItemVariability
// across items — one number summarizing how far the collection departs
// from a uniform distribution over its segments. 0 means every item is
// spread evenly (the OSSM cannot prune beyond the naive bound); larger
// values signal skew the bound can exploit.
func (m *Map) Heterogeneity() float64 {
	var weighted, total float64
	for it := 0; it < m.numItems; it++ {
		w := float64(m.totals[it])
		if w == 0 {
			continue
		}
		weighted += w * m.ItemVariability(dataset.Item(it))
		total += w
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// HottestSegment returns the segment holding item x's largest support
// and that support. Useful for "where does this pattern live?"
// exploration. Ties resolve to the lowest segment index.
func (m *Map) HottestSegment(x dataset.Item) (segment int, support uint32) {
	for s, c := range m.Column(x) {
		if c > support {
			segment, support = s, c
		}
	}
	return segment, support
}

// SkewSignal compares the map's measured heterogeneity against the level
// pure sampling noise would produce if every item were spread uniformly
// across segments (for an item with total support T over n segments the
// multinomial coefficient of variation is √((n−1)/T)). A ratio near 1
// means the data looks uniform at this segmentation; ratios well above 1
// mean genuine skew the OSSM can exploit. The recipe of Figure 7 asks
// "is the data skewed?" — SkewSignal answers it from the OSSM itself.
func (m *Map) SkewSignal() float64 {
	n := m.NumSegments()
	if n < 2 {
		return 1
	}
	var weighted, noise, total float64
	for it := 0; it < m.numItems; it++ {
		w := float64(m.totals[it])
		if w == 0 {
			continue
		}
		weighted += w * m.ItemVariability(dataset.Item(it))
		noise += w * math.Sqrt(float64(n-1)/w)
		total += w
	}
	if total == 0 || noise == 0 {
		return 1
	}
	return weighted / noise
}
