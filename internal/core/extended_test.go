package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// buildExtendedRandom produces a random dataset, a random segmentation
// and an ExtendedMap tracking a random item subset.
func buildExtendedRandom(r *rand.Rand) (*dataset.Dataset, *ExtendedMap) {
	d := randomDataset(r)
	mPages := 1 + r.Intn(d.NumTx())
	pages := dataset.PaginateN(d, mPages)
	nseg := 1 + r.Intn(mPages)
	buckets := make([][]int, nseg)
	for pi := range pages {
		s := r.Intn(nseg)
		buckets[s] = append(buckets[s], pi)
	}
	var assign [][]int
	for _, b := range buckets {
		if len(b) > 0 {
			assign = append(assign, b)
		}
	}
	var tracked []dataset.Item
	for it := 0; it < d.NumItems(); it++ {
		if r.Intn(2) == 0 {
			tracked = append(tracked, dataset.Item(it))
		}
	}
	e, err := BuildExtended(d, pages, assign, tracked)
	if err != nil {
		panic(err)
	}
	return d, e
}

func TestExtendedPairSupportExact(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, e := buildExtendedRandom(r)
		for _, a := range e.Tracked() {
			for _, b := range e.Tracked() {
				if a >= b {
					continue
				}
				sup, ok := e.PairSupport(a, b)
				if !ok {
					return false
				}
				if sup != int64(d.Support(dataset.NewItemset(a, b))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestExtendedPairSupportUntracked(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for {
		d, e := buildExtendedRandom(r)
		if len(e.Tracked()) == d.NumItems() || len(e.Tracked()) == 0 {
			continue
		}
		var untracked dataset.Item
		found := false
		for it := 0; it < d.NumItems(); it++ {
			if _, ok := e.trIdx[dataset.Item(it)]; !ok {
				untracked = dataset.Item(it)
				found = true
				break
			}
		}
		if !found {
			continue
		}
		if _, ok := e.PairSupport(untracked, e.Tracked()[0]); ok {
			t.Error("untracked pair reported as tracked")
		}
		// Same-item degenerate query returns the singleton support.
		a := e.Tracked()[0]
		if sup, ok := e.PairSupport(a, a); !ok || sup != e.ItemSupport(a) {
			t.Errorf("PairSupport(a,a) = %d,%v; want %d,true", sup, ok, e.ItemSupport(a))
		}
		return
	}
}

func TestExtendedBoundSoundAndTighter(t *testing.T) {
	// The extended bound must stay sound (≥ support) and never be looser
	// than the base bound.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, e := buildExtendedRandom(r)
		for trial := 0; trial < 25; trial++ {
			x := randomNonEmptyItemset(r, d.NumItems())
			ext := e.UpperBound(x)
			base := e.Map.UpperBound(x)
			if ext > base {
				return false // looser than the base bound
			}
			if ext < int64(d.Support(x)) {
				return false // unsound
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestExtendedBoundExactForTrackedPairs(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, e := buildExtendedRandom(r)
		tr := e.Tracked()
		if len(tr) < 2 {
			return true
		}
		a, b := tr[r.Intn(len(tr))], tr[r.Intn(len(tr))]
		if a == b {
			return true
		}
		x := dataset.NewItemset(a, b)
		return e.UpperBound(x) == int64(d.Support(x))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExtendedPruner(t *testing.T) {
	d := dataset.MustFromTransactions(3, [][]dataset.Item{
		{0, 1}, {0, 1}, {0, 2}, {1, 2}, {2},
	})
	pages := dataset.PaginateN(d, 5)
	assign := [][]int{{0, 1}, {2, 3, 4}}
	e, err := BuildExtended(d, pages, assign, []dataset.Item{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	p := e.Pruner(2)
	// {0,1} is tracked with support 2 → exact, allowed.
	if !p.Allow(dataset.NewItemset(0, 1)) {
		t.Error("tracked frequent pair pruned")
	}
	if p.Exact != 1 {
		t.Errorf("Exact = %d, want 1", p.Exact)
	}
	// {0,2} is untracked (2 not tracked) → falls back to the bound.
	p.Allow(dataset.NewItemset(0, 2))
	if p.Exact != 1 {
		t.Error("untracked pair counted as exact")
	}
	var nilP *ExtendedPruner
	if !nilP.Allow(dataset.NewItemset(0)) {
		t.Error("nil pruner must admit everything")
	}
}

func TestExtendedSizeBytes(t *testing.T) {
	d := dataset.MustFromTransactions(4, [][]dataset.Item{{0, 1}, {2, 3}})
	pages := dataset.PaginateN(d, 2)
	e, err := BuildExtended(d, pages, [][]int{{0}, {1}}, []dataset.Item{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// base flat store: 16·4·(2+1) = 192; pair cells: C(3,2)=3 × 2 seg × 4B
	// = 24; pair row headers: 2 × 24B = 48.
	if got := e.SizeBytes(); got != 192+24+48 {
		t.Errorf("SizeBytes = %d, want 264", got)
	}
}

func TestBuildExtendedValidation(t *testing.T) {
	d := dataset.MustFromTransactions(2, [][]dataset.Item{{0}, {1}})
	pages := dataset.PaginateN(d, 2)
	if _, err := BuildExtended(d, pages, [][]int{{0}, {1}}, []dataset.Item{5}); err == nil {
		t.Error("out-of-domain tracked item accepted")
	}
	if _, err := BuildExtended(d, pages, nil, nil); err == nil {
		t.Error("empty assignment accepted")
	}
	// Duplicate tracked items are deduplicated, not an error.
	e, err := BuildExtended(d, pages, [][]int{{0}, {1}}, []dataset.Item{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Tracked()) != 2 {
		t.Errorf("Tracked = %v, want deduplicated [0 1]", e.Tracked())
	}
}

func TestPairIndexOf(t *testing.T) {
	// Triangular indexing is a bijection onto [0, C(n,2)).
	for n := 2; n <= 7; n++ {
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pi := pairIndexOf(i, j, n)
				if pi < 0 || pi >= n*(n-1)/2 || seen[pi] {
					t.Fatalf("pairIndexOf(%d,%d,%d) = %d invalid or duplicate", i, j, n, pi)
				}
				seen[pi] = true
			}
		}
	}
}
