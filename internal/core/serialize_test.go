package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestMapRoundTrip(t *testing.T) {
	m := example1Map(t)
	var buf bytes.Buffer
	if err := WriteMap(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumItems() != m.NumItems() || got.NumSegments() != m.NumSegments() {
		t.Fatalf("shape changed: %dx%d vs %dx%d",
			got.NumSegments(), got.NumItems(), m.NumSegments(), m.NumItems())
	}
	for s := 0; s < m.NumSegments(); s++ {
		for it := 0; it < m.NumItems(); it++ {
			if got.SegmentSupport(s, dataset.Item(it)) != m.SegmentSupport(s, dataset.Item(it)) {
				t.Fatalf("cell (%d,%d) changed", s, it)
			}
		}
	}
}

func TestMapRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		k := 1 + r.Intn(8)
		rows := make([][]uint32, n)
		for i := range rows {
			rows[i] = randomRow(r, k, 1000)
		}
		m, err := NewMap(rows)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteMap(&buf, m); err != nil {
			return false
		}
		got, err := ReadMap(&buf)
		if err != nil {
			return false
		}
		// Same bounds for a few random itemsets ⇒ same map behaviorally.
		for trial := 0; trial < 10; trial++ {
			x := randomNonEmptyItemset(r, k)
			if got.UpperBound(x) != m.UpperBound(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadMapErrors(t *testing.T) {
	if _, err := ReadMap(bytes.NewReader([]byte("short"))); !errors.Is(err, ErrBadMapFormat) {
		t.Errorf("short: err = %v, want ErrBadMapFormat", err)
	}
	if _, err := ReadMap(bytes.NewReader([]byte("WRONGMAGICxxxxxx"))); !errors.Is(err, ErrBadMapFormat) {
		t.Errorf("magic: err = %v, want ErrBadMapFormat", err)
	}
	// Truncated payload.
	m := mustMap(t, [][]uint32{{1, 2, 3}, {4, 5, 6}})
	var buf bytes.Buffer
	if err := WriteMap(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadMap(bytes.NewReader(trunc)); !errors.Is(err, ErrBadMapFormat) {
		t.Errorf("truncated: err = %v, want ErrBadMapFormat", err)
	}
	// Zero segments in the header.
	bad := append([]byte{}, mapMagic[:]...)
	bad = append(bad, 3, 0, 0, 0, 0, 0, 0, 0)
	if _, err := ReadMap(bytes.NewReader(bad)); !errors.Is(err, ErrBadMapFormat) {
		t.Errorf("zero segments: err = %v, want ErrBadMapFormat", err)
	}
}

func mustMap(t *testing.T, rows [][]uint32) *Map {
	t.Helper()
	m, err := NewMap(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
