package core

import (
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestBubbleListSelection(t *testing.T) {
	// supports: item0=10, item1=100, item2=51, item3=49, item4=55
	totals := []int64{10, 100, 51, 49, 55}
	// threshold 50: items ≥ 50 are {1:100, 2:51, 4:55}; "barely
	// satisfying first" order: 2 (51), 4 (55), 1 (100). Then below:
	// 3 (49), 0 (10).
	got := BubbleList(totals, 50, 2)
	want := []dataset.Item{2, 4}
	assertItems(t, got, want)

	got = BubbleList(totals, 50, 4)
	want = []dataset.Item{1, 2, 3, 4} // three above + closest below (3), sorted by id
	assertItems(t, got, want)

	got = BubbleList(totals, 50, 10) // clamped to domain
	want = []dataset.Item{0, 1, 2, 3, 4}
	assertItems(t, got, want)
}

func TestBubbleListEdgeCases(t *testing.T) {
	if BubbleList([]int64{1, 2}, 1, 0) != nil {
		t.Error("size 0 should yield nil")
	}
	if BubbleList([]int64{1, 2}, 1, -3) != nil {
		t.Error("negative size should yield nil")
	}
	// All below threshold: padded purely from below, closest first.
	got := BubbleList([]int64{5, 9, 1}, 100, 2)
	assertItems(t, got, []dataset.Item{0, 1}) // 9 then 5, sorted by id
	// Ties broken by item id.
	got = BubbleList([]int64{7, 7, 7}, 5, 2)
	assertItems(t, got, []dataset.Item{0, 1})
}

func TestBubbleListFromCounts(t *testing.T) {
	rows := [][]uint32{
		{3, 10, 1},
		{4, 20, 2},
	}
	// totals: 7, 30, 3; threshold 5 → above = {0:7, 1:30}; barely first → 0 then 1.
	got := BubbleListFromCounts(rows, 5, 1)
	assertItems(t, got, []dataset.Item{0})
	if BubbleListFromCounts(nil, 5, 3) != nil {
		t.Error("empty rows should yield nil")
	}
}

func assertItems(t *testing.T, got, want []dataset.Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRecommendRecipe(t *testing.T) {
	cases := []struct {
		s    Scenario
		want Recommendation
	}{
		{Scenario{LargeSegmentBudget: true, SkewedData: true},
			Recommendation{Algorithm: AlgRandom}},
		{Scenario{LargeSegmentBudget: true, SkewedData: true, SegmentationCostCritical: true, VeryManyPages: true},
			Recommendation{Algorithm: AlgRandom}},
		{Scenario{},
			Recommendation{Algorithm: AlgGreedy, UseBubble: true}},
		{Scenario{LargeSegmentBudget: true}, // not skewed → down the tree
			Recommendation{Algorithm: AlgGreedy, UseBubble: true}},
		{Scenario{SegmentationCostCritical: true, VeryManyPages: true},
			Recommendation{Algorithm: AlgRandomRC, UseBubble: true}},
		{Scenario{SegmentationCostCritical: true},
			Recommendation{Algorithm: AlgRandomGreedy, UseBubble: true}},
	}
	for _, c := range cases {
		if got := Recommend(c.s); got != c.want {
			t.Errorf("Recommend(%+v) = %+v, want %+v", c.s, got, c.want)
		}
	}
}
