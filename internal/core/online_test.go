package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestNewAppenderValidation(t *testing.T) {
	if _, err := NewAppender(0, AppenderOptions{}); err == nil {
		t.Error("numItems 0 accepted")
	}
	if _, err := NewAppender(5, AppenderOptions{PageSize: -1}); err == nil {
		t.Error("negative PageSize accepted")
	}
	if _, err := NewAppender(5, AppenderOptions{MaxSegments: -1}); err == nil {
		t.Error("negative MaxSegments accepted")
	}
	if _, err := NewAppender(5, AppenderOptions{MaxSegments: 10, CompactAt: 5}); err == nil {
		t.Error("CompactAt ≤ MaxSegments accepted")
	}
	if _, err := NewAppender(5, AppenderOptions{Algorithm: AlgRandomGreedy}); err == nil {
		t.Error("hybrid compaction algorithm accepted")
	}
}

func TestAppenderAddValidation(t *testing.T) {
	a, err := NewAppender(3, AppenderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(dataset.Itemset{2, 1}); err == nil {
		t.Error("unsorted transaction accepted")
	}
	if err := a.Add(dataset.Itemset{0, 7}); err == nil {
		t.Error("out-of-domain item accepted")
	}
	if a.NumTx() != 0 {
		t.Error("failed Add mutated the appender")
	}
}

func TestAppenderEmptySnapshot(t *testing.T) {
	a, err := NewAppender(3, AppenderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Error("empty appender yielded a map")
	}
}

// TestAppenderMatchesBatch streams a dataset through the appender and
// checks the streaming snapshot against ground truth: exact singleton
// totals, sound bounds for every itemset, and the segment budget.
func TestAppenderMatchesBatch(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		pageSize := 1 + r.Intn(5)
		maxSeg := 2 + r.Intn(4)
		alg := []Algorithm{AlgRandom, AlgRC, AlgGreedy}[r.Intn(3)]
		a, err := NewAppender(d.NumItems(), AppenderOptions{
			PageSize:    pageSize,
			MaxSegments: maxSeg,
			Algorithm:   alg,
			Seed:        seed,
		})
		if err != nil {
			return false
		}
		for i := 0; i < d.NumTx(); i++ {
			if err := a.Add(d.Tx(i)); err != nil {
				return false
			}
		}
		if a.NumTx() != int64(d.NumTx()) {
			return false
		}
		m, err := a.Snapshot()
		if err != nil || m == nil {
			return false
		}
		if m.NumSegments() > maxSeg+1 {
			return false
		}
		// Exact singleton totals.
		counts := d.ItemCounts(0, d.NumTx())
		for it := 0; it < d.NumItems(); it++ {
			if m.ItemSupport(dataset.Item(it)) != int64(counts[it]) {
				return false
			}
		}
		// Sound bounds.
		for trial := 0; trial < 15; trial++ {
			x := randomNonEmptyItemset(r, d.NumItems())
			if m.UpperBound(x) < int64(d.Support(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestAppenderCompactionTriggers(t *testing.T) {
	a, err := NewAppender(4, AppenderOptions{
		PageSize: 1, MaxSegments: 3, CompactAt: 6, Algorithm: AlgGreedy,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := a.Add(dataset.Itemset{dataset.Item(i % 4)}); err != nil {
			t.Fatal(err)
		}
		if a.Segments() >= 6 {
			t.Fatalf("working set reached CompactAt after %d adds without compaction", i+1)
		}
	}
	if a.Segments() > 5 {
		t.Errorf("working set = %d, want < CompactAt", a.Segments())
	}
}

func TestAppenderSnapshotIndependence(t *testing.T) {
	a, err := NewAppender(3, AppenderOptions{PageSize: 2, MaxSegments: 2, CompactAt: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := a.Add(dataset.Itemset{dataset.Item(i % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	m1, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := m1.ItemSupport(0)
	// Keep appending; the earlier snapshot must not change.
	for i := 0; i < 20; i++ {
		if err := a.Add(dataset.Itemset{0}); err != nil {
			t.Fatal(err)
		}
	}
	if m1.ItemSupport(0) != before {
		t.Error("snapshot changed after further appends")
	}
	m2, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if m2.ItemSupport(0) != before+20 {
		t.Errorf("second snapshot support = %d, want %d", m2.ItemSupport(0), before+20)
	}
}

func TestAppenderPartialPageVisible(t *testing.T) {
	a, err := NewAppender(2, AppenderOptions{PageSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(dataset.Itemset{1}); err != nil {
		t.Fatal(err)
	}
	m, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.ItemSupport(1) != 1 {
		t.Error("transaction in the partial page not visible in the snapshot")
	}
}
