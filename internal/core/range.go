package core

import "fmt"

// Segment-range views (DESIGN.md §8). The OSSM bound, eq. 1, is a pure
// sum of non-negative per-segment terms, so any partition of [0, n) into
// contiguous ranges decomposes the bound losslessly:
//
//	ubsup(X, M_n) = Σ_ranges Σ_{s ∈ range} min_{x ∈ X} sup_s({x})
//
// A shard that owns one range answers the inner sum with the unchanged
// batch kernels over a sub-Map, and the coordinator merges the partial
// sums by int64 addition — exact, order-independent, bit-identical to
// the single-map scan. SegmentRange is the slicing primitive behind
// internal/shard.

// SegmentRange returns a Map over the contiguous segment range [lo, hi)
// of m. The view shares m's segment-major backing store (no cells are
// copied); the derived item-major transpose, per-item totals and suffix
// remainders are rebuilt for the range, so every kernel — scalar,
// decision, batch — works on the view unchanged. Summing the views'
// bounds over a partition of [0, NumSegments()) reproduces m's bound
// exactly.
func (m *Map) SegmentRange(lo, hi int) (*Map, error) {
	if lo < 0 || hi > m.numSegs || lo >= hi {
		return nil, fmt.Errorf("core: segment range [%d, %d) outside [0, %d)", lo, hi, m.numSegs)
	}
	if lo == 0 && hi == m.numSegs {
		return m, nil
	}
	return newMapFromFlat(hi-lo, m.numItems, m.segMajor[lo*m.numItems:hi*m.numItems]), nil
}
