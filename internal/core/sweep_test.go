package core

import (
	"math/rand"
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func sweepRows(t *testing.T, m, k int, seed int64) [][]uint32 {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]uint32, m)
	for i := range rows {
		rows[i] = randomRow(r, k, 50)
	}
	return rows
}

func TestSweepMatchesIndividualRuns(t *testing.T) {
	rows := sweepRows(t, 24, 6, 1)
	targets := []int{4, 8, 16}
	for _, alg := range []Algorithm{AlgRC, AlgGreedy, AlgRandomRC, AlgRandomGreedy, AlgRandom} {
		opts := Options{Algorithm: alg, MidSegments: 20, Seed: 5}
		points, err := SegmentSweep(rows, opts, targets)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(points) != len(targets) {
			t.Fatalf("%v: %d points, want %d", alg, len(points), len(targets))
		}
		for _, pt := range points {
			if pt.Map.NumSegments() != pt.Segments {
				t.Errorf("%v: point claims %d segments, Map has %d", alg, pt.Segments, pt.Map.NumSegments())
			}
			direct, err := Segment(rows, Options{
				Algorithm: alg, TargetSegments: pt.Segments, MidSegments: 20, Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Same bound for every pair ⇒ same segmentation quality. (The
			// segment orderings may differ; bounds are what matters.)
			for x := dataset.Item(0); x < 6; x++ {
				for y := x + 1; y < 6; y++ {
					if pt.Map.UpperBoundPair(x, y) != direct.Map.UpperBoundPair(x, y) {
						t.Errorf("%v n=%d: sweep and direct bounds differ for (%d,%d): %d vs %d",
							alg, pt.Segments, x, y,
							pt.Map.UpperBoundPair(x, y), direct.Map.UpperBoundPair(x, y))
					}
				}
			}
		}
	}
}

func TestSweepDescendingOrder(t *testing.T) {
	rows := sweepRows(t, 12, 4, 2)
	points, err := SegmentSweep(rows, Options{Algorithm: AlgGreedy}, []int{2, 10, 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Segments >= points[i-1].Segments {
			t.Error("points not in descending segment order")
		}
	}
}

func TestSweepTargetAbovePageCount(t *testing.T) {
	rows := sweepRows(t, 5, 4, 3)
	points, err := SegmentSweep(rows, Options{Algorithm: AlgGreedy}, []int{100, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	if points[0].Segments != 5 { // clamped to page count
		t.Errorf("first point has %d segments, want 5", points[0].Segments)
	}
}

func TestSweepErrors(t *testing.T) {
	rows := sweepRows(t, 6, 4, 4)
	if _, err := SegmentSweep(nil, Options{}, []int{2}); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := SegmentSweep(rows, Options{}, nil); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := SegmentSweep(rows, Options{}, []int{0}); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := SegmentSweep(rows, Options{Algorithm: AlgRandomRC, MidSegments: 1}, []int{3}); err == nil {
		t.Error("MidSegments below smallest target accepted")
	}
	if _, err := SegmentSweep(rows, Options{Algorithm: Algorithm(77)}, []int{2}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := SegmentSweep([][]uint32{{1}, {1, 2}}, Options{}, []int{1}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestSweepElapsedMonotone(t *testing.T) {
	rows := sweepRows(t, 20, 5, 5)
	points, err := SegmentSweep(rows, Options{Algorithm: AlgRC, Seed: 1}, []int{4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Elapsed < points[i-1].Elapsed {
			t.Error("cumulative elapsed time decreased along the sweep")
		}
	}
}

func TestSweepWithBubbleAndWorkersMatchesDirect(t *testing.T) {
	rows := sweepRows(t, 20, 8, 7)
	bubble := BubbleListFromCounts(rows, 50, 4)
	for _, alg := range []Algorithm{AlgRC, AlgGreedy} {
		points, err := SegmentSweep(rows, Options{
			Algorithm: alg, Bubble: bubble, Seed: 3, Workers: 4,
		}, []int{5, 12})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for _, pt := range points {
			direct, err := Segment(rows, Options{
				Algorithm: alg, TargetSegments: pt.Segments, Bubble: bubble, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			for x := dataset.Item(0); x < 8; x++ {
				for y := x + 1; y < 8; y++ {
					if pt.Map.UpperBoundPair(x, y) != direct.Map.UpperBoundPair(x, y) {
						t.Errorf("%v n=%d: bubble sweep and direct bounds differ", alg, pt.Segments)
					}
				}
			}
		}
	}
}
