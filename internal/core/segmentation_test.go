package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func allAlgorithms() []Algorithm {
	return []Algorithm{AlgRandom, AlgRC, AlgGreedy, AlgRandomRC, AlgRandomGreedy}
}

func optsFor(alg Algorithm, target, mid int, seed int64) Options {
	return Options{Algorithm: alg, TargetSegments: target, MidSegments: mid, Seed: seed}
}

func TestSegmentProducesTargetSegments(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	rows := make([][]uint32, 20)
	for i := range rows {
		rows[i] = randomRow(r, 6, 30)
	}
	for _, alg := range allAlgorithms() {
		res, err := Segment(rows, optsFor(alg, 5, 10, 1))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Map.NumSegments() != 5 {
			t.Errorf("%v: got %d segments, want 5", alg, res.Map.NumSegments())
		}
		// Assignment is a partition of the 20 pages.
		seen := make([]bool, len(rows))
		for _, pagesOfSeg := range res.Assignment {
			if len(pagesOfSeg) == 0 {
				t.Errorf("%v: empty segment in assignment", alg)
			}
			for _, p := range pagesOfSeg {
				if seen[p] {
					t.Errorf("%v: page %d assigned twice", alg, p)
				}
				seen[p] = true
			}
		}
		for p, ok := range seen {
			if !ok {
				t.Errorf("%v: page %d unassigned", alg, p)
			}
		}
		// Totals preserved: the Map's per-item totals equal the column
		// sums of the input rows.
		for it := 0; it < 6; it++ {
			var want int64
			for _, row := range rows {
				want += int64(row[it])
			}
			if got := res.Map.ItemSupport(dataset.Item(it)); got != want {
				t.Errorf("%v: item %d total = %d, want %d", alg, it, got, want)
			}
		}
		if res.Elapsed < 0 {
			t.Errorf("%v: negative elapsed", alg)
		}
	}
}

func TestSegmentDeterministicWithSeed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rows := make([][]uint32, 16)
	for i := range rows {
		rows[i] = randomRow(r, 5, 20)
	}
	for _, alg := range allAlgorithms() {
		a, err := Segment(rows, optsFor(alg, 4, 8, 77))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Segment(rows, optsFor(alg, 4, 8, 77))
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Assignment) != len(b.Assignment) {
			t.Fatalf("%v: nondeterministic segment count", alg)
		}
		for s := range a.Assignment {
			if len(a.Assignment[s]) != len(b.Assignment[s]) {
				t.Errorf("%v: nondeterministic assignment", alg)
				break
			}
			for i := range a.Assignment[s] {
				if a.Assignment[s][i] != b.Assignment[s][i] {
					t.Errorf("%v: nondeterministic assignment", alg)
				}
			}
		}
	}
}

func TestSegmentTargetClampedToPages(t *testing.T) {
	rows := [][]uint32{{1, 2}, {3, 4}}
	res, err := Segment(rows, optsFor(AlgGreedy, 10, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Map.NumSegments() != 2 {
		t.Errorf("got %d segments, want 2 (clamped)", res.Map.NumSegments())
	}
}

func TestSegmentErrors(t *testing.T) {
	rows := [][]uint32{{1, 2}, {3, 4}, {5, 6}}
	if _, err := Segment(nil, optsFor(AlgRandom, 1, 0, 0)); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := Segment([][]uint32{{1}, {1, 2}}, optsFor(AlgRandom, 1, 0, 0)); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := Segment(rows, optsFor(AlgRandom, 0, 0, 0)); err == nil {
		t.Error("TargetSegments = 0 accepted")
	}
	if _, err := Segment(rows, optsFor(AlgRandomRC, 2, 1, 0)); err == nil {
		t.Error("MidSegments < TargetSegments accepted")
	}
	if _, err := Segment(rows, Options{Algorithm: Algorithm(99), TargetSegments: 1}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestGreedyMergesSameConfigFirst(t *testing.T) {
	// Two rows share a configuration (sumdiff 0); two have wildly
	// different ones. Greedy asked for 3 segments must merge the
	// same-config pair.
	rows := [][]uint32{
		{10, 5, 1}, // config (0,1,2)
		{20, 9, 3}, // config (0,1,2)  — same as row 0
		{1, 50, 2}, // config (1,2,0)… actually (1,2,0) by value 50,2,1
		{3, 1, 90}, // config (2,0,1)
	}
	res, err := Segment(rows, optsFor(AlgGreedy, 3, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	foundPair := false
	for _, seg := range res.Assignment {
		if len(seg) == 2 {
			if (seg[0] == 0 && seg[1] == 1) || (seg[0] == 1 && seg[1] == 0) {
				foundPair = true
			}
		}
	}
	if !foundPair {
		t.Errorf("Greedy did not merge the zero-cost same-configuration pair; assignment = %v", res.Assignment)
	}
}

// totalLoss measures the summed pairwise bound loosening of a
// segmentation relative to the page-level OSSM.
func totalLoss(rows [][]uint32, res *Result, items []dataset.Item) int64 {
	full, err := NewMap(rows)
	if err != nil {
		panic(err)
	}
	var loss int64
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			loss += res.Map.UpperBoundPair(items[i], items[j]) -
				full.UpperBoundPair(items[i], items[j])
		}
	}
	return loss
}

func TestGreedyBeatsRandomOnStructuredRows(t *testing.T) {
	// Rows come in two clear families; a good segmentation keeps the
	// families apart. Greedy must incur no more loss than Random
	// (averaged over seeds to avoid flakiness).
	r := rand.New(rand.NewSource(10))
	rows := make([][]uint32, 24)
	for i := range rows {
		rows[i] = make([]uint32, 6)
		for j := range rows[i] {
			base := 5
			if (i < 12) == (j < 3) {
				base = 50
			}
			rows[i][j] = uint32(base + r.Intn(5))
		}
	}
	items := AllItems(6)
	var greedyLoss, randomLoss int64
	for seed := int64(0); seed < 5; seed++ {
		g, err := Segment(rows, optsFor(AlgGreedy, 2, 0, seed))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := Segment(rows, optsFor(AlgRandom, 2, 0, seed))
		if err != nil {
			t.Fatal(err)
		}
		greedyLoss += totalLoss(rows, g, items)
		randomLoss += totalLoss(rows, rd, items)
	}
	if greedyLoss > randomLoss {
		t.Errorf("greedy loss %d > random loss %d on structured data", greedyLoss, randomLoss)
	}
}

func TestAlgorithmOrderingOnStructuredRows(t *testing.T) {
	// Quality ordering the paper reports (Fig. 4): Greedy ≥ RC ≥ Random.
	// Verified as average pairwise-bound loss over several seeds.
	r := rand.New(rand.NewSource(20))
	rows := make([][]uint32, 30)
	for i := range rows {
		rows[i] = make([]uint32, 8)
		family := i % 3
		for j := range rows[i] {
			base := 4
			if j%3 == family {
				base = 60
			}
			rows[i][j] = uint32(base + r.Intn(6))
		}
	}
	items := AllItems(8)
	avg := func(alg Algorithm) int64 {
		var sum int64
		for seed := int64(0); seed < 8; seed++ {
			res, err := Segment(rows, optsFor(alg, 3, 0, seed))
			if err != nil {
				t.Fatal(err)
			}
			sum += totalLoss(rows, res, items)
		}
		return sum
	}
	g, rc, rd := avg(AlgGreedy), avg(AlgRC), avg(AlgRandom)
	if g > rc {
		t.Errorf("greedy loss %d > rc loss %d", g, rc)
	}
	if rc > rd {
		t.Errorf("rc loss %d > random loss %d", rc, rd)
	}
}

func TestHybridMatchesPhases(t *testing.T) {
	// With MidSegments == number of pages the Random phase is a no-op, so
	// Random-Greedy must equal pure Greedy given the same seed.
	r := rand.New(rand.NewSource(30))
	rows := make([][]uint32, 12)
	for i := range rows {
		rows[i] = randomRow(r, 5, 25)
	}
	hyb, err := Segment(rows, optsFor(AlgRandomGreedy, 4, len(rows), 3))
	if err != nil {
		t.Fatal(err)
	}
	pure, err := Segment(rows, optsFor(AlgGreedy, 4, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if totalLoss(rows, hyb, AllItems(5)) != totalLoss(rows, pure, AllItems(5)) {
		t.Error("Random-Greedy with a no-op Random phase differs from pure Greedy")
	}
}

func TestSegmentWithBubble(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	rows := make([][]uint32, 15)
	for i := range rows {
		rows[i] = randomRow(r, 10, 30)
	}
	bubble := BubbleListFromCounts(rows, 100, 4)
	if len(bubble) != 4 {
		t.Fatalf("bubble size = %d, want 4", len(bubble))
	}
	res, err := Segment(rows, Options{
		Algorithm: AlgGreedy, TargetSegments: 5, Bubble: bubble, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Map.NumSegments() != 5 {
		t.Errorf("got %d segments, want 5", res.Map.NumSegments())
	}
}

func TestSegmentSoundEndToEnd(t *testing.T) {
	// Any segmentation of any dataset yields a Map whose bounds dominate
	// true supports.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		mPages := 1 + r.Intn(d.NumTx())
		pages := dataset.PaginateN(d, mPages)
		rows := dataset.PageCounts(d, pages)
		alg := allAlgorithms()[r.Intn(5)]
		target := 1 + r.Intn(mPages)
		mid := target + r.Intn(mPages-target+1)
		res, err := Segment(rows, optsFor(alg, target, mid, seed))
		if err != nil {
			return false
		}
		for trial := 0; trial < 15; trial++ {
			x := randomNonEmptyItemset(r, d.NumItems())
			if res.Map.UpperBound(x) < int64(d.Support(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAlgorithmString(t *testing.T) {
	cases := map[Algorithm]string{
		AlgRandom:       "Random",
		AlgRC:           "RC",
		AlgGreedy:       "Greedy",
		AlgRandomRC:     "Random-RC",
		AlgRandomGreedy: "Random-Greedy",
		Algorithm(42):   "Algorithm(42)",
	}
	for alg, want := range cases {
		if got := alg.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
