package core

import (
	"sync/atomic"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// Filter is the candidate-filtering contract miners accept: given a
// candidate itemset, may it still be frequent? Both *Pruner (the plain
// OSSM bound) and *ExtendedPruner (footnote 3's generalized map)
// implement it. A nil Filter admits everything; miners should go through
// Admit/AdmitPair rather than calling methods on a possibly-nil
// interface.
type Filter interface {
	Allow(x dataset.Itemset) bool
	AllowPair(a, b dataset.Item) bool
}

// Admit applies f to x, treating a nil filter as "allow".
func Admit(f Filter, x dataset.Itemset) bool {
	if f == nil {
		return true
	}
	return f.Allow(x)
}

// AdmitPair applies f to the pair {a, b}, treating a nil filter as
// "allow".
func AdmitPair(f Filter, a, b dataset.Item) bool {
	if f == nil {
		return true
	}
	return f.AllowPair(a, b)
}

// AllowPair is the 2-itemset fast path of the extended pruner: tracked
// pairs are answered exactly, others fall back to the extended bound.
func (p *ExtendedPruner) AllowPair(a, b dataset.Item) bool {
	if p == nil || p.Ext == nil {
		return true
	}
	atomic.AddInt64(&p.Checked, 1)
	if sup, ok := p.Ext.PairSupport(a, b); ok {
		atomic.AddInt64(&p.Exact, 1)
		if sup < p.MinCount {
			atomic.AddInt64(&p.Pruned, 1)
			return false
		}
		return true
	}
	if p.Ext.UpperBoundPair(a, b) < p.MinCount {
		atomic.AddInt64(&p.Pruned, 1)
		return false
	}
	return true
}
