package core

import (
	"sync/atomic"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// Filter is the candidate-filtering contract miners accept: given a
// candidate itemset, may it still be frequent? Both *Pruner (the plain
// OSSM bound) and *ExtendedPruner (footnote 3's generalized map)
// implement it. A nil Filter admits everything; miners should go through
// Admit/AdmitPair rather than calling methods on a possibly-nil
// interface.
type Filter interface {
	Allow(x dataset.Itemset) bool
	AllowPair(a, b dataset.Item) bool
}

// Admit applies f to x, treating a nil filter as "allow".
func Admit(f Filter, x dataset.Itemset) bool {
	if f == nil {
		return true
	}
	return f.Allow(x)
}

// AdmitPair applies f to the pair {a, b}, treating a nil filter as
// "allow".
func AdmitPair(f Filter, a, b dataset.Item) bool {
	if f == nil {
		return true
	}
	return f.AllowPair(a, b)
}

// BatchFilter is the optional batch contract a Filter may additionally
// satisfy: whole candidate generations are decided in one call, letting
// the implementation amortize its per-segment work across candidates
// (see Map.BoundBatch and friends). Decisions must be bit-identical to
// calling Allow/AllowPair per candidate.
type BatchFilter interface {
	Filter
	// AllowBatch writes decisions[i] = Allow(cands[i]).
	AllowBatch(cands []dataset.Itemset, decisions []bool)
	// AllowPairsAmong writes, for every i < j, the decision for the pair
	// {items[i], items[j]} at decisions[PairIndex(i, j, len(items))].
	AllowPairsAmong(items []dataset.Item, decisions []bool)
	// AllowExtensions writes decisions[e] = Allow(prefix ∪ {exts[e]}).
	AllowExtensions(prefix dataset.Itemset, exts []dataset.Item, decisions []bool)
}

// decisionsFor returns buf resized to n (reallocating only when too
// small) with every slot admitted.
func decisionsFor(buf []bool, n int) []bool {
	if cap(buf) < n {
		buf = make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = true
	}
	return buf
}

// AdmitBatch decides a whole candidate generation through f, using the
// batch path when f supports it and falling back to per-candidate Allow
// calls otherwise (so counter semantics are identical either way). buf is
// an optional reusable decision buffer; the filled slice is returned. A
// nil filter admits every candidate.
func AdmitBatch(f Filter, cands []dataset.Itemset, buf []bool) []bool {
	decisions := decisionsFor(buf, len(cands))
	if f == nil {
		return decisions
	}
	if bf, ok := f.(BatchFilter); ok {
		bf.AllowBatch(cands, decisions)
		return decisions
	}
	for i, x := range cands {
		decisions[i] = f.Allow(x)
	}
	return decisions
}

// AdmitPairsAmong decides every pair {items[i], items[j]}, i < j, in the
// order a nested i-outer/j-inner loop visits them (PairIndex gives the
// mapping). buf is an optional reusable decision buffer; the filled
// slice, of length len(items)·(len(items)−1)/2, is returned.
func AdmitPairsAmong(f Filter, items []dataset.Item, buf []bool) []bool {
	n := len(items)
	decisions := decisionsFor(buf, n*(n-1)/2)
	if f == nil {
		return decisions
	}
	if bf, ok := f.(BatchFilter); ok {
		bf.AllowPairsAmong(items, decisions)
		return decisions
	}
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			decisions[idx] = f.AllowPair(items[i], items[j])
			idx++
		}
	}
	return decisions
}

// AdmitExtensions decides every one-item extension prefix ∪ {exts[e]} of
// a shared prefix. buf is an optional reusable decision buffer; the
// filled slice, of length len(exts), is returned.
func AdmitExtensions(f Filter, prefix dataset.Itemset, exts []dataset.Item, buf []bool) []bool {
	decisions := decisionsFor(buf, len(exts))
	if f == nil {
		return decisions
	}
	if bf, ok := f.(BatchFilter); ok {
		bf.AllowExtensions(prefix, exts, decisions)
		return decisions
	}
	cand := make(dataset.Itemset, len(prefix)+1)
	copy(cand, prefix)
	for e, it := range exts {
		cand[len(prefix)] = it
		decisions[e] = f.Allow(cand)
	}
	return decisions
}

// KernelCounters is a snapshot of a filter's decision-kernel counters.
type KernelCounters struct {
	Checked   int64
	Pruned    int64
	EarlyExit int64
	Abandoned int64
	// Lanes is the per-dispatch-lane breakdown of the decisions (index
	// with KernelLane); filters without lane dispatch leave it zero.
	Lanes [NumKernelLanes]LaneStats
}

// KernelReporter is implemented by filters that expose kernel counters
// (notably *Pruner).
type KernelReporter interface {
	KernelCounters() KernelCounters
}

// KernelCountersOf snapshots f's kernel counters, reporting false when f
// does not expose any. The snapshot uses atomic loads and is safe to take
// while miners are still running.
func KernelCountersOf(f Filter) (KernelCounters, bool) {
	kr, ok := f.(KernelReporter)
	if !ok || kr == nil {
		return KernelCounters{}, false
	}
	return kr.KernelCounters(), true
}

// KernelCounters snapshots the pruner's counters atomically.
func (p *Pruner) KernelCounters() KernelCounters {
	if p == nil {
		return KernelCounters{}
	}
	kc := KernelCounters{
		Checked:   atomic.LoadInt64(&p.Checked),
		Pruned:    atomic.LoadInt64(&p.Pruned),
		EarlyExit: atomic.LoadInt64(&p.EarlyExit),
		Abandoned: atomic.LoadInt64(&p.Abandoned),
	}
	for i := range kc.Lanes {
		kc.Lanes[i] = LaneStats{
			Decided:   atomic.LoadInt64(&p.Lanes[i].Decided),
			EarlyExit: atomic.LoadInt64(&p.Lanes[i].EarlyExit),
			Abandoned: atomic.LoadInt64(&p.Lanes[i].Abandoned),
		}
	}
	return kc
}

// AllowBatch implements BatchFilter through the blocked BoundBatch
// kernel.
func (p *Pruner) AllowBatch(cands []dataset.Itemset, decisions []bool) {
	if p == nil || p.Map == nil {
		for i := range decisions {
			decisions[i] = true
		}
		return
	}
	st := p.Map.BoundBatch(cands, p.MinCount, decisions)
	p.noteBatch(len(cands), decisions[:len(cands)], st)
}

// AllowPairsAmong implements BatchFilter through the pair-specialized
// BoundPairsAmong kernel.
func (p *Pruner) AllowPairsAmong(items []dataset.Item, decisions []bool) {
	n := len(items) * (len(items) - 1) / 2
	if p == nil || p.Map == nil {
		for i := range decisions {
			decisions[i] = true
		}
		return
	}
	st := p.Map.BoundPairsAmong(items, p.MinCount, decisions)
	p.noteBatch(n, decisions[:n], st)
}

// AllowExtensions implements BatchFilter through the shared-prefix
// BoundExtensions kernel.
func (p *Pruner) AllowExtensions(prefix dataset.Itemset, exts []dataset.Item, decisions []bool) {
	if p == nil || p.Map == nil {
		for i := range decisions {
			decisions[i] = true
		}
		return
	}
	st := p.Map.BoundExtensions(prefix, exts, p.MinCount, decisions)
	p.noteBatch(len(exts), decisions[:len(exts)], st)
}

func (p *Pruner) noteBatch(checked int, decisions []bool, st BatchStats) {
	var pruned int64
	for _, ok := range decisions {
		if !ok {
			pruned++
		}
	}
	atomic.AddInt64(&p.Checked, int64(checked))
	atomic.AddInt64(&p.Pruned, pruned)
	atomic.AddInt64(&p.EarlyExit, st.EarlyExit)
	atomic.AddInt64(&p.Abandoned, st.Abandoned)
	for i := range st.Lanes {
		ls := st.Lanes[i]
		if ls.Decided == 0 {
			continue
		}
		atomic.AddInt64(&p.Lanes[i].Decided, ls.Decided)
		atomic.AddInt64(&p.Lanes[i].EarlyExit, ls.EarlyExit)
		atomic.AddInt64(&p.Lanes[i].Abandoned, ls.Abandoned)
	}
}

// AllowPair is the 2-itemset fast path of the extended pruner: tracked
// pairs are answered exactly, others fall back to the extended bound.
func (p *ExtendedPruner) AllowPair(a, b dataset.Item) bool {
	if p == nil || p.Ext == nil {
		return true
	}
	atomic.AddInt64(&p.Checked, 1)
	if sup, ok := p.Ext.PairSupport(a, b); ok {
		atomic.AddInt64(&p.Exact, 1)
		if sup < p.MinCount {
			atomic.AddInt64(&p.Pruned, 1)
			return false
		}
		return true
	}
	if p.Ext.UpperBoundPair(a, b) < p.MinCount {
		atomic.AddInt64(&p.Pruned, 1)
		return false
	}
	return true
}
