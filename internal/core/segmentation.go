package core

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"github.com/ossm-mining/ossm/internal/conc"
	"github.com/ossm-mining/ossm/internal/dataset"
)

// Algorithm selects a constrained-segmentation heuristic (Section 5.2,
// 5.4).
type Algorithm int

const (
	// AlgRandom arbitrarily partitions pages into segments in O(m) — the
	// construction of the precursor SSM structure: near-equal contiguous
	// runs in file order, no optimization.
	AlgRandom Algorithm = iota
	// AlgRC (Random-Closest) repeatedly picks a random segment and merges
	// it with the segment of minimum sumdiff. O(m²·k²).
	AlgRC
	// AlgGreedy repeatedly merges the globally cheapest pair of segments,
	// maintained in a priority queue. O(m²·k² + m²·log m).
	AlgGreedy
	// AlgRandomRC runs Random down to MidSegments, then RC to the target.
	AlgRandomRC
	// AlgRandomGreedy runs Random down to MidSegments, then Greedy.
	AlgRandomGreedy
)

// String names the algorithm as the paper does.
func (a Algorithm) String() string {
	switch a {
	case AlgRandom:
		return "Random"
	case AlgRC:
		return "RC"
	case AlgGreedy:
		return "Greedy"
	case AlgRandomRC:
		return "Random-RC"
	case AlgRandomGreedy:
		return "Random-Greedy"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configures Segment.
type Options struct {
	Algorithm      Algorithm
	TargetSegments int // n_user: the number of segments to produce
	// MidSegments is n_mid for the hybrid strategies: the Random phase
	// first reduces the pages to MidSegments segments (must satisfy
	// TargetSegments ≤ MidSegments). Ignored by the pure strategies.
	MidSegments int
	// Bubble restricts the sumdiff summation to these items
	// (Section 5.3). nil means all items.
	Bubble []dataset.Item
	// Seed drives the randomized algorithms; a fixed seed reproduces the
	// segmentation exactly.
	Seed int64
	// Workers fans the sumdiff evaluations of RC and Greedy over a
	// goroutine pool (0 or 1 = serial; capped at NumCPU). Results are
	// identical to the serial run.
	Workers int
}

// Result is the outcome of a segmentation run.
type Result struct {
	Map        *Map
	Assignment [][]int       // Assignment[s] lists the input pages composing segment s
	Elapsed    time.Duration // wall-clock segmentation time ("compile-time" cost)
}

// segment is the working state of one segment during merging.
type segment struct {
	counts []uint32
	pages  []int
	alive  bool
	ver    int // bumped on every merge; stale heap entries detect this
}

// Segment runs the configured heuristic over the initial per-page support
// rows and returns the resulting OSSM. rows[i] is the singleton support
// row of page i (see dataset.PageCounts). Rows are not mutated.
func Segment(rows [][]uint32, opts Options) (*Result, error) {
	if len(rows) == 0 {
		return nil, ErrNoSegments
	}
	k := len(rows[0])
	for i, row := range rows {
		if len(row) != k {
			return nil, fmt.Errorf("%w: row 0 has %d items, row %d has %d", ErrRaggedSegments, k, i, len(row))
		}
	}
	if opts.TargetSegments < 1 {
		return nil, fmt.Errorf("core: TargetSegments must be ≥ 1, got %d", opts.TargetSegments)
	}
	target := opts.TargetSegments
	if target > len(rows) {
		target = len(rows)
	}
	items := opts.Bubble
	if items == nil {
		items = AllItems(k)
	}
	r := rand.New(rand.NewSource(opts.Seed))

	start := time.Now()
	segs := makeSegments(rows)
	switch opts.Algorithm {
	case AlgRandom:
		randomMerge(r, segs, target)
	case AlgRC:
		rcMerge(r, segs, target, items, opts.Workers)
	case AlgGreedy:
		greedyMerge(segs, target, items, opts.Workers)
	case AlgRandomRC, AlgRandomGreedy:
		mid := opts.MidSegments
		if mid < target {
			return nil, fmt.Errorf("core: MidSegments (%d) must be ≥ TargetSegments (%d) for %s", mid, target, opts.Algorithm)
		}
		randomMerge(r, segs, mid)
		if opts.Algorithm == AlgRandomRC {
			rcMerge(r, segs, target, items, opts.Workers)
		} else {
			greedyMerge(segs, target, items, opts.Workers)
		}
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", opts.Algorithm)
	}
	elapsed := time.Since(start)

	var segCounts [][]uint32
	var assign [][]int
	for _, s := range segs {
		if s.alive {
			segCounts = append(segCounts, s.counts)
			assign = append(assign, s.pages)
		}
	}
	m, err := NewMap(segCounts)
	if err != nil {
		return nil, err
	}
	return &Result{Map: m, Assignment: assign, Elapsed: elapsed}, nil
}

func makeSegments(rows [][]uint32) []*segment {
	segs := make([]*segment, len(rows))
	for i, row := range rows {
		cp := make([]uint32, len(row))
		copy(cp, row)
		segs[i] = &segment{counts: cp, pages: []int{i}, alive: true}
	}
	return segs
}

func countAlive(segs []*segment) int {
	n := 0
	for _, s := range segs {
		if s.alive {
			n++
		}
	}
	return n
}

// mergeInto folds segment b into segment a; b dies.
func mergeInto(a, b *segment) {
	for i, c := range b.counts {
		a.counts[i] += c
	}
	a.pages = append(a.pages, b.pages...)
	a.ver++
	b.alive = false
	b.ver++
}

// randomMerge reduces the live segments to target by "arbitrary"
// grouping, as the paper's Random algorithm (and the precursor SSM
// construction) does: pages are folded into near-equal contiguous runs in
// file order, the partition a single sequential scan produces with no
// optimization effort. Contiguity is what lets Random suffice on skewed
// ("seasonal") data — the recipe of Figure 7 depends on it: temporal
// drift maps to distinct segments by construction. O(m).
func randomMerge(r *rand.Rand, segs []*segment, target int) {
	_ = r // the arbitrary partition is deterministic; seed kept for API symmetry
	live := make([]*segment, 0, len(segs))
	for _, s := range segs {
		if s.alive {
			live = append(live, s)
		}
	}
	if len(live) <= target {
		return
	}
	base, rem := len(live)/target, len(live)%target
	idx := 0
	for g := 0; g < target; g++ {
		size := base
		if g < rem {
			size++
		}
		head := live[idx]
		for i := 1; i < size; i++ {
			mergeInto(head, live[idx+i])
		}
		idx += size
	}
}

// rcMerge is the RC algorithm (Figure 3): until target segments remain,
// pick a random live segment and merge it with the live segment of
// minimum sumdiff.
func rcMerge(r *rand.Rand, segs []*segment, target int, items []dataset.Item, workers int) {
	rcMergeHook(r, segs, target, items, workers, nil)
}

// rcMergeHook is rcMerge with an after-merge callback (used by
// SegmentSweep to snapshot intermediate segment counts).
func rcMergeHook(r *rand.Rand, segs []*segment, target int, items []dataset.Item, workers int, after func(live int)) {
	live := make([]*segment, 0, len(segs))
	for _, s := range segs {
		if s.alive {
			live = append(live, s)
		}
	}
	pool := conc.Resolve(workers)
	for len(live) > target {
		i := r.Intn(len(live))
		s1 := live[i]
		bestJ, _ := closestSegment(s1.counts, live, i, items, pool)
		mergeInto(s1, live[bestJ])
		live[bestJ] = live[len(live)-1]
		live = live[:len(live)-1]
		if after != nil {
			after(len(live))
		}
	}
}

// pairEntry is a candidate merge in Greedy's priority queue. verA/verB
// pin the segment versions the cost was computed against; a mismatch at
// pop time marks the entry stale (lazy deletion).
type pairEntry struct {
	cost       int64
	a, b       int // indices into segs
	verA, verB int
}

type pairHeap []pairEntry

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pairEntry)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// greedyMerge is the Greedy algorithm (Figure 2): a priority queue holds
// the sumdiff of every pair of live segments; the cheapest valid pair is
// merged, its stale entries lazily discarded, and the merged segment's
// pairs with all remaining segments are inserted.
func greedyMerge(segs []*segment, target int, items []dataset.Item, workers int) {
	greedyMergeHook(segs, target, items, workers, nil)
}

// greedyMergeHook is greedyMerge with an after-merge callback (used by
// SegmentSweep to snapshot intermediate segment counts).
func greedyMergeHook(segs []*segment, target int, items []dataset.Item, workers int, after func(live int)) {
	liveIdx := make([]int, 0, len(segs))
	for i, s := range segs {
		if s.alive {
			liveIdx = append(liveIdx, i)
		}
	}
	n := len(liveIdx)
	if n <= target {
		return
	}
	pool := conc.Resolve(workers)
	h := make(pairHeap, 0, n*(n-1)/2)
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			i, j := liveIdx[x], liveIdx[y]
			h = append(h, pairEntry{a: i, b: j, verA: segs[i].ver, verB: segs[j].ver})
		}
	}
	conc.For(pool, len(h), func(e int) {
		h[e].cost = SumDiffPair(segs[h[e].a].counts, segs[h[e].b].counts, items)
	})
	heap.Init(&h)
	remaining := n
	for remaining > target {
		var e pairEntry
		for {
			e = heap.Pop(&h).(pairEntry)
			if segs[e.a].alive && segs[e.b].alive &&
				segs[e.a].ver == e.verA && segs[e.b].ver == e.verB {
				break
			}
		}
		mergeInto(segs[e.a], segs[e.b])
		remaining--
		if after != nil {
			after(remaining)
		}
		if remaining <= target {
			break
		}
		fresh := make([]pairEntry, 0, remaining)
		for _, i := range liveIdx {
			if i == e.a || !segs[i].alive {
				continue
			}
			fresh = append(fresh, pairEntry{a: e.a, b: i, verA: segs[e.a].ver, verB: segs[i].ver})
		}
		conc.For(pool, len(fresh), func(f int) {
			fresh[f].cost = SumDiffPair(segs[e.a].counts, segs[fresh[f].b].counts, items)
		})
		for _, fe := range fresh {
			heap.Push(&h, fe)
		}
	}
}
