package core

import (
	"sync"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// Parallel sumdiff evaluation. Segmentation quality is a pure function
// of the inputs, so fanning the O(m²·k²) cost over workers changes
// nothing but wall-clock time: Greedy's initial pair table is computed
// in parallel and heapified once; RC's closest-segment scans reduce
// per-worker minima with a deterministic (cost, index) tie-break. The
// worker pool itself comes from the shared internal/conc helpers.

// closestSegment finds, among live (excluding index skip), the segment
// with minimum sumdiff against counts, breaking ties toward the lowest
// index — the same answer a serial left-to-right scan gives.
func closestSegment(counts []uint32, live []*segment, skip int, items []dataset.Item, workers int) (bestJ int, bestCost int64) {
	type result struct {
		j    int
		cost int64
	}
	if workers <= 1 || len(live) < 2*workers {
		bestJ = -1
		for j, s := range live {
			if j == skip {
				continue
			}
			cost := SumDiffPair(counts, s.counts, items)
			if bestJ < 0 || cost < bestCost {
				bestJ, bestCost = j, cost
			}
		}
		return bestJ, bestCost
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	chunk := (len(live) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(live) {
			hi = len(live)
		}
		results[w] = result{j: -1}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := result{j: -1}
			for j := lo; j < hi; j++ {
				if j == skip {
					continue
				}
				cost := SumDiffPair(counts, live[j].counts, items)
				if local.j < 0 || cost < local.cost {
					local = result{j: j, cost: cost}
				}
			}
			results[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	bestJ = -1
	for _, res := range results {
		if res.j < 0 {
			continue
		}
		if bestJ < 0 || res.cost < bestCost || (res.cost == bestCost && res.j < bestJ) {
			bestJ, bestCost = res.j, res.cost
		}
	}
	return bestJ, bestCost
}
