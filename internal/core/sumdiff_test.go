package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func randomRow(r *rand.Rand, k, maxVal int) []uint32 {
	row := make([]uint32, k)
	for i := range row {
		row[i] = uint32(r.Intn(maxVal))
	}
	return row
}

func TestSumDiffPairMatchesSet(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(6)
		a, b := randomRow(r, k, 40), randomRow(r, k, 40)
		items := AllItems(k)
		return SumDiffPair(a, b, items) == SumDiffSet([][]uint32{a, b}, items)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSumDiffNonNegativeAndSymmetric(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(6)
		a, b := randomRow(r, k, 40), randomRow(r, k, 40)
		items := AllItems(k)
		d := SumDiffPair(a, b, items)
		return d >= 0 && d == SumDiffPair(b, a, items)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLemma2a: segments of the same configuration have sumdiff 0.
func TestLemma2a(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(5)
		cfg := ConfigurationOf(randomRow(r, k, 100))
		mk := func() []uint32 {
			row := make([]uint32, k)
			v := uint32(1000)
			for _, it := range cfg {
				row[it] = v
				v -= uint32(1 + r.Intn(9))
			}
			return row
		}
		rows := [][]uint32{mk(), mk(), mk()}
		return SumDiffSet(rows, AllItems(k)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLemma2b: segments whose configurations differ by a *strict*
// support inversion have positive sumdiff. (With ties, two rows can have
// formally different configurations yet identical bounds — e.g. rows
// [1,3] and [2,2] — so the strictness hypothesis matters.)
func TestLemma2b(t *testing.T) {
	a := []uint32{5, 1} // a ≥ b strictly
	b := []uint32{1, 5} // b ≥ a strictly
	if got := SumDiffPair(a, b, AllItems(2)); got <= 0 {
		t.Errorf("sumdiff of strictly inverted rows = %d, want > 0", got)
	}
	// The worked numbers: merged row [6,6] → pair bound 6; separate
	// bounds 1 + 1 = 2; sumdiff = 4.
	if got := SumDiffPair(a, b, AllItems(2)); got != 4 {
		t.Errorf("sumdiff = %d, want 4", got)
	}
}

func TestSumDiffTieCaveat(t *testing.T) {
	// Documents the boundary case: configurations differ (only via the
	// canonical tie-break), yet no bound is lost and sumdiff is 0.
	a := []uint32{1, 3}
	b := []uint32{2, 2}
	if SameConfiguration(a, b) {
		t.Fatal("test premise broken: configurations should differ")
	}
	if got := SumDiffPair(a, b, AllItems(2)); got != 0 {
		t.Errorf("sumdiff = %d, want 0 for tie-only configuration difference", got)
	}
}

// TestLemma2c: sumdiff is monotone under adding segments to the set.
func TestLemma2c(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(5)
		n := 2 + r.Intn(4)
		rows := make([][]uint32, n+1)
		for i := range rows {
			rows[i] = randomRow(r, k, 30)
		}
		items := AllItems(k)
		return SumDiffSet(rows[:n], items) <= SumDiffSet(rows, items)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSumDiffIsBoundLoss ties equation (2) to its meaning: the sumdiff of
// two rows equals the total loosening of pairwise upper bounds caused by
// the merge.
func TestSumDiffIsBoundLoss(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(5)
		a, b := randomRow(r, k, 40), randomRow(r, k, 40)
		sep, err := NewMap([][]uint32{a, b})
		if err != nil {
			return false
		}
		mer, err := NewMap([][]uint32{MergeRows(a, b)})
		if err != nil {
			return false
		}
		var loss int64
		for x := 0; x < k; x++ {
			for y := x + 1; y < k; y++ {
				loss += mer.UpperBoundPair(dataset.Item(x), dataset.Item(y)) -
					sep.UpperBoundPair(dataset.Item(x), dataset.Item(y))
			}
		}
		return loss == SumDiffPair(a, b, AllItems(k))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSumDiffBubbleRestriction(t *testing.T) {
	// Restricting the summation to a subset of items can only reduce the
	// measured value (every pair contributes ≥ 0).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 3 + r.Intn(5)
		a, b := randomRow(r, k, 40), randomRow(r, k, 40)
		all := AllItems(k)
		sub := all[:1+r.Intn(k-1)]
		return SumDiffPair(a, b, sub) <= SumDiffPair(a, b, all)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSumDiffSetEmpty(t *testing.T) {
	if got := SumDiffSet(nil, nil); got != 0 {
		t.Errorf("SumDiffSet(nil) = %d, want 0", got)
	}
}

func TestAllItems(t *testing.T) {
	items := AllItems(4)
	want := []dataset.Item{0, 1, 2, 3}
	if len(items) != len(want) {
		t.Fatalf("len = %d, want %d", len(items), len(want))
	}
	for i := range want {
		if items[i] != want[i] {
			t.Errorf("AllItems[%d] = %d, want %d", i, items[i], want[i])
		}
	}
}
