package core

import (
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestFilterFunc(t *testing.T) {
	even := FilterFunc(func(x dataset.Itemset) bool { return len(x)%2 == 0 })
	if even.Allow(dataset.NewItemset(1)) {
		t.Error("odd-length itemset admitted")
	}
	if !even.AllowPair(2, 1) {
		t.Error("pair rejected")
	}
}

func TestAndComposition(t *testing.T) {
	if And() != nil {
		t.Error("And() should be nil")
	}
	if And(nil, nil) != nil {
		t.Error("And(nil, nil) should be nil")
	}
	f := ExcludeItems(3)
	if got := And(nil, f, nil); got == nil {
		t.Fatal("single surviving filter dropped")
	} else if !got.Allow(dataset.NewItemset(1, 2)) || got.Allow(dataset.NewItemset(1, 3)) {
		t.Error("And(single) does not behave like the filter")
	}
	both := And(ExcludeItems(3), MaxItems(2))
	cases := []struct {
		x    dataset.Itemset
		want bool
	}{
		{dataset.NewItemset(1, 2), true},
		{dataset.NewItemset(1, 3), false},    // banned item
		{dataset.NewItemset(1, 2, 4), false}, // too long
		{dataset.NewItemset(3), false},       // banned
		{dataset.NewItemset(0), true},
	}
	for _, c := range cases {
		if got := both.Allow(c.x); got != c.want {
			t.Errorf("Allow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if both.AllowPair(1, 3) {
		t.Error("AllowPair admits banned item")
	}
	if !both.AllowPair(1, 2) {
		t.Error("AllowPair rejects clean pair")
	}
}

func TestAndWithPruner(t *testing.T) {
	m, err := NewMap([][]uint32{{20, 40, 40}, {10, 40, 20}, {40, 40, 20}, {40, 10, 20}})
	if err != nil {
		t.Fatal(err)
	}
	// ubsup({0,1}) = 80; thresholds straddling it.
	combo := And(&Pruner{Map: m, MinCount: 100}, ExcludeItems(2))
	if combo.Allow(dataset.NewItemset(0, 1)) {
		t.Error("pair above bound admitted") // bound 80 < 100
	}
	combo2 := And(&Pruner{Map: m, MinCount: 50}, ExcludeItems(2))
	if !combo2.Allow(dataset.NewItemset(0, 1)) {
		t.Error("pair below bound rejected")
	}
	if combo2.Allow(dataset.NewItemset(0, 2)) {
		t.Error("banned item admitted")
	}
}

func TestMaxItems(t *testing.T) {
	f := MaxItems(1)
	if !f.Allow(dataset.NewItemset(5)) || f.Allow(dataset.NewItemset(1, 2)) {
		t.Error("MaxItems(1) misbehaves")
	}
	if f.AllowPair(1, 2) {
		t.Error("MaxItems(1) admits pairs")
	}
}
