package core

import (
	"bytes"
	"testing"
)

// FuzzReadMap: arbitrary bytes must never panic or demand absurd
// allocations; valid parses round-trip.
func FuzzReadMap(f *testing.F) {
	var seed bytes.Buffer
	m, err := NewMap([][]uint32{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteMap(&seed, m); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("OSSMMAP1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadMap(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMap(&buf, got); err != nil {
			t.Fatalf("WriteMap of parsed map failed: %v", err)
		}
		re, err := ReadMap(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if re.NumItems() != got.NumItems() || re.NumSegments() != got.NumSegments() {
			t.Fatal("round trip changed shape")
		}
	})
}
