package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// FuzzReadMap: arbitrary bytes must never panic or demand absurd
// allocations; valid parses round-trip.
func FuzzReadMap(f *testing.F) {
	var seed bytes.Buffer
	m, err := NewMap([][]uint32{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteMap(&seed, m); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("OSSMMAP1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadMap(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMap(&buf, got); err != nil {
			t.Fatalf("WriteMap of parsed map failed: %v", err)
		}
		re, err := ReadMap(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if re.NumItems() != got.NumItems() || re.NumSegments() != got.NumSegments() {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzBoundKernelsQuantized is FuzzBoundKernels aimed at the uint16
// mirror: roughly a quarter of the cells land in 65534..65537, so the
// fuzzer keeps crossing between maps that quantize cleanly and maps
// that overflow to the uint32 lanes, on segment counts deep enough to
// hit every dispatch lane. Decisions must stay bit-identical to the
// reference either way, and the mirror state must match the cells.
func FuzzBoundKernelsQuantized(f *testing.F) {
	f.Add(uint8(80), uint8(4), int64(3), uint32(100000))
	f.Add(uint8(40), uint8(6), int64(9), uint32(7))
	f.Add(uint8(200), uint8(2), int64(-5), uint32(1<<24))
	f.Fuzz(func(t *testing.T, segs, items uint8, seed int64, minsupRaw uint32) {
		ns := 1 + int(segs) // 1..256: spans the small, deep and blocked dispatch
		k := 2 + int(items)%8
		r := rand.New(rand.NewSource(seed))
		overflow := false
		rows := make([][]uint32, ns)
		for s := range rows {
			rows[s] = make([]uint32, k)
			for i := range rows[s] {
				if r.Intn(4) == 0 {
					rows[s][i] = uint32(65534 + r.Intn(4))
				} else {
					rows[s][i] = uint32(r.Intn(300))
				}
				if rows[s][i] > 0xFFFF {
					overflow = true
				}
			}
		}
		m, err := NewMap(rows)
		if err != nil {
			t.Fatal(err)
		}
		if m.Quantized() != !overflow {
			t.Fatalf("Quantized() = %v on a map with overflowing cells = %v", m.Quantized(), overflow)
		}
		minsup := int64(minsupRaw) % (65537*int64(ns) + 2)

		cands := make([]dataset.Itemset, 1+r.Intn(8))
		for i := range cands {
			cands[i] = randomNonEmptyItemset(r, k)
		}
		dec := make([]bool, len(cands))
		st := m.BoundBatch(cands, minsup, dec)
		var decided int64
		for _, ls := range st.Lanes {
			decided += ls.Decided
		}
		if decided != int64(len(cands)) {
			t.Fatalf("lanes decided %d of %d candidates", decided, len(cands))
		}
		bounds := m.UpperBoundBatch(cands, nil)
		for i, x := range cands {
			ref := m.referenceUpperBound(x)
			if m.UpperBound(x) != ref {
				t.Fatalf("UpperBound(%v) ≠ reference %d", x, ref)
			}
			if bounds[i] != ref {
				t.Fatalf("UpperBoundBatch[%d] = %d ≠ reference %d", i, bounds[i], ref)
			}
			if got, want := m.BoundAtLeast(x, minsup), ref >= minsup; got != want {
				t.Fatalf("BoundAtLeast(%v, %d) = %v, reference %d", x, minsup, got, ref)
			}
			if dec[i] != (ref >= minsup) {
				t.Fatalf("BoundBatch[%d] = %v for %v at %d, reference %d", i, dec[i], x, minsup, ref)
			}
		}

		// Extension kernel over the same rows.
		prefix := randomNonEmptyItemset(r, k)
		var exts []dataset.Item
		for it := dataset.Item(0); int(it) < k; it++ {
			if !prefix.Contains(it) {
				exts = append(exts, it)
			}
		}
		if len(exts) > 0 {
			extDec := make([]bool, len(exts))
			m.BoundExtensions(prefix, exts, minsup, extDec)
			for e, it := range exts {
				cand := dataset.NewItemset(append(append([]dataset.Item{}, prefix...), it)...)
				ref := m.referenceUpperBound(cand)
				if extDec[e] != (ref >= minsup) {
					t.Fatalf("BoundExtensions(%v + %d) = %v at %d, reference %d", prefix, it, extDec[e], minsup, ref)
				}
			}
		}
	})
}

// FuzzBoundKernels: on fuzzer-shaped random maps every decision kernel
// must agree bit-for-bit with the reference bound walk, for any itemset
// and threshold (the DESIGN.md §7 equivalence guarantee).
func FuzzBoundKernels(f *testing.F) {
	f.Add(uint8(4), uint8(3), int64(1), uint32(50))
	f.Add(uint8(40), uint8(6), int64(7), uint32(3))
	f.Add(uint8(17), uint8(2), int64(-9), uint32(0))
	f.Fuzz(func(t *testing.T, segs, items uint8, seed int64, minsupRaw uint32) {
		ns := 1 + int(segs)%48
		k := 2 + int(items)%8
		r := rand.New(rand.NewSource(seed))
		rows := make([][]uint32, ns)
		for s := range rows {
			rows[s] = make([]uint32, k)
			for i := range rows[s] {
				rows[s][i] = uint32(r.Intn(200))
			}
		}
		m, err := NewMap(rows)
		if err != nil {
			t.Fatal(err)
		}
		minsup := int64(minsupRaw % uint32(200*ns+2))

		cands := make([]dataset.Itemset, 1+r.Intn(12))
		for i := range cands {
			cands[i] = randomNonEmptyItemset(r, k)
		}
		dec := make([]bool, len(cands))
		m.BoundBatch(cands, minsup, dec)
		bounds := m.UpperBoundBatch(cands, nil)
		for i, x := range cands {
			ref := m.referenceUpperBound(x)
			if m.UpperBound(x) != ref {
				t.Fatalf("UpperBound(%v) ≠ reference %d", x, ref)
			}
			if bounds[i] != ref {
				t.Fatalf("UpperBoundBatch[%d] = %d ≠ reference %d", i, bounds[i], ref)
			}
			if got, want := m.BoundAtLeast(x, minsup), ref >= minsup; got != want {
				t.Fatalf("BoundAtLeast(%v, %d) = %v, reference %d", x, minsup, got, ref)
			}
			if dec[i] != (ref >= minsup) {
				t.Fatalf("BoundBatch[%d] = %v for %v at %d, reference %d", i, dec[i], x, minsup, ref)
			}
			if len(x) == 2 {
				if got, want := m.BoundPairAtLeast(x[0], x[1], minsup), ref >= minsup; got != want {
					t.Fatalf("BoundPairAtLeast(%v, %d) = %v, reference %d", x, minsup, got, ref)
				}
			}
		}

		// Extension kernel against the same oracle.
		prefix := randomNonEmptyItemset(r, k)
		var exts []dataset.Item
		for it := dataset.Item(0); int(it) < k; it++ {
			if !prefix.Contains(it) {
				exts = append(exts, it)
			}
		}
		if len(exts) > 0 {
			extDec := make([]bool, len(exts))
			m.BoundExtensions(prefix, exts, minsup, extDec)
			for e, it := range exts {
				cand := dataset.NewItemset(append(append([]dataset.Item{}, prefix...), it)...)
				ref := m.referenceUpperBound(cand)
				if extDec[e] != (ref >= minsup) {
					t.Fatalf("BoundExtensions(%v + %d) = %v at %d, reference %d", prefix, it, extDec[e], minsup, ref)
				}
			}
		}
	})
}
