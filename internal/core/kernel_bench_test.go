package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// benchSegCounts spans one block (16), a typical serving index (256) and
// a deep segmentation (4096); each op processes one whole generation of
// benchCands candidates, so ns/op is directly comparable across kernels.
var benchSegCounts = []int{16, 256, 4096}

const (
	benchItems = 512
	benchCands = 1024
)

// benchFixture builds a skewed random map plus one generation of random
// 3-item candidates, with a discriminative threshold (the median exact
// bound) so roughly half the candidates admit and half reject. Item
// supports follow a power-ish law (item i is drawn from [0, 200≫(i mod
// 8))), the shape frequency counting actually sees — candidate bounds
// then disperse widely around the threshold, which is the regime the
// early-exit/early-abandon machinery is designed for.
func benchFixture(segs int) (*Map, []dataset.Itemset, int64) {
	r := rand.New(rand.NewSource(int64(segs)))
	rows := make([][]uint32, segs)
	for s := range rows {
		rows[s] = make([]uint32, benchItems)
		for i := range rows[s] {
			rows[s][i] = uint32(r.Intn(1 + 200>>(i%8)))
		}
	}
	m, err := NewMap(rows)
	if err != nil {
		panic(err)
	}
	cands := make([]dataset.Itemset, benchCands)
	for i := range cands {
		for {
			cands[i] = dataset.NewItemset(
				dataset.Item(r.Intn(benchItems)),
				dataset.Item(r.Intn(benchItems)),
				dataset.Item(r.Intn(benchItems)),
			)
			if len(cands[i]) == 3 {
				break
			}
		}
	}
	bounds := m.UpperBoundBatch(cands, nil)
	sorted := append([]int64{}, bounds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return m, cands, sorted[len(sorted)/2]
}

// BenchmarkUpperBoundScalar is the pre-kernel baseline: one full
// UpperBound walk per candidate, compared against the threshold.
func BenchmarkUpperBoundScalar(b *testing.B) {
	for _, segs := range benchSegCounts {
		b.Run(fmt.Sprintf("segs=%d", segs), func(b *testing.B) {
			m, cands, minsup := benchFixture(segs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, x := range cands {
					if m.UpperBound(x) >= minsup {
						_ = x
					}
				}
			}
		})
	}
}

// BenchmarkUpperBoundAtLeast is the scalar decision kernel: early exit
// and early abandon, one candidate at a time.
func BenchmarkUpperBoundAtLeast(b *testing.B) {
	for _, segs := range benchSegCounts {
		b.Run(fmt.Sprintf("segs=%d", segs), func(b *testing.B) {
			m, cands, minsup := benchFixture(segs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, x := range cands {
					_ = m.BoundAtLeast(x, minsup)
				}
			}
		})
	}
}

// BenchmarkUpperBoundBatch is the row-amortized batch kernel deciding
// the whole generation per op.
func BenchmarkUpperBoundBatch(b *testing.B) {
	for _, segs := range benchSegCounts {
		b.Run(fmt.Sprintf("segs=%d", segs), func(b *testing.B) {
			m, cands, minsup := benchFixture(segs)
			dec := make([]bool, len(cands))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.BoundBatch(cands, minsup, dec)
			}
		})
	}
}
