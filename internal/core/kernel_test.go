package core

import (
	"math/rand"
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// The kernel contract (DESIGN.md §7): every decision kernel and every
// batch kernel agrees bit-for-bit with the pre-flat-store reference walk
// referenceUpperBound. The tests below check that contract on randomized
// maps, itemsets and thresholds, and across all five segmentation
// algorithms.

// checkKernelsAgainstReference drives every kernel over random queries
// against m and fails the test on the first disagreement with the
// reference oracle.
func checkKernelsAgainstReference(t *testing.T, r *rand.Rand, m *Map, trials int) {
	t.Helper()
	k := m.NumItems()
	maxT := int64(1)
	for _, tot := range m.Totals() {
		if tot > maxT {
			maxT = tot
		}
	}

	// Scalar paths: UpperBound, UpperBoundPair, BoundAtLeast.
	for trial := 0; trial < trials; trial++ {
		x := randomNonEmptyItemset(r, k)
		ref := m.referenceUpperBound(x)
		if got := m.UpperBound(x); got != ref {
			t.Fatalf("UpperBound(%v) = %d, reference %d", x, got, ref)
		}
		if len(x) == 2 {
			if got := m.UpperBoundPair(x[0], x[1]); got != ref {
				t.Fatalf("UpperBoundPair(%v) = %d, reference %d", x, got, ref)
			}
		}
		// Thresholds straddling the bound, plus random ones.
		for _, minsup := range []int64{0, 1, ref - 1, ref, ref + 1, 1 + r.Int63n(maxT+1)} {
			if got, want := m.BoundAtLeast(x, minsup), ref >= minsup; got != want {
				t.Fatalf("BoundAtLeast(%v, %d) = %v, reference bound %d", x, minsup, got, ref)
			}
			if len(x) == 2 {
				if got, want := m.BoundPairAtLeast(x[0], x[1], minsup), ref >= minsup; got != want {
					t.Fatalf("BoundPairAtLeast(%v, %d) = %v, reference bound %d", x, minsup, got, ref)
				}
			}
		}
	}

	// Batch paths: one generation of random candidates per threshold.
	// Even trials force a uniform itemset length (up to 5, so the k-item
	// flat and deep lanes are exercised past the pair/triple unrolls),
	// odd trials mix lengths for the generic lane.
	for trial := 0; trial < trials; trial++ {
		n := 1 + r.Intn(40)
		cands := make([]dataset.Itemset, n)
		uniform := 0
		if trial%2 == 0 {
			uniform = 1 + r.Intn(minInt(5, k))
		}
		for i := range cands {
			if uniform > 0 {
				cands[i] = randomItemsetOfLen(r, k, uniform)
			} else {
				cands[i] = randomNonEmptyItemset(r, k)
			}
		}
		minsup := 1 + r.Int63n(maxT+1)
		dec := make([]bool, n)
		st := m.BoundBatch(cands, minsup, dec)
		if st.EarlyExit+st.Abandoned > int64(n) {
			t.Fatalf("BoundBatch shortcut counts %+v exceed %d candidates", st, n)
		}
		checkLaneAccounting(t, st, int64(n), "BoundBatch")
		bounds := m.UpperBoundBatch(cands, nil)
		for i, x := range cands {
			ref := m.referenceUpperBound(x)
			if bounds[i] != ref {
				t.Fatalf("UpperBoundBatch[%d] = %d for %v, reference %d", i, bounds[i], x, ref)
			}
			if dec[i] != (ref >= minsup) {
				t.Fatalf("BoundBatch[%d] = %v for %v at %d, reference bound %d", i, dec[i], x, minsup, ref)
			}
		}
	}

	// Pair kernel: all 2-subsets of the item domain.
	items := make([]dataset.Item, k)
	for i := range items {
		items[i] = dataset.Item(i)
	}
	numPairs := k * (k - 1) / 2
	pairDec := make([]bool, numPairs)
	for trial := 0; trial < trials; trial++ {
		minsup := 1 + r.Int63n(maxT+1)
		st := m.BoundPairsAmong(items, minsup, pairDec)
		if st.EarlyExit+st.Abandoned > int64(numPairs) {
			t.Fatalf("BoundPairsAmong shortcut counts %+v exceed %d pairs", st, numPairs)
		}
		checkLaneAccounting(t, st, int64(numPairs), "BoundPairsAmong")
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				ref := m.referenceUpperBound(dataset.Itemset{items[i], items[j]})
				if got := pairDec[PairIndex(i, j, k)]; got != (ref >= minsup) {
					t.Fatalf("BoundPairsAmong pair (%d,%d) = %v at %d, reference bound %d", i, j, got, minsup, ref)
				}
			}
		}
	}

	// Extension kernel: shared prefix, the depth-first miners' shape.
	for trial := 0; trial < trials; trial++ {
		prefix := dataset.Itemset{}
		if r.Intn(4) > 0 {
			prefix = randomNonEmptyItemset(r, k)
		}
		var exts []dataset.Item
		for it := dataset.Item(0); int(it) < k; it++ {
			if !prefix.Contains(it) && r.Intn(2) == 0 {
				exts = append(exts, it)
			}
		}
		if len(exts) == 0 {
			continue
		}
		minsup := 1 + r.Int63n(maxT+1)
		extDec := make([]bool, len(exts))
		extSt := m.BoundExtensions(prefix, exts, minsup, extDec)
		checkLaneAccounting(t, extSt, int64(len(exts)), "BoundExtensions")
		for e, it := range exts {
			cand := dataset.NewItemset(append(append([]dataset.Item{}, prefix...), it)...)
			ref := m.referenceUpperBound(cand)
			if extDec[e] != (ref >= minsup) {
				t.Fatalf("BoundExtensions(%v + %d) = %v at %d, reference bound %d", prefix, it, extDec[e], minsup, ref)
			}
		}
	}
}

// randomItemsetOfLen draws a uniformly random itemset of exactly want
// distinct items from a k-item domain.
func randomItemsetOfLen(r *rand.Rand, k, want int) dataset.Itemset {
	perm := r.Perm(k)[:want]
	items := make([]dataset.Item, want)
	for i, p := range perm {
		items[i] = dataset.Item(p)
	}
	return dataset.NewItemset(items...)
}

// checkLaneAccounting verifies the per-lane breakdown of a batch call:
// every candidate was decided by exactly one lane, and the per-lane
// shortcut counts sum to the top-level counters.
func checkLaneAccounting(t *testing.T, st BatchStats, decided int64, ctx string) {
	t.Helper()
	var d, ee, ab int64
	for _, ls := range st.Lanes {
		d += ls.Decided
		ee += ls.EarlyExit
		ab += ls.Abandoned
	}
	if d != decided {
		t.Fatalf("%s: lanes decided %d of %d candidates", ctx, d, decided)
	}
	if ee != st.EarlyExit || ab != st.Abandoned {
		t.Fatalf("%s: lane shortcut sums (%d, %d) disagree with totals (%d, %d)", ctx, ee, ab, st.EarlyExit, st.Abandoned)
	}
}

// TestKernelDifferentialAcrossSegmenters proves the equivalence
// guarantee on maps produced by all five segmentation algorithms, not
// just hand-built ones: the segmenter cannot produce a row layout the
// kernels mis-handle.
func TestKernelDifferentialAcrossSegmenters(t *testing.T) {
	algs := []Algorithm{AlgRandom, AlgRC, AlgGreedy, AlgRandomRC, AlgRandomGreedy}
	for _, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(alg) + 7))
			for rep := 0; rep < 4; rep++ {
				d := randomDataset(r)
				mPages := 1 + r.Intn(d.NumTx())
				pages := dataset.PaginateN(d, mPages)
				rows := dataset.PageCounts(d, pages)
				target := 1 + r.Intn(mPages)
				res, err := Segment(rows, Options{
					Algorithm:      alg,
					TargetSegments: target,
					MidSegments:    mPages,
					Seed:           r.Int63(),
				})
				if err != nil {
					t.Fatal(err)
				}
				checkKernelsAgainstReference(t, r, res.Map, 8)
			}
		})
	}
}

// TestKernelDifferentialProperty hits many more map shapes (including
// multi-block maps whose segment count exceeds one 16-segment block)
// through random page→segment assignments.
func TestKernelDifferentialProperty(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		_, m := buildRandomSegmentation(r)
		checkKernelsAgainstReference(t, r, m, 6)
	}
}

// TestKernelMultiBlockShortcuts pins the shortcut machinery on a map
// wide enough that decisions can happen before the final block: a
// 64-segment map where one itemset early-exits in block 0 and another
// abandons in block 0.
func TestKernelMultiBlockShortcuts(t *testing.T) {
	const segs, k = 64, 4
	rows := make([][]uint32, segs)
	for s := range rows {
		rows[s] = make([]uint32, k)
		rows[s][0] = 100 // item 0: plentiful everywhere
		rows[s][1] = 100
		// items 2, 3 are empty everywhere: their pair abandons immediately.
	}
	m, err := NewMap(rows)
	if err != nil {
		t.Fatal(err)
	}
	hot := dataset.NewItemset(0, 1)
	cold := dataset.NewItemset(2, 3)
	// 64 segments is past the pair crossover and every cell fits the
	// mirror, so single decisions ride the quantized deep lane.
	if ok, out, lane := m.boundAtLeast(hot, 200); !ok || out != boundEarlyExit || lane != LaneFlat16 {
		t.Errorf("hot pair: ok=%v outcome=%d lane=%v, want flat16-lane early exit", ok, out, lane)
	}
	if ok, out, lane := m.boundAtLeast(cold, 1); ok || out != boundAbandoned || lane != LaneFlat16 {
		t.Errorf("cold pair: ok=%v outcome=%d lane=%v, want flat16-lane abandon", ok, out, lane)
	}
	dec := make([]bool, 2)
	st := m.BoundBatch([]dataset.Itemset{hot, cold}, 200, dec)
	if !dec[0] || dec[1] {
		t.Errorf("BoundBatch decisions = %v, want [true false]", dec)
	}
	if st.EarlyExit != 1 || st.Abandoned != 1 {
		t.Errorf("BoundBatch stats = %+v, want one early exit and one abandon", st)
	}
}
