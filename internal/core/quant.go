package core

import "sync/atomic"

// Quantized uint16 mirror (DESIGN.md §7). Deep segmentations put the
// bound kernels firmly in the memory-bound regime: at 4096 segments the
// uint32 support matrix runs to megabytes and every batch call streams
// it, so halving the bytes per cell halves the traffic per block. When
// every per-segment singleton support fits in 16 bits — true for any
// segmentation whose segments hold fewer than 65536 transactions each,
// i.e. virtually every real map — the Map lazily materializes a compact
// uint16 mirror of both columnar views and the kernels run over it,
// widening each cell back into the existing int64 accumulation so every
// bound and decision is bit-identical to the uint32 path.
//
// The mirror is pure cache: it is derived on first use, never
// serialized (WriteMap/ReadMap carry only the uint32 cells), and
// dropped by invalidateQuant. Map cells are immutable after
// construction — every path that changes counts (ingest appends through
// an Appender snapshot, compaction promotions, registry swaps,
// SegmentRange views) publishes a *new* Map, whose mirror starts cold
// and rebuilds lazily from the new cells — so invalidation is only
// needed by the explicit SetQuantized knob (and by any future in-place
// mutator, which must call invalidateQuant before publishing).

// quantMirror is the uint16 shadow of the flat columnar store.
type quantMirror struct {
	segMajor  []uint16 // [segment*numItems + item]
	itemMajor []uint16 // [item*numSegs + segment]
}

// quantOverflow marks a map whose cells exceed uint16: the mirror is
// unbuildable and every kernel stays on the uint32 path. Distinguishing
// it from "not built yet" makes the overflow scan run once, not per
// call.
var quantOverflow = &quantMirror{}

// quantized returns the uint16 mirror, building it on first use, or nil
// when any cell overflows 16 bits (the per-index uint32 fallback) or
// quantization is disabled. Concurrent first calls may race to build;
// the mirror is a pure function of the immutable cells, so whichever
// build wins publishes identical content.
func (m *Map) quantized() *quantMirror {
	if m.quantOff.Load() {
		return nil
	}
	if q := m.quant.Load(); q != nil {
		if q == quantOverflow {
			return nil
		}
		return q
	}
	q := m.buildQuant()
	m.quant.CompareAndSwap(nil, q)
	if q = m.quant.Load(); q == quantOverflow {
		return nil
	}
	return q
}

// buildQuant scans the cells once: on overflow it reports the sentinel,
// otherwise it narrows both columnar views.
func (m *Map) buildQuant() *quantMirror {
	for _, c := range m.segMajor {
		if c > 0xFFFF {
			return quantOverflow
		}
	}
	q := &quantMirror{
		segMajor:  make([]uint16, len(m.segMajor)),
		itemMajor: make([]uint16, len(m.itemMajor)),
	}
	for i, c := range m.segMajor {
		q.segMajor[i] = uint16(c)
	}
	for i, c := range m.itemMajor {
		q.itemMajor[i] = uint16(c)
	}
	return q
}

// invalidateQuant drops the mirror; the next kernel call that wants it
// rebuilds from the current cells. Any future in-place cell mutator
// must call this before the mutated map is visible to queries.
func (m *Map) invalidateQuant() { m.quant.Store(nil) }

// Quantized reports whether the map serves the uint16 kernel lanes,
// materializing the mirror if it has not been built yet. False means
// some per-segment support exceeds 65535 (or SetQuantized(false) is in
// effect) and every kernel runs the uint32 path.
func (m *Map) Quantized() bool { return m.quantized() != nil }

// SetQuantized enables (the default) or disables the uint16 mirror.
// Disabling frees the mirror and pins every kernel to the uint32 lanes
// — the knob behind ossm-bench's quantized-vs-uint32 lane deltas, also
// useful when the extra 4 bytes per cell matter more than kernel
// speed. Re-enabling rebuilds lazily.
func (m *Map) SetQuantized(enabled bool) {
	m.quantOff.Store(!enabled)
	if !enabled {
		m.invalidateQuant()
	}
}

// quantState is the atomic mirror slot embedded in Map.
type quantState struct {
	quant    atomic.Pointer[quantMirror]
	quantOff atomic.Bool
}
