package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The resolveWorkers/parallelFor helpers moved to internal/conc (with
// their unit tests); what stays here is the segmentation-specific
// parallel reduction and the determinism guarantees built on top.

// TestParallelSegmentationDeterministic: every algorithm produces the
// same segmentation regardless of the worker count.
func TestParallelSegmentationDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 6 + r.Intn(20)
		k := 3 + r.Intn(6)
		rows := make([][]uint32, m)
		for i := range rows {
			rows[i] = randomRow(r, k, 40)
		}
		target := 1 + r.Intn(m)
		for _, alg := range []Algorithm{AlgRC, AlgGreedy, AlgRandomRC, AlgRandomGreedy} {
			serial, err := Segment(rows, Options{
				Algorithm: alg, TargetSegments: target, MidSegments: m, Seed: seed,
			})
			if err != nil {
				return false
			}
			par, err := Segment(rows, Options{
				Algorithm: alg, TargetSegments: target, MidSegments: m, Seed: seed, Workers: 4,
			})
			if err != nil {
				return false
			}
			if len(serial.Assignment) != len(par.Assignment) {
				return false
			}
			for s := range serial.Assignment {
				if len(serial.Assignment[s]) != len(par.Assignment[s]) {
					return false
				}
				for i := range serial.Assignment[s] {
					if serial.Assignment[s][i] != par.Assignment[s][i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClosestSegmentMatchesSerialScan(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(5)
		n := 2 + r.Intn(30)
		live := make([]*segment, n)
		for i := range live {
			live[i] = &segment{counts: randomRow(r, k, 20)}
		}
		items := AllItems(k)
		skip := r.Intn(n)
		probe := randomRow(r, k, 20)
		wantJ, wantCost := closestSegment(probe, live, skip, items, 1)
		for _, workers := range []int{2, 3, 7} {
			gotJ, gotCost := closestSegment(probe, live, skip, items, workers)
			if gotJ != wantJ || gotCost != wantCost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
