package core

import "github.com/ossm-mining/ossm/internal/dataset"

// sumdiff (equation 2) quantifies the loss of accuracy incurred by
// merging segments: for every pair of items {x, y} it compares the upper
// bound on sup({x, y}) with the segments merged into one against the
// bound with the segments kept separate, and sums the differences. It is
// zero exactly when all segments share a configuration (Lemma 2a/2b) and
// monotone under adding segments (Lemma 2c).

// SumDiffPair computes sumdiff({a, b}) for two segment support rows,
// restricted to the given items (pass AllItems(k) — or a bubble list — as
// items). This is the inner loop of the Greedy and RC algorithms; it runs
// in O(len(items)²).
func SumDiffPair(a, b []uint32, items []dataset.Item) int64 {
	var total int64
	for i := 0; i < len(items); i++ {
		x := items[i]
		ax, bx := a[x], b[x]
		for j := i + 1; j < len(items); j++ {
			y := items[j]
			ay, by := a[y], b[y]
			ma := ax
			if ay < ma {
				ma = ay
			}
			mb := bx
			if by < mb {
				mb = by
			}
			mc := ax + bx
			if ay+by < mc {
				mc = ay + by
			}
			total += int64(mc) - int64(ma) - int64(mb)
		}
	}
	return total
}

// SumDiffSet computes sumdiff(S) for an arbitrary set of segment rows,
// restricted to the given items — the general form of equation (2) used
// by the Lemma 2 analysis and its tests.
func SumDiffSet(rows [][]uint32, items []dataset.Item) int64 {
	if len(rows) == 0 {
		return 0
	}
	k := len(rows[0])
	mergedRow := make([]uint32, k)
	for _, row := range rows {
		for i, c := range row {
			mergedRow[i] += c
		}
	}
	var total int64
	for i := 0; i < len(items); i++ {
		x := items[i]
		for j := i + 1; j < len(items); j++ {
			y := items[j]
			// Bound with everything merged into one segment.
			mc := mergedRow[x]
			if mergedRow[y] < mc {
				mc = mergedRow[y]
			}
			// Bound with the segments kept separate.
			var sep int64
			for _, row := range rows {
				m := row[x]
				if row[y] < m {
					m = row[y]
				}
				sep += int64(m)
			}
			total += int64(mc) - sep
		}
	}
	return total
}

// AllItems returns the identity item list 0 … k-1, the "no bubble list"
// summation domain.
func AllItems(k int) []dataset.Item {
	items := make([]dataset.Item, k)
	for i := range items {
		items[i] = dataset.Item(i)
	}
	return items
}
