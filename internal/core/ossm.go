// Package core implements the paper's primary contribution: the Optimized
// Segment Support Map (OSSM), the segment minimization analysis
// (Section 4), and the constrained segmentation heuristics (Section 5) —
// Greedy, RC, Random, the Random-RC / Random-Greedy hybrids, the bubble
// list optimization, and the recommended recipe (Figure 7).
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// ErrNoSegments is returned when constructing a Map from zero segments.
var ErrNoSegments = errors.New("core: OSSM needs at least one segment")

// ErrRaggedSegments is returned when segment support rows disagree on the
// item-domain size.
var ErrRaggedSegments = errors.New("core: segment support rows have differing lengths")

// Map is the optimized segment support map M_n: for each of n segments it
// stores the support of every singleton item within that segment
// (Section 3). The structure is query-independent — it is built once at
// "compile time" and serves any support threshold afterwards.
//
// Storage is a flat columnar store rather than a ragged [][]uint32: the
// matrix is kept contiguously in both segment-major order (one cache-warm
// row per segment, the layout the batch bound kernels stream) and
// item-major order (one contiguous column per item, the layout the
// scalar and extension kernels stream), plus per-item suffix remainders
// suffix[it][s] = Σ_{t≥s} sup_t({it}) that let decision-mode bound calls
// abandon hopeless candidates before scanning every segment (see
// kernel.go).
type Map struct {
	numItems int
	numSegs  int
	segMajor  []uint32 // [segment*numItems + item] singleton support
	itemMajor []uint32 // [item*numSegs + segment], the transposed view
	totals    []int64  // per-item global support (sum over segments)
	suffix    []int64  // [item*(numSegs+1) + s] = Σ_{t≥s} support; trailing 0

	// quantState holds the lazily built uint16 mirror of both cell
	// views (see quant.go) — pure cache, never serialized.
	quantState
}

// NewMap builds a Map from per-segment singleton supports. The rows are
// copied into the flat backing store, so callers remain free to reuse
// them.
func NewMap(segCounts [][]uint32) (*Map, error) {
	if len(segCounts) == 0 {
		return nil, ErrNoSegments
	}
	k := len(segCounts[0])
	for i, row := range segCounts {
		if len(row) != k {
			return nil, fmt.Errorf("%w: row 0 has %d items, row %d has %d", ErrRaggedSegments, k, i, len(row))
		}
	}
	flat := make([]uint32, len(segCounts)*k)
	for s, row := range segCounts {
		copy(flat[s*k:(s+1)*k], row)
	}
	return newMapFromFlat(len(segCounts), k, flat), nil
}

// newMapFromFlat assumes ownership of the segment-major cells and derives
// the transposed view, the per-item totals and the suffix remainders.
func newMapFromFlat(numSegs, numItems int, segMajor []uint32) *Map {
	m := &Map{
		numItems:  numItems,
		numSegs:   numSegs,
		segMajor:  segMajor,
		itemMajor: make([]uint32, numSegs*numItems),
		totals:    make([]int64, numItems),
		suffix:    make([]int64, numItems*(numSegs+1)),
	}
	for s := 0; s < numSegs; s++ {
		row := segMajor[s*numItems : (s+1)*numItems]
		for it, c := range row {
			m.itemMajor[it*numSegs+s] = c
			m.totals[it] += int64(c)
		}
	}
	for it := 0; it < numItems; it++ {
		col := m.itemMajor[it*numSegs : (it+1)*numSegs]
		base := it * (numSegs + 1)
		var acc int64
		for s := numSegs - 1; s >= 0; s-- {
			acc += int64(col[s])
			m.suffix[base+s] = acc
		}
	}
	return m
}

// BuildFromPages constructs a Map directly from a dataset and a page
// assignment: assign[s] lists the pages composing segment s. It is the
// bridge between a segmentation result and a queryable OSSM.
func BuildFromPages(d *dataset.Dataset, pages []dataset.Page, assign [][]int) (*Map, error) {
	if len(assign) == 0 {
		return nil, ErrNoSegments
	}
	k := d.NumItems()
	flat := make([]uint32, len(assign)*k)
	for s, pageIdxs := range assign {
		row := flat[s*k : (s+1)*k]
		for _, pi := range pageIdxs {
			if pi < 0 || pi >= len(pages) {
				return nil, fmt.Errorf("core: segment %d references page %d of %d", s, pi, len(pages))
			}
			p := pages[pi]
			for it, c := range d.ItemCounts(p.Lo, p.Hi) {
				row[it] += c
			}
		}
	}
	return newMapFromFlat(len(assign), k, flat), nil
}

// NumSegments returns n, the number of segments.
func (m *Map) NumSegments() int { return m.numSegs }

// NumItems returns k, the size of the item domain.
func (m *Map) NumItems() int { return m.numItems }

// SegmentSupport returns sup_i({x}), the support of item x within
// segment i.
func (m *Map) SegmentSupport(i int, x dataset.Item) uint32 {
	return m.segMajor[i*m.numItems+int(x)]
}

// ItemSupport returns the exact global support of the singleton {x}.
// For singletons the OSSM is lossless by construction.
func (m *Map) ItemSupport(x dataset.Item) int64 { return m.totals[x] }

// Totals returns the per-item global supports. The returned slice is
// shared; callers must not mutate it.
func (m *Map) Totals() []int64 { return m.totals }

// UpperBound returns ubsup(X, M_n), equation (1):
//
//	Σ_{i=1..n} min_{x ∈ X} sup_i({x})
//
// The empty itemset is supported by every transaction, a count the Map
// does not record, so UpperBound panics on an empty itemset.
//
// The scan streams the members' item-major columns in parallel; for a
// threshold decision rather than the exact bound, BoundAtLeast is
// cheaper (it exits as soon as the answer is determined), and for a
// whole generation of candidates BoundBatch amortizes each segment row
// across all of them (see kernel.go).
func (m *Map) UpperBound(x dataset.Itemset) int64 {
	if len(x) == 0 {
		panic("core: UpperBound of the empty itemset is not defined by the OSSM")
	}
	if len(x) == 1 {
		return m.totals[x[0]]
	}
	ns := m.numSegs
	col0 := m.itemMajor[int(x[0])*ns : int(x[0])*ns+ns]
	var total int64
	for s := 0; s < ns; s++ {
		minC := col0[s]
		for _, it := range x[1:] {
			if c := m.itemMajor[int(it)*ns+s]; c < minC {
				minC = c
			}
		}
		total += int64(minC)
	}
	return total
}

// UpperBoundPair is UpperBound for a 2-itemset {a, b}, the hot path of
// candidate-2 pruning.
func (m *Map) UpperBoundPair(a, b dataset.Item) int64 {
	ns := m.numSegs
	colA := m.itemMajor[int(a)*ns : int(a)*ns+ns]
	colB := m.itemMajor[int(b)*ns : int(b)*ns+ns]
	var total int64
	for s, ca := range colA {
		if cb := colB[s]; cb < ca {
			ca = cb
		}
		total += int64(ca)
	}
	return total
}

// referenceUpperBound is the pre-flat-store bound loop — a walk over the
// segment-major rows exactly as the original ragged [][]uint32
// implementation performed it. It is retained unexported as the
// equivalence oracle for the kernel layer: every kernel in kernel.go must
// return bit-identical bounds (and therefore decisions) to this loop.
func (m *Map) referenceUpperBound(x dataset.Itemset) int64 {
	if len(x) == 0 {
		panic("core: UpperBound of the empty itemset is not defined by the OSSM")
	}
	if len(x) == 1 {
		return m.totals[x[0]]
	}
	var total int64
	for s := 0; s < m.numSegs; s++ {
		row := m.segMajor[s*m.numItems : (s+1)*m.numItems]
		minC := row[x[0]]
		for _, it := range x[1:] {
			if c := row[it]; c < minC {
				minC = c
			}
		}
		total += int64(minC)
	}
	return total
}

// NaiveUpperBound is the bound available *without* an OSSM: the minimum of
// the items' global supports (the "last column" bound of Example 1). It
// equals UpperBound on a single-segment map and is never tighter than a
// multi-segment bound.
func (m *Map) NaiveUpperBound(x dataset.Itemset) int64 {
	if len(x) == 0 {
		panic("core: NaiveUpperBound of the empty itemset is not defined")
	}
	minC := m.totals[x[0]]
	for _, it := range x[1:] {
		if c := m.totals[it]; c < minC {
			minC = c
		}
	}
	return minC
}

// SizeBytes reports the exact memory footprint of the flat store's
// backing arrays: both 4-byte cell matrices (segment-major and the
// transposed item-major view), the 8-byte per-item totals and the 8-byte
// suffix remainders. The segment-major cells alone are the quantity
// behind the paper's "0.2–0.3 megabyte" claims; CellBytes reports them
// separately.
func (m *Map) SizeBytes() int {
	return 4*(len(m.segMajor)+len(m.itemMajor)) + 8*(len(m.totals)+len(m.suffix))
}

// CellBytes reports the size of the segment support matrix proper
// (4 bytes per cell, one copy), the paper's accounting unit.
func (m *Map) CellBytes() int { return 4 * m.numItems * m.numSegs }

// SegmentRow returns segment i's support row, a view into the flat
// segment-major store. The returned slice is shared; callers must not
// mutate it.
func (m *Map) SegmentRow(i int) []uint32 {
	lo, hi := i*m.numItems, (i+1)*m.numItems
	return m.segMajor[lo:hi:hi]
}

// Column returns item x's per-segment support column, a view into the
// flat item-major store. The returned slice is shared; callers must not
// mutate it.
func (m *Map) Column(x dataset.Item) []uint32 {
	lo, hi := int(x)*m.numSegs, (int(x)+1)*m.numSegs
	return m.itemMajor[lo:hi:hi]
}

// Merged returns a single-segment Map carrying the same global supports —
// the degenerate M_1 whose bound is the naive bound.
func (m *Map) Merged() *Map {
	row := make([]uint32, m.numItems)
	for it, t := range m.totals {
		row[it] = uint32(t)
	}
	return newMapFromFlat(1, m.numItems, row)
}

// Pruner applies an OSSM to candidate filtering and keeps the counters
// every experiment in the paper reports. A nil Pruner or a Pruner with a
// nil Map admits everything (the "without OSSM" baseline).
type Pruner struct {
	Map      *Map
	MinCount int64 // absolute support threshold (count, not fraction)

	// Counters are updated atomically: miners with Workers > 1 call
	// Allow from several goroutines at once. Read them only after mining
	// returns.
	Checked int64 // candidates tested
	Pruned  int64 // candidates rejected by the bound
	// EarlyExit counts decision-mode bound calls that admitted their
	// candidate before scanning every segment (the accumulated partial
	// sum reached MinCount); Abandoned counts calls that rejected theirs
	// early because the suffix remainders proved MinCount unreachable.
	// Checked − EarlyExit − Abandoned bound calls paid for a full scan.
	EarlyExit int64
	Abandoned int64
	// Lanes breaks the decisions down by the kernel dispatch lane that
	// produced them (see KernelLane); Σ Lanes[i].Decided == Checked.
	Lanes [NumKernelLanes]LaneStats
}

// Allow reports whether candidate x survives the OSSM bound, i.e. whether
// ubsup(x) ≥ MinCount. Candidates that fail can be discarded without
// counting; soundness follows from ubsup ≥ sup.
func (p *Pruner) Allow(x dataset.Itemset) bool {
	if p == nil || p.Map == nil {
		return true
	}
	atomic.AddInt64(&p.Checked, 1)
	ok, outcome, lane := p.Map.boundAtLeast(x, p.MinCount)
	p.noteOutcome(outcome, lane)
	if !ok {
		atomic.AddInt64(&p.Pruned, 1)
		return false
	}
	return true
}

// AllowPair is Allow for 2-itemsets.
func (p *Pruner) AllowPair(a, b dataset.Item) bool {
	if p == nil || p.Map == nil {
		return true
	}
	atomic.AddInt64(&p.Checked, 1)
	ok, outcome, lane := p.Map.boundPairAtLeast(a, b, p.MinCount)
	p.noteOutcome(outcome, lane)
	if !ok {
		atomic.AddInt64(&p.Pruned, 1)
		return false
	}
	return true
}

func (p *Pruner) noteOutcome(o boundOutcome, lane KernelLane) {
	atomic.AddInt64(&p.Lanes[lane].Decided, 1)
	switch o {
	case boundEarlyExit:
		atomic.AddInt64(&p.EarlyExit, 1)
		atomic.AddInt64(&p.Lanes[lane].EarlyExit, 1)
	case boundAbandoned:
		atomic.AddInt64(&p.Abandoned, 1)
		atomic.AddInt64(&p.Lanes[lane].Abandoned, 1)
	}
}

// Reset zeroes the counters.
func (p *Pruner) Reset() {
	if p != nil {
		p.Checked, p.Pruned, p.EarlyExit, p.Abandoned = 0, 0, 0, 0
		p.Lanes = [NumKernelLanes]LaneStats{}
	}
}
