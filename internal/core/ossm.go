// Package core implements the paper's primary contribution: the Optimized
// Segment Support Map (OSSM), the segment minimization analysis
// (Section 4), and the constrained segmentation heuristics (Section 5) —
// Greedy, RC, Random, the Random-RC / Random-Greedy hybrids, the bubble
// list optimization, and the recommended recipe (Figure 7).
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// ErrNoSegments is returned when constructing a Map from zero segments.
var ErrNoSegments = errors.New("core: OSSM needs at least one segment")

// ErrRaggedSegments is returned when segment support rows disagree on the
// item-domain size.
var ErrRaggedSegments = errors.New("core: segment support rows have differing lengths")

// Map is the optimized segment support map M_n: for each of n segments it
// stores the support of every singleton item within that segment
// (Section 3). The structure is query-independent — it is built once at
// "compile time" and serves any support threshold afterwards.
type Map struct {
	numItems  int
	segCounts [][]uint32 // [segment][item] singleton support
	totals    []int64    // per-item global support (sum over segments)
}

// NewMap builds a Map from per-segment singleton supports. The rows are
// retained (not copied); callers must not mutate them afterwards.
func NewMap(segCounts [][]uint32) (*Map, error) {
	if len(segCounts) == 0 {
		return nil, ErrNoSegments
	}
	k := len(segCounts[0])
	totals := make([]int64, k)
	for i, row := range segCounts {
		if len(row) != k {
			return nil, fmt.Errorf("%w: row 0 has %d items, row %d has %d", ErrRaggedSegments, k, i, len(row))
		}
		for it, c := range row {
			totals[it] += int64(c)
		}
	}
	return &Map{numItems: k, segCounts: segCounts, totals: totals}, nil
}

// BuildFromPages constructs a Map directly from a dataset and a page
// assignment: assign[s] lists the pages composing segment s. It is the
// bridge between a segmentation result and a queryable OSSM.
func BuildFromPages(d *dataset.Dataset, pages []dataset.Page, assign [][]int) (*Map, error) {
	if len(assign) == 0 {
		return nil, ErrNoSegments
	}
	segCounts := make([][]uint32, len(assign))
	for s, pageIdxs := range assign {
		row := make([]uint32, d.NumItems())
		for _, pi := range pageIdxs {
			if pi < 0 || pi >= len(pages) {
				return nil, fmt.Errorf("core: segment %d references page %d of %d", s, pi, len(pages))
			}
			p := pages[pi]
			for it, c := range d.ItemCounts(p.Lo, p.Hi) {
				row[it] += c
			}
		}
		segCounts[s] = row
	}
	return NewMap(segCounts)
}

// NumSegments returns n, the number of segments.
func (m *Map) NumSegments() int { return len(m.segCounts) }

// NumItems returns k, the size of the item domain.
func (m *Map) NumItems() int { return m.numItems }

// SegmentSupport returns sup_i({x}), the support of item x within
// segment i.
func (m *Map) SegmentSupport(i int, x dataset.Item) uint32 {
	return m.segCounts[i][x]
}

// ItemSupport returns the exact global support of the singleton {x}.
// For singletons the OSSM is lossless by construction.
func (m *Map) ItemSupport(x dataset.Item) int64 { return m.totals[x] }

// Totals returns the per-item global supports. The returned slice is
// shared; callers must not mutate it.
func (m *Map) Totals() []int64 { return m.totals }

// UpperBound returns ubsup(X, M_n), equation (1):
//
//	Σ_{i=1..n} min_{x ∈ X} sup_i({x})
//
// The empty itemset is supported by every transaction, a count the Map
// does not record, so UpperBound panics on an empty itemset.
func (m *Map) UpperBound(x dataset.Itemset) int64 {
	if len(x) == 0 {
		panic("core: UpperBound of the empty itemset is not defined by the OSSM")
	}
	if len(x) == 1 {
		return m.totals[x[0]]
	}
	var total int64
	for _, row := range m.segCounts {
		minC := row[x[0]]
		for _, it := range x[1:] {
			if c := row[it]; c < minC {
				minC = c
			}
		}
		total += int64(minC)
	}
	return total
}

// UpperBoundPair is UpperBound for a 2-itemset {a, b}, the hot path of
// candidate-2 pruning.
func (m *Map) UpperBoundPair(a, b dataset.Item) int64 {
	var total int64
	for _, row := range m.segCounts {
		ca, cb := row[a], row[b]
		if cb < ca {
			ca = cb
		}
		total += int64(ca)
	}
	return total
}

// NaiveUpperBound is the bound available *without* an OSSM: the minimum of
// the items' global supports (the "last column" bound of Example 1). It
// equals UpperBound on a single-segment map and is never tighter than a
// multi-segment bound.
func (m *Map) NaiveUpperBound(x dataset.Itemset) int64 {
	if len(x) == 0 {
		panic("core: NaiveUpperBound of the empty itemset is not defined")
	}
	minC := m.totals[x[0]]
	for _, it := range x[1:] {
		if c := m.totals[it]; c < minC {
			minC = c
		}
	}
	return minC
}

// SizeBytes reports the memory footprint of the segment support matrix
// (4 bytes per cell), the quantity behind the paper's "0.2–0.3 megabyte"
// claims.
func (m *Map) SizeBytes() int { return 4 * m.numItems * m.NumSegments() }

// SegmentRow returns segment i's support row. The returned slice is
// shared; callers must not mutate it.
func (m *Map) SegmentRow(i int) []uint32 { return m.segCounts[i] }

// Merged returns a single-segment Map carrying the same global supports —
// the degenerate M_1 whose bound is the naive bound.
func (m *Map) Merged() *Map {
	row := make([]uint32, m.numItems)
	for it, t := range m.totals {
		row[it] = uint32(t)
	}
	mm, err := NewMap([][]uint32{row})
	if err != nil {
		panic(err) // cannot happen: one well-formed row
	}
	return mm
}

// Pruner applies an OSSM to candidate filtering and keeps the counters
// every experiment in the paper reports. A nil Pruner or a Pruner with a
// nil Map admits everything (the "without OSSM" baseline).
type Pruner struct {
	Map      *Map
	MinCount int64 // absolute support threshold (count, not fraction)

	// Checked/Pruned are updated atomically: miners with Workers > 1 call
	// Allow from several goroutines at once. Read them only after mining
	// returns.
	Checked int64 // candidates tested
	Pruned  int64 // candidates rejected by the bound
}

// Allow reports whether candidate x survives the OSSM bound, i.e. whether
// ubsup(x) ≥ MinCount. Candidates that fail can be discarded without
// counting; soundness follows from ubsup ≥ sup.
func (p *Pruner) Allow(x dataset.Itemset) bool {
	if p == nil || p.Map == nil {
		return true
	}
	atomic.AddInt64(&p.Checked, 1)
	if p.Map.UpperBound(x) < p.MinCount {
		atomic.AddInt64(&p.Pruned, 1)
		return false
	}
	return true
}

// AllowPair is Allow for 2-itemsets.
func (p *Pruner) AllowPair(a, b dataset.Item) bool {
	if p == nil || p.Map == nil {
		return true
	}
	atomic.AddInt64(&p.Checked, 1)
	if p.Map.UpperBoundPair(a, b) < p.MinCount {
		atomic.AddInt64(&p.Pruned, 1)
		return false
	}
	return true
}

// Reset zeroes the counters.
func (p *Pruner) Reset() {
	if p != nil {
		p.Checked, p.Pruned = 0, 0
	}
}
