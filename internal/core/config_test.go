package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestConfigurationOf(t *testing.T) {
	cases := []struct {
		counts []uint32
		want   Configuration
	}{
		{[]uint32{4, 1}, Configuration{0, 1}},             // a ≥ b
		{[]uint32{0, 2}, Configuration{1, 0}},             // b ≥ a
		{[]uint32{3, 3}, Configuration{0, 1}},             // tie → canonical order
		{[]uint32{1, 5, 5, 2}, Configuration{1, 2, 3, 0}}, // ties inside
	}
	for _, c := range cases {
		got := ConfigurationOf(c.counts)
		if !got.Equal(c.want) {
			t.Errorf("ConfigurationOf(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
}

func TestConfigurationKeyInjective(t *testing.T) {
	a := ConfigurationOf([]uint32{4, 1, 2})
	b := ConfigurationOf([]uint32{1, 4, 2})
	if a.Key() == b.Key() {
		t.Error("distinct configurations share a key")
	}
	c := ConfigurationOf([]uint32{8, 2, 4}) // same order as a
	if a.Key() != c.Key() {
		t.Error("equal configurations have different keys")
	}
}

func TestSameConfiguration(t *testing.T) {
	if !SameConfiguration([]uint32{4, 1}, []uint32{9, 3}) {
		t.Error("both a≥b, want same configuration")
	}
	if SameConfiguration([]uint32{4, 1}, []uint32{1, 4}) {
		t.Error("opposite orders reported same")
	}
}

// TestExample2 reproduces Example 2 of the paper end to end: the
// configuration-respecting 2-segment OSSM is exact for {a,b}, while
// moving transaction t4 across segments loses exactness.
func TestExample2(t *testing.T) {
	a, b := dataset.Item(0), dataset.Item(1)
	// Segment T1 = {t1..t4} (all containing a): counts a=4, b=1.
	// Segment T2 = {t5,t6} (b but not a):        counts a=0, b=2.
	m2, err := NewMap([][]uint32{{4, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.UpperBound(dataset.NewItemset(a, b)); got != 1 {
		t.Errorf("ubsup({a,b}) = %d, want exact support 1", got)
	}
	// Slightly different segmentation: t4 moved from T1 to T2.
	m2x, err := NewMap([][]uint32{{3, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m2x.UpperBound(dataset.NewItemset(a, b)); got != 2 {
		t.Errorf("ubsup({a,b}) after moving t4 = %d, want 2 (no longer exact)", got)
	}
}

// TestLemma1 checks that merging two segments of the same configuration
// neither changes the configuration nor loosens any pairwise bound.
func TestLemma1(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(5)
		// Draw one configuration and two rows consistent with it.
		base := make([]uint32, k)
		for i := range base {
			base[i] = uint32(r.Intn(50))
		}
		cfg := ConfigurationOf(base)
		mk := func() []uint32 {
			// Random row with the same rank order: strictly descending
			// values along cfg (ties avoided to keep the config stable).
			row := make([]uint32, k)
			v := uint32(1000)
			for _, it := range cfg {
				row[it] = v
				v -= uint32(1 + r.Intn(10))
			}
			return row
		}
		s1, s2 := mk(), mk()
		if !ConfigurationOf(s1).Equal(ConfigurationOf(s2)) {
			return false // construction bug
		}
		merged := MergeRows(s1, s2)
		if !ConfigurationOf(merged).Equal(ConfigurationOf(s1)) {
			return false // Lemma 1: merged segment keeps the configuration
		}
		// And for every pair {x,y}: bound from the two segments equals
		// bound from the merged one.
		for x := 0; x < k; x++ {
			for y := x + 1; y < k; y++ {
				sep := minU(s1[x], s1[y]) + minU(s2[x], s2[y])
				if minU(merged[x], merged[y]) != sep {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func minU(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func TestMergeSameConfigurationsPreservesBounds(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		m := 1 + r.Intn(10)
		rows := make([][]uint32, m)
		for i := range rows {
			rows[i] = make([]uint32, k)
			for j := range rows[i] {
				rows[i][j] = uint32(r.Intn(4)) // small values force config collisions
			}
		}
		merged, groups := MergeSameConfigurations(rows)
		// Groups partition the inputs.
		seen := make([]bool, m)
		total := 0
		for _, g := range groups {
			for _, i := range g {
				if seen[i] {
					return false
				}
				seen[i] = true
				total++
			}
		}
		if total != m || len(merged) != len(groups) {
			return false
		}
		if len(merged) != MinSegments(rows) {
			return false
		}
		before, err := NewMap(rows)
		if err != nil {
			return false
		}
		after, err := NewMap(merged)
		if err != nil {
			return false
		}
		// Bounds for every pair are unchanged (Lemma 1, applied
		// repeatedly).
		for x := 0; x < k; x++ {
			for y := x + 1; y < k; y++ {
				if before.UpperBoundPair(dataset.Item(x), dataset.Item(y)) !=
					after.UpperBoundPair(dataset.Item(x), dataset.Item(y)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinSegmentsBounded(t *testing.T) {
	// MinSegments counts distinct configurations, which are permutations:
	// at most min(m, k!). (The paper's Theorem 1 states min(m, 2^k − k),
	// which distinct strict orders can exceed for k ≥ 3 — see the
	// TheoreticalMinSegments doc comment and DESIGN.md.)
	factorial := func(k int) int {
		f := 1
		for i := 2; i <= k; i++ {
			f *= i
		}
		return f
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		m := 1 + r.Intn(12)
		rows := make([][]uint32, m)
		for i := range rows {
			rows[i] = make([]uint32, k)
			for j := range rows[i] {
				rows[i][j] = uint32(r.Intn(6))
			}
		}
		nmin := MinSegments(rows)
		cap := m
		if f := factorial(k); f < cap {
			cap = f
		}
		return nmin >= 1 && nmin <= cap
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTheoreticalMinSegments(t *testing.T) {
	cases := []struct{ k, m, want int }{
		{2, 10, 2},   // 2^2 − 2 = 2
		{3, 100, 5},  // 2^3 − 3 = 5
		{4, 100, 12}, // 2^4 − 4 = 12
		{10, 5, 5},   // m smaller than 2^10 − 10
		{10, 100000, 1014},
		{100, 7, 7}, // k > 62 ⇒ m
	}
	for _, c := range cases {
		if got := TheoreticalMinSegments(c.k, c.m); got != c.want {
			t.Errorf("TheoreticalMinSegments(%d, %d) = %d, want %d", c.k, c.m, got, c.want)
		}
	}
}

func TestNumDistinctConfigurations(t *testing.T) {
	cases := []struct{ k, want int }{
		{2, 2}, {3, 5}, {4, 12}, {5, 27},
	}
	for _, c := range cases {
		if got := NumDistinctConfigurations(c.k); got != c.want {
			t.Errorf("NumDistinctConfigurations(%d) = %d, want %d", c.k, got, c.want)
		}
	}
	if got := NumDistinctConfigurations(63); got != math.MaxInt {
		t.Errorf("NumDistinctConfigurations(63) = %d, want MaxInt", got)
	}
}

// TestMinSegmentsExactness verifies the substance of Theorem 1 /
// Corollary 1 on real data: building the OSSM from the
// configuration-merged pages gives exactly the same bound as the
// unmerged page-level OSSM, for every itemset (exhaustive over small k).
func TestMinSegmentsExactness(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		d := randomDataset(r)
		mPages := 1 + r.Intn(d.NumTx())
		pages := dataset.PaginateN(d, mPages)
		rows := dataset.PageCounts(d, pages)
		merged, _ := MergeSameConfigurations(rows)
		full, err := NewMap(rows)
		if err != nil {
			t.Fatal(err)
		}
		min, err := NewMap(merged)
		if err != nil {
			t.Fatal(err)
		}
		k := d.NumItems()
		// Every non-empty subset of items (k ≤ 7 here).
		for mask := 1; mask < 1<<k; mask++ {
			var x dataset.Itemset
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					x = append(x, dataset.Item(i))
				}
			}
			if full.UpperBound(x) != min.UpperBound(x) {
				t.Fatalf("bound changed after config merge for %v: %d vs %d",
					x, full.UpperBound(x), min.UpperBound(x))
			}
		}
	}
}
