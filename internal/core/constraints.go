package core

import "github.com/ossm-mining/ossm/internal/dataset"

// Constraint composition. The paper's introduction lists constrained
// frequent sets among the pattern classes the OSSM accelerates; any
// anti-monotone constraint (one that, once violated, stays violated for
// every superset) can be pushed into candidate generation exactly like
// the OSSM bound — as a Filter. And combines several such filters with
// the OSSM pruner into one.

// FilterFunc adapts an anti-monotone predicate over itemsets to the
// Filter interface.
type FilterFunc func(x dataset.Itemset) bool

// Allow applies the predicate.
func (f FilterFunc) Allow(x dataset.Itemset) bool { return f(x) }

// AllowPair applies the predicate to the 2-itemset {a, b}.
func (f FilterFunc) AllowPair(a, b dataset.Item) bool {
	if a > b {
		a, b = b, a
	}
	return f(dataset.Itemset{a, b})
}

// andFilter admits a candidate only if every member filter does.
type andFilter []Filter

func (fs andFilter) Allow(x dataset.Itemset) bool {
	for _, f := range fs {
		if !f.Allow(x) {
			return false
		}
	}
	return true
}

func (fs andFilter) AllowPair(a, b dataset.Item) bool {
	for _, f := range fs {
		if !f.AllowPair(a, b) {
			return false
		}
	}
	return true
}

// And combines filters conjunctively; nil members are dropped. And()
// and And(nil, nil) return nil (admit everything).
func And(fs ...Filter) Filter {
	var kept andFilter
	for _, f := range fs {
		if f != nil {
			kept = append(kept, f)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// ExcludeItems builds the anti-monotone item constraint "contains none
// of the banned items".
func ExcludeItems(banned ...dataset.Item) Filter {
	set := make(map[dataset.Item]bool, len(banned))
	for _, it := range banned {
		set[it] = true
	}
	return FilterFunc(func(x dataset.Itemset) bool {
		for _, it := range x {
			if set[it] {
				return false
			}
		}
		return true
	})
}

// MaxItems builds the anti-monotone length constraint |X| ≤ n.
func MaxItems(n int) Filter {
	return FilterFunc(func(x dataset.Itemset) bool { return len(x) <= n })
}
