package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// ExtendedMap is the generalization sketched in footnote 3 of the paper:
// in addition to singleton segment supports, it stores the *exact*
// per-segment supports of 2-itemsets over a tracked subset of items
// (typically the bubble list — the items whose candidates dominate
// counting cost). Consequences:
//
//   - for a tracked pair, the "bound" is the exact support, so the pair
//     never needs a counting pass at all;
//   - for larger itemsets, every tracked pair inside X contributes a
//     per-segment cap that is at most the singleton minimum, so the
//     bound is never looser — and usually tighter — than equation (1).
//
// Space grows by 4·n·|tracked|²/2 bytes; an ExtendedMap over a 100-item
// bubble at 40 segments adds ~0.8 MB.
type ExtendedMap struct {
	*Map
	tracked []dataset.Item       // sorted
	trIdx   map[dataset.Item]int // item → index into tracked
	pair    [][]uint32           // [segment][pairIndex] supports
}

// pairIndex maps tracked-item indexes (i < j) to a triangular offset.
func pairIndexOf(i, j, n int) int {
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// BuildExtended counts, in one pass over the dataset, the per-segment
// supports of every pair of tracked items, for the segmentation given by
// pages and assign (as produced by Segment). tracked is deduplicated and
// sorted.
func BuildExtended(d *dataset.Dataset, pages []dataset.Page, assign [][]int, tracked []dataset.Item) (*ExtendedMap, error) {
	base, err := BuildFromPages(d, pages, assign)
	if err != nil {
		return nil, err
	}
	tr := append([]dataset.Item(nil), tracked...)
	sort.Slice(tr, func(i, j int) bool { return tr[i] < tr[j] })
	uniq := tr[:0]
	for i, it := range tr {
		if int(it) >= d.NumItems() {
			return nil, fmt.Errorf("core: tracked item %d outside domain of %d items", it, d.NumItems())
		}
		if i == 0 || it != uniq[len(uniq)-1] {
			uniq = append(uniq, it)
		}
	}
	tr = uniq
	n := len(tr)
	idx := make(map[dataset.Item]int, n)
	for i, it := range tr {
		idx[it] = i
	}
	nPairs := n * (n - 1) / 2
	pair := make([][]uint32, len(assign))
	scratch := make([]int, 0, 32)
	for s, pageIdxs := range assign {
		row := make([]uint32, nPairs)
		for _, pi := range pageIdxs {
			p := pages[pi]
			for t := p.Lo; t < p.Hi; t++ {
				tx := d.Tx(t)
				scratch = scratch[:0]
				for _, it := range tx {
					if ti, ok := idx[it]; ok {
						scratch = append(scratch, ti)
					}
				}
				for a := 0; a < len(scratch); a++ {
					for b := a + 1; b < len(scratch); b++ {
						row[pairIndexOf(scratch[a], scratch[b], n)]++
					}
				}
			}
		}
		pair[s] = row
	}
	return &ExtendedMap{Map: base, tracked: tr, trIdx: idx, pair: pair}, nil
}

// Tracked returns the tracked item list (shared; do not mutate).
func (e *ExtendedMap) Tracked() []dataset.Item { return e.tracked }

// SizeBytes includes the pair matrix on top of the base map: the 4-byte
// pair cells plus the per-segment row slice headers that the ragged
// [][]uint32 representation carries.
func (e *ExtendedMap) SizeBytes() int {
	n := len(e.tracked)
	const sliceHeader = 24
	return e.Map.SizeBytes() + e.NumSegments()*(4*n*(n-1)/2+sliceHeader)
}

// PairSupport returns the exact support of a tracked pair and true, or
// 0 and false if either item is untracked.
func (e *ExtendedMap) PairSupport(a, b dataset.Item) (int64, bool) {
	ia, ok := e.trIdx[a]
	if !ok {
		return 0, false
	}
	ib, ok := e.trIdx[b]
	if !ok {
		return 0, false
	}
	if ia > ib {
		ia, ib = ib, ia
	} else if ia == ib {
		return e.ItemSupport(a), true
	}
	pi := pairIndexOf(ia, ib, len(e.tracked))
	var total int64
	for _, row := range e.pair {
		total += int64(row[pi])
	}
	return total, true
}

// UpperBound tightens the base bound using tracked-pair supports: within
// each segment, the cap is the minimum over member singletons and every
// tracked member pair.
func (e *ExtendedMap) UpperBound(x dataset.Itemset) int64 {
	if len(x) == 0 {
		panic("core: UpperBound of the empty itemset is not defined by the OSSM")
	}
	if len(x) == 1 {
		return e.ItemSupport(x[0])
	}
	// Tracked indexes of the members (if ≥ 2, pairs apply).
	tis := make([]int, 0, len(x))
	for _, it := range x {
		if ti, ok := e.trIdx[it]; ok {
			tis = append(tis, ti)
		}
	}
	n := len(e.tracked)
	var total int64
	for s := 0; s < e.NumSegments(); s++ {
		row := e.Map.SegmentRow(s)
		cap32 := row[x[0]]
		for _, it := range x[1:] {
			if c := row[it]; c < cap32 {
				cap32 = c
			}
		}
		if len(tis) >= 2 {
			prow := e.pair[s]
			for a := 0; a < len(tis); a++ {
				for b := a + 1; b < len(tis); b++ {
					i, j := tis[a], tis[b]
					if i > j {
						i, j = j, i
					}
					if c := prow[pairIndexOf(i, j, n)]; c < cap32 {
						cap32 = c
					}
				}
			}
		}
		total += int64(cap32)
	}
	return total
}

// Pruner derives a candidate filter backed by the extended bound.
func (e *ExtendedMap) Pruner(minCount int64) *ExtendedPruner {
	return &ExtendedPruner{Ext: e, MinCount: minCount}
}

// ExtendedPruner is the ExtendedMap counterpart of Pruner, with an extra
// counter for candidates resolved *exactly* (tracked pairs, which need
// no counting pass regardless of the bound's verdict).
type ExtendedPruner struct {
	Ext      *ExtendedMap
	MinCount int64

	// Counters are updated atomically (miners with Workers > 1 call Allow
	// concurrently); read them only after mining returns.
	Checked int64
	Pruned  int64
	Exact   int64 // tracked pairs answered without counting
}

// Allow reports whether candidate x survives the extended bound.
func (p *ExtendedPruner) Allow(x dataset.Itemset) bool {
	if p == nil || p.Ext == nil {
		return true
	}
	atomic.AddInt64(&p.Checked, 1)
	if len(x) == 2 {
		if sup, ok := p.Ext.PairSupport(x[0], x[1]); ok {
			atomic.AddInt64(&p.Exact, 1)
			if sup < p.MinCount {
				atomic.AddInt64(&p.Pruned, 1)
				return false
			}
			return true
		}
	}
	if p.Ext.UpperBound(x) < p.MinCount {
		atomic.AddInt64(&p.Pruned, 1)
		return false
	}
	return true
}
