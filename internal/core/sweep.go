package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// SweepPoint is one snapshot of a segmentation sweep.
type SweepPoint struct {
	Segments int
	Map      *Map
	// Elapsed is the cumulative segmentation time from the start of the
	// sweep until this snapshot was reached.
	Elapsed time.Duration
}

// SegmentSweep runs the configured algorithm once and snapshots the OSSM
// at every requested segment count. It is equivalent to calling Segment
// once per target (the merge sequences of RC and Greedy are
// prefix-nested), but shares the merging work — the natural way to
// produce the x-axes of the paper's Figure 4.
//
// Targets are deduplicated and served in descending order; targets above
// the page count snapshot the initial state. opts.TargetSegments is
// ignored (the smallest target is used).
func SegmentSweep(rows [][]uint32, opts Options, targets []int) ([]SweepPoint, error) {
	if len(rows) == 0 {
		return nil, ErrNoSegments
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: SegmentSweep needs at least one target")
	}
	k := len(rows[0])
	for i, row := range rows {
		if len(row) != k {
			return nil, fmt.Errorf("%w: row 0 has %d items, row %d has %d", ErrRaggedSegments, k, i, len(row))
		}
	}
	want := map[int]bool{}
	minTarget := targets[0]
	for _, t := range targets {
		if t < 1 {
			return nil, fmt.Errorf("core: sweep target must be ≥ 1, got %d", t)
		}
		tt := t
		if tt > len(rows) {
			tt = len(rows)
		}
		want[tt] = true
		if tt < minTarget {
			minTarget = tt
		}
	}
	items := opts.Bubble
	if items == nil {
		items = AllItems(k)
	}
	r := rand.New(rand.NewSource(opts.Seed))

	var points []SweepPoint
	start := time.Now()
	segs := makeSegments(rows)
	snapshot := func(live int) {
		if want[live] {
			points = append(points, SweepPoint{
				Segments: live,
				Map:      snapshotMap(segs),
				Elapsed:  time.Since(start),
			})
			delete(want, live)
		}
	}

	switch opts.Algorithm {
	case AlgRandom:
		// The contiguous partition is not incremental across targets;
		// each is O(m), so build each directly.
		var ts []int
		for t := range want {
			ts = append(ts, t)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(ts)))
		for _, t := range ts {
			segsT := makeSegments(rows)
			randomMerge(r, segsT, t)
			points = append(points, SweepPoint{
				Segments: t,
				Map:      snapshotMap(segsT),
				Elapsed:  time.Since(start),
			})
		}
		return points, nil
	case AlgRC, AlgRandomRC:
		if opts.Algorithm == AlgRandomRC {
			if err := checkMid(opts, minTarget); err != nil {
				return nil, err
			}
			randomMerge(r, segs, opts.MidSegments)
		}
		snapshot(countAlive(segs))
		rcMergeHook(r, segs, minTarget, items, opts.Workers, snapshot)
	case AlgGreedy, AlgRandomGreedy:
		if opts.Algorithm == AlgRandomGreedy {
			if err := checkMid(opts, minTarget); err != nil {
				return nil, err
			}
			randomMerge(r, segs, opts.MidSegments)
		}
		snapshot(countAlive(segs))
		greedyMergeHook(segs, minTarget, items, opts.Workers, snapshot)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", opts.Algorithm)
	}
	// Targets at or above the starting segment count that were never hit
	// mid-merge snapshot the initial state.
	if len(want) > 0 {
		segs0 := makeSegments(rows)
		if opts.Algorithm == AlgRandomRC || opts.Algorithm == AlgRandomGreedy {
			randomMerge(rand.New(rand.NewSource(opts.Seed)), segs0, opts.MidSegments)
		}
		for t := range want {
			if t >= countAlive(segs0) {
				points = append(points, SweepPoint{
					Segments: t,
					Map:      snapshotMap(segs0),
					Elapsed:  time.Since(start),
				})
				delete(want, t)
			}
		}
	}
	if len(want) > 0 {
		return nil, fmt.Errorf("core: sweep targets %v were not reached", keys(want))
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Segments > points[j].Segments })
	return points, nil
}

func checkMid(opts Options, minTarget int) error {
	if opts.MidSegments < minTarget {
		return fmt.Errorf("core: MidSegments (%d) must be ≥ the smallest sweep target (%d) for %s",
			opts.MidSegments, minTarget, opts.Algorithm)
	}
	return nil
}

// snapshotMap copies the live segments into a standalone Map.
func snapshotMap(segs []*segment) *Map {
	var rows [][]uint32
	for _, s := range segs {
		if s.alive {
			cp := make([]uint32, len(s.counts))
			copy(cp, s.counts)
			rows = append(rows, cp)
		}
	}
	m, err := NewMap(rows)
	if err != nil {
		panic(err) // cannot happen: at least one live segment always remains
	}
	return m
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
