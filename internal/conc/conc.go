// Package conc holds the shared concurrency helpers used by the
// segmentation algorithms and by every miner's counting passes. All
// helpers are deterministic in their observable results: parallelism
// changes wall-clock time, never answers.
//
// Worker-knob semantics (the single contract for every Workers option in
// this repository): 0, 1 and negative values mean serial execution —
// parallelism is strictly opt-in — and larger values are capped at
// runtime.NumCPU().
package conc

import (
	"runtime"
	"sync"
)

// Resolve maps a Workers knob to a concrete pool size: 0, 1 or negative
// mean serial (1); larger values are capped at NumCPU.
func Resolve(w int) int {
	if w <= 1 {
		return 1
	}
	if n := runtime.NumCPU(); w > n {
		return n
	}
	return w
}

// For runs f(i) for i in [0, n) across workers goroutines, in contiguous
// chunks. It falls back to a plain serial loop when workers <= 1 or the
// problem is too small to amortize goroutine startup (n < 2·workers).
func For(workers, n int, f func(i int)) {
	if workers <= 1 || n < 2*workers {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Scatter runs f(i) for i in [0, n) on one goroutine per task — n wide,
// regardless of NumCPU — and waits for all of them. It is the fan-out
// shape of scatter-gather serving: each task may spend its time waiting
// (a remote shard's round trip, a hedge timer) rather than computing, so
// capping the width at NumCPU would serialize the waiting. For CPU-bound
// loops use For or ForChunks, which cap at the worker knob.
func Scatter(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// ForChunks partitions [0, n) into at most workers contiguous chunks and
// runs f(w, lo, hi) concurrently, one call per chunk, where w is a dense
// chunk index in [0, workers). Callers that need per-worker state
// allocate a slice of length workers, index it by w inside f, and merge
// slots in ascending w afterwards — ascending-w merge order makes the
// combined result independent of goroutine scheduling. The serial
// fallback (workers <= 1 or n < 2·workers) is a single inline f(0, 0, n).
func ForChunks(workers, n int, f func(w, lo, hi int)) {
	if n == 0 {
		return
	}
	if workers <= 1 || n < 2*workers {
		f(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
