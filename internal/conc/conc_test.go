package conc

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	cases := []struct{ in, want int }{
		{-5, 1}, {0, 1}, {1, 1}, {2, minI(2, runtime.NumCPU())},
		{1 << 20, runtime.NumCPU()},
	}
	for _, c := range cases {
		if got := Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestForCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, n := range []int{0, 1, 7, 100} {
			hits := make([]int32, n)
			For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Errorf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunksCoversAllDisjointly(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		for _, n := range []int{0, 1, 7, 100} {
			hits := make([]int32, n)
			chunkOf := make([]int32, n)
			For(1, n, func(i int) { chunkOf[i] = -1 })
			ForChunks(workers, n, func(w, lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
				}
				if w < 0 || w >= maxI(workers, 1) {
					t.Errorf("workers=%d n=%d: chunk index %d out of range", workers, n, w)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
					atomic.StoreInt32(&chunkOf[i], int32(w))
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Errorf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
			// Chunks are contiguous: the chunk index is non-decreasing.
			for i := 1; i < n; i++ {
				if chunkOf[i] < chunkOf[i-1] {
					t.Errorf("workers=%d n=%d: chunk order broken at %d", workers, n, i)
				}
			}
		}
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
