package obs

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"
)

// SpanRecord is the frozen export of one finished span — what the ring
// buffer stores and GET /v1/traces serves.
type SpanRecord struct {
	TraceID  string         `json:"trace_id"`
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_id,omitempty"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"duration_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// Span is one in-flight timed operation. Create spans with
// Tracer.Start/StartAt, decorate them with SetAttr, and finish them with
// End, which freezes the record into the tracer's ring. All methods are
// nil-safe: a nil *Span (tracing disabled) ignores every call.
type Span struct {
	tr *Tracer

	mu    sync.Mutex
	rec   SpanRecord
	attrs map[string]any
	ended bool
}

// TraceID returns the span's trace identifier ("" for a nil span) — the
// correlation key access logs carry next to the request ID.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.TraceID
}

// SpanID returns the span's own identifier ("" for a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.rec.SpanID
}

// SetAttr attaches a key/value attribute to the span. Calls after End are
// dropped.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
}

// End finishes the span and records it into the tracer's ring. Only the
// first End takes effect.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt is End with an explicit end time — paired with StartAt it
// freezes fully synthesized spans whose boundaries were measured
// elsewhere (the WAL reports write/fsync/apply phase durations after
// the fact; the ingest handler reconstructs exact child spans from
// them).
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.Duration = end.Sub(s.rec.Start)
	rec := s.rec
	rec.Attrs = s.attrs
	s.mu.Unlock()
	s.tr.record(rec)
}

// TraceParentHeader is the HTTP header carrying the cross-process trace
// context, in the W3C trace-context shape
// `00-<trace_id>-<span_id>-01`.
const TraceParentHeader = "Traceparent"

// TraceParent renders the span's context as a traceparent header value,
// or "" for a nil span (tracing off ⇒ nothing to propagate).
func (s *Span) TraceParent() string {
	if s == nil {
		return ""
	}
	return "00-" + s.rec.TraceID + "-" + s.rec.SpanID + "-01"
}

// ParseTraceParent splits a traceparent header value into its trace and
// span IDs. It accepts any hex ID lengths (this stack mints 16-char IDs,
// W3C mints 32/16) but rejects malformed values: wrong field count,
// non-hex IDs, or an unknown version prefix.
func ParseTraceParent(v string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return "", "", false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

func isHex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ContextWithRemoteParent returns ctx carrying a synthetic, already-ended
// span with the given IDs, so spans started under it parent correctly
// beneath a caller in another process. The synthetic span records
// nothing locally — it exists only to seed TraceID/ParentID.
func ContextWithRemoteParent(ctx context.Context, traceID, spanID string) context.Context {
	return ContextWithSpan(ctx, &Span{
		rec:   SpanRecord{TraceID: traceID, SpanID: spanID},
		ended: true,
	})
}

type spanKey struct{}

// ContextWithSpan returns ctx carrying span as the current parent.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, span)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Detach returns ctx without a current span, so bulk fan-out paths (a
// 4096-itemset batch query) can opt their per-item work out of span
// creation while keeping cancellation and request-ID propagation.
func Detach(ctx context.Context) context.Context {
	if SpanFromContext(ctx) == nil {
		return ctx
	}
	return ContextWithSpan(ctx, nil)
}

// Tracer hands out spans and keeps the most recent finished ones in a
// bounded ring. A nil *Tracer is the documented "tracing off" state:
// Start returns a nil span and the context unchanged.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	buf     []SpanRecord // ring storage, valid in [0, len)
	next    int          // ring write cursor once len(buf) == cap
	total   int64        // spans ever recorded
	dropped int64        // spans overwritten after the ring filled
}

// NewTracer returns a tracer whose ring holds up to capacity finished
// spans (capacity <= 0 returns nil, disabling tracing).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		return nil
	}
	return &Tracer{cap: capacity}
}

// Start begins a span named name, parented to the current span of ctx if
// any, and returns a context carrying the new span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	return t.StartAt(ctx, name, time.Now())
}

// StartAt is Start with an explicit start time — the hook for
// synthesized spans whose duration is known only after the fact (per-pass
// spans reconstructed from telemetry events carry the pass's measured
// wall time).
func (t *Tracer) StartAt(ctx context.Context, name string, start time.Time) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{tr: t, rec: SpanRecord{Name: name, Start: start, SpanID: randHex(8)}}
	if parent := SpanFromContext(ctx); parent != nil {
		s.rec.TraceID = parent.rec.TraceID
		s.rec.ParentID = parent.rec.SpanID
	} else {
		s.rec.TraceID = randHex(8)
	}
	return ContextWithSpan(ctx, s), s
}

// record appends one finished span to the ring.
func (t *Tracer) record(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, rec)
		return
	}
	t.buf[t.next] = rec
	t.next = (t.next + 1) % t.cap
	t.dropped++
}

// Len reports the number of finished spans currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Stats reports the ring shape: capacity, held spans, spans ever
// recorded, and spans evicted by the ring.
func (t *Tracer) Stats() (capacity, held int, total, dropped int64) {
	if t == nil {
		return 0, 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cap, len(t.buf), t.total, t.dropped
}

// Snapshot returns the held spans oldest-first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// TraceNode is one span with its children — the tree shape GET
// /v1/traces serves.
type TraceNode struct {
	SpanRecord
	Children []*TraceNode `json:"children,omitempty"`
}

// Traces assembles the held spans into trees and returns the roots whose
// duration is at least minRoot — the slow-query view when minRoot > 0.
// A span whose parent fell off the ring becomes a root itself, so trees
// degrade gracefully rather than disappearing. Roots are ordered by
// start time.
func (t *Tracer) Traces(minRoot time.Duration) []*TraceNode {
	return BuildTraces(t.Snapshot(), minRoot)
}

// BuildTraces assembles an arbitrary span set into trees — the same
// shape Traces serves, but over spans gathered from anywhere (the
// coordinator stitches its own ring together with spans fetched from
// remote workers before calling this).
func BuildTraces(spans []SpanRecord, minRoot time.Duration) []*TraceNode {
	nodes := make(map[string]*TraceNode, len(spans))
	for i := range spans {
		nodes[spans[i].SpanID] = &TraceNode{SpanRecord: spans[i]}
	}
	var roots []*TraceNode
	for _, n := range nodes {
		if parent, ok := nodes[n.ParentID]; ok && n.ParentID != "" {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var keep []*TraceNode
	for _, r := range roots {
		if r.Duration >= minRoot {
			keep = append(keep, r)
		}
	}
	sortNodes(keep)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return keep
}

func sortNodes(ns []*TraceNode) {
	sort.Slice(ns, func(i, j int) bool {
		if !ns[i].Start.Equal(ns[j].Start) {
			return ns[i].Start.Before(ns[j].Start)
		}
		return ns[i].SpanID < ns[j].SpanID
	})
}
