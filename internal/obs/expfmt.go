package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample line.
type Sample struct {
	Name     string
	Labels   map[string]string
	Value    float64
	Exemplar *Exemplar // OpenMetrics `# {...} value` suffix, if present
}

// Label returns the named label value, or "".
func (s Sample) Label(name string) string { return s.Labels[name] }

// expLine is one significant line of a text exposition.
type expLine struct {
	num    int // 1-based line number
	isHelp bool
	isType bool
	family string // HELP/TYPE subject
	text   string // help text or type name
	sample *Sample
}

// parseExposition tokenizes a text exposition into HELP, TYPE and sample
// lines; blank lines and non-directive comments are skipped.
func parseExposition(r io.Reader) ([]expLine, error) {
	var out []expLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	num := 0
	for sc.Scan() {
		num++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				el := expLine{num: num, family: fields[2]}
				if len(fields) == 4 {
					el.text = fields[3]
				}
				if fields[1] == "HELP" {
					el.isHelp = true
				} else {
					el.isType = true
					el.text = strings.TrimSpace(el.text)
				}
				out = append(out, el)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", num, err)
		}
		out = append(out, expLine{num: num, sample: &s})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Metric name runs to the first '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:end]
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		close := -1
		inQuote, escaped := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case escaped:
				escaped = false
			case inQuote && c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				close = i
			}
			if close >= 0 {
				break
			}
		}
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	// An OpenMetrics exemplar rides after the value as
	// ` # {labels} value [timestamp]`; split it off before parsing the
	// sample's own value/timestamp fields.
	if hash := strings.Index(rest, "#"); hash >= 0 {
		ex, err := parseExemplar(strings.TrimSpace(rest[hash+1:]))
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		s.Exemplar = ex
		rest = rest[:hash]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value, optional timestamp
		return s, fmt.Errorf("want `value [timestamp]` after %q, got %q", s.Name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseExemplar parses the body after an exemplar's '#' marker:
// `{labels} value [timestamp]`.
func parseExemplar(body string) (*Exemplar, error) {
	if !strings.HasPrefix(body, "{") {
		return nil, fmt.Errorf("exemplar %q does not start with a label set", body)
	}
	close := -1
	inQuote, escaped := false, false
	for i := 1; i < len(body) && close < 0; i++ {
		switch c := body[i]; {
		case escaped:
			escaped = false
		case inQuote && c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '}':
			close = i
		}
	}
	if close < 0 {
		return nil, fmt.Errorf("unterminated exemplar label set in %q", body)
	}
	labels, err := parseLabels(body[1:close])
	if err != nil {
		return nil, fmt.Errorf("exemplar labels: %w", err)
	}
	runes := 0
	for name, val := range labels {
		if !labelNameRE.MatchString(name) {
			return nil, fmt.Errorf("invalid exemplar label name %q", name)
		}
		runes += len([]rune(name)) + len([]rune(val))
	}
	if runes > 128 {
		return nil, fmt.Errorf("exemplar label set exceeds 128 runes (%d)", runes)
	}
	fields := strings.Fields(body[close+1:])
	if len(fields) < 1 || len(fields) > 2 { // value, optional timestamp
		return nil, fmt.Errorf("want `value [timestamp]` after exemplar labels, got %q", body[close+1:])
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q: %v", fields[0], err)
	}
	return &Exemplar{TraceID: labels["trace_id"], Value: v}, nil
}

func parseLabels(body string) (map[string]string, error) {
	out := map[string]string{}
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair without '=' in %q", body[i:])
		}
		name := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %q value is not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(body) {
				return nil, fmt.Errorf("unterminated value for label %q", name)
			}
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, fmt.Errorf("dangling escape in label %q", name)
				}
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("unknown escape \\%c in label %q", body[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		out[name] = val.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return out, nil
}

// ParseText parses a text exposition into its samples, in document order.
func ParseText(r io.Reader) ([]Sample, error) {
	lines, err := parseExposition(r)
	if err != nil {
		return nil, err
	}
	var out []Sample
	for _, l := range lines {
		if l.sample != nil {
			out = append(out, *l.sample)
		}
	}
	return out, nil
}

// histogram sample suffixes owned by a `# TYPE x histogram` family.
var histSuffixes = []string{"_bucket", "_sum", "_count"}

// Lint checks a text exposition the way promtool's strict lint would, in
// pure Go: HELP precedes TYPE, every sample follows its family's TYPE,
// families are contiguous and declared once, names are valid, counters
// end in _total, and histogram bucket series are cumulative with a +Inf
// bucket equal to _count. It returns every violation found (nil = clean).
func Lint(r io.Reader) []error {
	lines, err := parseExposition(r)
	if err != nil {
		return []error{err}
	}
	var errs []error
	addf := func(num int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", num, fmt.Sprintf(format, args...)))
	}

	types := map[string]string{}  // family -> type
	helped := map[string]bool{}   // family -> HELP seen
	closed := map[string]bool{}   // family blocks already left
	current := ""                 // family of the current block
	lastHelp := ""                // family of an immediately preceding HELP
	hist := map[string][]Sample{} // histogram family -> its samples

	enter := func(num int, fam string) {
		if fam == current {
			return
		}
		if current != "" {
			closed[current] = true
		}
		if closed[fam] {
			addf(num, "family %s reappears after other families (samples must be contiguous)", fam)
		}
		current = fam
	}

	for _, l := range lines {
		switch {
		case l.isHelp:
			if !metricNameRE.MatchString(l.family) {
				addf(l.num, "invalid metric name %q in HELP", l.family)
			}
			if helped[l.family] {
				addf(l.num, "second HELP for %s", l.family)
			}
			if _, typed := types[l.family]; typed {
				addf(l.num, "HELP for %s does not immediately precede its TYPE", l.family)
			}
			helped[l.family] = true
			lastHelp = l.family
			enter(l.num, l.family)
		case l.isType:
			if _, dup := types[l.family]; dup {
				addf(l.num, "second TYPE for %s", l.family)
			}
			switch l.text {
			case kindCounter, kindGauge, kindHistogram, "summary", "untyped":
			default:
				addf(l.num, "unknown TYPE %q for %s", l.text, l.family)
			}
			if helped[l.family] && lastHelp != l.family {
				addf(l.num, "HELP for %s does not immediately precede its TYPE", l.family)
			}
			types[l.family] = l.text
			if l.text == kindCounter && !strings.HasSuffix(l.family, "_total") {
				addf(l.num, "counter %s should end in _total", l.family)
			}
			lastHelp = ""
			enter(l.num, l.family)
		default:
			s := *l.sample
			lastHelp = ""
			if !metricNameRE.MatchString(s.Name) {
				addf(l.num, "invalid metric name %q", s.Name)
				continue
			}
			for name := range s.Labels {
				if !labelNameRE.MatchString(name) {
					addf(l.num, "invalid label name %q on %s", name, s.Name)
				}
			}
			fam, ok := familyOf(s.Name, types)
			if !ok {
				addf(l.num, "sample %s has no preceding TYPE", s.Name)
				continue
			}
			enter(l.num, fam)
			if ex := s.Exemplar; ex != nil {
				isBucket := types[fam] == kindHistogram && strings.HasSuffix(s.Name, "_bucket")
				if !isBucket && types[fam] != kindCounter {
					addf(l.num, "exemplar on %s: exemplars belong on histogram buckets or counters", s.Name)
				}
				if isBucket {
					if le, err := strconv.ParseFloat(s.Labels["le"], 64); err == nil && ex.Value > le {
						addf(l.num, "exemplar value %v on %s exceeds bucket le=%v", ex.Value, s.Name, le)
					}
				}
			}
			if types[fam] == kindHistogram {
				hist[fam] = append(hist[fam], s)
			}
		}
	}

	for _, fam := range sortedKeys(hist) {
		lintHistogram(fam, hist[fam], &errs)
	}
	return errs
}

// familyOf resolves a sample name to its declared family: an exact TYPE
// match, or a histogram parent for _bucket/_sum/_count suffixes.
func familyOf(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suf := range histSuffixes {
		if base, found := strings.CutSuffix(name, suf); found {
			if types[base] == kindHistogram {
				return base, true
			}
		}
	}
	return "", false
}

// lintHistogram checks one histogram family's series shape per label set:
// le present and parseable on every bucket, cumulative counts
// non-decreasing in le order, +Inf present, and _count == the +Inf
// bucket.
func lintHistogram(fam string, samples []Sample, errs *[]error) {
	type series struct {
		les    []float64
		counts map[float64]float64
		count  *float64
		sum    bool
	}
	bySet := map[string]*series{}
	get := func(s Sample) *series {
		var parts []string
		for _, k := range sortedKeys(s.Labels) {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+s.Labels[k])
		}
		key := strings.Join(parts, ",")
		sr, ok := bySet[key]
		if !ok {
			sr = &series{counts: map[float64]float64{}}
			bySet[key] = sr
		}
		return sr
	}
	for _, s := range samples {
		sr := get(s)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				*errs = append(*errs, fmt.Errorf("%s: bucket sample without le label", fam))
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				*errs = append(*errs, fmt.Errorf("%s: unparseable le %q", fam, leStr))
				continue
			}
			sr.les = append(sr.les, le)
			sr.counts[le] = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			v := s.Value
			sr.count = &v
		case strings.HasSuffix(s.Name, "_sum"):
			sr.sum = true
		}
	}
	for _, key := range sortedKeys(bySet) {
		sr := bySet[key]
		where := fam
		if key != "" {
			where = fam + "{" + key + "}"
		}
		sort.Float64s(sr.les)
		prev := -1.0
		for i, le := range sr.les {
			if i > 0 && sr.counts[le] < prev {
				*errs = append(*errs, fmt.Errorf("%s: bucket counts not cumulative at le=%v", where, le))
			}
			prev = sr.counts[le]
		}
		n := len(sr.les)
		if n == 0 || !isInf(sr.les[n-1]) {
			*errs = append(*errs, fmt.Errorf("%s: no +Inf bucket", where))
			continue
		}
		if sr.count == nil {
			*errs = append(*errs, fmt.Errorf("%s: missing _count", where))
		} else if *sr.count != sr.counts[sr.les[n-1]] {
			*errs = append(*errs, fmt.Errorf("%s: _count %v != +Inf bucket %v", where, *sr.count, sr.counts[sr.les[n-1]]))
		}
		if !sr.sum {
			*errs = append(*errs, fmt.Errorf("%s: missing _sum", where))
		}
	}
}

func isInf(v float64) bool { return v > 1e308 }

func sortedKeys[M map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
