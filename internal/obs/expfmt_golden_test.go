package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

var traceIDRE = regexp.MustCompile(`trace_id="[0-9a-f]+"`)

// maskExemplars replaces every exemplar trace id with a fixed token, so
// the golden pins the exemplar syntax and placement without depending on
// the id scheme.
func maskExemplars(text string) string {
	return traceIDRE.ReplaceAllString(text, `trace_id="<TRACE>"`)
}

// TestExemplarExpositionGolden pins the OpenMetrics-style exemplar
// exposition byte-for-byte (trace ids masked): which bucket lines carry
// the `# {trace_id=...} value` suffix, the suffix's shape, and that the
// plain exposition of the same registry stays exemplar-free.
func TestExemplarExpositionGolden(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "Request latency.", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "aaaa0000111122223333444455556666")
	h.ObserveExemplar(0.5, "bbbb0000111122223333444455556666")
	h.ObserveExemplar(5, "cccc0000111122223333444455556666")
	h.Observe(0.02) // no trace in flight: bucket counts move, exemplar stays
	c := r.Counter("req_total", "Requests served.")
	c.Add(4)

	var rich bytes.Buffer
	if err := r.WriteExposition(&rich, true); err != nil {
		t.Fatal(err)
	}
	if errs := Lint(bytes.NewReader(rich.Bytes())); len(errs) != 0 {
		t.Fatalf("exemplar exposition fails lint: %v", errs)
	}
	samples, err := ParseText(bytes.NewReader(rich.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	withExemplar := 0
	for _, s := range samples {
		if s.Exemplar != nil {
			if !strings.HasSuffix(s.Name, "_bucket") {
				t.Errorf("exemplar on non-bucket sample %s", s.Name)
			}
			withExemplar++
		}
	}
	if withExemplar != 3 {
		t.Fatalf("parsed %d exemplars, want 3", withExemplar)
	}

	// The plain exposition of the same registry carries no exemplars.
	var plain bytes.Buffer
	if err := r.WriteExposition(&plain, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "# {") {
		t.Fatal("exemplar leaked into the plain exposition")
	}

	got := maskExemplars(rich.String())
	path := filepath.Join("testdata", "exemplars.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("exemplar exposition drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
