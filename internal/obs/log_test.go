package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug":     slog.LevelDebug,
		"info":      slog.LevelInfo,
		"":          slog.LevelInfo,
		"WARN":      slog.LevelWarn,
		" warning ": slog.LevelWarn,
		"error":     slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewLoggerEmitsJSON(t *testing.T) {
	var b bytes.Buffer
	lg := NewLogger(&b, slog.LevelInfo)
	lg.Debug("hidden")
	lg.Info("http_request", "request_id", "abc123", "status", 200)
	var rec map[string]any
	if err := json.Unmarshal(b.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %q (%v)", b.String(), err)
	}
	if rec["msg"] != "http_request" || rec["request_id"] != "abc123" || rec["status"] != float64(200) {
		t.Errorf("record = %v", rec)
	}
	if rec["level"] != "INFO" {
		t.Errorf("level = %v", rec["level"])
	}
}

func TestNopLogger(t *testing.T) {
	lg := NopLogger()
	// Must be callable at every level without output or panic.
	lg.Debug("a")
	lg.Info("b", "k", 1)
	lg.Warn("c")
	lg.Error("d")
	lg2 := lg.With("k", "v").WithGroup("g")
	lg2.Info("e")
	if lg.Enabled(nil, slog.LevelError) {
		t.Error("nop logger reports enabled")
	}
}
