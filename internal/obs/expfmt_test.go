package obs

import (
	"strings"
	"testing"
)

func TestParseTextSamples(t *testing.T) {
	in := `# HELP a_total Things.
# TYPE a_total counter
a_total 5
# TYPE b gauge
b{route="/v1/mine",q="x\"y\\z\n"} 2.5 1712345678
# some free-form comment
`
	samples, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("parsed %d samples, want 2", len(samples))
	}
	if samples[0].Name != "a_total" || samples[0].Value != 5 {
		t.Errorf("sample 0 = %+v", samples[0])
	}
	s := samples[1]
	if s.Name != "b" || s.Value != 2.5 || s.Label("route") != "/v1/mine" {
		t.Errorf("sample 1 = %+v", s)
	}
	if s.Label("q") != "x\"y\\z\n" {
		t.Errorf("unescaped label = %q", s.Label("q"))
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := map[string]string{
		"no value":       "a_total\n",
		"bad value":      "a_total x\n",
		"open labels":    `a_total{x="y" 5` + "\n",
		"unquoted label": `a_total{x=y} 5` + "\n",
		"bad escape":     `a_total{x="\q"} 5` + "\n",
		"extra fields":   "a_total 5 6 7\n",
	}
	for name, in := range cases {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

func TestLintCleanExposition(t *testing.T) {
	in := `# HELP req_total Requests.
# TYPE req_total counter
req_total{route="/a"} 3
req_total{route="/b"} 1
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 2
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 1.5
lat_seconds_count 4
# TYPE depth gauge
depth 7
`
	if errs := Lint(strings.NewReader(in)); errs != nil {
		t.Errorf("clean exposition flagged: %v", errs)
	}
}

func TestLintViolations(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"sample without TYPE", "orphan 1\n", "no preceding TYPE"},
		{"counter without _total", "# TYPE bad counter\nbad 1\n", "should end in _total"},
		{"HELP after TYPE", "# TYPE g gauge\n# HELP g late help\ng 1\n", "does not immediately precede"},
		{"duplicate TYPE", "# TYPE g gauge\ng 1\n# TYPE g gauge\n", "second TYPE"},
		{"duplicate HELP", "# HELP g a\n# HELP g b\n# TYPE g gauge\ng 1\n", "second HELP"},
		{"unknown type", "# TYPE g thing\ng 1\n", "unknown TYPE"},
		{"interleaved families", "# TYPE g gauge\ng 1\n# TYPE h gauge\nh 1\ng 2\n", "must be contiguous"},
		{"non-cumulative histogram", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "not cumulative"},
		{"missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n", "no +Inf bucket"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n", "_count 4 != +Inf bucket 5"},
		{"missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n", "missing _sum"},
		{"missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\n", "missing _count"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "without le"},
		{"bad le", "# TYPE h histogram\nh_bucket{le=\"x\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "unparseable le"},
		{"parse error", "broken{ 1\n", "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := Lint(strings.NewReader(tc.in))
			if errs == nil {
				t.Fatalf("no violation for:\n%s", tc.in)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("errors %v do not mention %q", errs, tc.want)
			}
		})
	}
}

// TestLintPerLabelSetHistograms: each label set of a histogram family is
// linted as its own cumulative series.
func TestLintPerLabelSetHistograms(t *testing.T) {
	in := `# TYPE h histogram
h_bucket{route="/a",le="1"} 1
h_bucket{route="/a",le="+Inf"} 2
h_sum{route="/a"} 0.5
h_count{route="/a"} 2
h_bucket{route="/b",le="1"} 4
h_bucket{route="/b",le="+Inf"} 4
h_sum{route="/b"} 2
h_count{route="/b"} 3
`
	errs := Lint(strings.NewReader(in))
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), `h{route=/b}`) {
		t.Errorf("want exactly the /b count mismatch, got %v", errs)
	}
}
