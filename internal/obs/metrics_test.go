package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events seen.")
	c.Inc()
	c.Add(4)
	c.Add(-3) // dropped: counters only go up
	g := r.Gauge("test_depth", "Current depth.")
	g.Set(2.5)
	g.Add(-0.5)
	cv := r.CounterVec("test_requests_total", "Requests by route.", "route", "status")
	cv.With("/v1/mine", "200").Add(3)
	cv.With("/v1/mine", "504").Inc()
	cv.With(`/we"ird\`, "200").Inc()
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 12 })
	r.CounterFunc("test_hits_total", "Cache hits.", func() float64 { return 9 })

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_events_total Events seen.\n# TYPE test_events_total counter\ntest_events_total 5\n",
		"test_depth 2\n",
		`test_requests_total{route="/v1/mine",status="200"} 3`,
		`test_requests_total{route="/v1/mine",status="504"} 1`,
		`test_requests_total{route="/we\"ird\\",status="200"} 1`,
		"test_uptime_seconds 12\n",
		"test_hits_total 9\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if errs := Lint(strings.NewReader(out)); errs != nil {
		t.Errorf("lint: %v", errs)
	}
	// Families render in sorted order.
	samples, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].Name != "test_depth" {
		t.Errorf("first sample = %s, want test_depth (sorted)", samples[0].Name)
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	cases := map[string]func(*Registry){
		"duplicate":        func(r *Registry) { r.Gauge("x", "a"); r.Gauge("x", "b") },
		"bad name":         func(r *Registry) { r.Gauge("9bad", "a") },
		"bad label":        func(r *Registry) { r.CounterVec("x_total", "a", "9bad") },
		"counter suffix":   func(r *Registry) { r.Counter("x", "a") },
		"label arity":      func(r *Registry) { r.CounterVec("x_total", "a", "l").With("a", "b") },
		"duplicate bucket": func(r *Registry) { r.Histogram("h", "a", []float64{1, 1}) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn(NewRegistry())
		})
	}
}

// TestHistogramProperty is the bucket-correctness property test: random
// observations against random bucket bounds must land in the first
// bucket whose bound is >= the value, +Inf must catch everything, and
// the rendered exposition must parse back to exactly the same cumulative
// counts.
func TestHistogramProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		// Random strictly increasing bounds.
		nb := 1 + rng.Intn(8)
		set := map[float64]bool{}
		for len(set) < nb {
			set[math.Round(rng.NormFloat64()*100)/10] = true
		}
		bounds := make([]float64, 0, nb)
		for b := range set {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)

		r := NewRegistry()
		h := r.Histogram("prop_seconds", "Property test.", bounds)
		n := 1 + rng.Intn(200)
		wantBucket := make([]int64, nb+1)
		var wantSum float64
		for i := 0; i < n; i++ {
			v := rng.NormFloat64() * 12
			if rng.Intn(10) == 0 {
				v = bounds[rng.Intn(nb)] // exactly on a bound: le is inclusive
			}
			h.Observe(v)
			wantSum += v
			idx := nb // +Inf
			for j, b := range bounds {
				if v <= b {
					idx = j
					break
				}
			}
			wantBucket[idx]++
		}

		// Direct cumulative counts.
		cum := h.Cumulative()
		var run int64
		for i := range wantBucket {
			run += wantBucket[i]
			if cum[i] != run {
				t.Fatalf("trial %d: cumulative[%d] = %d, want %d (bounds %v)", trial, i, cum[i], run, bounds)
			}
		}
		if cum[len(cum)-1] != int64(n) {
			t.Fatalf("trial %d: +Inf bucket %d != count %d", trial, cum[len(cum)-1], n)
		}
		if got := h.Count(); got != int64(n) {
			t.Fatalf("trial %d: Count = %d, want %d", trial, got, n)
		}
		if math.Abs(h.Sum()-wantSum) > 1e-6*math.Max(1, math.Abs(wantSum)) {
			t.Fatalf("trial %d: Sum = %v, want %v", trial, h.Sum(), wantSum)
		}

		// Render → parse → same cumulative counts.
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if errs := Lint(bytes.NewReader(b.Bytes())); errs != nil {
			t.Fatalf("trial %d: lint: %v\n%s", trial, errs, b.String())
		}
		samples, err := ParseText(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		parsed := map[string]float64{}
		for _, s := range samples {
			switch s.Name {
			case "prop_seconds_bucket":
				parsed["le="+s.Label("le")] = s.Value
			case "prop_seconds_count":
				parsed["count"] = s.Value
			}
		}
		run = 0
		for i, bound := range bounds {
			run += wantBucket[i]
			key := "le=" + formatValue(bound)
			if parsed[key] != float64(run) {
				t.Fatalf("trial %d: parsed bucket %s = %v, want %d\n%s", trial, key, parsed[key], run, b.String())
			}
		}
		if parsed["le=+Inf"] != float64(n) || parsed["count"] != float64(n) {
			t.Fatalf("trial %d: +Inf/count = %v/%v, want %d", trial, parsed["le=+Inf"], parsed["count"], n)
		}
	}
}

// TestHistogramConcurrentSoak hammers one histogram vec from 40
// goroutines while renders run concurrently; run under -race (make test
// does) it is the data-race gate for the metrics hot path.
func TestHistogramConcurrentSoak(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("soak_seconds", "Concurrent soak.", []float64{0.25, 0.5, 0.75}, "route")
	const workers = 40
	const perWorker = 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Two concurrent renderers exercise observe-during-render.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	var obsWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		obsWG.Add(1)
		go func(w int) {
			defer obsWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			route := "/r" + strconv.Itoa(w%4)
			for i := 0; i < perWorker; i++ {
				hv.With(route).Observe(rng.Float64())
			}
		}(w)
	}
	obsWG.Wait()
	close(stop)
	wg.Wait()

	var total int64
	for w := 0; w < 4; w++ {
		total += hv.With("/r" + strconv.Itoa(w)).Count()
	}
	if total != workers*perWorker {
		t.Fatalf("observed %d, want %d", total, workers*perWorker)
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if errs := Lint(bytes.NewReader(b.Bytes())); errs != nil {
		t.Fatalf("lint after soak: %v", errs)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	for _, name := range []string{
		"go_goroutines", "go_memstats_heap_alloc_bytes", "go_memstats_heap_sys_bytes",
		"go_memstats_heap_objects", "go_memstats_alloc_bytes_total",
		"go_gc_cycles_total", "go_gc_pause_seconds_total",
	} {
		v, ok := byName[name]
		if !ok {
			t.Errorf("missing %s", name)
		}
		if (name == "go_goroutines" || strings.Contains(name, "alloc")) && v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	if errs := Lint(bytes.NewReader(b.Bytes())); errs != nil {
		t.Errorf("lint: %v", errs)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		5:           "5",
		1048576:     "1048576",
		2.5:         "2.5",
		math.Inf(1): "+Inf",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("NaN renders %q", got)
	}
	if got := formatValue(math.Inf(-1)); got != "-Inf" {
		t.Errorf("-Inf renders %q", got)
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	c := r.Counter("example_events_total", "Events processed.")
	c.Add(3)
	var b bytes.Buffer
	_ = r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP example_events_total Events processed.
	// # TYPE example_events_total counter
	// example_events_total 3
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "aaaa000011112222")
	h.ObserveExemplar(0.5, "bbbb000011112222")
	h.ObserveExemplar(5, "cccc000011112222")
	h.Observe(0.06) // no exemplar: must not clobber the bucket's last trace

	// Default output carries no exemplars and is byte-identical to the
	// legacy writer.
	var plain, legacy, rich bytes.Buffer
	if err := r.WriteExposition(&plain, false); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&legacy); err != nil {
		t.Fatal(err)
	}
	if plain.String() != legacy.String() {
		t.Fatal("WriteExposition(false) diverged from WritePrometheus")
	}
	if strings.Contains(plain.String(), "# {") {
		t.Fatal("exemplar syntax leaked into the default exposition")
	}

	if err := r.WriteExposition(&rich, true); err != nil {
		t.Fatal(err)
	}
	text := rich.String()
	for _, want := range []string{
		`le="0.1"} 2 # {trace_id="aaaa000011112222"} 0.05`,
		`le="1"} 3 # {trace_id="bbbb000011112222"} 0.5`,
		`le="+Inf"} 4 # {trace_id="cccc000011112222"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// The rich exposition lints clean and parses back with exemplars.
	if errs := Lint(strings.NewReader(text)); len(errs) != 0 {
		t.Fatalf("exemplar exposition fails lint: %v", errs)
	}
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, s := range samples {
		if s.Exemplar != nil {
			found++
			if s.Exemplar.TraceID == "" {
				t.Errorf("parsed exemplar with empty trace id on %s", s.Name)
			}
		}
	}
	if found != 3 {
		t.Errorf("parsed %d exemplars, want 3", found)
	}
}

func TestLintExemplarViolations(t *testing.T) {
	cases := map[string]string{
		"exemplar on a gauge": `# TYPE g gauge
g 1 # {trace_id="abc"} 1
`,
		"exemplar value above the bucket bound": `# TYPE h histogram
h_bucket{le="0.1"} 1 # {trace_id="abc"} 5
h_bucket{le="+Inf"} 1
h_sum 0.05
h_count 1
`,
		"oversized exemplar label set": `# TYPE c_total counter
c_total 1 # {trace_id="` + strings.Repeat("a", 200) + `"} 1
`,
	}
	for name, in := range cases {
		if errs := Lint(strings.NewReader(in)); len(errs) == 0 {
			t.Errorf("%s: lint found no errors", name)
		}
	}
	// Control: an exemplar on a counter is legal.
	ok := `# TYPE c_total counter
c_total 1 # {trace_id="abc"} 1
`
	if errs := Lint(strings.NewReader(ok)); len(errs) != 0 {
		t.Errorf("counter exemplar flagged: %v", errs)
	}
}
