package obs

import (
	"runtime"
	"sync"
)

// RegisterRuntimeMetrics adds the Go runtime gauges and counters every
// scrape target is expected to expose: goroutine count, heap shape, and
// garbage-collection totals. runtime.ReadMemStats stops the world, so
// the snapshot is taken once per scrape via PreCollect and every family
// reads from it.
func RegisterRuntimeMetrics(r *Registry) {
	var mu sync.Mutex
	var ms runtime.MemStats
	r.PreCollect(func() {
		mu.Lock()
		defer mu.Unlock()
		runtime.ReadMemStats(&ms)
	})
	read := func(f func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return f(&ms)
		}
	}
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.GaugeFunc("go_memstats_heap_sys_bytes", "Bytes of heap memory obtained from the OS.",
		read(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) }))
	r.GaugeFunc("go_memstats_heap_objects", "Number of currently allocated heap objects.",
		read(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }))
	r.CounterFunc("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
		read(func(m *runtime.MemStats) float64 { return float64(m.TotalAlloc) }))
	r.CounterFunc("go_gc_cycles_total", "Completed garbage-collection cycles.",
		read(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		read(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
}
