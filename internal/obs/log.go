package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger returns a structured JSON logger writing to w at the given
// level — one line per record, machine-parseable, the access-log shape
// the serving middleware emits.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards every record — the default
// when a Server is constructed without one, keeping call sites
// branch-free.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }
