package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestGaugeVecRendering(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("test_breaker_state", "Breaker state by shard.", "shard")
	gv.With("0").Set(2)
	gv.With("1").Set(0)
	gv.With("0").Set(1) // same child: overwrite, not a new series
	gv.With("2").Add(3)
	gv.With("2").Add(-1)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_breaker_state Breaker state by shard.\n# TYPE test_breaker_state gauge\n",
		`test_breaker_state{shard="0"} 1`,
		`test_breaker_state{shard="1"} 0`,
		`test_breaker_state{shard="2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "test_breaker_state{"); n != 3 {
		t.Errorf("%d series, want 3 (resetting a child must not add one)", n)
	}
	if errs := Lint(strings.NewReader(out)); errs != nil {
		t.Errorf("lint: %v", errs)
	}
	if _, err := ParseText(strings.NewReader(out)); err != nil {
		t.Errorf("parse back: %v", err)
	}
}
