package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpanTreeAndContextPropagation(t *testing.T) {
	tr := NewTracer(64)
	ctx, root := tr.Start(context.Background(), "root")
	if SpanFromContext(ctx) != root {
		t.Fatal("context does not carry the started span")
	}
	if root.TraceID() == "" || root.SpanID() == "" {
		t.Fatal("missing ids")
	}
	cctx, child := tr.Start(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace %s != root trace %s", child.TraceID(), root.TraceID())
	}
	_, grand := tr.Start(cctx, "grandchild")
	grand.SetAttr("k", 7)
	grand.End()
	child.End()
	time.Sleep(time.Millisecond)
	root.SetAttr("route", "/v1/mine")
	root.End()

	trees := tr.Traces(0)
	if len(trees) != 1 {
		t.Fatalf("got %d roots, want 1", len(trees))
	}
	rt := trees[0]
	if rt.Name != "root" || rt.Attrs["route"] != "/v1/mine" {
		t.Errorf("root = %+v", rt.SpanRecord)
	}
	if len(rt.Children) != 1 || rt.Children[0].Name != "child" {
		t.Fatalf("children = %+v", rt.Children)
	}
	gc := rt.Children[0].Children
	if len(gc) != 1 || gc[0].Name != "grandchild" || gc[0].Attrs["k"] != 7 {
		t.Fatalf("grandchildren = %+v", gc)
	}
	// The root's duration covers every child's span window.
	for _, c := range rt.Children {
		if c.Start.Before(rt.Start) || c.Start.Add(c.Duration).After(rt.Start.Add(rt.Duration)) {
			t.Errorf("child window [%v +%v] outside root [%v +%v]", c.Start, c.Duration, rt.Start, rt.Duration)
		}
	}
}

func TestTracerMinDurationFilter(t *testing.T) {
	tr := NewTracer(16)
	_, fast := tr.Start(context.Background(), "fast")
	fast.End()
	_, slow := tr.StartAt(context.Background(), "slow", time.Now().Add(-50*time.Millisecond))
	slow.End()
	all := tr.Traces(0)
	if len(all) != 2 {
		t.Fatalf("unfiltered roots = %d, want 2", len(all))
	}
	slowOnly := tr.Traces(10 * time.Millisecond)
	if len(slowOnly) != 1 || slowOnly[0].Name != "slow" {
		t.Fatalf("filtered roots = %+v", slowOnly)
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 30; i++ {
		_, s := tr.Start(context.Background(), "s")
		s.End()
	}
	capn, held, total, dropped := tr.Stats()
	if capn != 8 || held != 8 {
		t.Errorf("cap/held = %d/%d, want 8/8", capn, held)
	}
	if total != 30 || dropped != 22 {
		t.Errorf("total/dropped = %d/%d, want 30/22", total, dropped)
	}
	if got := len(tr.Snapshot()); got != 8 {
		t.Errorf("snapshot holds %d, want 8", got)
	}
	// An orphan (parent evicted) still surfaces as a root.
	if roots := tr.Traces(0); len(roots) != 8 {
		t.Errorf("roots = %d, want 8", len(roots))
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "x")
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil tracer modified the context")
	}
	s.SetAttr("a", 1) // must not panic
	s.End()
	if s.TraceID() != "" || s.SpanID() != "" {
		t.Error("nil span has ids")
	}
	if tr.Len() != 0 || tr.Snapshot() != nil || tr.Traces(0) != nil {
		t.Error("nil tracer holds spans")
	}
	if NewTracer(0) != nil || NewTracer(-1) != nil {
		t.Error("non-positive capacity should disable tracing")
	}
}

func TestDetach(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.Start(context.Background(), "root")
	ctx = WithRequestID(ctx, "req-1")
	d := Detach(ctx)
	if SpanFromContext(d) != nil {
		t.Error("Detach left a span in the context")
	}
	if RequestIDFrom(d) != "req-1" {
		t.Error("Detach dropped the request id")
	}
	// Spans started under a detached context become new roots.
	_, s := tr.Start(d, "orphan")
	if s.TraceID() == root.TraceID() {
		t.Error("detached child inherited the trace")
	}
	if same := Detach(d); same != d {
		t.Error("Detach of a span-free context should be a no-op")
	}
}

func TestDoubleEndAndLateAttrs(t *testing.T) {
	tr := NewTracer(4)
	_, s := tr.Start(context.Background(), "once")
	s.End()
	s.SetAttr("late", true)
	s.End()
	if tr.Len() != 1 {
		t.Fatalf("recorded %d spans, want 1", tr.Len())
	}
	if rec := tr.Snapshot()[0]; rec.Attrs != nil {
		t.Errorf("late attr recorded: %v", rec.Attrs)
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Errorf("ids = %q, %q", a, b)
	}
	if RequestIDFrom(context.Background()) != "" {
		t.Error("empty context carries a request id")
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	_, span := tr.Start(context.Background(), "op")
	hdr := span.TraceParent()
	traceID, spanID, ok := ParseTraceParent(hdr)
	if !ok {
		t.Fatalf("ParseTraceParent rejected %q", hdr)
	}
	if traceID != span.TraceID() || spanID != span.SpanID() {
		t.Errorf("round trip = (%s, %s), want (%s, %s)", traceID, spanID, span.TraceID(), span.SpanID())
	}
	if (*Span)(nil).TraceParent() != "" {
		t.Error("nil span should render an empty traceparent")
	}
	for _, bad := range []string{
		"", "00-abc", "01-abcd-ef01-01", "00-xyz!-ef01-01", "00-abcd-XY-01", "00--ef01-01", "00-abcd-ef01-01-extra",
	} {
		if _, _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent accepted malformed %q", bad)
		}
	}
	// A W3C-width header (32/16 hex chars) parses too.
	if _, _, ok := ParseTraceParent("00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"); !ok {
		t.Error("W3C-width traceparent rejected")
	}
}

func TestRemoteParentStitching(t *testing.T) {
	// Coordinator process: a root span whose context crosses the wire.
	coord := NewTracer(8)
	cctx, rpc := coord.Start(context.Background(), "rpc-bounds")
	_ = cctx
	hdr := rpc.TraceParent()
	rpc.End()

	// Worker process: rebuild the parent from the header and serve under it.
	worker := NewTracer(8)
	traceID, spanID, ok := ParseTraceParent(hdr)
	if !ok {
		t.Fatal("header did not parse")
	}
	wctx := ContextWithRemoteParent(context.Background(), traceID, spanID)
	sctx, serve := worker.Start(wctx, "serve /shard/v1/bounds")
	_, kernel := worker.Start(sctx, "kernel-bounds")
	kernel.End()
	serve.End()
	if serve.TraceID() != rpc.TraceID() {
		t.Fatalf("worker span joined trace %s, want %s", serve.TraceID(), rpc.TraceID())
	}

	// The synthetic parent records nothing on the worker's ring.
	if got := worker.Len(); got != 2 {
		t.Fatalf("worker ring holds %d spans, want 2", got)
	}

	// Coordinator-side assembly: merge both rings into one tree.
	merged := append(coord.Snapshot(), worker.Snapshot()...)
	roots := BuildTraces(merged, 0)
	if len(roots) != 1 {
		t.Fatalf("merged spans built %d trees, want 1", len(roots))
	}
	root := roots[0]
	if root.Name != "rpc-bounds" || len(root.Children) != 1 {
		t.Fatalf("unexpected tree root %q with %d children", root.Name, len(root.Children))
	}
	if root.Children[0].Name != "serve /shard/v1/bounds" || len(root.Children[0].Children) != 1 {
		t.Fatalf("serve span not parented under the rpc span: %+v", root.Children[0])
	}
}

func TestStartAtEndAtExactDuration(t *testing.T) {
	tr := NewTracer(4)
	start := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	_, span := tr.StartAt(context.Background(), "phase", start)
	span.EndAt(start.Add(250 * time.Millisecond))
	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("ring holds %d spans", len(recs))
	}
	if recs[0].Duration != 250*time.Millisecond || !recs[0].Start.Equal(start) {
		t.Errorf("synthesized span = start %v dur %v", recs[0].Start, recs[0].Duration)
	}
}
