package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds in seconds — the
// conventional Prometheus spread from 5 ms to 10 s.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready; a nil receiver ignores writes and reads zero.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by n (negative deltas are dropped: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency/size histogram: observations are
// counted into the first bucket whose upper bound is >= the value, with
// an implicit +Inf bucket, plus a running sum and count. All methods are
// concurrency-safe and nil-tolerant.
type Histogram struct {
	bounds    []float64      // strictly increasing upper bounds, +Inf implicit
	counts    []atomic.Int64 // len(bounds)+1; non-cumulative per-bucket counts
	exemplars []atomic.Pointer[Exemplar]
	count     atomic.Int64
	sum       Gauge
}

// Exemplar links one histogram bucket to the most recent trace that
// crossed it, rendered in the OpenMetrics `# {trace_id="..."} value`
// suffix when exemplars are requested.
type Exemplar struct {
	TraceID string
	Value   float64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	for i := 1; i < len(bs); i++ {
		if bs[i] == bs[i-1] {
			panic(fmt.Sprintf("obs: duplicate histogram bound %v", bs[i]))
		}
	}
	if n := len(bs); n > 0 && math.IsInf(bs[n-1], 1) {
		bs = bs[:n-1] // +Inf is implicit
	}
	return &Histogram{
		bounds:    bs,
		counts:    make([]atomic.Int64, len(bs)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, "") }

// ObserveExemplar records one value and, when traceID is non-empty,
// retains it as the bucket's exemplar — each bucket remembers the most
// recent trace that landed in it.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, len(bounds) ⇒ +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// BucketExemplars returns the per-bucket exemplars (one slot per bound
// plus +Inf; nil slots have seen no exemplared observation).
func (h *Histogram) BucketExemplars() []*Exemplar {
	if h == nil {
		return nil
	}
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Cumulative returns the cumulative bucket counts, one per bound plus the
// trailing +Inf bucket (which always equals Count at a quiescent moment).
func (h *Histogram) Cumulative() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		out[i] = run
	}
	return out
}

// Bounds returns the finite bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// metric kinds, named to match the TYPE line of the exposition format.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// family is one named metric with zero or more labeled children.
type family struct {
	name   string
	help   string
	kind   string
	labels []string
	bounds []float64      // histogram families only
	fn     func() float64 // func-backed label-free families

	mu       sync.Mutex
	children map[string]*child
}

type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// childFor returns (creating on first use) the child at the given label
// values.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{values: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			ch.c = &Counter{}
		case kindGauge:
			ch.g = &Gauge{}
		case kindHistogram:
			ch.h = newHistogram(f.bounds)
		}
		f.children[key] = ch
	}
	return ch
}

// sortedChildren returns the children ordered by label values.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	out := make([]*child, 0, len(f.children))
	for _, ch := range f.children {
		out = append(out, ch)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter at the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.childFor(values).c }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the gauge at the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.childFor(values).g }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the histogram at the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.childFor(values).h }

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Construction-time errors (duplicate or invalid
// names) panic: like mining.Register, registration happens at wiring
// time and a bad name is a programmer error.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	pre      []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, kind string, labels []string, bounds []float64, fn func() float64) *family {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if kind == kindCounter && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: counter %q must end in _total", name))
	}
	for _, l := range labels {
		if !labelNameRE.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %s", l, name))
		}
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		bounds:   bounds,
		fn:       fn,
		children: make(map[string]*child),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.families[name] = f
	return f
}

// Counter registers and returns a label-free counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil, nil).childFor(nil).c
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil, nil)}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge to counters owned elsewhere (the bound cache's
// hit/miss/eviction counts).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, nil, nil, fn)
}

// Gauge registers and returns a label-free gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil, nil).childFor(nil).g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil, fn)
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil, nil)}
}

// Histogram registers and returns a label-free fixed-bucket histogram
// (nil buckets ⇒ DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, kindHistogram, nil, buckets, nil).childFor(nil).h
}

// HistogramVec registers a histogram family with the given label names
// (nil buckets ⇒ DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, kindHistogram, labels, buckets, nil)}
}

// PreCollect registers a hook run at the start of every WritePrometheus
// — the place to refresh snapshot-style gauges (runtime memory stats)
// exactly once per scrape.
func (r *Registry) PreCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pre = append(r.pre, fn)
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4), sorted by family name, HELP and TYPE first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.WriteExposition(w, false)
}

// WriteExposition is WritePrometheus with an exemplar switch: when
// exemplars is true, histogram bucket lines carry the OpenMetrics
// `# {trace_id="..."} value` suffix for buckets that have one. The
// exemplar-free output is byte-identical to WritePrometheus.
func (r *Registry) WriteExposition(w io.Writer, exemplars bool) error {
	r.mu.Lock()
	pre := append([]func(){}, r.pre...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, fn := range pre {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b bytes.Buffer
	for _, f := range fams {
		f.write(&b, exemplars)
	}
	_, err := w.Write(b.Bytes())
	return err
}

func (f *family) write(b *bytes.Buffer, exemplars bool) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.fn()))
		return
	}
	for _, ch := range f.sortedChildren() {
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, renderLabels(f.labels, ch.values, "", ""), formatValue(float64(ch.c.Value())))
		case kindGauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, renderLabels(f.labels, ch.values, "", ""), formatValue(ch.g.Value()))
		case kindHistogram:
			cum := ch.h.Cumulative()
			bounds := ch.h.Bounds()
			var exs []*Exemplar
			if exemplars {
				exs = ch.h.BucketExemplars()
			}
			for i, bound := range bounds {
				fmt.Fprintf(b, "%s_bucket%s %d", f.name, renderLabels(f.labels, ch.values, "le", formatValue(bound)), cum[i])
				writeExemplar(b, exs, i)
				b.WriteByte('\n')
			}
			fmt.Fprintf(b, "%s_bucket%s %d", f.name, renderLabels(f.labels, ch.values, "le", "+Inf"), cum[len(cum)-1])
			writeExemplar(b, exs, len(cum)-1)
			b.WriteByte('\n')
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, renderLabels(f.labels, ch.values, "", ""), formatValue(ch.h.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, renderLabels(f.labels, ch.values, "", ""), ch.h.Count())
		}
	}
}

// writeExemplar appends a bucket line's exemplar suffix if one exists.
func writeExemplar(b *bytes.Buffer, exs []*Exemplar, i int) {
	if i >= len(exs) {
		return
	}
	ex := exs[i]
	if ex == nil || ex.TraceID == "" {
		return
	}
	fmt.Fprintf(b, " # {trace_id=\"%s\"} %s", escapeLabel(ex.TraceID), formatValue(ex.Value))
}

// renderLabels renders {k="v",...}, optionally appending one extra pair
// (the histogram le label); it returns "" when there is nothing to show.
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// formatValue renders a sample value: integral values print as plain
// integers (scrape-friendly and golden-file-friendly), everything else in
// Go's shortest float form.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
