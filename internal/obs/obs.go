// Package obs is the serving stack's observability layer, built entirely
// on the standard library: lightweight tracing with an in-memory ring
// exporter, a Prometheus-text-exposition metrics registry, and structured
// log/slog helpers.
//
// The package deliberately mirrors the contracts of internal/telemetry —
// every mutating method is safe for concurrent use and tolerates a nil
// receiver, so instrumented call sites pay one predictable branch when
// observability is switched off. Where internal/telemetry answers "what
// happened inside one mining run", obs answers the serving questions
// around it: which request triggered the run, where its wall time went
// (admission, cache probe, ubsup prune, per-pass counting), and how the
// service behaves as a time series under scrape.
package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
)

// randHex returns n random bytes as a lower-case hex string. IDs only
// need to be unique within one process's trace ring, so the fast
// non-cryptographic generator is the right trade.
func randHex(n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := rand.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return hex.EncodeToString(b)
}

// NewRequestID mints a fresh request identifier (16 hex characters),
// the value the serving middleware assigns when a client did not send
// its own X-Request-Id.
func NewRequestID() string { return randHex(8) }

type requestIDKey struct{}

// WithRequestID stamps a request identifier into the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request identifier carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
