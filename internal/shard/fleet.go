package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/conc"
	"github.com/ossm-mining/ossm/internal/obs"
)

// Config tunes a Fleet. The zero value serves with adaptive hedging and
// no tracing or metrics callbacks.
type Config struct {
	// HedgeAfter is the latency cutoff after which the coordinator fires
	// a duplicate request at the slowest shard: 0 means adaptive (a
	// multiple of the observed p95 once enough calls are recorded),
	// negative disables hedging entirely.
	HedgeAfter time.Duration
	// Tracer, when non-nil, records one span per shard call under the
	// caller's context.
	Tracer *obs.Tracer
	// OnShardOutcome, when non-nil, is called once per shard-call event
	// with the shard id and an outcome label: "ok", "error" or
	// "overloaded" when a call completes, "hedge_fired" when a duplicate
	// is launched and "hedge_won" when the duplicate finishes first.
	// Callbacks may run concurrently.
	OnShardOutcome func(shard int, outcome string)
}

// hedgeMinCutoff floors the adaptive cutoff so microsecond-scale
// in-process fleets do not hedge every call.
const hedgeMinCutoff = 500 * time.Microsecond

// hedgeWarmup is the number of recorded calls before adaptive hedging
// arms.
const hedgeWarmup = 32

// topology is one immutable generation of the fleet: the shard set and
// the refcount that in-flight requests hold. Swapping installs a new
// topology and drains the old one's refcount — in-flight requests keep
// a consistent view for their whole lifetime.
type topology struct {
	shards []Transport
	gen    uint64
	refs   sync.WaitGroup
}

// Fleet is the scatter-gather coordinator over a set of shards: it fans
// bound (and mining) requests out over every shard, merges partial
// results by addition at the top, hedges the slowest shard past a
// latency cutoff, and swaps topologies with a graceful drain.
type Fleet struct {
	cfg Config

	mu  sync.Mutex
	top *topology
	gen uint64

	lat latencyTracker

	hedgesFired atomic.Int64
	hedgesWon   atomic.Int64
}

// NewFleet builds a coordinator over shards (at least one).
func NewFleet(cfg Config, shards []Transport) (*Fleet, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: a fleet needs at least one shard")
	}
	f := &Fleet{cfg: cfg, gen: 1}
	f.top = &topology{shards: shards, gen: 1}
	return f, nil
}

// NumShards reports the current topology's width.
func (f *Fleet) NumShards() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.top.shards)
}

// acquire pins the current topology for one request.
func (f *Fleet) acquire() *topology {
	f.mu.Lock()
	top := f.top
	top.refs.Add(1)
	f.mu.Unlock()
	return top
}

// Swap installs a new shard set and drains the old topology: it returns
// only after every request that was in flight against the previous
// generation has finished, so callers may release the old shards'
// backing memory afterwards. New requests route to the new topology
// immediately; none are dropped.
func (f *Fleet) Swap(shards []Transport) error {
	if len(shards) == 0 {
		return fmt.Errorf("shard: a fleet needs at least one shard")
	}
	f.mu.Lock()
	old := f.top
	f.gen++
	f.top = &topology{shards: shards, gen: f.gen}
	f.mu.Unlock()
	for _, t := range old.shards {
		if lt, ok := t.(LocalTransport); ok {
			lt.s.setDraining(true)
		}
	}
	old.refs.Wait()
	return nil
}

// Stats is the fleet section of the metrics report.
type Stats struct {
	Generation  uint64 `json:"generation"`
	HedgesFired int64  `json:"hedges_fired"`
	HedgesWon   int64  `json:"hedges_won"`
	Shards      []Info `json:"shards"`
}

// Describe reports the current topology and hedge counters.
func (f *Fleet) Describe() Stats {
	f.mu.Lock()
	top := f.top
	f.mu.Unlock()
	st := Stats{
		Generation:  top.gen,
		HedgesFired: f.hedgesFired.Load(),
		HedgesWon:   f.hedgesWon.Load(),
		Shards:      make([]Info, 0, len(top.shards)),
	}
	for _, t := range top.shards {
		st.Shards = append(st.Shards, t.Info())
	}
	return st
}

// note invokes the outcome callback if configured.
func (f *Fleet) note(shard int, outcome string) {
	if f.cfg.OnShardOutcome != nil {
		f.cfg.OnShardOutcome(shard, outcome)
	}
}

// Bounds answers whole-index OSSM bounds for every itemset by
// scatter-gather: each shard contributes the sum over its own segment
// range, and the coordinator merges the partials by addition in shard
// order — bit-identical to a single-index UpperBoundBatch because int64
// addition over a partition of the segment axis is exact in any
// grouping. out must have len(sets) entries.
func (f *Fleet) Bounds(ctx context.Context, sets []ossm.Itemset, out []int64) error {
	if len(out) < len(sets) {
		return fmt.Errorf("shard: Bounds needs one output slot per itemset")
	}
	top := f.acquire()
	defer top.refs.Done()
	n := len(top.shards)
	cutoff := f.hedgeCutoff()
	partials := make([][]int64, n)
	errs := make([]error, n)
	conc.Scatter(n, func(i int) {
		partials[i], errs[i] = f.callBounds(ctx, top.shards[i], cutoff, sets)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i := range sets {
		out[i] = 0
	}
	for _, part := range partials {
		for i, b := range part {
			out[i] += b
		}
	}
	return nil
}

// callBounds runs one shard's partial-bound call with hedging: if the
// primary call has not answered by the cutoff, an identical duplicate is
// fired at the same transport and the first response wins (the loser's
// result is discarded via the buffered channel). Hedging trades duplicate
// work for tail latency — exactly one response is merged either way.
func (f *Fleet) callBounds(ctx context.Context, t Transport, cutoff time.Duration, sets []ossm.Itemset) ([]int64, error) {
	info := t.Info()
	var span *obs.Span
	if f.cfg.Tracer != nil {
		// The span's context flows into the transport call so that
		// RPC-attempt spans (and, over the wire, worker-side serve
		// spans) parent under shard-N rather than the scatter span.
		ctx, span = f.cfg.Tracer.Start(ctx, fmt.Sprintf("shard-%d", info.ID))
		span.SetAttr("segments_lo", info.Segments.Lo)
		span.SetAttr("segments_hi", info.Segments.Hi)
		span.SetAttr("sets", len(sets))
	}
	type result struct {
		out   []int64
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(hedge bool) {
		go func() {
			buf := make([]int64, len(sets))
			err := t.PartialBounds(ctx, sets, buf)
			ch <- result{out: buf, err: err, hedge: hedge}
		}()
	}
	start := time.Now()
	launch(false)
	var timerC <-chan time.Time
	if cutoff > 0 {
		timer := time.NewTimer(cutoff)
		defer timer.Stop()
		timerC = timer.C
	}
	hedged := false
	var firstErr error
	outstanding := 1
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				f.lat.observe(time.Since(start))
				f.note(info.ID, "ok")
				if r.hedge {
					f.hedgesWon.Add(1)
					f.note(info.ID, "hedge_won")
				}
				if span != nil {
					span.SetAttr("hedged", hedged)
					span.SetAttr("outcome", "ok")
					span.End()
				}
				return r.out, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding > 0 {
				// The twin call is still in flight and may yet succeed.
				continue
			}
			outcome := "error"
			if errorsIsOverload(r.err) || errorsIsOverload(firstErr) {
				outcome = "overloaded"
			}
			f.note(info.ID, outcome)
			if span != nil {
				span.SetAttr("hedged", hedged)
				span.SetAttr("outcome", outcome)
				span.End()
			}
			return nil, firstErr
		case <-timerC:
			timerC = nil
			hedged = true
			outstanding++
			f.hedgesFired.Add(1)
			f.note(info.ID, "hedge_fired")
			launch(true)
		case <-ctx.Done():
			f.note(info.ID, "error")
			if span != nil {
				span.SetAttr("hedged", hedged)
				span.SetAttr("outcome", "deadline")
				span.End()
			}
			return nil, ctx.Err()
		}
	}
}

func errorsIsOverload(err error) bool {
	return errors.Is(err, ErrOverloaded)
}

// hedgeCutoff resolves the hedge latency cutoff for one request:
// explicit configuration wins; otherwise the adaptive cutoff is a
// multiple of the fleet's observed p95, floored, and armed only after a
// warmup's worth of samples.
func (f *Fleet) hedgeCutoff() time.Duration {
	if f.cfg.HedgeAfter < 0 {
		return 0
	}
	if f.cfg.HedgeAfter > 0 {
		return f.cfg.HedgeAfter
	}
	return f.lat.cutoff()
}

// latencyTracker keeps a small ring of recent shard-call latencies and a
// cached adaptive hedge cutoff (3× the ring's p95, floored), recomputed
// every refresh interval of observations rather than per call.
type latencyTracker struct {
	mu      sync.Mutex
	ring    [256]time.Duration
	n       int // total observations
	cutoffV atomic.Int64
}

func (l *latencyTracker) observe(d time.Duration) {
	l.mu.Lock()
	l.ring[l.n%len(l.ring)] = d
	l.n++
	recompute := l.n >= hedgeWarmup && l.n%32 == 0
	var sample []time.Duration
	if recompute {
		held := l.n
		if held > len(l.ring) {
			held = len(l.ring)
		}
		sample = append(sample, l.ring[:held]...)
	}
	l.mu.Unlock()
	if !recompute {
		return
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	p95 := sample[len(sample)*95/100]
	c := 3 * p95
	if c < hedgeMinCutoff {
		c = hedgeMinCutoff
	}
	l.cutoffV.Store(int64(c))
}

func (l *latencyTracker) cutoff() time.Duration {
	return time.Duration(l.cutoffV.Load())
}
