// Package shard partitions a built OSSM index into segment-range shards
// and coordinates scatter-gather serving over them (DESIGN.md §8).
//
// The refactor is lossless by construction: the OSSM bound (eq. 1) is a
// pure sum of non-negative per-segment terms, so slicing the segment
// axis into contiguous ranges and summing per-range partial bounds
// reproduces the single-map bound bit for bit. Liberty et al.'s sketch
// lower bounds (PAPERS.md) say there is no small-space shortcut around
// that exact sum, so scale has to come from scaling the exact path out —
// the same partition-then-merge decomposition Grahne & Zhu motivate for
// collections that outgrow one worker.
//
// Shards run in-process behind the Transport interface, so an HTTP shard
// client can slot in later without touching the coordinator. Each shard
// owns a contiguous columnar sub-range of the index (a zero-copy
// core.Map segment-range view) plus, when the entry has a dataset, a
// transaction slice for scatter-gather mining, and keeps its own
// health/admission state.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	ossm "github.com/ossm-mining/ossm"
)

// ErrOverloaded is returned by a shard that is at its admission cap.
var ErrOverloaded = errors.New("shard: admission cap reached")

// ErrUnavailable is returned by transports that cannot reach their
// shard at all — a dead worker, an open circuit breaker, a retry budget
// exhausted against a partitioned network. The serving layer maps it to
// 503, like ErrOverloaded, because both mean "try again later", not
// "the request was wrong".
var ErrUnavailable = errors.New("shard: unavailable")

// Range is a contiguous, half-open segment range [Lo, Hi).
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of segments in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// PartitionSegments slices [0, numSegs) into at most n contiguous
// ranges: even sizes with the remainder spread over the leading ranges,
// so uneven segment counts produce uneven shards (24 segments over 8
// shards is 3 each; 26 is 4,4,3,3,3,3,3,3). Asking for more shards than
// segments yields one shard per segment — a shard never owns an empty
// range.
func PartitionSegments(numSegs, n int) []Range {
	if n < 1 {
		n = 1
	}
	if n > numSegs {
		n = numSegs
	}
	out := make([]Range, 0, n)
	base, rem := numSegs/n, numSegs%n
	lo := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// Info is one shard's row of the fleet topology (GET /v1/indexes).
type Info struct {
	ID       int    `json:"shard"`
	Segments Range  `json:"segments"`
	State    string `json:"state"` // healthy | draining
	Inflight int64  `json:"inflight"`
	Requests int64  `json:"requests"`
	Rejected int64  `json:"rejected,omitempty"`
	// NumTx is the shard's transaction-slice size when the shard can
	// take part in scatter-gather mining, 0 otherwise.
	NumTx int `json:"num_tx,omitempty"`
}

// Transport is the coordinator's view of one shard. The in-process
// implementation is LocalTransport; an HTTP shard client implements the
// same contract to move shards out of process.
type Transport interface {
	// Info reports the shard's identity, range and health/admission
	// state.
	Info() Info
	// PartialBounds writes the shard's partial OSSM bound — the sum over
	// its segment range only — for every itemset into out, which has
	// len(sets) entries. Merging the fleet's partials by addition yields
	// the exact whole-index bound.
	PartialBounds(ctx context.Context, sets []ossm.Itemset, out []int64) error
	// CanMine reports whether the shard holds a transaction slice and
	// can serve the mining scatter phases.
	CanMine() bool
	// NumTx is the shard's transaction-slice size (0 when !CanMine).
	NumTx() int
	// LocalFrequent mines the shard's transaction slice with the named
	// miner at the shard-scaled threshold and returns every locally
	// frequent itemset. By the pigeonhole argument of Savasere et al.'s
	// Partition (the repo's internal/partition miner uses the same
	// bound), every globally frequent itemset is locally frequent in at
	// least one shard, so the union of these lists is a superset of the
	// global answer.
	LocalFrequent(ctx context.Context, miner string, localMin int64, maxLen int) ([]ossm.Itemset, error)
	// PartialSupports writes each candidate's exact support within the
	// shard's transaction slice into out (len(cands) entries). Supports
	// over disjoint slices merge by addition.
	PartialSupports(ctx context.Context, cands []ossm.Itemset, out []int64) error
}

// Shard is one in-process segment-range shard: a zero-copy view of the
// parent index plus admission bookkeeping.
type Shard struct {
	id  int
	rng Range
	ix  *ossm.Index   // segment-range view [rng.Lo, rng.Hi)
	d   *ossm.Dataset // transaction slice for mining, may be nil

	maxInflight int64
	inflight    atomic.Int64
	draining    atomic.Bool
	requests    atomic.Int64
	rejected    atomic.Int64
}

// NewLocalShards slices ix into n segment-range shards. When d is
// non-nil the dataset's transactions are partitioned evenly across the
// same shards (the mining substrate; the transaction split is
// independent of the segment split — support counting is a sum over any
// partition of the transactions). maxInflight caps concurrent partial
// calls per shard (0 = unlimited).
func NewLocalShards(ix *ossm.Index, d *ossm.Dataset, n, maxInflight int) ([]*Shard, error) {
	if ix == nil {
		return nil, fmt.Errorf("shard: NewLocalShards requires an index")
	}
	ranges := PartitionSegments(ix.NumSegments(), n)
	shards := make([]*Shard, len(ranges))
	txRanges := make([]Range, len(ranges))
	if d != nil {
		txRanges = PartitionSegments(d.NumTx(), len(ranges))
	}
	for i, rng := range ranges {
		view, err := ix.SegmentRange(rng.Lo, rng.Hi)
		if err != nil {
			return nil, err
		}
		s := &Shard{id: i, rng: rng, ix: view, maxInflight: int64(maxInflight)}
		if d != nil && txRanges[i].Len() > 0 {
			s.d = d.Slice(txRanges[i].Lo, txRanges[i].Hi)
		}
		shards[i] = s
	}
	return shards, nil
}

// Transports wraps shards in their in-process transports.
func Transports(shards []*Shard) []Transport {
	out := make([]Transport, len(shards))
	for i, s := range shards {
		out[i] = LocalTransport{s}
	}
	return out
}

// admit reserves an admission slot, or fails with ErrOverloaded.
func (s *Shard) admit() error {
	n := s.inflight.Add(1)
	if s.maxInflight > 0 && n > s.maxInflight {
		s.inflight.Add(-1)
		s.rejected.Add(1)
		return fmt.Errorf("%w: shard %d at %d in-flight requests", ErrOverloaded, s.id, s.maxInflight)
	}
	s.requests.Add(1)
	return nil
}

func (s *Shard) release() { s.inflight.Add(-1) }

// setDraining flips the shard's reported health state; a draining shard
// keeps answering until the topology holding it is released.
func (s *Shard) setDraining(v bool) { s.draining.Store(v) }

// Info reports the shard's current state.
func (s *Shard) Info() Info {
	state := "healthy"
	if s.draining.Load() {
		state = "draining"
	}
	info := Info{
		ID:       s.id,
		Segments: s.rng,
		State:    state,
		Inflight: s.inflight.Load(),
		Requests: s.requests.Load(),
		Rejected: s.rejected.Load(),
	}
	if s.d != nil {
		info.NumTx = s.d.NumTx()
	}
	return info
}

// LocalTransport serves a Shard in-process.
type LocalTransport struct{ s *Shard }

// Info implements Transport.
func (t LocalTransport) Info() Info { return t.s.Info() }

// CanMine implements Transport.
func (t LocalTransport) CanMine() bool { return t.s.d != nil }

// NumTx implements Transport.
func (t LocalTransport) NumTx() int {
	if t.s.d == nil {
		return 0
	}
	return t.s.d.NumTx()
}

// PartialBounds implements Transport with the index view's row-amortized
// batch kernel over the shard's segment range.
func (t LocalTransport) PartialBounds(ctx context.Context, sets []ossm.Itemset, out []int64) error {
	if err := t.s.admit(); err != nil {
		return err
	}
	defer t.s.release()
	if err := ctx.Err(); err != nil {
		return err
	}
	t.s.ix.UpperBoundBatch(sets, out)
	return nil
}

// LocalFrequent implements Transport: one single-worker mining run over
// the shard's transaction slice (shard-level parallelism replaces
// worker-level parallelism inside a fleet).
func (t LocalTransport) LocalFrequent(ctx context.Context, miner string, localMin int64, maxLen int) ([]ossm.Itemset, error) {
	if t.s.d == nil {
		return nil, fmt.Errorf("shard %d has no transaction slice; cannot mine", t.s.id)
	}
	if err := t.s.admit(); err != nil {
		return nil, err
	}
	defer t.s.release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := ossm.MineAt(miner, t.s.d, localMin, ossm.MineOptions{MaxLen: maxLen})
	if err != nil {
		return nil, err
	}
	all := res.All()
	sets := make([]ossm.Itemset, len(all))
	for i, c := range all {
		sets[i] = c.Items
	}
	return sets, nil
}

// PartialSupports implements Transport with an exact linear scan of the
// shard's transaction slice.
func (t LocalTransport) PartialSupports(ctx context.Context, cands []ossm.Itemset, out []int64) error {
	if t.s.d == nil {
		return fmt.Errorf("shard %d has no transaction slice; cannot count", t.s.id)
	}
	if err := t.s.admit(); err != nil {
		return err
	}
	defer t.s.release()
	for i, x := range cands {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		out[i] = int64(t.s.d.Support(x))
	}
	return nil
}
