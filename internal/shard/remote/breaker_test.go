package remote

import (
	"errors"
	"testing"
	"time"
)

// clockedBreaker pairs a breaker with a manual clock.
func clockedBreaker(cfg BreakerConfig) (*breaker, *time.Time) {
	b := newBreaker(cfg)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	return b, &now
}

// callOutcome places one admitted call and settles it; it fails the test
// if the breaker rejects.
func callOutcome(t *testing.T, b *breaker, ok bool) {
	t.Helper()
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow() rejected: %v", err)
	}
	done(ok)
}

func TestBreakerTransitionTable(t *testing.T) {
	const cooldown = time.Second
	// Step ops: "ok" and "fail" place and settle a call, "reject" asserts
	// Allow refuses, "advance" moves the clock, "state" asserts State().
	type step struct {
		op   string
		d    time.Duration
		want BreakerState
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"trips after consecutive failures", []step{
			{op: "fail"}, {op: "fail"}, {op: "state", want: BreakerClosed},
			{op: "fail"}, {op: "state", want: BreakerOpen},
			{op: "reject"},
		}},
		{"a success resets the failure count", []step{
			{op: "fail"}, {op: "fail"}, {op: "ok"},
			{op: "fail"}, {op: "fail"}, {op: "state", want: BreakerClosed},
			{op: "fail"}, {op: "state", want: BreakerOpen},
		}},
		{"cooldown admits a probe and success closes", []step{
			{op: "fail"}, {op: "fail"}, {op: "fail"},
			{op: "reject"},
			{op: "advance", d: cooldown},
			{op: "state", want: BreakerHalfOpen},
			{op: "ok"}, {op: "state", want: BreakerClosed},
		}},
		{"probe failure re-opens and restarts the cooldown", []step{
			{op: "fail"}, {op: "fail"}, {op: "fail"},
			{op: "advance", d: cooldown},
			{op: "fail"}, // the half-open probe fails
			{op: "state", want: BreakerOpen},
			{op: "reject"},
			{op: "advance", d: cooldown / 2}, {op: "reject"},
			{op: "advance", d: cooldown / 2},
			{op: "ok"}, {op: "state", want: BreakerClosed},
		}},
		{"closed breaker needs threshold fresh failures after recovery", []step{
			{op: "fail"}, {op: "fail"}, {op: "fail"},
			{op: "advance", d: cooldown}, {op: "ok"},
			{op: "fail"}, {op: "fail"}, {op: "state", want: BreakerClosed},
			{op: "fail"}, {op: "state", want: BreakerOpen},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, now := clockedBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: cooldown})
			for i, st := range tc.steps {
				switch st.op {
				case "ok", "fail":
					callOutcome(t, b, st.op == "ok")
				case "reject":
					if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
						t.Fatalf("step %d: Allow() = %v, want ErrBreakerOpen", i, err)
					}
				case "advance":
					*now = now.Add(st.d)
				case "state":
					if got := b.State(); got != st.want {
						t.Fatalf("step %d: State() = %v, want %v", i, got, st.want)
					}
				default:
					t.Fatalf("step %d: unknown op %q", i, st.op)
				}
			}
		})
	}
}

func TestBreakerHalfOpenProbeIsSingleFlight(t *testing.T) {
	b, now := clockedBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	callOutcome(t, b, false) // trip
	*now = now.Add(time.Second)

	probe, err := b.Allow()
	if err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	// While the probe is in flight every other caller is rejected.
	for i := 0; i < 3; i++ {
		if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("concurrent Allow() = %v, want ErrBreakerOpen", err)
		}
	}
	probe(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after successful probe State() = %v, want closed", got)
	}
	callOutcome(t, b, true)
}

func TestBreakerStaleClosedOutcomeCannotFlapOpenState(t *testing.T) {
	b, _ := clockedBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Second})
	stale, err := b.Allow() // admitted while closed, settles late
	if err != nil {
		t.Fatal(err)
	}
	callOutcome(t, b, false)
	callOutcome(t, b, false) // trips open
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("State() = %v, want open", got)
	}
	stale(true) // a success from the closed era must not close an open breaker
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after stale outcome State() = %v, want open", got)
	}
}

func TestBreakerOnChangeSeesOrderedTransitions(t *testing.T) {
	var seen []BreakerState
	b, now := clockedBreaker(BreakerConfig{
		FailureThreshold: 2,
		Cooldown:         time.Second,
		OnChange:         func(s BreakerState) { seen = append(seen, s) },
	})
	callOutcome(t, b, false)
	callOutcome(t, b, false) // -> open
	*now = now.Add(time.Second)
	callOutcome(t, b, false) // -> half-open -> open
	*now = now.Add(time.Second)
	callOutcome(t, b, true) // -> half-open -> closed

	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seen, want)
		}
	}
}

func TestBreakerStateStrings(t *testing.T) {
	pairs := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
		BreakerState(9): "unknown",
	}
	for s, want := range pairs {
		if got := s.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
