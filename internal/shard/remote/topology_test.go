package remote

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseTopology(t *testing.T) {
	cases := []struct {
		name    string
		raw     string
		wantN   int
		wantErr string // substring of the error, "" = success
	}{
		{
			name:  "two shards in order",
			raw:   `{"shards":[{"id":0,"addr":"127.0.0.1:7801"},{"id":1,"addr":"127.0.0.1:7802"}]}`,
			wantN: 2,
		},
		{
			name:  "ids out of file order are sorted",
			raw:   `{"shards":[{"id":1,"addr":"b:1"},{"id":0,"addr":"a:1"}]}`,
			wantN: 2,
		},
		{
			name:  "full urls accepted",
			raw:   `{"shards":[{"id":0,"addr":"http://worker-0.local:7801"}]}`,
			wantN: 1,
		},
		{
			name:    "empty shard list",
			raw:     `{"shards":[]}`,
			wantErr: "no shards",
		},
		{
			name:    "gap in ids",
			raw:     `{"shards":[{"id":0,"addr":"a:1"},{"id":2,"addr":"b:1"}]}`,
			wantErr: "outside [0, 2)",
		},
		{
			name:    "duplicate id",
			raw:     `{"shards":[{"id":0,"addr":"a:1"},{"id":0,"addr":"b:1"}]}`,
			wantErr: "listed twice",
		},
		{
			name:    "negative id",
			raw:     `{"shards":[{"id":-1,"addr":"a:1"}]}`,
			wantErr: "outside",
		},
		{
			name:    "empty addr",
			raw:     `{"shards":[{"id":0,"addr":""}]}`,
			wantErr: "shard 0",
		},
		{
			name:    "unsupported scheme",
			raw:     `{"shards":[{"id":0,"addr":"ftp://a:1"}]}`,
			wantErr: "shard 0",
		},
		{
			name:    "unknown field rejected",
			raw:     `{"shards":[{"id":0,"addr":"a:1"}],"replicas":2}`,
			wantErr: "unknown field",
		},
		{
			name:    "not json",
			raw:     `shards: [0]`,
			wantErr: "parsing topology",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := ParseTopology([]byte(tc.raw))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if topo.NumShards() != tc.wantN {
				t.Fatalf("NumShards() = %d, want %d", topo.NumShards(), tc.wantN)
			}
			for i, s := range topo.Shards {
				if s.ID != i {
					t.Fatalf("Shards[%d].ID = %d, want sorted by id", i, s.ID)
				}
			}
		})
	}
}

func TestLoadTopologyAndTransports(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	raw := `{"shards":[{"id":0,"addr":"127.0.0.1:7801"},{"id":1,"addr":"http://127.0.0.1:7802"}]}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	transports, err := topo.Transports("retail", ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(transports) != 2 {
		t.Fatalf("got %d transports, want 2", len(transports))
	}
	for i, tr := range transports {
		c, ok := tr.(*Client)
		if !ok {
			t.Fatalf("transport %d is %T, want *Client", i, tr)
		}
		if c.id != i {
			t.Fatalf("client %d has id %d", i, c.id)
		}
	}
	// Both clients share one connection pool.
	c0, c1 := transports[0].(*Client), transports[1].(*Client)
	if c0.http != c1.http {
		t.Fatal("topology clients do not share the HTTP connection pool")
	}

	if _, err := LoadTopology(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("LoadTopology on a missing file succeeded")
	}
}
