package remote

import (
	"context"
	"math/rand"
	"testing"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/shard"
)

// TestRemoteBoundsDifferential pins the remote fleet's answers to the
// local fleet's and the unsharded index's, bit for bit, across every
// segmenter and uneven shard counts. The partition is lossless by
// construction (the OSSM bound is a sum of per-segment terms), and the
// wire must not break that: JSON carries int64 supports exactly, and
// merging is the same int64 addition in shard order.
func TestRemoteBoundsDifferential(t *testing.T) {
	algos := []struct {
		name string
		algo ossm.Algorithm
	}{
		{"Random", ossm.Random},
		{"RC", ossm.RC},
		{"Greedy", ossm.Greedy},
		{"RandomRC", ossm.RandomRC},
		{"RandomGreedy", ossm.RandomGreedy},
	}
	// 26 segments over {1, 3, 4, 7} shards: every count but 1 divides
	// unevenly, so leading shards own one segment more than trailing ones.
	counts := []int{1, 3, 4, 7}
	for _, tc := range algos {
		t.Run(tc.name, func(t *testing.T) {
			d, ix := fixture(t, 1500, 26, tc.algo, 11)
			r := rand.New(rand.NewSource(29))
			sets := randomSets(r, ix.NumItems(), 96)
			want := make([]int64, len(sets))
			ix.UpperBoundBatch(sets, want)

			for _, n := range counts {
				locals, err := shard.NewLocalShards(ix, d, n, 0)
				if err != nil {
					t.Fatal(err)
				}
				localFleet, err := shard.NewFleet(shard.Config{HedgeAfter: -1}, shard.Transports(locals))
				if err != nil {
					t.Fatal(err)
				}
				rf := startRemoteFleet(t, "retail", ix, d, n, ClientConfig{})
				remoteFleet, err := shard.NewFleet(shard.Config{HedgeAfter: -1}, rf.transports())
				if err != nil {
					t.Fatal(err)
				}

				gotLocal := make([]int64, len(sets))
				if err := localFleet.Bounds(context.Background(), sets, gotLocal); err != nil {
					t.Fatalf("%d shards local: %v", n, err)
				}
				gotRemote := make([]int64, len(sets))
				if err := remoteFleet.Bounds(context.Background(), sets, gotRemote); err != nil {
					t.Fatalf("%d shards remote: %v", n, err)
				}
				for i := range sets {
					if gotLocal[i] != want[i] {
						t.Fatalf("%s/%d shards: local fleet bound[%d] = %d, unsharded %d (itemset %v)",
							tc.name, n, i, gotLocal[i], want[i], sets[i])
					}
					if gotRemote[i] != want[i] {
						t.Fatalf("%s/%d shards: remote fleet bound[%d] = %d, unsharded %d (itemset %v)",
							tc.name, n, i, gotRemote[i], want[i], sets[i])
					}
				}
			}
		})
	}
}

// TestRemoteMineDifferential pins the remote fleet's scatter-gather
// mining answers to a single-node reference mine and to the local
// fleet: same itemsets, same exact supports.
func TestRemoteMineDifferential(t *testing.T) {
	d, ix := fixture(t, 1200, 24, ossm.RandomGreedy, 5)
	minCount := ossm.MinCountFor(d, 0.04)
	ref, err := ossm.MineAt("apriori", d, minCount, ossm.MineOptions{MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	for _, c := range ref.All() {
		want[c.Items.String()] = c.Count
	}

	for _, n := range []int{1, 3, 4} {
		locals, err := shard.NewLocalShards(ix, d, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		localFleet, err := shard.NewFleet(shard.Config{HedgeAfter: -1}, shard.Transports(locals))
		if err != nil {
			t.Fatal(err)
		}
		rf := startRemoteFleet(t, "retail", ix, d, n, ClientConfig{})
		remoteFleet, err := shard.NewFleet(shard.Config{HedgeAfter: -1}, rf.transports())
		if err != nil {
			t.Fatal(err)
		}
		for fleetName, fl := range map[string]*shard.Fleet{"local": localFleet, "remote": remoteFleet} {
			res, err := fl.Mine(context.Background(), shard.MineConfig{
				Miner: "apriori", MinCount: minCount, MaxLen: 3,
			})
			if err != nil {
				t.Fatalf("%s fleet of %d: Mine: %v", fleetName, n, err)
			}
			if len(res.Frequent) != len(want) {
				t.Fatalf("%s fleet of %d: %d frequent itemsets, reference has %d",
					fleetName, n, len(res.Frequent), len(want))
			}
			for _, c := range res.Frequent {
				if want[c.Items.String()] != c.Count {
					t.Fatalf("%s fleet of %d: support(%v) = %d, reference %d",
						fleetName, n, c.Items, c.Count, want[c.Items.String()])
				}
			}
		}
	}
}

// TestRemoteSupportsDifferential pins the gather phase's partial
// supports: summed over the remote fleet they must equal the dataset's
// exact supports.
func TestRemoteSupportsDifferential(t *testing.T) {
	d, ix := fixture(t, 1000, 20, ossm.RC, 13)
	r := rand.New(rand.NewSource(31))
	cands := randomSets(r, ix.NumItems(), 40)

	rf := startRemoteFleet(t, "retail", ix, d, 3, ClientConfig{})
	sum := make([]int64, len(cands))
	for _, c := range rf.clients {
		part := make([]int64, len(cands))
		if err := c.PartialSupports(context.Background(), cands, part); err != nil {
			t.Fatal(err)
		}
		for i := range sum {
			sum[i] += part[i]
		}
	}
	for i, x := range cands {
		if want := int64(d.Support(x)); sum[i] != want {
			t.Fatalf("summed support(%v) = %d, dataset says %d", x, sum[i], want)
		}
	}
}
