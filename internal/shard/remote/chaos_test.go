package remote

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/obs"
	"github.com/ossm-mining/ossm/internal/shard"
)

// breakerLog records per-shard breaker transitions, race-safely.
type breakerLog struct {
	mu  sync.Mutex
	seq map[int][]BreakerState
}

func newBreakerLog() *breakerLog { return &breakerLog{seq: map[int][]BreakerState{}} }

func (l *breakerLog) hooks() Hooks {
	return Hooks{OnBreaker: func(shardID int, s BreakerState) {
		l.mu.Lock()
		l.seq[shardID] = append(l.seq[shardID], s)
		l.mu.Unlock()
	}}
}

func (l *breakerLog) saw(shardID int, want BreakerState) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.seq[shardID] {
		if s == want {
			return true
		}
	}
	return false
}

func (l *breakerLog) last(shardID int) (BreakerState, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.seq[shardID]
	if len(seq) == 0 {
		return 0, false
	}
	return seq[len(seq)-1], true
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosSoak runs a mixed query/mine/control load against a 4-shard
// remote fleet while faults come and go: latency jitter and a 5% error
// rate on three shards, one shard wedged solid mid-run, a topology swap
// to fresh clients while the wedge is live, then recovery. It asserts
// the three things a chaotic fleet owes its callers: no request gets
// stuck (every worker goroutine joins), no answer is stale or corrupt
// (every success is bit-identical to the unsharded reference), and the
// breaker on the wedged shard walks open -> half-open -> closed once
// the shard heals.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	const numShards = 4
	d, ix := fixture(t, 900, 24, ossm.RandomGreedy, 7)

	// Reference answers, computed unsharded up front.
	r := rand.New(rand.NewSource(41))
	pool := make([][]ossm.Itemset, 16)
	ref := make([][]int64, len(pool))
	for i := range pool {
		pool[i] = randomSets(r, ix.NumItems(), 12)
		ref[i] = make([]int64, len(pool[i]))
		ix.UpperBoundBatch(pool[i], ref[i])
	}
	minCount := ossm.MinCountFor(d, 0.05)
	refMine, err := ossm.MineAt("apriori", d, minCount, ossm.MineOptions{MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantMine := map[string]int64{}
	for _, c := range refMine.All() {
		wantMine[c.Items.String()] = c.Count
	}

	// Generation 1 clients, with their own breaker log. The coordinator
	// tracer is shared by the fleet and both client generations, so the
	// post-soak trace verification sees the full scatter → rpc chain.
	coordTracer := obs.NewTracer(8192)
	log1 := newBreakerLog()
	mkCfg := func(l *breakerLog, seed int64) ClientConfig {
		return ClientConfig{
			CallTimeout: 150 * time.Millisecond,
			MaxRetries:  1,
			RetryBase:   time.Millisecond,
			RetryCap:    4 * time.Millisecond,
			Breaker:     BreakerConfig{FailureThreshold: 3, Cooldown: 40 * time.Millisecond},
			Hooks:       l.hooks(),
			Seed:        seed,
			Tracer:      coordTracer,
		}
	}
	rf := startRemoteFleet(t, "retail", ix, d, numShards, mkCfg(log1, 1))
	fl, err := shard.NewFleet(shard.Config{HedgeAfter: -1, Tracer: coordTracer}, rf.transports())
	if err != nil {
		t.Fatal(err)
	}

	var (
		stop    = make(chan struct{})
		phase   atomic.Int32 // 0 = healthy-ish, 1 = wedged, 2 = recovered
		earlyOK atomic.Int64
		lateOK  atomic.Int64
		mineOK  atomic.Int64
		wg      sync.WaitGroup
	)
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	scoreOne := func() {
		switch phase.Load() {
		case 0:
			earlyOK.Add(1)
		case 2:
			lateOK.Add(1)
		}
	}

	// 32 query goroutines: random pooled batch, tight per-call deadline,
	// every success checked against the precomputed reference.
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(g) + 100))
			for !stopped() {
				i := rr.Intn(len(pool))
				ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
				got := make([]int64, len(pool[i]))
				err := fl.Bounds(ctx, pool[i], got)
				cancel()
				if err != nil {
					continue
				}
				for j := range got {
					if got[j] != ref[i][j] {
						t.Errorf("stale/corrupt bound: batch %d item %d = %d, want %d", i, j, got[j], ref[i][j])
						return
					}
				}
				scoreOne()
			}
		}(g)
	}
	// 6 mine goroutines: full scatter-gather mining under chaos.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped() {
				ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
				res, err := fl.Mine(ctx, shard.MineConfig{Miner: "apriori", MinCount: minCount, MaxLen: 3})
				cancel()
				if err != nil {
					continue
				}
				if len(res.Frequent) != len(wantMine) {
					t.Errorf("mine under chaos: %d itemsets, want %d", len(res.Frequent), len(wantMine))
					return
				}
				for _, c := range res.Frequent {
					if wantMine[c.Items.String()] != c.Count {
						t.Errorf("mine under chaos: support(%v) = %d, want %d", c.Items, c.Count, wantMine[c.Items.String()])
						return
					}
				}
				mineOK.Add(1)
			}
		}()
	}
	// 2 describe goroutines: the control plane must stay responsive.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped() {
				if st := fl.Describe(); len(st.Shards) != numShards {
					t.Errorf("Describe() lists %d shards, want %d", len(st.Shards), numShards)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Phase 0: mild chaos on shards 0-2 — latency jitter plus 5% errors.
	for i := 0; i < 3; i++ {
		rf.faults[i].SetLatency(0, 3*time.Millisecond)
		rf.faults[i].SetErrorRate(0.05)
	}
	waitFor(t, "successes under mild chaos", 5*time.Second, func() bool { return earlyOK.Load() > 20 })

	// Phase 1: wedge shard 3 solid; its breaker must trip open.
	phase.Store(1)
	rf.faults[numShards-1].SetHung(true)
	waitFor(t, "gen-1 breaker on the wedged shard to open", 5*time.Second, func() bool {
		return log1.saw(numShards-1, BreakerOpen)
	})

	// Mid-soak topology swap: fresh generation-2 clients at the same
	// workers (what a SIGHUP reload does). The wedge is still live, so
	// the new shard-3 client must discover it and trip its own breaker.
	log2 := newBreakerLog()
	gen2 := make([]shard.Transport, numShards)
	for i, srv := range rf.servers {
		c, err := NewClient(i, srv.URL, "retail", mkCfg(log2, 2))
		if err != nil {
			t.Fatal(err)
		}
		gen2[i] = c
	}
	if err := fl.Swap(gen2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "gen-2 breaker on the wedged shard to open", 5*time.Second, func() bool {
		return log2.saw(numShards-1, BreakerOpen)
	})

	// Phase 2: heal the wedge; the gen-2 breaker must walk half-open ->
	// closed, and queries must succeed again.
	rf.faults[numShards-1].SetHung(false)
	waitFor(t, "gen-2 breaker to recover via half-open", 5*time.Second, func() bool {
		last, ok := log2.last(numShards - 1)
		return ok && last == BreakerClosed && log2.saw(numShards-1, BreakerHalfOpen)
	})
	phase.Store(2)
	waitFor(t, "successes after recovery", 5*time.Second, func() bool { return lateOK.Load() > 20 })
	waitFor(t, "at least one successful mine", 5*time.Second, func() bool { return mineOK.Load() > 0 })

	// No stuck requests: everyone joins promptly once asked to stop.
	close(stop)
	joined := make(chan struct{})
	go func() { wg.Wait(); close(joined) }()
	select {
	case <-joined:
	case <-time.After(10 * time.Second):
		t.Fatal("worker goroutines did not join: a request is stuck")
	}

	if mineOK.Load() == 0 {
		t.Error("no mine ever succeeded during the soak")
	}
	t.Logf("soak: earlyOK=%d lateOK=%d mineOK=%d gen1(shard3)=%v gen2(shard3)=%v",
		earlyOK.Load(), lateOK.Load(), mineOK.Load(), log1.seq[numShards-1], log2.seq[numShards-1])

	// Trace verification: with every fault cleared, a handful of traced
	// scatters must each assemble into a tree carrying, for every
	// (non-faulted) shard, at least one worker serve span correctly
	// parented under that shard's RPC span — the cross-process propagation
	// survived the chaos, the swap and the recovery.
	for _, f := range rf.faults {
		f.SetHung(false)
		f.SetErrorRate(0)
		f.SetLatency(0, 0)
	}
	const verifyRounds = 5
	var baseline []int64
	for _, wt := range rf.tracers {
		_, _, total, _ := wt.Stats()
		baseline = append(baseline, total)
	}
	for round := 0; round < verifyRounds; round++ {
		ctx, scatter := coordTracer.Start(context.Background(), "chaos-verify-scatter")
		ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		got := make([]int64, len(pool[0]))
		err := fl.Bounds(ctx, pool[0], got)
		cancel()
		scatter.End()
		if err != nil {
			t.Fatalf("verify round %d: %v", round, err)
		}
	}
	// The worker records its serve span after the response is on the
	// wire, so the last round's spans may land a beat after Bounds
	// returns.
	for i, wt := range rf.tracers {
		i, wt := i, wt
		waitFor(t, "worker serve spans to land", 5*time.Second, func() bool {
			_, _, total, _ := wt.Stats()
			return total >= baseline[i]+verifyRounds
		})
	}
	spans := coordTracer.Snapshot()
	for _, wt := range rf.tracers {
		spans = append(spans, wt.Snapshot()...)
	}
	verified := 0
	for _, root := range obs.BuildTraces(spans, 0) {
		if root.Name != "chaos-verify-scatter" {
			continue
		}
		verified++
		shardsLinked := map[int]bool{}
		var walk func(n *obs.TraceNode)
		walk = func(n *obs.TraceNode) {
			if n.Name == "rpc-bounds" {
				id, _ := n.Attrs["shard"].(int)
				for _, c := range n.Children {
					if c.Name == "serve /shard/v1/bounds" {
						if c.ParentID != n.SpanID || c.TraceID != root.TraceID {
							t.Errorf("serve span misparented: parent %s != rpc %s", c.ParentID, n.SpanID)
						}
						shardsLinked[id] = true
					}
				}
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(root)
		if len(shardsLinked) != numShards {
			t.Errorf("scatter %s links worker spans for %d/%d shards: %v",
				root.TraceID, len(shardsLinked), numShards, shardsLinked)
		}
	}
	if verified != verifyRounds {
		t.Errorf("assembled %d chaos-verify-scatter trees, want %d", verified, verifyRounds)
	}
}
