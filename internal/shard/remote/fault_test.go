package remote

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/shard"
)

// faultFixture wraps one local shard in a Fault for direct (no-wire)
// injection tests.
func faultFixture(t *testing.T, cfg FaultConfig) (*Fault, []ossm.Itemset) {
	t.Helper()
	d, ix := fixture(t, 400, 8, ossm.RandomGreedy, 3)
	locals, err := shard.NewLocalShards(ix, d, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	return NewFault(shard.Transports(locals)[0], cfg), randomSets(r, ix.NumItems(), 8)
}

func boundsErr(f *Fault, ctx context.Context, sets []ossm.Itemset) error {
	out := make([]int64, len(sets))
	return f.PartialBounds(ctx, sets, out)
}

func TestFaultErrorScheduleIsDeterministic(t *testing.T) {
	run := func() []bool {
		f, sets := faultFixture(t, FaultConfig{Seed: 99, ErrorRate: 0.5})
		var outcomes []bool
		for i := 0; i < 40; i++ {
			outcomes = append(outcomes, boundsErr(f, context.Background(), sets) == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	var failed int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: first run ok=%v, second run ok=%v — schedule not deterministic", i, a[i], b[i])
		}
		if !a[i] {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Fatalf("error rate 0.5 over %d calls injected %d errors — draw looks broken", len(a), failed)
	}
}

func TestFaultInjectedErrorsAreRecognizable(t *testing.T) {
	f, sets := faultFixture(t, FaultConfig{ErrorRate: 1})
	err := boundsErr(f, context.Background(), sets)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	st := f.Stats()
	if st.Calls != 1 || st.InjectedErrors != 1 {
		t.Fatalf("stats = %+v, want 1 call / 1 injected error", st)
	}
}

func TestFaultHangHonorsContext(t *testing.T) {
	f, sets := faultFixture(t, FaultConfig{})
	f.SetHung(true)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := boundsErr(f, ctx, sets)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hung call took %v despite a 20ms context", elapsed)
	}
	if st := f.Stats(); st.InjectedHangs != 1 {
		t.Fatalf("stats = %+v, want 1 injected hang", st)
	}
	// Unhang: service restored.
	f.SetHung(false)
	if err := boundsErr(f, context.Background(), sets); err != nil {
		t.Fatalf("after SetHung(false): %v", err)
	}
}

func TestFaultScheduledPartitionWindows(t *testing.T) {
	// Cycle of 5 with the last 2 dropped: calls 4,5,9,10,14,15,... fail.
	f, sets := faultFixture(t, FaultConfig{PartitionEvery: 5, PartitionFor: 2})
	for i := 1; i <= 15; i++ {
		err := boundsErr(f, context.Background(), sets)
		inWindow := (i-1)%5 >= 3
		if inWindow && !errors.Is(err, ErrPartitioned) {
			t.Fatalf("call %d: err = %v, want ErrPartitioned", i, err)
		}
		if !inWindow && err != nil {
			t.Fatalf("call %d: err = %v, want success outside the window", i, err)
		}
	}
	if st := f.Stats(); st.PartitionDrops != 6 {
		t.Fatalf("stats = %+v, want 6 partition drops over 3 cycles", st)
	}
}

func TestFaultRuntimePartitionAndHeal(t *testing.T) {
	f, sets := faultFixture(t, FaultConfig{})
	f.SetPartitioned(true)
	if err := boundsErr(f, context.Background(), sets); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned err = %v, want ErrPartitioned", err)
	}
	// ErrPartitioned wraps ErrInjected so callers can treat all chaos alike.
	if err := boundsErr(f, context.Background(), sets); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned err = %v, want it to wrap ErrInjected", err)
	}
	f.SetPartitioned(false)
	if err := boundsErr(f, context.Background(), sets); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestFaultLatencyDelaysButPreservesAnswers(t *testing.T) {
	d, ix := fixture(t, 400, 8, ossm.RandomGreedy, 3)
	locals, err := shard.NewLocalShards(ix, d, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFault(shard.Transports(locals)[0], FaultConfig{Latency: 30 * time.Millisecond})
	r := rand.New(rand.NewSource(17))
	sets := randomSets(r, ix.NumItems(), 8)
	want := make([]int64, len(sets))
	ix.UpperBoundBatch(sets, want)

	start := time.Now()
	got := make([]int64, len(sets))
	if err := f.PartialBounds(context.Background(), sets, got); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("call returned in %v, want >= 30ms injected latency", elapsed)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bound[%d] = %d, want %d — latency must not corrupt data", i, got[i], want[i])
		}
	}
	// Identity calls bypass injection entirely.
	if seg := f.Info().Segments; seg.Hi-seg.Lo != ix.NumSegments() {
		t.Fatalf("Info() passthrough broken: segments %+v", seg)
	}
	if !f.CanMine() || f.NumTx() != d.NumTx() {
		t.Fatalf("CanMine/NumTx passthrough broken")
	}
}
