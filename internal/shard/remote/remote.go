// Package remote moves shards out of process: an HTTP transport for the
// scatter-gather fleet in internal/shard (DESIGN.md §8).
//
// The shard side is a Worker — a small HTTP handler that serves any
// shard.Transport (in practice one segment-range LocalTransport per
// registered index) under /shard/v1/{info,bounds,frequent,supports}
// with JSON bodies reusing the coordinator's wire types. The
// coordinator side is a Client, which implements shard.Transport over
// pooled keep-alive connections, so a fleet of Clients slots straight
// into shard.Fleet — the coordinator never learns whether a shard is a
// goroutine or a machine.
//
// Networks fail in ways in-process calls cannot, and the fleet's
// hedging/admission machinery was built for exactly that regime, so the
// Client owns the failure handling the wire demands: a per-attempt
// timeout, bounded retry with jittered exponential backoff (every shard
// RPC is an idempotent read — partial bounds, partial supports and
// local mining are pure functions of the shard's slice), and a
// closed/open/half-open circuit breaker per shard that fails fast while
// a worker is down and probes it back to health with a single in-flight
// request. Breaker state is overlaid on Info so the coordinator's
// health view (GET /v1/indexes) reports it without an extra RPC.
//
// Fault is the package's test-and-chaos workhorse: a Transport
// decorator with deterministically seeded latency, error, hang and
// partition injection that wraps either side of the wire — under a
// Worker it makes a real HTTP shard misbehave; over a Client it
// exercises the coordinator alone.
package remote

import (
	"errors"
	"fmt"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/obs"
	"github.com/ossm-mining/ossm/internal/shard"
)

// Cross-process correlation headers. Every client RPC carries the
// coordinator's request id and the current span's traceparent
// (obs.TraceParentHeader); every worker response reports how long the
// worker actually spent serving, so the client can attribute the rest of
// the RPC's wall clock to the network and queueing.
const (
	requestIDHeader = "X-Request-Id"
	serveNsHeader   = "X-Serve-Ns"
)

// ErrBreakerOpen is returned (wrapped in shard.ErrUnavailable) when a
// call is rejected without touching the wire because the shard's
// circuit breaker is open.
var ErrBreakerOpen = fmt.Errorf("%w: circuit breaker open", shard.ErrUnavailable)

// ErrInjected marks failures manufactured by a Fault decorator, so
// tests can tell injected faults from real ones.
var ErrInjected = errors.New("remote: injected fault")

// ErrPartitioned marks calls dropped by a Fault partition window.
var ErrPartitioned = fmt.Errorf("%w: network partition", ErrInjected)

// Wire types for the /shard/v1/* endpoints. Requests carry the index
// name because one worker process serves a shard of every index it has
// loaded, exactly like the unsharded server serves many entries.

// BoundsRequest asks for the shard's partial OSSM bounds (the sum over
// its segment range only) for each itemset.
type BoundsRequest struct {
	Index string         `json:"index"`
	Sets  []ossm.Itemset `json:"itemsets"`
}

// BoundsResponse carries one partial bound per requested itemset, in
// request order.
type BoundsResponse struct {
	Bounds []int64 `json:"bounds"`
}

// FrequentRequest asks the shard to mine its transaction slice at the
// shard-scaled threshold and return every locally frequent itemset.
type FrequentRequest struct {
	Index    string `json:"index"`
	Miner    string `json:"miner"`
	LocalMin int64  `json:"local_min"`
	MaxLen   int    `json:"max_len,omitempty"`
}

// FrequentResponse lists the locally frequent itemsets.
type FrequentResponse struct {
	Sets []ossm.Itemset `json:"itemsets"`
}

// SupportsRequest asks for each candidate's exact support within the
// shard's transaction slice.
type SupportsRequest struct {
	Index string         `json:"index"`
	Sets  []ossm.Itemset `json:"itemsets"`
}

// SupportsResponse carries one partial support per candidate, in
// request order.
type SupportsResponse struct {
	Supports []int64 `json:"supports"`
}

// InfoResponse is the GET /shard/v1/info body: the shard's fleet row
// plus the mining and validation facts the coordinator caches.
type InfoResponse struct {
	Index string     `json:"index"`
	Info  shard.Info `json:"info"`
	// CanMine and NumTx mirror the Transport methods of the same names.
	CanMine bool `json:"can_mine"`
	NumTx   int  `json:"num_tx"`
	// TotalSegments is the segment count of the whole index the worker
	// sliced, so a coordinator can check the fleet tiles [0, total).
	TotalSegments int `json:"total_segments"`
}

// SpansResponse is the GET /shard/v1/traces body: the worker's finished
// spans, oldest first. The coordinator's /v1/traces fetches these and
// stitches them under its own scatter spans — worker spans carry the
// coordinator's trace and parent IDs when the RPC arrived with a
// traceparent header, so the join is pure tree assembly.
type SpansResponse struct {
	Spans []obs.SpanRecord `json:"spans"`
}

// errorBody is the JSON error envelope every non-200 worker response
// carries, matching the serving layer's shape.
type errorBody struct {
	Error string `json:"error"`
}
