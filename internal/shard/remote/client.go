package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/obs"
	"github.com/ossm-mining/ossm/internal/shard"
)

// Hooks observe a client's RPC traffic — the bridge to the serving
// layer's Prometheus families. All callbacks may run concurrently; nil
// hooks (or a zero Hooks) are ignored.
type Hooks struct {
	// OnRPC fires once per completed call with an outcome label: "ok",
	// "error", "overloaded" (worker 503), "timeout" (a deadline ended the
	// call) or "breaker_open" (rejected without touching the wire).
	OnRPC func(shardID int, method, outcome string)
	// OnRetry fires once per retry attempt (not for the first attempt).
	OnRetry func(shardID int, method string)
	// OnBreaker fires on every circuit-breaker state transition.
	OnBreaker func(shardID int, state BreakerState)
}

// ClientConfig tunes a Client. The zero value retries twice with
// jittered exponential backoff, times out attempts at 5 seconds, and
// trips the breaker after 5 consecutive failures for a 1-second
// cooldown.
type ClientConfig struct {
	// HTTPClient issues the calls; share one across a fleet's clients so
	// they draw keep-alive connections from one pool (NewHTTPClient).
	// nil builds a private pooled client.
	HTTPClient *http.Client
	// CallTimeout bounds each bounds/supports/info attempt (0 ⇒ 5s;
	// negative disables). The caller's context still caps the whole call.
	CallTimeout time.Duration
	// MineTimeout bounds each frequent (shard-local mining) attempt.
	// Mining legitimately runs long, so 0 means no per-attempt cap — only
	// the caller's deadline applies.
	MineTimeout time.Duration
	// MaxRetries is how many times a failed idempotent call is retried
	// after the first attempt (0 ⇒ 2; negative disables retries).
	MaxRetries int
	// RetryBase and RetryCap shape the backoff: attempt n sleeps a
	// uniformly jittered [½,1]·min(RetryBase·2ⁿ, RetryCap)
	// (0 ⇒ 25ms base, 250ms cap).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Breaker tunes the per-shard circuit breaker.
	Breaker BreakerConfig
	// InfoRefresh is how often the cached shard info is refreshed in the
	// background (0 ⇒ 2s).
	InfoRefresh time.Duration
	// Seed makes the backoff jitter deterministic for tests (0 keeps it
	// deterministic too, derived from the shard id).
	Seed int64
	// Hooks observe RPCs, retries and breaker transitions.
	Hooks Hooks
	// Tracer, when non-nil, records one span per RPC attempt (and per
	// breaker rejection) under the caller's context, with serve/net time
	// attribution read from the worker's response headers.
	Tracer *obs.Tracer
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.CallTimeout == 0 {
		c.CallTimeout = 5 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 250 * time.Millisecond
	}
	if c.InfoRefresh <= 0 {
		c.InfoRefresh = 2 * time.Second
	}
	return c
}

// NewHTTPClient returns a pooled keep-alive HTTP client sized for a
// shard fleet: connections are reused across requests and shards on the
// same host, and idle ones are kept warm between scatter rounds.
func NewHTTPClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}}
}

// Client is the coordinator's HTTP view of one remote shard: a
// shard.Transport whose calls cross the wire with per-attempt timeouts,
// bounded jittered retries and a circuit breaker. Shard identity (the
// id) comes from the topology; the segment range, mining capability and
// health state come from the worker's info endpoint, cached and
// refreshed in the background so Transport.Info stays non-blocking on
// the scatter path.
type Client struct {
	id    int
	index string
	base  string // normalized base URL, no trailing slash
	http  *http.Client
	cfg   ClientConfig
	brk   *breaker

	rngMu sync.Mutex
	rng   *rand.Rand

	info        atomic.Pointer[InfoResponse]
	infoMu      sync.Mutex  // serializes the first synchronous fetch
	infoFetched atomic.Bool // an info fetch (even a failed one) happened
	infoAt      atomic.Int64
	infoBusy    atomic.Bool
}

// NewClient builds the transport for shard id at addr ("host:port" or a
// full http:// URL), serving the named index. It performs no I/O; the
// first Info (or CanMine/NumTx) call fetches the worker's identity.
func NewClient(id int, addr, index string, cfg ClientConfig) (*Client, error) {
	base, err := normalizeAddr(addr)
	if err != nil {
		return nil, err
	}
	if index == "" {
		return nil, fmt.Errorf("remote: NewClient requires an index name")
	}
	cfg = cfg.withDefaults()
	c := &Client{
		id:    id,
		index: index,
		base:  base,
		http:  cfg.HTTPClient,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed*2654435761 + int64(id) + 1)),
	}
	if c.http == nil {
		c.http = NewHTTPClient()
	}
	bcfg := cfg.Breaker
	if fn := cfg.Hooks.OnBreaker; fn != nil {
		bcfg.OnChange = func(s BreakerState) { fn(id, s) }
	}
	c.brk = newBreaker(bcfg)
	return c, nil
}

// normalizeAddr turns "host:port" or "http://host:port" into a base URL.
func normalizeAddr(addr string) (string, error) {
	if addr == "" {
		return "", fmt.Errorf("remote: empty shard address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil || u.Host == "" {
		return "", fmt.Errorf("remote: bad shard address %q", addr)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("remote: unsupported scheme %q in shard address", u.Scheme)
	}
	return strings.TrimSuffix(u.String(), "/"), nil
}

// ID returns the client's topology shard id.
func (c *Client) ID() int { return c.id }

// BreakerState reports the circuit breaker's current position.
func (c *Client) BreakerState() BreakerState { return c.brk.State() }

// Info implements shard.Transport from the cached worker info, with the
// breaker state overlaid so the fleet's health view reflects a shard it
// currently cannot reach. The first call fetches synchronously (bounded
// by CallTimeout); later calls are served from cache and refreshed in
// the background every InfoRefresh.
func (c *Client) Info() shard.Info {
	snap := c.ensureInfo()
	var inf shard.Info
	if snap != nil {
		inf = snap.Info
	} else {
		inf.State = "unreachable"
	}
	inf.ID = c.id // topology identity wins over whatever the worker thinks
	switch c.brk.State() {
	case BreakerOpen:
		inf.State = "breaker-open"
	case BreakerHalfOpen:
		inf.State = "breaker-half-open"
	}
	return inf
}

// CanMine implements shard.Transport from the cached worker info.
func (c *Client) CanMine() bool {
	if snap := c.ensureInfo(); snap != nil {
		return snap.CanMine
	}
	return false
}

// NumTx implements shard.Transport from the cached worker info.
func (c *Client) NumTx() int {
	if snap := c.ensureInfo(); snap != nil {
		return snap.NumTx
	}
	return 0
}

// TotalSegments reports the worker's whole-index segment count (0 until
// the worker has been reached). Coordinators use it to validate that a
// fleet tiles the segment axis.
func (c *Client) TotalSegments() int {
	if snap := c.ensureInfo(); snap != nil {
		return snap.TotalSegments
	}
	return 0
}

// ensureInfo returns the cached info snapshot, fetching synchronously
// exactly once on first use and asynchronously (throttled) thereafter —
// a dead worker costs one bounded fetch up front, never a stall per
// scatter call.
func (c *Client) ensureInfo() *InfoResponse {
	if snap := c.info.Load(); snap != nil {
		c.maybeRefreshInfo()
		return snap
	}
	if !c.infoFetched.Load() {
		c.infoMu.Lock()
		if !c.infoFetched.Load() {
			c.fetchInfo()
			c.infoFetched.Store(true)
		}
		c.infoMu.Unlock()
	} else {
		c.maybeRefreshInfo()
	}
	return c.info.Load()
}

// RefreshInfo fetches the worker's info now, blocking the caller;
// mostly a test and startup-validation convenience.
func (c *Client) RefreshInfo(ctx context.Context) error {
	err := c.fetchInfoCtx(ctx)
	c.infoFetched.Store(true)
	return err
}

// maybeRefreshInfo kicks a background fetch if the cache is stale and
// none is in flight.
func (c *Client) maybeRefreshInfo() {
	last := time.Unix(0, c.infoAt.Load())
	if time.Since(last) < c.cfg.InfoRefresh {
		return
	}
	if !c.infoBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer c.infoBusy.Store(false)
		c.fetchInfo()
	}()
}

func (c *Client) fetchInfo() {
	ctx, cancel := context.WithTimeout(context.Background(), c.attemptTimeout(c.cfg.CallTimeout))
	defer cancel()
	_ = c.fetchInfoCtx(ctx)
}

// fetchInfoCtx is a single direct info attempt: no retries and no
// breaker involvement (info is the health side channel, and feeding the
// breaker from background probes would race the half-open single-flight
// guarantee), but it does report an RPC outcome for the metrics.
func (c *Client) fetchInfoCtx(ctx context.Context) error {
	var resp InfoResponse
	_, err := c.attempt(ctx, http.MethodGet, "/shard/v1/info?index="+url.QueryEscape(c.index), nil, &resp)
	c.infoAt.Store(time.Now().UnixNano())
	c.noteRPC("info", err)
	if err != nil {
		return err
	}
	c.info.Store(&resp)
	return nil
}

// attemptTimeout floors a per-attempt timeout for bare-context fetches.
func (c *Client) attemptTimeout(d time.Duration) time.Duration {
	if d <= 0 {
		return 2 * time.Second
	}
	return d
}

// FetchSpans returns the worker's finished spans (GET /shard/v1/traces)
// so the coordinator can stitch them into its own trace trees. Like the
// info side channel, it is a single direct attempt — no retries, no
// breaker involvement — because trace assembly is best-effort by design.
func (c *Client) FetchSpans(ctx context.Context) ([]obs.SpanRecord, error) {
	var resp SpansResponse
	_, err := c.attempt(ctx, http.MethodGet, "/shard/v1/traces", nil, &resp)
	if err != nil {
		return nil, fmt.Errorf("remote: shard %d traces: %w", c.id, err)
	}
	return resp.Spans, nil
}

// PartialBounds implements shard.Transport over POST /shard/v1/bounds.
func (c *Client) PartialBounds(ctx context.Context, sets []ossm.Itemset, out []int64) error {
	var resp BoundsResponse
	err := c.call(ctx, "bounds", "/shard/v1/bounds",
		BoundsRequest{Index: c.index, Sets: sets}, &resp, c.cfg.CallTimeout)
	if err != nil {
		return err
	}
	if len(resp.Bounds) != len(sets) {
		return fmt.Errorf("remote: shard %d returned %d bounds for %d itemsets", c.id, len(resp.Bounds), len(sets))
	}
	copy(out, resp.Bounds)
	return nil
}

// LocalFrequent implements shard.Transport over POST /shard/v1/frequent.
func (c *Client) LocalFrequent(ctx context.Context, miner string, localMin int64, maxLen int) ([]ossm.Itemset, error) {
	var resp FrequentResponse
	err := c.call(ctx, "frequent", "/shard/v1/frequent",
		FrequentRequest{Index: c.index, Miner: miner, LocalMin: localMin, MaxLen: maxLen}, &resp, c.cfg.MineTimeout)
	if err != nil {
		return nil, err
	}
	return resp.Sets, nil
}

// PartialSupports implements shard.Transport over POST /shard/v1/supports.
func (c *Client) PartialSupports(ctx context.Context, cands []ossm.Itemset, out []int64) error {
	var resp SupportsResponse
	err := c.call(ctx, "supports", "/shard/v1/supports",
		SupportsRequest{Index: c.index, Sets: cands}, &resp, c.cfg.CallTimeout)
	if err != nil {
		return err
	}
	if len(resp.Supports) != len(cands) {
		return fmt.Errorf("remote: shard %d returned %d supports for %d candidates", c.id, len(resp.Supports), len(cands))
	}
	copy(out, resp.Supports)
	return nil
}

// call is the shared RPC engine: breaker admission, then up to
// 1+MaxRetries attempts with jittered exponential backoff between them.
// Retrying is safe because every shard RPC is an idempotent read.
func (c *Client) call(ctx context.Context, method, path string, reqBody, respBody any, timeout time.Duration) error {
	done, err := c.brk.Allow()
	if err != nil {
		c.noteRPC(method, err)
		c.rejectSpan(ctx, method)
		return fmt.Errorf("remote: shard %d %s: %w", c.id, method, err)
	}
	for att := 0; ; att++ {
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, timeout)
		}
		err := c.tracedAttempt(actx, method, att, path, reqBody, respBody)
		cancel()
		if err == nil {
			done(true)
			c.noteRPC(method, nil)
			return nil
		}
		if ctx.Err() != nil {
			// The caller's own deadline or cancellation ended the call;
			// retrying cannot help and the outcome belongs to the caller.
			done(false)
			c.noteRPC(method, ctx.Err())
			return fmt.Errorf("remote: shard %d %s: %w", c.id, method, ctx.Err())
		}
		if att >= c.cfg.MaxRetries || !retryable(err) {
			done(false)
			c.noteRPC(method, err)
			return c.finalErr(method, att+1, err)
		}
		if fn := c.cfg.Hooks.OnRetry; fn != nil {
			fn(c.id, method)
		}
		select {
		case <-time.After(c.backoff(att)):
		case <-ctx.Done():
			done(false)
			c.noteRPC(method, ctx.Err())
			return fmt.Errorf("remote: shard %d %s: %w", c.id, method, ctx.Err())
		}
	}
}

// tracedAttempt wraps one wire attempt in a span: rpc-<method>, carrying
// the shard id, attempt number, outcome, and — when the worker reported
// its serve time — the serve-vs-network wall-clock split the coordinator's
// trace view aggregates per shard.
func (c *Client) tracedAttempt(actx context.Context, method string, att int, path string, reqBody, respBody any) error {
	if c.cfg.Tracer == nil {
		_, err := c.attempt(actx, http.MethodPost, path, reqBody, respBody)
		return err
	}
	sctx, span := c.cfg.Tracer.Start(actx, "rpc-"+method)
	span.SetAttr("shard", c.id)
	span.SetAttr("attempt", att)
	start := time.Now()
	serveNs, err := c.attempt(sctx, http.MethodPost, path, reqBody, respBody)
	span.SetAttr("outcome", outcomeOf(err))
	if serveNs > 0 {
		wall := time.Since(start).Nanoseconds()
		if net := wall - serveNs; net >= 0 {
			span.SetAttr("serve_ns", serveNs)
			span.SetAttr("net_ns", net)
		}
	}
	span.End()
	return err
}

// rejectSpan records a breaker rejection as a zero-wire-time span, so
// fail-fast decisions stay visible in the assembled trace.
func (c *Client) rejectSpan(ctx context.Context, method string) {
	if c.cfg.Tracer == nil {
		return
	}
	_, span := c.cfg.Tracer.Start(ctx, "rpc-"+method)
	span.SetAttr("shard", c.id)
	span.SetAttr("outcome", "breaker_open")
	span.End()
}

// finalErr wraps an exhausted call's last error. Transport-level
// failures (timeouts, refused connections, 5xx) additionally wrap
// shard.ErrUnavailable so the serving layer answers 503 — the shard may
// be fine in a moment; the request was not wrong.
func (c *Client) finalErr(method string, attempts int, err error) error {
	wrapped := fmt.Errorf("remote: shard %d %s failed after %d attempt(s): %w", c.id, method, attempts, err)
	if retryable(err) && !errors.Is(err, shard.ErrUnavailable) {
		return fmt.Errorf("%w: %w", shard.ErrUnavailable, wrapped)
	}
	return wrapped
}

// backoff returns the jittered exponential delay before retry n:
// uniform in [½,1]·min(RetryBase·2ⁿ, RetryCap).
func (c *Client) backoff(n int) time.Duration {
	d := c.cfg.RetryBase << uint(n)
	if d > c.cfg.RetryCap || d <= 0 {
		d = c.cfg.RetryCap
	}
	c.rngMu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// statusError is a non-200 worker response.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("worker answered %d: %s", e.code, e.msg)
}

// Is maps 503 onto shard.ErrOverloaded so admission rejections keep
// their meaning across the wire.
func (e *statusError) Is(target error) bool {
	return e.code == http.StatusServiceUnavailable && target == shard.ErrOverloaded
}

// retryable classifies one attempt's failure. Client-side errors (4xx)
// are permanent — the coordinator and worker disagree about the request
// itself; everything else (connection failures, attempt timeouts,
// 5xx including 503 overload) is worth a bounded, backed-off retry of
// an idempotent call.
func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500
	}
	return true
}

// attempt performs one HTTP exchange under actx, propagating the
// caller's request id and trace context onto the wire and returning the
// worker-reported serve time (0 when the worker did not report one).
func (c *Client) attempt(actx context.Context, httpMethod, path string, reqBody, respBody any) (int64, error) {
	var body io.Reader
	if reqBody != nil {
		raw, err := json.Marshal(reqBody)
		if err != nil {
			return 0, &statusError{code: http.StatusBadRequest, msg: err.Error()}
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(actx, httpMethod, c.base+path, body)
	if err != nil {
		return 0, &statusError{code: http.StatusBadRequest, msg: err.Error()}
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := obs.RequestIDFrom(actx); id != "" {
		req.Header.Set(requestIDHeader, id)
	}
	if span := obs.SpanFromContext(actx); span != nil {
		req.Header.Set(obs.TraceParentHeader, span.TraceParent())
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if actx.Err() != nil {
			return 0, actx.Err()
		}
		return 0, err
	}
	defer func() {
		// Drain so the keep-alive connection returns to the pool.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	serveNs, _ := strconv.ParseInt(resp.Header.Get(serveNsHeader), 10, 64)
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return serveNs, &statusError{code: resp.StatusCode, msg: msg}
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxWireBody)).Decode(respBody); err != nil {
		if actx.Err() != nil {
			return serveNs, actx.Err()
		}
		return serveNs, fmt.Errorf("decoding worker response: %w", err)
	}
	return serveNs, nil
}

// noteRPC reports one finished call to the hooks.
func (c *Client) noteRPC(method string, err error) {
	fn := c.cfg.Hooks.OnRPC
	if fn == nil {
		return
	}
	fn(c.id, method, outcomeOf(err))
}

func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrBreakerOpen):
		return "breaker_open"
	case errors.Is(err, shard.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "timeout"
	default:
		return "error"
	}
}
