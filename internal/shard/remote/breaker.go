package remote

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position. The numeric values are
// the ossm_shard_breaker_state gauge's encoding, ordered by severity.
type BreakerState int32

const (
	// BreakerClosed passes every call through and counts consecutive
	// failures.
	BreakerClosed BreakerState = 0
	// BreakerHalfOpen admits exactly one probe call; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen BreakerState = 1
	// BreakerOpen rejects every call until the cooldown elapses.
	BreakerOpen BreakerState = 2
)

// String names the state for health rows and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes a breaker. The zero value trips after 5
// consecutive failures and cools down for a second.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips a
	// closed breaker open (0 ⇒ 5).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe (0 ⇒ 1s).
	Cooldown time.Duration
	// OnChange, when non-nil, observes every state transition. Calls are
	// serialized in transition order under the breaker's lock, so the
	// callback must be fast and must not call back into the breaker.
	OnChange func(BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// breaker is a closed/open/half-open circuit breaker. Allow hands out a
// completion callback so the half-open probe is single-flight by
// construction: only the caller holding the callback can settle the
// probe, and everyone else is rejected until it does.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped open
	probing  bool      // a half-open probe is in flight
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// State reports the current position, promoting open to half-open once
// the cooldown has elapsed (the promotion a caller would get).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Allow asks to place one call. On admission it returns a non-nil done
// callback the caller must invoke exactly once with the call's outcome;
// on rejection it returns ErrBreakerOpen.
func (b *breaker) Allow() (done func(ok bool), err error) {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return b.settleClosed, nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.mu.Unlock()
			return nil, ErrBreakerOpen
		}
		b.transition(BreakerHalfOpen)
		fallthrough
	case BreakerHalfOpen:
		if b.probing {
			b.mu.Unlock()
			return nil, ErrBreakerOpen
		}
		b.probing = true
		b.mu.Unlock()
		return b.settleProbe, nil
	}
	b.mu.Unlock()
	return nil, ErrBreakerOpen
}

// settleClosed records a call outcome observed while closed.
func (b *breaker) settleClosed(ok bool) {
	b.mu.Lock()
	if b.state != BreakerClosed {
		// A concurrent probe already moved the state; stale outcomes from
		// the closed era must not flap it.
		b.mu.Unlock()
		return
	}
	if ok {
		b.fails = 0
		b.mu.Unlock()
		return
	}
	b.fails++
	if b.fails >= b.cfg.FailureThreshold {
		b.trip()
	}
	b.mu.Unlock()
}

// settleProbe records the half-open probe's outcome.
func (b *breaker) settleProbe(ok bool) {
	b.mu.Lock()
	b.probing = false
	if ok {
		b.fails = 0
		b.transition(BreakerClosed)
	} else {
		b.trip()
	}
	b.mu.Unlock()
}

// trip opens the breaker and stamps the cooldown clock. Callers hold mu.
func (b *breaker) trip() {
	b.openedAt = b.now()
	b.transition(BreakerOpen)
}

// transition moves to a new state and notifies OnChange. Callers hold
// mu, which is what serializes the callback in transition order.
func (b *breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	if fn := b.cfg.OnChange; fn != nil {
		fn(to)
	}
}
