package remote

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/obs"
	"github.com/ossm-mining/ossm/internal/shard"
)

// fixture builds a deterministic dataset and an index over it.
func fixture(t testing.TB, numTx int, segments int, algo ossm.Algorithm, seed int64) (*ossm.Dataset, *ossm.Index) {
	t.Helper()
	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(numTx, seed))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ossm.Build(d, ossm.BuildOptions{Segments: segments, Algorithm: algo, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d, ix
}

// remoteFleet is a loopback remote fleet: one httptest worker process
// stand-in per shard, each serving its slice of the same index, plus
// the clients pointed at them.
type remoteFleet struct {
	servers []*httptest.Server
	faults  []*Fault // worker-side fault decorators, one per shard
	clients []*Client
	tracers []*obs.Tracer // worker-side span rings, one per shard
}

func (rf *remoteFleet) transports() []shard.Transport {
	out := make([]shard.Transport, len(rf.clients))
	for i, c := range rf.clients {
		out[i] = c
	}
	return out
}

// startRemoteFleet slices (ix, d) into n shards, serves each from its
// own httptest worker (wrapped in a Fault decorator so tests can break
// it), and returns clients built with cfg. Slicing uses the same
// deterministic partition the coordinator assumes, so shard i's worker
// owns exactly the range client i expects.
func startRemoteFleet(t testing.TB, name string, ix *ossm.Index, d *ossm.Dataset, n int, cfg ClientConfig) *remoteFleet {
	t.Helper()
	locals, err := shard.NewLocalShards(ix, d, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	rf := &remoteFleet{}
	for i, tr := range shard.Transports(locals) {
		f := NewFault(tr, FaultConfig{Seed: int64(i) + 1})
		w := NewWorker()
		wt := obs.NewTracer(4096)
		w.SetObs(nil, wt)
		if err := w.Add(name, f, ix.NumSegments()); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		c, err := NewClient(i, srv.URL, name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rf.servers = append(rf.servers, srv)
		rf.faults = append(rf.faults, f)
		rf.clients = append(rf.clients, c)
		rf.tracers = append(rf.tracers, wt)
	}
	return rf
}

// randomSets draws n itemsets of 1–3 items from the index domain.
func randomSets(r *rand.Rand, numItems, n int) []ossm.Itemset {
	sets := make([]ossm.Itemset, n)
	for i := range sets {
		k := 1 + r.Intn(3)
		items := make([]ossm.Item, 0, k)
		seen := map[ossm.Item]bool{}
		for len(items) < k {
			it := ossm.Item(r.Intn(numItems))
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		sets[i] = ossm.NewItemset(items...)
	}
	return sets
}
