package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"github.com/ossm-mining/ossm/internal/shard"
)

// maxWireBody caps request and response bodies on both sides of the
// shard wire: 4096-itemset batches of short itemsets fit with room to
// spare, while a corrupt length or a hostile peer cannot balloon memory.
const maxWireBody = 16 << 20

// Worker serves shard.Transports over HTTP — the shard side of the
// remote fleet. One worker process typically holds one segment-range
// shard per index it has loaded (ossm-serve -shard-role=worker); the
// handler routes on the index name carried in every request.
//
// Endpoints (all JSON):
//
//	GET  /healthz
//	GET  /shard/v1/info?index=name
//	POST /shard/v1/bounds     {index, itemsets} -> {bounds}
//	POST /shard/v1/frequent   {index, miner, local_min, max_len} -> {itemsets}
//	POST /shard/v1/supports   {index, itemsets} -> {supports}
//
// Admission, draining and mining capability are whatever the wrapped
// Transport reports — a Worker adds no policy of its own, so a Fault
// decorator slipped underneath makes a real HTTP shard misbehave for
// chaos tests.
type Worker struct {
	mu      sync.RWMutex
	entries map[string]workerEntry
}

type workerEntry struct {
	t             shard.Transport
	totalSegments int
}

// NewWorker returns a worker with no entries.
func NewWorker() *Worker {
	return &Worker{entries: make(map[string]workerEntry)}
}

// Add registers the transport serving the named index's shard.
// totalSegments is the whole index's segment count (echoed in info so
// coordinators can validate fleet tiling).
func (w *Worker) Add(name string, t shard.Transport, totalSegments int) error {
	if name == "" || t == nil {
		return fmt.Errorf("remote: Worker.Add requires a name and a transport")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.entries[name]; dup {
		return fmt.Errorf("remote: shard entry %q already registered", name)
	}
	w.entries[name] = workerEntry{t: t, totalSegments: totalSegments}
	return nil
}

func (w *Worker) lookup(name string) (workerEntry, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	e, ok := w.entries[name]
	return e, ok
}

// Handler returns the worker's routing table.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		writeWireJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /shard/v1/info", w.handleInfo)
	mux.HandleFunc("POST /shard/v1/bounds", w.handleBounds)
	mux.HandleFunc("POST /shard/v1/frequent", w.handleFrequent)
	mux.HandleFunc("POST /shard/v1/supports", w.handleSupports)
	return mux
}

func (w *Worker) handleInfo(rw http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("index")
	e, ok := w.lookup(name)
	if !ok {
		writeWireErr(rw, http.StatusNotFound, "unknown shard entry %q", name)
		return
	}
	writeWireJSON(rw, http.StatusOK, InfoResponse{
		Index:         name,
		Info:          e.t.Info(),
		CanMine:       e.t.CanMine(),
		NumTx:         e.t.NumTx(),
		TotalSegments: e.totalSegments,
	})
}

func (w *Worker) handleBounds(rw http.ResponseWriter, r *http.Request) {
	var req BoundsRequest
	if !decodeWire(rw, r, &req) {
		return
	}
	e, ok := w.lookup(req.Index)
	if !ok {
		writeWireErr(rw, http.StatusNotFound, "unknown shard entry %q", req.Index)
		return
	}
	out := make([]int64, len(req.Sets))
	if err := e.t.PartialBounds(r.Context(), req.Sets, out); err != nil {
		writeShardErr(rw, r.Context(), err)
		return
	}
	writeWireJSON(rw, http.StatusOK, BoundsResponse{Bounds: out})
}

func (w *Worker) handleFrequent(rw http.ResponseWriter, r *http.Request) {
	var req FrequentRequest
	if !decodeWire(rw, r, &req) {
		return
	}
	e, ok := w.lookup(req.Index)
	if !ok {
		writeWireErr(rw, http.StatusNotFound, "unknown shard entry %q", req.Index)
		return
	}
	sets, err := e.t.LocalFrequent(r.Context(), req.Miner, req.LocalMin, req.MaxLen)
	if err != nil {
		writeShardErr(rw, r.Context(), err)
		return
	}
	writeWireJSON(rw, http.StatusOK, FrequentResponse{Sets: sets})
}

func (w *Worker) handleSupports(rw http.ResponseWriter, r *http.Request) {
	var req SupportsRequest
	if !decodeWire(rw, r, &req) {
		return
	}
	e, ok := w.lookup(req.Index)
	if !ok {
		writeWireErr(rw, http.StatusNotFound, "unknown shard entry %q", req.Index)
		return
	}
	out := make([]int64, len(req.Sets))
	if err := e.t.PartialSupports(r.Context(), req.Sets, out); err != nil {
		writeShardErr(rw, r.Context(), err)
		return
	}
	writeWireJSON(rw, http.StatusOK, SupportsResponse{Supports: out})
}

// decodeWire strictly decodes one JSON body, reporting (and answering)
// failure itself.
func decodeWire(rw http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(rw, r.Body, maxWireBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeWireErr(rw, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// writeShardErr maps a transport failure onto the wire status the
// client's retry policy keys on: 503 for admission rejection (retryable
// with backoff), 504 when the caller's deadline expired mid-call, 500
// for everything else (retryable — the call is idempotent).
func writeShardErr(rw http.ResponseWriter, ctx context.Context, err error) {
	switch {
	case errors.Is(err, shard.ErrOverloaded):
		writeWireErr(rw, http.StatusServiceUnavailable, "%v", err)
	case ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		writeWireErr(rw, http.StatusGatewayTimeout, "%v", err)
	default:
		writeWireErr(rw, http.StatusInternalServerError, "%v", err)
	}
}

func writeWireJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	enc := json.NewEncoder(rw)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeWireErr(rw http.ResponseWriter, code int, format string, args ...any) {
	writeWireJSON(rw, code, errorBody{Error: fmt.Sprintf(format, args...)})
}
