package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/ossm-mining/ossm/internal/obs"
	"github.com/ossm-mining/ossm/internal/shard"
)

// maxWireBody caps request and response bodies on both sides of the
// shard wire: 4096-itemset batches of short itemsets fit with room to
// spare, while a corrupt length or a hostile peer cannot balloon memory.
const maxWireBody = 16 << 20

// Worker serves shard.Transports over HTTP — the shard side of the
// remote fleet. One worker process typically holds one segment-range
// shard per index it has loaded (ossm-serve -shard-role=worker); the
// handler routes on the index name carried in every request.
//
// Endpoints (all JSON):
//
//	GET  /healthz
//	GET  /shard/v1/info?index=name
//	POST /shard/v1/bounds     {index, itemsets} -> {bounds}
//	POST /shard/v1/frequent   {index, miner, local_min, max_len} -> {itemsets}
//	POST /shard/v1/supports   {index, itemsets} -> {supports}
//
// Admission, draining and mining capability are whatever the wrapped
// Transport reports — a Worker adds no policy of its own, so a Fault
// decorator slipped underneath makes a real HTTP shard misbehave for
// chaos tests.
type Worker struct {
	mu      sync.RWMutex
	entries map[string]workerEntry

	// Observability, wired once at startup via SetObs before the handler
	// serves traffic. Both tolerate their nil zero values: a nil tracer
	// records nothing and /shard/v1/traces answers empty; a nil logger
	// suppresses access-log lines.
	logger *slog.Logger
	tracer *obs.Tracer
}

type workerEntry struct {
	t             shard.Transport
	totalSegments int
}

// NewWorker returns a worker with no entries.
func NewWorker() *Worker {
	return &Worker{entries: make(map[string]workerEntry)}
}

// SetObs wires the worker's access logger and span ring. Call it at
// startup, before Handler() serves traffic.
func (w *Worker) SetObs(logger *slog.Logger, tracer *obs.Tracer) {
	w.logger = logger
	w.tracer = tracer
}

// Add registers the transport serving the named index's shard.
// totalSegments is the whole index's segment count (echoed in info so
// coordinators can validate fleet tiling).
func (w *Worker) Add(name string, t shard.Transport, totalSegments int) error {
	if name == "" || t == nil {
		return fmt.Errorf("remote: Worker.Add requires a name and a transport")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.entries[name]; dup {
		return fmt.Errorf("remote: shard entry %q already registered", name)
	}
	w.entries[name] = workerEntry{t: t, totalSegments: totalSegments}
	return nil
}

func (w *Worker) lookup(name string) (workerEntry, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	e, ok := w.entries[name]
	return e, ok
}

// Handler returns the worker's routing table, wrapped in the
// observability envelope.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		writeWireJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /shard/v1/info", w.handleInfo)
	mux.HandleFunc("GET /shard/v1/traces", w.handleTraces)
	mux.HandleFunc("POST /shard/v1/bounds", w.handleBounds)
	mux.HandleFunc("POST /shard/v1/frequent", w.handleFrequent)
	mux.HandleFunc("POST /shard/v1/supports", w.handleSupports)
	return w.instrument(mux)
}

// instrument is the worker-side request envelope: it adopts the
// coordinator's request id (minting one only for direct callers), joins
// the coordinator's trace via the traceparent header so the serve span
// parents under the caller's RPC span, reports the measured serve time
// in the response headers, and emits one access-log line whose
// request_id matches the coordinator's — the join key between the two
// processes' logs.
func (w *Worker) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get(requestIDHeader)
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		rw.Header().Set(requestIDHeader, reqID)

		ctx := obs.WithRequestID(r.Context(), reqID)
		if traceID, spanID, ok := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader)); ok {
			ctx = obs.ContextWithRemoteParent(ctx, traceID, spanID)
		}
		ctx, span := w.tracer.Start(ctx, "serve "+r.URL.Path)
		span.SetAttr("request_id", reqID)

		sw := &serveWriter{ResponseWriter: rw, start: start}
		next.ServeHTTP(sw, r.WithContext(ctx))

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		span.SetAttr("status", status)
		span.End()
		if w.logger != nil {
			w.logger.LogAttrs(ctx, slog.LevelInfo, "shard_rpc",
				slog.String("request_id", reqID),
				slog.String("trace_id", span.TraceID()),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Duration("duration", elapsed),
			)
		}
	})
}

// serveWriter stamps the serve-time header the moment the response
// starts — everything after that belongs to the network — and records
// the status for the access log.
type serveWriter struct {
	http.ResponseWriter
	start  time.Time
	status int
}

func (w *serveWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		w.Header().Set(serveNsHeader, strconv.FormatInt(time.Since(w.start).Nanoseconds(), 10))
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *serveWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
		return w.ResponseWriter.Write(p)
	}
	return w.ResponseWriter.Write(p)
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *serveWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// handleTraces serves the worker's span ring, oldest first — the raw
// material the coordinator's /v1/traces stitches into one tree.
func (w *Worker) handleTraces(rw http.ResponseWriter, r *http.Request) {
	spans := w.tracer.Snapshot()
	if spans == nil {
		spans = []obs.SpanRecord{}
	}
	writeWireJSON(rw, http.StatusOK, SpansResponse{Spans: spans})
}

func (w *Worker) handleInfo(rw http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("index")
	e, ok := w.lookup(name)
	if !ok {
		writeWireErr(rw, http.StatusNotFound, "unknown shard entry %q", name)
		return
	}
	writeWireJSON(rw, http.StatusOK, InfoResponse{
		Index:         name,
		Info:          e.t.Info(),
		CanMine:       e.t.CanMine(),
		NumTx:         e.t.NumTx(),
		TotalSegments: e.totalSegments,
	})
}

func (w *Worker) handleBounds(rw http.ResponseWriter, r *http.Request) {
	var req BoundsRequest
	if !decodeWire(rw, r, &req) {
		return
	}
	e, ok := w.lookup(req.Index)
	if !ok {
		writeWireErr(rw, http.StatusNotFound, "unknown shard entry %q", req.Index)
		return
	}
	out := make([]int64, len(req.Sets))
	kctx, kspan := w.tracer.Start(r.Context(), "kernel-bounds")
	kspan.SetAttr("index", req.Index)
	kspan.SetAttr("sets", len(req.Sets))
	err := e.t.PartialBounds(kctx, req.Sets, out)
	kspan.End()
	if err != nil {
		writeShardErr(rw, r.Context(), err)
		return
	}
	writeWireJSON(rw, http.StatusOK, BoundsResponse{Bounds: out})
}

func (w *Worker) handleFrequent(rw http.ResponseWriter, r *http.Request) {
	var req FrequentRequest
	if !decodeWire(rw, r, &req) {
		return
	}
	e, ok := w.lookup(req.Index)
	if !ok {
		writeWireErr(rw, http.StatusNotFound, "unknown shard entry %q", req.Index)
		return
	}
	kctx, kspan := w.tracer.Start(r.Context(), "kernel-frequent")
	kspan.SetAttr("index", req.Index)
	kspan.SetAttr("miner", req.Miner)
	sets, err := e.t.LocalFrequent(kctx, req.Miner, req.LocalMin, req.MaxLen)
	kspan.End()
	if err != nil {
		writeShardErr(rw, r.Context(), err)
		return
	}
	writeWireJSON(rw, http.StatusOK, FrequentResponse{Sets: sets})
}

func (w *Worker) handleSupports(rw http.ResponseWriter, r *http.Request) {
	var req SupportsRequest
	if !decodeWire(rw, r, &req) {
		return
	}
	e, ok := w.lookup(req.Index)
	if !ok {
		writeWireErr(rw, http.StatusNotFound, "unknown shard entry %q", req.Index)
		return
	}
	out := make([]int64, len(req.Sets))
	kctx, kspan := w.tracer.Start(r.Context(), "kernel-supports")
	kspan.SetAttr("index", req.Index)
	kspan.SetAttr("sets", len(req.Sets))
	err := e.t.PartialSupports(kctx, req.Sets, out)
	kspan.End()
	if err != nil {
		writeShardErr(rw, r.Context(), err)
		return
	}
	writeWireJSON(rw, http.StatusOK, SupportsResponse{Supports: out})
}

// decodeWire strictly decodes one JSON body, reporting (and answering)
// failure itself.
func decodeWire(rw http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(rw, r.Body, maxWireBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeWireErr(rw, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// writeShardErr maps a transport failure onto the wire status the
// client's retry policy keys on: 503 for admission rejection (retryable
// with backoff), 504 when the caller's deadline expired mid-call, 500
// for everything else (retryable — the call is idempotent).
func writeShardErr(rw http.ResponseWriter, ctx context.Context, err error) {
	switch {
	case errors.Is(err, shard.ErrOverloaded):
		writeWireErr(rw, http.StatusServiceUnavailable, "%v", err)
	case ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		writeWireErr(rw, http.StatusGatewayTimeout, "%v", err)
	default:
		writeWireErr(rw, http.StatusInternalServerError, "%v", err)
	}
}

func writeWireJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	enc := json.NewEncoder(rw)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeWireErr(rw http.ResponseWriter, code int, format string, args ...any) {
	writeWireJSON(rw, code, errorBody{Error: fmt.Sprintf(format, args...)})
}
