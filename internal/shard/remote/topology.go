package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"github.com/ossm-mining/ossm/internal/shard"
)

// TopoShard maps one shard id to the worker address serving it.
type TopoShard struct {
	ID   int    `json:"id"`
	Addr string `json:"addr"` // "host:port" or a full http:// URL
}

// Topology is a coordinator's map of the remote fleet — the parsed form
// of the -topology file:
//
//	{"shards": [
//	  {"id": 0, "addr": "127.0.0.1:7801"},
//	  {"id": 1, "addr": "127.0.0.1:7802"}
//	]}
//
// Shard ids must be exactly 0..n-1 (any order in the file); each id
// owns the matching segment range of shard.PartitionSegments, which is
// deterministic, so coordinator and workers agree on the slicing
// without talking to each other.
type Topology struct {
	Shards []TopoShard `json:"shards"`
}

// ParseTopology decodes and validates a topology document.
func ParseTopology(raw []byte) (*Topology, error) {
	var t Topology
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("remote: parsing topology: %w", err)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	sort.Slice(t.Shards, func(i, j int) bool { return t.Shards[i].ID < t.Shards[j].ID })
	return &t, nil
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (*Topology, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("remote: reading topology: %w", err)
	}
	return ParseTopology(raw)
}

func (t *Topology) validate() error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("remote: topology lists no shards")
	}
	seen := make(map[int]bool, len(t.Shards))
	for _, s := range t.Shards {
		if s.ID < 0 || s.ID >= len(t.Shards) {
			return fmt.Errorf("remote: topology shard id %d outside [0, %d)", s.ID, len(t.Shards))
		}
		if seen[s.ID] {
			return fmt.Errorf("remote: topology shard id %d listed twice", s.ID)
		}
		seen[s.ID] = true
		if _, err := normalizeAddr(s.Addr); err != nil {
			return fmt.Errorf("remote: topology shard %d: %w", s.ID, err)
		}
	}
	return nil
}

// NumShards is the fleet size the topology describes.
func (t *Topology) NumShards() int { return len(t.Shards) }

// Transports builds one Client per topology row for the named index,
// in shard-id order, all drawing connections from cfg.HTTPClient (a
// shared pool is created when nil). The result slots straight into
// shard.NewFleet.
func (t *Topology) Transports(index string, cfg ClientConfig) ([]shard.Transport, error) {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = NewHTTPClient()
	}
	out := make([]shard.Transport, len(t.Shards))
	for i, s := range t.Shards {
		c, err := NewClient(s.ID, s.Addr, index, cfg)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}
