package remote

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/shard"
)

// rpcLog is a concurrency-safe hook recorder.
type rpcLog struct {
	mu       sync.Mutex
	outcomes []string
	retries  int
	breaker  []BreakerState
}

func (l *rpcLog) hooks() Hooks {
	return Hooks{
		OnRPC: func(_ int, method, outcome string) {
			l.mu.Lock()
			l.outcomes = append(l.outcomes, method+":"+outcome)
			l.mu.Unlock()
		},
		OnRetry: func(_ int, _ string) {
			l.mu.Lock()
			l.retries++
			l.mu.Unlock()
		},
		OnBreaker: func(_ int, s BreakerState) {
			l.mu.Lock()
			l.breaker = append(l.breaker, s)
			l.mu.Unlock()
		},
	}
}

func (l *rpcLog) retryCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.retries
}

func (l *rpcLog) lastOutcome() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.outcomes) == 0 {
		return ""
	}
	return l.outcomes[len(l.outcomes)-1]
}

func (l *rpcLog) breakerSeq() []BreakerState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]BreakerState(nil), l.breaker...)
}

// scriptedWorker answers /shard/v1/bounds with the queued status codes,
// then 200s with valid bounds forever.
func scriptedWorker(t *testing.T, failures ...int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n < len(failures) {
			w.WriteHeader(failures[n])
			_ = json.NewEncoder(w).Encode(errorBody{Error: "scripted failure"})
			return
		}
		var req BoundsRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		out := make([]int64, len(req.Sets))
		for i := range out {
			out[i] = int64(100 + i)
		}
		_ = json.NewEncoder(w).Encode(BoundsResponse{Bounds: out})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// fastRetry is a client config with tight timeouts for test speed.
func fastRetry(log *rpcLog, maxRetries int) ClientConfig {
	cfg := ClientConfig{
		CallTimeout: 2 * time.Second,
		MaxRetries:  maxRetries,
		RetryBase:   time.Millisecond,
		RetryCap:    4 * time.Millisecond,
		Seed:        42,
	}
	if log != nil {
		cfg.Hooks = log.hooks()
	}
	return cfg
}

func callBounds(t *testing.T, c *Client, nSets int) ([]int64, error) {
	t.Helper()
	sets := make([]ossm.Itemset, nSets)
	for i := range sets {
		sets[i] = ossm.NewItemset(ossm.Item(i))
	}
	out := make([]int64, nSets)
	err := c.PartialBounds(context.Background(), sets, out)
	return out, err
}

func TestClientRetries503ThenSucceeds(t *testing.T) {
	log := &rpcLog{}
	srv, calls := scriptedWorker(t, 503, 503)
	c, err := NewClient(0, srv.URL, "retail", fastRetry(log, 2))
	if err != nil {
		t.Fatal(err)
	}
	out, err := callBounds(t, c, 2)
	if err != nil {
		t.Fatalf("PartialBounds = %v, want success after retries", err)
	}
	if out[0] != 100 || out[1] != 101 {
		t.Fatalf("bounds = %v, want [100 101]", out)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("worker saw %d calls, want 3 (1 + 2 retries)", got)
	}
	if got := log.retryCount(); got != 2 {
		t.Fatalf("retry hook fired %d times, want 2", got)
	}
	if got := log.lastOutcome(); got != "bounds:ok" {
		t.Fatalf("last outcome = %q, want bounds:ok", got)
	}
}

func TestClientRetryBudgetExhaustionWrapsUnavailable(t *testing.T) {
	log := &rpcLog{}
	srv, calls := scriptedWorker(t, 500, 500, 500, 500, 500, 500)
	c, err := NewClient(0, srv.URL, "retail", fastRetry(log, 2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = callBounds(t, c, 1)
	if err == nil {
		t.Fatal("PartialBounds succeeded, want exhausted retries")
	}
	if !errors.Is(err, shard.ErrUnavailable) {
		t.Fatalf("error %v does not wrap shard.ErrUnavailable", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("worker saw %d calls, want exactly 1 + 2 retries", got)
	}
	if got := log.lastOutcome(); got != "bounds:error" {
		t.Fatalf("last outcome = %q, want bounds:error", got)
	}
}

func TestClientOverloaded503KeepsItsMeaning(t *testing.T) {
	srv, _ := scriptedWorker(t, 503, 503, 503, 503)
	c, err := NewClient(0, srv.URL, "retail", fastRetry(nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = callBounds(t, c, 1)
	if !errors.Is(err, shard.ErrOverloaded) {
		t.Fatalf("error %v does not wrap shard.ErrOverloaded (worker 503)", err)
	}
	if !errors.Is(err, shard.ErrUnavailable) {
		t.Fatalf("error %v does not wrap shard.ErrUnavailable", err)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	log := &rpcLog{}
	srv, calls := scriptedWorker(t, 400, 400)
	c, err := NewClient(0, srv.URL, "retail", fastRetry(log, 5))
	if err != nil {
		t.Fatal(err)
	}
	_, err = callBounds(t, c, 1)
	if err == nil {
		t.Fatal("PartialBounds succeeded, want a 400 failure")
	}
	if errors.Is(err, shard.ErrUnavailable) {
		t.Fatalf("a 4xx is a permanent request error; %v must not wrap ErrUnavailable", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("worker saw %d calls, want 1 (no retry on 4xx)", got)
	}
	if got := log.retryCount(); got != 0 {
		t.Fatalf("retry hook fired %d times, want 0", got)
	}
}

func TestClientConnectionRefusedRetriesThenUnavailable(t *testing.T) {
	// Grab a port and close it so dialing is refused deterministically.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	log := &rpcLog{}
	c, err := NewClient(0, addr, "retail", fastRetry(log, 2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = callBounds(t, c, 1)
	if !errors.Is(err, shard.ErrUnavailable) {
		t.Fatalf("error %v does not wrap shard.ErrUnavailable", err)
	}
	if got := log.retryCount(); got != 2 {
		t.Fatalf("retry hook fired %d times, want 2 (conn refused is retryable)", got)
	}
}

func TestClientParentDeadlineStopsRetries(t *testing.T) {
	log := &rpcLog{}
	block := make(chan struct{})
	defer close(block)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req BoundsRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(srv.Close)
	cfg := fastRetry(log, 5)
	c, err := NewClient(0, srv.URL, "retail", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err = c.PartialBounds(ctx, []ossm.Itemset{ossm.NewItemset(0)}, make([]int64, 1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want the caller's DeadlineExceeded", err)
	}
	if got := log.retryCount(); got != 0 {
		t.Fatalf("retry hook fired %d times, want 0 (the caller's deadline is final)", got)
	}
	if got := log.lastOutcome(); got != "bounds:timeout" {
		t.Fatalf("last outcome = %q, want bounds:timeout", got)
	}
}

func TestClientAttemptTimeoutRetriesWithinParentBudget(t *testing.T) {
	log := &rpcLog{}
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req BoundsRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		if calls.Add(1) == 1 {
			// First attempt hangs past the per-attempt timeout. The body is
			// already drained, so the server detects the client's cancel and
			// ends r.Context(); the timer is a backstop for test hygiene.
			select {
			case <-r.Context().Done():
			case <-time.After(2 * time.Second):
			}
			return
		}
		_ = json.NewEncoder(w).Encode(BoundsResponse{Bounds: make([]int64, len(req.Sets))})
	}))
	t.Cleanup(srv.Close)
	cfg := fastRetry(log, 2)
	cfg.CallTimeout = 25 * time.Millisecond
	c, err := NewClient(0, srv.URL, "retail", cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = callBounds(t, c, 1)
	if err != nil {
		t.Fatalf("PartialBounds = %v, want success after an attempt-timeout retry", err)
	}
	if got := log.retryCount(); got != 1 {
		t.Fatalf("retry hook fired %d times, want 1", got)
	}
}

func TestClientBreakerOpensFailsFastAndRecovers(t *testing.T) {
	log := &rpcLog{}
	var healthy atomic.Bool
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(errorBody{Error: "down"})
			return
		}
		var req BoundsRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		_ = json.NewEncoder(w).Encode(BoundsResponse{Bounds: make([]int64, len(req.Sets))})
	}))
	t.Cleanup(srv.Close)

	cfg := fastRetry(log, -1) // no retries: each call is one attempt
	cfg.Breaker = BreakerConfig{FailureThreshold: 2, Cooldown: 30 * time.Millisecond}
	c, err := NewClient(3, srv.URL, "retail", cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		if _, err := callBounds(t, c, 1); err == nil {
			t.Fatal("call succeeded against a down worker")
		}
	}
	if got := c.BreakerState(); got != BreakerOpen {
		t.Fatalf("after %d failures BreakerState = %v, want open", 2, got)
	}
	// Open: rejected without touching the wire.
	before := calls.Load()
	_, err = callBounds(t, c, 1)
	if !errors.Is(err, ErrBreakerOpen) || !errors.Is(err, shard.ErrUnavailable) {
		t.Fatalf("open-breaker error = %v, want ErrBreakerOpen wrapping ErrUnavailable", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still let a call through to the worker")
	}
	if got := log.lastOutcome(); got != "bounds:breaker_open" {
		t.Fatalf("last outcome = %q, want bounds:breaker_open", got)
	}

	// Past the cooldown a single probe closes it again.
	healthy.Store(true)
	time.Sleep(35 * time.Millisecond)
	if _, err := callBounds(t, c, 1); err != nil {
		t.Fatalf("half-open probe = %v, want success", err)
	}
	if got := c.BreakerState(); got != BreakerClosed {
		t.Fatalf("after successful probe BreakerState = %v, want closed", got)
	}
	seq := log.breakerSeq()
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(seq) != len(want) {
		t.Fatalf("breaker transitions = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("breaker transitions = %v, want %v", seq, want)
		}
	}
}

func TestClientInfoCachedAndBreakerOverlay(t *testing.T) {
	_, ix := fixture(t, 400, 8, ossm.RandomGreedy, 3)
	rf := startRemoteFleet(t, "retail", ix, nil, 2, ClientConfig{})
	c := rf.clients[1]
	inf := c.Info()
	if inf.ID != 1 {
		t.Fatalf("Info().ID = %d, want the topology id 1", inf.ID)
	}
	if inf.Segments.Len() == 0 {
		t.Fatal("Info().Segments is empty; worker info did not arrive")
	}
	if c.TotalSegments() != ix.NumSegments() {
		t.Fatalf("TotalSegments = %d, want %d", c.TotalSegments(), ix.NumSegments())
	}
	if c.CanMine() {
		t.Fatal("CanMine() = true for an index-only shard")
	}

	// A dead worker yields a placeholder, not a panic or a stall.
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	addr := ln.Addr().String()
	ln.Close()
	cfg := ClientConfig{CallTimeout: 50 * time.Millisecond}
	dead, err := NewClient(7, addr, "retail", cfg)
	if err != nil {
		t.Fatal(err)
	}
	inf = dead.Info()
	if inf.ID != 7 || inf.State != "unreachable" {
		t.Fatalf("dead worker Info() = %+v, want ID 7 state unreachable", inf)
	}
	if dead.CanMine() || dead.NumTx() != 0 {
		t.Fatal("dead worker reports mining capability")
	}

	// Breaker state overlays the health view.
	cfg = ClientConfig{CallTimeout: 50 * time.Millisecond, MaxRetries: -1,
		Breaker: BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute}}
	down, err := NewClient(2, addr, "retail", cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = down.PartialBounds(context.Background(), []ossm.Itemset{ossm.NewItemset(0)}, make([]int64, 1))
	if got := down.Info().State; got != "breaker-open" {
		t.Fatalf("Info().State = %q, want breaker-open", got)
	}
}

func TestClientRejectsMismatchedBoundsLength(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(BoundsResponse{Bounds: []int64{1}})
	}))
	t.Cleanup(srv.Close)
	c, err := NewClient(0, srv.URL, "retail", fastRetry(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := callBounds(t, c, 3); err == nil {
		t.Fatal("PartialBounds accepted a short bounds vector")
	}
}

func TestNewClientValidatesAddresses(t *testing.T) {
	for _, bad := range []string{"", "ftp://host:1", "http://"} {
		if _, err := NewClient(0, bad, "retail", ClientConfig{}); err == nil {
			t.Fatalf("NewClient accepted address %q", bad)
		}
	}
	if _, err := NewClient(0, "127.0.0.1:7801", "", ClientConfig{}); err == nil {
		t.Fatal("NewClient accepted an empty index name")
	}
	c, err := NewClient(0, "127.0.0.1:7801", "retail", ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.base != "http://127.0.0.1:7801" {
		t.Fatalf("base = %q, want the http:// prefix added", c.base)
	}
}
