package remote

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/shard"
)

// FaultConfig scripts a Fault decorator. All probabilities are in
// [0, 1]; everything is driven by one seeded rng so a given seed
// replays the same fault schedule.
type FaultConfig struct {
	// Seed drives every random decision (latency jitter, error and hang
	// draws). The same seed over the same call sequence injects the same
	// faults.
	Seed int64
	// Latency and Jitter delay every data call by Latency plus a uniform
	// [0, Jitter) extra, honoring the call's context.
	Latency time.Duration
	Jitter  time.Duration
	// ErrorRate is the probability a data call fails with ErrInjected
	// instead of reaching the wrapped transport.
	ErrorRate float64
	// HangRate is the probability a data call blocks until its context is
	// done — the pathological peer that accepts and never answers.
	HangRate float64
	// PartitionEvery / PartitionFor schedule partition windows by call
	// count: of every PartitionEvery consecutive data calls, the last
	// PartitionFor fail with ErrPartitioned. Zero disables.
	PartitionEvery int
	PartitionFor   int
}

// Fault wraps a shard.Transport with deterministic fault injection —
// the chaos-test workhorse. Under a Worker it makes a real HTTP shard
// misbehave (the coordinator sees genuine wire failures); over a Client
// or LocalTransport it exercises a coordinator alone.
//
// Info, CanMine and NumTx pass through untouched: faults model the data
// path, and a hedging coordinator must still be able to read identity.
type Fault struct {
	t shard.Transport

	rngMu sync.Mutex
	rng   *rand.Rand

	latency  atomic.Int64 // nanoseconds
	jitter   atomic.Int64
	errRate  atomic.Uint64 // probability scaled through rateBits
	hangRate float64       // fixed at construction; runtime hanging is SetHung
	hung     atomic.Bool
	parted   atomic.Bool

	partEvery int
	partFor   int
	calls     atomic.Int64

	injectedErrs  atomic.Int64
	injectedHangs atomic.Int64
	partedDrops   atomic.Int64
}

// NewFault wraps t with the scripted faults.
func NewFault(t shard.Transport, cfg FaultConfig) *Fault {
	f := &Fault{
		t:         t,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		partEvery: cfg.PartitionEvery,
		partFor:   cfg.PartitionFor,
	}
	f.latency.Store(int64(cfg.Latency))
	f.jitter.Store(int64(cfg.Jitter))
	f.errRate.Store(rateBits(cfg.ErrorRate))
	f.hangRate = cfg.HangRate
	return f
}

// SetLatency replaces the injected base latency and jitter at runtime.
func (f *Fault) SetLatency(latency, jitter time.Duration) {
	f.latency.Store(int64(latency))
	f.jitter.Store(int64(jitter))
}

// SetErrorRate replaces the injected error probability at runtime.
func (f *Fault) SetErrorRate(p float64) { f.errRate.Store(rateBits(p)) }

// SetHung makes every data call block on its context (true) or restores
// normal service (false) — the chaos tests' "one shard wedged" lever.
func (f *Fault) SetHung(v bool) { f.hung.Store(v) }

// SetPartitioned drops every data call with ErrPartitioned (true) or
// heals the partition (false).
func (f *Fault) SetPartitioned(v bool) { f.parted.Store(v) }

// FaultStats counts what a Fault has injected so far.
type FaultStats struct {
	Calls          int64 // data calls that reached the decorator
	InjectedErrors int64 // calls failed with ErrInjected
	InjectedHangs  int64 // calls blocked until their context ended
	PartitionDrops int64 // calls dropped by a partition (scheduled or set)
}

// Stats snapshots the injection counters.
func (f *Fault) Stats() FaultStats {
	return FaultStats{
		Calls:          f.calls.Load(),
		InjectedErrors: f.injectedErrs.Load(),
		InjectedHangs:  f.injectedHangs.Load(),
		PartitionDrops: f.partedDrops.Load(),
	}
}

// Info implements shard.Transport (passes through).
func (f *Fault) Info() shard.Info { return f.t.Info() }

// CanMine implements shard.Transport (passes through).
func (f *Fault) CanMine() bool { return f.t.CanMine() }

// NumTx implements shard.Transport (passes through).
func (f *Fault) NumTx() int { return f.t.NumTx() }

// PartialBounds implements shard.Transport with faults ahead of the
// wrapped call.
func (f *Fault) PartialBounds(ctx context.Context, sets []ossm.Itemset, out []int64) error {
	if err := f.inject(ctx); err != nil {
		return err
	}
	return f.t.PartialBounds(ctx, sets, out)
}

// LocalFrequent implements shard.Transport with faults ahead of the
// wrapped call.
func (f *Fault) LocalFrequent(ctx context.Context, miner string, localMin int64, maxLen int) ([]ossm.Itemset, error) {
	if err := f.inject(ctx); err != nil {
		return nil, err
	}
	return f.t.LocalFrequent(ctx, miner, localMin, maxLen)
}

// PartialSupports implements shard.Transport with faults ahead of the
// wrapped call.
func (f *Fault) PartialSupports(ctx context.Context, cands []ossm.Itemset, out []int64) error {
	if err := f.inject(ctx); err != nil {
		return err
	}
	return f.t.PartialSupports(ctx, cands, out)
}

// inject runs the fault schedule for one data call: partition check,
// hang check, error draw, then latency.
func (f *Fault) inject(ctx context.Context) error {
	n := f.calls.Add(1)
	if f.parted.Load() || f.inScheduledPartition(n) {
		f.partedDrops.Add(1)
		return ErrPartitioned
	}
	if f.hung.Load() || f.draw(f.hangRate) {
		f.injectedHangs.Add(1)
		<-ctx.Done()
		return ctx.Err()
	}
	if f.draw(rateFromBits(f.errRate.Load())) {
		f.injectedErrs.Add(1)
		return ErrInjected
	}
	if err := f.sleep(ctx); err != nil {
		return err
	}
	return ctx.Err()
}

// inScheduledPartition reports whether call n (1-based) falls in a
// scheduled partition window: the last partFor calls of every
// partEvery-call cycle.
func (f *Fault) inScheduledPartition(n int64) bool {
	if f.partEvery <= 0 || f.partFor <= 0 {
		return false
	}
	pos := (n - 1) % int64(f.partEvery)
	return pos >= int64(f.partEvery-f.partFor)
}

// draw samples one Bernoulli decision from the seeded rng.
func (f *Fault) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	f.rngMu.Lock()
	v := f.rng.Float64()
	f.rngMu.Unlock()
	return v < p
}

// sleep injects the configured latency, honoring ctx.
func (f *Fault) sleep(ctx context.Context) error {
	d := time.Duration(f.latency.Load())
	if j := time.Duration(f.jitter.Load()); j > 0 {
		f.rngMu.Lock()
		d += time.Duration(f.rng.Int63n(int64(j)))
		f.rngMu.Unlock()
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// rateBits / rateFromBits shuttle a probability through an atomic.
func rateBits(p float64) uint64     { return uint64(p * 1e9) }
func rateFromBits(b uint64) float64 { return float64(b) / 1e9 }
