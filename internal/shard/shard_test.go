package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ossm "github.com/ossm-mining/ossm"
)

func TestPartitionSegments(t *testing.T) {
	cases := []struct {
		segs, n int
		want    []Range
	}{
		{24, 8, []Range{{0, 3}, {3, 6}, {6, 9}, {9, 12}, {12, 15}, {15, 18}, {18, 21}, {21, 24}}},
		{26, 8, []Range{{0, 4}, {4, 8}, {8, 11}, {11, 14}, {14, 17}, {17, 20}, {20, 23}, {23, 26}}},
		{5, 1, []Range{{0, 5}}},
		{5, 0, []Range{{0, 5}}},
		{3, 8, []Range{{0, 1}, {1, 2}, {2, 3}}},
	}
	for _, c := range cases {
		got := PartitionSegments(c.segs, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("PartitionSegments(%d, %d) = %v, want %v", c.segs, c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("PartitionSegments(%d, %d)[%d] = %v, want %v", c.segs, c.n, i, got[i], c.want[i])
			}
		}
		// Invariants: contiguous cover of [0, segs), no empty range.
		lo := 0
		for _, r := range got {
			if r.Lo != lo || r.Len() < 1 {
				t.Fatalf("PartitionSegments(%d, %d): bad range %v at lo=%d", c.segs, c.n, r, lo)
			}
			lo = r.Hi
		}
		if lo != c.segs {
			t.Fatalf("PartitionSegments(%d, %d) covers [0,%d), want [0,%d)", c.segs, c.n, lo, c.segs)
		}
	}
}

func testFixture(t *testing.T, numTx, seed int) (*ossm.Dataset, map[ossm.Algorithm]*ossm.Index) {
	t.Helper()
	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(numTx, int64(seed)))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[ossm.Algorithm]*ossm.Index)
	for _, alg := range []ossm.Algorithm{ossm.Random, ossm.RC, ossm.Greedy, ossm.RandomRC, ossm.RandomGreedy} {
		ix, err := ossm.Build(d, ossm.BuildOptions{Segments: 24, Algorithm: alg, Seed: int64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		out[alg] = ix
	}
	return d, out
}

func randomSets(r *rand.Rand, numItems, n int) []ossm.Itemset {
	sets := make([]ossm.Itemset, n)
	for i := range sets {
		k := 1 + r.Intn(4)
		items := make([]ossm.Item, 0, k)
		seen := map[ossm.Item]bool{}
		for len(items) < k {
			it := ossm.Item(r.Intn(numItems))
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		sets[i] = ossm.NewItemset(items...)
	}
	return sets
}

// TestFleetBoundsDifferential is the headline exactness test: for every
// segmenter and shard count (including splits that do not divide the
// segment count), scatter-gather bounds through a fleet are bit-identical
// to the single-index batch kernel.
func TestFleetBoundsDifferential(t *testing.T) {
	d, indexes := testFixture(t, 1200, 7)
	r := rand.New(rand.NewSource(7))
	for alg, ix := range indexes {
		sets := randomSets(r, ix.NumItems(), 64)
		want := ix.UpperBoundBatch(sets, nil)
		for _, n := range []int{1, 2, 3, 8} {
			shards, err := NewLocalShards(ix, d, n, 0)
			if err != nil {
				t.Fatal(err)
			}
			f, err := NewFleet(Config{HedgeAfter: -1}, Transports(shards))
			if err != nil {
				t.Fatal(err)
			}
			got := make([]int64, len(sets))
			if err := f.Bounds(context.Background(), sets, got); err != nil {
				t.Fatalf("alg %v, %d shards: %v", alg, n, err)
			}
			for i := range sets {
				if got[i] != want[i] {
					t.Fatalf("alg %v, %d shards: bound[%d] = %d, want %d for %v",
						alg, n, i, got[i], want[i], sets[i])
				}
			}
		}
	}
}

// TestFleetMineDifferential pins the scatter-gather mine to the
// single-node answer: same frequent itemsets, same exact supports, across
// shard counts with uneven transaction splits.
func TestFleetMineDifferential(t *testing.T) {
	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(900, 3))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ossm.Build(d, ossm.BuildOptions{Segments: 16, Algorithm: ossm.RandomGreedy, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const minCount = 12
	ref, err := ossm.MineAt("eclat", d, minCount, ossm.MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	for _, c := range ref.All() {
		want[setKey(c.Items)] = c.Count
	}
	if len(want) == 0 {
		t.Fatal("reference mine found nothing; lower minCount")
	}
	for _, n := range []int{1, 2, 3, 7} {
		shards, err := NewLocalShards(ix, d, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFleet(Config{HedgeAfter: -1}, Transports(shards))
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Mine(context.Background(), MineConfig{Miner: "eclat", MinCount: minCount})
		if err != nil {
			t.Fatalf("%d shards: %v", n, err)
		}
		if len(res.Frequent) != len(want) {
			t.Fatalf("%d shards: %d frequent itemsets, want %d", n, len(res.Frequent), len(want))
		}
		for _, c := range res.Frequent {
			if w, ok := want[setKey(c.Items)]; !ok || w != c.Count {
				t.Fatalf("%d shards: %v count %d, want %d (present %v)", n, c.Items, c.Count, w, ok)
			}
		}
		if res.Candidates < len(want) {
			t.Fatalf("%d shards: %d candidates < %d frequent", n, res.Candidates, len(want))
		}
	}
}

// TestFleetMineMaxLen checks the MaxLen cap flows through scatter-gather.
func TestFleetMineMaxLen(t *testing.T) {
	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(600, 5))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ossm.Build(d, ossm.BuildOptions{Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := NewLocalShards(ix, d, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(Config{HedgeAfter: -1}, Transports(shards))
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Mine(context.Background(), MineConfig{Miner: "eclat", MinCount: 8, MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ossm.MineAt("eclat", d, 8, ossm.MineOptions{MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) != len(ref.All()) {
		t.Fatalf("MaxLen=1: %d frequent, want %d", len(res.Frequent), len(ref.All()))
	}
	for _, c := range res.Frequent {
		if len(c.Items) != 1 {
			t.Fatalf("MaxLen=1 returned %v", c.Items)
		}
	}
}

// TestShardAdmissionCap drives a shard past its in-flight cap and checks
// both the typed error and the outcome callback label.
func TestShardAdmissionCap(t *testing.T) {
	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(300, 1))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ossm.Build(d, ossm.BuildOptions{Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := NewLocalShards(ix, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := shards[0]
	if err := s.admit(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	outcomes := map[string]int{}
	f, err := NewFleet(Config{
		HedgeAfter: -1,
		OnShardOutcome: func(_ int, o string) {
			mu.Lock()
			outcomes[o]++
			mu.Unlock()
		},
	}, Transports(shards))
	if err != nil {
		t.Fatal(err)
	}
	sets := []ossm.Itemset{ossm.NewItemset(0)}
	err = f.Bounds(context.Background(), sets, make([]int64, 1))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	mu.Lock()
	over := outcomes["overloaded"]
	mu.Unlock()
	if over != 1 {
		t.Fatalf("overloaded outcome count = %d, want 1", over)
	}
	if s.Info().Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", s.Info().Rejected)
	}
	s.release()
	if err := f.Bounds(context.Background(), sets, make([]int64, 1)); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// fakeTransport wraps a LocalTransport with an injectable per-call delay
// and call counting — the stand-in for a slow remote shard.
type fakeTransport struct {
	inner   Transport
	calls   atomic.Int64
	delayFn func(call int64) time.Duration
	block   chan struct{} // when non-nil, PartialBounds waits on it
}

func (t *fakeTransport) Info() Info    { return t.inner.Info() }
func (t *fakeTransport) CanMine() bool { return t.inner.CanMine() }
func (t *fakeTransport) NumTx() int    { return t.inner.NumTx() }
func (t *fakeTransport) PartialBounds(ctx context.Context, sets []ossm.Itemset, out []int64) error {
	call := t.calls.Add(1)
	if t.block != nil {
		<-t.block
	}
	if t.delayFn != nil {
		select {
		case <-time.After(t.delayFn(call)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return t.inner.PartialBounds(ctx, sets, out)
}
func (t *fakeTransport) LocalFrequent(ctx context.Context, miner string, localMin int64, maxLen int) ([]ossm.Itemset, error) {
	return t.inner.LocalFrequent(ctx, miner, localMin, maxLen)
}
func (t *fakeTransport) PartialSupports(ctx context.Context, cands []ossm.Itemset, out []int64) error {
	return t.inner.PartialSupports(ctx, cands, out)
}

// TestFleetHedging slows a shard's first response far past the cutoff:
// the coordinator must fire a duplicate, take the duplicate's (fast)
// answer, and still return exact bounds.
func TestFleetHedging(t *testing.T) {
	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(400, 2))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ossm.Build(d, ossm.BuildOptions{Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := NewLocalShards(ix, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow := &fakeTransport{
		inner: LocalTransport{shards[0]},
		delayFn: func(call int64) time.Duration {
			if call == 1 {
				return 200 * time.Millisecond
			}
			return 0
		},
	}
	var fired, won atomic.Int64
	f, err := NewFleet(Config{
		HedgeAfter: 5 * time.Millisecond,
		OnShardOutcome: func(_ int, o string) {
			switch o {
			case "hedge_fired":
				fired.Add(1)
			case "hedge_won":
				won.Add(1)
			}
		},
	}, []Transport{slow})
	if err != nil {
		t.Fatal(err)
	}
	sets := []ossm.Itemset{ossm.NewItemset(0), ossm.NewItemset(1, 2)}
	want := ix.UpperBoundBatch(sets, nil)
	got := make([]int64, len(sets))
	start := time.Now()
	if err := f.Bounds(context.Background(), sets, got); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 150*time.Millisecond {
		t.Fatalf("hedge did not cut the tail: request took %v", took)
	}
	for i := range sets {
		if got[i] != want[i] {
			t.Fatalf("hedged bound[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	st := f.Describe()
	if fired.Load() < 1 || st.HedgesFired < 1 {
		t.Fatalf("hedge never fired (callback %d, stats %d)", fired.Load(), st.HedgesFired)
	}
	if won.Load() < 1 || st.HedgesWon < 1 {
		t.Fatalf("hedge fired but never won (callback %d, stats %d)", won.Load(), st.HedgesWon)
	}
	if slow.calls.Load() < 2 {
		t.Fatalf("transport saw %d calls, want the hedged duplicate", slow.calls.Load())
	}
}

// TestFleetSwapDrain pins the graceful-drain contract: Swap must not
// return while a request against the old topology is still in flight,
// and requests after the swap are served by the new shards.
func TestFleetSwapDrain(t *testing.T) {
	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(400, 4))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ossm.Build(d, ossm.BuildOptions{Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	oldShards, err := NewLocalShards(ix, nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	blocked := &fakeTransport{inner: LocalTransport{oldShards[0]}, block: gate}
	f, err := NewFleet(Config{HedgeAfter: -1}, []Transport{blocked, LocalTransport{oldShards[1]}})
	if err != nil {
		t.Fatal(err)
	}
	sets := []ossm.Itemset{ossm.NewItemset(0, 1)}
	want := ix.UpperBoundBatch(sets, nil)

	boundsDone := make(chan error, 1)
	go func() {
		out := make([]int64, 1)
		err := f.Bounds(context.Background(), sets, out)
		if err == nil && out[0] != want[0] {
			err = fmt.Errorf("old-topology bound %d, want %d", out[0], want[0])
		}
		boundsDone <- err
	}()
	// Wait for the request to pin the old topology.
	for blocked.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	newShards, err := NewLocalShards(ix, nil, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	swapDone := make(chan struct{})
	go func() {
		if err := f.Swap(Transports(newShards)); err != nil {
			t.Error(err)
		}
		close(swapDone)
	}()
	select {
	case <-swapDone:
		t.Fatal("Swap returned while a request against the old topology was in flight")
	case <-time.After(30 * time.Millisecond):
	}
	// New requests are already served by the new topology while the old
	// one drains.
	out := make([]int64, 1)
	if err := f.Bounds(context.Background(), sets, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != want[0] {
		t.Fatalf("new-topology bound %d, want %d", out[0], want[0])
	}
	if got := f.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d after swap, want 4", got)
	}

	close(gate)
	if err := <-boundsDone; err != nil {
		t.Fatal(err)
	}
	select {
	case <-swapDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Swap never returned after the old topology drained")
	}
	st := f.Describe()
	if st.Generation != 2 {
		t.Fatalf("generation = %d after swap, want 2", st.Generation)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("Describe reports %d shards, want 4", len(st.Shards))
	}
}

// TestFleetRaceSoak hammers one fleet from 40 goroutines mixing bound
// queries, hedged queries, mining, stats reads and topology swaps. Run
// under -race this is the concurrency gate for the coordinator; every
// bound answered during the storm must still be exact.
func TestFleetRaceSoak(t *testing.T) {
	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(600, 11))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ossm.Build(d, ossm.BuildOptions{Segments: 24, Algorithm: ossm.RandomGreedy, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := NewLocalShards(ix, d, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(Config{HedgeAfter: 50 * time.Microsecond, OnShardOutcome: func(int, string) {}},
		Transports(shards))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	sets := randomSets(r, ix.NumItems(), 16)
	want := ix.UpperBoundBatch(sets, nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 48)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	const goroutines = 40
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int64, len(sets))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch {
				case g == 0: // swapper
					n := 1 + (i % 4)
					ns, err := NewLocalShards(ix, d, n, 0)
					if err != nil {
						fail(err)
						return
					}
					if err := f.Swap(Transports(ns)); err != nil {
						fail(err)
						return
					}
				case g == 1: // stats reader
					f.Describe()
					f.NumShards()
				case g == 2 && i%8 == 0: // occasional miner
					if _, err := f.Mine(context.Background(), MineConfig{Miner: "eclat", MinCount: 25, MaxLen: 2}); err != nil {
						fail(err)
						return
					}
				default: // query traffic, hedges firing at the tiny cutoff
					if err := f.Bounds(context.Background(), sets, out); err != nil {
						fail(err)
						return
					}
					for j := range sets {
						if out[j] != want[j] {
							fail(fmt.Errorf("goroutine %d: bound[%d] = %d, want %d", g, j, out[j], want[j]))
							return
						}
					}
				}
			}
		}(g)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestScaleMinCount pins the Partition local-threshold bound.
func TestScaleMinCount(t *testing.T) {
	cases := []struct {
		min          int64
		slice, total int
		want         int64
	}{
		{100, 50, 100, 50},
		{100, 33, 100, 33},
		{100, 34, 100, 34},
		{99, 33, 100, 33}, // ceil(32.67)
		{1, 1, 1000, 1},
		{10, 0, 100, 1}, // floor at 1
	}
	for _, c := range cases {
		if got := scaleMinCount(c.min, c.slice, c.total); got != c.want {
			t.Fatalf("scaleMinCount(%d, %d, %d) = %d, want %d", c.min, c.slice, c.total, got, c.want)
		}
	}
}

// TestFleetMineNoDataset checks the typed failure when shards hold no
// transaction slices.
func TestFleetMineNoDataset(t *testing.T) {
	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(200, 6))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ossm.Build(d, ossm.BuildOptions{Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := NewLocalShards(ix, nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(Config{HedgeAfter: -1}, Transports(shards))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Mine(context.Background(), MineConfig{Miner: "eclat", MinCount: 10}); err == nil {
		t.Fatal("mining a dataset-less fleet should fail")
	}
}
