package shard

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/conc"
	"github.com/ossm-mining/ossm/internal/obs"
)

// MineConfig parameterizes one scatter-gather mining run.
type MineConfig struct {
	// Miner is the registered miner each shard runs locally.
	Miner string
	// MinCount is the global absolute support threshold.
	MinCount int64
	// MaxLen caps itemset length (0 = unbounded).
	MaxLen int
}

// MineResult is the merged output of a scatter-gather mining run.
type MineResult struct {
	// Frequent holds every globally frequent itemset with its exact
	// support, sorted by descending support then itemset order.
	Frequent []ossm.Counted
	// Candidates is the size of the union of locally frequent itemsets
	// (the gather phase's counting workload).
	Candidates int
	// Shards is the fleet width the run fanned over.
	Shards int
}

// Mine runs the two-round scatter-gather mine over the fleet's
// transaction slices — the distributed shape of Savasere et al.'s
// Partition, which the repo's internal/partition miner implements on one
// node:
//
//  1. Scatter: every shard mines its own slice at the shard-scaled
//     threshold ceil(MinCount · shardTx / totalTx). Pigeonhole
//     guarantees every globally frequent itemset is locally frequent in
//     at least one shard, so the union of the local answers is a
//     superset of the global answer.
//  2. Gather: the union is fanned back out; each shard reports exact
//     partial supports over its slice, and the coordinator merges by
//     addition — supports over disjoint transaction slices sum
//     losslessly, exactly like per-segment bounds.
//
// The result is therefore bit-identical to a single-node mine of the
// whole dataset at MinCount.
func (f *Fleet) Mine(ctx context.Context, cfg MineConfig) (*MineResult, error) {
	if cfg.MinCount < 1 {
		return nil, fmt.Errorf("shard: Mine needs a positive MinCount")
	}
	top := f.acquire()
	defer top.refs.Done()
	shards := top.shards
	totalTx := 0
	for _, t := range shards {
		if !t.CanMine() {
			return nil, fmt.Errorf("shard %d holds no transactions; the fleet cannot mine", t.Info().ID)
		}
		totalTx += t.NumTx()
	}
	if totalTx == 0 {
		return nil, fmt.Errorf("shard: the fleet holds no transactions")
	}

	// Round 1: scatter local mining, union the locally frequent sets.
	var scatter *obs.Span
	if f.cfg.Tracer != nil {
		_, scatter = f.cfg.Tracer.Start(ctx, "mine-scatter")
	}
	locals := make([][]ossm.Itemset, len(shards))
	errs := make([]error, len(shards))
	conc.Scatter(len(shards), func(i int) {
		t := shards[i]
		localMin := scaleMinCount(cfg.MinCount, t.NumTx(), totalTx)
		locals[i], errs[i] = t.LocalFrequent(ctx, cfg.Miner, localMin, cfg.MaxLen)
	})
	for _, err := range errs {
		if err != nil {
			if scatter != nil {
				scatter.SetAttr("outcome", "error")
				scatter.End()
			}
			return nil, err
		}
	}
	union := make(map[string]ossm.Itemset)
	for _, sets := range locals {
		for _, x := range sets {
			union[setKey(x)] = x
		}
	}
	cands := make([]ossm.Itemset, 0, len(union))
	for _, x := range union {
		cands = append(cands, x)
	}
	// Deterministic candidate order: shorter first, then lexicographic —
	// the gather fan-out and the final report are scheduling-independent.
	sort.Slice(cands, func(i, j int) bool {
		if len(cands[i]) != len(cands[j]) {
			return len(cands[i]) < len(cands[j])
		}
		return cands[i].Compare(cands[j]) < 0
	})
	if scatter != nil {
		scatter.SetAttr("candidates", len(cands))
		scatter.End()
	}

	// Round 2: gather exact partial supports, merge by addition.
	var gather *obs.Span
	if f.cfg.Tracer != nil {
		_, gather = f.cfg.Tracer.Start(ctx, "mine-gather")
	}
	partials := make([][]int64, len(shards))
	conc.Scatter(len(shards), func(i int) {
		buf := make([]int64, len(cands))
		errs[i] = shards[i].PartialSupports(ctx, cands, buf)
		partials[i] = buf
	})
	for _, err := range errs {
		if err != nil {
			if gather != nil {
				gather.SetAttr("outcome", "error")
				gather.End()
			}
			return nil, err
		}
	}
	res := &MineResult{Candidates: len(cands), Shards: len(shards)}
	for ci, x := range cands {
		var sup int64
		for _, part := range partials {
			sup += part[ci]
		}
		if sup >= cfg.MinCount {
			res.Frequent = append(res.Frequent, ossm.Counted{Items: x, Count: sup})
		}
	}
	sort.Slice(res.Frequent, func(i, j int) bool {
		if res.Frequent[i].Count != res.Frequent[j].Count {
			return res.Frequent[i].Count > res.Frequent[j].Count
		}
		return res.Frequent[i].Items.Compare(res.Frequent[j].Items) < 0
	})
	if gather != nil {
		gather.SetAttr("frequent", len(res.Frequent))
		gather.End()
	}
	return res, nil
}

// scaleMinCount is the Partition bound localMin = ceil(minCount ·
// sliceTx / totalTx), at least 1 (internal/partition uses the identical
// formula for its page-local phase).
func scaleMinCount(minCount int64, sliceTx, totalTx int) int64 {
	num := minCount * int64(sliceTx)
	lm := num / int64(totalTx)
	if num%int64(totalTx) != 0 {
		lm++
	}
	if lm < 1 {
		lm = 1
	}
	return lm
}

// setKey encodes an itemset as a compact map key.
func setKey(x ossm.Itemset) string {
	b := make([]byte, 0, 4*len(x))
	for _, it := range x {
		b = binary.AppendUvarint(b, uint64(it))
	}
	return string(b)
}
