package dataset

import (
	"errors"
	"fmt"
	"sort"
)

// ErrItemOutOfRange is returned when a transaction references an item at or
// beyond the dataset's declared domain size.
var ErrItemOutOfRange = errors.New("dataset: item out of range")

// Dataset is a compact, immutable-after-build collection of transactions.
// Transactions are stored column-flattened (one items slice plus an offsets
// slice) so that multi-million-transaction collections — the paper goes to
// 5 million — stay cache- and GC-friendly.
//
// Every transaction is a valid Itemset (strictly ascending items).
type Dataset struct {
	numItems int
	offsets  []uint32 // len = NumTx()+1; tx i spans items[offsets[i]:offsets[i+1]]
	items    []Item
}

// NumItems returns k, the size of the item domain. Items are 0 … k-1.
func (d *Dataset) NumItems() int { return d.numItems }

// NumTx returns the number of transactions.
func (d *Dataset) NumTx() int { return len(d.offsets) - 1 }

// Tx returns transaction i as a read-only slice. The caller must not
// modify it.
func (d *Dataset) Tx(i int) Itemset {
	return Itemset(d.items[d.offsets[i]:d.offsets[i+1]])
}

// TotalItems returns the total number of item occurrences across all
// transactions (the sum of transaction lengths).
func (d *Dataset) TotalItems() int { return len(d.items) }

// AvgTxLen returns the average transaction length.
func (d *Dataset) AvgTxLen() float64 {
	if d.NumTx() == 0 {
		return 0
	}
	return float64(len(d.items)) / float64(d.NumTx())
}

// ItemCounts returns, for each item, its support within the half-open
// transaction range [lo, hi). This is the primitive from which both the
// initial per-page supports (Corollary 1's "page version") and full-dataset
// singleton supports are derived.
func (d *Dataset) ItemCounts(lo, hi int) []uint32 {
	counts := make([]uint32, d.numItems)
	for _, it := range d.items[d.offsets[lo]:d.offsets[hi]] {
		counts[it]++
	}
	return counts
}

// Support counts the transactions in d that contain every item of x.
// It is the exact (linear-scan) reference used by tests and by miners'
// final counting passes.
func (d *Dataset) Support(x Itemset) int {
	n := 0
	for i := 0; i < d.NumTx(); i++ {
		if x.SubsetOf(d.Tx(i)) {
			n++
		}
	}
	return n
}

// SupportIn counts the transactions within [lo, hi) that contain x.
func (d *Dataset) SupportIn(x Itemset, lo, hi int) int {
	n := 0
	for i := lo; i < hi; i++ {
		if x.SubsetOf(d.Tx(i)) {
			n++
		}
	}
	return n
}

// Slice returns a new Dataset containing the transactions [lo, hi) of d.
// The returned dataset shares no mutable state with d.
func (d *Dataset) Slice(lo, hi int) *Dataset {
	b := NewBuilder(d.numItems)
	for i := lo; i < hi; i++ {
		b.mustAppendSorted(d.Tx(i))
	}
	return b.Build()
}

// Reorder returns a new Dataset whose transaction i is d.Tx(perm[i]).
// perm must be a permutation of 0…NumTx()-1; Reorder panics otherwise.
// The paper's Theorem 1 "allows T to be rearranged" — this is that
// rearrangement.
func (d *Dataset) Reorder(perm []int) *Dataset {
	if len(perm) != d.NumTx() {
		panic(fmt.Sprintf("dataset: Reorder permutation has length %d, want %d", len(perm), d.NumTx()))
	}
	seen := make([]bool, len(perm))
	b := NewBuilder(d.numItems)
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			panic("dataset: Reorder argument is not a permutation")
		}
		seen[p] = true
		b.mustAppendSorted(d.Tx(p))
	}
	return b.Build()
}

// Builder accumulates transactions and produces an immutable Dataset.
type Builder struct {
	numItems int
	offsets  []uint32
	items    []Item
	scratch  []Item
}

// NewBuilder returns a Builder for a domain of numItems items.
func NewBuilder(numItems int) *Builder {
	return &Builder{
		numItems: numItems,
		offsets:  []uint32{0},
	}
}

// Append adds one transaction. The input may be unsorted and may contain
// duplicates; it is normalized. Items at or beyond the domain size are
// rejected with ErrItemOutOfRange. Empty transactions are legal (they
// support nothing but still count toward NumTx).
func (b *Builder) Append(tx []Item) error {
	for _, it := range tx {
		if int(it) >= b.numItems {
			return fmt.Errorf("%w: item %d with domain size %d", ErrItemOutOfRange, it, b.numItems)
		}
	}
	b.scratch = append(b.scratch[:0], tx...)
	sort.Slice(b.scratch, func(i, j int) bool { return b.scratch[i] < b.scratch[j] })
	prev := Item(0)
	first := true
	for _, it := range b.scratch {
		if !first && it == prev {
			continue
		}
		b.items = append(b.items, it)
		prev = it
		first = false
	}
	b.offsets = append(b.offsets, uint32(len(b.items)))
	return nil
}

// mustAppendSorted appends a transaction that is already a valid Itemset
// from the same domain; used internally where the invariant is known.
func (b *Builder) mustAppendSorted(tx Itemset) {
	b.items = append(b.items, tx...)
	b.offsets = append(b.offsets, uint32(len(b.items)))
}

// Len returns the number of transactions appended so far.
func (b *Builder) Len() int { return len(b.offsets) - 1 }

// Build finalizes the dataset. The Builder must not be used afterwards.
func (b *Builder) Build() *Dataset {
	d := &Dataset{numItems: b.numItems, offsets: b.offsets, items: b.items}
	b.offsets = nil
	b.items = nil
	return d
}

// FromTransactions is a convenience constructor for tests and examples.
func FromTransactions(numItems int, txs [][]Item) (*Dataset, error) {
	b := NewBuilder(numItems)
	for i, tx := range txs {
		if err := b.Append(tx); err != nil {
			return nil, fmt.Errorf("transaction %d: %w", i, err)
		}
	}
	return b.Build(), nil
}

// MustFromTransactions is FromTransactions that panics on error; for use
// with literal data in tests and examples.
func MustFromTransactions(numItems int, txs [][]Item) *Dataset {
	d, err := FromTransactions(numItems, txs)
	if err != nil {
		panic(err)
	}
	return d
}
