package dataset

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperExample2 is the six-transaction collection over items {a=0, b=1}
// from Example 2 of the paper.
func paperExample2() *Dataset {
	return MustFromTransactions(2, [][]Item{
		{0},    // t1 {a}
		{0, 1}, // t2 {a,b}
		{0},    // t3 {a}
		{0},    // t4 {a}
		{1},    // t5 {b}
		{1},    // t6 {b}
	})
}

func TestBuilderNormalizes(t *testing.T) {
	b := NewBuilder(10)
	if err := b.Append([]Item{5, 1, 5, 3, 1}); err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	if got, want := d.Tx(0), NewItemset(1, 3, 5); !got.Equal(want) {
		t.Errorf("Tx(0) = %v, want %v", got, want)
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	err := b.Append([]Item{0, 3})
	if !errors.Is(err, ErrItemOutOfRange) {
		t.Errorf("err = %v, want ErrItemOutOfRange", err)
	}
}

func TestDatasetAccessors(t *testing.T) {
	d := paperExample2()
	if d.NumItems() != 2 {
		t.Errorf("NumItems = %d, want 2", d.NumItems())
	}
	if d.NumTx() != 6 {
		t.Errorf("NumTx = %d, want 6", d.NumTx())
	}
	if d.TotalItems() != 7 {
		t.Errorf("TotalItems = %d, want 7", d.TotalItems())
	}
	if got := d.AvgTxLen(); got < 1.16 || got > 1.17 {
		t.Errorf("AvgTxLen = %f, want 7/6", got)
	}
}

func TestSupportMatchesPaperExample2(t *testing.T) {
	d := paperExample2()
	if got := d.Support(NewItemset(0)); got != 4 {
		t.Errorf("sup({a}) = %d, want 4", got)
	}
	if got := d.Support(NewItemset(1)); got != 3 {
		t.Errorf("sup({b}) = %d, want 3", got)
	}
	if got := d.Support(NewItemset(0, 1)); got != 1 {
		t.Errorf("sup({a,b}) = %d, want 1", got)
	}
	if got := d.Support(nil); got != 6 {
		t.Errorf("sup({}) = %d, want 6 (every transaction)", got)
	}
}

func TestItemCounts(t *testing.T) {
	d := paperExample2()
	all := d.ItemCounts(0, d.NumTx())
	if all[0] != 4 || all[1] != 3 {
		t.Errorf("ItemCounts full = %v, want [4 3]", all)
	}
	firstFour := d.ItemCounts(0, 4)
	if firstFour[0] != 4 || firstFour[1] != 1 {
		t.Errorf("ItemCounts[0,4) = %v, want [4 1]", firstFour)
	}
	lastTwo := d.ItemCounts(4, 6)
	if lastTwo[0] != 0 || lastTwo[1] != 2 {
		t.Errorf("ItemCounts[4,6) = %v, want [0 2]", lastTwo)
	}
}

func TestSupportIn(t *testing.T) {
	d := paperExample2()
	if got := d.SupportIn(NewItemset(0), 0, 4); got != 4 {
		t.Errorf("SupportIn a [0,4) = %d, want 4", got)
	}
	if got := d.SupportIn(NewItemset(1), 4, 6); got != 2 {
		t.Errorf("SupportIn b [4,6) = %d, want 2", got)
	}
}

func TestSliceAndReorder(t *testing.T) {
	d := paperExample2()
	s := d.Slice(1, 3)
	if s.NumTx() != 2 {
		t.Fatalf("Slice NumTx = %d, want 2", s.NumTx())
	}
	if !s.Tx(0).Equal(NewItemset(0, 1)) || !s.Tx(1).Equal(NewItemset(0)) {
		t.Errorf("Slice contents wrong: %v %v", s.Tx(0), s.Tx(1))
	}

	perm := []int{5, 4, 3, 2, 1, 0}
	r := d.Reorder(perm)
	for i := range perm {
		if !r.Tx(i).Equal(d.Tx(perm[i])) {
			t.Errorf("Reorder tx %d = %v, want %v", i, r.Tx(i), d.Tx(perm[i]))
		}
	}
	// Reordering never changes any support.
	for _, x := range []Itemset{NewItemset(0), NewItemset(1), NewItemset(0, 1)} {
		if d.Support(x) != r.Support(x) {
			t.Errorf("support of %v changed under reorder", x)
		}
	}
}

func TestReorderRejectsNonPermutation(t *testing.T) {
	d := paperExample2()
	for _, perm := range [][]int{
		{0, 1, 2},          // wrong length
		{0, 0, 1, 2, 3, 4}, // duplicate
		{0, 1, 2, 3, 4, 9}, // out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Reorder(%v) did not panic", perm)
				}
			}()
			d.Reorder(perm)
		}()
	}
}

func TestEmptyTransactionsAllowed(t *testing.T) {
	d := MustFromTransactions(3, [][]Item{{}, {1}, {}})
	if d.NumTx() != 3 {
		t.Fatalf("NumTx = %d, want 3", d.NumTx())
	}
	if len(d.Tx(0)) != 0 || len(d.Tx(2)) != 0 {
		t.Error("empty transactions not preserved")
	}
	if got := d.Support(NewItemset(1)); got != 1 {
		t.Errorf("Support = %d, want 1", got)
	}
}

// randomDataset builds a dataset with NumTx in [1,40] over a domain of up
// to 8 items, for property tests.
func randomDataset(r *rand.Rand) *Dataset {
	k := 1 + r.Intn(8)
	n := 1 + r.Intn(40)
	b := NewBuilder(k)
	for i := 0; i < n; i++ {
		m := r.Intn(k + 1)
		tx := make([]Item, m)
		for j := range tx {
			tx[j] = Item(r.Intn(k))
		}
		if err := b.Append(tx); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func TestSupportMonotonicityProperty(t *testing.T) {
	// The monotonicity condition the whole paper rests on:
	// X ⊆ Y ⇒ sup(X) ≥ sup(Y).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		y := randomItemsetOver(r, d.NumItems())
		// Random subset of y.
		var x Itemset
		for _, it := range y {
			if r.Intn(2) == 0 {
				x = append(x, it)
			}
		}
		return d.Support(x) >= d.Support(y)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSupportDecomposesOverRanges(t *testing.T) {
	// sup(X) over [0,n) equals the sum over any partition into ranges —
	// the identity that makes segment support maps possible at all.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		x := randomItemsetOver(r, d.NumItems())
		cut := r.Intn(d.NumTx() + 1)
		return d.Support(x) == d.SupportIn(x, 0, cut)+d.SupportIn(x, cut, d.NumTx())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randomItemsetOver(r *rand.Rand, k int) Itemset {
	if k == 0 {
		return nil
	}
	n := 1 + r.Intn(3)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(r.Intn(k))
	}
	return NewItemset(items...)
}

func TestBuilderLen(t *testing.T) {
	b := NewBuilder(3)
	if b.Len() != 0 {
		t.Errorf("fresh builder Len = %d", b.Len())
	}
	if err := b.Append([]Item{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
}
