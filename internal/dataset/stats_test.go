package dataset

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestStatsTiny(t *testing.T) {
	d := MustFromTransactions(4, [][]Item{
		{0, 1, 2},
		{0},
		{},
		{1, 2},
	})
	s := d.Stats()
	if s.NumTx != 4 || s.NumItems != 4 {
		t.Errorf("shape = %d/%d", s.NumTx, s.NumItems)
	}
	if s.TotalItems != 6 {
		t.Errorf("TotalItems = %d, want 6", s.TotalItems)
	}
	if s.DistinctItems != 3 { // item 3 never occurs
		t.Errorf("DistinctItems = %d, want 3", s.DistinctItems)
	}
	if s.MaxTxLen != 3 || s.MinTxLen != 0 {
		t.Errorf("tx lengths = [%d, %d], want [0, 3]", s.MinTxLen, s.MaxTxLen)
	}
	if s.MaxItemSupport != 2 {
		t.Errorf("MaxItemSupport = %d, want 2", s.MaxItemSupport)
	}
	// supports of occurring items: 0:2 1:2 2:2 → median 2.
	if s.MedianItemSupport != 2 {
		t.Errorf("MedianItemSupport = %d, want 2", s.MedianItemSupport)
	}
	if s.Density != 6.0/16.0 {
		t.Errorf("Density = %f, want 0.375", s.Density)
	}
	if !strings.Contains(s.String(), "transactions=4") {
		t.Errorf("String = %q", s.String())
	}
}

func TestStatsEmpty(t *testing.T) {
	d := MustFromTransactions(3, nil)
	s := d.Stats()
	if s.NumTx != 0 || s.TotalItems != 0 || s.DistinctItems != 0 || s.Density != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestQuickSelectMatchesSort(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = r.Intn(20)
		}
		k := r.Intn(n)
		cp := append([]int(nil), xs...)
		sort.Ints(cp)
		return quickSelect(xs, k) == cp[k]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestStatsConsistencyProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		s := d.Stats()
		if s.MinTxLen > s.MaxTxLen {
			return false
		}
		if s.DistinctItems > s.NumItems {
			return false
		}
		if s.MaxItemSupport > s.NumTx {
			return false
		}
		if s.Density < 0 || s.Density > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
