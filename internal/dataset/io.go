package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Serialization formats.
//
// Text: one transaction per line, items as base-10 integers separated by
// spaces; lines starting with '#' are comments; an optional header line
// "# items=<k>" pins the domain size (otherwise it is max item + 1).
// Blank lines are empty transactions. This is the interchange format of
// most public frequent-itemset datasets.
//
// Binary: little-endian; magic "OSSMDS1\n", then uint32 numItems, uint32
// numTx, then for each transaction uint32 length followed by uint32 item
// ids. Dense, mmap-friendly, and byte-for-byte deterministic.

var binaryMagic = [8]byte{'O', 'S', 'S', 'M', 'D', 'S', '1', '\n'}

// ErrBadFormat is returned when parsing fails structurally.
var ErrBadFormat = errors.New("dataset: bad format")

// WriteText writes d in the text interchange format.
func WriteText(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# items=%d\n", d.NumItems()); err != nil {
		return err
	}
	for i := 0; i < d.NumTx(); i++ {
		tx := d.Tx(i)
		for j, it := range tx {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(it), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text interchange format. If the stream carries no
// "# items=" header, the domain size is inferred as max item + 1.
func ReadText(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	numItems := -1
	var txs [][]Item
	maxItem := Item(0)
	seenItem := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "#") {
			if v, ok := strings.CutPrefix(line, "# items="); ok {
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil || n < 0 {
					return nil, fmt.Errorf("%w: line %d: bad items header %q", ErrBadFormat, lineNo, line)
				}
				numItems = n
			}
			continue
		}
		var tx []Item
		if line != "" {
			fields := strings.Fields(line)
			tx = make([]Item, 0, len(fields))
			for _, f := range fields {
				v, err := strconv.ParseUint(f, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: bad item %q", ErrBadFormat, lineNo, f)
				}
				it := Item(v)
				if it > maxItem {
					maxItem = it
				}
				seenItem = true
				tx = append(tx, it)
			}
		}
		txs = append(txs, tx)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if numItems < 0 {
		if seenItem {
			numItems = int(maxItem) + 1
		} else {
			numItems = 0
		}
	}
	b := NewBuilder(numItems)
	for i, tx := range txs {
		if err := b.Append(tx); err != nil {
			return nil, fmt.Errorf("transaction %d: %w", i, err)
		}
	}
	return b.Build(), nil
}

// WriteBinary writes d in the binary format.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(d.NumItems()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(d.NumTx()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [4]byte
	for i := 0; i < d.NumTx(); i++ {
		tx := d.Tx(i)
		binary.LittleEndian.PutUint32(buf[:], uint32(len(tx)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		for _, it := range tx {
			binary.LittleEndian.PutUint32(buf[:], uint32(it))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
	}
	numItems := int(binary.LittleEndian.Uint32(hdr[0:4]))
	numTx := int(binary.LittleEndian.Uint32(hdr[4:8]))
	b := NewBuilder(numItems)
	var buf [4]byte
	tx := make([]Item, 0, 64)
	for i := 0; i < numTx; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: transaction %d length: %v", ErrBadFormat, i, err)
		}
		n := int(binary.LittleEndian.Uint32(buf[:]))
		tx = tx[:0]
		for j := 0; j < n; j++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("%w: transaction %d item %d: %v", ErrBadFormat, i, j, err)
			}
			tx = append(tx, Item(binary.LittleEndian.Uint32(buf[:])))
		}
		if err := b.Append(tx); err != nil {
			return nil, fmt.Errorf("transaction %d: %w", i, err)
		}
	}
	return b.Build(), nil
}

// SaveFile writes d to path, choosing the format by extension: ".txt" or
// ".dat" → text, anything else → binary.
func SaveFile(path string, d *Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if strings.HasSuffix(path, ".txt") || strings.HasSuffix(path, ".dat") {
		return WriteText(f, d)
	}
	return WriteBinary(f, d)
}

// LoadFile reads a dataset from path, choosing the format by extension as
// in SaveFile.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".txt") || strings.HasSuffix(path, ".dat") {
		return ReadText(f)
	}
	return ReadBinary(f)
}
