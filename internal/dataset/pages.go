package dataset

import "fmt"

// Page identifies a contiguous run of transactions, mirroring the paper's
// physical organization of T into m pages P_1 … P_m. With a 4 KB page and
// ~40-byte transactions the paper assumes roughly 100 transactions per
// page; the exact capacity is a parameter here.
type Page struct {
	Lo, Hi int // transactions [Lo, Hi)
}

// Len returns the number of transactions on the page.
func (p Page) Len() int { return p.Hi - p.Lo }

// Paginate splits the dataset's transactions into pages of txPerPage
// transactions each (the final page may be short). txPerPage must be
// positive.
func Paginate(d *Dataset, txPerPage int) []Page {
	if txPerPage <= 0 {
		panic(fmt.Sprintf("dataset: txPerPage must be positive, got %d", txPerPage))
	}
	n := d.NumTx()
	pages := make([]Page, 0, (n+txPerPage-1)/txPerPage)
	for lo := 0; lo < n; lo += txPerPage {
		hi := lo + txPerPage
		if hi > n {
			hi = n
		}
		pages = append(pages, Page{Lo: lo, Hi: hi})
	}
	return pages
}

// PaginateN splits the dataset into exactly m pages of near-equal size
// (sizes differ by at most one transaction). It is the inverse
// parameterization of Paginate: the paper's experiments are stated in
// terms of the page count m. m must satisfy 1 ≤ m ≤ NumTx(); PaginateN
// panics otherwise (a page must hold at least one transaction).
func PaginateN(d *Dataset, m int) []Page {
	n := d.NumTx()
	if m <= 0 || m > n {
		panic(fmt.Sprintf("dataset: cannot split %d transactions into %d pages", n, m))
	}
	pages := make([]Page, 0, m)
	base, rem := n/m, n%m
	lo := 0
	for i := 0; i < m; i++ {
		size := base
		if i < rem {
			size++
		}
		pages = append(pages, Page{Lo: lo, Hi: lo + size})
		lo += size
	}
	return pages
}

// PageCounts returns the per-page aggregate item supports — the starting
// information of the "page version" of segment minimization
// (Definition 2). Row i holds the support of every item within page i.
func PageCounts(d *Dataset, pages []Page) [][]uint32 {
	counts := make([][]uint32, len(pages))
	for i, p := range pages {
		counts[i] = d.ItemCounts(p.Lo, p.Hi)
	}
	return counts
}
