package dataset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewItemsetSortsAndDedups(t *testing.T) {
	cases := []struct {
		in   []Item
		want Itemset
	}{
		{nil, nil},
		{[]Item{5}, Itemset{5}},
		{[]Item{3, 1, 2}, Itemset{1, 2, 3}},
		{[]Item{2, 2, 2}, Itemset{2}},
		{[]Item{9, 1, 9, 1, 4}, Itemset{1, 4, 9}},
	}
	for _, c := range cases {
		got := NewItemset(c.in...)
		if !got.Equal(c.want) {
			t.Errorf("NewItemset(%v) = %v, want %v", c.in, got, c.want)
		}
		if !got.Valid() {
			t.Errorf("NewItemset(%v) = %v is not valid", c.in, got)
		}
	}
}

func TestItemsetContains(t *testing.T) {
	s := NewItemset(1, 3, 5, 7)
	for _, x := range []Item{1, 3, 5, 7} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false, want true", x)
		}
	}
	for _, x := range []Item{0, 2, 4, 6, 8, 100} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true, want false", x)
		}
	}
	if Itemset(nil).Contains(0) {
		t.Error("empty itemset claims to contain 0")
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		s, t Itemset
		want bool
	}{
		{nil, nil, true},
		{nil, NewItemset(1), true},
		{NewItemset(1), nil, false},
		{NewItemset(1, 3), NewItemset(1, 2, 3), true},
		{NewItemset(1, 4), NewItemset(1, 2, 3), false},
		{NewItemset(1, 2, 3), NewItemset(1, 2, 3), true},
		{NewItemset(0), NewItemset(1, 2), false},
		{NewItemset(3), NewItemset(1, 2), false},
	}
	for _, c := range cases {
		if got := c.s.SubsetOf(c.t); got != c.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestUnionIntersectMinus(t *testing.T) {
	a := NewItemset(1, 3, 5)
	b := NewItemset(2, 3, 4, 5)
	if got, want := a.Union(b), NewItemset(1, 2, 3, 4, 5); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), NewItemset(3, 5); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Minus(b), NewItemset(1); !got.Equal(want) {
		t.Errorf("Minus = %v, want %v", got, want)
	}
	if got, want := b.Minus(a), NewItemset(2, 4); !got.Equal(want) {
		t.Errorf("Minus = %v, want %v", got, want)
	}
}

func TestWithout(t *testing.T) {
	s := NewItemset(1, 2, 3)
	if got, want := s.Without(1), NewItemset(1, 3); !got.Equal(want) {
		t.Errorf("Without(1) = %v, want %v", got, want)
	}
	if got, want := s.Without(0), NewItemset(2, 3); !got.Equal(want) {
		t.Errorf("Without(0) = %v, want %v", got, want)
	}
	if got, want := s.Without(2), NewItemset(1, 2); !got.Equal(want) {
		t.Errorf("Without(2) = %v, want %v", got, want)
	}
	if !s.Equal(NewItemset(1, 2, 3)) {
		t.Error("Without mutated its receiver")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want int
	}{
		{nil, nil, 0},
		{nil, NewItemset(0), -1},
		{NewItemset(0), nil, 1},
		{NewItemset(1, 2), NewItemset(1, 2), 0},
		{NewItemset(1, 2), NewItemset(1, 3), -1},
		{NewItemset(1, 3), NewItemset(1, 2), 1},
		{NewItemset(1), NewItemset(1, 2), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestKeyAndString(t *testing.T) {
	s := NewItemset(3, 1, 2)
	if got, want := s.Key(), "1,2,3"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	if got, want := s.String(), "{1, 2, 3}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := Itemset(nil).Key(); got != "" {
		t.Errorf("empty Key = %q, want empty", got)
	}
	if got, want := Itemset(nil).String(), "{}"; got != want {
		t.Errorf("empty String = %q, want %q", got, want)
	}
}

// randomItemset draws a small random itemset over a small domain so that
// set relations (subset, overlap) actually occur in property tests.
func randomItemset(r *rand.Rand) Itemset {
	n := r.Intn(6)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(r.Intn(10))
	}
	return NewItemset(items...)
}

func TestItemsetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}

	// Union is commutative and yields a valid superset of both operands.
	union := func(seedA, seedB int64) bool {
		ra, rb := rand.New(rand.NewSource(seedA)), rand.New(rand.NewSource(seedB))
		a, b := randomItemset(ra), randomItemset(rb)
		u := a.Union(b)
		return u.Valid() && a.SubsetOf(u) && b.SubsetOf(u) && u.Equal(b.Union(a))
	}
	if err := quick.Check(union, cfg); err != nil {
		t.Errorf("union property: %v", err)
	}

	// Intersection is a subset of both operands; Minus is disjoint from t.
	interMinus := func(seedA, seedB int64) bool {
		ra, rb := rand.New(rand.NewSource(seedA)), rand.New(rand.NewSource(seedB))
		a, b := randomItemset(ra), randomItemset(rb)
		in := a.Intersect(b)
		mi := a.Minus(b)
		if !in.Valid() || !mi.Valid() {
			return false
		}
		if !in.SubsetOf(a) || !in.SubsetOf(b) || !mi.SubsetOf(a) {
			return false
		}
		for _, x := range mi {
			if b.Contains(x) {
				return false
			}
		}
		// a = (a ∩ b) ∪ (a \ b)
		return in.Union(mi).Equal(a)
	}
	if err := quick.Check(interMinus, cfg); err != nil {
		t.Errorf("intersect/minus property: %v", err)
	}

	// SubsetOf agrees with the naive definition via Contains.
	subset := func(seedA, seedB int64) bool {
		ra, rb := rand.New(rand.NewSource(seedA)), rand.New(rand.NewSource(seedB))
		a, b := randomItemset(ra), randomItemset(rb)
		naive := true
		for _, x := range a {
			if !b.Contains(x) {
				naive = false
				break
			}
		}
		return a.SubsetOf(b) == naive
	}
	if err := quick.Check(subset, cfg); err != nil {
		t.Errorf("subset property: %v", err)
	}

	// Compare is a total order consistent with Equal.
	order := func(seedA, seedB int64) bool {
		ra, rb := rand.New(rand.NewSource(seedA)), rand.New(rand.NewSource(seedB))
		a, b := randomItemset(ra), randomItemset(rb)
		c := a.Compare(b)
		if (c == 0) != a.Equal(b) {
			return false
		}
		return c == -b.Compare(a)
	}
	if err := quick.Check(order, cfg); err != nil {
		t.Errorf("compare property: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewItemset(1, 2, 3)
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares backing storage with original")
	}
	if Itemset(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
	if !reflect.DeepEqual(a, NewItemset(1, 2, 3)) {
		t.Error("original mutated")
	}
}
