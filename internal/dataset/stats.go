package dataset

import "fmt"

// Stats summarizes a dataset's shape — the numbers a practitioner checks
// before choosing mining parameters (and the numbers our EXPERIMENTS.md
// records per workload).
type Stats struct {
	NumTx         int
	NumItems      int
	TotalItems    int     // item occurrences across all transactions
	DistinctItems int     // items occurring at least once
	AvgTxLen      float64 // mean transaction length
	MaxTxLen      int
	MinTxLen      int
	// Density is the fill ratio of the transaction-item matrix,
	// TotalItems / (NumTx · NumItems).
	Density float64
	// MaxItemSupport and MedianItemSupport describe the item-frequency
	// head and middle (over occurring items).
	MaxItemSupport    int
	MedianItemSupport int
}

// Stats computes the summary in one scan.
func (d *Dataset) Stats() Stats {
	s := Stats{
		NumTx:      d.NumTx(),
		NumItems:   d.NumItems(),
		TotalItems: d.TotalItems(),
		AvgTxLen:   d.AvgTxLen(),
	}
	if s.NumTx > 0 {
		s.MinTxLen = len(d.Tx(0))
	}
	for i := 0; i < d.NumTx(); i++ {
		l := len(d.Tx(i))
		if l > s.MaxTxLen {
			s.MaxTxLen = l
		}
		if l < s.MinTxLen {
			s.MinTxLen = l
		}
	}
	counts := d.ItemCounts(0, d.NumTx())
	var occurring []int
	for _, c := range counts {
		if c > 0 {
			occurring = append(occurring, int(c))
			if int(c) > s.MaxItemSupport {
				s.MaxItemSupport = int(c)
			}
		}
	}
	s.DistinctItems = len(occurring)
	if len(occurring) > 0 {
		// Median via partial selection (counts are small slices; a sort
		// would be fine too, but this keeps the scan O(k) on average).
		s.MedianItemSupport = quickSelect(occurring, len(occurring)/2)
	}
	if s.NumTx > 0 && s.NumItems > 0 {
		s.Density = float64(s.TotalItems) / (float64(s.NumTx) * float64(s.NumItems))
	}
	return s
}

// String renders the summary in one line per fact.
func (s Stats) String() string {
	return fmt.Sprintf(
		"transactions=%d items=%d (distinct %d) occurrences=%d avg|t|=%.2f min|t|=%d max|t|=%d density=%.4f maxSup=%d medSup=%d",
		s.NumTx, s.NumItems, s.DistinctItems, s.TotalItems,
		s.AvgTxLen, s.MinTxLen, s.MaxTxLen, s.Density,
		s.MaxItemSupport, s.MedianItemSupport)
}

// quickSelect returns the k-th smallest element (0-based) of xs,
// reordering xs in the process.
func quickSelect(xs []int, k int) int {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k]
		}
	}
	return xs[k]
}
