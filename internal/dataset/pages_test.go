package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaginate(t *testing.T) {
	d := paperExample2() // 6 transactions
	pages := Paginate(d, 4)
	if len(pages) != 2 {
		t.Fatalf("len(pages) = %d, want 2", len(pages))
	}
	if pages[0] != (Page{0, 4}) || pages[1] != (Page{4, 6}) {
		t.Errorf("pages = %v", pages)
	}
	if pages[0].Len() != 4 || pages[1].Len() != 2 {
		t.Errorf("page lengths wrong: %d %d", pages[0].Len(), pages[1].Len())
	}

	one := Paginate(d, 100)
	if len(one) != 1 || one[0] != (Page{0, 6}) {
		t.Errorf("oversized page split wrong: %v", one)
	}
}

func TestPaginateN(t *testing.T) {
	d := paperExample2()
	pages := PaginateN(d, 4) // 6 tx into 4 pages: sizes 2,2,1,1
	if len(pages) != 4 {
		t.Fatalf("len(pages) = %d, want 4", len(pages))
	}
	sizes := []int{pages[0].Len(), pages[1].Len(), pages[2].Len(), pages[3].Len()}
	want := []int{2, 2, 1, 1}
	for i := range sizes {
		if sizes[i] != want[i] {
			t.Errorf("page %d size = %d, want %d", i, sizes[i], want[i])
		}
	}
}

func TestPaginatePanics(t *testing.T) {
	d := paperExample2()
	for _, f := range []func(){
		func() { Paginate(d, 0) },
		func() { PaginateN(d, 0) },
		func() { PaginateN(d, 7) }, // more pages than transactions
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPageCountsMatchExample2(t *testing.T) {
	d := paperExample2()
	// Two pages of 3 transactions: {t1,t2,t3} and {t4,t5,t6}.
	pages := Paginate(d, 3)
	counts := PageCounts(d, pages)
	if counts[0][0] != 3 || counts[0][1] != 1 {
		t.Errorf("page 0 counts = %v, want [3 1]", counts[0])
	}
	if counts[1][0] != 1 || counts[1][1] != 2 {
		t.Errorf("page 1 counts = %v, want [1 2]", counts[1])
	}
}

func TestPaginationProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}

	// Pages tile [0, NumTx) exactly, and per-page counts sum to the
	// global counts — the foundation of every OSSM bound.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		m := 1 + r.Intn(d.NumTx())
		pages := PaginateN(d, m)
		if len(pages) != m || pages[0].Lo != 0 || pages[len(pages)-1].Hi != d.NumTx() {
			return false
		}
		for i := 1; i < len(pages); i++ {
			if pages[i].Lo != pages[i-1].Hi {
				return false
			}
			if pages[i].Len() <= 0 {
				return false
			}
			// Near-equal sizes: differ by at most 1.
			if diff := pages[i-1].Len() - pages[i].Len(); diff < 0 || diff > 1 {
				return false
			}
		}
		counts := PageCounts(d, pages)
		total := d.ItemCounts(0, d.NumTx())
		for it := 0; it < d.NumItems(); it++ {
			var sum uint32
			for _, row := range counts {
				sum += row[it]
			}
			if sum != total[it] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
