package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadText: arbitrary input must never panic, and anything that
// parses must round-trip through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("# items=3\n0 1\n2\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Add("1 1 1\n")
	f.Add("# items=0\n")
	f.Add("4294967295\n")
	f.Fuzz(func(t *testing.T, in string) {
		d, err := ReadText(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, d); err != nil {
			t.Fatalf("WriteText of parsed dataset failed: %v", err)
		}
		d2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-parse of written dataset failed: %v", err)
		}
		if d.NumTx() != d2.NumTx() || d.NumItems() != d2.NumItems() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				d.NumTx(), d.NumItems(), d2.NumTx(), d2.NumItems())
		}
		for i := 0; i < d.NumTx(); i++ {
			if !d.Tx(i).Equal(d2.Tx(i)) {
				t.Fatalf("round trip changed transaction %d", i)
			}
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic; valid parses
// round-trip.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	d := MustFromTransactions(3, [][]Item{{0, 1}, {2}})
	if err := WriteBinary(&seed, d); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("OSSMDS1\n"))
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, got); err != nil {
			t.Fatalf("WriteBinary of parsed dataset failed: %v", err)
		}
		re, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if got.NumTx() != re.NumTx() {
			t.Fatal("round trip changed transaction count")
		}
	})
}
