// Package dataset provides the transaction-collection substrate that every
// other package in this repository is built on: items, itemsets,
// transactions, a compact columnar store for large collections, a page
// abstraction matching the paper's physical organization, and text/binary
// serialization.
//
// Terminology follows Leung, Ng and Mannila (ICDE 2002): a collection of
// transactions T = {t_1, …, t_D} over a domain of k individual items; the
// support of an itemset X is the number of transactions containing every
// item of X.
package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// Item identifies a single domain item. Items are dense small integers
// 0 … k-1; the canonical enumeration the paper relies on for tie-breaking
// is simply the numeric order of Item values.
type Item uint32

// Itemset is a set of items represented as a strictly ascending slice.
// The zero value is the empty itemset.
type Itemset []Item

// NewItemset builds an Itemset from arbitrary items, sorting and
// de-duplicating them.
func NewItemset(items ...Item) Itemset {
	if len(items) == 0 {
		return nil
	}
	s := make(Itemset, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, it := range s[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return out
}

// Valid reports whether s is strictly ascending (the representation
// invariant of Itemset).
func (s Itemset) Valid() bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Contains reports whether s contains item x.
func (s Itemset) Contains(x Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// SubsetOf reports whether every item of s occurs in t. Both receivers
// must satisfy the Itemset invariant.
func (s Itemset) SubsetOf(t Itemset) bool {
	if len(s) > len(t) {
		return false
	}
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j == len(t) || t[j] != x {
			return false
		}
		j++
	}
	return true
}

// Equal reports whether s and t contain exactly the same items.
func (s Itemset) Equal(t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Union returns a new Itemset holding every item of s or t.
func (s Itemset) Union(t Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns a new Itemset holding every item present in both s
// and t.
func (s Itemset) Intersect(t Itemset) Itemset {
	var out Itemset
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns a new Itemset holding the items of s that are not in t.
func (s Itemset) Minus(t Itemset) Itemset {
	var out Itemset
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j < len(t) && t[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// Without returns a new Itemset equal to s with the item at position i
// removed. It is the "(k-1)-subset" helper used by Apriori's prune step.
func (s Itemset) Without(i int) Itemset {
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// Clone returns an independent copy of s.
func (s Itemset) Clone() Itemset {
	if s == nil {
		return nil
	}
	out := make(Itemset, len(s))
	copy(out, s)
	return out
}

// Compare orders itemsets lexicographically, shorter-prefix first. It
// returns -1, 0 or +1.
func (s Itemset) Compare(t Itemset) int {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i] != t[i] {
			if s[i] < t[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}

// Key returns a canonical string key for use in maps. It is injective on
// valid itemsets.
func (s Itemset) Key() string {
	if len(s) == 0 {
		return ""
	}
	var b strings.Builder
	for i, x := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// String renders the itemset as "{a, b, c}".
func (s Itemset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte('}')
	return b.String()
}
