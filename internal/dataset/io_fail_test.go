package dataset

import (
	"errors"
	"testing"
)

// failingWriter errors after n bytes — injecting failures into every
// write path.
type failingWriter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		can := w.n - w.written
		if can < 0 {
			can = 0
		}
		w.written += can
		return can, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

func TestWriteTextPropagatesErrors(t *testing.T) {
	d := paperExample2()
	// Fail at a spread of offsets to hit the header, item, separator and
	// newline write paths.
	for _, n := range []int{0, 3, 12, 14, 16} {
		if err := WriteText(&failingWriter{n: n}, d); err == nil {
			t.Errorf("WriteText with %d-byte budget succeeded", n)
		}
	}
}

func TestWriteBinaryPropagatesErrors(t *testing.T) {
	d := paperExample2()
	for _, n := range []int{0, 4, 8, 16, 20, 24} {
		if err := WriteBinary(&failingWriter{n: n}, d); err == nil {
			t.Errorf("WriteBinary with %d-byte budget succeeded", n)
		}
	}
}

func TestSaveFileErrorOnBadPath(t *testing.T) {
	d := paperExample2()
	if err := SaveFile("/nonexistent-dir-xyz/d.bin", d); err == nil {
		t.Error("SaveFile into a missing directory succeeded")
	}
	if _, err := LoadFile("/nonexistent-dir-xyz/d.bin"); err == nil {
		t.Error("LoadFile of a missing file succeeded")
	}
}
