package gen

import (
	"fmt"
	"math/rand"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// AlarmConfig parameterizes the surrogate for the proprietary Nokia
// telecommunication-alarm data set (paper §6.1, data set 1: ~5000
// transactions over ~200 alarm types). The paper cannot describe the data
// further, so this generator reproduces the qualitative structure of
// network alarm logs that makes the OSSM effective on them:
//
//   - Cascades: a fault in one network element triggers a burst of
//     correlated secondary alarms, so alarm types co-occur in clusters.
//   - Long tail: a few alarm types are very frequent, most are rare
//     (approximately Zipfian type frequencies).
//   - Drift: which cascades are active changes slowly over time (an
//     outage dominates a stretch of the log), so segment-local supports
//     differ strongly from global ones.
type AlarmConfig struct {
	NumTx       int     // transactions (alarm windows)
	NumTypes    int     // distinct alarm types
	NumCascades int     // distinct fault cascades
	CascadeLen  float64 // mean number of secondary alarms per cascade (Poisson)
	NoiseRate   float64 // mean number of background alarms per transaction
	Epochs      int     // number of drift epochs across the log
	ZipfS       float64 // Zipf exponent for background alarm types (>1)
	Seed        int64
}

// DefaultAlarm matches the paper's stated scale: about 5000 transactions
// of about 200 alarm types.
func DefaultAlarm(seed int64) AlarmConfig {
	return AlarmConfig{
		NumTx:       5000,
		NumTypes:    200,
		NumCascades: 40,
		CascadeLen:  4,
		NoiseRate:   3,
		Epochs:      10,
		ZipfS:       1.3,
		Seed:        seed,
	}
}

// Alarm generates the surrogate alarm dataset.
func Alarm(c AlarmConfig) (*dataset.Dataset, error) {
	switch {
	case c.NumTx <= 0:
		return nil, fmt.Errorf("gen: NumTx must be positive, got %d", c.NumTx)
	case c.NumTypes <= 1:
		return nil, fmt.Errorf("gen: NumTypes must exceed 1, got %d", c.NumTypes)
	case c.NumCascades <= 0:
		return nil, fmt.Errorf("gen: NumCascades must be positive, got %d", c.NumCascades)
	case c.Epochs <= 0:
		return nil, fmt.Errorf("gen: Epochs must be positive, got %d", c.Epochs)
	case c.ZipfS <= 1:
		return nil, fmt.Errorf("gen: ZipfS must exceed 1, got %g", c.ZipfS)
	}
	r := rand.New(rand.NewSource(c.Seed))
	zipf := rand.NewZipf(r, c.ZipfS, 1, uint64(c.NumTypes-1))

	// Build cascades: a root type plus a fixed set of possible secondary
	// types, each firing with its own probability.
	type cascade struct {
		root      dataset.Item
		secondary []dataset.Item
		fireProb  []float64
	}
	cascades := make([]cascade, c.NumCascades)
	for i := range cascades {
		n := poisson(r, c.CascadeLen) + 1
		sec := make([]dataset.Item, n)
		probs := make([]float64, n)
		for j := range sec {
			sec[j] = dataset.Item(r.Intn(c.NumTypes))
			probs[j] = 0.25 + 0.45*r.Float64() // correlated but not lock-step
		}
		cascades[i] = cascade{
			root:      dataset.Item(r.Intn(c.NumTypes)),
			secondary: sec,
			fireProb:  probs,
		}
	}

	// Per-epoch active cascade subset: drift means different stretches of
	// the log see different cascades.
	perEpoch := c.NumCascades/2 + 1
	active := make([][]int, c.Epochs)
	for e := range active {
		perm := r.Perm(c.NumCascades)
		active[e] = perm[:perEpoch]
	}

	b := dataset.NewBuilder(c.NumTypes)
	tx := make([]dataset.Item, 0, 16)
	for t := 0; t < c.NumTx; t++ {
		epoch := t * c.Epochs / c.NumTx
		tx = tx[:0]
		// One or occasionally two cascades fire in a window.
		nc := 1
		if r.Float64() < 0.2 {
			nc = 2
		}
		for f := 0; f < nc; f++ {
			ca := cascades[active[epoch][r.Intn(len(active[epoch]))]]
			tx = append(tx, ca.root)
			for j, s := range ca.secondary {
				if r.Float64() < ca.fireProb[j] {
					tx = append(tx, s)
				}
			}
		}
		// Background noise from the Zipfian tail.
		for n := poisson(r, c.NoiseRate); n > 0; n-- {
			tx = append(tx, dataset.Item(zipf.Uint64()))
		}
		if err := b.Append(tx); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustAlarm is Alarm that panics on configuration errors.
func MustAlarm(c AlarmConfig) *dataset.Dataset {
	d, err := Alarm(c)
	if err != nil {
		panic(err)
	}
	return d
}
