package gen

import (
	"fmt"
	"math/rand"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// ShuffleBlocks permutes a dataset at block granularity: transactions are
// grouped into consecutive blocks of blockTx and the blocks are shuffled.
// Within-block locality (what a page sees) survives; file-order locality
// (what a contiguous segmentation could exploit for free) is destroyed.
//
// This models multi-source data — a warehouse batch-loading pages from
// many stores or network elements — and is the regime where the paper's
// sumdiff-driven algorithms (Greedy, RC) separate from the arbitrary
// Random partition: similar pages exist but are scattered, so they must
// be *found*.
func ShuffleBlocks(d *dataset.Dataset, blockTx int, seed int64) (*dataset.Dataset, error) {
	if blockTx <= 0 {
		return nil, fmt.Errorf("gen: blockTx must be positive, got %d", blockTx)
	}
	n := d.NumTx()
	numBlocks := (n + blockTx - 1) / blockTx
	order := rand.New(rand.NewSource(seed)).Perm(numBlocks)
	perm := make([]int, 0, n)
	for _, b := range order {
		lo := b * blockTx
		hi := lo + blockTx
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			perm = append(perm, i)
		}
	}
	return d.Reorder(perm), nil
}
