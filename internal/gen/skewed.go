package gen

import (
	"fmt"
	"math/rand"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// SkewedConfig parameterizes the "seasonal" skewed-synthetic generator
// (paper §6.1, data set 3): 50% of the items have a higher probability of
// appearing in the first half of the collection and the other 50% in the
// second half — a supermarket whose transactions run from summer to
// winter.
//
// The generator reuses the Quest machinery but assigns every potentially
// large itemset to a season: patterns built from low-numbered items belong
// to season 0 (first half of the collection), the rest to season 1. When
// generating the h-th half, in-season patterns are Boost times more likely
// to be picked.
type SkewedConfig struct {
	Quest QuestConfig
	Boost float64 // in-season weight multiplier; Boost=1 degenerates to Quest
}

// DefaultSkewed mirrors DefaultQuest with a strong seasonal boost.
func DefaultSkewed(numTx int, seed int64) SkewedConfig {
	return SkewedConfig{Quest: DefaultQuest(numTx, seed), Boost: 8}
}

// Skewed generates a seasonal dataset.
func Skewed(c SkewedConfig) (*dataset.Dataset, error) {
	if err := c.Quest.validate(); err != nil {
		return nil, err
	}
	if c.Boost < 1 {
		return nil, fmt.Errorf("gen: Boost must be ≥ 1, got %g", c.Boost)
	}
	r := rand.New(rand.NewSource(c.Quest.Seed))
	pats, weights := genPatterns(r, c.Quest)

	// Season of a pattern: majority vote of its items' halves.
	half := dataset.Item(c.Quest.NumItems / 2)
	season := make([]int, len(pats))
	for i, p := range pats {
		low := 0
		for _, it := range p.items {
			if it < half {
				low++
			}
		}
		if low*2 >= len(p.items) {
			season[i] = 0
		} else {
			season[i] = 1
		}
	}

	// Two cumulative tables, one per half of the collection.
	cums := make([][]float64, 2)
	for h := 0; h < 2; h++ {
		w := make([]float64, len(weights))
		for i := range weights {
			w[i] = weights[i]
			if season[i] == h {
				w[i] *= c.Boost
			}
		}
		cums[h] = cumulative(w)
	}

	b := dataset.NewBuilder(c.Quest.NumItems)
	tx := make([]dataset.Item, 0, int(c.Quest.AvgTxLen)*2)
	inTx := make(map[dataset.Item]bool)
	var carry []dataset.Item
	for t := 0; t < c.Quest.NumTx; t++ {
		h := 0
		if t*2 >= c.Quest.NumTx {
			h = 1
		}
		cum := cums[h]
		size := poisson(r, c.Quest.AvgTxLen)
		if size < 1 {
			size = 1
		}
		tx = tx[:0]
		for k := range inTx {
			delete(inTx, k)
		}
		if carry != nil {
			for _, it := range carry {
				if !inTx[it] {
					inTx[it] = true
					tx = append(tx, it)
				}
			}
			carry = nil
		}
		for len(tx) < size {
			p := pats[weightedPick(r, cum)]
			kept := make([]dataset.Item, 0, len(p.items))
			kept = append(kept, p.items...)
			for len(kept) > 0 && r.Float64() < p.corrupt {
				di := r.Intn(len(kept))
				kept[di] = kept[len(kept)-1]
				kept = kept[:len(kept)-1]
			}
			if len(kept) == 0 {
				continue
			}
			if len(tx)+len(kept) > size && len(tx) > 0 {
				if r.Intn(2) == 0 {
					carry = kept
					break
				}
			}
			for _, it := range kept {
				if !inTx[it] {
					inTx[it] = true
					tx = append(tx, it)
				}
			}
		}
		if err := b.Append(tx); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustSkewed is Skewed that panics on configuration errors.
func MustSkewed(c SkewedConfig) *dataset.Dataset {
	d, err := Skewed(c)
	if err != nil {
		panic(err)
	}
	return d
}
