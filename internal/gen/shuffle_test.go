package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestShuffleBlocksValidation(t *testing.T) {
	d := dataset.MustFromTransactions(2, [][]dataset.Item{{0}, {1}})
	if _, err := ShuffleBlocks(d, 0, 1); err == nil {
		t.Error("blockTx 0 accepted")
	}
	if _, err := ShuffleBlocks(d, -3, 1); err == nil {
		t.Error("negative blockTx accepted")
	}
}

func TestShuffleBlocksPreservesMultiset(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(5)
		n := 1 + r.Intn(50)
		b := dataset.NewBuilder(k)
		for i := 0; i < n; i++ {
			sz := r.Intn(k + 1)
			tx := make([]dataset.Item, sz)
			for j := range tx {
				tx[j] = dataset.Item(r.Intn(k))
			}
			if err := b.Append(tx); err != nil {
				return false
			}
		}
		d := b.Build()
		blockTx := 1 + r.Intn(8)
		sh, err := ShuffleBlocks(d, blockTx, seed)
		if err != nil {
			return false
		}
		if sh.NumTx() != d.NumTx() {
			return false
		}
		// Global item counts unchanged.
		a, bb := d.ItemCounts(0, d.NumTx()), sh.ItemCounts(0, sh.NumTx())
		for it := range a {
			if a[it] != bb[it] {
				return false
			}
		}
		// Transaction multiset unchanged.
		count := map[string]int{}
		for i := 0; i < d.NumTx(); i++ {
			count[d.Tx(i).Key()]++
		}
		for i := 0; i < sh.NumTx(); i++ {
			count[sh.Tx(i).Key()]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestShuffleBlocksKeepsBlockContiguity(t *testing.T) {
	// Transactions carry their original index as their only item; after a
	// block shuffle, every aligned block of the output must be a
	// contiguous ascending run of the input.
	const n, block = 30, 5
	b := dataset.NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.Append([]dataset.Item{dataset.Item(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sh, err := ShuffleBlocks(b.Build(), block, 3)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < n; lo += block {
		first := sh.Tx(lo)[0]
		if int(first)%block != 0 {
			t.Fatalf("output block at %d starts mid-input-block (item %d)", lo, first)
		}
		for o := 1; o < block; o++ {
			if sh.Tx(lo + o)[0] != first+dataset.Item(o) {
				t.Fatalf("output block at %d not contiguous", lo)
			}
		}
	}
}

func TestShuffleBlocksDeterministic(t *testing.T) {
	d := MustQuest(DefaultQuest(200, 1))
	a, err := ShuffleBlocks(d, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ShuffleBlocks(d, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumTx(); i++ {
		if !a.Tx(i).Equal(b.Tx(i)) {
			t.Fatal("same seed produced different shuffles")
		}
	}
	c, err := ShuffleBlocks(d, 10, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.NumTx(); i++ {
		if !a.Tx(i).Equal(c.Tx(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical shuffles")
	}
}

func TestShuffleBlocksOversizedBlock(t *testing.T) {
	d := dataset.MustFromTransactions(2, [][]dataset.Item{{0}, {1}, {0, 1}})
	sh, err := ShuffleBlocks(d, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumTx(); i++ {
		if !sh.Tx(i).Equal(d.Tx(i)) {
			t.Error("single-block shuffle should be the identity")
		}
	}
}
