package gen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ossm-mining/ossm/internal/dataset"
)

// QuestConfig parameterizes the IBM Quest-style generator in the
// T-I-D notation of Agrawal & Srikant (VLDB 1994): |D| transactions of
// average size |T| drawn from |L| potentially large itemsets of average
// size |I| over N items. The defaults reproduce the family the paper's
// "regular-synthetic" data set comes from (N = 1000 items).
type QuestConfig struct {
	NumTx       int     // |D|: number of transactions
	NumItems    int     // N: domain size
	AvgTxLen    float64 // |T|: mean transaction size (Poisson)
	AvgPatLen   float64 // |I|: mean size of potentially large itemsets (Poisson)
	NumPatterns int     // |L|: number of potentially large itemsets
	Correlation float64 // fraction of a pattern's items inherited from its predecessor
	CorruptMean float64 // mean of the per-pattern corruption level
	CorruptSD   float64 // std-dev of the per-pattern corruption level
	// WeightDrift, when positive, makes pattern popularity drift over the
	// file as a mean-reverting (Ornstein-Uhlenbeck-style) log-multiplier:
	// every DriftEvery transactions, each pattern's log-multiplier decays
	// toward 0 and receives a WeightDrift·N(0,1) shock. Popularity thus
	// varies strongly between stretches of the file while long-run
	// marginals stay stable. The published Quest generator is stationary
	// (WeightDrift = 0), but the paper's premise — "real life data sets
	// are not random … frequencies of patterns will be different in
	// different parts of the data set" — and the pruning magnitudes of
	// its Figure 4 presuppose exactly this kind of temporal locality; see
	// DESIGN.md §5.
	WeightDrift float64
	DriftEvery  int   // drift step in transactions (0 ⇒ 100)
	Seed        int64 // RNG seed; same seed ⇒ identical dataset
}

// DefaultQuest returns the canonical T10.I4 configuration over 1000 items,
// matching the paper's regular-synthetic setting (k = 1000).
func DefaultQuest(numTx int, seed int64) QuestConfig {
	return QuestConfig{
		NumTx:       numTx,
		NumItems:    1000,
		AvgTxLen:    10,
		AvgPatLen:   4,
		NumPatterns: 2000,
		Correlation: 0.5,
		CorruptMean: 0.5,
		CorruptSD:   0.1,
		Seed:        seed,
	}
}

func (c QuestConfig) validate() error {
	switch {
	case c.NumTx <= 0:
		return fmt.Errorf("gen: NumTx must be positive, got %d", c.NumTx)
	case c.NumItems <= 0:
		return fmt.Errorf("gen: NumItems must be positive, got %d", c.NumItems)
	case c.AvgTxLen <= 0:
		return fmt.Errorf("gen: AvgTxLen must be positive, got %g", c.AvgTxLen)
	case c.AvgPatLen <= 0:
		return fmt.Errorf("gen: AvgPatLen must be positive, got %g", c.AvgPatLen)
	case c.NumPatterns <= 0:
		return fmt.Errorf("gen: NumPatterns must be positive, got %d", c.NumPatterns)
	case c.Correlation < 0 || c.Correlation > 1:
		return fmt.Errorf("gen: Correlation must be in [0,1], got %g", c.Correlation)
	case c.WeightDrift < 0:
		return fmt.Errorf("gen: WeightDrift must be ≥ 0, got %g", c.WeightDrift)
	case c.DriftEvery < 0:
		return fmt.Errorf("gen: DriftEvery must be ≥ 0, got %d", c.DriftEvery)
	}
	return nil
}

// pattern is a potentially large itemset with its selection weight and
// corruption level.
type pattern struct {
	items   []dataset.Item
	corrupt float64
}

// genPatterns builds the table of potentially large itemsets. Following
// the published algorithm: sizes are Poisson(|I|) (at least 1); a fraction
// of each pattern's items — exponentially distributed with mean
// Correlation — is drawn from the previous pattern, the rest uniformly;
// weights are Exponential(1); corruption levels Normal(CorruptMean,
// CorruptSD) clamped to [0,1].
func genPatterns(r *rand.Rand, c QuestConfig) ([]pattern, []float64) {
	pats := make([]pattern, c.NumPatterns)
	weights := make([]float64, c.NumPatterns)
	var prev []dataset.Item
	seen := make(map[dataset.Item]bool, 16)
	for i := range pats {
		size := poisson(r, c.AvgPatLen)
		if size < 1 {
			size = 1
		}
		if size > c.NumItems {
			size = c.NumItems
		}
		fromPrev := 0
		if len(prev) > 0 {
			frac := r.ExpFloat64() * c.Correlation
			if frac > 1 {
				frac = 1
			}
			fromPrev = int(frac * float64(size))
			if fromPrev > len(prev) {
				fromPrev = len(prev)
			}
		}
		for k := range seen {
			delete(seen, k)
		}
		items := make([]dataset.Item, 0, size)
		// Inherit a random subset of the previous pattern.
		perm := r.Perm(len(prev))
		for _, pi := range perm[:fromPrev] {
			if !seen[prev[pi]] {
				seen[prev[pi]] = true
				items = append(items, prev[pi])
			}
		}
		// Fill the remainder uniformly.
		for len(items) < size {
			it := dataset.Item(r.Intn(c.NumItems))
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		pats[i] = pattern{items: items, corrupt: clamped01(r, c.CorruptMean, c.CorruptSD)}
		weights[i] = r.ExpFloat64()
		prev = items
	}
	return pats, weights
}

// Quest generates a regular-synthetic dataset.
func Quest(c QuestConfig) (*dataset.Dataset, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(c.Seed))
	pats, weights := genPatterns(r, c)
	cum := cumulative(weights)
	driftEvery := c.DriftEvery
	if driftEvery == 0 {
		driftEvery = 100
	}
	var logMult []float64
	if c.WeightDrift > 0 {
		logMult = make([]float64, len(weights))
	}
	const reversion = 0.8 // pull of the log-multiplier back toward 0 per step

	b := dataset.NewBuilder(c.NumItems)
	tx := make([]dataset.Item, 0, int(c.AvgTxLen)*2)
	inTx := make(map[dataset.Item]bool, int(c.AvgTxLen)*2)
	var carry []dataset.Item // pattern postponed to the next transaction
	for t := 0; t < c.NumTx; t++ {
		if c.WeightDrift > 0 && t > 0 && t%driftEvery == 0 {
			drifted := make([]float64, len(weights))
			for i := range weights {
				logMult[i] = reversion*logMult[i] + c.WeightDrift*r.NormFloat64()
				drifted[i] = weights[i] * math.Exp(logMult[i])
			}
			cum = cumulative(drifted)
		}
		size := poisson(r, c.AvgTxLen)
		if size < 1 {
			size = 1
		}
		tx = tx[:0]
		for k := range inTx {
			delete(inTx, k)
		}
		if carry != nil {
			for _, it := range carry {
				if !inTx[it] {
					inTx[it] = true
					tx = append(tx, it)
				}
			}
			carry = nil
		}
		for len(tx) < size {
			p := pats[weightedPick(r, cum)]
			// Corrupt: drop items while a coin keeps coming up below the
			// pattern's corruption level.
			kept := make([]dataset.Item, 0, len(p.items))
			kept = append(kept, p.items...)
			for len(kept) > 0 && r.Float64() < p.corrupt {
				di := r.Intn(len(kept))
				kept[di] = kept[len(kept)-1]
				kept = kept[:len(kept)-1]
			}
			if len(kept) == 0 {
				continue
			}
			// If the pattern overflows the transaction, half the time it
			// goes in anyway, half the time it is saved for the next
			// transaction (as in the published generator).
			if len(tx)+len(kept) > size && len(tx) > 0 {
				if r.Intn(2) == 0 {
					carry = kept
					break
				}
			}
			for _, it := range kept {
				if !inTx[it] {
					inTx[it] = true
					tx = append(tx, it)
				}
			}
		}
		if err := b.Append(tx); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustQuest is Quest that panics on configuration errors; for tests,
// examples and benchmarks with literal configurations.
func MustQuest(c QuestConfig) *dataset.Dataset {
	d, err := Quest(c)
	if err != nil {
		panic(err)
	}
	return d
}
