// Package gen provides the synthetic workload generators used by the
// paper's evaluation (Section 6.1):
//
//   - Quest: a reimplementation of the IBM Almaden Quest association-rule
//     generator of Agrawal & Srikant ("regular-synthetic").
//   - Skewed: a "seasonal" variant where half the items favor the first
//     half of the collection and half favor the second ("skewed-synthetic").
//   - Alarm: a surrogate for the proprietary Nokia telecommunication-alarm
//     data set — bursty, cascade-correlated alarm transactions.
//
// Every generator is fully deterministic given its Seed.
package gen

import (
	"math"
	"math/rand"
)

// poisson draws from a Poisson distribution with the given mean using
// Knuth's product-of-uniforms method; adequate for the small means
// (transaction and pattern sizes) used here.
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// clamped01 draws from Normal(mean, sd) truncated into [0, 1].
func clamped01(r *rand.Rand, mean, sd float64) float64 {
	v := r.NormFloat64()*sd + mean
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// weightedPick returns an index into cum, a cumulative weight table, for a
// uniform draw in [0, cum[len-1]).
func weightedPick(r *rand.Rand, cum []float64) int {
	total := cum[len(cum)-1]
	x := r.Float64() * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// cumulative converts weights into a cumulative table for weightedPick.
func cumulative(weights []float64) []float64 {
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		sum += w
		cum[i] = sum
	}
	return cum
}
