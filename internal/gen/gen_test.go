package gen

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ossm-mining/ossm/internal/dataset"
)

func TestPoissonMean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const n = 20000
	for _, mean := range []float64{0.5, 2, 10} {
		sum := 0
		for i := 0; i < n; i++ {
			sum += poisson(r, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.15*mean+0.05 {
			t.Errorf("poisson(%g): sample mean %g too far off", mean, got)
		}
	}
	if poisson(r, 0) != 0 || poisson(r, -1) != 0 {
		t.Error("poisson with non-positive mean should be 0")
	}
}

func TestClamped01(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		v := clamped01(r, 0.5, 0.5)
		if v < 0 || v > 1 {
			t.Fatalf("clamped01 out of range: %g", v)
		}
	}
}

func TestWeightedPickDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cum := cumulative([]float64{1, 3, 6}) // probs 0.1, 0.3, 0.6
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[weightedPick(r, cum)]++
	}
	wants := [3]float64{0.1, 0.3, 0.6}
	for i, w := range wants {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.02 {
			t.Errorf("weightedPick index %d frequency %g, want ≈%g", i, got, w)
		}
	}
}

func TestQuestDeterministicAndValid(t *testing.T) {
	c := DefaultQuest(500, 42)
	d1 := MustQuest(c)
	d2 := MustQuest(c)
	if d1.NumTx() != 500 || d2.NumTx() != 500 {
		t.Fatalf("NumTx = %d/%d, want 500", d1.NumTx(), d2.NumTx())
	}
	for i := 0; i < d1.NumTx(); i++ {
		if !d1.Tx(i).Equal(d2.Tx(i)) {
			t.Fatalf("same seed produced different transaction %d", i)
		}
		if !d1.Tx(i).Valid() {
			t.Fatalf("transaction %d is not a valid itemset", i)
		}
	}
	d3 := MustQuest(DefaultQuest(500, 43))
	same := true
	for i := 0; i < d1.NumTx(); i++ {
		if !d1.Tx(i).Equal(d3.Tx(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestQuestAvgTxLen(t *testing.T) {
	c := DefaultQuest(3000, 7)
	d := MustQuest(c)
	got := d.AvgTxLen()
	// Corruption and dedup shrink transactions below the nominal Poisson
	// mean; accept a broad but meaningful band.
	if got < 0.4*c.AvgTxLen || got > 1.6*c.AvgTxLen {
		t.Errorf("AvgTxLen = %g, want within [%g, %g]", got, 0.4*c.AvgTxLen, 1.6*c.AvgTxLen)
	}
}

func TestQuestHasFrequentPairs(t *testing.T) {
	// The whole point of pattern-based generation: some 2-itemsets must be
	// much more frequent than independence would allow.
	d := MustQuest(QuestConfig{
		NumTx: 2000, NumItems: 100, AvgTxLen: 8, AvgPatLen: 4,
		NumPatterns: 20, Correlation: 0.5, CorruptMean: 0.3, CorruptSD: 0.1,
		Seed: 11,
	})
	counts := make(map[[2]dataset.Item]int)
	for i := 0; i < d.NumTx(); i++ {
		tx := d.Tx(i)
		for a := 0; a < len(tx); a++ {
			for b := a + 1; b < len(tx); b++ {
				counts[[2]dataset.Item{tx[a], tx[b]}]++
			}
		}
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if best < d.NumTx()/20 {
		t.Errorf("most frequent pair appears %d times out of %d tx; expected strong co-occurrence", best, d.NumTx())
	}
}

func TestQuestConfigValidation(t *testing.T) {
	bad := []QuestConfig{
		{NumTx: 0, NumItems: 10, AvgTxLen: 5, AvgPatLen: 2, NumPatterns: 5},
		{NumTx: 10, NumItems: 0, AvgTxLen: 5, AvgPatLen: 2, NumPatterns: 5},
		{NumTx: 10, NumItems: 10, AvgTxLen: 0, AvgPatLen: 2, NumPatterns: 5},
		{NumTx: 10, NumItems: 10, AvgTxLen: 5, AvgPatLen: 0, NumPatterns: 5},
		{NumTx: 10, NumItems: 10, AvgTxLen: 5, AvgPatLen: 2, NumPatterns: 0},
		{NumTx: 10, NumItems: 10, AvgTxLen: 5, AvgPatLen: 2, NumPatterns: 5, Correlation: 1.5},
	}
	for i, c := range bad {
		if _, err := Quest(c); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestSkewedSeasonality(t *testing.T) {
	c := DefaultSkewed(4000, 99)
	c.Quest.NumItems = 200
	c.Quest.NumPatterns = 100
	d := MustSkewed(c)

	half := d.NumTx() / 2
	first := d.ItemCounts(0, half)
	second := d.ItemCounts(half, d.NumTx())
	lowFirst, lowSecond := 0, 0
	highFirst, highSecond := 0, 0
	for it := 0; it < d.NumItems(); it++ {
		if it < d.NumItems()/2 {
			lowFirst += int(first[it])
			lowSecond += int(second[it])
		} else {
			highFirst += int(first[it])
			highSecond += int(second[it])
		}
	}
	// Low-numbered items dominate the first half and vice versa.
	if lowFirst <= lowSecond {
		t.Errorf("low items: first half %d ≤ second half %d; expected seasonal skew", lowFirst, lowSecond)
	}
	if highSecond <= highFirst {
		t.Errorf("high items: second half %d ≤ first half %d; expected seasonal skew", highSecond, highFirst)
	}
}

func TestSkewedBoostOneMatchesShape(t *testing.T) {
	// Boost=1 should degenerate into an unskewed dataset (statistically):
	// no strong half-vs-half imbalance for the two item groups.
	c := SkewedConfig{Quest: DefaultQuest(4000, 5), Boost: 1}
	c.Quest.NumItems = 200
	c.Quest.NumPatterns = 100
	d := MustSkewed(c)
	half := d.NumTx() / 2
	first := d.ItemCounts(0, half)
	second := d.ItemCounts(half, d.NumTx())
	lowFirst, lowSecond := 0, 0
	for it := 0; it < d.NumItems()/2; it++ {
		lowFirst += int(first[it])
		lowSecond += int(second[it])
	}
	ratio := float64(lowFirst) / float64(lowSecond+1)
	if ratio > 1.3 || ratio < 0.7 {
		t.Errorf("Boost=1 but low-item first/second ratio = %g; expected ≈1", ratio)
	}
}

func TestSkewedValidation(t *testing.T) {
	c := DefaultSkewed(10, 1)
	c.Boost = 0.5
	if _, err := Skewed(c); err == nil {
		t.Error("Boost < 1 accepted, want error")
	}
	c = DefaultSkewed(0, 1)
	if _, err := Skewed(c); err == nil {
		t.Error("NumTx = 0 accepted, want error")
	}
}

func TestAlarmShape(t *testing.T) {
	d := MustAlarm(DefaultAlarm(123))
	if d.NumTx() != 5000 {
		t.Fatalf("NumTx = %d, want 5000", d.NumTx())
	}
	if d.NumItems() != 200 {
		t.Fatalf("NumItems = %d, want 200", d.NumItems())
	}
	if d.AvgTxLen() < 2 {
		t.Errorf("AvgTxLen = %g; alarm windows should carry several alarms", d.AvgTxLen())
	}
	// Long tail: the most frequent type should dwarf the median type.
	counts := d.ItemCounts(0, d.NumTx())
	maxC, nonZero := uint32(0), 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		if c > 0 {
			nonZero++
		}
	}
	if nonZero < 50 {
		t.Errorf("only %d alarm types ever fire; expected a broad tail", nonZero)
	}
	if maxC < 200 {
		t.Errorf("hottest alarm type fires %d times; expected a heavy head", maxC)
	}
}

func TestAlarmDrift(t *testing.T) {
	// Drift is the property that makes segmentation worthwhile: type
	// frequencies must differ across epochs. Compare first and last tenth.
	d := MustAlarm(DefaultAlarm(7))
	n := d.NumTx()
	a := d.ItemCounts(0, n/10)
	b := d.ItemCounts(n-n/10, n)
	diff := 0.0
	total := 0.0
	for it := range a {
		diff += math.Abs(float64(a[it]) - float64(b[it]))
		total += float64(a[it]) + float64(b[it])
	}
	if total == 0 {
		t.Fatal("no alarms at all")
	}
	if diff/total < 0.2 {
		t.Errorf("normalized first/last epoch difference = %g; expected visible drift", diff/total)
	}
}

func TestAlarmValidation(t *testing.T) {
	bad := []AlarmConfig{
		{NumTx: 0, NumTypes: 10, NumCascades: 2, Epochs: 1, ZipfS: 1.2},
		{NumTx: 10, NumTypes: 1, NumCascades: 2, Epochs: 1, ZipfS: 1.2},
		{NumTx: 10, NumTypes: 10, NumCascades: 0, Epochs: 1, ZipfS: 1.2},
		{NumTx: 10, NumTypes: 10, NumCascades: 2, Epochs: 0, ZipfS: 1.2},
		{NumTx: 10, NumTypes: 10, NumCascades: 2, Epochs: 1, ZipfS: 1.0},
	}
	for i, c := range bad {
		if _, err := Alarm(c); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestAlarmDeterministic(t *testing.T) {
	c := DefaultAlarm(55)
	c.NumTx = 300
	d1 := MustAlarm(c)
	d2 := MustAlarm(c)
	for i := 0; i < d1.NumTx(); i++ {
		if !d1.Tx(i).Equal(d2.Tx(i)) {
			t.Fatalf("same seed produced different transaction %d", i)
		}
	}
}

func TestQuestDriftDeterministicAndStable(t *testing.T) {
	c := DefaultQuest(2000, 21)
	c.WeightDrift = 0.6
	c.DriftEvery = 100
	d1 := MustQuest(c)
	d2 := MustQuest(c)
	for i := 0; i < d1.NumTx(); i++ {
		if !d1.Tx(i).Equal(d2.Tx(i)) {
			t.Fatalf("same seed with drift produced different transaction %d", i)
		}
	}
	// Mean-reversion keeps the overall shape sane: average transaction
	// length within the usual band despite drifting weights.
	if got := d1.AvgTxLen(); got < 0.4*c.AvgTxLen || got > 1.6*c.AvgTxLen {
		t.Errorf("drifting AvgTxLen = %g out of band", got)
	}
	// And drift actually changes the output relative to no drift.
	c0 := DefaultQuest(2000, 21)
	d0 := MustQuest(c0)
	same := true
	for i := 0; i < d0.NumTx(); i++ {
		if !d0.Tx(i).Equal(d1.Tx(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("drift had no effect on the generated data")
	}
}

func TestQuestDriftValidation(t *testing.T) {
	c := DefaultQuest(10, 1)
	c.WeightDrift = -0.5
	if _, err := Quest(c); err == nil {
		t.Error("negative WeightDrift accepted")
	}
	c = DefaultQuest(10, 1)
	c.DriftEvery = -3
	if _, err := Quest(c); err == nil {
		t.Error("negative DriftEvery accepted")
	}
}
