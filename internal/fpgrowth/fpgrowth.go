// Package fpgrowth implements the FP-growth algorithm of Han, Pei and Yin
// (SIGMOD 2000), the candidate-generation-free framework the paper's
// related-work section contrasts the OSSM against. It serves two roles
// here: an independent oracle for cross-validating every candidate-based
// miner, and the subject of the framework-comparison ablation (FP-growth
// is query-dependent and memory-resident; the OSSM is query-independent
// and sized to fit any memory budget).
package fpgrowth

import (
	"sort"
	"time"

	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// Name is the registry name of this miner.
const Name = "fpgrowth"

func init() {
	mining.Register(Name, func(d *dataset.Dataset, minCount int64, opts mining.Options) (*mining.Result, error) {
		return Mine(d, minCount, Options{Options: opts})
	})
}

// Options configures Mine. Of the embedded engine-wide knobs only MaxLen
// and Progress apply: FP-growth generates no candidates, so there is
// nothing for a Pruner to filter, and the recursion over shared
// conditional trees has no independent counting pass for Workers to fan
// out — both are accepted and ignored, keeping the registry contract
// uniform.
type Options struct {
	mining.Options
}

// fpNode is one node of an FP-tree.
type fpNode struct {
	item     dataset.Item
	count    int64
	parent   *fpNode
	children map[dataset.Item]*fpNode
	next     *fpNode // header-table chain of same-item nodes
}

// fpTree is an FP-tree with its header table.
type fpTree struct {
	root    *fpNode
	heads   map[dataset.Item]*fpNode // first node of each item's chain
	counts  map[dataset.Item]int64   // item frequency within this tree
	ordered []dataset.Item           // frequent items, ascending frequency
}

// newTree builds an FP-tree from weighted transactions: each input is an
// item list with a multiplicity (1 for raw transactions; conditional
// pattern bases carry counts).
func newTree(txs []weighted, minCount int64) *fpTree {
	t := &fpTree{
		root:   &fpNode{children: make(map[dataset.Item]*fpNode)},
		heads:  make(map[dataset.Item]*fpNode),
		counts: make(map[dataset.Item]int64),
	}
	for _, w := range txs {
		for _, it := range w.items {
			t.counts[it] += w.count
		}
	}
	freq := make(map[dataset.Item]int64)
	for it, c := range t.counts {
		if c >= minCount {
			freq[it] = c
			t.ordered = append(t.ordered, it)
		}
	}
	// Descending frequency, ties by item id — the canonical FP-tree item
	// order (reused in reverse for mining).
	sort.Slice(t.ordered, func(i, j int) bool {
		ci, cj := freq[t.ordered[i]], freq[t.ordered[j]]
		if ci != cj {
			return ci > cj
		}
		return t.ordered[i] < t.ordered[j]
	})
	rank := make(map[dataset.Item]int, len(t.ordered))
	for i, it := range t.ordered {
		rank[it] = i
	}
	buf := make([]dataset.Item, 0, 32)
	for _, w := range txs {
		buf = buf[:0]
		for _, it := range w.items {
			if _, ok := freq[it]; ok {
				buf = append(buf, it)
			}
		}
		sort.Slice(buf, func(i, j int) bool { return rank[buf[i]] < rank[buf[j]] })
		t.insert(buf, w.count)
	}
	return t
}

type weighted struct {
	items []dataset.Item
	count int64
}

func (t *fpTree) insert(path []dataset.Item, count int64) {
	node := t.root
	for _, it := range path {
		child := node.children[it]
		if child == nil {
			child = &fpNode{
				item:     it,
				parent:   node,
				children: make(map[dataset.Item]*fpNode),
				next:     t.heads[it],
			}
			t.heads[it] = child
			node.children[it] = child
		}
		child.count += count
		node = child
	}
}

// conditionalBase collects the prefix paths of every node of item it,
// each weighted by that node's count.
func (t *fpTree) conditionalBase(it dataset.Item) []weighted {
	var base []weighted
	for node := t.heads[it]; node != nil; node = node.next {
		var path []dataset.Item
		for p := node.parent; p != nil && p.parent != nil; p = p.parent {
			path = append(path, p.item)
		}
		if len(path) > 0 {
			base = append(base, weighted{items: path, count: node.count})
		}
	}
	return base
}

// Mine runs FP-growth over d at the absolute support threshold minCount.
func Mine(d *dataset.Dataset, minCount int64, opts Options) (*mining.Result, error) {
	if err := mining.ValidateMinCount(minCount); err != nil {
		return nil, err
	}
	start := time.Now()
	txs := make([]weighted, 0, d.NumTx())
	for i := 0; i < d.NumTx(); i++ {
		tx := d.Tx(i)
		if len(tx) > 0 {
			txs = append(txs, weighted{items: tx, count: 1})
		}
	}
	tree := newTree(txs, minCount)
	// FP-growth generates no candidates, so the per-level telemetry tallies
	// the patterns it materializes instead (generated = counted, nothing
	// for a pruner to discard); the one full-database scan feeds level 1.
	var tally mining.LevelTally
	tally.NoteTx(1, d.NumTx())
	var found []mining.Counted
	growth(tree, nil, minCount, opts.MaxLen, &tally, &found)
	res := mining.FromMap(minCount, found)
	res.Stats = mining.Stats{Algorithm: Name, Workers: 1, Elapsed: time.Since(start)}
	tally.Apply(res)
	mining.EmitLevels(opts.Options, res)
	return res, nil
}

// growth is the recursive FP-growth step: for each frequent item of the
// tree (ascending frequency), emit suffix ∪ {item} and recurse into the
// conditional tree.
func growth(t *fpTree, suffix dataset.Itemset, minCount int64, maxLen int, tally *mining.LevelTally, out *[]mining.Counted) {
	// Iterate ascending frequency = reverse of ordered.
	for i := len(t.ordered) - 1; i >= 0; i-- {
		it := t.ordered[i]
		items := suffix.Union(dataset.Itemset{it})
		tally.Note(len(items), 1, 0, 1)
		*out = append(*out, mining.Counted{Items: items, Count: t.counts[it]})
		if maxLen != 0 && len(items) >= maxLen {
			continue
		}
		base := t.conditionalBase(it)
		if len(base) == 0 {
			continue
		}
		cond := newTree(base, minCount)
		if len(cond.ordered) > 0 {
			growth(cond, items, minCount, maxLen, tally, out)
		}
	}
}
