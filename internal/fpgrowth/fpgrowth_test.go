package fpgrowth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ossm-mining/ossm/internal/apriori"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

func randomDataset(r *rand.Rand) *dataset.Dataset {
	k := 2 + r.Intn(6)
	n := 2 + r.Intn(40)
	b := dataset.NewBuilder(k)
	for i := 0; i < n; i++ {
		sz := r.Intn(k + 1)
		tx := make([]dataset.Item, sz)
		for j := range tx {
			tx[j] = dataset.Item(r.Intn(k))
		}
		if err := b.Append(tx); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func TestFPGrowthClassicExample(t *testing.T) {
	// The running example of the FP-growth paper (minsup 3), item-coded:
	// f=0 c=1 a=2 b=3 m=4 p=5 (others mapped above).
	d := dataset.MustFromTransactions(11, [][]dataset.Item{
		{0, 2, 1, 6, 7, 4, 5},    // f a c d g i m p
		{2, 3, 1, 0, 8, 4, 9},    // a b c f l m o
		{3, 0, 10, 9},            // b f h j o — j,h mapped to 10 (dedup ok: use distinct)
		{3, 1, 5, 6},             // b c k(→6?) s p — approximate
		{2, 0, 1, 7, 8, 5, 4, 6}, // a f c e l p m n
	})
	res, err := Mine(d, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := apriori.Mine(d, 3, apriori.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ap.Equal(res) {
		t.Errorf("FP-growth disagrees with Apriori on the classic example:\nfp = %v\nap = %v", res.AsMap(), ap.AsMap())
	}
	// Spot-check a known frequent pattern: {f, c, m} i.e. {0,1,4} has
	// support 3 in this encoding.
	if got, ok := res.Support(dataset.NewItemset(0, 1, 4)); !ok || got != 3 {
		t.Errorf("Support({f,c,m}) = %d,%v; want 3,true", got, ok)
	}
}

func TestFPGrowthMatchesApriori(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minCount := int64(1 + r.Intn(d.NumTx()))
		ap, err := apriori.Mine(d, minCount, apriori.Options{})
		if err != nil {
			return false
		}
		fp, err := Mine(d, minCount, Options{})
		if err != nil {
			return false
		}
		return ap.Equal(fp)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFPGrowthMaxLen(t *testing.T) {
	d := dataset.MustFromTransactions(3, [][]dataset.Item{
		{0, 1, 2}, {0, 1, 2}, {0, 1, 2},
	})
	res, err := Mine(d, 2, Options{Options: mining.Options{MaxLen: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Levels {
		if l.K > 2 {
			t.Errorf("level %d produced despite MaxLen 2", l.K)
		}
	}
	if res.NumFrequent() != 6 { // 3 singletons + 3 pairs
		t.Errorf("NumFrequent = %d, want 6", res.NumFrequent())
	}
}

func TestFPGrowthValidation(t *testing.T) {
	d := dataset.MustFromTransactions(2, [][]dataset.Item{{0}, {1}})
	if _, err := Mine(d, 0, Options{}); err == nil {
		t.Error("minCount 0 accepted")
	}
}

func TestFPGrowthEmptyAndSparse(t *testing.T) {
	d := dataset.MustFromTransactions(3, [][]dataset.Item{{}, {}, {1}})
	res, err := Mine(d, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 0 {
		t.Errorf("NumFrequent = %d, want 0", res.NumFrequent())
	}
	res1, err := Mine(d, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.NumFrequent() != 1 {
		t.Errorf("NumFrequent = %d, want 1 ({1})", res1.NumFrequent())
	}
}
