package server

// The durable ingest path: POST /v1/ingest appends transactions to a
// write-ahead-logged store (internal/wal) — written and fsynced before
// the request is acknowledged — and a background compactor periodically
// re-runs segmentation over the accumulated state, promoting the result
// into the serving registry with Swap. Promotion bumps the entry's
// version, so every cached bound against the previous index becomes
// unreachable at once and in-flight readers keep their old index until
// their request completes: the hot-swap never drops a read.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/wal"
)

// IngestConfig tunes an Ingester.
type IngestConfig struct {
	// CompactEvery promotes a fresh index after this many ingested
	// records (0 ⇒ 64).
	CompactEvery int
	// CompactInterval is the compactor's poll period — the longest a
	// pending record waits before promotion when traffic is too slow to
	// hit CompactEvery (0 ⇒ 1s; negative disables polling, leaving only
	// the count trigger).
	CompactInterval time.Duration
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.CompactEvery == 0 {
		c.CompactEvery = 64
	}
	if c.CompactInterval == 0 {
		c.CompactInterval = time.Second
	}
	return c
}

// Ingester bridges one wal.Store into a Server's registry entry. Create
// with Server.EnableIngest; stop with Close (which stops the compactor
// but leaves the store open for the caller to close).
type Ingester struct {
	srv   *Server
	name  string
	store *wal.Store
	cfg   IngestConfig

	mu       sync.Mutex
	promoted uint64 // sequence number the serving index reflects

	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}
}

// EnableIngest wires a write-ahead-logged store into the server: POST
// /v1/ingest starts accepting transactions for the named entry, the
// store's snapshot outcomes land in the scrape families, and a
// background compactor promotes a freshly segmented index through the
// registry whenever enough records accumulate. Any state the store
// recovered is promoted immediately, so a restarted server serves its
// durable data before the first new ingest.
func (s *Server) EnableIngest(name string, store *wal.Store, cfg IngestConfig) (*Ingester, error) {
	if name == "" || store == nil {
		return nil, fmt.Errorf("server: EnableIngest requires a name and a store")
	}
	if s.ingest.Load() != nil {
		return nil, fmt.Errorf("server: ingest already enabled")
	}
	ing := &Ingester{
		srv:    s,
		name:   name,
		store:  store,
		cfg:    cfg.withDefaults(),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	store.SetOnSnapshot(func(err error) {
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		s.obs.snapshots.With(outcome).Inc()
		// An instantaneous event span: snapshots run on whichever append
		// crossed the threshold, so they have no natural request parent —
		// each becomes its own root in /v1/traces.
		_, ev := s.obs.tracer.Start(context.Background(), "wal-snapshot")
		ev.SetAttr("outcome", outcome)
		ev.SetAttr("dataset", name)
		ev.End()
	})
	// Serve recovered state right away; an empty store has nothing to
	// promote yet.
	if err := ing.promote(); err != nil && !errors.Is(err, wal.ErrEmpty) {
		return nil, fmt.Errorf("server: promoting recovered state: %w", err)
	}
	s.ingest.Store(ing)
	go ing.compactor()
	return ing, nil
}

// Close stops the background compactor. The wal.Store itself stays
// open — its lifetime belongs to whoever opened it.
func (ing *Ingester) Close() {
	close(ing.stop)
	<-ing.done
}

// Store exposes the underlying wal.Store.
func (ing *Ingester) Store() *wal.Store { return ing.store }

// Promoted returns the WAL sequence number the serving index currently
// reflects.
func (ing *Ingester) Promoted() uint64 {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.promoted
}

// Backlog returns the count of records durably acknowledged but not yet
// promoted into the serving index — the freshness debt the compactor is
// working off.
func (ing *Ingester) Backlog() uint64 {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if seq := ing.store.Seq(); seq > ing.promoted {
		return seq - ing.promoted
	}
	return 0
}

// compactor is the background promotion loop: it wakes on the record
// counter (kicked by the ingest handler) or the poll ticker, and
// promotes when records landed since the last promotion.
func (ing *Ingester) compactor() {
	defer close(ing.done)
	var tick <-chan time.Time
	if ing.cfg.CompactInterval > 0 {
		t := time.NewTicker(ing.cfg.CompactInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ing.stop:
			return
		case <-ing.notify:
		case <-tick:
		}
		ing.mu.Lock()
		pending := ing.store.Seq() > ing.promoted
		ing.mu.Unlock()
		if pending {
			if err := ing.promote(); err != nil {
				ing.srv.obs.logger.Error("compaction failed", "name", ing.name, "error", err)
			}
		}
	}
}

// promote re-segments the store's current state and swaps the result
// into the registry. Readers racing the swap keep the index they looked
// up; the version bump retires their cached bounds.
func (ing *Ingester) promote() error {
	start := time.Now()
	_, span := ing.srv.obs.tracer.Start(context.Background(), "compaction")
	span.SetAttr("dataset", ing.name)
	ix, seq, err := ing.store.Index()
	if err != nil {
		span.SetAttr("outcome", "error")
		span.End()
		return err
	}
	span.SetAttr("outcome", "ok")
	span.SetAttr("seq", seq)
	span.End()
	ing.srv.obs.compaction.Observe(time.Since(start).Seconds())
	reg := ing.srv.reg
	if _, _, ok := reg.Lookup(ing.name); ok {
		err = reg.Swap(ing.name, ix)
	} else {
		err = reg.AddIndex(ing.name, ix)
	}
	if err != nil {
		return err
	}
	ing.mu.Lock()
	ing.promoted = seq
	ing.mu.Unlock()
	return nil
}

// kick nudges the compactor when enough records accumulated.
func (ing *Ingester) kick() {
	ing.mu.Lock()
	due := ing.store.Seq() >= ing.promoted+uint64(ing.cfg.CompactEvery)
	ing.mu.Unlock()
	if due {
		select {
		case ing.notify <- struct{}{}:
		default:
		}
	}
}

// IngestRequest is the body of POST /v1/ingest: one transaction or a
// batch (exactly one of the two fields). Items need not be sorted; the
// store canonicalizes.
type IngestRequest struct {
	Tx    []ossm.Item   `json:"tx,omitempty"`
	Batch [][]ossm.Item `json:"batch,omitempty"`
}

// IngestResponse acknowledges a durable ingest: the record's WAL
// sequence number was written and fsynced before this response.
type IngestResponse struct {
	Dataset  string `json:"dataset"`
	Seq      uint64 `json:"seq"`
	Ingested int    `json:"ingested"`
	NumTx    int64  `json:"num_tx"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ing := s.ingest.Load()
	if ing == nil {
		s.obs.ingests.With("invalid").Inc()
		s.writeErr(w, http.StatusNotFound, "ingest is not enabled on this server")
		return
	}
	if s.expired(w, r) {
		return
	}
	var req IngestRequest
	if err := decodeJSON(r, &req); err != nil {
		s.obs.ingests.With("invalid").Inc()
		s.writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	single := req.Tx != nil
	if single == (len(req.Batch) > 0) {
		s.obs.ingests.With("invalid").Inc()
		s.writeErr(w, http.StatusBadRequest, "exactly one of tx and batch must be set")
		return
	}
	batch := req.Batch
	if single {
		batch = [][]ossm.Item{req.Tx}
	}
	if len(batch) > s.cfg.MaxBatch {
		s.obs.ingests.With("invalid").Inc()
		s.writeErr(w, http.StatusBadRequest, "batch of %d transactions exceeds the limit of %d", len(batch), s.cfg.MaxBatch)
		return
	}
	txs := make([]ossm.Itemset, len(batch))
	for i, items := range batch {
		txs[i] = ossm.Itemset(items)
	}
	actx, aspan := s.obs.tracer.Start(r.Context(), "ingest-append")
	aspan.SetAttr("txs", len(txs))
	seq, st, err := ing.store.AppendWithStats(txs)
	if err == nil {
		// The store reports how long each durability phase took; the child
		// spans are synthesized backwards from the append's end so the
		// trace shows exactly where the acknowledged write spent its time:
		// encode+write, fsync (the durability point), then the in-memory
		// apply.
		end := time.Now()
		applyStart := end.Add(-st.ApplyDur)
		syncStart := applyStart.Add(-st.SyncDur)
		writeStart := syncStart.Add(-st.WriteDur)
		for _, ph := range []struct {
			name       string
			start, end time.Time
		}{
			{"wal-write", writeStart, syncStart},
			{"wal-fsync", syncStart, applyStart},
			{"wal-apply", applyStart, end},
		} {
			_, span := s.obs.tracer.StartAt(actx, ph.name, ph.start)
			span.EndAt(ph.end)
		}
		aspan.SetAttr("seq", seq)
		aspan.SetAttr("bytes", st.Bytes)
	} else {
		aspan.SetAttr("outcome", "error")
	}
	aspan.End()
	if err != nil {
		switch {
		case errors.Is(err, wal.ErrClosed), errors.Is(err, wal.ErrFailed):
			s.obs.ingests.With("error").Inc()
			s.writeErr(w, http.StatusServiceUnavailable, "%v", err)
		default:
			s.obs.ingests.With("invalid").Inc()
			s.writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.obs.ingests.With("ok").Inc()
	ing.kick()
	s.writeJSON(w, http.StatusOK, IngestResponse{
		Dataset:  ing.name,
		Seq:      seq,
		Ingested: len(batch),
		NumTx:    ing.store.NumTx(),
	})
}
