package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/wal"
)

// enableTestIngest opens a crash-model in-memory WAL store and wires it
// into the server under the entry name "ingest".
func enableTestIngest(t testing.TB, s *Server, cfg IngestConfig) *Ingester {
	t.Helper()
	store, _, err := wal.Open(wal.NewMemFS(), wal.Options{
		NumItems:      64,
		Appender:      ossm.AppenderOptions{PageSize: 2, MaxSegments: 4, CompactAt: 8},
		SnapshotEvery: 2,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	ing, err := s.EnableIngest("ingest", store, cfg)
	if err != nil {
		t.Fatalf("EnableIngest: %v", err)
	}
	t.Cleanup(ing.Close)
	return ing
}

func TestIngestDisabled(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	code, body := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", `{"tx":[1]}`)
	if code != http.StatusNotFound {
		t.Fatalf("ingest on a server without a store: %d %v", code, body)
	}
}

func TestIngestEndToEnd(t *testing.T) {
	s, ts, _, _ := newTestServer(t, Config{})
	ing := enableTestIngest(t, s, IngestConfig{CompactEvery: 1, CompactInterval: 10 * time.Millisecond})

	code, body := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", `{"tx":[3,1,2]}`)
	if code != http.StatusOK {
		t.Fatalf("single ingest: %d %v", code, body)
	}
	if body["seq"].(float64) != 1 || body["num_tx"].(float64) != 1 || body["dataset"] != "ingest" {
		t.Fatalf("single ingest response: %v", body)
	}
	code, body = postJSON(t, ts.Client(), ts.URL+"/v1/ingest", `{"batch":[[5],[6,7],[]]}`)
	if code != http.StatusOK || body["seq"].(float64) != 2 || body["ingested"].(float64) != 3 {
		t.Fatalf("batch ingest: %d %v", code, body)
	}

	// Invalid requests are rejected without consuming a sequence number.
	for _, bad := range []string{
		`{}`,
		`{"tx":[1],"batch":[[2]]}`,
		`{"tx":[9999]}`,
		`not json`,
	} {
		code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", bad)
		if code != http.StatusBadRequest {
			t.Fatalf("bad request %q: status %d", bad, code)
		}
	}
	if ing.Store().Seq() != 2 {
		t.Fatalf("rejected requests advanced seq to %d", ing.Store().Seq())
	}

	// The compactor promotes the ingested data into the registry; the
	// entry then serves exact singleton bounds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body = postJSONQuiet(ts.Client(), ts.URL+"/v1/ubsup", `{"index":"ingest","itemset":[5]}`)
		if code == http.StatusOK && body["num_tx"].(float64) == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("promotion never reached the registry: %d %v", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := *jsonBound(t, body); got != 1 {
		t.Fatalf("bound for item 5: %d, want 1", got)
	}

	// Ingest metrics moved.
	samples := scrape(t, ts.URL)
	if got := samples[`ossm_ingest_total{outcome="ok"}`]; got != 2 {
		t.Errorf("ossm_ingest_total{outcome=ok} = %v, want 2", got)
	}
	if got := samples[`ossm_ingest_total{outcome="invalid"}`]; got != 4 {
		t.Errorf("ossm_ingest_total{outcome=invalid} = %v, want 4", got)
	}
	if got := samples[`ossm_snapshot_total{outcome="ok"}`]; got != 1 {
		t.Errorf("ossm_snapshot_total{outcome=ok} = %v, want 1", got)
	}
	if got := samples["ossm_compaction_seconds_count"]; got < 1 {
		t.Errorf("ossm_compaction_seconds_count = %v, want >= 1", got)
	}
	if got := samples["ossm_wal_bytes"]; got != 0 {
		t.Errorf("ossm_wal_bytes = %v, want 0 right after the SnapshotEvery=2 snapshot", got)
	}
}

// TestIngestQuantizedMirrorFreshAcrossSwaps promotes ingested data into
// maps deep enough (up to 96 single-transaction segments, past the
// 64-segment batch crossover) that batch ubsup queries stream the
// quantized uint16 mirror, then keeps appending: every compaction swap
// publishes a new immutable map whose mirror rebuilds lazily from the
// new cells, so the served bounds must track the ingested counts
// exactly. A mirror cached across the swap would freeze them.
func TestIngestQuantizedMirrorFreshAcrossSwaps(t *testing.T) {
	s, ts, _, _ := newTestServer(t, Config{})
	store, _, err := wal.Open(wal.NewMemFS(), wal.Options{
		NumItems:      8,
		Appender:      ossm.AppenderOptions{PageSize: 1, MaxSegments: 96, CompactAt: 128},
		SnapshotEvery: 64,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	ing, err := s.EnableIngest("ingest", store, IngestConfig{CompactEvery: 1, CompactInterval: time.Millisecond})
	if err != nil {
		t.Fatalf("EnableIngest: %v", err)
	}
	t.Cleanup(ing.Close)

	ingestPairs := func(n int) {
		t.Helper()
		batch := `{"batch":[[1,2]`
		for i := 1; i < n; i++ {
			batch += `,[1,2]`
		}
		batch += `]}`
		if code, body := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", batch); code != http.StatusOK {
			t.Fatalf("ingest of %d pairs: %d %v", n, code, body)
		}
	}
	// Batch requests (≥2 itemsets) take the UpperBoundBatch row stream —
	// the quantized lane once the promoted map is deeper than 64
	// segments. Both itemsets always co-occur, so their pair bound equals
	// the exact transaction count.
	waitPairBound := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			code, body := postJSONQuiet(ts.Client(), ts.URL+"/v1/ubsup",
				`{"index":"ingest","itemsets":[[1,2],[1]],"no_cache":true}`)
			if code == http.StatusOK {
				res := body["bounds"].([]any)
				pair := int64(res[0].(map[string]any)["bound"].(float64))
				single := int64(res[1].(map[string]any)["bound"].(float64))
				if pair == want && single == want {
					return
				}
				if pair > want || single > want {
					t.Fatalf("bounds (%d, %d) overshot the ingested count %d", pair, single, want)
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("bound never reached %d: %d %v", want, code, body)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	ingestPairs(80)
	waitPairBound(80)
	// Two more swaps past the first: each must serve fresh cells through
	// a freshly built mirror.
	ingestPairs(60)
	waitPairBound(140)
	ingestPairs(60)
	waitPairBound(200)
}

func jsonBound(t *testing.T, body map[string]any) *int64 {
	t.Helper()
	v, ok := body["bound"].(float64)
	if !ok {
		t.Fatalf("no bound in %v", body)
	}
	b := int64(v)
	return &b
}

// TestIngestConcurrentReadersDuringSwap hammers /v1/ubsup while the
// compactor hot-swaps promoted indexes under the readers. The invariants
// under -race: no reader ever sees an error once the entry exists, and
// singleton bounds are exact in every OSSM, so the bound for a tracked
// item must be non-decreasing across swaps — a reader that caught a
// half-installed index would violate one of the two.
func TestIngestConcurrentReadersDuringSwap(t *testing.T) {
	s, ts, _, _ := newTestServer(t, Config{})
	enableTestIngest(t, s, IngestConfig{CompactEvery: 1, CompactInterval: time.Millisecond})

	// Seed one record so the entry exists before readers start.
	if code, body := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", `{"tx":[0]}`); code != http.StatusOK {
		t.Fatalf("seed ingest: %d %v", code, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := postJSONQuiet(ts.Client(), ts.URL+"/v1/ubsup", `{"index":"ingest","itemset":[0]}`); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("seed promotion never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	const (
		readers   = 4
		writes    = 120
		perReader = 200
	)
	var wg sync.WaitGroup
	errCh := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(11))
		for i := 0; i < writes; i++ {
			tx := fmt.Sprintf(`{"tx":[0,%d]}`, 1+r.Intn(60))
			if code, body := postJSONQuiet(ts.Client(), ts.URL+"/v1/ingest", tx); code != http.StatusOK {
				errCh <- fmt.Errorf("ingest %d: %d %v", i, code, body)
				return
			}
		}
	}()

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var last int64 = -1
			for i := 0; i < perReader; i++ {
				code, body := postJSONQuiet(ts.Client(), ts.URL+"/v1/ubsup", `{"index":"ingest","itemset":[0],"no_cache":true}`)
				if code != http.StatusOK {
					errCh <- fmt.Errorf("reader %d query %d: status %d %v", g, i, code, body)
					return
				}
				bound := int64(body["bound"].(float64))
				if bound < last {
					errCh <- fmt.Errorf("reader %d: singleton bound regressed %d -> %d across a swap", g, last, bound)
					return
				}
				last = bound
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
