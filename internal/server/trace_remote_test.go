package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/obs"
	"github.com/ossm-mining/ossm/internal/shard"
	"github.com/ossm-mining/ossm/internal/shard/remote"
)

// startTracedWorkerFleet is startWorkerFleet with observability wired:
// every worker gets its own span ring (its own process's tracer in
// production) and logs access lines into logBuf.
func startTracedWorkerFleet(t *testing.T, name string, ix *ossm.Index, d *ossm.Dataset, n int, logBuf *syncBuffer) []string {
	t.Helper()
	locals, err := shard.NewLocalShards(ix, d, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, n)
	for i, tr := range shard.Transports(locals) {
		w := remote.NewWorker()
		w.SetObs(obs.NewLogger(logBuf, 0), obs.NewTracer(512))
		if err := w.Add(name, tr, ix.NumSegments()); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// TestRemoteFleetTraceAssembly is the tentpole acceptance check: a batch
// /v1/ubsup over 3 remote shards yields, at /v1/traces, ONE tree in
// which every worker's serve span is correctly parented under the
// coordinator's RPC span (traceparent crossed the wire), with per-shard
// serve/net attribution bounded by the root's wall clock; and
// /metrics?exemplars=1 links a latency bucket to a trace in the ring.
func TestRemoteFleetTraceAssembly(t *testing.T) {
	d, ix := fixture(t, 1500, 13)
	workerLog := &syncBuffer{}
	urls := startTracedWorkerFleet(t, "retail", ix, d, 3, workerLog)
	rc := newRemoteCoordinator(t, d, ix, urls)

	body := `{"index":"retail","itemsets":[[0],[1,2],[3,4,5],[0,2,4,6]],"no_cache":true}`
	req, err := http.NewRequest(http.MethodPost, rc.url+"/v1/ubsup", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ubsup map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ubsup); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ubsup = %d: %v", resp.StatusCode, ubsup)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("coordinator response missing X-Request-Id")
	}

	// Satellite: the coordinator's request id crossed the wire and landed
	// in every worker's access-log line — the join key between processes.
	workerLines := 0
	for _, line := range strings.Split(workerLog.String(), "\n") {
		var rec map[string]any
		if json.Unmarshal([]byte(line), &rec) == nil && rec["msg"] == "shard_rpc" &&
			rec["path"] == "/shard/v1/bounds" && rec["request_id"] == reqID {
			workerLines++
		}
	}
	if workerLines != 3 {
		t.Errorf("request id %s appears in %d worker shard_rpc lines, want 3\n%s",
			reqID, workerLines, workerLog.String())
	}

	// The assembled cross-process trace.
	code, traces := getJSON(t, rc.url+"/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("traces = %d", code)
	}
	if n := int(traces["remote_spans"].(float64)); n < 3 {
		t.Fatalf("only %d remote spans fetched, want >= 3 (one serve span per worker)", n)
	}
	if errsN, ok := traces["remote_errors"].(float64); ok && errsN != 0 {
		t.Fatalf("remote span fetch errors: %v", errsN)
	}

	// Find the ubsup root; it must be the ONE tree for this request.
	var root map[string]any
	for _, tr := range traces["traces"].([]any) {
		node := tr.(map[string]any)
		if node["name"] == "POST /v1/ubsup" {
			if root != nil {
				t.Fatal("more than one POST /v1/ubsup root")
			}
			root = node
		}
	}
	if root == nil {
		t.Fatal("no POST /v1/ubsup root in the assembled traces")
	}
	traceID := root["trace_id"].(string)
	rootDur := int64(root["duration_ns"].(float64))

	// Walk the tree: per shard, rpc-bounds must carry a remote serve span
	// whose parent_id is the rpc span's own id, and the serve span must
	// carry the worker's kernel span.
	serveParent := map[string]bool{} // span names seen under rpc spans
	shardsSeen := map[float64]bool{}
	var walk func(node map[string]any)
	walk = func(node map[string]any) {
		name := node["name"].(string)
		children, _ := node["children"].([]any)
		if name == "rpc-bounds" {
			attrs := node["attrs"].(map[string]any)
			shardsSeen[attrs["shard"].(float64)] = true
			for _, c := range children {
				child := c.(map[string]any)
				if child["name"] == "serve /shard/v1/bounds" {
					if child["parent_id"] != node["span_id"] {
						t.Errorf("serve span parent %v != rpc span %v", child["parent_id"], node["span_id"])
					}
					if child["trace_id"] != traceID {
						t.Errorf("serve span trace %v escaped trace %s", child["trace_id"], traceID)
					}
					serveParent[name] = true
					kids, _ := child["children"].([]any)
					foundKernel := false
					for _, k := range kids {
						if k.(map[string]any)["name"] == "kernel-bounds" {
							foundKernel = true
						}
					}
					if !foundKernel {
						t.Error("worker serve span has no kernel-bounds child")
					}
				}
			}
		}
		for _, c := range children {
			walk(c.(map[string]any))
		}
	}
	walk(root)
	if len(shardsSeen) != 3 {
		t.Fatalf("rpc spans cover %d shards, want 3", len(shardsSeen))
	}
	if !serveParent["rpc-bounds"] {
		t.Fatal("no remote serve span stitched under any rpc span")
	}

	// Attribution: every shard reports at least one RPC, and each shard's
	// serve + net split stays within the root's wall clock (shards run
	// concurrently, so the per-shard — not cross-shard — sum is bounded).
	var attr map[string]any
	for _, a := range traces["attribution"].([]any) {
		if rec := a.(map[string]any); rec["trace_id"] == traceID {
			attr = rec
		}
	}
	if attr == nil {
		t.Fatal("no attribution entry for the ubsup trace")
	}
	shardRows := attr["shards"].([]any)
	if len(shardRows) != 3 {
		t.Fatalf("attribution covers %d shards, want 3", len(shardRows))
	}
	for _, row := range shardRows {
		rec := row.(map[string]any)
		rpcs := int(rec["rpcs"].(float64))
		serveNs := int64(rec["serve_ns"].(float64))
		netNs := int64(rec["net_ns"].(float64))
		if rpcs < 1 {
			t.Errorf("shard %v reports %d RPCs", rec["shard"], rpcs)
		}
		if serveNs <= 0 {
			t.Errorf("shard %v reports serve_ns = %d, want > 0", rec["shard"], serveNs)
		}
		if netNs < 0 {
			t.Errorf("shard %v reports negative net_ns %d", rec["shard"], netNs)
		}
		if serveNs+netNs > rootDur {
			t.Errorf("shard %v serve+net = %d ns exceeds root duration %d ns",
				rec["shard"], serveNs+netNs, rootDur)
		}
	}

	// ?remote=0 serves the local ring alone — the serve spans vanish.
	code, local := getJSON(t, rc.url+"/v1/traces?remote=0")
	if code != http.StatusOK {
		t.Fatalf("traces?remote=0 = %d", code)
	}
	if n, ok := local["remote_spans"].(float64); ok && n != 0 {
		t.Errorf("remote=0 still fetched %v remote spans", n)
	}

	// Exemplars: the rich exposition lints clean and at least one latency
	// bucket links to a trace id present in the ring.
	mresp, err := http.Get(rc.url + "/metrics?exemplars=1")
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if errs := obs.Lint(bytes.NewReader(raw.Bytes())); len(errs) != 0 {
		t.Fatalf("exemplar exposition fails lint: %v", errs)
	}
	samples, err := obs.ParseText(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ringIDs := map[string]bool{}
	for _, tr := range traces["traces"].([]any) {
		ringIDs[tr.(map[string]any)["trace_id"].(string)] = true
	}
	linked := 0
	for _, s := range samples {
		if s.Exemplar == nil || !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		if ringIDs[s.Exemplar.TraceID] {
			linked++
		}
	}
	if linked == 0 {
		t.Error("no latency bucket exemplar links to a trace in the ring")
	}
}
