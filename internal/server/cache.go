package server

import (
	"container/list"
	"strconv"
	"sync"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/telemetry"
)

// boundCache is the hot-path LRU of ubsup answers. Bound queries dominate
// a serving workload (PAPER.md §3: the OSSM exists so queries at any
// threshold are cheap and query-independent), and popular itemsets repeat,
// so one small map lookup replaces a min-scan over every segment row.
//
// Keys embed the owning index's registry version, so replacing an index
// (a streaming Appender snapshot swap) invalidates every cached bound for
// it at once: post-swap queries form keys at the new version and can never
// observe a stale value, while the dead generation's entries age out of
// the LRU tail without a sweep.
type boundCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      telemetry.Counter
	misses    telemetry.Counter
	evictions telemetry.Counter
}

type cacheEntry struct {
	key   string
	bound int64
}

// newBoundCache returns an LRU holding up to capacity bounds; capacity
// <= 0 disables caching (every get misses, puts are dropped).
func newBoundCache(capacity int) *boundCache {
	return &boundCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// appendCacheKey canonicalizes (index name, index version, itemset) into
// the cache's key space, appending to buf. The itemset must already be
// canonical (sorted, de-duplicated) so permutations of one query collide.
// Keys stay []byte on the hot path: looking a byte slice up via
// map[string(key)] compiles to an allocation-free probe, so a cache hit
// costs one buffer append and one map access.
func appendCacheKey(buf []byte, name string, version uint64, set ossm.Itemset) []byte {
	buf = append(buf, name...)
	buf = append(buf, 0)
	buf = strconv.AppendUint(buf, version, 10)
	buf = append(buf, 0)
	for i, it := range set {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendUint(buf, uint64(it), 10)
	}
	return buf
}

// get returns the cached bound for key and whether it was present.
func (c *boundCache) get(key []byte) (int64, bool) {
	if c.cap <= 0 {
		c.misses.Inc()
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[string(key)]
	if !ok {
		c.misses.Inc()
		return 0, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).bound, true
}

// put records a freshly computed bound, evicting the least recently used
// entry when the cache is full.
func (c *boundCache) put(key []byte, bound int64) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[string(key)]; ok {
		el.Value.(*cacheEntry).bound = bound
		c.ll.MoveToFront(el)
		return
	}
	k := string(key)
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, bound: bound})
	if c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// len reports the number of cached bounds.
func (c *boundCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is the cache section of the metrics report.
type CacheStats struct {
	Capacity  int   `json:"capacity"`
	Size      int   `json:"size"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (c *boundCache) stats() CacheStats {
	return CacheStats{
		Capacity:  c.cap,
		Size:      c.len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
