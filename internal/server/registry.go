package server

import (
	"fmt"
	"sort"
	"sync"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/shard"
)

// Registry is the server's collection of named serving entries. Each
// entry pairs a queryable OSSM index with an optional in-memory dataset
// (the mining substrate for /v1/mine); indexes are loaded once at startup
// (Grahne & Zhu's on-demand secondary-memory shape) and replaced
// wholesale by Swap when a streaming snapshot supersedes them.
//
// Every index carries a monotonically increasing version. Readers obtain
// (index, version) atomically; the bound cache keys on the version, so a
// swap implicitly invalidates every bound cached against the replaced
// index.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

type entry struct {
	index   *ossm.Index
	dataset *ossm.Dataset
	version uint64
	swaps   int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// AddIndex registers a new named index at version 1. Adding a name twice
// is an error — replacement goes through Swap so cache invalidation is
// explicit.
func (r *Registry) AddIndex(name string, ix *ossm.Index) error {
	if name == "" || ix == nil {
		return fmt.Errorf("server: AddIndex requires a name and an index")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.index != nil {
			return fmt.Errorf("server: index %q already registered (use Swap to replace it)", name)
		}
		e.index = ix
		e.version++
		return nil
	}
	r.entries[name] = &entry{index: ix, version: 1}
	return nil
}

// AddDataset attaches a dataset to the named entry (creating the entry if
// needed), enabling /v1/mine for that name.
func (r *Registry) AddDataset(name string, d *ossm.Dataset) error {
	if name == "" || d == nil {
		return fmt.Errorf("server: AddDataset requires a name and a dataset")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		e = &entry{}
		r.entries[name] = e
	}
	if e.dataset != nil {
		return fmt.Errorf("server: dataset %q already attached", name)
	}
	e.dataset = d
	return nil
}

// Swap replaces the named index with a new one (typically a streaming
// Appender snapshot) and bumps its version, invalidating all bounds
// cached against the old index. The entry's dataset, if any, is kept.
func (r *Registry) Swap(name string, ix *ossm.Index) error {
	if ix == nil {
		return fmt.Errorf("server: Swap requires an index")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok || e.index == nil {
		return fmt.Errorf("server: unknown index %q", name)
	}
	e.index = ix
	e.version++
	e.swaps++
	return nil
}

// Remove deletes the named entry — index, dataset and version history —
// reporting whether it existed. Startup loaders use it to release
// partially-registered entries when a later load step fails; bounds
// cached against the removed index become unreachable because lookups
// for the name now miss.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[name]
	delete(r.entries, name)
	return ok
}

// Lookup returns the named index and its current version atomically.
func (r *Registry) Lookup(name string) (ix *ossm.Index, version uint64, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, found := r.entries[name]
	if !found || e.index == nil {
		return nil, 0, false
	}
	return e.index, e.version, true
}

// Dataset returns the dataset attached to the named entry, if any.
func (r *Registry) Dataset(name string) (*ossm.Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok || e.dataset == nil {
		return nil, false
	}
	return e.dataset, true
}

// IndexInfo is one row of GET /v1/indexes: the serving-relevant shape of
// a registered entry.
type IndexInfo struct {
	Name       string `json:"name"`
	Segments   int    `json:"segments,omitempty"`
	NumItems   int    `json:"num_items,omitempty"`
	NumTx      int    `json:"num_tx,omitempty"`
	SizeBytes  int    `json:"size_bytes,omitempty"`
	Version    uint64 `json:"version"`
	Swaps      int64  `json:"swaps"`
	HasDataset bool   `json:"has_dataset"`
	HasIndex   bool   `json:"has_index"`

	// Sharded-serving topology, present only when the server runs a
	// scatter-gather fleet for this entry (Config.Shards > 1). Unsharded
	// servers keep the original response shape: every field below is
	// omitted from the JSON.
	ShardCount      int          `json:"shard_count,omitempty"`
	FleetGeneration uint64       `json:"fleet_generation,omitempty"`
	HedgesFired     int64        `json:"hedges_fired,omitempty"`
	HedgesWon       int64        `json:"hedges_won,omitempty"`
	Shards          []shard.Info `json:"shards,omitempty"`
}

// Info lists every entry sorted by name.
func (r *Registry) Info() []IndexInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]IndexInfo, 0, len(r.entries))
	for name, e := range r.entries {
		info := IndexInfo{
			Name:       name,
			Version:    e.version,
			Swaps:      e.swaps,
			HasDataset: e.dataset != nil,
			HasIndex:   e.index != nil,
		}
		if e.index != nil {
			info.Segments = e.index.NumSegments()
			info.NumItems = e.index.NumItems()
			info.NumTx = e.index.NumTx()
			info.SizeBytes = e.index.SizeBytes()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
