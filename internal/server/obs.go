package server

// The serving-side observability wiring: one obsState per Server holds
// the tracer (span ring behind GET /v1/traces), the Prometheus metrics
// registry (text exposition behind GET /metrics), and the structured
// access logger. The middleware in this file is the single entry point
// every request passes through — it mints the request ID, opens the root
// span, and emits the access-log line — so handlers only add the child
// spans of their own phases (admission, cache probe, ubsup scan,
// per-pass counting).

import (
	"context"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ossm-mining/ossm/internal/obs"
	"github.com/ossm-mining/ossm/internal/shard/remote"
)

// obsState bundles the server's observability instruments.
type obsState struct {
	tracer  *obs.Tracer
	metrics *obs.Registry
	logger  *slog.Logger

	httpRequests *obs.CounterVec   // ossm_http_requests_total{route,status}
	httpLatency  *obs.HistogramVec // ossm_http_request_duration_seconds{route}
	mineRuns     *obs.CounterVec   // ossm_mine_runs_total{miner}
	minePasses   *obs.CounterVec   // ossm_mine_passes_total{miner}
	mineCand     *obs.CounterVec   // ossm_mine_candidates_total{stage}
	mineKernel   *obs.CounterVec   // ossm_mine_kernel_total{outcome,lane}
	mineWaiting  atomic.Int64      // requests parked on the admission semaphore

	ingests    *obs.CounterVec // ossm_ingest_total{outcome}
	snapshots  *obs.CounterVec // ossm_snapshot_total{outcome}
	compaction *obs.Histogram  // ossm_compaction_seconds

	shardRequests *obs.CounterVec // ossm_shard_requests_total{shard,outcome}
	shardHedges   *obs.CounterVec // ossm_shard_hedges_total{event}

	// Remote-transport families, fed by remote.Hooks (RemoteHooks).
	shardRPC     *obs.CounterVec // ossm_shard_rpc_total{shard,method,outcome}
	shardRetries *obs.CounterVec // ossm_shard_rpc_retries_total{shard,method}
	shardBreaker *obs.GaugeVec   // ossm_shard_breaker_state{shard}
}

// initObs builds the server's instruments and registers every scrape
// family: HTTP latency and counts by route/status, bound-cache
// effectiveness, admission-queue depth, per-miner run/pass counts,
// cumulative candidate accounting, and the Go runtime block.
func (s *Server) initObs() {
	o := &s.obs
	o.tracer = obs.NewTracer(s.cfg.TraceBuffer)
	o.logger = s.cfg.Logger
	if o.logger == nil {
		o.logger = obs.NopLogger()
	}
	r := obs.NewRegistry()
	o.metrics = r

	o.httpRequests = r.CounterVec("ossm_http_requests_total",
		"HTTP requests served, by route and status code.", "route", "status")
	o.httpLatency = r.HistogramVec("ossm_http_request_duration_seconds",
		"HTTP request latency in seconds, by route.", obs.DefBuckets, "route")
	o.mineRuns = r.CounterVec("ossm_mine_runs_total",
		"Completed mining runs, by miner.", "miner")
	o.minePasses = r.CounterVec("ossm_mine_passes_total",
		"Counting passes executed by completed mining runs, by miner.", "miner")
	o.mineCand = r.CounterVec("ossm_mine_candidates_total",
		"Cumulative candidate accounting of completed mining runs, by stage (generated, pruned, counted).", "stage")
	o.mineKernel = r.CounterVec("ossm_mine_kernel_total",
		"Bound-kernel decisions of completed mining runs, by outcome (early_exit, abandoned, full) and dispatch lane (small, flat32, flat16, scalar).", "outcome", "lane")
	o.ingests = r.CounterVec("ossm_ingest_total",
		"Durable ingest requests, by outcome (ok, invalid, error).", "outcome")
	o.snapshots = r.CounterVec("ossm_snapshot_total",
		"WAL snapshot attempts, by outcome (ok, error).", "outcome")
	o.compaction = r.Histogram("ossm_compaction_seconds",
		"Wall-clock seconds per ingest compaction (re-segmentation before promotion).", obs.DefBuckets)
	r.GaugeFunc("ossm_wal_bytes", "Bytes in the active WAL file awaiting the next snapshot.",
		func() float64 {
			if ing := s.ingest.Load(); ing != nil {
				return float64(ing.store.WALBytes())
			}
			return 0
		})
	r.GaugeFunc("ossm_ingest_seq", "Sequence number of the last durably acknowledged ingest record.",
		func() float64 {
			if ing := s.ingest.Load(); ing != nil {
				return float64(ing.store.Seq())
			}
			return 0
		})
	r.GaugeFunc("ossm_wal_replay_lag_records", "Records in the active WAL beyond the last snapshot — the replay debt the next crash recovery would pay.",
		func() float64 {
			if ing := s.ingest.Load(); ing != nil {
				n, _ := ing.store.SinceSnapshot()
				return float64(n)
			}
			return 0
		})
	r.GaugeFunc("ossm_wal_last_snapshot_age_seconds", "Seconds since the last successful WAL snapshot committed (0 before the first).",
		func() float64 {
			if ing := s.ingest.Load(); ing != nil {
				if _, at := ing.store.SinceSnapshot(); !at.IsZero() {
					return time.Since(at).Seconds()
				}
			}
			return 0
		})
	r.GaugeFunc("ossm_compaction_backlog_records", "Ingested records acknowledged but not yet promoted into the serving index.",
		func() float64 {
			if ing := s.ingest.Load(); ing != nil {
				return float64(ing.Backlog())
			}
			return 0
		})
	o.shardRequests = r.CounterVec("ossm_shard_requests_total",
		"Scatter-gather shard calls, by shard id and outcome (ok, error, overloaded).", "shard", "outcome")
	o.shardHedges = r.CounterVec("ossm_shard_hedges_total",
		"Hedged duplicate shard calls, by event (fired, won).", "event")
	o.shardRPC = r.CounterVec("ossm_shard_rpc_total",
		"Remote shard RPCs, by shard id, method (info, bounds, frequent, supports) and outcome (ok, error, overloaded, timeout, breaker_open).", "shard", "method", "outcome")
	o.shardRetries = r.CounterVec("ossm_shard_rpc_retries_total",
		"Remote shard RPC retry attempts, by shard id and method.", "shard", "method")
	o.shardBreaker = r.GaugeVec("ossm_shard_breaker_state",
		"Remote shard circuit-breaker state, by shard id (0 closed, 1 half-open, 2 open).", "shard")

	r.CounterFunc("ossm_cache_hits_total", "Bound-cache hits.",
		func() float64 { return float64(s.cache.hits.Load()) })
	r.CounterFunc("ossm_cache_misses_total", "Bound-cache misses.",
		func() float64 { return float64(s.cache.misses.Load()) })
	r.CounterFunc("ossm_cache_evictions_total", "Bound-cache LRU evictions.",
		func() float64 { return float64(s.cache.evictions.Load()) })
	r.GaugeFunc("ossm_cache_entries", "Bounds currently cached.",
		func() float64 { return float64(s.cache.len()) })
	r.CounterFunc("ossm_bound_queries_total", "Itemset bound queries answered.",
		func() float64 { return float64(s.queries.Load()) })
	r.GaugeFunc("ossm_mine_inflight", "Mining runs currently holding an admission slot.",
		func() float64 { return float64(len(s.mineSem)) })
	r.GaugeFunc("ossm_mine_waiting", "Requests waiting for a mining admission slot.",
		func() float64 { return float64(o.mineWaiting.Load()) })
	r.GaugeFunc("ossm_mine_slots", "Configured admission-slot capacity for mining runs.",
		func() float64 { return float64(s.cfg.MineConcurrency) })
	r.GaugeFunc("ossm_indexes", "Entries in the serving registry.",
		func() float64 { return float64(len(s.reg.Info())) })
	r.GaugeFunc("ossm_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	obs.RegisterRuntimeMetrics(r)
}

// RemoteHooks returns the observability hooks a remote shard client
// should carry so its RPC outcomes, retries and breaker transitions
// land in this server's scrape families.
func (s *Server) RemoteHooks() remote.Hooks {
	return remote.Hooks{
		OnRPC: func(shardID int, method, outcome string) {
			s.obs.shardRPC.With(strconv.Itoa(shardID), method, outcome).Inc()
		},
		OnRetry: func(shardID int, method string) {
			s.obs.shardRetries.With(strconv.Itoa(shardID), method).Inc()
		},
		OnBreaker: func(shardID int, state remote.BreakerState) {
			s.obs.shardBreaker.With(strconv.Itoa(shardID)).Set(float64(state))
		},
	}
}

// statusWriter captures the response status and body size for the access
// log and the latency metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// routeLabel maps a request path onto the bounded label set the metrics
// use — unknown paths collapse into "other" so scrape cardinality cannot
// be driven by clients.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/v1/indexes", "/v1/ubsup", "/v1/ingest", "/v1/mine", "/v1/metrics", "/metrics", "/v1/traces", "/v1/fleetz":
		return path
	}
	if strings.HasPrefix(path, "/debug/pprof/") {
		return "/debug/pprof"
	}
	return "other"
}

// middleware is the per-request observability envelope: request counting
// and body capping as before, plus the request ID (minted or taken from
// the client's X-Request-Id and echoed back), the root span, the
// route/status metrics and the structured access-log line.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.requests.Inc()
		route := routeLabel(r.URL.Path)

		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", reqID)

		ctx := obs.WithRequestID(r.Context(), reqID)
		ctx, span := s.obs.tracer.Start(ctx, r.Method+" "+route)
		span.SetAttr("request_id", reqID)
		if s.cfg.RequestTimeout > 0 {
			tctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
			ctx = tctx
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		span.SetAttr("status", status)
		span.End()
		s.obs.httpRequests.With(route, strconv.Itoa(status)).Inc()
		// The exemplar ties this bucket increment to the request's trace,
		// so a latency spike on the scrape links straight to an assembled
		// trace in /v1/traces.
		s.obs.httpLatency.With(route).ObserveExemplar(elapsed.Seconds(), span.TraceID())
		s.obs.logger.LogAttrs(ctx, slog.LevelInfo, "http_request",
			slog.String("request_id", reqID),
			slog.String("trace_id", span.TraceID()),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("duration", elapsed),
		)
	})
}

// mountPprof adds the net/http/pprof handlers under /debug/pprof/ —
// opt-in via Config.EnablePprof, since profiles expose internals no
// public endpoint should.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// TracesResponse is the GET /v1/traces report: the span trees currently
// held in the ring (stitched together with remote worker spans on a
// remote-fleet coordinator), oldest first, plus the ring's shape and the
// per-trace shard attribution.
type TracesResponse struct {
	Count    int              `json:"count"`
	Capacity int              `json:"capacity"`
	Spans    int              `json:"spans"`
	Dropped  int64            `json:"dropped"`
	Traces   []*obs.TraceNode `json:"traces"`
	// RemoteSpans counts worker spans fetched and merged into the trees;
	// RemoteErrors counts workers whose span fetch failed (their spans
	// are simply absent — assembly is best-effort).
	RemoteSpans  int `json:"remote_spans,omitempty"`
	RemoteErrors int `json:"remote_errors,omitempty"`
	// Attribution splits each traced scatter's wall clock per shard into
	// worker serve time vs network+queue time, from the RPC spans' attrs.
	Attribution []TraceAttribution `json:"attribution,omitempty"`
}

// TraceAttribution is one trace's per-shard latency split.
type TraceAttribution struct {
	TraceID string       `json:"trace_id"`
	Shards  []ShardSplit `json:"shards"`
}

// ShardSplit aggregates one shard's RPCs within a trace: serve is the
// wall clock the worker reported spending, net is the remainder of the
// RPC's wall clock — network transfer plus queueing on either side.
type ShardSplit struct {
	Shard   int   `json:"shard"`
	RPCs    int   `json:"rpcs"`
	ServeNs int64 `json:"serve_ns"`
	NetNs   int64 `json:"net_ns"`
}

// handleTraces serves the trace ring as JSON span trees. ?min_ms=N keeps
// only traces whose root lasted at least N milliseconds — the slow-query
// view. On a remote-fleet coordinator it also fetches every worker's
// span ring and stitches the remote spans into the same trees (their
// trace and parent IDs were propagated on the RPCs); ?remote=0 skips
// the fetch and serves the local ring alone.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	var minRoot time.Duration
	if q := r.URL.Query().Get("min_ms"); q != "" {
		ms, err := strconv.ParseFloat(q, 64)
		if err != nil || ms < 0 {
			s.writeErr(w, http.StatusBadRequest, "bad min_ms %q", q)
			return
		}
		minRoot = time.Duration(ms * float64(time.Millisecond))
	}
	spans := s.obs.tracer.Snapshot()
	var remoteSpans, remoteErrs int
	if r.URL.Query().Get("remote") != "0" {
		fetched, errs := s.fetchRemoteSpans(r.Context())
		remoteSpans, remoteErrs = len(fetched), errs
		spans = append(spans, fetched...)
	}
	traces := obs.BuildTraces(spans, minRoot)
	capn, held, _, dropped := s.obs.tracer.Stats()
	s.writeJSON(w, http.StatusOK, TracesResponse{
		Count:        len(traces),
		Capacity:     capn,
		Spans:        held,
		Dropped:      dropped,
		Traces:       traces,
		RemoteSpans:  remoteSpans,
		RemoteErrors: remoteErrs,
		Attribution:  buildAttribution(spans),
	})
}

// spanFetcher is the slice of remote.Client the trace assembler needs;
// an interface so the server package stays decoupled from the transport
// construction.
type spanFetcher interface {
	ID() int
	FetchSpans(ctx context.Context) ([]obs.SpanRecord, error)
}

// fetchRemoteSpans gathers span rings from every remote transport
// currently installed in a fleet, deduplicated by span ID (one worker
// process serving shards of several indexes is fetched once per client
// but merged once). Fetches run concurrently under a short deadline;
// a worker that cannot answer contributes nothing but an error count.
func (s *Server) fetchRemoteSpans(ctx context.Context) ([]obs.SpanRecord, int) {
	var fetchers []spanFetcher
	s.fleetsMu.Lock()
	for _, fe := range s.fleets {
		fe.mu.Lock()
		for _, t := range fe.transports {
			if f, ok := t.(spanFetcher); ok {
				fetchers = append(fetchers, f)
			}
		}
		fe.mu.Unlock()
	}
	s.fleetsMu.Unlock()
	if len(fetchers) == 0 {
		return nil, 0
	}
	fctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	results := make([][]obs.SpanRecord, len(fetchers))
	errs := make([]error, len(fetchers))
	var wg sync.WaitGroup
	for i, f := range fetchers {
		wg.Add(1)
		go func(i int, f spanFetcher) {
			defer wg.Done()
			results[i], errs[i] = f.FetchSpans(fctx)
		}(i, f)
	}
	wg.Wait()
	seen := make(map[string]bool)
	var out []obs.SpanRecord
	nErrs := 0
	for i := range results {
		if errs[i] != nil {
			nErrs++
			continue
		}
		for _, rec := range results[i] {
			if rec.SpanID == "" || seen[rec.SpanID] {
				continue
			}
			seen[rec.SpanID] = true
			out = append(out, rec)
		}
	}
	return out, nErrs
}

// buildAttribution folds the RPC spans in a merged span set into
// per-trace, per-shard serve/net splits.
func buildAttribution(spans []obs.SpanRecord) []TraceAttribution {
	type key struct {
		trace string
		shard int
	}
	splits := make(map[key]*ShardSplit)
	for i := range spans {
		rec := &spans[i]
		if !strings.HasPrefix(rec.Name, "rpc-") {
			continue
		}
		shard, ok := attrInt(rec.Attrs, "shard")
		if !ok {
			continue
		}
		k := key{rec.TraceID, int(shard)}
		sp := splits[k]
		if sp == nil {
			sp = &ShardSplit{Shard: int(shard)}
			splits[k] = sp
		}
		sp.RPCs++
		if v, ok := attrInt(rec.Attrs, "serve_ns"); ok {
			sp.ServeNs += v
		}
		if v, ok := attrInt(rec.Attrs, "net_ns"); ok {
			sp.NetNs += v
		}
	}
	byTrace := make(map[string][]ShardSplit)
	for k, sp := range splits {
		byTrace[k.trace] = append(byTrace[k.trace], *sp)
	}
	out := make([]TraceAttribution, 0, len(byTrace))
	for trace, shards := range byTrace {
		sort.Slice(shards, func(i, j int) bool { return shards[i].Shard < shards[j].Shard })
		out = append(out, TraceAttribution{TraceID: trace, Shards: shards})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TraceID < out[j].TraceID })
	return out
}

// attrInt reads a numeric span attribute, tolerating the int/int64
// in-process representations and the float64 a JSON round-trip yields.
func attrInt(attrs map[string]any, name string) (int64, bool) {
	switch v := attrs[name].(type) {
	case int:
		return int64(v), true
	case int64:
		return v, true
	case float64:
		return int64(v), true
	}
	return 0, false
}

// handleMetrics is the single content-negotiated metrics handler behind
// both GET /metrics and GET /v1/metrics: Prometheus text exposition for
// scrapers, the JSON snapshot for the pre-existing API consumers. An
// explicit ?format=json|prometheus wins, then the Accept header, then
// the path's own convention (/metrics scrapes, /v1/metrics is JSON).
// ?exemplars=1 appends OpenMetrics exemplar suffixes to the text
// exposition, linking latency buckets to trace IDs in the ring; the
// default output stays byte-compatible with plain Prometheus parsers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if metricsFormat(r) == "json" {
		s.writeJSON(w, http.StatusOK, s.MetricsSnapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.metrics.WriteExposition(w, r.URL.Query().Get("exemplars") == "1")
}

func metricsFormat(r *http.Request) string {
	switch r.URL.Query().Get("format") {
	case "json":
		return "json"
	case "prometheus", "text":
		return "prometheus"
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return "json"
	}
	if strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics") {
		return "prometheus"
	}
	if r.URL.Path == "/v1/metrics" {
		return "json"
	}
	return "prometheus"
}
