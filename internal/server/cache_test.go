package server

import (
	"fmt"
	"math/rand"
	"testing"

	ossm "github.com/ossm-mining/ossm"
)

func TestBoundCacheLRU(t *testing.T) {
	k := func(s string) []byte { return []byte(s) }
	c := newBoundCache(2)
	c.put(k("a"), 1)
	c.put(k("b"), 2)
	if b, ok := c.get(k("a")); !ok || b != 1 {
		t.Fatalf("get a = %d, %v", b, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	c.put(k("c"), 3)
	if _, ok := c.get(k("b")); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get(k("a")); !ok {
		t.Fatal("a was evicted despite being most recently used")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Re-putting an existing key updates in place without growing.
	c.put(k("a"), 10)
	if b, _ := c.get(k("a")); b != 10 {
		t.Fatalf("updated a = %d, want 10", b)
	}
	st := c.stats()
	if st.Capacity != 2 || st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats did not count hits/misses: %+v", st)
	}
}

func TestBoundCacheDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := newBoundCache(capacity)
		c.put([]byte("a"), 1)
		if _, ok := c.get([]byte("a")); ok {
			t.Fatalf("capacity %d cached a value", capacity)
		}
		if c.len() != 0 {
			t.Fatalf("capacity %d holds %d entries", capacity, c.len())
		}
	}
}

func TestCacheKeyDistinguishesVersions(t *testing.T) {
	key := func(name string, v uint64, items ...ossm.Item) string {
		return string(appendCacheKey(nil, name, v, ossm.NewItemset(items...)))
	}
	if key("a", 1, 2, 3) == key("a", 2, 2, 3) {
		t.Fatal("versions collide")
	}
	if key("a", 1, 2, 3) == key("b", 1, 2, 3) {
		t.Fatal("index names collide")
	}
	// A name that embeds a trailing digit must not collide with another
	// (name, version) split; the NUL separators guarantee it.
	if key("a\x001", 1, 2) == key("a", 11, 2) {
		t.Fatal("separator ambiguity")
	}
	// Permutations and duplicates collapse onto one canonical key.
	if key("a", 1, 3, 2, 3) != key("a", 1, 2, 3) {
		t.Fatal("permuted itemsets do not share a key")
	}
}

// randomItemset draws 1–4 in-domain items (duplicates allowed — Bound
// must canonicalize them away).
func randomItemset(rng *rand.Rand, numItems int) []ossm.Item {
	n := 1 + rng.Intn(4)
	items := make([]ossm.Item, n)
	for i := range items {
		items[i] = ossm.Item(rng.Intn(numItems))
	}
	return items
}

// TestCachedBoundMatchesFresh is the cache-correctness property: for
// random datasets and random query streams, a bound served through the
// cache always equals the bound computed fresh from the index.
func TestCachedBoundMatchesFresh(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			d, ix := fixture(t, 800, seed)
			// A small capacity forces evictions mid-stream, so the
			// property also covers re-computation after an evict.
			s := New(Config{CacheSize: 8})
			if err := s.AddIndex("p", ix); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 101))
			// Draw queries from a fixed pool larger than the cache, so
			// the stream both repeats itemsets (hits) and overflows the
			// capacity (evictions, re-computation).
			pool := make([][]ossm.Item, 48)
			for i := range pool {
				pool[i] = randomItemset(rng, d.NumItems())
			}
			for i := 0; i < 400; i++ {
				items := pool[rng.Intn(len(pool))]
				got, err := s.Bound("p", items, false)
				if err != nil {
					t.Fatalf("Bound(%v): %v", items, err)
				}
				want := ix.UpperBound(ossm.NewItemset(items...))
				if got.Bound != want {
					t.Fatalf("iteration %d: cached bound %d != fresh bound %d for %v (cached=%v)",
						i, got.Bound, want, items, got.Cached)
				}
			}
			st := s.cache.stats()
			if st.Hits == 0 || st.Evictions == 0 {
				t.Fatalf("query stream exercised no hits or no evictions: %+v", st)
			}
		})
	}
}

// TestSwapInvalidatesCache is the staleness property: after Swap
// replaces an index, every query answers from the new index even if the
// same itemset was cached against the old one.
func TestSwapInvalidatesCache(t *testing.T) {
	d, ix := fixture(t, 800, 4)
	s := New(Config{CacheSize: 1024})
	if err := s.AddIndex("p", ix); err != nil {
		t.Fatal(err)
	}

	// A second generation over a strict prefix of the data: bounds can
	// only shrink or stay, and most singletons differ.
	app, err := ossm.NewAppender(d.NumItems(), ossm.AppenderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumTx()/2; i++ {
		if err := app.Add(d.Tx(i)); err != nil {
			t.Fatal(err)
		}
	}
	next, err := ossm.SnapshotIndex(app)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	sets := make([][]ossm.Item, 64)
	for i := range sets {
		sets[i] = randomItemset(rng, d.NumItems())
	}
	// Warm the cache against generation 1.
	for _, items := range sets {
		if _, err := s.Bound("p", items, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Swap("p", next); err != nil {
		t.Fatal(err)
	}
	for _, items := range sets {
		got, err := s.Bound("p", items, false)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cached {
			t.Fatalf("first post-swap query for %v served from cache", items)
		}
		want := next.UpperBound(ossm.NewItemset(items...))
		if got.Bound != want {
			t.Fatalf("post-swap bound %d != new index's %d for %v", got.Bound, want, items)
		}
	}
}

// BenchmarkUbsupCached vs BenchmarkUbsupUncached is the acceptance
// benchmark: the cache-hit path must beat recomputing the bound on a
// 10k-transaction index.
func benchBounds(b *testing.B, noCache bool) {
	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(10000, 11))
	if err != nil {
		b.Fatal(err)
	}
	// 100 segments (the page ceiling for 10k transactions): a fresh
	// bound min-scans all of them, which is the work a hit skips.
	ix, err := ossm.Build(d, ossm.BuildOptions{Segments: 100, Algorithm: ossm.RandomGreedy, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{CacheSize: 4096})
	if err := s.AddIndex("retail", ix); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sets := make([][]ossm.Item, 256)
	for i := range sets {
		sets[i] = randomItemset(rng, d.NumItems())
	}
	// Warm the cache so the cached variant measures pure hits.
	for _, items := range sets {
		if _, err := s.Bound("retail", items, noCache); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Bound("retail", sets[i%len(sets)], noCache); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUbsupCached(b *testing.B)   { benchBounds(b, false) }
func BenchmarkUbsupUncached(b *testing.B) { benchBounds(b, true) }
