package server

// GET /v1/fleetz: the one-call fleet health summary an operator (or the
// loadgen's -fleetz poll mode) reads instead of correlating /v1/indexes,
// /metrics and breaker gauges by hand. It reports every fleet's shard
// roster with circuit-breaker state overlaid, the durable-ingest
// freshness ledger (sequence, promotion backlog, WAL replay debt,
// snapshot age), and the trace ring's shape.

import (
	"net/http"
	"time"

	"github.com/ossm-mining/ossm/internal/shard"
	"github.com/ossm-mining/ossm/internal/shard/remote"
)

// FleetzResponse is the GET /v1/fleetz report.
type FleetzResponse struct {
	// Status is "ok", or "degraded" when any shard is unhealthy or any
	// breaker is open — the single field a poller alerts on.
	Status   string        `json:"status"`
	UptimeNS time.Duration `json:"uptime_ns"`
	Fleets   []FleetzFleet `json:"fleets"`
	Ingest   *FleetzIngest `json:"ingest,omitempty"`
	Traces   FleetzTraces  `json:"traces"`
}

// FleetzFleet is one registry entry's scatter-gather fleet.
type FleetzFleet struct {
	Index       string        `json:"index"`
	Generation  uint64        `json:"generation"`
	HedgesFired int64         `json:"hedges_fired"`
	HedgesWon   int64         `json:"hedges_won"`
	Shards      []FleetzShard `json:"shards"`
}

// FleetzShard is one shard's health row: the transport's own Info plus
// the coordinator-side circuit breaker position for remote shards.
type FleetzShard struct {
	shard.Info
	Breaker string `json:"breaker,omitempty"`
}

// FleetzIngest is the durable-ingest freshness ledger.
type FleetzIngest struct {
	Dataset string `json:"dataset"`
	// Seq is the last durably acknowledged record; Promoted the sequence
	// the serving index reflects; Backlog their difference.
	Seq      uint64 `json:"seq"`
	Promoted uint64 `json:"promoted"`
	Backlog  uint64 `json:"backlog"`
	NumTx    int64  `json:"num_tx"`
	// WALBytes and ReplayLagRecords measure the active WAL tail a crash
	// recovery would replay; SnapshotAgeSeconds is the time since the
	// last snapshot committed (absent before the first).
	WALBytes           int64   `json:"wal_bytes"`
	ReplayLagRecords   int     `json:"replay_lag_records"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds,omitempty"`
}

// FleetzTraces is the span ring's shape.
type FleetzTraces struct {
	Capacity int   `json:"capacity"`
	Held     int   `json:"held"`
	Total    int64 `json:"total"`
	Dropped  int64 `json:"dropped"`
}

// breakerReporter is the slice of remote.Client the health summary
// needs from a transport.
type breakerReporter interface {
	ID() int
	BreakerState() remote.BreakerState
}

func (s *Server) handleFleetz(w http.ResponseWriter, r *http.Request) {
	resp := FleetzResponse{
		Status:   "ok",
		UptimeNS: time.Since(s.start),
	}
	capn, held, total, dropped := s.obs.tracer.Stats()
	resp.Traces = FleetzTraces{Capacity: capn, Held: held, Total: total, Dropped: dropped}

	type namedEntry struct {
		name string
		fe   *fleetEntry
	}
	var entries []namedEntry
	s.fleetsMu.Lock()
	for name, fe := range s.fleets {
		entries = append(entries, namedEntry{name, fe})
	}
	s.fleetsMu.Unlock()

	for _, e := range entries {
		e.fe.mu.Lock()
		fleet := e.fe.fleet
		breakers := make(map[int]string)
		for _, t := range e.fe.transports {
			if br, ok := t.(breakerReporter); ok {
				breakers[br.ID()] = br.BreakerState().String()
			}
		}
		e.fe.mu.Unlock()
		if fleet == nil {
			continue
		}
		st := fleet.Describe()
		ff := FleetzFleet{
			Index:       e.name,
			Generation:  st.Generation,
			HedgesFired: st.HedgesFired,
			HedgesWon:   st.HedgesWon,
			Shards:      make([]FleetzShard, 0, len(st.Shards)),
		}
		for _, info := range st.Shards {
			row := FleetzShard{Info: info, Breaker: breakers[info.ID]}
			if info.State != "healthy" || row.Breaker == remote.BreakerOpen.String() {
				resp.Status = "degraded"
			}
			ff.Shards = append(ff.Shards, row)
		}
		resp.Fleets = append(resp.Fleets, ff)
	}
	if resp.Fleets == nil {
		resp.Fleets = []FleetzFleet{}
	}

	if ing := s.ingest.Load(); ing != nil {
		lag, snapAt := ing.store.SinceSnapshot()
		fi := &FleetzIngest{
			Dataset:          ing.name,
			Seq:              ing.store.Seq(),
			Promoted:         ing.Promoted(),
			Backlog:          ing.Backlog(),
			NumTx:            ing.store.NumTx(),
			WALBytes:         ing.store.WALBytes(),
			ReplayLagRecords: lag,
		}
		if !snapAt.IsZero() {
			fi.SnapshotAgeSeconds = time.Since(snapAt).Seconds()
		}
		resp.Ingest = fi
	}
	s.writeJSON(w, http.StatusOK, resp)
}
