package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ossm-mining/ossm/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// syncBuffer is a goroutine-safe log sink: the middleware writes access
// lines from request goroutines while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// maskExposition replaces the values of timing- and runtime-dependent
// samples (latency histograms, uptime, the go_* block) with <V>, keeping
// every family, label set and deterministic counter intact — the golden
// file then pins the scrape's full shape without flaking on wall time.
func maskExposition(text string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			out = append(out, line)
			continue
		}
		series := line
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			series = line[:i]
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		if strings.HasPrefix(name, "go_") || name == "ossm_uptime_seconds" ||
			name == "ossm_wal_last_snapshot_age_seconds" ||
			strings.HasPrefix(name, "ossm_http_request_duration_seconds") ||
			strings.HasPrefix(name, "ossm_compaction_seconds") {
			line = series + " <V>"
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestPrometheusGolden pins the whole exposition of a warmed server —
// every family, HELP/TYPE header, label set and deterministic value —
// and lints it with the promtool-style checker.
func TestPrometheusGolden(t *testing.T) {
	s, ts, _, _ := newTestServer(t, Config{})
	// Deterministic traffic: two ubsup queries (second a cache hit), one
	// mining run, one 404. The mine threshold is low enough that the run
	// reaches multi-item passes, so the bound kernel's per-lane outcome
	// series appear in the exposition.
	postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", `{"index":"retail","itemset":[1,2]}`)
	postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", `{"index":"retail","itemset":[1,2]}`)
	postJSON(t, ts.Client(), ts.URL+"/v1/mine", `{"index":"retail","support":0.01}`)
	postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", `{"index":"nope","itemset":[1]}`)
	// Durable ingest traffic: two acknowledged appends (the second trips
	// the SnapshotEvery=2 snapshot, zeroing ossm_wal_bytes) plus one
	// rejected request. CompactEvery is set too high for the background
	// compactor to run, keeping the scrape deterministic.
	enableTestIngest(t, s, IngestConfig{CompactEvery: 1 << 20, CompactInterval: -1})
	postJSON(t, ts.Client(), ts.URL+"/v1/ingest", `{"tx":[1,2,3]}`)
	postJSON(t, ts.Client(), ts.URL+"/v1/ingest", `{"batch":[[0,2],[4]]}`)
	postJSON(t, ts.Client(), ts.URL+"/v1/ingest", `{}`)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The exposition must pass the HELP/TYPE/histogram lint verbatim.
	if errs := obs.Lint(bytes.NewReader(raw.Bytes())); len(errs) != 0 {
		t.Fatalf("exposition fails lint: %v", errs)
	}

	// And parse back: every family present as samples.
	samples, err := obs.ParseText(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples parsed from the exposition")
	}

	got := maskExposition(raw.String())
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/server -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestObservabilityEndToEnd is the acceptance path: one POST /v1/mine
// produces (1) a JSON access-log line carrying the request id and trace
// id, (2) a span tree at /v1/traces whose root covers the admission,
// mine-run and per-pass child spans, and (3) advancing Prometheus
// counters and histograms at /metrics.
func TestObservabilityEndToEnd(t *testing.T) {
	logBuf := &syncBuffer{}
	_, ts, _, _ := newTestServer(t, Config{Logger: obs.NewLogger(logBuf, 0)})

	before := scrape(t, ts.URL)

	resp, err := ts.Client().Post(ts.URL+"/v1/mine", "application/json",
		strings.NewReader(`{"index":"retail","support":0.1}`))
	if err != nil {
		t.Fatal(err)
	}
	var mine map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&mine); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine = %d %v", resp.StatusCode, mine)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("response missing X-Request-Id")
	}
	// The run's telemetry report carries the same id.
	if tel := mine["telemetry"].(map[string]any); tel["request_id"] != reqID {
		t.Errorf("telemetry request id = %v, want %q", tel["request_id"], reqID)
	}

	// (1) Access log: a JSON line for the mine route with the request id.
	var logged map[string]any
	for _, line := range strings.Split(logBuf.String(), "\n") {
		var rec map[string]any
		if json.Unmarshal([]byte(line), &rec) == nil && rec["route"] == "/v1/mine" {
			logged = rec
		}
	}
	if logged == nil {
		t.Fatalf("no /v1/mine access-log line in %q", logBuf.String())
	}
	if logged["request_id"] != reqID {
		t.Errorf("access-log request id = %v, want %q", logged["request_id"], reqID)
	}
	traceID, _ := logged["trace_id"].(string)
	if traceID == "" {
		t.Error("access-log line has no trace id")
	}
	if int(logged["status"].(float64)) != 200 || logged["duration"] == nil || logged["bytes"] == nil {
		t.Errorf("access-log line incomplete: %v", logged)
	}

	// (2) The span tree: root POST /v1/mine covering its children.
	code, traces := getJSON(t, ts.URL+"/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("traces = %d", code)
	}
	var root map[string]any
	for _, tr := range traces["traces"].([]any) {
		node := tr.(map[string]any)
		if node["trace_id"] == traceID {
			root = node
		}
	}
	if root == nil {
		t.Fatalf("trace %q not in ring (%d traces)", traceID, len(traces["traces"].([]any)))
	}
	if root["name"] != "POST /v1/mine" {
		t.Errorf("root span = %v", root["name"])
	}
	rootStart, rootEnd := spanWindow(t, root)
	want := map[string]bool{"admission": false, "mine-run": false, "pass-1": false}
	var walk func(node map[string]any)
	walk = func(node map[string]any) {
		name := node["name"].(string)
		if _, ok := want[name]; ok {
			want[name] = true
		}
		start, end := spanWindow(t, node)
		if start.Before(rootStart) || end.After(rootEnd) {
			t.Errorf("span %s [%v, %v] escapes root [%v, %v]", name, start, end, rootStart, rootEnd)
		}
		children, _ := node["children"].([]any)
		for _, c := range children {
			walk(c.(map[string]any))
		}
	}
	walk(root)
	for name, seen := range want {
		if !seen {
			t.Errorf("trace is missing the %q span", name)
		}
	}

	// A threshold far above the run's wall time filters the trace out.
	code, filtered := getJSON(t, ts.URL+"/v1/traces?min_ms=3600000")
	if code != http.StatusOK || int(filtered["count"].(float64)) != 0 {
		t.Errorf("min_ms filter kept %v", filtered["count"])
	}
	if code, _ := getJSON(t, ts.URL+"/v1/traces?min_ms=-1"); code != http.StatusBadRequest {
		t.Errorf("negative min_ms = %d, want 400", code)
	}

	// (3) Counters and histograms advanced.
	after := scrape(t, ts.URL)
	for _, series := range []string{
		`ossm_http_requests_total{route="/v1/mine",status="200"}`,
		`ossm_mine_runs_total{miner="apriori"}`,
		`ossm_mine_passes_total{miner="apriori"}`,
		`ossm_mine_candidates_total{stage="counted"}`,
	} {
		if after[series] <= before[series] {
			t.Errorf("%s did not advance: %v -> %v", series, before[series], after[series])
		}
	}
	histBefore := before[`ossm_http_request_duration_seconds_count{route="/v1/mine"}`]
	histAfter := after[`ossm_http_request_duration_seconds_count{route="/v1/mine"}`]
	if histAfter != histBefore+1 {
		t.Errorf("mine latency histogram count: %v -> %v, want +1", histBefore, histAfter)
	}
}

// scrape fetches /metrics and returns every sample keyed by its full
// series name (name plus rendered labels).
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		key := s.Name
		if len(s.Labels) > 0 {
			var parts []string
			for k, v := range s.Labels {
				parts = append(parts, fmt.Sprintf("%s=%q", k, v))
			}
			// Label order from the map is unstable; the exposition renders
			// them in registration order, so re-sort for a canonical key.
			sortStrings(parts)
			key += "{" + strings.Join(parts, ",") + "}"
		}
		out[key] = s.Value
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// spanWindow extracts a decoded span's [start, end] interval.
func spanWindow(t *testing.T, node map[string]any) (time.Time, time.Time) {
	t.Helper()
	start, err := time.Parse(time.RFC3339Nano, node["start"].(string))
	if err != nil {
		t.Fatal(err)
	}
	return start, start.Add(time.Duration(node["duration_ns"].(float64)))
}

// TestRouteLabelBounded pins the cardinality guard: unknown paths — and
// with them any client-chosen string — collapse into one label.
func TestRouteLabelBounded(t *testing.T) {
	cases := map[string]string{
		"/v1/mine":                     "/v1/mine",
		"/metrics":                     "/metrics",
		"/debug/pprof/profile":         "/debug/pprof",
		"/v1/unknown":                  "other",
		"/" + strings.Repeat("x", 200): "other",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestMetricsFormatNegotiation pins the precedence: explicit format
// param, then Accept header, then the path's own convention.
func TestMetricsFormatNegotiation(t *testing.T) {
	cases := []struct {
		path, accept, want string
	}{
		{"/metrics", "", "prometheus"},
		{"/v1/metrics", "", "json"},
		{"/metrics?format=json", "", "json"},
		{"/v1/metrics?format=prometheus", "", "prometheus"},
		{"/v1/metrics?format=text", "", "prometheus"},
		{"/metrics", "application/json", "json"},
		{"/v1/metrics", "text/plain", "prometheus"},
		{"/metrics?format=json", "text/plain", "json"}, // param beats Accept
	}
	for _, tc := range cases {
		r, _ := http.NewRequest("GET", tc.path, nil)
		if tc.accept != "" {
			r.Header.Set("Accept", tc.accept)
		}
		if got := metricsFormat(r); got != tc.want {
			t.Errorf("metricsFormat(%s, Accept=%q) = %q, want %q", tc.path, tc.accept, got, tc.want)
		}
	}
}

// TestTraceBufferDisabled pins that a negative TraceBuffer turns tracing
// off without disturbing the rest of the pipeline.
func TestTraceBufferDisabled(t *testing.T) {
	logBuf := &syncBuffer{}
	_, ts, _, _ := newTestServer(t, Config{TraceBuffer: -1, Logger: obs.NewLogger(logBuf, 0)})
	code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", `{"index":"retail","itemset":[1,2]}`)
	if code != http.StatusOK {
		t.Fatalf("ubsup = %d", code)
	}
	code, traces := getJSON(t, ts.URL+"/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("traces = %d", code)
	}
	if n := int(traces["count"].(float64)); n != 0 {
		t.Errorf("disabled tracer holds %d traces", n)
	}
	if !strings.Contains(logBuf.String(), `"route":"/v1/ubsup"`) {
		t.Error("access log missing with tracing disabled")
	}
}
