package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/dataset"
	"github.com/ossm-mining/ossm/internal/mining"
)

// fixture builds a deterministic dataset and an index over it.
func fixture(t testing.TB, numTx int, seed int64) (*ossm.Dataset, *ossm.Index) {
	t.Helper()
	d, err := ossm.GenerateSkewed(ossm.DefaultSkewed(numTx, seed))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ossm.Build(d, ossm.BuildOptions{Segments: 16, Algorithm: ossm.RandomGreedy, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d, ix
}

// newTestServer stands up a Server with one entry ("retail": dataset +
// index) behind httptest.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server, *ossm.Dataset, *ossm.Index) {
	t.Helper()
	d, ix := fixture(t, 2000, 7)
	s := New(cfg)
	if err := s.AddIndex("retail", ix); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDataset("retail", d); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, d, ix
}

// postJSON posts body to url and returns the status code and decoded
// response body.
func postJSON(t testing.TB, client *http.Client, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("status %d: non-JSON body %q: %v", resp.StatusCode, raw, err)
		}
	}
	return resp.StatusCode, out
}

func getJSON(t testing.TB, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("decoding body: %v", err)
	}
	return resp.StatusCode, out
}

func TestHealthz(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	code, body := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, body)
	}
	// Wrong method is rejected by the router.
	resp, err := http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", resp.StatusCode)
	}
}

func TestIndexesListing(t *testing.T) {
	s, ts, d, ix := newTestServer(t, Config{})
	code, body := getJSON(t, ts.URL+"/v1/indexes")
	if code != http.StatusOK {
		t.Fatalf("indexes = %d", code)
	}
	list := body["indexes"].([]any)
	if len(list) != 1 {
		t.Fatalf("listed %d entries, want 1", len(list))
	}
	row := list[0].(map[string]any)
	if row["name"] != "retail" || row["has_dataset"] != true || row["has_index"] != true {
		t.Errorf("row = %v", row)
	}
	if int(row["segments"].(float64)) != ix.NumSegments() {
		t.Errorf("segments = %v, want %d", row["segments"], ix.NumSegments())
	}
	if int(row["num_tx"].(float64)) != d.NumTx() {
		t.Errorf("num_tx = %v, want %d", row["num_tx"], d.NumTx())
	}
	if int(row["version"].(float64)) != 1 {
		t.Errorf("version = %v, want 1", row["version"])
	}
	// Swapping bumps the version and the swap counter.
	if err := s.Swap("retail", ix); err != nil {
		t.Fatal(err)
	}
	_, body = getJSON(t, ts.URL+"/v1/indexes")
	row = body["indexes"].([]any)[0].(map[string]any)
	if int(row["version"].(float64)) != 2 || int(row["swaps"].(float64)) != 1 {
		t.Errorf("after swap: %v", row)
	}
}

func TestUbsupSingleAndCached(t *testing.T) {
	_, ts, _, ix := newTestServer(t, Config{})
	// Deliberately unsorted with a duplicate: the server canonicalizes.
	body := `{"index":"retail","itemset":[5,2,5]}`
	want := ix.UpperBound(ossm.NewItemset(5, 2))

	code, out := postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", body)
	if code != http.StatusOK {
		t.Fatalf("ubsup = %d %v", code, out)
	}
	if got := int64(out["bound"].(float64)); got != want {
		t.Errorf("bound = %d, want %d", got, want)
	}
	bounds := out["bounds"].([]any)
	first := bounds[0].(map[string]any)
	if first["cached"] != false {
		t.Errorf("first query reported cached")
	}
	// Same set in a different order must hit the cache.
	code, out = postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", `{"index":"retail","itemset":[2,5]}`)
	if code != http.StatusOK {
		t.Fatalf("second ubsup = %d", code)
	}
	first = out["bounds"].([]any)[0].(map[string]any)
	if first["cached"] != true {
		t.Errorf("permuted repeat query missed the cache")
	}
	if got := int64(out["bound"].(float64)); got != want {
		t.Errorf("cached bound = %d, want %d", got, want)
	}
}

func TestUbsupBatch(t *testing.T) {
	_, ts, _, ix := newTestServer(t, Config{Workers: 4})
	sets := [][]ossm.Item{{1}, {2, 3}, {4, 5, 6}, {1, 2, 3, 4}}
	payload, _ := json.Marshal(map[string]any{"index": "retail", "itemsets": sets})
	code, out := postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", string(payload))
	if code != http.StatusOK {
		t.Fatalf("batch = %d %v", code, out)
	}
	bounds := out["bounds"].([]any)
	if len(bounds) != len(sets) {
		t.Fatalf("%d bounds for %d itemsets", len(bounds), len(sets))
	}
	for i, b := range bounds {
		row := b.(map[string]any)
		want := ix.UpperBound(ossm.NewItemset(sets[i]...))
		if got := int64(row["bound"].(float64)); got != want {
			t.Errorf("itemset %v: bound %d, want %d", sets[i], got, want)
		}
	}
	if out["bound"] != nil {
		t.Errorf("batch response carries a single bound: %v", out["bound"])
	}
	// Repeat: everything should come from the cache now.
	_, out = postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", string(payload))
	if hits := int(out["cache_hits"].(float64)); hits != len(sets) {
		t.Errorf("cache_hits = %d, want %d", hits, len(sets))
	}
}

func TestUbsupErrors(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{MaxBatch: 4})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed JSON", `{"index": retail}`, http.StatusBadRequest},
		{"unknown field", `{"index":"retail","itemset":[1],"bogus":1}`, http.StatusBadRequest},
		{"trailing data", `{"index":"retail","itemset":[1]} {"x":2}`, http.StatusBadRequest},
		{"neither field", `{"index":"retail"}`, http.StatusBadRequest},
		{"both fields", `{"index":"retail","itemset":[1],"itemsets":[[2]]}`, http.StatusBadRequest},
		{"empty itemset", `{"index":"retail","itemset":[]}`, http.StatusBadRequest},
		{"out of domain", `{"index":"retail","itemset":[999999]}`, http.StatusBadRequest},
		{"unknown index", `{"index":"nope","itemset":[1]}`, http.StatusNotFound},
		{"batch too large", `{"index":"retail","itemsets":[[1],[2],[3],[4],[5]]}`, http.StatusBadRequest},
		{"batch with empty member", `{"index":"retail","itemsets":[[1],[]]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", tc.body)
			if code != tc.code {
				t.Fatalf("status = %d, want %d (%v)", code, tc.code, out)
			}
			if out["error"] == "" {
				t.Errorf("error body missing: %v", out)
			}
		})
	}
}

func TestMine(t *testing.T) {
	_, ts, d, ix := newTestServer(t, Config{})
	// Reference run through the library.
	minCount := ossm.MinCountFor(d, 0.02)
	ref, err := ossm.MineAt("apriori", d, minCount, ossm.MineOptions{Filter: ix.PrunerAt(minCount)})
	if err != nil {
		t.Fatal(err)
	}

	code, out := postJSON(t, ts.Client(), ts.URL+"/v1/mine",
		`{"index":"retail","miner":"apriori","support":0.02,"top":5}`)
	if code != http.StatusOK {
		t.Fatalf("mine = %d %v", code, out)
	}
	if got := int(out["num_frequent"].(float64)); got != ref.NumFrequent() {
		t.Errorf("num_frequent = %d, want %d", got, ref.NumFrequent())
	}
	if out["pruned"] != true {
		t.Errorf("pruned = %v, want true (entry has an index)", out["pruned"])
	}
	if out["telemetry"] == nil {
		t.Error("telemetry report missing from mine response")
	}
	if int64(out["min_count"].(float64)) != minCount {
		t.Errorf("min_count = %v, want %d", out["min_count"], minCount)
	}
	levels := out["levels"].([]any)
	if len(levels) != len(ref.Levels) {
		t.Errorf("%d levels, want %d", len(levels), len(ref.Levels))
	}
	top := out["top"].([]any)
	if len(top) == 0 || len(top) > 5 {
		t.Fatalf("top has %d entries", len(top))
	}
	// Top is sorted by descending support.
	prev := int64(1 << 62)
	for _, e := range top {
		sup := int64(e.(map[string]any)["support"].(float64))
		if sup > prev {
			t.Errorf("top not sorted: %d after %d", sup, prev)
		}
		prev = sup
	}

	// An unpruned run mines the same sets.
	code, out2 := postJSON(t, ts.Client(), ts.URL+"/v1/mine",
		`{"index":"retail","miner":"eclat","support":0.02,"use_ossm":false,"top":-1}`)
	if code != http.StatusOK {
		t.Fatalf("unpruned mine = %d %v", code, out2)
	}
	if out2["pruned"] != false {
		t.Errorf("pruned = %v, want false", out2["pruned"])
	}
	if got := int(out2["num_frequent"].(float64)); got != ref.NumFrequent() {
		t.Errorf("eclat num_frequent = %d, want %d", got, ref.NumFrequent())
	}
	if _, ok := out2["top"]; ok {
		t.Error("top echoed despite top:-1")
	}
}

func TestMineErrors(t *testing.T) {
	s, ts, _, _ := newTestServer(t, Config{})
	// An entry with an index but no dataset cannot mine.
	_, ixOnly := fixture(t, 300, 11)
	if err := s.AddIndex("indexonly", ixOnly); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed JSON", `{`, http.StatusBadRequest},
		{"unknown miner", `{"index":"retail","miner":"banana","support":0.1}`, http.StatusBadRequest},
		{"unknown index", `{"index":"nope","support":0.1}`, http.StatusNotFound},
		{"no dataset", `{"index":"indexonly","support":0.1}`, http.StatusBadRequest},
		{"no threshold", `{"index":"retail"}`, http.StatusBadRequest},
		{"two thresholds", `{"index":"retail","support":0.1,"min_count":5}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := postJSON(t, ts.Client(), ts.URL+"/v1/mine", tc.body)
			if code != tc.code {
				t.Fatalf("status = %d, want %d (%v)", code, tc.code, out)
			}
		})
	}
}

// sleepyName is a test-only miner that stalls long enough for a request
// deadline to fire deterministically mid-run.
const sleepyName = "sleepy-test-miner"

func init() {
	mining.Register(sleepyName, func(_ *dataset.Dataset, minCount int64, _ mining.Options) (*mining.Result, error) {
		time.Sleep(300 * time.Millisecond)
		return &mining.Result{MinCount: minCount}, nil
	})
}

func TestRequestTimeout(t *testing.T) {
	// A 1 ns deadline is already expired when the handler runs: both
	// endpoints answer 504 without doing work.
	_, ts, _, _ := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	code, out := postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", `{"index":"retail","itemset":[1]}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("ubsup under expired deadline = %d %v", code, out)
	}
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/mine", `{"index":"retail","support":0.1}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("mine under expired deadline = %d", code)
	}
}

func TestMineDeadlineMidRun(t *testing.T) {
	// The sleepy miner stalls 300 ms; a 50 ms deadline fires mid-run and
	// the handler answers 504 while the run finishes in the background.
	_, ts, _, _ := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	code, out := postJSON(t, ts.Client(), ts.URL+"/v1/mine",
		fmt.Sprintf(`{"index":"retail","miner":%q,"support":0.1}`, sleepyName))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("mid-run deadline = %d %v", code, out)
	}
	if !strings.Contains(out["error"].(string), "deadline") {
		t.Errorf("error = %v", out["error"])
	}
}

func TestMaxBodyBytes(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{MaxBodyBytes: 64})
	big := `{"index":"retail","itemset":[` + strings.Repeat("1,", 200) + `1]}`
	code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", big)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized body = %d, want 400", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	// Generate traffic: two queries (second cached), one mine, one error.
	postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", `{"index":"retail","itemset":[1,2]}`)
	postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", `{"index":"retail","itemset":[1,2]}`)
	postJSON(t, ts.Client(), ts.URL+"/v1/mine", `{"index":"retail","support":0.1}`)
	postJSON(t, ts.Client(), ts.URL+"/v1/ubsup", `{"index":"nope","itemset":[1]}`)

	// Both paths serve the JSON snapshot on request: /v1/metrics by its
	// path convention, /metrics via the explicit format override.
	for _, path := range []string{"/v1/metrics", "/metrics?format=json"} {
		code, m := getJSON(t, ts.URL+path)
		if code != http.StatusOK {
			t.Fatalf("%s = %d", path, code)
		}
		if n := int(m["requests"].(float64)); n < 4 {
			t.Errorf("requests = %d, want >= 4", n)
		}
		if n := int(m["bound_queries"].(float64)); n != 2 {
			t.Errorf("bound_queries = %d, want 2", n)
		}
		if n := int(m["mine_runs"].(float64)); n != 1 {
			t.Errorf("mine_runs = %d, want 1", n)
		}
		if n := int(m["errors"].(float64)); n != 1 {
			t.Errorf("errors = %d, want 1", n)
		}
		cache := m["cache"].(map[string]any)
		if hits := int(cache["hits"].(float64)); hits != 1 {
			t.Errorf("cache hits = %d, want 1", hits)
		}
		if m["mine_generated"] == nil || int(m["mine_generated"].(float64)) <= 0 {
			t.Errorf("mine_generated missing or zero: %v", m["mine_generated"])
		}
		if len(m["indexes"].([]any)) != 1 {
			t.Errorf("indexes = %v", m["indexes"])
		}
	}

	// The scrape path defaults to Prometheus text exposition, and the
	// traffic above must be visible in it.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("scrape content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE ossm_http_requests_total counter",
		"ossm_bound_queries_total 2",
		`ossm_mine_runs_total{miner="apriori"} 1`,
		"ossm_cache_hits_total 1",
		"# TYPE ossm_http_request_duration_seconds histogram",
		"go_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// An Accept header negotiates JSON from the scrape path too.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("negotiated content type = %q", ct)
	}
}

func TestRegistryContracts(t *testing.T) {
	d, ix := fixture(t, 300, 5)
	r := NewRegistry()
	if err := r.AddIndex("", nil); err == nil {
		t.Error("AddIndex accepted empty name / nil index")
	}
	if err := r.AddIndex("a", ix); err != nil {
		t.Fatal(err)
	}
	if err := r.AddIndex("a", ix); err == nil {
		t.Error("duplicate AddIndex accepted")
	}
	if err := r.Swap("missing", ix); err == nil {
		t.Error("Swap of unknown index accepted")
	}
	if err := r.Swap("a", nil); err == nil {
		t.Error("Swap with nil index accepted")
	}
	if err := r.AddDataset("a", d); err != nil {
		t.Fatal(err)
	}
	if err := r.AddDataset("a", d); err == nil {
		t.Error("duplicate AddDataset accepted")
	}
	// Dataset-first entries accept a late index at a bumped version.
	if err := r.AddDataset("b", d); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := r.Lookup("b"); ok {
		t.Error("dataset-only entry serves an index")
	}
	if err := r.AddIndex("b", ix); err != nil {
		t.Fatal(err)
	}
	if _, v, ok := r.Lookup("b"); !ok || v != 1 {
		t.Errorf("late index: ok=%v version=%d", ok, v)
	}
}

// TestConcurrentQueriesAndSwaps is the serving soak: 32+ goroutines mix
// HTTP bound queries, batch queries, mining runs and streaming snapshot
// swaps. Run under -race (make test does) it is the data-race gate for
// the whole serving path; every bound answered must match one of the
// index generations ever registered.
func TestConcurrentQueriesAndSwaps(t *testing.T) {
	s, ts, d, ix := newTestServer(t, Config{Workers: 4, CacheSize: 64})

	// Build the swap generations: streaming appender snapshots over
	// growing prefixes of a second dataset.
	app, err := ossm.NewAppender(d.NumItems(), ossm.AppenderOptions{PageSize: 50, MaxSegments: 8})
	if err != nil {
		t.Fatal(err)
	}
	generations := []*ossm.Index{ix}
	for g := 0; g < 3; g++ {
		for i := 0; i < d.NumTx(); i += 3 {
			if err := app.Add(d.Tx(i)); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := ossm.SnapshotIndex(app)
		if err != nil {
			t.Fatal(err)
		}
		generations = append(generations, snap)
	}

	// Acceptable bounds per probe itemset: one per generation.
	probes := make([]ossm.Itemset, 24)
	rng := rand.New(rand.NewSource(42))
	for i := range probes {
		n := 1 + rng.Intn(3)
		items := make([]ossm.Item, n)
		for j := range items {
			items[j] = ossm.Item(rng.Intn(d.NumItems()))
		}
		probes[i] = ossm.NewItemset(items...)
	}
	valid := make([]map[int64]bool, len(probes))
	for i, p := range probes {
		valid[i] = make(map[int64]bool, len(generations))
		for _, g := range generations {
			valid[i][g.UpperBound(p)] = true
		}
	}

	const clients = 40
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for iter := 0; iter < 30; iter++ {
				switch {
				case c%8 == 0: // swap clients
					if err := s.Swap("retail", generations[rng.Intn(len(generations))]); err != nil {
						errc <- err
						return
					}
				case c%8 == 1 && iter%10 == 0: // occasional miner
					code, out := postJSONQuiet(ts.Client(), ts.URL+"/v1/mine", `{"index":"retail","support":0.2,"top":-1}`)
					if code != http.StatusOK {
						errc <- fmt.Errorf("mine: status %d: %v", code, out)
						return
					}
				default: // query clients
					pi := rng.Intn(len(probes))
					payload, _ := json.Marshal(map[string]any{"index": "retail", "itemset": probes[pi]})
					code, out := postJSONQuiet(ts.Client(), ts.URL+"/v1/ubsup", string(payload))
					if code != http.StatusOK {
						errc <- fmt.Errorf("ubsup: status %d: %v", code, out)
						return
					}
					got := int64(out["bound"].(float64))
					if !valid[pi][got] {
						errc <- fmt.Errorf("itemset %v: bound %d matches no generation %v", probes[pi], got, valid[pi])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// postJSONQuiet is postJSON without the testing.TB plumbing (safe inside
// goroutines).
func postJSONQuiet(client *http.Client, url, body string) (int, map[string]any) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, map[string]any{"transport": err.Error()}
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out map[string]any
	_ = json.Unmarshal(raw, &out)
	return resp.StatusCode, out
}

func TestServeGracefulShutdown(t *testing.T) {
	_, ix := fixture(t, 300, 3)
	s := New(Config{})
	if err := s.AddIndex("a", ix); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}
