package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	ossm "github.com/ossm-mining/ossm"
	"github.com/ossm-mining/ossm/internal/obs"
	"github.com/ossm-mining/ossm/internal/shard"
	"github.com/ossm-mining/ossm/internal/shard/remote"
)

// startWorkerFleet serves n slices of (ix, d) from n httptest workers —
// stand-ins for separate ossm-serve -shard-role=worker processes — and
// returns their base URLs.
func startWorkerFleet(t *testing.T, name string, ix *ossm.Index, d *ossm.Dataset, n int) ([]string, []*httptest.Server) {
	t.Helper()
	locals, err := shard.NewLocalShards(ix, d, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i, tr := range shard.Transports(locals) {
		w := remote.NewWorker()
		if err := w.Add(name, tr, ix.NumSegments()); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
		servers[i] = srv
	}
	return urls, servers
}

// remoteCoordinator stands up a coordinator Server whose fleet is built
// from a mutable address list, so tests can retarget it and ReloadFleets.
type remoteCoordinator struct {
	s   *Server
	url string
	mu  sync.Mutex
	// addrs is read by the fleet factory on every (re)build.
	addrs []string
}

func (rc *remoteCoordinator) setAddrs(addrs []string) {
	rc.mu.Lock()
	rc.addrs = append([]string(nil), addrs...)
	rc.mu.Unlock()
}

func newRemoteCoordinator(t *testing.T, d *ossm.Dataset, ix *ossm.Index, addrs []string) *remoteCoordinator {
	t.Helper()
	s := New(Config{HedgeAfter: -1})
	if err := s.AddIndex("retail", ix); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDataset("retail", d); err != nil {
		t.Fatal(err)
	}
	rc := &remoteCoordinator{s: s}
	rc.setAddrs(addrs)
	hooks := s.RemoteHooks()
	s.UseRemoteFleet(func(name string) ([]shard.Transport, error) {
		rc.mu.Lock()
		cur := append([]string(nil), rc.addrs...)
		rc.mu.Unlock()
		out := make([]shard.Transport, len(cur))
		for i, addr := range cur {
			c, err := remote.NewClient(i, addr, name, remote.ClientConfig{Hooks: hooks, Tracer: s.Tracer()})
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	})
	rc.url = newHTTPServer(t, s)
	return rc
}

// TestRemoteFleetUbsupBitIdentical is the acceptance check: a
// coordinator over a 4-shard remote loopback fleet answers a batch
// /v1/ubsup bit-identically to the unsharded library call.
func TestRemoteFleetUbsupBitIdentical(t *testing.T) {
	d, ix := fixture(t, 1500, 13)
	urls, _ := startWorkerFleet(t, "retail", ix, d, 4)
	rc := newRemoteCoordinator(t, d, ix, urls)

	sets := []ossm.Itemset{
		ossm.NewItemset(0),
		ossm.NewItemset(1, 2),
		ossm.NewItemset(3, 4, 5),
		ossm.NewItemset(0, 2, 4, 6),
		ossm.NewItemset(7),
		ossm.NewItemset(1, 3, 5, 7, 9),
	}
	want := make([]int64, len(sets))
	ix.UpperBoundBatch(sets, want)

	body := `{"index":"retail","itemsets":[[0],[1,2],[3,4,5],[0,2,4,6],[7],[1,3,5,7,9]],"no_cache":true}`
	code, got := postJSON(t, http.DefaultClient, rc.url+"/v1/ubsup", body)
	if code != http.StatusOK {
		t.Fatalf("remote ubsup = %d: %v", code, got)
	}
	bounds := got["bounds"].([]any)
	if len(bounds) != len(want) {
		t.Fatalf("%d bounds, want %d", len(bounds), len(want))
	}
	for i := range bounds {
		if b := int64(bounds[i].(map[string]any)["bound"].(float64)); b != want[i] {
			t.Fatalf("bound[%d] = %d, unsharded library says %d", i, b, want[i])
		}
	}

	// The RPCs just made must be visible on /metrics, and the exposition
	// must still lint and parse back.
	resp, err := http.Get(rc.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := raw.String()
	if !strings.Contains(text, `ossm_shard_rpc_total{shard="0",method="bounds",outcome="ok"}`) {
		t.Fatalf("/metrics missing shard RPC series:\n%s", text)
	}
	if errs := obs.Lint(bytes.NewReader(raw.Bytes())); len(errs) != 0 {
		t.Fatalf("exposition fails lint: %v", errs)
	}
	if samples, err := obs.ParseText(bytes.NewReader(raw.Bytes())); err != nil || len(samples) == 0 {
		t.Fatalf("exposition does not parse back: %d samples, err %v", len(samples), err)
	}
}

// TestRemoteFleetDeadWorkerAndReload kills a worker (503 to callers),
// then points the registry at a replacement and reloads: service must
// come back without restarting the coordinator.
func TestRemoteFleetDeadWorkerAndReload(t *testing.T) {
	d, ix := fixture(t, 1200, 17)
	urls, servers := startWorkerFleet(t, "retail", ix, d, 2)
	rc := newRemoteCoordinator(t, d, ix, urls)

	query := func(tag string) (int, map[string]any) {
		body := fmt.Sprintf(`{"index":"retail","itemsets":[[0],[1,2],[%s]],"no_cache":true}`, tag)
		return postJSON(t, http.DefaultClient, rc.url+"/v1/ubsup", body)
	}
	if code, got := query("3"); code != http.StatusOK {
		t.Fatalf("healthy fleet = %d: %v", code, got)
	}

	// Kill worker 1: the shard is unreachable, so the scatter fails and
	// the coordinator reports unavailability, not a wrong answer.
	servers[1].Close()
	if code, got := query("4"); code != http.StatusServiceUnavailable {
		t.Fatalf("dead worker = %d: %v, want 503", code, got)
	}

	// Stand up a replacement worker for the same slice and reload the
	// fleet registry — the coordinator rebuilds clients on the next call.
	replacementURLs, _ := startWorkerFleet(t, "retail", ix, d, 2)
	rc.setAddrs([]string{urls[0], replacementURLs[1]})
	rc.s.ReloadFleets()
	code, got := query("5")
	if code != http.StatusOK {
		t.Fatalf("after reload = %d: %v", code, got)
	}
	want := make([]int64, 1)
	ix.UpperBoundBatch([]ossm.Itemset{ossm.NewItemset(5)}, want)
	bounds := got["bounds"].([]any)
	if b := int64(bounds[2].(map[string]any)["bound"].(float64)); b != want[0] {
		t.Fatalf("after reload bound = %d, want %d", b, want[0])
	}
}
